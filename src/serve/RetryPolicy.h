//===- RetryPolicy.h - Transient-failure retry with backoff ------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Retry policy of the serving layer (DESIGN.md, "Serving model"). Only
/// the typed transient class is retried — ErrorCode::Unavailable (a
/// resource that should come back) and ErrorCode::WorkerLost (a shard
/// worker died with the work, not because of it); every other failure is
/// terminal for the request, because re-running a deterministic inference
/// on the same bad input produces the same failure. Backoff is capped
/// exponential with *deterministic* jitter:
/// the multiplier is derived from a stable hash of (request label,
/// attempt, seed), so two runs of the same batch make identical retry
/// schedules and the chaos-soak harness can assert exact attempt counts.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SERVE_RETRYPOLICY_H
#define ANEK_SERVE_RETRYPOLICY_H

#include "support/Status.h"

#include <cstdint>
#include <string>

namespace anek {
namespace serve {

/// Capped exponential backoff over the transient failure class.
struct RetryPolicy {
  /// Total execution attempts per request (first try included).
  unsigned MaxAttempts = 3;
  /// Delay before attempt 2; doubles per attempt up to MaxDelaySeconds.
  double BaseDelaySeconds = 0.01;
  double MaxDelaySeconds = 0.5;
  /// Mixed into the jitter hash; the batch seed, so whole-batch reruns
  /// reproduce byte-identically.
  uint64_t Seed = 1;

  /// True for the typed transient set: Unavailable and WorkerLost. Both
  /// mean "the attempt was interrupted, not refuted" — nothing about the
  /// input makes a retry futile. InvalidArgument, ResourceExhausted,
  /// DeadlineExceeded, Unsatisfiable, FaultInjected and Internal are all
  /// deterministic verdicts about the request and stay terminal.
  static bool isTransient(const Status &S) {
    return S.code() == ErrorCode::Unavailable ||
           S.code() == ErrorCode::WorkerLost;
  }

  /// Whether another attempt should be made after \p AttemptsMade
  /// attempts ended with \p S.
  bool shouldRetry(const Status &S, unsigned AttemptsMade) const {
    return isTransient(S) && AttemptsMade < MaxAttempts;
  }

  /// Backoff before attempt \p Attempt (2-based: the delay preceding the
  /// second attempt is delaySeconds(Label, 2)). Deterministic in (Label,
  /// Attempt, Seed); the jitter multiplier lies in [0.5, 1.0].
  double delaySeconds(const std::string &Label, unsigned Attempt) const;
};

} // namespace serve
} // namespace anek

#endif // ANEK_SERVE_RETRYPOLICY_H
