//===- RetryPolicy.h - Transient-failure retry with backoff ------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Retry policy of the serving layer (DESIGN.md, "Serving model"). Only
/// the typed transient class is retried — ErrorCode::Unavailable (a
/// resource that should come back) and ErrorCode::WorkerLost (a shard
/// worker died with the work, not because of it); every other failure is
/// terminal for the request, because re-running a deterministic inference
/// on the same bad input produces the same failure. Backoff is capped
/// exponential with *deterministic* jitter:
/// the multiplier is derived from a stable hash of (request label,
/// attempt, seed), so two runs of the same batch make identical retry
/// schedules and the chaos-soak harness can assert exact attempt counts.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SERVE_RETRYPOLICY_H
#define ANEK_SERVE_RETRYPOLICY_H

#include "support/Status.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace anek {
namespace serve {

/// Capped exponential backoff over the transient failure class.
struct RetryPolicy {
  /// Total execution attempts per request (first try included).
  unsigned MaxAttempts = 3;
  /// Delay before attempt 2; doubles per attempt up to MaxDelaySeconds.
  double BaseDelaySeconds = 0.01;
  double MaxDelaySeconds = 0.5;
  /// Mixed into the jitter hash; the batch seed, so whole-batch reruns
  /// reproduce byte-identically.
  uint64_t Seed = 1;

  /// True for the typed transient set: Unavailable and WorkerLost. Both
  /// mean "the attempt was interrupted, not refuted" — nothing about the
  /// input makes a retry futile. InvalidArgument, ResourceExhausted,
  /// DeadlineExceeded, Unsatisfiable, FaultInjected and Internal are all
  /// deterministic verdicts about the request and stay terminal.
  static bool isTransient(const Status &S) {
    return S.code() == ErrorCode::Unavailable ||
           S.code() == ErrorCode::WorkerLost;
  }

  /// Whether another attempt should be made after \p AttemptsMade
  /// attempts ended with \p S.
  bool shouldRetry(const Status &S, unsigned AttemptsMade) const {
    return isTransient(S) && AttemptsMade < MaxAttempts;
  }

  /// Backoff before attempt \p Attempt (2-based: the delay preceding the
  /// second attempt is delaySeconds(Label, 2)). Deterministic in (Label,
  /// Attempt, Seed); the jitter multiplier lies in [0.5, 1.0].
  double delaySeconds(const std::string &Label, unsigned Attempt) const;
};

/// Per-endpoint transient-failure accounting for remote worker pools.
/// The retry policy above paces *attempts*; the ledger decides when an
/// *endpoint* has spent its credit: QuarantineAfter consecutive failures
/// (connect refusals, resets, handshake rejections, heartbeat silence —
/// anything the caller classifies as that endpoint's fault) quarantines
/// it for the ledger's lifetime, and the caller's degradation ladder
/// stops offering it work. A success resets the consecutive count, so a
/// flaky-but-alive endpoint is not condemned by accumulated history.
///
/// Thread-safe: shard dispatch threads sharing a pool record outcomes
/// concurrently.
class EndpointLedger {
public:
  explicit EndpointLedger(unsigned QuarantineAfter = 3)
      : QuarantineAfter(QuarantineAfter ? QuarantineAfter : 1) {}

  /// Records one failure against \p Endpoint. Returns true exactly when
  /// this failure tripped the quarantine (the transition, not the state),
  /// so callers can count quarantines without double-counting.
  bool recordFailure(const std::string &Endpoint) {
    std::lock_guard<std::mutex> Lock(Mutex);
    State &S = States[Endpoint];
    if (S.Quarantined)
      return false;
    if (++S.ConsecutiveFailures < QuarantineAfter)
      return false;
    S.Quarantined = true;
    return true;
  }

  /// Records a successful session establishment on \p Endpoint.
  void recordSuccess(const std::string &Endpoint) {
    std::lock_guard<std::mutex> Lock(Mutex);
    States[Endpoint].ConsecutiveFailures = 0;
  }

  bool quarantined(const std::string &Endpoint) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = States.find(Endpoint);
    return It != States.end() && It->second.Quarantined;
  }

  unsigned quarantinedCount() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    unsigned N = 0;
    for (const auto &[Name, S] : States)
      N += S.Quarantined ? 1 : 0;
    return N;
  }

private:
  struct State {
    unsigned ConsecutiveFailures = 0;
    bool Quarantined = false;
  };

  unsigned QuarantineAfter;
  mutable std::mutex Mutex;
  std::map<std::string, State> States;
};

} // namespace serve
} // namespace anek

#endif // ANEK_SERVE_RETRYPOLICY_H
