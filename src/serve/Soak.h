//===- Soak.h - Chaos-soak harness for the serving layer ---------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chaos-soak harness (DESIGN.md, "Serving model"): drives hundreds
/// of batch requests over the built-in examples with randomized,
/// site-filtered faults, and checks the serving invariants —
///
///  - every offered request reaches a terminal state (no lost requests,
///    no crash);
///  - each injected fault produces exactly its contracted terminal state
///    (transient-solve recovers with the exact attempt count, solve-fail
///    degrades, mem-spike fails on the memory budget, a tiny deadline
///    times out, queue-full sheds);
///  - non-faulted requests are byte-identical to a sequential baseline
///    computed in-process with the same seed;
///  - a faulted request never perturbs its neighbors (every fault filter
///    is scoped to one request id).
///
/// The fault assignment is drawn from a seeded RNG, so a soak run is
/// reproducible: same seed, same chaos, same expected outcomes.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SERVE_SOAK_H
#define ANEK_SERVE_SOAK_H

#include "serve/Serve.h"

#include <cstdint>
#include <string>
#include <vector>

namespace anek {
namespace serve {

struct SoakConfig {
  /// Requests to drive through the batch.
  unsigned Requests = 500;
  /// Serving workers (requests in flight concurrently).
  unsigned Workers = 4;
  /// Seeds both the chaos assignment and the batch (solver seeds,
  /// retry jitter).
  uint64_t Seed = 1;
  /// Fraction of requests that get a fault, in [0, 1].
  double FaultRate = 0.4;
  /// RequestQueue capacity for the run.
  size_t QueueCap = 64;
};

struct SoakReport {
  /// Terminal results, ordered by request index.
  std::vector<BatchResult> Results;
  /// Human-readable invariant violations; empty = soak passed.
  std::vector<std::string> Violations;
  /// Result count per terminal state, indexed by TerminalState.
  unsigned StateCounts[NumTerminalStates] = {};

  bool passed() const { return Violations.empty(); }
};

/// Runs one soak. Never throws for a request-level failure (that would
/// itself be an invariant violation); propagates only harness bugs.
SoakReport runSoak(const SoakConfig &Cfg);

} // namespace serve
} // namespace anek

#endif // ANEK_SERVE_SOAK_H
