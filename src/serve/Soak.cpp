//===- Soak.cpp - Chaos-soak harness for the serving layer ------------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "serve/Soak.h"

#include "infer/AnekInfer.h"
#include "lang/PrettyPrinter.h"
#include "lang/Sema.h"
#include "serve/BatchRunner.h"
#include "serve/Manifest.h"
#include "support/FaultInject.h"
#include "support/Format.h"
#include "support/Rng.h"

#include <stdexcept>

using namespace anek;
using namespace anek::serve;

namespace {

/// Which chaos a faulted request gets. Each mode has a contracted
/// terminal state the report checks for.
enum class ChaosMode : unsigned {
  Transient,  ///< transient-solve*K -> recovers, attempts == K + 1
  SolveFail,  ///< solve-fail on one method -> degraded
  MemSpike,   ///< mem-spike + tight budget -> failed (mem-budget)
  TinyDeadline, ///< 1ns deadline -> timeout
  QueueFull,  ///< queue-full -> shed
  NumModes,
};

/// Sequential ground truth for one example, computed in-process with the
/// same seed the batch uses.
struct Baseline {
  std::string Input;  ///< "example:NAME"
  std::string Method; ///< A qualified method name (solve-fail target).
  std::string Output; ///< printProgram with inferred specs.
  bool Degraded = false;
};

Baseline computeBaseline(const std::string &Name, uint64_t Seed) {
  Baseline B;
  B.Input = "example:" + Name;
  BatchRequest Probe;
  Probe.Input = B.Input;
  std::string Source, Error;
  if (!loadRequestSource(Probe, Source, Error))
    throw std::runtime_error("soak baseline: " + Error);
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = parseAndAnalyze(Source, Diags);
  if (!Prog)
    throw std::runtime_error("soak baseline: example '" + Name +
                             "' does not parse");
  if (Prog->methodsWithBodies().empty())
    throw std::runtime_error("soak baseline: example '" + Name +
                             "' has no method bodies");
  B.Method = Prog->methodsWithBodies().front()->qualifiedName();
  InferOptions Opts;
  Opts.Parallelism = 1;
  Opts.Seed = Seed;
  InferResult Inference = runAnekInfer(*Prog, Opts);
  PrintOptions PrintOpts;
  PrintOpts.SpecFor = [&](const MethodDecl &M) {
    return *Inference.specFor(&M);
  };
  B.Output = printProgram(*Prog, PrintOpts);
  B.Degraded = Inference.MethodsFailed || Inference.FallbackSolves;
  return B;
}

} // namespace

SoakReport anek::serve::runSoak(const SoakConfig &Cfg) {
  const char *ExampleNames[] = {"spreadsheet", "file", "field"};
  std::vector<Baseline> Baselines;
  for (const char *Name : ExampleNames)
    Baselines.push_back(computeBaseline(Name, Cfg.Seed));

  // Chaos assignment, reproducible from the seed alone. SplitMix64
  // rather than std::uniform_*_distribution: the standard distributions
  // are not pinned across library implementations, and the soak contract
  // is that one seed names one chaos plan everywhere.
  Rng Gen(Cfg.Seed);

  struct Plan {
    unsigned Example = 0;
    bool Faulted = false;
    ChaosMode Mode = ChaosMode::Transient;
    unsigned FireBudget = 0; ///< K of transient-solve*K.
  };
  std::vector<Plan> Plans(Cfg.Requests);
  std::vector<BatchRequest> Requests(Cfg.Requests);
  for (unsigned I = 0; I < Cfg.Requests; ++I) {
    Plan &P = Plans[I];
    P.Example = static_cast<unsigned>(Gen.below(Baselines.size()));
    P.Faulted = Gen.flip(Cfg.FaultRate);
    if (P.Faulted)
      P.Mode = static_cast<ChaosMode>(
          Gen.below(static_cast<uint64_t>(ChaosMode::NumModes)));
    if (P.Faulted && P.Mode == ChaosMode::Transient)
      P.FireBudget = static_cast<unsigned>(Gen.range(1, 2));

    BatchRequest &R = Requests[I];
    R.Index = I;
    R.Id = formatStr("soak%u", I);
    R.Input = Baselines[P.Example].Input;
    if (!P.Faulted)
      continue;
    switch (P.Mode) {
    case ChaosMode::Transient:
      R.FaultSpec = formatStr("transient-solve*%u:%s", P.FireBudget,
                              R.Id.c_str());
      break;
    case ChaosMode::SolveFail:
      R.FaultSpec =
          "solve-fail:" + R.Id + "/" + Baselines[P.Example].Method;
      break;
    case ChaosMode::MemSpike:
      R.FaultSpec = "mem-spike:" + R.Id;
      R.MemBudgetBytes = 1LL << 20;
      break;
    case ChaosMode::TinyDeadline:
      R.DeadlineSeconds = 1e-9;
      break;
    case ChaosMode::QueueFull:
      R.FaultSpec = "queue-full:" + R.Id;
      break;
    case ChaosMode::NumModes:
      break;
    }
  }

  BatchOptions Opts;
  Opts.Workers = Cfg.Workers;
  Opts.QueueCap = Cfg.QueueCap;
  // Transient chaos consumes up to 2 failed attempts; leave headroom so
  // every transient request is contracted to recover.
  Opts.MaxAttempts = 4;
  // Soak throughput matters more than realistic pacing.
  Opts.RetryBaseDelaySeconds = 0.0005;
  Opts.RetryMaxDelaySeconds = 0.002;
  Opts.Seed = Cfg.Seed;
  BatchRunner Runner(Opts);

  SoakReport Report;
  Report.Results = Runner.run(std::move(Requests));

  auto Violate = [&](unsigned Index, const std::string &What) {
    Report.Violations.push_back(formatStr("soak%u: %s", Index, What.c_str()));
  };

  if (Report.Results.size() != Cfg.Requests)
    Report.Violations.push_back(formatStr(
        "expected %u results, got %zu", Cfg.Requests, Report.Results.size()));

  for (unsigned I = 0; I < Report.Results.size() && I < Cfg.Requests; ++I) {
    const BatchResult &Res = Report.Results[I];
    const Plan &P = Plans[I];
    const Baseline &B = Baselines[P.Example];
    Report.StateCounts[static_cast<unsigned>(Res.State)]++;
    if (Res.Id != formatStr("soak%u", I)) {
      Violate(I, "result misordered: got id '" + Res.Id + "'");
      continue;
    }
    TerminalState CleanState =
        B.Degraded ? TerminalState::Degraded : TerminalState::Ok;
    auto Expect = [&](TerminalState Want, const char *Why) {
      if (Res.State != Want)
        Violate(I, formatStr("expected %s (%s), got %s (%s)",
                             terminalStateName(Want), Why,
                             terminalStateName(Res.State),
                             Res.Reason.c_str()));
    };
    if (!P.Faulted) {
      Expect(CleanState, "no fault");
      if (Res.Attempts != 1)
        Violate(I, formatStr("clean request took %u attempts", Res.Attempts));
      if (Res.State == CleanState && Res.Output != B.Output)
        Violate(I, "output differs from sequential baseline");
      continue;
    }
    switch (P.Mode) {
    case ChaosMode::Transient:
      Expect(CleanState, "transient-solve recovers");
      if (Res.Attempts != P.FireBudget + 1)
        Violate(I, formatStr("expected %u attempts, got %u",
                             P.FireBudget + 1, Res.Attempts));
      if (Res.State == CleanState && Res.Output != B.Output)
        Violate(I, "recovered output differs from sequential baseline");
      break;
    case ChaosMode::SolveFail:
      Expect(TerminalState::Degraded, "solve-fail isolates the method");
      break;
    case ChaosMode::MemSpike:
      Expect(TerminalState::Failed, "mem-spike blows the budget");
      if (Res.State == TerminalState::Failed &&
          Res.Reason.find("mem-budget") == std::string::npos)
        Violate(I, "failure reason lacks mem-budget: " + Res.Reason);
      break;
    case ChaosMode::TinyDeadline:
      Expect(TerminalState::Timeout, "1ns deadline");
      break;
    case ChaosMode::QueueFull:
      Expect(TerminalState::Shed, "queue-full fault");
      break;
    case ChaosMode::NumModes:
      break;
    }
  }
  return Report;
}
