//===- Manifest.cpp - Batch request manifest parsing ------------------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "serve/Manifest.h"

#include "corpus/ExampleSources.h"
#include "support/Format.h"
#include "support/StringUtils.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace anek;
using namespace anek::serve;

namespace {

/// Splits a manifest line on whitespace runs.
std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Tokens;
  std::istringstream In(Line);
  std::string Tok;
  while (In >> Tok)
    Tokens.push_back(Tok);
  return Tokens;
}

/// Parses a non-negative integer with an optional k/m/g binary suffix.
bool parseByteCount(const std::string &Text, long long &Out) {
  if (Text.empty())
    return false;
  size_t End = 0;
  long long Value = 0;
  try {
    Value = std::stoll(Text, &End);
  } catch (...) {
    return false;
  }
  if (Value < 0)
    return false;
  long long Scale = 1;
  if (End + 1 == Text.size()) {
    switch (std::tolower(static_cast<unsigned char>(Text[End]))) {
    case 'k':
      Scale = 1LL << 10;
      break;
    case 'm':
      Scale = 1LL << 20;
      break;
    case 'g':
      Scale = 1LL << 30;
      break;
    default:
      return false;
    }
  } else if (End != Text.size()) {
    return false;
  }
  Out = Value * Scale;
  return true;
}

Status lineError(unsigned LineNo, const std::string &Detail) {
  return Status::error(ErrorCode::InvalidArgument,
                       formatStr("manifest line %u: %s", LineNo,
                                 Detail.c_str()));
}

} // namespace

Expected<std::vector<BatchRequest>>
anek::serve::parseManifest(const std::string &Text) {
  std::vector<BatchRequest> Requests;
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    std::vector<std::string> Tokens = tokenize(Line);
    if (Tokens.empty() || Tokens.front()[0] == '#')
      continue;

    BatchRequest R;
    R.Index = static_cast<unsigned>(Requests.size());
    R.Input = Tokens.front();
    for (size_t I = 1; I < Tokens.size(); ++I) {
      const std::string &Tok = Tokens[I];
      size_t Eq = Tok.find('=');
      if (Eq == std::string::npos || Eq == 0)
        return lineError(LineNo, "expected key=value, got '" + Tok + "'");
      std::string Key = Tok.substr(0, Eq);
      std::string Value = Tok.substr(Eq + 1);
      if (Key == "id") {
        if (Value.empty())
          return lineError(LineNo, "empty id");
        R.Id = Value;
      } else if (Key == "jobs") {
        try {
          R.Jobs = static_cast<unsigned>(std::stoul(Value));
        } catch (...) {
          return lineError(LineNo, "bad jobs value '" + Value + "'");
        }
      } else if (Key == "shards") {
        try {
          R.Shards = static_cast<unsigned>(std::stoul(Value));
        } catch (...) {
          return lineError(LineNo, "bad shards value '" + Value + "'");
        }
      } else if (Key == "deadline") {
        try {
          R.DeadlineSeconds = std::stod(Value);
        } catch (...) {
          return lineError(LineNo, "bad deadline value '" + Value + "'");
        }
        if (R.DeadlineSeconds < 0.0)
          return lineError(LineNo, "negative deadline");
      } else if (Key == "mem") {
        if (!parseByteCount(Value, R.MemBudgetBytes))
          return lineError(LineNo, "bad mem value '" + Value + "'");
      } else if (Key == "fault") {
        if (Value.empty())
          return lineError(LineNo, "empty fault spec");
        R.FaultSpec = Value;
      } else if (Key == "cache") {
        if (Value.empty())
          return lineError(LineNo, "empty cache directory");
        R.CacheDir = Value;
      } else {
        return lineError(LineNo, "unknown key '" + Key + "'");
      }
    }
    if (R.Id.empty())
      R.Id = formatStr("req%u", R.Index);
    Requests.push_back(std::move(R));
  }
  return Requests;
}

bool anek::serve::loadRequestSource(const BatchRequest &R, std::string &Out,
                                    std::string &Error) {
  if (!R.Source.empty()) {
    Out = R.Source;
    return true;
  }
  constexpr const char Prefix[] = "example:";
  if (R.Input.rfind(Prefix, 0) == 0) {
    std::string Name = R.Input.substr(sizeof(Prefix) - 1);
    // Mirror the driver's --example mapping (tools/anek.cpp loadSource).
    if (Name == "spreadsheet") {
      Out = iteratorApiSource() + spreadsheetSource();
      return true;
    }
    if (Name == "file") {
      Out = fileProtocolSource();
      return true;
    }
    if (Name == "field") {
      Out = fieldExampleSource();
      return true;
    }
    Error = "unknown example '" + Name + "'";
    return false;
  }
  std::ifstream In(R.Input);
  if (!In) {
    Error = "cannot open '" + R.Input + "'";
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}
