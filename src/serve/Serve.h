//===- Serve.h - Batch serving layer: requests and results -------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Core types of the resource-governed serving layer (DESIGN.md, "Serving
/// model"): a BatchRequest describes one inference request (an input plus
/// per-request resource overrides), a BatchResult is its outcome. The
/// terminal-state contract is the load-bearing invariant: every admitted
/// or offered request ends in exactly one of
///
///   ok        inference completed, no degradation
///   degraded  inference completed, but methods failed in isolation or
///             fallback solvers were used
///   failed    the request cannot produce specs (bad input, mem-budget,
///             retries exhausted, internal error)
///   timeout   the per-request deadline cancelled the run at a wave
///             boundary
///   shed      admission control rejected the request (queue full, or a
///             drain was requested before it started)
///
/// and exactly one JSONL line (schema `anek-batch-v1`) reports it.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SERVE_SERVE_H
#define ANEK_SERVE_SERVE_H

#include <chrono>
#include <string>

namespace anek {
namespace serve {

/// The five terminal states of the serving contract.
enum class TerminalState { Ok, Degraded, Failed, Timeout, Shed };
constexpr unsigned NumTerminalStates = 5;

/// Renders "ok" / "degraded" / "failed" / "timeout" / "shed".
const char *terminalStateName(TerminalState State);

/// One inference request. Manifest lines parse into this; tests and the
/// soak harness construct it directly (optionally with inline Source).
struct BatchRequest {
  /// Position in the offered stream; results are returned in this order.
  unsigned Index = 0;
  /// Stable identifier; "req<Index>" when the manifest names none. Fault
  /// filters and retry jitter key off it.
  std::string Id;
  /// "example:NAME" (built-in corpus example) or an .mjava path.
  std::string Input;
  /// Inline source text; when non-empty, Input is only a display name.
  std::string Source;
  /// Wave-job parallelism for this request: 0 = batch default, 1 = solve
  /// inline on the serving worker, N > 1 = use the shared inference pool.
  unsigned Jobs = 0;
  /// Shard worker processes for this request: 0 = batch default (which
  /// also defaults to 0 = no sharding). Effective only when the batch was
  /// wired with a ShardFactory (the driver's job — see BatchOptions).
  unsigned Shards = 0;
  /// Wall-clock deadline in seconds; < 0 = batch default, 0 = unlimited.
  double DeadlineSeconds = -1.0;
  /// Peak-memory budget in bytes; < 0 = batch default, 0 = unlimited.
  long long MemBudgetBytes = -1;
  /// Fault spec activated for the whole run (the author scopes filters to
  /// this request, e.g. "transient-solve*2:req7").
  std::string FaultSpec;
  /// Summary-cache directory for this request; empty = batch default
  /// (which also defaults to empty = no caching). Effective only when the
  /// batch was wired with a CacheProvider (the driver's job — see
  /// BatchOptions), and only for undeadlined requests: a per-request
  /// deadline implies a per-solve budget, under which the engine disables
  /// caching (timing-dependent results must not be replayed).
  std::string CacheDir;
  /// When the request entered admission (set by BatchRunner::run just
  /// before it offers the request to the queue); a worker's dequeue time
  /// minus this is the request's queue wait.
  std::chrono::steady_clock::time_point AdmitTime{};
};

/// Terminal outcome of one request.
struct BatchResult {
  unsigned Index = 0;
  std::string Id;
  std::string Input;
  TerminalState State = TerminalState::Failed;
  /// Execution attempts made (0 for shed requests).
  unsigned Attempts = 0;
  /// Why the request ended in a non-ok state; empty for ok.
  std::string Reason;
  /// The printed program with inferred specs — the same bytes `anek
  /// infer` prints before its stats trailer. Set for ok/degraded only.
  std::string Output;
  /// Methods that received a non-empty inferred spec.
  unsigned SpecCount = 0;
  /// Wall-clock seconds across all attempts (queue wait excluded).
  double Seconds = 0.0;
  /// Seconds the request waited in the queue before a worker picked it
  /// up (0 for shed requests — they never reach a worker). QueueSeconds
  /// + Seconds is the request's total latency, the quantity the
  /// throughput bench reports p50/p99 over per queue cap.
  double QueueSeconds = 0.0;
  /// Peak-memory watermark observed by the governor, in bytes.
  long long PeakBytes = 0;
  /// Summary-cache hits and misses across this request's attempts (both 0
  /// when the request ran uncached). A warm re-run of an unchanged input
  /// shows hits == solves and misses == 0, which is how `anek report`
  /// computes the batch's cache hit rate.
  unsigned CacheHits = 0;
  unsigned CacheMisses = 0;

  /// One `anek-batch-v1` JSONL line (no trailing newline).
  std::string jsonLine() const;
};

} // namespace serve
} // namespace anek

#endif // ANEK_SERVE_SERVE_H
