//===- RequestQueue.cpp - Bounded admission-controlled queue ----------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "serve/RequestQueue.h"

#include "support/FaultInject.h"
#include "support/Metrics.h"
#include "support/Trace.h"

using namespace anek;
using namespace anek::serve;

RequestQueue::RequestQueue(size_t Capacity) : Cap(Capacity ? Capacity : 1) {}

RequestQueue::Admission RequestQueue::admit(BatchRequest R, bool Block) {
  bool Admitted = false;
  size_t Depth = 0;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    // The fault is checked before capacity so it sheds deterministically
    // regardless of how fast workers are draining.
    bool Faulted = faults::anyActive() &&
                   faults::active(FaultKind::QueueFull, R.Id);
    if (!Faulted) {
      if (Block)
        NotFull.wait(Lock, [this] { return Closed || Queue.size() < Cap; });
      if (!Closed && Queue.size() < Cap) {
        Queue.push_back(std::move(R));
        Admitted = true;
      }
    }
    Depth = Queue.size();
  }
  if (Admitted)
    Ready.notify_one();
  if (telemetry::enabled(telemetry::TraceLevel::Phase)) {
    telemetry::counter(Admitted ? "serve.admitted" : "serve.shed").add(1);
    telemetry::gauge("serve.queue.depth").set(static_cast<double>(Depth));
  }
  return Admitted ? Admission::Admitted : Admission::Shed;
}

std::optional<BatchRequest> RequestQueue::pop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Ready.wait(Lock, [this] { return Closed || !Queue.empty(); });
  if (Queue.empty())
    return std::nullopt;
  BatchRequest R = std::move(Queue.front());
  Queue.pop_front();
  size_t Depth = Queue.size();
  Lock.unlock();
  NotFull.notify_one();
  if (telemetry::enabled(telemetry::TraceLevel::Phase))
    telemetry::gauge("serve.queue.depth").set(static_cast<double>(Depth));
  return R;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Closed = true;
  }
  Ready.notify_all();
  NotFull.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Closed;
}

size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Queue.size();
}
