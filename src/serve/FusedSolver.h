//===- FusedSolver.h - Cross-request BP solve rendezvous --------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-side half of fused solving (DESIGN.md, "Solver kernel
/// layout"): a BpSolveDelegate shared by every serving worker that holds
/// each arriving sum-product solve for a tiny rendezvous window and
/// packs the solves that arrive together — typically from different
/// concurrent requests — into one fusedBpSolve arena sweep.
///
/// The first arrival leads: it opens a batch keyed by its solver options
/// and waits until the batch is full or the window expires, then solves
/// the whole batch in one call while followers block on their result.
/// Solves that cannot legally fuse run inline on their own thread:
/// budgeted solves (a shared sweep would couple unrelated requests'
/// deadlines) and solves whose options differ from the forming batch's
/// (one arena sweep has one Options).
///
/// Byte-identity with unfused serving is inherited from fusedBpSolve and
/// guarded by serve_test; only timing can differ.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SERVE_FUSEDSOLVER_H
#define ANEK_SERVE_FUSEDSOLVER_H

#include "factor/Fused.h"
#include "factor/Solvers.h"

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace anek {
namespace serve {

class FusedBpSolver : public BpSolveDelegate {
public:
  struct Options {
    /// Largest number of solves packed into one arena.
    unsigned MaxGraphs = 8;
    /// How long the leader holds the batch open for stragglers. Zero
    /// still fuses whatever arrives before the leader re-acquires the
    /// lock (in practice: nothing — useful to force singleton batches
    /// in tests).
    double WindowSeconds = 0.0002;
  };

  /// Counters for tests and the throughput bench.
  struct Stats {
    uint64_t Batches = 0;   ///< fusedBpSolve invocations.
    uint64_t Fused = 0;     ///< solves that went through a batch.
    uint64_t Bypassed = 0;  ///< solves that ran inline instead.
  };

  // Two constructors rather than one defaulted argument: a nested
  // aggregate's member initializers are not usable in the enclosing
  // class's default arguments (complete-class context).
  FusedBpSolver() = default;
  explicit FusedBpSolver(Options Opts) : Opts(Opts) {}

  Marginals solve(const SumProductSolver::Options &O, const FactorGraph &G,
                  Marginals *GraphLikelihood, SolveReport *Report) override;

  Stats stats() const;

private:
  /// One waiting solve. Lives on the calling thread's stack; the leader
  /// copies Work in and out around the fused call.
  struct Waiter {
    FusedBpJob Work;
    bool Done = false;
  };

  Options Opts;
  mutable std::mutex Mutex;
  std::condition_variable Cv;
  /// The forming batch and the options it was opened with; empty when no
  /// leader is collecting.
  std::vector<Waiter *> Forming;
  SumProductSolver::Options FormingOpts;
  bool FormingActive = false;
  Stats Counts;
};

} // namespace serve
} // namespace anek

#endif // ANEK_SERVE_FUSEDSOLVER_H
