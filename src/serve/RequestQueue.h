//===- RequestQueue.h - Bounded admission-controlled queue -------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission boundary of the serving layer (DESIGN.md, "Serving
/// model"): a bounded MPMC queue with deterministic load shedding. A
/// request is shed only for a deterministic reason — the queue was closed
/// (drain), the `queue-full` fault matches its id, or the caller chose
/// non-blocking admission (load tests / the throughput bench) and the
/// queue is at capacity. The batch driver uses blocking admission, so a
/// manifest longer than the queue capacity is backpressured, never
/// racily shed; bounding the queue is what keeps memory and tail latency
/// bounded under overload.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SERVE_REQUESTQUEUE_H
#define ANEK_SERVE_REQUESTQUEUE_H

#include "serve/Serve.h"

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace anek {
namespace serve {

/// Bounded FIFO of pending requests shared by the producer (admission)
/// and the serving workers (pop). Thread-safe.
class RequestQueue {
public:
  enum class Admission {
    Admitted, ///< Queued; a worker will pop it.
    Shed,     ///< Rejected: fault, closed queue, or full in Block=false.
  };

  /// \p Capacity 0 means a capacity of 1 (a zero-capacity queue would
  /// shed everything, which is never what a caller wants).
  explicit RequestQueue(size_t Capacity);

  /// Admits \p R. With \p Block, waits for room while the queue is at
  /// capacity (backpressure); without, a full queue sheds immediately.
  /// Always sheds when the queue is closed or the `queue-full` fault
  /// matches R.Id. Updates the serve.admitted / serve.shed counters and
  /// the serve.queue.depth gauge.
  Admission admit(BatchRequest R, bool Block);

  /// Blocks until a request is available or the queue is closed; nullopt
  /// means closed-and-drained (the worker should exit).
  std::optional<BatchRequest> pop();

  /// Stops admission and wakes every blocked admit()/pop(). Requests
  /// already queued are still handed out (graceful drain finishes
  /// in-flight and queued work; only new admissions are refused).
  void close();

  bool closed() const;
  size_t depth() const;
  size_t capacity() const { return Cap; }

private:
  const size_t Cap;
  mutable std::mutex Mutex;
  std::condition_variable Ready;   ///< Signals queued work / close.
  std::condition_variable NotFull; ///< Signals room for a blocked admit.
  std::deque<BatchRequest> Queue;
  bool Closed = false;
};

} // namespace serve
} // namespace anek

#endif // ANEK_SERVE_REQUESTQUEUE_H
