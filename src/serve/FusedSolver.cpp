//===- FusedSolver.cpp - Cross-request BP solve rendezvous -----------------===//

#include "serve/FusedSolver.h"

#include <chrono>

using namespace anek;
using namespace anek::serve;

namespace {

/// Two solves may share an arena sweep only when every knob the kernel
/// iteration reads is identical. Budgets are handled separately (they
/// bypass fusion outright).
bool sameOptions(const SumProductSolver::Options &A,
                 const SumProductSolver::Options &B) {
  return A.MaxIterations == B.MaxIterations && A.Tolerance == B.Tolerance &&
         A.Damping == B.Damping &&
         A.ResidualScheduling == B.ResidualScheduling &&
         A.RefreshInterval == B.RefreshInterval;
}

} // namespace

Marginals FusedBpSolver::solve(const SumProductSolver::Options &O,
                               const FactorGraph &G,
                               Marginals *GraphLikelihood,
                               SolveReport *Report) {
  // A budgeted solve must observe its own wall clock, not the batch's:
  // fusing it would let a slow co-batched request eat its deadline (and
  // the deadline expire the co-batched requests' solves). Deadlined
  // serving requests therefore keep the standalone path.
  if (!O.Budget.unlimited()) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Counts.Bypassed;
    }
    return SumProductSolver(O).solve(G, GraphLikelihood, Report);
  }

  Waiter Self;
  Self.Work.Graph = &G;
  Self.Work.WantLikelihood = GraphLikelihood != nullptr;

  std::unique_lock<std::mutex> Lock(Mutex);
  if (FormingActive) {
    if (!sameOptions(FormingOpts, O) || Forming.size() >= Opts.MaxGraphs) {
      // Can't join the forming batch; solving inline keeps the window
      // from serializing unrelated solves behind it.
      ++Counts.Bypassed;
      Lock.unlock();
      return SumProductSolver(O).solve(G, GraphLikelihood, Report);
    }
    // Follow: join the batch, wake the leader (it re-checks fullness),
    // and wait for it to publish our result.
    Forming.push_back(&Self);
    Cv.notify_all();
    Cv.wait(Lock, [&] { return Self.Done; });
    ++Counts.Fused;
    if (GraphLikelihood)
      *GraphLikelihood = std::move(Self.Work.GraphLikelihood);
    if (Report)
      *Report = Self.Work.Report;
    return std::move(Self.Work.Out);
  }

  // Lead: open a batch and hold it for the window (or until full).
  FormingActive = true;
  FormingOpts = O;
  Forming.clear();
  Forming.push_back(&Self);
  const auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(Opts.WindowSeconds));
  Cv.wait_until(Lock, Deadline,
                [&] { return Forming.size() >= Opts.MaxGraphs; });
  // Extract the batch and close it in the same critical section, so the
  // next arrival opens a fresh batch instead of joining one mid-solve.
  std::vector<Waiter *> Batch = std::move(Forming);
  Forming.clear();
  FormingActive = false;
  ++Counts.Batches;
  Counts.Fused += 1; // self; followers count themselves on wake.
  Lock.unlock();

  std::vector<FusedBpJob> Jobs(Batch.size());
  for (size_t I = 0; I != Batch.size(); ++I)
    Jobs[I] = Batch[I]->Work;
  fusedBpSolve(O, Jobs.data(), Jobs.size());

  Lock.lock();
  for (size_t I = 1; I != Batch.size(); ++I) {
    Batch[I]->Work = std::move(Jobs[I]);
    Batch[I]->Done = true;
  }
  Cv.notify_all();
  Lock.unlock();

  if (GraphLikelihood)
    *GraphLikelihood = std::move(Jobs[0].GraphLikelihood);
  if (Report)
    *Report = Jobs[0].Report;
  return std::move(Jobs[0].Out);
}

FusedBpSolver::Stats FusedBpSolver::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counts;
}
