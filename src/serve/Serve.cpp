//===- Serve.cpp - Batch serving layer: requests and results ----------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"

#include "support/Trace.h"

namespace anek {
namespace serve {

const char *terminalStateName(TerminalState State) {
  switch (State) {
  case TerminalState::Ok:
    return "ok";
  case TerminalState::Degraded:
    return "degraded";
  case TerminalState::Failed:
    return "failed";
  case TerminalState::Timeout:
    return "timeout";
  case TerminalState::Shed:
    return "shed";
  }
  return "failed";
}

std::string BatchResult::jsonLine() const {
  using telemetry::jsonNumber;
  using telemetry::jsonQuote;
  std::string Line = "{\"schema\": \"anek-batch-v1\"";
  Line += ", \"index\": " + jsonNumber(Index);
  Line += ", \"id\": " + jsonQuote(Id);
  Line += ", \"input\": " + jsonQuote(Input);
  Line += ", \"state\": " + jsonQuote(terminalStateName(State));
  Line += ", \"attempts\": " + jsonNumber(Attempts);
  if (!Reason.empty())
    Line += ", \"reason\": " + jsonQuote(Reason);
  Line += ", \"specs\": " + jsonNumber(SpecCount);
  Line += ", \"seconds\": " + jsonNumber(Seconds);
  Line += ", \"queue_seconds\": " + jsonNumber(QueueSeconds);
  Line += ", \"peak_bytes\": " + jsonNumber(static_cast<double>(PeakBytes));
  Line += ", \"cache_hits\": " + jsonNumber(CacheHits);
  Line += ", \"cache_misses\": " + jsonNumber(CacheMisses);
  if (!Output.empty())
    Line += ", \"output\": " + jsonQuote(Output);
  Line += "}";
  return Line;
}

} // namespace serve
} // namespace anek
