//===- BatchRunner.cpp - Resource-governed batch execution ------------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "serve/BatchRunner.h"

#include "infer/AnekInfer.h"
#include "lang/PrettyPrinter.h"
#include "lang/Sema.h"
#include "serve/FusedSolver.h"
#include "serve/Manifest.h"
#include "serve/RequestQueue.h"
#include "support/FaultInject.h"
#include "support/Format.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

using namespace anek;
using namespace anek::serve;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Terminal state for an attempt that ended with error \p S (after the
/// retry loop declined to go again).
TerminalState stateForFailure(const Status &S) {
  return S.code() == ErrorCode::DeadlineExceeded ? TerminalState::Timeout
                                                 : TerminalState::Failed;
}

void countTerminal(const BatchResult &Res) {
  if (telemetry::enabled(telemetry::TraceLevel::Phase))
    telemetry::counter(std::string("serve.state.") +
                       terminalStateName(Res.State))
        .add(1);
}

/// Renders the slow-request span tree: every complete span the serving
/// thread recorded inside the request's execution window, indented by
/// nesting depth. Spans running on pool or shard-dispatch threads belong
/// to other tids and are deliberately absent — the dump answers "where
/// did *this* thread's time go", and the full cross-thread picture lives
/// in the trace file.
std::string renderSlowRequest(const BatchResult &Res, double Threshold,
                              unsigned Tid, int64_t FromUs, int64_t ToUs) {
  std::string Out =
      formatStr("slow-request id=%s state=%s seconds=%.3f threshold=%.3f",
                Res.Id.c_str(), terminalStateName(Res.State), Res.Seconds,
                Threshold);
  size_t Spans = 0;
  for (const telemetry::EventRecord &E : telemetry::snapshotEvents()) {
    if (E.Tid != Tid || E.Phase != 'X' || E.TsUs < FromUs || E.TsUs > ToUs)
      continue;
    ++Spans;
    Out += "\n  " + std::string(E.Depth * 2, ' ') + E.Name;
    Out += formatStr(" %.3fms", static_cast<double>(E.DurUs) / 1000.0);
    if (!E.Args.empty())
      Out += " {" + E.Args + "}";
  }
  if (Spans == 0)
    Out += "\n  (no spans recorded — run with --trace-level to populate)";
  return Out;
}

} // namespace

BatchRunner::BatchRunner(BatchOptions Opts) : Opts(std::move(Opts)) {
  if (this->Opts.Workers == 0)
    this->Opts.Workers = 1;
}

void BatchRunner::requestDrain() { Drain.store(true, std::memory_order_release); }

bool BatchRunner::drainRequested() const {
  if (Drain.load(std::memory_order_acquire))
    return true;
  return Opts.DrainSignal && *Opts.DrainSignal != 0;
}

Status BatchRunner::runAttempt(const BatchRequest &R, ThreadPool *SharedPool,
                               BatchResult &Res) {
  // The transient-solve control point sits before any real work, so a
  // retried attempt re-runs the whole request (load, parse, solve).
  if (faults::anyActive() &&
      faults::consumeFire(FaultKind::TransientSolve, R.Id))
    return faults::injectedError(FaultKind::TransientSolve, R.Id);

  std::string Source, LoadError;
  if (!loadRequestSource(R, Source, LoadError))
    return Status::error(ErrorCode::InvalidArgument, LoadError);

  // Per-request governor: a cancel token, armed with the memory budget
  // here and with the wall-clock deadline below. Inference observes both
  // at wave boundaries; a blown budget is a failed request, not an OOM.
  CancelToken Token;
  memtrack::MemCharge Charge;
  double DeadlineSeconds = R.DeadlineSeconds >= 0.0
                               ? R.DeadlineSeconds
                               : Opts.DefaultDeadlineSeconds;
  long long MemBudget = R.MemBudgetBytes >= 0 ? R.MemBudgetBytes
                                              : Opts.DefaultMemBudgetBytes;
  Charge.bind(MemBudget, &Token);
  memtrack::MemScope Scope(&Charge);
  if (faults::anyActive() && faults::active(FaultKind::MemSpike, R.Id))
    Charge.spike(1LL << 40);

  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = parseAndAnalyze(Source, Diags);
  if (!Prog) {
    Res.PeakBytes = std::max(Res.PeakBytes, Charge.peak());
    return Status::error(ErrorCode::InvalidArgument, Diags.str());
  }

  unsigned Jobs = R.Jobs ? R.Jobs : Opts.DefaultJobs;
  InferOptions InferOpts;
  InferOpts.Parallelism = Jobs ? Jobs : 0;
  InferOpts.Pool = Jobs != 1 ? SharedPool : nullptr;
  InferOpts.Cancel = &Token;
  InferOpts.Memory = &Charge;
  InferOpts.FaultScope = R.Id;
  InferOpts.Seed = Opts.Seed;
  if (DeadlineSeconds > 0.0) {
    InferOpts.RunBudget = Deadline::afterSeconds(DeadlineSeconds);
    InferOpts.SolveBudgetSeconds = DeadlineSeconds;
  }

  // Shard-tier wiring: build the per-request executor only when the
  // driver injected a factory and this request resolved to shards > 0.
  // The executor lives for the attempt; a re-dispatched attempt after a
  // transient failure builds a fresh one (fresh worker pool included).
  unsigned Shards = R.Shards ? R.Shards : Opts.DefaultShards;
  std::unique_ptr<WaveShardExecutor> ShardExec;
  if (Opts.Shards && Shards > 0) {
    ShardExec = Opts.Shards(*Prog, Source, InferOpts, Shards);
    InferOpts.ShardExec = ShardExec.get();
  }

  // Cache-tier wiring: resolve the request's directory through the
  // driver-injected provider. The provider owns the cache instances
  // (one per directory, shared across requests and attempts); the engine
  // gates itself off when this request is deadlined (a per-solve budget
  // makes results timing-dependent) or a result-perturbing fault is
  // armed, so wiring it unconditionally here is safe.
  const std::string &CacheDir =
      R.CacheDir.empty() ? Opts.DefaultCacheDir : R.CacheDir;
  if (Opts.Cache && !CacheDir.empty())
    InferOpts.Cache = Opts.Cache(CacheDir);

  // Fused solving: route this request's BP solves through the shared
  // rendezvous delegate. Safe unconditionally — deadlined requests carry
  // a per-solve budget, which the delegate bypasses inline, and the
  // delegate contract keeps results byte-identical.
  InferOpts.Bp = FusedBp;

  InferResult Inference = runAnekInfer(*Prog, InferOpts, &Diags);
  Res.PeakBytes = std::max(Res.PeakBytes, Charge.peak());
  // Cache traffic accumulates across attempts (a retried attempt's hits
  // are real work saved) and is reported even for failed requests.
  Res.CacheHits += Inference.Cache.Hits;
  Res.CacheMisses += Inference.Cache.Misses;
  if (!Inference.Aborted.isOk())
    return Inference.Aborted;

  PrintOptions PrintOpts;
  PrintOpts.SpecFor = [&](const MethodDecl &M) {
    return *Inference.specFor(&M);
  };
  Res.Output = printProgram(*Prog, PrintOpts);
  Res.SpecCount = Inference.inferredAnnotationCount();
  // Degradation reasons compose: algorithmic degradation (fallback
  // solves, failed methods) and infrastructure degradation (the shard
  // tier surviving worker losses by quarantining or re-running waves in
  // process) can both happen in one request, and hiding either would
  // misreport the run. Results are still byte-identical to -j1 in the
  // shard cases (the executor contract).
  std::string Reason;
  auto AddReason = [&](std::string Part) {
    if (!Reason.empty())
      Reason += "; ";
    Reason += Part;
  };
  if (Inference.MethodsFailed || Inference.FallbackSolves)
    AddReason(formatStr("%u method(s) failed, %u fallback solve(s)",
                        Inference.MethodsFailed, Inference.FallbackSolves));
  if (Inference.Shard.ShardsQuarantined)
    AddReason(formatStr("shard-quarantine: %u shard(s) degraded to "
                        "in-process execution",
                        Inference.Shard.ShardsQuarantined));
  else if (Inference.Shard.WavesDegraded)
    AddReason(formatStr("shard-degraded: %u wave(s) re-run in process",
                        Inference.Shard.WavesDegraded));
  if (!Reason.empty()) {
    Res.State = TerminalState::Degraded;
    Res.Reason = std::move(Reason);
  } else {
    Res.State = TerminalState::Ok;
    Res.Reason.clear();
  }
  return Status::ok();
}

BatchResult BatchRunner::processOne(const BatchRequest &R,
                                    ThreadPool *SharedPool) {
  BatchResult Res;
  Res.Index = R.Index;
  Res.Id = R.Id;
  Res.Input = R.Input;
  Res.QueueSeconds = secondsSince(R.AdmitTime);

  RetryPolicy Policy;
  Policy.MaxAttempts = Opts.MaxAttempts ? Opts.MaxAttempts : 1;
  Policy.BaseDelaySeconds = Opts.RetryBaseDelaySeconds;
  Policy.MaxDelaySeconds = Opts.RetryMaxDelaySeconds;
  Policy.Seed = Opts.Seed;

  auto Start = std::chrono::steady_clock::now();
  const int64_t StartUs = telemetry::nowUs();
  const unsigned Tid = telemetry::currentThreadId();
  for (;;) {
    ++Res.Attempts;
    Status Attempt = runAttempt(R, SharedPool, Res);
    if (Attempt.isOk())
      break; // runAttempt set ok/degraded.
    if (Policy.shouldRetry(Attempt, Res.Attempts) && !drainRequested()) {
      if (telemetry::enabled(telemetry::TraceLevel::Phase))
        telemetry::counter("serve.retries").add(1);
      double Delay = Policy.delaySeconds(R.Id, Res.Attempts + 1);
      if (Delay > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(Delay));
      continue;
    }
    Res.State = stateForFailure(Attempt);
    Res.Reason = Attempt.str();
    Res.Output.clear();
    Res.SpecCount = 0;
    break;
  }
  Res.Seconds = secondsSince(Start);
  if (Opts.SlowRequestSeconds > 0.0 &&
      Res.Seconds >= Opts.SlowRequestSeconds) {
    if (telemetry::enabled(telemetry::TraceLevel::Phase))
      telemetry::counter("serve.slow_requests").add(1);
    std::string Dump = renderSlowRequest(Res, Opts.SlowRequestSeconds, Tid,
                                         StartUs, telemetry::nowUs());
    if (Opts.SlowLog)
      Opts.SlowLog(Dump);
    else
      std::fprintf(stderr, "%s\n", Dump.c_str());
  }
  return Res;
}

std::vector<BatchResult> BatchRunner::run(std::vector<BatchRequest> Requests) {
  // Re-index so results order matches offer order even when the caller
  // built requests by hand.
  for (size_t I = 0; I < Requests.size(); ++I)
    Requests[I].Index = static_cast<unsigned>(I);

  // Activate per-request fault specs up front: a spec names its own
  // request id in its filters, so activation order cannot leak between
  // requests. A malformed spec fails its request before admission.
  std::map<unsigned, std::string> BadSpecs;
  for (const BatchRequest &R : Requests)
    if (!R.FaultSpec.empty())
      if (Status S = faults::activateSpec(R.FaultSpec); !S)
        BadSpecs[R.Index] = S.str();

  // One shared inference pool serves every request that asked for
  // intra-request parallelism. Serving workers are plain threads, never
  // pool workers, so parallelFor from a request cannot deadlock the pool.
  std::unique_ptr<ThreadPool> OwnedPool;
  bool NeedPool = std::any_of(Requests.begin(), Requests.end(),
                              [&](const BatchRequest &R) {
                                unsigned Jobs =
                                    R.Jobs ? R.Jobs : Opts.DefaultJobs;
                                return Jobs != 1;
                              });
  if (NeedPool)
    OwnedPool = std::make_unique<ThreadPool>(Opts.PoolThreads);

  // The fused-solve rendezvous is shared by all serving workers for the
  // batch's lifetime; workers join before it is destroyed.
  std::unique_ptr<FusedBpSolver> FusedSolver;
  if (Opts.FuseSolves) {
    FusedBpSolver::Options FuseOpts;
    FuseOpts.MaxGraphs = Opts.FuseMaxGraphs ? Opts.FuseMaxGraphs : 1;
    FuseOpts.WindowSeconds = Opts.FuseWindowSeconds;
    FusedSolver = std::make_unique<FusedBpSolver>(FuseOpts);
    FusedBp = FusedSolver.get();
  }

  std::vector<BatchResult> Results(Requests.size());
  std::mutex EmitMutex;
  auto Emit = [&](BatchResult Res) {
    countTerminal(Res);
    std::lock_guard<std::mutex> Lock(EmitMutex);
    unsigned Index = Res.Index;
    Results[Index] = std::move(Res);
    if (Opts.Sink)
      Opts.Sink(Results[Index]);
  };

  RequestQueue Queue(Opts.QueueCap);
  std::vector<std::thread> Workers;
  Workers.reserve(Opts.Workers);
  for (unsigned W = 0; W < Opts.Workers; ++W)
    Workers.emplace_back([&] {
      while (std::optional<BatchRequest> R = Queue.pop()) {
        BatchResult Res;
        // The terminal-state contract holds even for bugs: an exception
        // escaping a request is that request's failure, not the batch's.
        try {
          Res = processOne(*R, OwnedPool.get());
        } catch (const std::exception &E) {
          Res = BatchResult();
          Res.Index = R->Index;
          Res.Id = R->Id;
          Res.Input = R->Input;
          Res.State = TerminalState::Failed;
          Res.Attempts = std::max(Res.Attempts, 1u);
          Res.Reason = std::string("internal error: ") + E.what();
        }
        Emit(std::move(Res));
      }
    });

  // Admission (producer side) runs on the calling thread. Blocking
  // admission backpressures on a full queue; ShedWhenFull floods instead.
  for (BatchRequest &R : Requests) {
    R.AdmitTime = std::chrono::steady_clock::now();
    // Captured before admit() — admit takes the request by value, so R is
    // moved-from whether or not it was admitted.
    unsigned Index = R.Index;
    std::string Id = R.Id;
    std::string Input = R.Input;
    auto Terminal = [&](TerminalState State, std::string Reason) {
      BatchResult Res;
      Res.Index = Index;
      Res.Id = Id;
      Res.Input = Input;
      Res.State = State;
      Res.Reason = std::move(Reason);
      Emit(std::move(Res));
    };
    if (auto It = BadSpecs.find(Index); It != BadSpecs.end()) {
      Terminal(TerminalState::Failed, It->second);
      continue;
    }
    if (drainRequested()) {
      Queue.close();
      Terminal(TerminalState::Shed, "drain");
      continue;
    }
    if (Queue.admit(std::move(R), !Opts.ShedWhenFull) ==
        RequestQueue::Admission::Shed)
      Terminal(TerminalState::Shed,
               drainRequested() ? "drain" : "queue-full");
  }

  Queue.close();
  for (std::thread &W : Workers)
    W.join();
  return Results;
}
