//===- Manifest.h - Batch request manifest parsing ---------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the line-oriented manifest `anek batch` consumes. One request
/// per line:
///
///   <input> [key=value]...
///
/// where `<input>` is an .mjava path or `example:NAME` (NAME one of
/// spreadsheet, file, field — the same set `anek infer --example` takes),
/// and the recognized keys are
///
///   id=<string>       stable request id (default "req<line-index>")
///   jobs=<N>          wave-job parallelism override
///   shards=<N>        shard worker processes (0 = batch default; needs
///                     the driver's --shards wiring, see BatchOptions)
///   deadline=<secs>   per-request wall-clock deadline (0 = unlimited)
///   mem=<bytes>       peak-memory budget; k/m/g suffixes accepted
///   fault=<spec>      fault spec activated for the batch run
///
/// Blank lines and lines starting with '#' are skipped. Malformed lines
/// produce an InvalidArgument status naming the line number.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SERVE_MANIFEST_H
#define ANEK_SERVE_MANIFEST_H

#include "serve/Serve.h"
#include "support/Status.h"

#include <string>
#include <vector>

namespace anek {
namespace serve {

/// Parses \p Text (full manifest contents) into requests. On error the
/// partial vector is discarded.
Expected<std::vector<BatchRequest>> parseManifest(const std::string &Text);

/// Resolves \p R's input to source text: inline Source wins, then the
/// `example:` prefix, then a file read. Returns false (with a message on
/// \p Error) when the example name is unknown or the file cannot be read.
bool loadRequestSource(const BatchRequest &R, std::string &Out,
                       std::string &Error);

} // namespace serve
} // namespace anek

#endif // ANEK_SERVE_MANIFEST_H
