//===- BatchRunner.h - Resource-governed batch execution ---------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a stream of inference requests through the pipeline under
/// resource governance (DESIGN.md, "Serving model"). The runner owns a
/// bounded RequestQueue, a fixed set of serving worker threads, and one
/// shared inference ThreadPool; each request is executed under a
/// per-request governor (Deadline + memory budget + CancelToken) with
/// transient failures retried per RetryPolicy. Every offered request ends
/// in exactly one terminal state (ok/degraded/failed/timeout/shed) and is
/// reported exactly once through the streaming sink and the returned
/// (index-ordered) result vector.
///
/// Graceful drain: requestDrain() — or a flipped DrainSignal, the driver
/// wires SIGINT/SIGTERM to one — stops admission (remaining offers are
/// shed with reason "drain"), lets queued and in-flight requests finish,
/// and suppresses further retry attempts.
///
/// Fault activations made for requests carrying a fault= spec are
/// process-global and persist after run() returns (the registry has no
/// per-activation handle); in-process callers that keep running, i.e.
/// tests, isolate themselves with faults::reset().
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SERVE_BATCHRUNNER_H
#define ANEK_SERVE_BATCHRUNNER_H

#include "serve/RetryPolicy.h"
#include "serve/Serve.h"

#include <atomic>
#include <csignal>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace anek {

class BpSolveDelegate;
class Program;
class SolveCache;
class ThreadPool;
class WaveShardExecutor;
struct InferOptions;

namespace serve {

/// Builds a per-request shard executor: (program, the source it was
/// parsed from, the fully resolved inference options, shard count) -> a
/// WaveShardExecutor the runner owns for the attempt. This is serve's
/// only view of the shard tier — the layer below never links src/shard/;
/// the driver injects a factory that constructs a shard::ShardCoordinator
/// (tools/anek.cpp). Requests asking for shards while no factory is wired
/// simply run in process.
using ShardFactory = std::function<std::unique_ptr<WaveShardExecutor>(
    Program &Prog, const std::string &Source, const InferOptions &Opts,
    unsigned Shards)>;

/// Resolves a `cache=` directory to a live summary cache: serve's only
/// view of the cache tier (src/cache/ is never linked here; the driver
/// injects a provider that owns one cache::SummaryCache per directory,
/// shared across the requests naming it — the instances must outlive the
/// batch). Returning null disables caching for that request.
using CacheProvider = std::function<SolveCache *(const std::string &Dir)>;

/// Batch-wide knobs; per-request manifest keys override the defaults.
struct BatchOptions {
  /// Serving worker threads (requests in flight concurrently).
  unsigned Workers = 4;
  /// RequestQueue capacity.
  size_t QueueCap = 64;
  /// Retry budget per request (total attempts, first try included).
  unsigned MaxAttempts = 3;
  double RetryBaseDelaySeconds = 0.01;
  double RetryMaxDelaySeconds = 0.5;
  /// Default per-request wall-clock deadline in seconds; 0 = unlimited.
  double DefaultDeadlineSeconds = 0.0;
  /// Default per-request peak-memory budget in bytes; 0 = unlimited.
  long long DefaultMemBudgetBytes = 0;
  /// Default wave-job parallelism per request. 1 solves inline on the
  /// serving worker (request-level parallelism only).
  unsigned DefaultJobs = 1;
  /// Default shard worker processes per request (0 = sharding off unless
  /// a request opts in with shards=N).
  unsigned DefaultShards = 0;
  /// Shard-tier injection point (see ShardFactory above). Unset = every
  /// request runs in process regardless of shard counts.
  ShardFactory Shards;
  /// Default summary-cache directory; requests override with `cache=`.
  /// Empty = caching off unless a request opts in.
  std::string DefaultCacheDir;
  /// Cache-tier injection point (see CacheProvider above). Unset = every
  /// request runs uncached regardless of cache directories.
  CacheProvider Cache;
  /// Threads of the shared inference pool (created only when some request
  /// has jobs > 1); 0 = one per hardware thread.
  unsigned PoolThreads = 0;
  /// Fuse concurrent requests' BP solves into shared-arena kernel sweeps
  /// (DESIGN.md, "Solver kernel layout"): the runner installs one
  /// serve::FusedBpSolver across all serving workers. Results are
  /// byte-identical either way; deadlined requests bypass fusion
  /// automatically (their per-solve budget must not couple to a batch).
  bool FuseSolves = false;
  /// Largest number of solves packed into one fused arena.
  unsigned FuseMaxGraphs = 8;
  /// Rendezvous window a fused batch is held open for stragglers.
  double FuseWindowSeconds = 0.0002;
  /// Mixed into solver seeds and retry jitter.
  uint64_t Seed = 1;
  /// When set, a full queue sheds instead of backpressuring the producer
  /// (load tests and the throughput bench; the batch driver keeps the
  /// default blocking admission).
  bool ShedWhenFull = false;
  /// Slow-request log threshold in seconds; 0 disables the log. A request
  /// whose execution time (queue wait excluded) reaches the threshold
  /// emits a span-tree dump — the trace spans its serving thread recorded
  /// during the request, indented by nesting depth — through SlowLog, so
  /// a single outlier in a long batch explains itself without re-running
  /// under a profiler. Purely observational: results are identical with
  /// the log on or off.
  double SlowRequestSeconds = 0.0;
  /// Sink for slow-request dumps (one multi-line string per slow
  /// request); unset logs to stderr. Called from the serving thread that
  /// ran the request, unserialized.
  std::function<void(const std::string &)> SlowLog;
  /// Invoked once per terminal result, in completion order, from the
  /// thread that finished the request (serialized by the runner). The
  /// JSONL stream writer of `anek batch` plugs in here.
  std::function<void(const BatchResult &)> Sink;
  /// Async-signal drain flag: the runner polls it at admission and retry
  /// boundaries. The driver points this at its SIGINT/SIGTERM flag.
  const volatile std::sig_atomic_t *DrainSignal = nullptr;
};

/// Executes one batch. A runner instance is single-use: construct, run,
/// inspect. requestDrain() may be called from another thread at any time.
class BatchRunner {
public:
  explicit BatchRunner(BatchOptions Opts);

  /// Runs every request to a terminal state and returns the results
  /// ordered by request index. Blocks until done (or drained).
  std::vector<BatchResult> run(std::vector<BatchRequest> Requests);

  /// Initiates graceful drain: stop admitting, finish in-flight work,
  /// stop retrying. Safe from any thread; idempotent.
  void requestDrain();

  bool drainRequested() const;

private:
  BatchResult processOne(const BatchRequest &R, ThreadPool *SharedPool);
  Status runAttempt(const BatchRequest &R, ThreadPool *SharedPool,
                    BatchResult &Res);

  BatchOptions Opts;
  std::atomic<bool> Drain{false};
  /// The shared fused-solve delegate while run() is active (owned by
  /// run(), null unless BatchOptions::FuseSolves).
  BpSolveDelegate *FusedBp = nullptr;
};

} // namespace serve
} // namespace anek

#endif // ANEK_SERVE_BATCHRUNNER_H
