//===- RetryPolicy.cpp - Transient-failure retry with backoff ---------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "serve/RetryPolicy.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace anek;
using namespace anek::serve;

double RetryPolicy::delaySeconds(const std::string &Label,
                                 unsigned Attempt) const {
  if (Attempt < 2)
    return 0.0;
  double Exp = BaseDelaySeconds;
  for (unsigned I = 2; I < Attempt && Exp < MaxDelaySeconds; ++I)
    Exp *= 2.0;
  Exp = std::min(Exp, MaxDelaySeconds);

  // splitmix64-style finalizer over the seed (same recipe as the per-method
  // solver seeds), XORed with a stable hash of the retry site, so the
  // jitter decorrelates concurrent requests yet reproduces across runs.
  uint64_t S = Seed + 0x9E3779B97F4A7C15ULL;
  S = (S ^ (S >> 30)) * 0xBF58476D1CE4E5B9ULL;
  S = (S ^ (S >> 27)) * 0x94D049BB133111EBULL;
  S ^= S >> 31;
  uint64_t Hash = stableHash64(Label + "#" + std::to_string(Attempt)) ^ S;
  // Map the top 53 bits into [0, 1), then into a [0.5, 1.0] multiplier.
  double Unit = static_cast<double>(Hash >> 11) * 0x1.0p-53;
  return Exp * (0.5 + 0.5 * Unit);
}
