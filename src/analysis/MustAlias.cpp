//===- MustAlias.cpp - Local must-alias analysis ---------------------------===//

#include "analysis/MustAlias.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <cassert>
#include <map>

using namespace anek;

/// Renumbers \p Vn by first occurrence so two vectors describe the same
/// partition iff their canonical forms are equal.
static std::vector<uint32_t> canonicalize(const std::vector<uint32_t> &Vn) {
  std::vector<uint32_t> Out(Vn.size());
  std::map<uint32_t, uint32_t> Renaming;
  for (size_t I = 0, E = Vn.size(); I != E; ++I) {
    auto [It, Inserted] =
        Renaming.insert({Vn[I], static_cast<uint32_t>(Renaming.size())});
    (void)Inserted;
    Out[I] = It->second;
  }
  return Out;
}

/// Pairwise join: locals stay aliased only when aliased in both inputs.
static std::vector<uint32_t> joinVn(const std::vector<uint32_t> &A,
                                    const std::vector<uint32_t> &B) {
  assert(A.size() == B.size() && "joining mismatched states");
  std::vector<uint32_t> Out(A.size());
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> PairIds;
  for (size_t I = 0, E = A.size(); I != E; ++I) {
    auto [It, Inserted] = PairIds.insert(
        {{A[I], B[I]}, static_cast<uint32_t>(PairIds.size())});
    (void)Inserted;
    Out[I] = It->second;
  }
  return Out;
}

uint32_t MustAliasAnalysis::freshBaseFor(uint32_t Block) const {
  assert(Block < ActionOffsets.size() && "block out of range");
  return static_cast<uint32_t>(Ir.Locals.size()) + ActionOffsets[Block];
}

MustAliasAnalysis::MustAliasAnalysis(const MethodIr &Ir) : Ir(Ir) {
  telemetry::Span Span("analysis.alias", telemetry::TraceLevel::Method,
                       "analysis");
  if (Span.active() && Ir.Method)
    Span.arg("method", Ir.Method->qualifiedName());
  if (telemetry::enabled(telemetry::TraceLevel::Phase))
    telemetry::counter("analysis.alias.runs").add(1);
  const size_t NumLocals = Ir.Locals.size();
  const size_t NumBlocks = Ir.Blocks.size();

  // Each action gets a globally unique "fresh definition" id that is
  // stable across fixpoint iterations (ids >= NumLocals never collide with
  // the canonical ids produced by joins, which are < NumLocals).
  ActionOffsets.resize(NumBlocks);
  uint32_t Offset = 0;
  for (size_t B = 0; B != NumBlocks; ++B) {
    ActionOffsets[B] = Offset;
    Offset += static_cast<uint32_t>(Ir.Blocks[B].Actions.size());
  }

  EntryVn.assign(NumBlocks, {});
  std::vector<uint32_t> Initial(NumLocals);
  for (size_t I = 0; I != NumLocals; ++I)
    Initial[I] = static_cast<uint32_t>(I);
  EntryVn[MethodIr::EntryBlock] = Initial;

  std::vector<std::vector<uint32_t>> Preds = Ir.predecessors();
  bool Changed = true;
  unsigned Iterations = 0;
  while (Changed) {
    Changed = false;
    assert(++Iterations < 10000 && "must-alias fixpoint diverged");
    (void)Iterations;
    for (uint32_t B = 0; B != NumBlocks; ++B) {
      if (EntryVn[B].empty() && B != MethodIr::EntryBlock)
        continue; // Not yet reached.
      // Compute the exit state of block B.
      std::vector<uint32_t> Vn = EntryVn[B];
      NextFresh = freshBaseFor(B);
      for (const Action &A : Ir.Blocks[B].Actions)
        applyAction(A, Vn);
      std::vector<uint32_t> Exit = canonicalize(Vn);
      // Propagate into successors.
      for (uint32_t Succ : Ir.Blocks[B].Term.Succs) {
        std::vector<uint32_t> NewEntry =
            EntryVn[Succ].empty() ? Exit
                                  : canonicalize(joinVn(EntryVn[Succ], Exit));
        if (NewEntry != EntryVn[Succ]) {
          EntryVn[Succ] = std::move(NewEntry);
          Changed = true;
        }
      }
    }
  }
  // Unreached blocks (possible after `return`): give every local its own
  // class.
  for (uint32_t B = 0; B != NumBlocks; ++B)
    if (EntryVn[B].empty())
      EntryVn[B] = Initial;
}

void MustAliasAnalysis::applyAction(const Action &A,
                                    std::vector<uint32_t> &Vn) const {
  switch (A.Kind) {
  case ActionKind::Copy:
    if (A.Dst != NoLocal && A.Src != NoLocal)
      Vn[A.Dst] = Vn[A.Src];
    return;
  case ActionKind::Alloc:
  case ActionKind::Call:
  case ActionKind::FieldLoad:
  case ActionKind::OpaqueUse:
    if (A.Dst != NoLocal)
      Vn[A.Dst] = NextFresh++;
    return;
  case ActionKind::FieldStore:
  case ActionKind::Return:
  case ActionKind::EnterSync:
  case ActionKind::ExitSync:
    return;
  }
}

std::vector<uint32_t>
MustAliasAnalysis::valueNumbersAt(uint32_t Block,
                                  uint32_t ActionIndex) const {
  assert(Block < Ir.Blocks.size() && "block out of range");
  assert(ActionIndex <= Ir.Blocks[Block].Actions.size() &&
         "action index out of range");
  std::vector<uint32_t> Vn = EntryVn[Block];
  NextFresh = freshBaseFor(Block);
  for (uint32_t I = 0; I != ActionIndex; ++I)
    applyAction(Ir.Blocks[Block].Actions[I], Vn);
  return Vn;
}

bool MustAliasAnalysis::mustAlias(uint32_t Block, uint32_t ActionIndex,
                                  LocalId A, LocalId B) const {
  if (A == B)
    return true;
  std::vector<uint32_t> Vn = valueNumbersAt(Block, ActionIndex);
  assert(A < Vn.size() && B < Vn.size() && "local out of range");
  return Vn[A] == Vn[B];
}
