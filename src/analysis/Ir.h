//===- Ir.h - Linearized permission-relevant IR ------------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small control-flow-graph IR each method body is lowered into. Every
/// action either moves object references between locals or is one of the
/// permission-relevant events the paper's abstraction observes: method
/// calls, allocations, field reads, field writes, returns, synchronized
/// regions. Both the PFG builder (Section 3.1) and the PLURAL checker walk
/// this IR.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_ANALYSIS_IR_H
#define ANEK_ANALYSIS_IR_H

#include "lang/Ast.h"
#include "support/SourceLocation.h"

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace anek {

/// Index of a local slot in MethodIr::Locals.
using LocalId = uint32_t;

/// Sentinel for "no local" (e.g. a call whose result is unused).
inline constexpr LocalId NoLocal = std::numeric_limits<LocalId>::max();

/// Role of a local slot.
enum class LocalKind { Receiver, Param, UserVar, Temp };

/// One primitive action's operation.
enum class ActionKind {
  Alloc,      ///< Dst = new Class(Args...)
  Call,       ///< Dst = Recv.Callee(Args...)
  Copy,       ///< Dst = Src
  FieldLoad,  ///< Dst = Recv.Field
  FieldStore, ///< Recv.Field = Src
  Return,     ///< return Src (Src may be NoLocal)
  EnterSync,  ///< synchronized (Target) {
  ExitSync,   ///< } end of synchronized
  OpaqueUse,  ///< Dst defined from primitive computation (no perm flow)
};

/// Terminator shape of a basic block.
enum class TermKind { Goto, CondBranch, Exit };

/// One local slot: a parameter, the receiver, a user variable, or a
/// compiler temporary introduced by expression lowering.
struct LocalSlot {
  LocalKind Kind = LocalKind::Temp;
  std::string Name;
  /// Class of the value when it is an object; null for primitives.
  TypeDecl *Class = nullptr;
  /// Parameter index when Kind == Param.
  unsigned ParamIndex = 0;
};

/// One primitive action.
struct Action {
  ActionKind Kind = ActionKind::OpaqueUse;
  LocalId Dst = NoLocal;
  LocalId Recv = NoLocal; ///< Receiver/target for Call/Field*/EnterSync.
  LocalId Src = NoLocal;  ///< Source for Copy/FieldStore/Return.
  std::vector<LocalId> Args;
  MethodDecl *Callee = nullptr;   ///< For Call; ctor for Alloc (may be null).
  TypeDecl *AllocClass = nullptr; ///< For Alloc.
  std::string FieldName;          ///< For FieldLoad/FieldStore.
  SourceLocation Loc;
};

/// Information attached to a conditional branch whose condition was a
/// direct dynamic state test such as `it.hasNext()` (possibly negated):
/// PLURAL's branch sensitivity consumes this; ANEK deliberately does not
/// (the paper names this as the source of its fourth PMD warning).
struct StateTestInfo {
  LocalId Subject = NoLocal;
  MethodDecl *TestMethod = nullptr;
  bool Negated = false;
};

/// Block terminator.
struct Terminator {
  TermKind Kind = TermKind::Exit;
  /// Successor block ids: Goto uses Succs[0]; CondBranch uses Succs[0] for
  /// the true edge and Succs[1] for the false edge.
  std::vector<uint32_t> Succs;
  /// Set only for CondBranch on a recognized dynamic state test.
  std::optional<StateTestInfo> StateTest;
};

/// One basic block.
struct BasicBlock {
  std::vector<Action> Actions;
  Terminator Term;
};

/// The lowered body of one method.
struct MethodIr {
  MethodDecl *Method = nullptr;
  std::vector<LocalSlot> Locals;
  std::vector<BasicBlock> Blocks;
  /// Receiver slot (NoLocal for static methods).
  LocalId ReceiverLocal = NoLocal;
  /// Slot of each parameter, in order.
  std::vector<LocalId> ParamLocals;

  /// Entry block is always block 0.
  static constexpr uint32_t EntryBlock = 0;

  /// Predecessor lists, computable once blocks are final.
  std::vector<std::vector<uint32_t>> predecessors() const;

  /// Renders a readable listing of the IR (for tests and debugging).
  std::string str() const;
};

} // namespace anek

#endif // ANEK_ANALYSIS_IR_H
