//===- MustAlias.h - Local must-alias analysis -------------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "local must-alias analysis" of paper Section 3.1: a forward
/// dataflow that partitions a method's locals into classes known to hold
/// the same object, so permissions can be tracked across reassignments of
/// local variables. Copies merge classes; allocations, calls and field
/// loads give their destination a fresh value.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_ANALYSIS_MUSTALIAS_H
#define ANEK_ANALYSIS_MUSTALIAS_H

#include "analysis/Ir.h"

#include <vector>

namespace anek {

/// Must-alias facts for one method. The join at control-flow merges keeps
/// two locals aliased only when they are aliased along every incoming
/// path, so "must" is sound.
class MustAliasAnalysis {
public:
  explicit MustAliasAnalysis(const MethodIr &Ir);

  /// True when locals \p A and \p B definitely refer to the same object at
  /// the program point *before* action \p ActionIndex of block \p Block
  /// (ActionIndex may equal the action count: the point after the block).
  bool mustAlias(uint32_t Block, uint32_t ActionIndex, LocalId A,
                 LocalId B) const;

  /// The value-number vector at the given point; equal numbers mean
  /// must-aliased locals.
  std::vector<uint32_t> valueNumbersAt(uint32_t Block,
                                       uint32_t ActionIndex) const;

private:
  /// Applies one action's effect to a value-number vector.
  void applyAction(const Action &A, std::vector<uint32_t> &Vn) const;

  /// First fresh definition id for block \p Block. Fresh ids are stable
  /// across fixpoint iterations and never collide with join-produced ids
  /// (which are bounded by the local count).
  uint32_t freshBaseFor(uint32_t Block) const;

  const MethodIr &Ir;
  /// Entry value numbers per block (fixpoint solution).
  std::vector<std::vector<uint32_t>> EntryVn;
  /// Prefix sums of per-block action counts, for freshBaseFor().
  std::vector<uint32_t> ActionOffsets;
  mutable uint32_t NextFresh = 0;
};

} // namespace anek

#endif // ANEK_ANALYSIS_MUSTALIAS_H
