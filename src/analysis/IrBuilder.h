//===- IrBuilder.h - Lower MiniJava ASTs to the action IR --------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#ifndef ANEK_ANALYSIS_IRBUILDER_H
#define ANEK_ANALYSIS_IRBUILDER_H

#include "analysis/Ir.h"

namespace anek {

/// Lowers \p Method (which must have a body and be past Sema) into the
/// action IR. Structured control flow becomes explicit blocks; nested
/// expressions are flattened through temporaries; conditions that are
/// direct dynamic state tests are recorded on the branch terminator.
MethodIr lowerToIr(MethodDecl &Method);

} // namespace anek

#endif // ANEK_ANALYSIS_IRBUILDER_H
