//===- IrBuilder.cpp - Lower MiniJava ASTs to the action IR ----------------===//

#include "analysis/IrBuilder.h"

#include "support/Format.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cassert>
#include <unordered_map>

using namespace anek;

namespace {

/// Stateful lowering of a single method body.
class IrLowering {
public:
  explicit IrLowering(MethodDecl &Method) : Method(Method) {
    Ir.Method = &Method;
  }

  MethodIr run();

private:
  // Block plumbing.
  uint32_t newBlock() {
    Ir.Blocks.emplace_back();
    return static_cast<uint32_t>(Ir.Blocks.size() - 1);
  }
  BasicBlock &block(uint32_t Id) { return Ir.Blocks[Id]; }
  void setGoto(uint32_t From, uint32_t To) {
    block(From).Term.Kind = TermKind::Goto;
    block(From).Term.Succs = {To};
  }
  Action &emit(ActionKind Kind, SourceLocation Loc) {
    Action A;
    A.Kind = Kind;
    A.Loc = Loc;
    block(Cur).Actions.push_back(std::move(A));
    return block(Cur).Actions.back();
  }

  // Local slots.
  LocalId newLocal(LocalKind Kind, std::string Name, TypeDecl *Class) {
    LocalSlot Slot;
    Slot.Kind = Kind;
    Slot.Name = std::move(Name);
    Slot.Class = Class;
    Ir.Locals.push_back(std::move(Slot));
    return static_cast<LocalId>(Ir.Locals.size() - 1);
  }
  LocalId newTemp(TypeDecl *Class) {
    return newLocal(LocalKind::Temp,
                    formatStr("%%t%u", unsigned(Ir.Locals.size())), Class);
  }

  // Lowering.
  void lowerStmt(Stmt *S);
  /// Lowers an expression for its value; returns the local holding it.
  LocalId lowerExpr(Expr *E);
  /// Lowers an assignment's effect.
  void lowerAssign(AssignExpr *Assign);
  /// Recognizes `x.test()` / `!x.test()` conditions on state-test methods.
  std::optional<StateTestInfo> recognizeStateTest(Expr *Cond);

  MethodDecl &Method;
  MethodIr Ir;
  uint32_t Cur = 0;
  std::unordered_map<const VarDeclStmt *, LocalId> LocalSlots;
};

} // namespace

std::vector<std::vector<uint32_t>> MethodIr::predecessors() const {
  std::vector<std::vector<uint32_t>> Preds(Blocks.size());
  for (uint32_t B = 0, E = static_cast<uint32_t>(Blocks.size()); B != E; ++B)
    for (uint32_t Succ : Blocks[B].Term.Succs)
      Preds[Succ].push_back(B);
  return Preds;
}

std::string MethodIr::str() const {
  std::string Out;
  auto LocalName = [&](LocalId Id) -> std::string {
    if (Id == NoLocal)
      return "_";
    return Locals[Id].Name;
  };
  for (uint32_t B = 0, E = static_cast<uint32_t>(Blocks.size()); B != E; ++B) {
    Out += formatStr("bb%u:\n", B);
    for (const Action &A : Blocks[B].Actions) {
      Out += "  ";
      switch (A.Kind) {
      case ActionKind::Alloc:
        Out += LocalName(A.Dst) + " = new " +
               (A.AllocClass ? A.AllocClass->Name : "?");
        break;
      case ActionKind::Call:
        Out += LocalName(A.Dst) + " = " + LocalName(A.Recv) + "." +
               (A.Callee ? A.Callee->Name : "?") + "(";
        for (size_t I = 0; I != A.Args.size(); ++I) {
          if (I)
            Out += ", ";
          Out += LocalName(A.Args[I]);
        }
        Out += ")";
        break;
      case ActionKind::Copy:
        Out += LocalName(A.Dst) + " = " + LocalName(A.Src);
        break;
      case ActionKind::FieldLoad:
        Out += LocalName(A.Dst) + " = " + LocalName(A.Recv) + "." +
               A.FieldName;
        break;
      case ActionKind::FieldStore:
        Out += LocalName(A.Recv) + "." + A.FieldName + " = " +
               LocalName(A.Src);
        break;
      case ActionKind::Return:
        Out += "return " + LocalName(A.Src);
        break;
      case ActionKind::EnterSync:
        Out += "entersync " + LocalName(A.Recv);
        break;
      case ActionKind::ExitSync:
        Out += "exitsync";
        break;
      case ActionKind::OpaqueUse:
        Out += LocalName(A.Dst) + " = opaque";
        break;
      }
      Out += "\n";
    }
    const Terminator &T = Blocks[B].Term;
    switch (T.Kind) {
    case TermKind::Goto:
      Out += formatStr("  goto bb%u\n", T.Succs[0]);
      break;
    case TermKind::CondBranch:
      Out += formatStr("  br bb%u, bb%u", T.Succs[0], T.Succs[1]);
      if (T.StateTest)
        Out += formatStr(" (test %s%s)", T.StateTest->Negated ? "!" : "",
                         T.StateTest->TestMethod->Name.c_str());
      Out += "\n";
      break;
    case TermKind::Exit:
      Out += "  exit\n";
      break;
    }
  }
  return Out;
}

static TypeDecl *classOf(const Expr &E) {
  return E.Type.isClass() ? E.Type.Decl : nullptr;
}

LocalId IrLowering::lowerExpr(Expr *E) {
  assert(E && "lowering null expression");
  switch (E->getKind()) {
  case Expr::Kind::VarRef: {
    auto *Ref = cast<VarRefExpr>(E);
    switch (Ref->Binding) {
    case VarRefBinding::Local: {
      auto It = LocalSlots.find(Ref->LocalDecl);
      assert(It != LocalSlots.end() && "use before declaration");
      return It->second;
    }
    case VarRefBinding::Param:
      return Ir.ParamLocals[Ref->ParamIndex];
    case VarRefBinding::FieldOfThis: {
      LocalId Dst = newTemp(classOf(*Ref));
      Action &A = emit(ActionKind::FieldLoad, Ref->getLoc());
      A.Dst = Dst;
      A.Recv = Ir.ReceiverLocal;
      A.FieldName = Ref->Name;
      return Dst;
    }
    case VarRefBinding::Unresolved:
      break;
    }
    // Unresolved names were already diagnosed by Sema; yield a fresh temp.
    return newTemp(nullptr);
  }
  case Expr::Kind::This:
    assert(Ir.ReceiverLocal != NoLocal && "'this' in a static method");
    return Ir.ReceiverLocal;
  case Expr::Kind::FieldRead: {
    auto *Read = cast<FieldReadExpr>(E);
    LocalId Base = lowerExpr(Read->Base.get());
    LocalId Dst = newTemp(classOf(*Read));
    Action &A = emit(ActionKind::FieldLoad, Read->getLoc());
    A.Dst = Dst;
    A.Recv = Base;
    A.FieldName = Read->FieldName;
    return Dst;
  }
  case Expr::Kind::Call: {
    auto *Call = cast<CallExpr>(E);
    LocalId Recv = NoLocal;
    if (Call->Base)
      Recv = lowerExpr(Call->Base.get());
    else if (Call->Callee && !Call->Callee->IsStatic)
      Recv = Ir.ReceiverLocal;
    std::vector<LocalId> Args;
    Args.reserve(Call->Args.size());
    for (const ExprPtr &Arg : Call->Args)
      Args.push_back(lowerExpr(Arg.get()));
    LocalId Dst = newTemp(classOf(*Call));
    Action &A = emit(ActionKind::Call, Call->getLoc());
    A.Dst = Dst;
    A.Recv = Recv;
    A.Args = std::move(Args);
    A.Callee = Call->Callee;
    return Dst;
  }
  case Expr::Kind::New: {
    auto *New = cast<NewExpr>(E);
    std::vector<LocalId> Args;
    Args.reserve(New->Args.size());
    for (const ExprPtr &Arg : New->Args)
      Args.push_back(lowerExpr(Arg.get()));
    LocalId Dst = newTemp(New->ClassType.Decl);
    Action &A = emit(ActionKind::Alloc, New->getLoc());
    A.Dst = Dst;
    A.Args = std::move(Args);
    A.Callee = New->Ctor;
    A.AllocClass = New->ClassType.Decl;
    return Dst;
  }
  case Expr::Kind::Assign: {
    auto *Assign = cast<AssignExpr>(E);
    lowerAssign(Assign);
    // The value of the assignment is the RHS value; re-lowering the LHS as
    // a read is observationally fine for our permission abstraction
    // because assignments-as-values are rare in the corpus.
    if (auto *Ref = dyn_cast<VarRefExpr>(Assign->Lhs.get()))
      if (Ref->Binding != VarRefBinding::FieldOfThis)
        return lowerExpr(Ref);
    return newTemp(classOf(*Assign));
  }
  case Expr::Kind::IntLit:
  case Expr::Kind::BoolLit:
  case Expr::Kind::StringLit:
  case Expr::Kind::NullLit: {
    LocalId Dst = newTemp(classOf(*E));
    Action &A = emit(ActionKind::OpaqueUse, E->getLoc());
    A.Dst = Dst;
    return Dst;
  }
  case Expr::Kind::Binary: {
    auto *Bin = cast<BinaryExpr>(E);
    // Both operands are evaluated for their permission effects; the
    // primitive result itself carries no permission.
    lowerExpr(Bin->Lhs.get());
    lowerExpr(Bin->Rhs.get());
    LocalId Dst = newTemp(nullptr);
    Action &A = emit(ActionKind::OpaqueUse, Bin->getLoc());
    A.Dst = Dst;
    return Dst;
  }
  case Expr::Kind::Unary: {
    auto *Un = cast<UnaryExpr>(E);
    lowerExpr(Un->Operand.get());
    LocalId Dst = newTemp(nullptr);
    Action &A = emit(ActionKind::OpaqueUse, Un->getLoc());
    A.Dst = Dst;
    return Dst;
  }
  }
  assert(false && "unknown expression kind");
  return NoLocal;
}

void IrLowering::lowerAssign(AssignExpr *Assign) {
  if (auto *Ref = dyn_cast<VarRefExpr>(Assign->Lhs.get())) {
    if (Ref->Binding == VarRefBinding::FieldOfThis) {
      LocalId Src = lowerExpr(Assign->Rhs.get());
      Action &A = emit(ActionKind::FieldStore, Assign->getLoc());
      A.Recv = Ir.ReceiverLocal;
      A.FieldName = Ref->Name;
      A.Src = Src;
      return;
    }
    LocalId Src = lowerExpr(Assign->Rhs.get());
    LocalId Dst;
    if (Ref->Binding == VarRefBinding::Local) {
      auto It = LocalSlots.find(Ref->LocalDecl);
      assert(It != LocalSlots.end() && "assignment before declaration");
      Dst = It->second;
    } else {
      Dst = Ir.ParamLocals[Ref->ParamIndex];
    }
    Action &A = emit(ActionKind::Copy, Assign->getLoc());
    A.Dst = Dst;
    A.Src = Src;
    return;
  }
  auto *Read = cast<FieldReadExpr>(Assign->Lhs.get());
  LocalId Base = lowerExpr(Read->Base.get());
  LocalId Src = lowerExpr(Assign->Rhs.get());
  Action &A = emit(ActionKind::FieldStore, Assign->getLoc());
  A.Recv = Base;
  A.FieldName = Read->FieldName;
  A.Src = Src;
}

std::optional<StateTestInfo> IrLowering::recognizeStateTest(Expr *Cond) {
  bool Negated = false;
  while (auto *Un = dyn_cast<UnaryExpr>(Cond)) {
    if (Un->Op != UnaryOp::Not)
      return std::nullopt;
    Negated = !Negated;
    Cond = Un->Operand.get();
  }
  auto *Call = dyn_cast<CallExpr>(Cond);
  if (!Call || !Call->Callee)
    return std::nullopt;
  const MethodSpec &Spec = Call->Callee->DeclaredSpec;
  if (Spec.TrueIndicates.empty() && Spec.FalseIndicates.empty())
    return std::nullopt;
  return StateTestInfo{NoLocal, Call->Callee, Negated};
}

void IrLowering::lowerStmt(Stmt *S) {
  assert(S && "lowering null statement");
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Inner : cast<BlockStmt>(S)->Stmts)
      lowerStmt(Inner.get());
    return;
  case Stmt::Kind::VarDecl: {
    auto *Decl = cast<VarDeclStmt>(S);
    LocalId Slot = newLocal(LocalKind::UserVar, Decl->Name,
                            Decl->Type.isClass() ? Decl->Type.Decl : nullptr);
    LocalSlots[Decl] = Slot;
    if (Decl->Init) {
      LocalId Src = lowerExpr(Decl->Init.get());
      Action &A = emit(ActionKind::Copy, Decl->getLoc());
      A.Dst = Slot;
      A.Src = Src;
    }
    return;
  }
  case Stmt::Kind::If: {
    auto *If = cast<IfStmt>(S);
    std::optional<StateTestInfo> Test = recognizeStateTest(If->Cond.get());
    lowerExpr(If->Cond.get());
    if (Test) {
      // The subject is the receiver of the just-emitted test call.
      for (auto It = block(Cur).Actions.rbegin(),
                E = block(Cur).Actions.rend();
           It != E; ++It) {
        if (It->Kind == ActionKind::Call && It->Callee == Test->TestMethod) {
          Test->Subject = It->Recv;
          break;
        }
      }
    }

    uint32_t CondBlock = Cur;
    uint32_t ThenBlock = newBlock();
    uint32_t ElseBlock = newBlock();
    uint32_t JoinBlock = newBlock();

    block(CondBlock).Term.Kind = TermKind::CondBranch;
    block(CondBlock).Term.Succs = {ThenBlock, ElseBlock};
    if (Test && Test->Subject != NoLocal)
      block(CondBlock).Term.StateTest = Test;

    Cur = ThenBlock;
    lowerStmt(If->Then.get());
    setGoto(Cur, JoinBlock);

    Cur = ElseBlock;
    if (If->Else)
      lowerStmt(If->Else.get());
    setGoto(Cur, JoinBlock);

    Cur = JoinBlock;
    return;
  }
  case Stmt::Kind::While: {
    auto *While = cast<WhileStmt>(S);
    uint32_t HeadBlock = newBlock();
    setGoto(Cur, HeadBlock);
    Cur = HeadBlock;

    std::optional<StateTestInfo> Test = recognizeStateTest(While->Cond.get());
    lowerExpr(While->Cond.get());
    if (Test) {
      for (auto It = block(Cur).Actions.rbegin(),
                E = block(Cur).Actions.rend();
           It != E; ++It) {
        if (It->Kind == ActionKind::Call && It->Callee == Test->TestMethod) {
          Test->Subject = It->Recv;
          break;
        }
      }
    }
    // The condition may span blocks only if it contained control flow,
    // which our expression lowering never introduces.
    uint32_t CondEnd = Cur;
    uint32_t BodyBlock = newBlock();
    uint32_t ExitBlock = newBlock();
    block(CondEnd).Term.Kind = TermKind::CondBranch;
    block(CondEnd).Term.Succs = {BodyBlock, ExitBlock};
    if (Test && Test->Subject != NoLocal)
      block(CondEnd).Term.StateTest = Test;

    Cur = BodyBlock;
    lowerStmt(While->Body.get());
    setGoto(Cur, HeadBlock); // Back edge.

    Cur = ExitBlock;
    return;
  }
  case Stmt::Kind::Return: {
    auto *Ret = cast<ReturnStmt>(S);
    LocalId Src = NoLocal;
    if (Ret->Value)
      Src = lowerExpr(Ret->Value.get());
    Action &A = emit(ActionKind::Return, Ret->getLoc());
    A.Src = Src;
    // Statements after a return are unreachable; route them to a fresh
    // block that still flows to the exit so the IR stays well formed.
    block(Cur).Term.Kind = TermKind::Exit;
    block(Cur).Term.Succs.clear();
    Cur = newBlock();
    return;
  }
  case Stmt::Kind::Assert:
    lowerExpr(cast<AssertStmt>(S)->Cond.get());
    return;
  case Stmt::Kind::Synchronized: {
    auto *Sync = cast<SynchronizedStmt>(S);
    LocalId Target = lowerExpr(Sync->Target.get());
    Action &Enter = emit(ActionKind::EnterSync, Sync->getLoc());
    Enter.Recv = Target;
    lowerStmt(Sync->Body.get());
    emit(ActionKind::ExitSync, Sync->getLoc());
    return;
  }
  case Stmt::Kind::ExprStmt:
    lowerExpr(cast<ExprStmt>(S)->E.get());
    return;
  }
}

MethodIr IrLowering::run() {
  // Receiver and parameters get the first slots.
  if (!Method.IsStatic)
    Ir.ReceiverLocal =
        newLocal(LocalKind::Receiver, "this", Method.Owner);
  for (unsigned I = 0, E = static_cast<unsigned>(Method.Params.size());
       I != E; ++I) {
    const ParamDecl &Param = Method.Params[I];
    LocalId Slot = newLocal(LocalKind::Param, Param.Name,
                            Param.Type.isClass() ? Param.Type.Decl : nullptr);
    Ir.Locals[Slot].ParamIndex = I;
    Ir.ParamLocals.push_back(Slot);
  }

  Cur = newBlock();
  assert(Cur == MethodIr::EntryBlock && "entry must be block 0");
  lowerStmt(Method.Body.get());
  if (block(Cur).Term.Kind == TermKind::Goto &&
      block(Cur).Term.Succs.empty())
    block(Cur).Term.Kind = TermKind::Exit;
  // The final fall-through block exits the method.
  if (block(Cur).Term.Succs.empty())
    block(Cur).Term.Kind = TermKind::Exit;
  return std::move(Ir);
}

MethodIr anek::lowerToIr(MethodDecl &Method) {
  assert(Method.Body && "cannot lower a bodiless method");
  telemetry::Span S("analysis.ir", telemetry::TraceLevel::Method,
                    "analysis");
  IrLowering Lowering(Method);
  MethodIr Ir = Lowering.run();
  if (S.active()) {
    S.arg("method", Method.qualifiedName());
    S.arg("blocks", static_cast<uint64_t>(Ir.Blocks.size()));
    telemetry::counter("analysis.ir.methods").add(1);
    telemetry::histogram("analysis.ir.blocks")
        .record(static_cast<double>(Ir.Blocks.size()));
  }
  return Ir;
}
