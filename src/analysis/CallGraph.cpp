//===- CallGraph.cpp - Static call graph over a Program --------------------===//

#include "analysis/CallGraph.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace anek;

void CallGraph::addEdge(MethodDecl *Caller, MethodDecl *Callee) {
  assert(Caller && Callee && "null call-graph edge endpoint");
  std::vector<MethodDecl *> &Out = Callees[Caller];
  if (std::find(Out.begin(), Out.end(), Callee) != Out.end())
    return;
  Out.push_back(Callee);
  Callers[Callee].push_back(Caller);
  ++NumEdges;
}

void CallGraph::scanExpr(MethodDecl *Caller, const Expr *E) {
  if (!E)
    return;
  switch (E->getKind()) {
  case Expr::Kind::Call: {
    const auto *Call = cast<CallExpr>(E);
    scanExpr(Caller, Call->Base.get());
    for (const ExprPtr &Arg : Call->Args)
      scanExpr(Caller, Arg.get());
    if (Call->Callee)
      addEdge(Caller, Call->Callee);
    return;
  }
  case Expr::Kind::New: {
    const auto *New = cast<NewExpr>(E);
    for (const ExprPtr &Arg : New->Args)
      scanExpr(Caller, Arg.get());
    if (New->Ctor)
      addEdge(Caller, New->Ctor);
    return;
  }
  case Expr::Kind::FieldRead:
    scanExpr(Caller, cast<FieldReadExpr>(E)->Base.get());
    return;
  case Expr::Kind::Assign: {
    const auto *Assign = cast<AssignExpr>(E);
    scanExpr(Caller, Assign->Lhs.get());
    scanExpr(Caller, Assign->Rhs.get());
    return;
  }
  case Expr::Kind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    scanExpr(Caller, Bin->Lhs.get());
    scanExpr(Caller, Bin->Rhs.get());
    return;
  }
  case Expr::Kind::Unary:
    scanExpr(Caller, cast<UnaryExpr>(E)->Operand.get());
    return;
  default:
    return;
  }
}

void CallGraph::scanStmt(MethodDecl *Caller, const Stmt *S) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Inner : cast<BlockStmt>(S)->Stmts)
      scanStmt(Caller, Inner.get());
    return;
  case Stmt::Kind::VarDecl:
    scanExpr(Caller, cast<VarDeclStmt>(S)->Init.get());
    return;
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    scanExpr(Caller, If->Cond.get());
    scanStmt(Caller, If->Then.get());
    scanStmt(Caller, If->Else.get());
    return;
  }
  case Stmt::Kind::While: {
    const auto *While = cast<WhileStmt>(S);
    scanExpr(Caller, While->Cond.get());
    scanStmt(Caller, While->Body.get());
    return;
  }
  case Stmt::Kind::Return:
    scanExpr(Caller, cast<ReturnStmt>(S)->Value.get());
    return;
  case Stmt::Kind::Assert:
    scanExpr(Caller, cast<AssertStmt>(S)->Cond.get());
    return;
  case Stmt::Kind::Synchronized: {
    const auto *Sync = cast<SynchronizedStmt>(S);
    scanExpr(Caller, Sync->Target.get());
    scanStmt(Caller, Sync->Body.get());
    return;
  }
  case Stmt::Kind::ExprStmt:
    scanExpr(Caller, cast<ExprStmt>(S)->E.get());
    return;
  }
}

CallGraph::CallGraph(const Program &Prog) {
  telemetry::Span S("analysis.callgraph", telemetry::TraceLevel::Phase,
                    "analysis");
  for (const auto &Type : Prog.Types) {
    for (const auto &Method : Type->Methods) {
      AllMethods.push_back(Method.get());
      if (Method->Body)
        scanStmt(Method.get(), Method->Body.get());
    }
  }
  if (S.active()) {
    S.arg("methods", static_cast<uint64_t>(AllMethods.size()));
    S.arg("edges", static_cast<uint64_t>(NumEdges));
    telemetry::counter("analysis.callgraph.edges").add(NumEdges);
  }
}

const std::vector<MethodDecl *> &
CallGraph::callees(const MethodDecl *Caller) const {
  static const std::vector<MethodDecl *> Empty;
  auto It = Callees.find(Caller);
  return It != Callees.end() ? It->second : Empty;
}

const std::vector<MethodDecl *> &
CallGraph::callers(const MethodDecl *Callee) const {
  static const std::vector<MethodDecl *> Empty;
  auto It = Callers.find(Callee);
  return It != Callers.end() ? It->second : Empty;
}

unsigned
CallGraph::computeSccs(std::map<const MethodDecl *, unsigned> &SccOf) const {
  std::map<const MethodDecl *, unsigned> Index, LowLink;
  std::vector<MethodDecl *> TarjanStack;
  std::map<const MethodDecl *, bool> OnStack;
  unsigned NextIndex = 0, NextScc = 0;

  struct Frame {
    MethodDecl *Method;
    size_t NextChild;
  };
  for (MethodDecl *Root : AllMethods) {
    if (Index.count(Root))
      continue;
    std::vector<Frame> Stack;
    auto Open = [&](MethodDecl *M) {
      Index[M] = LowLink[M] = NextIndex++;
      TarjanStack.push_back(M);
      OnStack[M] = true;
      Stack.push_back({M, 0});
    };
    Open(Root);
    while (!Stack.empty()) {
      Frame &Top = Stack.back();
      const std::vector<MethodDecl *> &Children = callees(Top.Method);
      if (Top.NextChild < Children.size()) {
        MethodDecl *Child = Children[Top.NextChild++];
        if (!Index.count(Child))
          Open(Child);
        else if (OnStack[Child])
          LowLink[Top.Method] =
              std::min(LowLink[Top.Method], Index[Child]);
        continue;
      }
      MethodDecl *Done = Top.Method;
      Stack.pop_back();
      if (!Stack.empty())
        LowLink[Stack.back().Method] =
            std::min(LowLink[Stack.back().Method], LowLink[Done]);
      if (LowLink[Done] == Index[Done]) {
        // Pop one component. Tarjan completes an SCC only after every SCC
        // it can reach, so component ids are in reverse topological order
        // (callees' SCCs get smaller ids).
        for (;;) {
          MethodDecl *Member = TarjanStack.back();
          TarjanStack.pop_back();
          OnStack[Member] = false;
          SccOf[Member] = NextScc;
          if (Member == Done)
            break;
        }
        ++NextScc;
      }
    }
  }
  return NextScc;
}

std::vector<std::vector<MethodDecl *>> CallGraph::sccWaves() const {
  telemetry::Span Span("analysis.sccwaves", telemetry::TraceLevel::Phase,
                       "analysis");
  std::map<const MethodDecl *, unsigned> SccOf;
  const unsigned NextScc = computeSccs(SccOf);

  // Wave level per SCC: one past the deepest *bodied* callee component.
  // Components without bodies are never solved, so they do not push
  // their callers into later waves.
  std::vector<unsigned> Level(NextScc, 0);
  std::vector<bool> HasBody(NextScc, false);
  std::vector<std::vector<MethodDecl *>> Members(NextScc);
  for (MethodDecl *M : AllMethods) {
    if (M->Body)
      HasBody[SccOf[M]] = true;
    Members[SccOf[M]].push_back(M);
  }
  // Ascending component id = reverse topological order, so every callee
  // component's level is final before a caller component reads it.
  for (unsigned S = 0; S != NextScc; ++S)
    for (MethodDecl *M : Members[S])
      for (MethodDecl *Callee : callees(M)) {
        unsigned CS = SccOf[Callee];
        if (CS == S || !HasBody[CS])
          continue;
        assert(CS < S && "condensation edge out of reverse-topo id order");
        Level[S] = std::max(Level[S], Level[CS] + 1);
      }

  std::vector<std::vector<MethodDecl *>> Waves;
  for (MethodDecl *M : AllMethods) {
    if (!M->Body)
      continue;
    unsigned W = Level[SccOf[M]];
    if (W >= Waves.size())
      Waves.resize(W + 1);
    Waves[W].push_back(M); // AllMethods order == declaration order.
  }
  // Levels are computed over bodied components only, so no wave between
  // 0 and the deepest one can be empty; keep the invariant checked.
  for (const auto &Wave : Waves)
    assert(!Wave.empty() && "empty wave in SCC condensation");
  return Waves;
}

std::vector<CallGraph::SccGroup> CallGraph::sccGroups() const {
  std::map<const MethodDecl *, unsigned> SccOf;
  const unsigned NextScc = computeSccs(SccOf);

  std::vector<SccGroup> Groups(NextScc);
  for (MethodDecl *M : AllMethods) {
    unsigned S = SccOf[M];
    Groups[S].Members.push_back(M); // AllMethods order == declaration order.
    for (MethodDecl *Callee : callees(M)) {
      unsigned CS = SccOf[Callee];
      if (CS == S)
        continue;
      assert(CS < S && "condensation edge out of reverse-topo id order");
      std::vector<unsigned> &Out = Groups[S].CalleeGroups;
      if (std::find(Out.begin(), Out.end(), CS) == Out.end())
        Out.push_back(CS);
    }
  }
  for (SccGroup &G : Groups)
    std::sort(G.CalleeGroups.begin(), G.CalleeGroups.end());
  return Groups;
}

std::vector<MethodDecl *> CallGraph::bottomUpOrder() const {
  std::vector<MethodDecl *> Order;
  std::set<const MethodDecl *> Visited;
  // Iterative post-order DFS along callee edges.
  for (MethodDecl *Root : AllMethods) {
    if (Visited.count(Root))
      continue;
    std::vector<std::pair<MethodDecl *, size_t>> Stack;
    Stack.push_back({Root, 0});
    Visited.insert(Root);
    while (!Stack.empty()) {
      auto &[Method, NextChild] = Stack.back();
      const std::vector<MethodDecl *> &Children = callees(Method);
      if (NextChild < Children.size()) {
        MethodDecl *Child = Children[NextChild++];
        if (!Visited.count(Child)) {
          Visited.insert(Child);
          Stack.push_back({Child, 0});
        }
        continue;
      }
      if (Method->Body)
        Order.push_back(Method);
      Stack.pop_back();
    }
  }
  return Order;
}
