//===- CallGraph.h - Static call graph over a Program ------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static call graph used to order ANEK-INFER's worklist (callees
/// before callers, so summaries exist before they are consumed) and by the
/// corpus statistics. Edges follow Sema's resolved call targets; dynamic
/// dispatch is approximated by the statically resolved method, exactly as
/// the paper's modular analysis does.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_ANALYSIS_CALLGRAPH_H
#define ANEK_ANALYSIS_CALLGRAPH_H

#include "lang/Ast.h"

#include <map>
#include <vector>

namespace anek {

/// Call graph over all methods of a program.
class CallGraph {
public:
  explicit CallGraph(const Program &Prog);

  /// Methods \p Caller may invoke (deduplicated, deterministic order).
  const std::vector<MethodDecl *> &callees(const MethodDecl *Caller) const;

  /// Methods that may invoke \p Callee.
  const std::vector<MethodDecl *> &callers(const MethodDecl *Callee) const;

  /// All methods with bodies in bottom-up order (callees before callers
  /// where the graph is acyclic; cycles are broken arbitrarily but
  /// deterministically). This is ANEK-INFER's initial worklist order.
  std::vector<MethodDecl *> bottomUpOrder() const;

  /// Condenses the call graph into strongly connected components and
  /// returns the methods with bodies grouped into reverse-topological
  /// *waves*: wave 0 holds the SCCs that call no other bodied SCC, wave
  /// k+1 the SCCs whose deepest bodied callee SCC sits in wave k. Two
  /// methods in the same wave never call one another unless they share an
  /// SCC (mutual recursion), so a wave's members can be analyzed from the
  /// same summary snapshot — this is the parallel scheduler's unit of
  /// concurrency. Within a wave, methods appear in declaration order;
  /// the result is fully deterministic.
  std::vector<std::vector<MethodDecl *>> sccWaves() const;

  /// One strongly connected component of the condensation, as produced by
  /// sccGroups(). Members are in declaration order; CalleeGroups holds the
  /// ids (indices into the sccGroups() result) of the distinct components
  /// this one calls into, ascending, self excluded.
  struct SccGroup {
    std::vector<MethodDecl *> Members;
    std::vector<unsigned> CalleeGroups;
  };

  /// The SCC condensation itself, in reverse topological order: a callee
  /// component always has a smaller index than any caller component, so a
  /// single ascending pass sees every dependency before its dependents.
  /// Unlike sccWaves() this includes bodiless components (interface
  /// methods), because the incremental cache hashes signatures too.
  std::vector<SccGroup> sccGroups() const;

  /// Number of call edges (for statistics).
  unsigned edgeCount() const { return NumEdges; }

private:
  /// Iterative Tarjan over callee edges: assigns every method a component
  /// id in reverse topological order (callees' SCCs get smaller ids) and
  /// returns the number of components. Deterministic because AllMethods
  /// and each callees() vector are in declaration/scan order.
  unsigned computeSccs(std::map<const MethodDecl *, unsigned> &SccOf) const;

  void addEdge(MethodDecl *Caller, MethodDecl *Callee);
  void scanExpr(MethodDecl *Caller, const Expr *E);
  void scanStmt(MethodDecl *Caller, const Stmt *S);

  std::vector<MethodDecl *> AllMethods;
  std::map<const MethodDecl *, std::vector<MethodDecl *>> Callees;
  std::map<const MethodDecl *, std::vector<MethodDecl *>> Callers;
  unsigned NumEdges = 0;
};

} // namespace anek

#endif // ANEK_ANALYSIS_CALLGRAPH_H
