//===- KernelsNeon.cpp - NEON solver kernel backend -------------------------===//
//
// aarch64 only; ASIMD is baseline there, so no extra arch flags — but
// the TU (like the whole target) is compiled -ffp-contract=off, which
// matters here: aarch64 compilers contract a*b+c to fma by default, and
// a fused update would diverge from the scalar backend. The 4-lane Vec
// is a pair of 2-lane float64x2_t halves. min/max/select are built from
// explicit compare+bsl so the equality convention matches the scalar
// ternaries exactly.
//
//===----------------------------------------------------------------------===//

#include "factor/Kernels.h"

#if ANEK_KERNELS_NEON

#include "factor/KernelsImpl.h"

#include <arm_neon.h>

namespace {

struct NeonTraits {
  struct Vec {
    float64x2_t Lo, Hi;
  };
  static Vec broadcast(double X) { return {vdupq_n_f64(X), vdupq_n_f64(X)}; }
  static Vec zero() { return broadcast(0.0); }
  static Vec load(const double *P) { return {vld1q_f64(P), vld1q_f64(P + 2)}; }
  static void store(double *P, Vec V) {
    vst1q_f64(P, V.Lo);
    vst1q_f64(P + 2, V.Hi);
  }
  static Vec setr(double A, double B, double C, double D) {
    const double Tmp[4] = {A, B, C, D};
    return load(Tmp);
  }
  static Vec gather(const double *Base, const uint32_t *Idx) {
    const double Tmp[4] = {Base[Idx[0]], Base[Idx[1]], Base[Idx[2]],
                           Base[Idx[3]]};
    return load(Tmp);
  }
  static Vec add(Vec A, Vec B) {
    return {vaddq_f64(A.Lo, B.Lo), vaddq_f64(A.Hi, B.Hi)};
  }
  static Vec sub(Vec A, Vec B) {
    return {vsubq_f64(A.Lo, B.Lo), vsubq_f64(A.Hi, B.Hi)};
  }
  static Vec mul(Vec A, Vec B) {
    return {vmulq_f64(A.Lo, B.Lo), vmulq_f64(A.Hi, B.Hi)};
  }
  static Vec div(Vec A, Vec B) {
    return {vdivq_f64(A.Lo, B.Lo), vdivq_f64(A.Hi, B.Hi)};
  }
  // A < B ? A : B — the minpd/maxpd "B on equality" convention.
  static Vec min(Vec A, Vec B) {
    return {vbslq_f64(vcltq_f64(A.Lo, B.Lo), A.Lo, B.Lo),
            vbslq_f64(vcltq_f64(A.Hi, B.Hi), A.Hi, B.Hi)};
  }
  static Vec max(Vec A, Vec B) {
    return {vbslq_f64(vcgtq_f64(A.Lo, B.Lo), A.Lo, B.Lo),
            vbslq_f64(vcgtq_f64(A.Hi, B.Hi), A.Hi, B.Hi)};
  }
  static Vec abs(Vec A) { return {vabsq_f64(A.Lo), vabsq_f64(A.Hi)}; }
  static Vec selectGt0(Vec S, Vec A, Vec B) {
    const float64x2_t Z = vdupq_n_f64(0.0);
    return {vbslq_f64(vcgtq_f64(S.Lo, Z), A.Lo, B.Lo),
            vbslq_f64(vcgtq_f64(S.Hi, Z), A.Hi, B.Hi)};
  }
  template <int M> static Vec blend(Vec A, Vec B) {
    Vec R = A;
    if (M & 1)
      R.Lo = vsetq_lane_f64(vgetq_lane_f64(B.Lo, 0), R.Lo, 0);
    if (M & 2)
      R.Lo = vsetq_lane_f64(vgetq_lane_f64(B.Lo, 1), R.Lo, 1);
    if (M & 4)
      R.Hi = vsetq_lane_f64(vgetq_lane_f64(B.Hi, 0), R.Hi, 0);
    if (M & 8)
      R.Hi = vsetq_lane_f64(vgetq_lane_f64(B.Hi, 1), R.Hi, 1);
    return R;
  }
  static Vec lo128(Vec A, Vec B) { return {A.Lo, B.Lo}; }
  static Vec hi128(Vec A, Vec B) { return {A.Hi, B.Hi}; }
  template <int I0, int I1> static Vec shuffle(Vec A, Vec B) {
    float64x2_t Lo = vmovq_n_f64(vgetq_lane_f64(A.Lo, I0));
    Lo = vsetq_lane_f64(vgetq_lane_f64(B.Lo, I1), Lo, 1);
    float64x2_t Hi = vmovq_n_f64(vgetq_lane_f64(A.Hi, I0));
    Hi = vsetq_lane_f64(vgetq_lane_f64(B.Hi, I1), Hi, 1);
    return {Lo, Hi};
  }
  // Pair loads: two adjacent floats per index, widened with
  // vcvt_f64_f32 (exact, so identical to the scalar backend's casts).
  static Vec pair2(const float *Base, uint32_t I, uint32_t J) {
    return {vcvt_f64_f32(vld1_f32(Base + I)),
            vcvt_f64_f32(vld1_f32(Base + J))};
  }
  static Vec pairLo(const float *Base, uint32_t I) {
    return {vcvt_f64_f32(vld1_f32(Base + I)), vdupq_n_f64(1.0)};
  }
  static Vec pairHi(const float *Base, uint32_t I) {
    return {vdupq_n_f64(1.0), vcvt_f64_f32(vld1_f32(Base + I))};
  }
};

} // namespace

namespace anek {
namespace kern {

const SolverKernels *kernelsNeon() {
  static const SolverKernels Table = {
      Backend::Neon,
      "neon",
      &impl::bpVarMessagesT<NeonTraits>,
      &impl::bpVarScatterT<NeonTraits>,
      &impl::bpFactorSweepT<NeonTraits>,
      &impl::gibbsSweepT<NeonTraits>,
  };
  return &Table;
}

} // namespace kern
} // namespace anek

#else // !ANEK_KERNELS_NEON

namespace anek {
namespace kern {

const SolverKernels *kernelsNeon() { return nullptr; }

} // namespace kern
} // namespace anek

#endif
