//===- Fused.cpp - Cross-request fused BP solves ---------------------------===//

#include "factor/Fused.h"

#include "factor/BpDriver.h"
#include "factor/Kernels.h"
#include "support/FaultInject.h"
#include "support/Metrics.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace anek;

void anek::fusedBpSolve(const SumProductSolver::Options &Opts,
                        FusedBpJob *Jobs, size_t Count) {
  if (Count == 0)
    return;
  Timer SolveTimer;
  telemetry::Span SolveSpan("solver.bp.fused", telemetry::TraceLevel::Method,
                            "solver");
  const bool ForcedNonConvergence =
      faults::anyActive() && faults::active(FaultKind::BpNonConvergence);

  // Size the arena.
  uint32_t TotalVars = 0, TotalFactors = 0, TotalEdges = 0;
  size_t TotalTable = 0;
  for (size_t J = 0; J != Count; ++J) {
    const FactorGraph &G = *Jobs[J].Graph;
    const FactorGraph::EdgeLayout &L = G.edgeLayout();
    TotalVars += G.variableCount();
    TotalFactors += G.factorCount();
    TotalEdges += L.edgeCount();
    TotalTable += L.TableFlat.size();
  }
  assert(TotalTable < (size_t{1} << 31) &&
         "fused arena tables exceed 32-bit gather indexing");

  // Rebased concatenation of every job's EdgeLayout. Edge ids shift by
  // the job's edge base, factor ids by its factor base, and table bases
  // by its table base; variable ids only appear implicitly (as CSR row
  // positions), so priors concatenate directly.
  std::vector<uint32_t> FactorOffset(TotalFactors + 1);
  std::vector<uint32_t> VarOffset(TotalVars + 1);
  std::vector<uint32_t> VarEdges(TotalEdges);
  std::vector<uint32_t> VmFactor(TotalEdges);
  std::vector<uint32_t> TableOffset(TotalFactors);
  std::vector<double> TableFlat(TotalTable);
  std::vector<double> Priors(TotalVars);
  std::vector<bp::Span> Spans(Count);

  uint32_t VarBase = 0, FactorBase = 0, EdgeBase = 0;
  size_t TableBase = 0;
  for (size_t J = 0; J != Count; ++J) {
    const FactorGraph &G = *Jobs[J].Graph;
    const FactorGraph::EdgeLayout &L = G.edgeLayout();
    const uint32_t NumVars = G.variableCount();
    const uint32_t NumFactors = G.factorCount();
    const uint32_t NumEdges = L.edgeCount();
    bp::Span &S = Spans[J];
    S.VarBegin = VarBase;
    S.VarEnd = VarBase + NumVars;
    S.FactorBegin = FactorBase;
    S.FactorEnd = FactorBase + NumFactors;
    for (uint32_t F = 0; F != NumFactors; ++F) {
      FactorOffset[FactorBase + F] = EdgeBase + L.FactorOffset[F];
      TableOffset[FactorBase + F] =
          static_cast<uint32_t>(TableBase) + L.TableOffset[F];
    }
    for (uint32_t V = 0; V != NumVars; ++V) {
      VarOffset[VarBase + V] = EdgeBase + L.VarOffset[V];
      Priors[VarBase + V] = G.variable(V).Prior;
    }
    for (uint32_t I = 0; I != NumEdges; ++I) {
      VarEdges[EdgeBase + I] = EdgeBase + L.VarEdges[I];
      VmFactor[EdgeBase + I] = FactorBase + L.VmFactor[I];
    }
    std::copy(L.TableFlat.begin(), L.TableFlat.end(),
              TableFlat.begin() + TableBase);
    VarBase += NumVars;
    FactorBase += NumFactors;
    EdgeBase += NumEdges;
    TableBase += L.TableFlat.size();
  }
  FactorOffset[TotalFactors] = TotalEdges;
  VarOffset[TotalVars] = TotalEdges;

#ifndef NDEBUG
  // No edge may cross a span boundary: every edge id a span's CSR rows
  // reference must fall inside that span's own edge range, or the demux
  // would mix requests.
  for (size_t J = 0; J != Count; ++J) {
    const bp::Span &S = Spans[J];
    const uint32_t EB = VarOffset[S.VarBegin];
    const uint32_t EE = VarOffset[S.VarEnd];
    for (uint32_t I = EB; I != EE; ++I)
      assert(VarEdges[I] >= EB && VarEdges[I] < EE &&
             "fused arena edge crosses a span boundary");
  }
#endif

  kern::BpView View;
  View.NumVars = TotalVars;
  View.NumFactors = TotalFactors;
  View.NumEdges = TotalEdges;
  View.FactorOffset = FactorOffset.data();
  View.VarOffset = VarOffset.data();
  View.VarEdges = VarEdges.data();
  View.VmFactor = VmFactor.data();
  View.TableOffset = TableOffset.data();
  View.TableFlat = TableFlat.data();
  View.Priors = Priors.data();

  bp::BpEngine Engine(View);
  Engine.run(Opts, Spans.data(), Count, /*EmitResiduals=*/false);

  for (size_t J = 0; J != Count; ++J) {
    FusedBpJob &Job = Jobs[J];
    const bp::Span &S = Spans[J];
    bp::fillReport(Job.Report, S, ForcedNonConvergence, Opts.Tolerance);
    Engine.beliefs(S, Job.Out,
                   Job.WantLikelihood ? &Job.GraphLikelihood : nullptr);
  }
  const double Seconds = SolveTimer.seconds();
  for (size_t J = 0; J != Count; ++J)
    Jobs[J].Report.Seconds = Seconds;

  if (telemetry::enabled(telemetry::TraceLevel::Phase)) {
    telemetry::counter("solver.bp.fused_batches").add(1);
    telemetry::counter("solver.bp.fused_solves").add(Count);
    // Keep the standalone per-solve aggregates comparable whichever
    // path ran the solve.
    telemetry::counter("solver.bp.solves").add(Count);
    for (size_t J = 0; J != Count; ++J) {
      const bp::Span &S = Spans[J];
      telemetry::counter("solver.bp.messages").add(S.Updates);
      telemetry::counter("solver.bp.skipped_updates").add(S.Skipped);
      if (!Jobs[J].Report.Converged)
        telemetry::counter("solver.bp.nonconverged").add(1);
      telemetry::histogram("solver.bp.iterations")
          .record(static_cast<double>(S.Iterations));
      telemetry::histogram("solver.bp.residual").record(S.Delta);
    }
    telemetry::histogram("solver.bp.fused_batch_size")
        .record(static_cast<double>(Count));
    telemetry::histogram("solver.bp.seconds").record(Seconds);
  }
  if (SolveSpan.active()) {
    SolveSpan.arg("jobs", static_cast<uint64_t>(Count));
    SolveSpan.arg("vars", TotalVars);
    SolveSpan.arg("factors", TotalFactors);
    SolveSpan.arg("backend", kern::solverKernels().Name);
  }
}
