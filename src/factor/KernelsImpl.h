//===- KernelsImpl.h - Backend-generic solver kernel bodies ------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel bodies, templated over a 4-lane vector Traits class. Each
/// backend TU (KernelsScalar.cpp, KernelsAvx2.cpp, KernelsNeon.cpp)
/// defines its Traits in an anonymous namespace and instantiates these
/// templates with it, so every instantiation has internal linkage: an
/// AVX2-compiled body can never leak out of its TU to satisfy a baseline
/// reference (the COMDAT hazard described in Kernels.h).
///
/// Byte-identity across backends rests on three properties of the code
/// below, which any edit must preserve:
///
///  1. Lanes are independent outputs. Wherever four elements are
///     processed per step, each element's own FP operation sequence is
///     exactly what the scalar tail performs for it.
///  2. Reductions use a fixed 4-lane strided tree: lane j accumulates
///     elements j, j+4, j+8, ... and the final combine is always
///     (L0 op L1) op (L2 op L3), in the vector path and the scalar
///     backend alike.
///  3. Where a lane must sit out of an accumulation, the neutral element
///     is applied instead (adding +0.0 and multiplying by 1.0 are exact
///     for the non-negative quantities involved), so tail padding and
///     selector masks never perturb a value.
///
/// The Traits contract (all static): Vec (4 doubles); broadcast, zero,
/// load, store, setr, gather(base, uint32 idx[4]); add, sub, mul, div,
/// min, max, abs; selectGt0(S, A, B) = lane S>0 ? A : B;
/// blend<M>(A, B) = lane j: (M>>j)&1 ? B : A;
/// lo128(A, B) = [A0, A1, B0, B1] and hi128(A, B) = [A2, A3, B2, B3];
/// shuffle<I0, I1>(A, B) = [A[I0], B[I1], A[2+I0], B[2+I1]] (the
/// vshufpd lane pattern, for the pairwise-factor fast path);
/// pair2(base, i, j) = [base[i], base[i+1], base[j], base[j+1]] over a
/// float base, each lane widened to double (exact);
/// pairLo(base, i) = [base[i], base[i+1], 1.0, 1.0] and pairHi the
/// mirrored half (for the Gibbs pair-table kernel). min/max must follow
/// the x86 minpd/maxpd convention (A cmp B ? A : B, i.e. B on equality)
/// — the scalar ternaries here are written to match it.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_FACTOR_KERNELSIMPL_H
#define ANEK_FACTOR_KERNELSIMPL_H

#include "factor/Kernels.h"

#include <cstring>

namespace anek {
namespace kern {
namespace impl {

/// clampProb / Solvers.cpp clampFast, duplicated with internal linkage
/// (COMDAT safety). The branch form and the vector min/max form agree
/// bit-for-bit for the non-NaN inputs BP produces.
static inline double clampMsg(double P) {
  if (P < MessageEps)
    return MessageEps;
  if (P > 1.0 - MessageEps)
    return 1.0 - MessageEps;
  return P;
}

/// |X| by clearing the sign bit — exactly what std::fabs and the vector
/// abs do. Written out so no libm/std inline is referenced from an
/// arch-flagged TU, and so -0.0 maps to +0.0 in every backend (a ternary
/// would keep -0.0 and let a "max so far" comparison latch a negative
/// zero in one backend but not another).
static inline double absBits(double X) {
  uint64_t Bits;
  std::memcpy(&Bits, &X, sizeof(Bits));
  Bits &= 0x7FFFFFFFFFFFFFFFULL;
  std::memcpy(&X, &Bits, sizeof(X));
  return X;
}

/// BP phase-1 passes A-C for variables [VB, VE): see Kernels.h.
///
/// Structure: pass A gathers and clamps incoming factor->var messages,
/// pass B forms per-variable exclusive prefix/suffix products (the
/// prefix walk folds its running value into the suffix array in place,
/// SufT[P] = PreT * SufT[P] — the multiplication pass C used to do
/// from separate arrays), pass C is the damped update. Sum == 0 lanes
/// divide by 1.0 instead (exact no-op) and select 0.5. The previous
/// outgoing message is read from NewMsg[P], not gathered from
/// VarToFactor: the commit scattered NewMsg[P] there last iteration
/// (and both start at 0.5), so the values are identical by induction.
///
/// With Commit (the driver's steady state), the ClampT/ClampF and
/// NewMsg arrays drop out entirely: the per-variable walks gather
/// FactorToVar and re-clamp on the fly (clampMsg agrees bit-for-bit
/// with the vector min/max clamp, and clamping twice is exact), the
/// previous outgoing message is gathered from VarToFactor itself
/// (identical to NewMsg[P] by the induction above), and pass D fuses
/// into pass C: the change maxes in registers (max over non-NaN
/// doubles is exactly order-free, so the strided tree matches any
/// scalar running max bit-for-bit) and the committed message scatters
/// in the same loop. That removes the Clamp stores plus their two
/// re-reads and the NewMsg store/load round-trips — five full streams
/// — at the cost of one extra FactorToVar gather, which is what lets
/// the memory-bound large configs scale. A fully per-variable form
/// (Clamp/Suf scratch rebased to an L1-resident row) was tried and
/// regressed: per-row loop overhead outweighs the stream savings at
/// these degrees, so the passes stay flat over the span.
template <class T>
double bpVarMessagesT(const BpView &V, const BpState &S, const BpConsts &C,
                      uint32_t VB, uint32_t VE, bool Commit) {
  typedef typename T::Vec Vec;
  const Vec Eps = T::broadcast(MessageEps);
  const Vec OneMinusEps = T::broadcast(1.0 - MessageEps);
  const Vec One = T::broadcast(1.0);
  const Vec Half = T::broadcast(0.5);
  const Vec Damp = T::broadcast(C.Damping);
  const Vec OneMinusDamp = T::broadcast(C.OneMinusDamping);

  const uint32_t PB = V.VarOffset[VB];
  const uint32_t PE = V.VarOffset[VE];

  if (Commit) {
    // Pass B, per variable: both walks gather FactorToVar and clamp
    // on the fly (the load+clamp is off the loop-carried product
    // chain, so it overlaps), leaving Clamp untouched.
    for (uint32_t Var = VB; Var != VE; ++Var) {
      const uint32_t B = V.VarOffset[Var];
      const uint32_t E = V.VarOffset[Var + 1];
      double RunT = 1.0, RunF = 1.0;
      for (uint32_t P = E; P-- != B;) {
        S.SufT[P] = RunT;
        S.SufF[P] = RunF;
        const double In = S.FactorToVar[V.VarEdges[P]];
        RunT = clampMsg(In) * RunT;
        RunF = clampMsg(1.0 - In) * RunF;
      }
      double PreT = V.Priors[Var];
      double PreF = 1.0 - PreT;
      for (uint32_t P = B; P != E; ++P) {
        S.SufT[P] = PreT * S.SufT[P];
        S.SufF[P] = PreF * S.SufF[P];
        const double In = S.FactorToVar[V.VarEdges[P]];
        PreT *= clampMsg(In);
        PreF *= clampMsg(1.0 - In);
      }
    }
    // Pass C with the fused commit scatter and change max. Old comes
    // from VarToFactor (== NewMsg by induction); the gather touches
    // the same lines the scatter is about to own, so it is nearly
    // free, and NewMsg is never read or written.
    Vec MaxV = T::zero();
    uint32_t P = PB;
    for (; P + 4 <= PE; P += 4) {
      const Vec True = T::load(S.SufT + P);
      const Vec False = T::load(S.SufF + P);
      const Vec Sum = T::add(True, False);
      const Vec Quot = T::div(True, T::selectGt0(Sum, Sum, One));
      const Vec Undamped = T::selectGt0(Sum, Quot, Half);
      const Vec Old = T::gather(S.VarToFactor, V.VarEdges + P);
      const Vec NewMsg =
          T::add(T::mul(OneMinusDamp, Undamped), T::mul(Damp, Old));
      double NewL[4];
      T::store(NewL, NewMsg);
      S.VarToFactor[V.VarEdges[P]] = NewL[0];
      S.VarToFactor[V.VarEdges[P + 1]] = NewL[1];
      S.VarToFactor[V.VarEdges[P + 2]] = NewL[2];
      S.VarToFactor[V.VarEdges[P + 3]] = NewL[3];
      MaxV = T::max(MaxV, T::abs(T::sub(NewMsg, Old)));
    }
    double L[4];
    T::store(L, MaxV);
    const double M01 = L[0] > L[1] ? L[0] : L[1];
    const double M23 = L[2] > L[3] ? L[2] : L[3];
    double Delta = M01 > M23 ? M01 : M23;
    for (; P != PE; ++P) {
      const double True = S.SufT[P];
      const double False = S.SufF[P];
      const double Sum = True + False;
      const double Undamped = Sum > 0 ? True / Sum : 0.5;
      const double Old = S.VarToFactor[V.VarEdges[P]];
      const double NewMsg =
          C.OneMinusDamping * Undamped + C.Damping * Old;
      S.VarToFactor[V.VarEdges[P]] = NewMsg;
      const double Ch = absBits(NewMsg - Old);
      Delta = Delta > Ch ? Delta : Ch;
    }
    return Delta;
  }

  // Pass A: gather incoming factor->var messages and clamp both
  // polarities. Elementwise over positions; lane-independent.
  {
    uint32_t P = PB;
    for (; P + 4 <= PE; P += 4) {
      const Vec In = T::gather(S.FactorToVar, V.VarEdges + P);
      T::store(S.ClampT + P, T::min(T::max(In, Eps), OneMinusEps));
      T::store(S.ClampF + P,
               T::min(T::max(T::sub(One, In), Eps), OneMinusEps));
    }
    for (; P != PE; ++P) {
      const double In = S.FactorToVar[V.VarEdges[P]];
      S.ClampT[P] = clampMsg(In);
      S.ClampF[P] = clampMsg(1.0 - In);
    }
  }

  // Pass B, per variable at its global positions.
  for (uint32_t Var = VB; Var != VE; ++Var) {
    const uint32_t B = V.VarOffset[Var];
    const uint32_t E = V.VarOffset[Var + 1];
    double RunT = 1.0, RunF = 1.0;
    for (uint32_t P = E; P-- != B;) {
      S.SufT[P] = RunT;
      S.SufF[P] = RunF;
      RunT = S.ClampT[P] * RunT;
      RunF = S.ClampF[P] * RunF;
    }
    double PreT = V.Priors[Var];
    double PreF = 1.0 - PreT;
    for (uint32_t P = B; P != E; ++P) {
      S.SufT[P] = PreT * S.SufT[P];
      S.SufF[P] = PreF * S.SufF[P];
      PreT *= S.ClampT[P];
      PreF *= S.ClampF[P];
    }
  }

  // Pass C without the commit: NewMsg/Change are left for the
  // log-domain fixup and BpVarScatter.
  uint32_t P = PB;
  for (; P + 4 <= PE; P += 4) {
    const Vec True = T::load(S.SufT + P);
    const Vec False = T::load(S.SufF + P);
    const Vec Sum = T::add(True, False);
    const Vec Quot = T::div(True, T::selectGt0(Sum, Sum, One));
    const Vec Undamped = T::selectGt0(Sum, Quot, Half);
    const Vec Old = T::load(S.NewMsg + P);
    const Vec NewMsg =
        T::add(T::mul(OneMinusDamp, Undamped), T::mul(Damp, Old));
    T::store(S.NewMsg + P, NewMsg);
    T::store(S.Change + P, T::abs(T::sub(NewMsg, Old)));
  }
  for (; P != PE; ++P) {
    const double True = S.SufT[P];
    const double False = S.SufF[P];
    const double Sum = True + False;
    const double Undamped = Sum > 0 ? True / Sum : 0.5;
    const double Old = S.NewMsg[P];
    const double NewMsg =
        C.OneMinusDamping * Undamped + C.Damping * Old;
    S.NewMsg[P] = NewMsg;
    S.Change[P] = absBits(NewMsg - Old);
  }
  return 0.0;
}

/// BP phase-1 pass D: commit NewMsg, accumulate residual-scheduling
/// pressure in ascending position order, return max change. The
/// scheduling path is scalar in every backend (scatter-add with repeated
/// factor targets); the unscheduled path takes the Change max with the
/// standard strided lane tree — max over non-NaN doubles is exactly
/// order-free, so the vector reduction is byte-identical to the scalar
/// running max — and commits four messages per step.
template <class T>
double bpVarScatterT(const BpView &V, const BpState &S, const BpConsts &,
                     uint32_t VB, uint32_t VE, bool Scheduling) {
  typedef typename T::Vec Vec;
  const uint32_t PB = V.VarOffset[VB];
  const uint32_t PE = V.VarOffset[VE];
  double Delta = 0.0;
  if (Scheduling) {
    for (uint32_t P = PB; P != PE; ++P) {
      const double Ch = S.Change[P];
      S.VarToFactor[V.VarEdges[P]] = S.NewMsg[P];
      S.PendingIn[V.VmFactor[P]] += Ch;
      Delta = Delta > Ch ? Delta : Ch;
    }
  } else {
    Vec MaxV = T::zero();
    uint32_t P = PB;
    for (; P + 4 <= PE; P += 4) {
      MaxV = T::max(MaxV, T::load(S.Change + P));
      S.VarToFactor[V.VarEdges[P]] = S.NewMsg[P];
      S.VarToFactor[V.VarEdges[P + 1]] = S.NewMsg[P + 1];
      S.VarToFactor[V.VarEdges[P + 2]] = S.NewMsg[P + 2];
      S.VarToFactor[V.VarEdges[P + 3]] = S.NewMsg[P + 3];
    }
    double L[4];
    T::store(L, MaxV);
    const double M01 = L[0] > L[1] ? L[0] : L[1];
    const double M23 = L[2] > L[3] ? L[2] : L[3];
    Delta = M01 > M23 ? M01 : M23;
    for (; P != PE; ++P) {
      const double Ch = S.Change[P];
      S.VarToFactor[V.VarEdges[P]] = S.NewMsg[P];
      Delta = Delta > Ch ? Delta : Ch;
    }
  }
  return Delta;
}

/// General-arity (3..16) factor marginalization: one table sweep, four
/// entries per step. Entries i, i+1, i+2, i+3 occupy lanes 0-3; slot-0
/// and slot-1 selector weights vary within the group ([F,T,F,T] and
/// [F,F,T,T]), higher slots are group-constant broadcasts. Per-slot
/// accumulators keep the fixed strided lane tree; lanes whose entry does
/// not feed a given polarity add +0.0 (exact for these non-negative
/// contributions).
template <class T>
void marginalizeGeneralT(const double *Table, uint32_t Deg,
                         const double *Msg, double *OutT, double *OutF) {
  typedef typename T::Vec Vec;
  double MsgT[16], MsgF[16];
  for (uint32_t K = 0; K != Deg; ++K) {
    MsgT[K] = Msg[K];
    MsgF[K] = 1.0 - MsgT[K];
  }
  Vec AccT[16], AccF[16];
  for (uint32_t K = 0; K != Deg; ++K)
    AccT[K] = AccF[K] = T::zero();
  Vec Sel[16];
  Sel[0] = T::setr(MsgF[0], MsgT[0], MsgF[0], MsgT[0]);
  Sel[1] = T::setr(MsgF[1], MsgF[1], MsgT[1], MsgT[1]);
  Vec Suf[17];
  Suf[Deg] = T::broadcast(1.0);
  const size_t TableSize = size_t{1} << Deg; // >= 8, so no tail.
  for (size_t Index = 0; Index != TableSize; Index += 4) {
    for (uint32_t K = 2; K != Deg; ++K)
      Sel[K] = T::broadcast(((Index >> K) & 1) ? MsgT[K] : MsgF[K]);
    // Same prefix/suffix grouping as the scalar kernel: Suf right-folds
    // from 1.0, Pre left-folds from the table weight.
    for (uint32_t K = Deg; K-- != 0;)
      Suf[K] = T::mul(Suf[K + 1], Sel[K]);
    Vec Pre = T::load(Table + Index);
    for (uint32_t K = 0; K != Deg; ++K) {
      const Vec Contrib = T::mul(Pre, Suf[K + 1]);
      if (K == 0) {
        AccT[0] = T::add(AccT[0], T::template blend<0xA>(T::zero(), Contrib));
        AccF[0] = T::add(AccF[0], T::template blend<0x5>(T::zero(), Contrib));
      } else if (K == 1) {
        AccT[1] = T::add(AccT[1], T::template blend<0xC>(T::zero(), Contrib));
        AccF[1] = T::add(AccF[1], T::template blend<0x3>(T::zero(), Contrib));
      } else if ((Index >> K) & 1) {
        AccT[K] = T::add(AccT[K], Contrib);
      } else {
        AccF[K] = T::add(AccF[K], Contrib);
      }
      Pre = T::mul(Pre, Sel[K]);
    }
  }
  for (uint32_t K = 0; K != Deg; ++K) {
    double LT[4], LF[4];
    T::store(LT, AccT[K]);
    T::store(LF, AccF[K]);
    OutT[K] = (LT[0] + LT[1]) + (LT[2] + LT[3]);
    OutF[K] = (LF[0] + LF[1]) + (LF[2] + LF[3]);
  }
}

/// One factor's marginalization into OutT/OutF. Arity 1/2 keep the
/// closed forms of the scalar kernel verbatim (scalar in every backend:
/// two or four multiplies do not amortize a vector setup); arity >= 3
/// takes the table sweep.
template <class T>
inline void marginalizeFactorT(const BpView &V, const BpState &S, uint32_t F) {
  const uint32_t Begin = V.FactorOffset[F];
  const uint32_t Deg = V.FactorOffset[F + 1] - Begin;
  const double *Table = V.TableFlat + V.TableOffset[F];
  if (Deg == 1) {
    S.OutF[Begin] = Table[0];
    S.OutT[Begin] = Table[1];
  } else if (Deg == 2) {
    const double M0T = S.VarToFactor[Begin];
    const double M0F = 1.0 - M0T;
    const double M1T = S.VarToFactor[Begin + 1];
    const double M1F = 1.0 - M1T;
    S.OutF[Begin] = Table[0] * M1F + Table[2] * M1T;
    S.OutT[Begin] = Table[1] * M1F + Table[3] * M1T;
    S.OutF[Begin + 1] = Table[0] * M0F + Table[1] * M0T;
    S.OutT[Begin + 1] = Table[2] * M0F + Table[3] * M0T;
  } else {
    marginalizeGeneralT<T>(Table, Deg, S.VarToFactor + Begin,
                           S.OutT + Begin, S.OutF + Begin);
  }
}

/// BP phase 2 when every factor in [FB, FE) runs (scheduling off): no
/// skip compaction, and no index indirection in the commits. Two
/// adjacent pairwise factors (the dominant shape constraint generation
/// emits) marginalize AND commit entirely in registers: their four
/// edges are contiguous, the four closed-form outputs assemble from
/// two table loads with the shuffle network annotated below, and
/// OutT/OutF are never touched — the round-trip through them and the
/// separate commit pass exist only for the general path. Each lane's
/// operation sequence is exactly the scalar closed form in
/// marginalizeFactorT (multiply, multiply, add; MF = 1 - MT), so the
/// message bytes are identical to the generic path's. EChange and the
/// PendingIn/LastOut bookkeeping are skipped outright: with scheduling
/// off nothing ever reads them (BpEngine state is per solve), and the
/// iteration residual reduces to the global change max — exactly
/// order-free, taken with the strided lane tree in registers.
template <class T>
double bpFactorDenseT(const BpView &V, const BpState &S, const BpConsts &C,
                      uint32_t FB, uint32_t FE, uint64_t *Updates) {
  typedef typename T::Vec Vec;
  const Vec One = T::broadcast(1.0);
  const Vec Half = T::broadcast(0.5);
  const Vec Damp = T::broadcast(C.Damping);
  const Vec OneMinusDamp = T::broadcast(C.OneMinusDamping);
  Vec MaxV = T::zero();
  double Delta = 0.0;
  uint32_t F = FB;
  while (F != FE) {
    const uint32_t Begin = V.FactorOffset[F];
    const uint32_t Deg = V.FactorOffset[F + 1] - Begin;
    if (Deg == 2 && F + 1 != FE && V.FactorOffset[F + 2] == Begin + 4) {
      // Tables TA = [t0 t1 t2 t3], TB = [t0' t1' t2' t3'] regroup as
      // P = [t0 t1 t0' t1'], Q = [t2 t3 t2' t3']; the incoming
      // messages M = [m0 m1 m0' m1'] swap within each factor to give
      // every edge its *other* variable's message. Lane j of each
      // shuffle picks the table weight the scalar closed form pairs
      // with that operand.
      const Vec TA = T::load(V.TableFlat + V.TableOffset[F]);
      const Vec TB = T::load(V.TableFlat + V.TableOffset[F + 1]);
      const Vec P = T::lo128(TA, TB);
      const Vec Q = T::hi128(TA, TB);
      const Vec M = T::load(S.VarToFactor + Begin);
      const Vec MT = T::template shuffle<1, 0>(M, M);
      const Vec MF = T::sub(One, MT);
      const Vec OutT = T::add(T::mul(T::template shuffle<1, 0>(P, Q), MF),
                              T::mul(T::template shuffle<1, 1>(Q, Q), MT));
      const Vec OutF = T::add(T::mul(T::template shuffle<0, 0>(P, P), MF),
                              T::mul(T::template shuffle<0, 1>(Q, P), MT));
      const Vec Sum = T::add(OutT, OutF);
      const Vec Quot = T::div(OutT, T::selectGt0(Sum, Sum, One));
      const Vec Undamped = T::selectGt0(Sum, Quot, Half);
      const Vec Old = T::load(S.FactorToVar + Begin);
      const Vec NewMsg =
          T::add(T::mul(OneMinusDamp, Undamped), T::mul(Damp, Old));
      T::store(S.FactorToVar + Begin, NewMsg);
      MaxV = T::max(MaxV, T::abs(T::sub(NewMsg, Old)));
      F += 2;
      continue;
    }
    if (Deg == 4) {
      // Arity-4 factor, marginalized by pair decomposition instead of
      // the 16-entry general sweep. With A[r] the four slot-0/1
      // assignment products (r = b0 + 2*b1) and B[c] the slot-2/3
      // ones, the table splits into rows R_c = Table[4c..4c+3]:
      //   RowAgg[r] = sum_c R_c[r] * B[c]   (slots 2,3 summed out)
      //   ColAgg[c] = sum_r R_c[r] * A[r]   (slots 0,1 summed out)
      // and each edge's two outputs are closed forms over one
      // aggregate and the OTHER variable of its own pair — the same
      // two-term shape as the pairwise path, assembled with the same
      // shuffles. Both sums use the fixed (0*x + 1*y) + (2*z + 3*w)
      // tree in every backend.
      const double *Tab = V.TableFlat + V.TableOffset[F];
      const Vec M = T::load(S.VarToFactor + Begin);
      const Vec MT = T::template shuffle<1, 0>(M, M);
      const Vec MF = T::sub(One, MT);
      double ML[4];
      T::store(ML, M);
      const Vec A = T::setr((1.0 - ML[0]) * (1.0 - ML[1]),
                            ML[0] * (1.0 - ML[1]), (1.0 - ML[0]) * ML[1],
                            ML[0] * ML[1]);
      const Vec B = T::setr((1.0 - ML[2]) * (1.0 - ML[3]),
                            ML[2] * (1.0 - ML[3]), (1.0 - ML[2]) * ML[3],
                            ML[2] * ML[3]);
      const Vec R0 = T::load(Tab);
      const Vec R1 = T::load(Tab + 4);
      const Vec R2 = T::load(Tab + 8);
      const Vec R3 = T::load(Tab + 12);
      double AL[4], BL[4];
      T::store(AL, A);
      T::store(BL, B);
      const Vec RowAgg =
          T::add(T::add(T::mul(R0, T::broadcast(BL[0])),
                        T::mul(R1, T::broadcast(BL[1]))),
                 T::add(T::mul(R2, T::broadcast(BL[2])),
                        T::mul(R3, T::broadcast(BL[3]))));
      const Vec T0 = T::template shuffle<0, 0>(R0, R1);
      const Vec T1 = T::template shuffle<1, 1>(R0, R1);
      const Vec T2 = T::template shuffle<0, 0>(R2, R3);
      const Vec T3 = T::template shuffle<1, 1>(R2, R3);
      const Vec ColAgg =
          T::add(T::add(T::mul(T::lo128(T0, T2), T::broadcast(AL[0])),
                        T::mul(T::lo128(T1, T3), T::broadcast(AL[1]))),
                 T::add(T::mul(T::hi128(T0, T2), T::broadcast(AL[2])),
                        T::mul(T::hi128(T1, T3), T::broadcast(AL[3]))));
      const Vec U = T::lo128(RowAgg, ColAgg);
      const Vec W = T::hi128(RowAgg, ColAgg);
      const Vec OutT = T::add(T::mul(T::template shuffle<1, 0>(U, W), MF),
                              T::mul(T::template shuffle<1, 1>(W, W), MT));
      const Vec OutF = T::add(T::mul(T::template shuffle<0, 0>(U, U), MF),
                              T::mul(T::template shuffle<0, 1>(W, U), MT));
      const Vec Sum = T::add(OutT, OutF);
      const Vec Quot = T::div(OutT, T::selectGt0(Sum, Sum, One));
      const Vec Undamped = T::selectGt0(Sum, Quot, Half);
      const Vec Old = T::load(S.FactorToVar + Begin);
      const Vec NewMsg =
          T::add(T::mul(OneMinusDamp, Undamped), T::mul(Damp, Old));
      T::store(S.FactorToVar + Begin, NewMsg);
      MaxV = T::max(MaxV, T::abs(T::sub(NewMsg, Old)));
      ++F;
      continue;
    }
    // General path: marginalize through OutT/OutF (still L1-hot at
    // per-factor granularity), then commit this factor's edges.
    marginalizeFactorT<T>(V, S, F);
    const uint32_t EE = Begin + Deg;
    uint32_t E = Begin;
    for (; E + 4 <= EE; E += 4) {
      const Vec OutT = T::load(S.OutT + E);
      const Vec OutF = T::load(S.OutF + E);
      const Vec Sum = T::add(OutT, OutF);
      const Vec Quot = T::div(OutT, T::selectGt0(Sum, Sum, One));
      const Vec Undamped = T::selectGt0(Sum, Quot, Half);
      const Vec Old = T::load(S.FactorToVar + E);
      const Vec NewMsg =
          T::add(T::mul(OneMinusDamp, Undamped), T::mul(Damp, Old));
      T::store(S.FactorToVar + E, NewMsg);
      MaxV = T::max(MaxV, T::abs(T::sub(NewMsg, Old)));
    }
    for (; E != EE; ++E) {
      const double Sum = S.OutT[E] + S.OutF[E];
      const double Undamped = Sum > 0 ? S.OutT[E] / Sum : 0.5;
      const double Old = S.FactorToVar[E];
      const double NewMsg = C.OneMinusDamping * Undamped + C.Damping * Old;
      S.FactorToVar[E] = NewMsg;
      const double Ch = absBits(NewMsg - Old);
      Delta = Delta > Ch ? Delta : Ch;
    }
    ++F;
  }
  double L[4];
  T::store(L, MaxV);
  const double M01 = L[0] > L[1] ? L[0] : L[1];
  const double M23 = L[2] > L[3] ? L[2] : L[3];
  const double MV = M01 > M23 ? M01 : M23;
  Delta = Delta > MV ? Delta : MV;
  *Updates += V.FactorOffset[FE] - V.FactorOffset[FB];
  return Delta;
}

/// BP phase 2 for factors [FB, FE): see Kernels.h.
template <class T>
double bpFactorSweepT(const BpView &V, const BpState &S, const BpConsts &C,
                      uint32_t FB, uint32_t FE, bool Scheduling, bool Refresh,
                      uint64_t *Updates, uint64_t *Skipped) {
  typedef typename T::Vec Vec;
  if (!Scheduling)
    return bpFactorDenseT<T>(V, S, C, FB, FE, Updates);

  // Skip compaction: factors whose inputs are quiet since an already
  // sub-tolerance update cannot move their outputs past a fraction of
  // the tolerance. Value-dependent only, so deterministic.
  uint32_t NumActive = 0, NumActiveEdges = 0;
  for (uint32_t F = FB; F != FE; ++F) {
    if (!Refresh && S.PendingIn[F] <= C.SkipTolerance &&
        S.LastOut[F] <= C.Tolerance) {
      ++*Skipped;
      continue;
    }
    S.ActiveFactors[NumActive++] = F;
    for (uint32_t E = V.FactorOffset[F]; E != V.FactorOffset[F + 1]; ++E)
      S.ActiveEdges[NumActiveEdges++] = E;
  }

  for (uint32_t A = 0; A != NumActive; ++A)
    marginalizeFactorT<T>(V, S, S.ActiveFactors[A]);

  // Output commit, elementwise over the compacted active-edge list.
  {
    const Vec One = T::broadcast(1.0);
    const Vec Half = T::broadcast(0.5);
    const Vec Damp = T::broadcast(C.Damping);
    const Vec OneMinusDamp = T::broadcast(C.OneMinusDamping);
    uint32_t I = 0;
    for (; I + 4 <= NumActiveEdges; I += 4) {
      const uint32_t *E4 = S.ActiveEdges + I;
      const Vec OutT = T::gather(S.OutT, E4);
      const Vec OutF = T::gather(S.OutF, E4);
      const Vec Sum = T::add(OutT, OutF);
      const Vec Quot = T::div(OutT, T::selectGt0(Sum, Sum, One));
      const Vec Undamped = T::selectGt0(Sum, Quot, Half);
      const Vec Old = T::gather(S.FactorToVar, E4);
      const Vec NewMsg =
          T::add(T::mul(OneMinusDamp, Undamped), T::mul(Damp, Old));
      const Vec Ch = T::abs(T::sub(NewMsg, Old));
      double NewL[4], ChL[4];
      T::store(NewL, NewMsg);
      T::store(ChL, Ch);
      for (uint32_t J = 0; J != 4; ++J) {
        S.FactorToVar[E4[J]] = NewL[J];
        S.EChange[E4[J]] = ChL[J];
      }
    }
    for (; I != NumActiveEdges; ++I) {
      const uint32_t E = S.ActiveEdges[I];
      const double Sum = S.OutT[E] + S.OutF[E];
      const double Undamped = Sum > 0 ? S.OutT[E] / Sum : 0.5;
      const double Old = S.FactorToVar[E];
      const double NewMsg =
          C.OneMinusDamping * Undamped + C.Damping * Old;
      S.FactorToVar[E] = NewMsg;
      S.EChange[E] = absBits(NewMsg - Old);
    }
  }

  // Wrap-up: per-factor max change (order-free), scheduling state reset.
  double Delta = 0.0;
  for (uint32_t A = 0; A != NumActive; ++A) {
    const uint32_t F = S.ActiveFactors[A];
    double MaxChange = 0.0;
    for (uint32_t E = V.FactorOffset[F]; E != V.FactorOffset[F + 1]; ++E) {
      const double Ch = S.EChange[E];
      MaxChange = MaxChange > Ch ? MaxChange : Ch;
    }
    Delta = Delta > MaxChange ? Delta : MaxChange;
    S.PendingIn[F] = 0.0;
    S.LastOut[F] = MaxChange;
    *Updates += V.FactorOffset[F + 1] - V.FactorOffset[F];
  }
  return Delta;
}

/// Gibbs pass over the precomputed conditional-pair tables (see
/// EdgeLayout::PairFlat): position P's two conditional weights sit
/// adjacent at PairFlat[S.PosIdx[P]], a per-position current pair
/// index the sweep maintains incrementally, so each occurrence costs
/// one index load and one pair load (widened float -> double, exact)
/// plus one multiply — no per-edge index arithmetic at all. Lanes
/// hold (w0, w1) interleaved: AccA lanes are [prod-w0(offset 0),
/// prod-w1(offset 0), prod-w0(offset 1), prod-w1(offset 1)] over
/// occurrences B, B+1, B+4, B+5, ... and AccB the same for offsets 2
/// and 3. Tail occurrences multiply into the accumulator half their
/// in-group offset owns (unused halves stay 1.0, exact), and the final
/// per-polarity combine is the fixed two-level tree
/// (offset0 * offset2) * (offset1 * offset3) in every backend.
///
/// A flip XORs precomputed deltas into the affected neighbors'
/// PosIdx entries through the flip-adjacency CSR; the flipped
/// variable's own positions index on the OTHER scope bits only, so
/// they never appear in its own flip list. PosIdx[P] always equals
/// base(P) + 2*compact(owning factor's index), so the weights — and
/// the sampled chain — are bit-identical to recomputing the compacted
/// index from CurIndex each visit.
template <class T>
void gibbsSweepPairT(const GibbsView &V, const GibbsState &S, uint32_t VB,
                     uint32_t VE) {
  typedef typename T::Vec Vec;
  const Vec One = T::broadcast(1.0);
  for (uint32_t Var = VB; Var != VE; ++Var) {
    const uint32_t B = V.VarOffset[Var];
    const uint32_t E = V.VarOffset[Var + 1];
    Vec AccA = One, AccB = One;
    uint32_t P = B;
    for (; P + 4 <= E; P += 4) {
      AccA = T::mul(AccA, T::pair2(V.PairFlat, S.PosIdx[P], S.PosIdx[P + 1]));
      AccB =
          T::mul(AccB, T::pair2(V.PairFlat, S.PosIdx[P + 2], S.PosIdx[P + 3]));
    }
    for (uint32_t J = 0; P != E; ++P, ++J) {
      const uint32_t I = S.PosIdx[P];
      if (J == 0)
        AccA = T::mul(AccA, T::pairLo(V.PairFlat, I));
      else if (J == 1)
        AccA = T::mul(AccA, T::pairHi(V.PairFlat, I));
      else
        AccB = T::mul(AccB, T::pairLo(V.PairFlat, I));
    }
    // One vector multiply folds the A/B accumulators (lane j of C is
    // L[j]*M[j], the first level of the combine tree); the draw happens
    // before the weights are needed so the flip test is a multiply
    // (U*Sum < W1 <=> U < W1/Sum) instead of a division on the
    // loop-carried path. The flip scatter stays branchy on purpose: a
    // correctly predicted no-flip (the common steady-state case) lets
    // the next variable's PosIdx loads proceed without waiting on any
    // store, where an unconditional masked XOR would serialize every
    // variable behind store-forwarding.
    double C[4];
    T::store(C, T::mul(AccA, AccB));
    const double Prior = V.Priors[Var];
    const double W0 = (1.0 - Prior) * (C[0] * C[2]);
    const double W1 = Prior * (C[1] * C[3]);
    const double Sum = W0 + W1;
    const double U = rngUniform(*S.RngState);
    const bool NewBit = Sum > 0 ? U * Sum < W1 : U < 0.5;
    if (NewBit != static_cast<bool>(S.Assign[Var])) {
      S.Assign[Var] = NewBit;
      for (uint32_t K = V.FlipOffset[Var]; K != V.FlipOffset[Var + 1]; ++K)
        S.PosIdx[V.FlipPos[K]] ^= V.FlipDelta[K];
    }
  }
}

/// One Gibbs pass over variables [VB, VE). With pair tables built
/// (PairFlat != nullptr — a property of the graph, so every backend
/// takes the same path) the pair kernel above runs; otherwise the
/// conditional-weight product gathers from the raw factor tables with
/// the strided lane tree: lane j multiplies occurrences j, j+4, ...;
/// tails multiply into their own lane (the unused lanes stay 1.0,
/// exact); the final combine is (L0*L1)*(L2*L3) in every backend. One
/// RNG draw per variable, same stream positions in both paths.
template <class T>
void gibbsSweepT(const GibbsView &V, const GibbsState &S, uint32_t VB,
                 uint32_t VE) {
  if (V.PairFlat)
    return gibbsSweepPairT<T>(V, S, VB, VE);
  typedef typename T::Vec Vec;
  const Vec One = T::broadcast(1.0);
  for (uint32_t Var = VB; Var != VE; ++Var) {
    const uint32_t B = V.VarOffset[Var];
    const uint32_t E = V.VarOffset[Var + 1];
    Vec Acc0 = One, Acc1 = One;
    uint32_t P = B;
    for (; P + 4 <= E; P += 4) {
      uint32_t Idx0[4], Idx1[4];
      for (uint32_t J = 0; J != 4; ++J) {
        const uint32_t Cur = S.CurIndex[V.VmFactor[P + J]];
        const uint32_t Mask = V.VmMask[P + J];
        const uint32_t TableBase = V.VmTableBase[P + J];
        Idx0[J] = TableBase + (Cur & ~Mask);
        Idx1[J] = TableBase + (Cur | Mask);
      }
      Acc0 = T::mul(Acc0, T::gather(V.TableFlat, Idx0));
      Acc1 = T::mul(Acc1, T::gather(V.TableFlat, Idx1));
    }
    double L0[4], L1[4];
    T::store(L0, Acc0);
    T::store(L1, Acc1);
    for (uint32_t J = 0; P != E; ++P, ++J) {
      const uint32_t Cur = S.CurIndex[V.VmFactor[P]];
      const uint32_t Mask = V.VmMask[P];
      const uint32_t TableBase = V.VmTableBase[P];
      L0[J] *= V.TableFlat[TableBase + (Cur & ~Mask)];
      L1[J] *= V.TableFlat[TableBase + (Cur | Mask)];
    }
    const double Prior = V.Priors[Var];
    const double W0 = (1.0 - Prior) * ((L0[0] * L0[1]) * (L0[2] * L0[3]));
    const double W1 = Prior * ((L1[0] * L1[1]) * (L1[2] * L1[3]));
    const double Sum = W0 + W1;
    const double U = rngUniform(*S.RngState);
    const bool NewBit = Sum > 0 ? U * Sum < W1 : U < 0.5;
    if (NewBit != static_cast<bool>(S.Assign[Var])) {
      S.Assign[Var] = NewBit;
      for (uint32_t Q = B; Q != E; ++Q)
        S.CurIndex[V.VmFactor[Q]] ^= V.VmSlotBit[Q];
    }
  }
}

} // namespace impl
} // namespace kern
} // namespace anek

#endif // ANEK_FACTOR_KERNELSIMPL_H
