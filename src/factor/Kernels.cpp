//===- Kernels.cpp - Runtime kernel backend dispatch ------------------------===//

#include "factor/Kernels.h"

#include "support/CpuFeatures.h"
#include "support/Format.h"

#include <atomic>
#include <cstdlib>

namespace anek {
namespace kern {

namespace {

/// The active backend. Null until first resolution; an acquire load is
/// the only per-solve cost.
std::atomic<const SolverKernels *> Current{nullptr};

bool forceScalarEnv() {
  const char *Env = std::getenv("ANEK_FORCE_SCALAR");
  // Any non-empty value other than "0" forces scalar.
  return Env && Env[0] != '\0' && !(Env[0] == '0' && Env[1] == '\0');
}

const SolverKernels *detect() {
  if (forceScalarEnv())
    return kernelsScalar();
  if (const SolverKernels *K = kernelsAvx2())
    if (cpu::hasAvx2())
      return K;
  if (const SolverKernels *K = kernelsNeon())
    if (cpu::hasNeon())
      return K;
  return kernelsScalar();
}

} // namespace

const SolverKernels &solverKernels() {
  const SolverKernels *K = Current.load(std::memory_order_acquire);
  if (!K) {
    // Detection is idempotent and every racer resolves the same table,
    // so a benign double-detect needs no CAS.
    K = detect();
    Current.store(K, std::memory_order_release);
  }
  return *K;
}

Status setKernelBackend(const std::string &Name) {
  const SolverKernels *K = nullptr;
  if (Name == "auto") {
    K = detect();
  } else if (Name == "scalar") {
    K = kernelsScalar();
  } else if (Name == "avx2") {
    K = kernelsAvx2();
    if (K && !cpu::hasAvx2())
      K = nullptr;
  } else if (Name == "neon") {
    K = kernelsNeon();
    if (K && !cpu::hasNeon())
      K = nullptr;
  } else {
    return Status::error(
        ErrorCode::InvalidArgument,
        formatStr("unknown kernel backend '%s' (expected scalar, avx2, "
                  "neon, or auto)",
                  Name.c_str()));
  }
  if (!K)
    return Status::error(
        ErrorCode::InvalidArgument,
        formatStr("kernel backend '%s' is not available on this host",
                  Name.c_str()));
  Current.store(K, std::memory_order_release);
  return Status::ok();
}

Backend activeKernelBackend() { return solverKernels().Kind; }

const char *kernelBackendName(Backend Kind) {
  switch (Kind) {
  case Backend::Scalar:
    return "scalar";
  case Backend::Avx2:
    return "avx2";
  case Backend::Neon:
    return "neon";
  }
  return "unknown";
}

} // namespace kern
} // namespace anek
