//===- Solvers.cpp - Marginal inference over factor graphs -----------------===//

#include "factor/Solvers.h"

#include "factor/BpDriver.h"
#include "factor/Kernels.h"
#include "support/FaultInject.h"
#include "support/Format.h"
#include "support/Metrics.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

using namespace anek;

//===----------------------------------------------------------------------===//
// Loopy belief propagation
//===----------------------------------------------------------------------===//
//
// The iteration loop and the kernel bodies live behind the KernelBackend
// seam (factor/Kernels.h): this method builds a zero-copy BpView over the
// graph's cached EdgeLayout, runs the shared multi-span driver
// (factor/BpDriver.cpp) with a single span, and keeps PR 3's reporting
// and telemetry surface unchanged. The same driver sweeps many spans for
// the serving layer's fused solves (factor/Fused.cpp), which is what
// guarantees fused results are byte-identical to this path.

Marginals SumProductSolver::solve(const FactorGraph &G,
                                  Marginals *GraphLikelihood,
                                  SolveReport *Report) const {
  Timer SolveTimer;
  // Telemetry gates, hoisted out of the message loops: when tracing is
  // off each costs one relaxed load here and a dead branch below.
  telemetry::Span SolveSpan("solver.bp", telemetry::TraceLevel::Method,
                            "solver");
  const bool TraceIters =
      telemetry::enabled(telemetry::TraceLevel::Solver);
  const unsigned NumVars = G.variableCount();
  const unsigned NumFactors = G.factorCount();
  const FactorGraph::EdgeLayout &L = G.edgeLayout();
  // Fault 'bp-nonconverge': run normally but report the solve as not
  // converged, exactly as on a frustrated loopy graph.
  const bool ForcedNonConvergence =
      faults::anyActive() && faults::active(FaultKind::BpNonConvergence);

  std::vector<double> Priors(NumVars);
  for (unsigned V = 0; V != NumVars; ++V)
    Priors[V] = G.variable(V).Prior;

  kern::BpView View;
  View.NumVars = NumVars;
  View.NumFactors = NumFactors;
  View.NumEdges = L.edgeCount();
  View.FactorOffset = L.FactorOffset.data();
  View.VarOffset = L.VarOffset.data();
  View.VarEdges = L.VarEdges.data();
  View.VmFactor = L.VmFactor.data();
  View.TableOffset = L.TableOffset.data();
  View.TableFlat = L.TableFlat.data();
  View.Priors = Priors.data();

  bp::BpEngine Engine(View);
  bp::Span S;
  S.VarEnd = NumVars;
  S.FactorEnd = NumFactors;
  Engine.run(Opts, &S, 1, TraceIters);
  LastIterations = S.Iterations;
  const bool Converged =
      bp::spanConverged(S, ForcedNonConvergence, Opts.Tolerance);
  if (Report)
    bp::fillReport(*Report, S, ForcedNonConvergence, Opts.Tolerance);
  if (TraceIters)
    telemetry::counterSample("bp.residual", telemetry::TraceLevel::Solver,
                             "solver", "residual", S.Delta);
  if (telemetry::enabled(telemetry::TraceLevel::Phase)) {
    telemetry::counter("solver.bp.solves").add(1);
    telemetry::counter("solver.bp.messages").add(S.Updates);
    telemetry::counter("solver.bp.skipped_updates").add(S.Skipped);
    if (!Converged)
      telemetry::counter("solver.bp.nonconverged").add(1);
    telemetry::histogram("solver.bp.iterations")
        .record(static_cast<double>(S.Iterations));
    telemetry::histogram("solver.bp.residual").record(S.Delta);
    telemetry::histogram("solver.bp.seconds").record(SolveTimer.seconds());
  }
  if (SolveSpan.active()) {
    SolveSpan.arg("vars", NumVars);
    SolveSpan.arg("factors", NumFactors);
    SolveSpan.arg("iters", S.Iterations);
    SolveSpan.arg("residual", S.Delta);
    SolveSpan.argBool("converged", Converged);
    SolveSpan.arg("messages", S.Updates);
    SolveSpan.arg("backend", kern::solverKernels().Name);
    if (!Opts.Budget.unlimited())
      SolveSpan.arg("budget_remaining_s", Opts.Budget.remainingSeconds());
  }

  Marginals Result;
  Engine.beliefs(S, Result, GraphLikelihood);
  if (Report)
    Report->Seconds = SolveTimer.seconds();
  return Result;
}

//===----------------------------------------------------------------------===//
// Exact enumeration
//===----------------------------------------------------------------------===//

Expected<Marginals> ExactSolver::solve(const FactorGraph &G,
                                       const Deadline &Budget) const {
  telemetry::Span SolveSpan("solver.exact", telemetry::TraceLevel::Method,
                            "solver");
  const unsigned NumVars = G.variableCount();
  if (SolveSpan.active())
    SolveSpan.arg("vars", NumVars);
  if (telemetry::enabled(telemetry::TraceLevel::Phase)) {
    telemetry::counter("solver.exact.solves").add(1);
    telemetry::histogram("solver.exact.vars")
        .record(static_cast<double>(NumVars));
  }
  if (NumVars > MaxVariables)
    return Status::error(
        ErrorCode::ResourceExhausted,
        formatStr("graph has %u variables, exact enumeration handles "
                  "at most %u",
                  NumVars, MaxVariables));
  const uint32_t NumFactors = G.factorCount();
  std::vector<double> TrueMass(NumVars, 0.0);
  double Total = 0.0;
  // Direct bit tests against the assignment index replace the per-index
  // vector<bool> fill; the multiplication order (priors in variable
  // order, then factors in order) is jointWeight's, bit for bit.
  std::vector<double> PriorTrue(NumVars), PriorFalse(NumVars);
  for (unsigned V = 0; V != NumVars; ++V) {
    PriorTrue[V] = G.variable(V).Prior;
    PriorFalse[V] = 1.0 - PriorTrue[V];
  }
  const uint64_t Count = uint64_t{1} << NumVars;
  for (uint64_t Index = 0; Index != Count; ++Index) {
    if ((Index & 0xFFF) == 0 && Budget.expired())
      return Status::error(
          ErrorCode::DeadlineExceeded,
          formatStr("exact enumeration budget expired after %llu of %llu "
                    "assignments",
                    static_cast<unsigned long long>(Index),
                    static_cast<unsigned long long>(Count)));
    double Weight = 1.0;
    for (unsigned V = 0; V != NumVars; ++V)
      Weight *= ((Index >> V) & 1) ? PriorTrue[V] : PriorFalse[V];
    for (uint32_t F = 0; F != NumFactors; ++F) {
      const FactorGraph::Factor &Factor = G.factor(F);
      size_t TableIndex = 0;
      for (size_t Bit = 0; Bit != Factor.Scope.size(); ++Bit)
        if ((Index >> Factor.Scope[Bit]) & 1)
          TableIndex |= size_t{1} << Bit;
      Weight *= Factor.Table[TableIndex];
    }
    Total += Weight;
    for (unsigned V = 0; V != NumVars; ++V)
      if ((Index >> V) & 1)
        TrueMass[V] += Weight;
  }
  Marginals Result(NumVars, 0.5);
  if (Total > 0)
    for (unsigned V = 0; V != NumVars; ++V)
      Result[V] = TrueMass[V] / Total;
  return Result;
}

namespace {

/// Lane-truth masks for the packed logical enumeration: bit j of a
/// 64-assignment block word stands for assignment BlockBase | j, so low
/// variable v (v < 6) is true exactly in the lanes where bit v of j is
/// set.
constexpr uint64_t LaneTrue[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL};

/// Whether the popcount fast path applies: enough variables to fill a
/// 64-lane block, and no factor whose precomputed satisfied-word table
/// (one word per combination of its variables above the low six) would
/// blow up.
bool canEnumeratePacked(const FactorGraph &G, unsigned NumVars) {
  if (NumVars < 6)
    return false;
  for (uint32_t F = 0; F != G.factorCount(); ++F) {
    unsigned HighSlots = 0;
    for (VarId V : G.factor(F).Scope)
      HighSlots += V >= 6;
    if (HighSlots > 12)
      return false;
  }
  return true;
}

/// Bit-parallel hard-constraint enumeration: evaluates 64 assignments
/// (all values of the six low variables) per step. Per factor, the
/// satisfied mask over those 64 lanes depends only on the factor's
/// high-variable assignment, so it is precomputed per high combination;
/// the block loop then ANDs one word per factor and popcounts. Counts
/// are integers, so results are exactly the scalar enumeration's.
/// Returns false when \p Budget expires (same 4096-assignment check
/// cadence as the scalar loop).
bool enumeratePacked(const FactorGraph &G, unsigned NumVars,
                     double Threshold, const Deadline &Budget,
                     uint64_t &Satisfying,
                     std::vector<uint64_t> *TrueCounts) {
  const uint32_t NumFactors = G.factorCount();
  struct FactorWords {
    // (variable, scope slot) for scope entries with variable id >= 6.
    std::vector<std::pair<unsigned, unsigned>> HighSlots;
    std::vector<uint64_t> Words; // indexed by packed high-slot bits.
  };
  std::vector<FactorWords> Packed(NumFactors);
  for (uint32_t F = 0; F != NumFactors; ++F) {
    const FactorGraph::Factor &Factor = G.factor(F);
    FactorWords &P = Packed[F];
    std::vector<std::pair<unsigned, unsigned>> LowSlots;
    for (size_t Bit = 0; Bit != Factor.Scope.size(); ++Bit) {
      if (Factor.Scope[Bit] < 6)
        LowSlots.emplace_back(Factor.Scope[Bit],
                              static_cast<unsigned>(Bit));
      else
        P.HighSlots.emplace_back(Factor.Scope[Bit],
                                 static_cast<unsigned>(Bit));
    }
    uint32_t LowIdx[64];
    for (unsigned J = 0; J != 64; ++J) {
      uint32_t Idx = 0;
      for (const auto &Slot : LowSlots)
        if ((J >> Slot.first) & 1)
          Idx |= uint32_t{1} << Slot.second;
      LowIdx[J] = Idx;
    }
    P.Words.resize(size_t{1} << P.HighSlots.size());
    for (size_t H = 0; H != P.Words.size(); ++H) {
      uint32_t HighIdx = 0;
      for (size_t I = 0; I != P.HighSlots.size(); ++I)
        if ((H >> I) & 1)
          HighIdx |= uint32_t{1} << P.HighSlots[I].second;
      uint64_t Word = 0;
      for (unsigned J = 0; J != 64; ++J)
        if (Factor.Table[LowIdx[J] | HighIdx] > Threshold)
          Word |= uint64_t{1} << J;
      P.Words[H] = Word;
    }
  }
  const uint64_t Blocks = uint64_t{1} << (NumVars - 6);
  for (uint64_t Block = 0; Block != Blocks; ++Block) {
    if ((Block & 0x3F) == 0 && Budget.expired())
      return false;
    const uint64_t BlockBase = Block << 6;
    uint64_t Acc = ~uint64_t{0};
    for (uint32_t F = 0; F != NumFactors && Acc; ++F) {
      const FactorWords &P = Packed[F];
      size_t H = 0;
      for (size_t I = 0; I != P.HighSlots.size(); ++I)
        if ((BlockBase >> P.HighSlots[I].first) & 1)
          H |= size_t{1} << I;
      Acc &= P.Words[H];
    }
    if (!Acc)
      continue;
    const uint64_t Full = static_cast<uint64_t>(std::popcount(Acc));
    Satisfying += Full;
    if (TrueCounts) {
      for (unsigned V = 0; V != 6; ++V)
        (*TrueCounts)[V] +=
            static_cast<uint64_t>(std::popcount(Acc & LaneTrue[V]));
      for (unsigned V = 6; V != NumVars; ++V)
        if ((BlockBase >> V) & 1)
          (*TrueCounts)[V] += Full;
    }
  }
  return true;
}

/// The pre-popcount scalar enumeration, kept for graphs the packed path
/// declines (fewer than six variables, or a pathological factor).
bool enumerateSimple(const FactorGraph &G, unsigned NumVars,
                     double Threshold, const Deadline &Budget,
                     uint64_t &Satisfying,
                     std::vector<uint64_t> *TrueCounts) {
  const uint64_t Count = uint64_t{1} << NumVars;
  for (uint64_t Index = 0; Index != Count; ++Index) {
    if ((Index & 0xFFF) == 0 && Budget.expired())
      return false;
    bool Ok = true;
    for (uint32_t F = 0; F != G.factorCount() && Ok; ++F) {
      const FactorGraph::Factor &Factor = G.factor(F);
      size_t TableIndex = 0;
      for (size_t Bit = 0; Bit != Factor.Scope.size(); ++Bit)
        if ((Index >> Factor.Scope[Bit]) & 1)
          TableIndex |= size_t{1} << Bit;
      Ok = Factor.Table[TableIndex] > Threshold;
    }
    if (!Ok)
      continue;
    ++Satisfying;
    if (TrueCounts)
      for (unsigned V = 0; V != NumVars; ++V)
        if ((Index >> V) & 1)
          ++(*TrueCounts)[V];
  }
  return true;
}

bool enumerateSatisfying(const FactorGraph &G, unsigned NumVars,
                         double Threshold, const Deadline &Budget,
                         uint64_t &Satisfying,
                         std::vector<uint64_t> *TrueCounts) {
  if (canEnumeratePacked(G, NumVars))
    return enumeratePacked(G, NumVars, Threshold, Budget, Satisfying,
                           TrueCounts);
  return enumerateSimple(G, NumVars, Threshold, Budget, Satisfying,
                         TrueCounts);
}

} // namespace

std::optional<uint64_t>
ExactSolver::countSatisfying(const FactorGraph &G, unsigned VarLimit,
                             double Threshold,
                             const Deadline &Budget) const {
  const unsigned NumVars = G.variableCount();
  if (NumVars > VarLimit || NumVars > 62)
    return std::nullopt; // The deterministic solver gives up: DNF.
  uint64_t Satisfying = 0;
  if (!enumerateSatisfying(G, NumVars, Threshold, Budget, Satisfying,
                           nullptr))
    return std::nullopt; // Budget expired mid-enumeration: DNF.
  return Satisfying;
}

std::optional<Marginals>
ExactSolver::solveLogical(const FactorGraph &G, unsigned VarLimit,
                          double Threshold, const Deadline &Budget) const {
  const unsigned NumVars = G.variableCount();
  if (NumVars > VarLimit || NumVars > 62)
    return std::nullopt; // Too large: the deterministic solver gives up.
  uint64_t Satisfying = 0;
  std::vector<uint64_t> TrueCounts(NumVars, 0);
  if (!enumerateSatisfying(G, NumVars, Threshold, Budget, Satisfying,
                           &TrueCounts))
    return std::nullopt; // Budget expired mid-enumeration: DNF.
  if (Satisfying == 0)
    return std::nullopt; // Unsatisfiable: conflicting constraints.
  Marginals Result(NumVars);
  for (unsigned V = 0; V != NumVars; ++V)
    Result[V] = static_cast<double>(TrueCounts[V]) /
                static_cast<double>(Satisfying);
  return Result;
}

//===----------------------------------------------------------------------===//
// Gibbs sampling
//===----------------------------------------------------------------------===//

Marginals GibbsSolver::solve(const FactorGraph &G,
                             SolveReport *Report) const {
  Timer SolveTimer;
  telemetry::Span SolveSpan("solver.gibbs", telemetry::TraceLevel::Method,
                            "solver");
  const unsigned NumVars = G.variableCount();
  if (NumVars == 0) {
    if (Report) {
      *Report = SolveReport();
      Report->Converged = Opts.Samples > 0;
      if (!Report->Converged)
        Report->Reason = "no samples requested (Samples == 0)";
    }
    return {};
  }
  // Raw SplitMix64 state handed to the kernel; kern::rngNext is the
  // same arithmetic as Rng, so the stream is the one Rng(Seed) yields.
  uint64_t RngState = Opts.Seed;
  const FactorGraph::EdgeLayout &L = G.edgeLayout();
  const unsigned NumFactors = G.factorCount();

  // Initialize from priors.
  std::vector<double> Priors(NumVars);
  std::vector<uint8_t> Assign(NumVars);
  for (unsigned V = 0; V != NumVars; ++V) {
    Priors[V] = G.variable(V).Prior;
    Assign[V] = kern::rngUniform(RngState) < Priors[V];
  }

  // Incremental conditional evaluation: each factor's current table
  // index is cached and maintained under flips (flipping V XORs V's
  // slot bits into every adjacent factor's index), so a conditional
  // weight is one table load per adjacent factor instead of an index
  // rebuild over that factor's whole scope.
  std::vector<uint32_t> CurIndex(NumFactors, 0);
  for (uint32_t E = 0; E != L.edgeCount(); ++E)
    if (Assign[L.EdgeVar[E]])
      CurIndex[L.EdgeFactor[E]] |= L.EdgeSlotBit[E];

  kern::GibbsView View;
  View.NumVars = NumVars;
  View.VarOffset = L.VarOffset.data();
  View.VmFactor = L.VmFactor.data();
  View.VmMask = L.VmMask.data();
  View.VmSlotBit = L.VmSlotBit.data();
  View.VmTableBase = L.VmTableBase.data();
  View.TableFlat = L.TableFlat.data();
  View.Priors = Priors.data();
  kern::GibbsState KState;
  KState.CurIndex = CurIndex.data();
  KState.Assign = Assign.data();
  KState.RngState = &RngState;
  // Pair path: seed every position's current pair index from CurIndex
  // once; the kernel maintains it under flips through the
  // flip-adjacency CSR (and leaves CurIndex itself untouched — the
  // sampler reads chain state from Assign only).
  std::vector<uint32_t> PosIdx;
  if (!L.PairFlat.empty()) {
    View.PairFlat = L.PairFlat.data();
    View.FlipOffset = L.FlipOffset.data();
    View.FlipPos = L.FlipPos.data();
    View.FlipDelta = L.FlipDelta.data();
    PosIdx.resize(L.edgeCount());
    for (uint32_t I = 0; I != L.edgeCount(); ++I) {
      const uint32_t Cur = CurIndex[L.VmFactor[I]];
      const uint32_t Low = L.VmPairLow[I];
      PosIdx[I] =
          L.VmPairBase[I] + 2 * ((Cur & Low) | ((Cur >> 1) & ~Low));
    }
    KState.PosIdx = PosIdx.data();
  }
  const kern::SolverKernels &K = kern::solverKernels();

  std::vector<uint32_t> TrueCounts(NumVars, 0);
  unsigned Collected = 0;
  bool DeadlineExpired = false;
  uint64_t Updates = 0;
  const unsigned Sweeps = Opts.BurnIn + Opts.Samples;
  const bool TraceSweeps =
      telemetry::enabled(telemetry::TraceLevel::Solver);
  unsigned Sweep = 0;
  for (; Sweep != Sweeps; ++Sweep) {
    if (Opts.Budget.expired(Sweep)) {
      DeadlineExpired = true;
      break;
    }
    if (TraceSweeps && (Sweep & 0xFF) == 0)
      telemetry::counterSample("gibbs.progress",
                               telemetry::TraceLevel::Solver, "solver",
                               "sweep", static_cast<double>(Sweep));
    // The kernel runs the sweep in chunks so the mid-sweep wall-clock
    // check keeps its cadence (before variables 63, 127, ...): on large
    // graphs a single sweep can outlast the whole budget, while small
    // graphs keep the exact sweep counts the per-sweep check alone
    // would produce.
    uint32_t ChunkBegin = 0;
    while (ChunkBegin != NumVars) {
      const uint32_t ChunkEnd = std::min<uint32_t>(
          NumVars, ChunkBegin == 0 ? 63u : ChunkBegin + 64);
      K.GibbsSweep(View, KState, ChunkBegin, ChunkEnd);
      Updates += ChunkEnd - ChunkBegin;
      ChunkBegin = ChunkEnd;
      if (ChunkBegin != NumVars && Opts.Budget.expired(Sweep)) {
        DeadlineExpired = true;
        break;
      }
    }
    if (DeadlineExpired)
      break; // Do not sample a half-updated sweep.
    if (Sweep >= Opts.BurnIn) {
      for (unsigned V = 0; V != NumVars; ++V)
        TrueCounts[V] += Assign[V];
      ++Collected;
    }
  }

  // A cut-short chain averages whatever samples it collected; with none
  // at all the marginals stay at the uninformative 0.5.
  Marginals Result(NumVars, 0.5);
  if (Collected > 0)
    for (unsigned V = 0; V != NumVars; ++V)
      Result[V] = static_cast<double>(TrueCounts[V]) /
                  static_cast<double>(Collected);
  // Samples == 0 collects nothing by construction: that is a
  // non-convergent run over uninformative marginals, not a vacuous
  // success.
  const bool Converged = Opts.Samples > 0 && Collected == Opts.Samples;
  if (Report) {
    Report->Iterations = Sweep;
    Report->DeadlineExpired = DeadlineExpired;
    Report->Converged = Converged;
    Report->Residual = 0.0;
    Report->Updates = Updates;
    Report->Seconds = SolveTimer.seconds();
    Report->Reason.clear();
    if (!Converged) {
      // Every non-convergent outcome names its cause, so the cascade's
      // Diagnostics and the trace agree on why the stage was abandoned
      // (including the Samples == 0 degenerate request, which used to
      // surface as a reasonless "Samples == 0" non-convergence).
      if (Opts.Samples == 0)
        Report->Reason = "no samples requested (Samples == 0)";
      else
        Report->Reason = formatStr(
            "deadline expired after %u of %u sweeps, %u/%u samples "
            "collected",
            Sweep, Sweeps, Collected, Opts.Samples);
    }
  }
  if (telemetry::enabled(telemetry::TraceLevel::Phase)) {
    telemetry::counter("solver.gibbs.solves").add(1);
    telemetry::counter("solver.gibbs.flips").add(Updates);
    if (!Converged)
      telemetry::counter("solver.gibbs.nonconverged").add(1);
    telemetry::histogram("solver.gibbs.sweeps")
        .record(static_cast<double>(Sweep));
    telemetry::histogram("solver.gibbs.samples")
        .record(static_cast<double>(Collected));
    telemetry::histogram("solver.gibbs.seconds")
        .record(SolveTimer.seconds());
  }
  if (SolveSpan.active()) {
    SolveSpan.arg("vars", NumVars);
    SolveSpan.arg("sweeps", Sweep);
    SolveSpan.arg("samples", Collected);
    SolveSpan.arg("flips", Updates);
    SolveSpan.argBool("converged", Converged);
    if (!Opts.Budget.unlimited())
      SolveSpan.arg("budget_remaining_s", Opts.Budget.remainingSeconds());
  }
  return Result;
}
