//===- Solvers.cpp - Marginal inference over factor graphs -----------------===//

#include "factor/Solvers.h"

#include "support/FaultInject.h"
#include "support/Format.h"
#include "support/Timer.h"

#include <cmath>

using namespace anek;

//===----------------------------------------------------------------------===//
// Loopy belief propagation
//===----------------------------------------------------------------------===//

namespace {

/// A Bernoulli message as P(true); P(false) = 1 - P(true).
using Message = double;

} // namespace

Marginals SumProductSolver::solve(const FactorGraph &G,
                                  Marginals *GraphLikelihood,
                                  SolveReport *Report) const {
  Timer SolveTimer;
  const unsigned NumVars = G.variableCount();
  const unsigned NumFactors = G.factorCount();
  // Fault 'bp-nonconverge': run normally but report the solve as not
  // converged, exactly as on a frustrated loopy graph.
  const bool ForcedNonConvergence =
      faults::anyActive() && faults::active(FaultKind::BpNonConvergence);
  bool DeadlineExpired = false;

  // Edge layout: for each factor, one slot per scope position.
  // VarToFactor[f][k] is the message Scope[k] -> factor f;
  // FactorToVar[f][k] the reverse.
  std::vector<std::vector<Message>> VarToFactor(NumFactors);
  std::vector<std::vector<Message>> FactorToVar(NumFactors);
  for (unsigned F = 0; F != NumFactors; ++F) {
    size_t Degree = G.factor(F).Scope.size();
    VarToFactor[F].assign(Degree, 0.5);
    FactorToVar[F].assign(Degree, 0.5);
  }

  const auto &VarIndex = G.varToFactors();
  // Positions of each variable within each adjacent factor's scope.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> Adjacency(NumVars);
  for (unsigned F = 0; F != NumFactors; ++F) {
    const auto &Scope = G.factor(F).Scope;
    for (uint32_t K = 0; K != Scope.size(); ++K)
      Adjacency[Scope[K]].push_back({F, K});
  }
  (void)VarIndex;

  double Delta = 1.0;
  unsigned Iter = 0;
  for (; Iter != Opts.MaxIterations && Delta > Opts.Tolerance; ++Iter) {
    if (Opts.Budget.expired(Iter)) {
      DeadlineExpired = true;
      break;
    }
    Delta = 0.0;

    // Variable -> factor messages: prior times incoming factor messages
    // from all other adjacent factors.
    for (unsigned V = 0; V != NumVars; ++V) {
      for (auto [F, K] : Adjacency[V]) {
        double True = G.variable(V).Prior;
        double False = 1.0 - True;
        for (auto [F2, K2] : Adjacency[V]) {
          if (F2 == F && K2 == K)
            continue;
          True *= clampProb(FactorToVar[F2][K2]);
          False *= clampProb(1.0 - FactorToVar[F2][K2]);
        }
        double Sum = True + False;
        double NewMsg = Sum > 0 ? True / Sum : 0.5;
        NewMsg = (1.0 - Opts.Damping) * NewMsg +
                 Opts.Damping * VarToFactor[F][K];
        Delta = std::max(Delta, std::fabs(NewMsg - VarToFactor[F][K]));
        VarToFactor[F][K] = NewMsg;
      }
    }

    // Factor -> variable messages: marginalize the table against incoming
    // variable messages.
    for (unsigned F = 0; F != NumFactors; ++F) {
      const FactorGraph::Factor &Factor = G.factor(F);
      const size_t Degree = Factor.Scope.size();
      const size_t TableSize = Factor.Table.size();
      for (uint32_t K = 0; K != Degree; ++K) {
        double True = 0.0, False = 0.0;
        for (size_t Index = 0; Index != TableSize; ++Index) {
          double Weight = Factor.Table[Index];
          if (Weight == 0.0)
            continue;
          for (uint32_t K2 = 0; K2 != Degree; ++K2) {
            if (K2 == K)
              continue;
            bool Bit = (Index >> K2) & 1;
            Weight *= Bit ? VarToFactor[F][K2]
                          : 1.0 - VarToFactor[F][K2];
          }
          if ((Index >> K) & 1)
            True += Weight;
          else
            False += Weight;
        }
        double Sum = True + False;
        double NewMsg = Sum > 0 ? True / Sum : 0.5;
        NewMsg = (1.0 - Opts.Damping) * NewMsg +
                 Opts.Damping * FactorToVar[F][K];
        Delta = std::max(Delta, std::fabs(NewMsg - FactorToVar[F][K]));
        FactorToVar[F][K] = NewMsg;
      }
    }
  }
  LastIterations = Iter;
  if (Report) {
    Report->Iterations = Iter;
    Report->Residual = Delta;
    Report->DeadlineExpired = DeadlineExpired;
    Report->Converged =
        !ForcedNonConvergence && !DeadlineExpired && Delta <= Opts.Tolerance;
  }

  // Beliefs: prior times all incoming factor messages.
  Marginals Result(NumVars, 0.5);
  if (GraphLikelihood)
    GraphLikelihood->assign(NumVars, 0.5);
  for (unsigned V = 0; V != NumVars; ++V) {
    double True = G.variable(V).Prior;
    double False = 1.0 - True;
    double GraphTrue = 1.0, GraphFalse = 1.0;
    for (auto [F, K] : Adjacency[V]) {
      True *= clampProb(FactorToVar[F][K]);
      False *= clampProb(1.0 - FactorToVar[F][K]);
      GraphTrue *= clampProb(FactorToVar[F][K]);
      GraphFalse *= clampProb(1.0 - FactorToVar[F][K]);
      // Renormalize as we go so long products stay in range.
      double Scale = GraphTrue + GraphFalse;
      GraphTrue /= Scale;
      GraphFalse /= Scale;
    }
    double Sum = True + False;
    Result[V] = Sum > 0 ? True / Sum : 0.5;
    if (GraphLikelihood)
      (*GraphLikelihood)[V] = GraphTrue;
  }
  if (Report)
    Report->Seconds = SolveTimer.seconds();
  return Result;
}

//===----------------------------------------------------------------------===//
// Exact enumeration
//===----------------------------------------------------------------------===//

Expected<Marginals> ExactSolver::solve(const FactorGraph &G,
                                       const Deadline &Budget) const {
  const unsigned NumVars = G.variableCount();
  if (NumVars > MaxVariables)
    return Status::error(
        ErrorCode::ResourceExhausted,
        formatStr("graph has %u variables, exact enumeration handles "
                  "at most %u",
                  NumVars, MaxVariables));
  std::vector<double> TrueMass(NumVars, 0.0);
  double Total = 0.0;
  std::vector<bool> Assignment(NumVars);
  const uint64_t Count = uint64_t{1} << NumVars;
  for (uint64_t Index = 0; Index != Count; ++Index) {
    if ((Index & 0xFFF) == 0 && Budget.expired())
      return Status::error(
          ErrorCode::DeadlineExceeded,
          formatStr("exact enumeration budget expired after %llu of %llu "
                    "assignments",
                    static_cast<unsigned long long>(Index),
                    static_cast<unsigned long long>(Count)));
    for (unsigned V = 0; V != NumVars; ++V)
      Assignment[V] = (Index >> V) & 1;
    double Weight = G.jointWeight(Assignment);
    Total += Weight;
    for (unsigned V = 0; V != NumVars; ++V)
      if (Assignment[V])
        TrueMass[V] += Weight;
  }
  Marginals Result(NumVars, 0.5);
  if (Total > 0)
    for (unsigned V = 0; V != NumVars; ++V)
      Result[V] = TrueMass[V] / Total;
  return Result;
}

std::optional<uint64_t>
ExactSolver::countSatisfying(const FactorGraph &G, unsigned VarLimit,
                             double Threshold) const {
  const unsigned NumVars = G.variableCount();
  if (NumVars > VarLimit || NumVars > 62)
    return std::nullopt; // The deterministic solver gives up: DNF.
  uint64_t Satisfying = 0;
  std::vector<bool> Assignment(NumVars);
  const uint64_t Count = uint64_t{1} << NumVars;
  for (uint64_t Index = 0; Index != Count; ++Index) {
    for (unsigned V = 0; V != NumVars; ++V)
      Assignment[V] = (Index >> V) & 1;
    bool Ok = true;
    for (uint32_t F = 0; F != G.factorCount() && Ok; ++F) {
      const FactorGraph::Factor &Factor = G.factor(F);
      size_t TableIndex = 0;
      for (size_t Bit = 0; Bit != Factor.Scope.size(); ++Bit)
        if (Assignment[Factor.Scope[Bit]])
          TableIndex |= size_t{1} << Bit;
      Ok = Factor.Table[TableIndex] > Threshold;
    }
    Satisfying += Ok;
  }
  return Satisfying;
}

std::optional<Marginals>
ExactSolver::solveLogical(const FactorGraph &G, unsigned VarLimit,
                          double Threshold) const {
  const unsigned NumVars = G.variableCount();
  if (NumVars > VarLimit || NumVars > 62)
    return std::nullopt; // Too large: the deterministic solver gives up.
  uint64_t Satisfying = 0;
  std::vector<uint64_t> TrueCounts(NumVars, 0);
  std::vector<bool> Assignment(NumVars);
  const uint64_t Count = uint64_t{1} << NumVars;
  for (uint64_t Index = 0; Index != Count; ++Index) {
    for (unsigned V = 0; V != NumVars; ++V)
      Assignment[V] = (Index >> V) & 1;
    bool Ok = true;
    for (uint32_t F = 0; F != G.factorCount() && Ok; ++F) {
      const FactorGraph::Factor &Factor = G.factor(F);
      size_t TableIndex = 0;
      for (size_t Bit = 0; Bit != Factor.Scope.size(); ++Bit)
        if (Assignment[Factor.Scope[Bit]])
          TableIndex |= size_t{1} << Bit;
      Ok = Factor.Table[TableIndex] > Threshold;
    }
    if (!Ok)
      continue;
    ++Satisfying;
    for (unsigned V = 0; V != NumVars; ++V)
      if (Assignment[V])
        ++TrueCounts[V];
  }
  if (Satisfying == 0)
    return std::nullopt; // Unsatisfiable: conflicting constraints.
  Marginals Result(NumVars);
  for (unsigned V = 0; V != NumVars; ++V)
    Result[V] = static_cast<double>(TrueCounts[V]) /
                static_cast<double>(Satisfying);
  return Result;
}

//===----------------------------------------------------------------------===//
// Gibbs sampling
//===----------------------------------------------------------------------===//

Marginals GibbsSolver::solve(const FactorGraph &G,
                             SolveReport *Report) const {
  Timer SolveTimer;
  const unsigned NumVars = G.variableCount();
  if (NumVars == 0) {
    if (Report) {
      *Report = SolveReport();
      Report->Converged = Opts.Samples > 0;
    }
    return {};
  }
  Rng Random(Opts.Seed);
  const auto &VarIndex = G.varToFactors();

  // Initialize from priors.
  std::vector<bool> State(NumVars);
  for (unsigned V = 0; V != NumVars; ++V)
    State[V] = Random.flip(G.variable(V).Prior);

  std::vector<uint32_t> TrueCounts(NumVars, 0);
  unsigned Collected = 0;
  bool DeadlineExpired = false;
  const unsigned Sweeps = Opts.BurnIn + Opts.Samples;
  unsigned Sweep = 0;
  for (; Sweep != Sweeps; ++Sweep) {
    if (Opts.Budget.expired(Sweep)) {
      DeadlineExpired = true;
      break;
    }
    for (unsigned V = 0; V != NumVars; ++V) {
      // On large graphs a single sweep can outlast the whole budget, so
      // re-check the wall clock every 64 variables; small graphs keep
      // the exact sweep counts the per-sweep check alone would produce.
      if ((V & 0x3F) == 0x3F && Opts.Budget.expired(Sweep)) {
        DeadlineExpired = true;
        break;
      }
      // Conditional weight of X_V = b given the rest.
      double Weight[2];
      for (int B = 0; B != 2; ++B) {
        State[V] = B;
        double W = B ? G.variable(V).Prior : 1.0 - G.variable(V).Prior;
        for (uint32_t F : VarIndex[V]) {
          const FactorGraph::Factor &Factor = G.factor(F);
          size_t Index = 0;
          for (size_t Bit = 0; Bit != Factor.Scope.size(); ++Bit)
            if (State[Factor.Scope[Bit]])
              Index |= size_t{1} << Bit;
          W *= Factor.Table[Index];
        }
        Weight[B] = W;
      }
      double Sum = Weight[0] + Weight[1];
      State[V] = Sum > 0 ? Random.flip(Weight[1] / Sum) : Random.flip(0.5);
    }
    if (DeadlineExpired)
      break; // Do not sample a half-updated sweep.
    if (Sweep >= Opts.BurnIn) {
      for (unsigned V = 0; V != NumVars; ++V)
        TrueCounts[V] += State[V];
      ++Collected;
    }
  }

  // A cut-short chain averages whatever samples it collected; with none
  // at all the marginals stay at the uninformative 0.5.
  Marginals Result(NumVars, 0.5);
  if (Collected > 0)
    for (unsigned V = 0; V != NumVars; ++V)
      Result[V] = static_cast<double>(TrueCounts[V]) /
                  static_cast<double>(Collected);
  if (Report) {
    Report->Iterations = Sweep;
    Report->DeadlineExpired = DeadlineExpired;
    // Samples == 0 collects nothing by construction: that is a
    // non-convergent run over uninformative marginals, not a vacuous
    // success.
    Report->Converged = Opts.Samples > 0 && Collected == Opts.Samples;
    Report->Residual = 0.0;
    Report->Seconds = SolveTimer.seconds();
  }
  return Result;
}
