//===- Solvers.cpp - Marginal inference over factor graphs -----------------===//

#include "factor/Solvers.h"

#include "support/FaultInject.h"
#include "support/Format.h"
#include "support/Metrics.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cmath>
#include <limits>

using namespace anek;

namespace {

/// Inline copy of clampProb for the kernel hot loops: identical
/// arithmetic, but visible to the optimizer (the out-of-line call is
/// measurable at two calls per edge per iteration).
inline double clampFast(double P) {
  constexpr double Eps = 1e-9;
  if (P < Eps)
    return Eps;
  if (P > 1.0 - Eps)
    return 1.0 - Eps;
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// Loopy belief propagation
//===----------------------------------------------------------------------===//
//
// The kernel runs over FactorGraph::EdgeLayout: one flat message slot per
// (factor, scope position) edge, so both message directions live in two
// contiguous double arrays indexed by edge id. Per iteration:
//
//  - Variable -> factor updates use prefix/suffix products of the
//    incoming factor messages: all K outgoing messages of a degree-K
//    variable cost O(K) total instead of the O(K^2) leave-one-out
//    products of the nested-vector kernel.
//  - Factor -> variable updates marginalize the whole table once: for
//    each table entry, per-slot prefix/suffix weight products yield the
//    leave-one-slot-out contribution of that entry to *every* outgoing
//    message, so a degree-K factor costs O(2^K * K) per iteration
//    instead of O(2^K * K^2).
//  - Residual scheduling (Options::ResidualScheduling) skips the table
//    sweep of factors whose inputs have not moved since their last
//    update; a periodic full refresh bounds how long sub-threshold
//    drift can go unnoticed. Skipping depends only on message values,
//    never on timing, so results stay deterministic.

Marginals SumProductSolver::solve(const FactorGraph &G,
                                  Marginals *GraphLikelihood,
                                  SolveReport *Report) const {
  Timer SolveTimer;
  // Telemetry gates, hoisted out of the message loops: when tracing is
  // off each costs one relaxed load here and a dead branch below.
  telemetry::Span SolveSpan("solver.bp", telemetry::TraceLevel::Method,
                            "solver");
  const bool TraceIters =
      telemetry::enabled(telemetry::TraceLevel::Solver);
  const unsigned NumVars = G.variableCount();
  const unsigned NumFactors = G.factorCount();
  const FactorGraph::EdgeLayout &L = G.edgeLayout();
  const uint32_t NumEdges = L.edgeCount();
  // Fault 'bp-nonconverge': run normally but report the solve as not
  // converged, exactly as on a frustrated loopy graph.
  const bool ForcedNonConvergence =
      faults::anyActive() && faults::active(FaultKind::BpNonConvergence);
  bool DeadlineExpired = false;

  // Flat message arrays, both directions, indexed by edge id.
  std::vector<double> VarToFactor(NumEdges, 0.5);
  std::vector<double> FactorToVar(NumEdges, 0.5);

  // Scratch reused across iterations; sized once from the layout's
  // degree bounds so the hot loops never allocate.
  std::vector<double> InT(L.MaxVarDegree), InF(L.MaxVarDegree);
  std::vector<double> SufT(L.MaxVarDegree + 1), SufF(L.MaxVarDegree + 1);
  std::vector<double> MsgT(L.MaxFactorDegree), MsgF(L.MaxFactorDegree);
  std::vector<double> PreW(L.MaxFactorDegree + 1),
      SufW(L.MaxFactorDegree + 1);
  std::vector<double> OutT(L.MaxFactorDegree), OutF(L.MaxFactorDegree);

  // Residual-scheduling state. PendingIn accumulates the absolute change
  // of a factor's incoming messages since its last table sweep (additive,
  // so repeated sub-threshold nudges still trigger); LastOut is the max
  // outgoing change of that sweep. The +inf seeds force every factor to
  // run on the first iteration.
  const double Inf = std::numeric_limits<double>::infinity();
  std::vector<double> PendingIn(NumFactors, Inf);
  std::vector<double> LastOut(NumFactors, Inf);
  const double SkipTolerance = 0.5 * Opts.Tolerance;
  uint64_t Updates = 0, Skipped = 0;

  // Hot-loop constants and flat views, hoisted so the optimizer does not
  // have to reload them past every message store: Options fields are
  // doubles a double store could alias; Variable/Factor are
  // string-padded structs whose stride wastes cache lines.
  const double Damping = Opts.Damping;
  const double OneMinusDamping = 1.0 - Opts.Damping;
  const bool Scheduling = Opts.ResidualScheduling;
  const uint32_t *VarEdges = L.VarEdges.data();
  const uint32_t *EdgeFactor = L.EdgeFactor.data();
  std::vector<double> Priors(NumVars);
  for (unsigned V = 0; V != NumVars; ++V)
    Priors[V] = G.variable(V).Prior;
  std::vector<const double *> Tables(NumFactors);
  for (unsigned F = 0; F != NumFactors; ++F)
    Tables[F] = G.factor(F).Table.data();

  double Delta = 1.0;
  unsigned Iter = 0;
  for (; Iter != Opts.MaxIterations && Delta > Opts.Tolerance; ++Iter) {
    if (Opts.Budget.expired(Iter)) {
      DeadlineExpired = true;
      break;
    }
    if (TraceIters && Iter != 0)
      telemetry::counterSample("bp.residual", telemetry::TraceLevel::Solver,
                               "solver", "residual", Delta);
    Delta = 0.0;

    // Variable -> factor messages: prior times incoming factor messages
    // from all other adjacent factors, via prefix/suffix products.
    for (unsigned V = 0; V != NumVars; ++V) {
      const uint32_t Begin = L.VarOffset[V];
      const uint32_t Deg = L.VarOffset[V + 1] - Begin;
      if (Deg == 0)
        continue;
      SufT[Deg] = SufF[Deg] = 1.0;
      for (uint32_t I = Deg; I-- != 0;) {
        const double In = FactorToVar[VarEdges[Begin + I]];
        const double T = clampFast(In);
        const double Fa = clampFast(1.0 - In);
        InT[I] = T;
        InF[I] = Fa;
        SufT[I] = T * SufT[I + 1];
        SufF[I] = Fa * SufF[I + 1];
      }
      double PreT = Priors[V];
      double PreF = 1.0 - PreT;
      for (uint32_t I = 0; I != Deg; ++I) {
        const uint32_t E = VarEdges[Begin + I];
        const double True = PreT * SufT[I + 1];
        const double False = PreF * SufF[I + 1];
        const double Sum = True + False;
        double NewMsg = Sum > 0 ? True / Sum : 0.5;
        NewMsg = OneMinusDamping * NewMsg + Damping * VarToFactor[E];
        const double Change = std::fabs(NewMsg - VarToFactor[E]);
        Delta = std::max(Delta, Change);
        VarToFactor[E] = NewMsg;
        if (Scheduling)
          PendingIn[EdgeFactor[E]] += Change;
        PreT *= InT[I];
        PreF *= InF[I];
      }
      Updates += Deg;
    }

    // Factor -> variable messages: one sweep over the table computes all
    // outgoing messages. Factors whose inputs are quiet since an already
    // sub-tolerance update are skipped (their outputs cannot move by
    // more than a fraction of the tolerance) except on refresh rounds.
    const bool Refresh =
        Opts.RefreshInterval != 0 &&
        (Iter % Opts.RefreshInterval) == Opts.RefreshInterval - 1;
    for (unsigned F = 0; F != NumFactors; ++F) {
      if (Opts.ResidualScheduling && !Refresh &&
          PendingIn[F] <= SkipTolerance && LastOut[F] <= Opts.Tolerance) {
        ++Skipped;
        continue;
      }
      const uint32_t Begin = L.FactorOffset[F];
      const uint32_t Deg = L.FactorOffset[F + 1] - Begin;
      const double *Table = Tables[F];
      // Closed forms for the dominant shapes (unary evidence and
      // pairwise equality factors); the general path is the single
      // table sweep with per-slot prefix/suffix weight products. All
      // three accumulate contributions in table-index order, so the
      // specializations are float-for-float the general path.
      if (Deg == 1) {
        OutF[0] = Table[0];
        OutT[0] = Table[1];
      } else if (Deg == 2) {
        const double M0T = VarToFactor[Begin];
        const double M0F = 1.0 - M0T;
        const double M1T = VarToFactor[Begin + 1];
        const double M1F = 1.0 - M1T;
        OutF[0] = Table[0] * M1F + Table[2] * M1T;
        OutT[0] = Table[1] * M1F + Table[3] * M1T;
        OutF[1] = Table[0] * M0F + Table[1] * M0T;
        OutT[1] = Table[2] * M0F + Table[3] * M0T;
      } else {
        const size_t TableSize = size_t{1} << Deg;
        for (uint32_t K = 0; K != Deg; ++K) {
          MsgT[K] = VarToFactor[Begin + K];
          MsgF[K] = 1.0 - MsgT[K];
          OutT[K] = OutF[K] = 0.0;
        }
        for (size_t Index = 0; Index != TableSize; ++Index) {
          const double Weight = Table[Index];
          if (Weight == 0.0)
            continue;
          PreW[0] = Weight;
          for (uint32_t K = 0; K != Deg; ++K)
            PreW[K + 1] =
                PreW[K] * (((Index >> K) & 1) ? MsgT[K] : MsgF[K]);
          SufW[Deg] = 1.0;
          for (uint32_t K = Deg; K-- != 0;)
            SufW[K] =
                SufW[K + 1] * (((Index >> K) & 1) ? MsgT[K] : MsgF[K]);
          for (uint32_t K = 0; K != Deg; ++K) {
            const double Contrib = PreW[K] * SufW[K + 1];
            if ((Index >> K) & 1)
              OutT[K] += Contrib;
            else
              OutF[K] += Contrib;
          }
        }
      }
      double MaxChange = 0.0;
      for (uint32_t K = 0; K != Deg; ++K) {
        const uint32_t E = Begin + K;
        const double Sum = OutT[K] + OutF[K];
        double NewMsg = Sum > 0 ? OutT[K] / Sum : 0.5;
        NewMsg = OneMinusDamping * NewMsg + Damping * FactorToVar[E];
        const double Change = std::fabs(NewMsg - FactorToVar[E]);
        MaxChange = std::max(MaxChange, Change);
        FactorToVar[E] = NewMsg;
      }
      Delta = std::max(Delta, MaxChange);
      PendingIn[F] = 0.0;
      LastOut[F] = MaxChange;
      Updates += Deg;
    }
  }
  LastIterations = Iter;
  const bool Converged =
      !ForcedNonConvergence && !DeadlineExpired && Delta <= Opts.Tolerance;
  if (Report) {
    Report->Iterations = Iter;
    Report->Residual = Delta;
    Report->DeadlineExpired = DeadlineExpired;
    Report->Converged = Converged;
    Report->Updates = Updates;
    Report->SkippedUpdates = Skipped;
    Report->Reason.clear();
    if (!Converged)
      Report->Reason = formatStr(
          "residual %.2g after %u iterations%s%s", Delta, Iter,
          DeadlineExpired ? ", budget expired" : "",
          ForcedNonConvergence ? ", injected non-convergence" : "");
  }
  if (TraceIters)
    telemetry::counterSample("bp.residual", telemetry::TraceLevel::Solver,
                             "solver", "residual", Delta);
  if (telemetry::enabled(telemetry::TraceLevel::Phase)) {
    telemetry::counter("solver.bp.solves").add(1);
    telemetry::counter("solver.bp.messages").add(Updates);
    telemetry::counter("solver.bp.skipped_updates").add(Skipped);
    if (!Converged)
      telemetry::counter("solver.bp.nonconverged").add(1);
    telemetry::histogram("solver.bp.iterations")
        .record(static_cast<double>(Iter));
    telemetry::histogram("solver.bp.residual").record(Delta);
    telemetry::histogram("solver.bp.seconds").record(SolveTimer.seconds());
  }
  if (SolveSpan.active()) {
    SolveSpan.arg("vars", NumVars);
    SolveSpan.arg("factors", NumFactors);
    SolveSpan.arg("iters", Iter);
    SolveSpan.arg("residual", Delta);
    SolveSpan.argBool("converged", Converged);
    SolveSpan.arg("messages", Updates);
    if (!Opts.Budget.unlimited())
      SolveSpan.arg("budget_remaining_s", Opts.Budget.remainingSeconds());
  }

  // Beliefs: prior times all incoming factor messages.
  Marginals Result(NumVars, 0.5);
  if (GraphLikelihood)
    GraphLikelihood->assign(NumVars, 0.5);
  for (unsigned V = 0; V != NumVars; ++V) {
    double True = G.variable(V).Prior;
    double False = 1.0 - True;
    double GraphTrue = 1.0, GraphFalse = 1.0;
    for (uint32_t I = L.VarOffset[V]; I != L.VarOffset[V + 1]; ++I) {
      const double In = FactorToVar[L.VarEdges[I]];
      const double MsgTrue = clampProb(In);
      const double MsgFalse = clampProb(1.0 - In);
      True *= MsgTrue;
      False *= MsgFalse;
      GraphTrue *= MsgTrue;
      GraphFalse *= MsgFalse;
      // Renormalize as we go so long products stay in range.
      const double Scale = GraphTrue + GraphFalse;
      GraphTrue /= Scale;
      GraphFalse /= Scale;
    }
    const double Sum = True + False;
    Result[V] = Sum > 0 ? True / Sum : 0.5;
    if (GraphLikelihood)
      (*GraphLikelihood)[V] = GraphTrue;
  }
  if (Report)
    Report->Seconds = SolveTimer.seconds();
  return Result;
}

//===----------------------------------------------------------------------===//
// Exact enumeration
//===----------------------------------------------------------------------===//

Expected<Marginals> ExactSolver::solve(const FactorGraph &G,
                                       const Deadline &Budget) const {
  telemetry::Span SolveSpan("solver.exact", telemetry::TraceLevel::Method,
                            "solver");
  const unsigned NumVars = G.variableCount();
  if (SolveSpan.active())
    SolveSpan.arg("vars", NumVars);
  if (telemetry::enabled(telemetry::TraceLevel::Phase)) {
    telemetry::counter("solver.exact.solves").add(1);
    telemetry::histogram("solver.exact.vars")
        .record(static_cast<double>(NumVars));
  }
  if (NumVars > MaxVariables)
    return Status::error(
        ErrorCode::ResourceExhausted,
        formatStr("graph has %u variables, exact enumeration handles "
                  "at most %u",
                  NumVars, MaxVariables));
  std::vector<double> TrueMass(NumVars, 0.0);
  double Total = 0.0;
  std::vector<bool> Assignment(NumVars);
  const uint64_t Count = uint64_t{1} << NumVars;
  for (uint64_t Index = 0; Index != Count; ++Index) {
    if ((Index & 0xFFF) == 0 && Budget.expired())
      return Status::error(
          ErrorCode::DeadlineExceeded,
          formatStr("exact enumeration budget expired after %llu of %llu "
                    "assignments",
                    static_cast<unsigned long long>(Index),
                    static_cast<unsigned long long>(Count)));
    for (unsigned V = 0; V != NumVars; ++V)
      Assignment[V] = (Index >> V) & 1;
    double Weight = G.jointWeight(Assignment);
    Total += Weight;
    for (unsigned V = 0; V != NumVars; ++V)
      if (Assignment[V])
        TrueMass[V] += Weight;
  }
  Marginals Result(NumVars, 0.5);
  if (Total > 0)
    for (unsigned V = 0; V != NumVars; ++V)
      Result[V] = TrueMass[V] / Total;
  return Result;
}

std::optional<uint64_t>
ExactSolver::countSatisfying(const FactorGraph &G, unsigned VarLimit,
                             double Threshold,
                             const Deadline &Budget) const {
  const unsigned NumVars = G.variableCount();
  if (NumVars > VarLimit || NumVars > 62)
    return std::nullopt; // The deterministic solver gives up: DNF.
  uint64_t Satisfying = 0;
  std::vector<bool> Assignment(NumVars);
  const uint64_t Count = uint64_t{1} << NumVars;
  for (uint64_t Index = 0; Index != Count; ++Index) {
    if ((Index & 0xFFF) == 0 && Budget.expired())
      return std::nullopt; // Budget expired mid-enumeration: DNF.
    for (unsigned V = 0; V != NumVars; ++V)
      Assignment[V] = (Index >> V) & 1;
    bool Ok = true;
    for (uint32_t F = 0; F != G.factorCount() && Ok; ++F) {
      const FactorGraph::Factor &Factor = G.factor(F);
      size_t TableIndex = 0;
      for (size_t Bit = 0; Bit != Factor.Scope.size(); ++Bit)
        if (Assignment[Factor.Scope[Bit]])
          TableIndex |= size_t{1} << Bit;
      Ok = Factor.Table[TableIndex] > Threshold;
    }
    Satisfying += Ok;
  }
  return Satisfying;
}

std::optional<Marginals>
ExactSolver::solveLogical(const FactorGraph &G, unsigned VarLimit,
                          double Threshold, const Deadline &Budget) const {
  const unsigned NumVars = G.variableCount();
  if (NumVars > VarLimit || NumVars > 62)
    return std::nullopt; // Too large: the deterministic solver gives up.
  uint64_t Satisfying = 0;
  std::vector<uint64_t> TrueCounts(NumVars, 0);
  std::vector<bool> Assignment(NumVars);
  const uint64_t Count = uint64_t{1} << NumVars;
  for (uint64_t Index = 0; Index != Count; ++Index) {
    if ((Index & 0xFFF) == 0 && Budget.expired())
      return std::nullopt; // Budget expired mid-enumeration: DNF.
    for (unsigned V = 0; V != NumVars; ++V)
      Assignment[V] = (Index >> V) & 1;
    bool Ok = true;
    for (uint32_t F = 0; F != G.factorCount() && Ok; ++F) {
      const FactorGraph::Factor &Factor = G.factor(F);
      size_t TableIndex = 0;
      for (size_t Bit = 0; Bit != Factor.Scope.size(); ++Bit)
        if (Assignment[Factor.Scope[Bit]])
          TableIndex |= size_t{1} << Bit;
      Ok = Factor.Table[TableIndex] > Threshold;
    }
    if (!Ok)
      continue;
    ++Satisfying;
    for (unsigned V = 0; V != NumVars; ++V)
      if (Assignment[V])
        ++TrueCounts[V];
  }
  if (Satisfying == 0)
    return std::nullopt; // Unsatisfiable: conflicting constraints.
  Marginals Result(NumVars);
  for (unsigned V = 0; V != NumVars; ++V)
    Result[V] = static_cast<double>(TrueCounts[V]) /
                static_cast<double>(Satisfying);
  return Result;
}

//===----------------------------------------------------------------------===//
// Gibbs sampling
//===----------------------------------------------------------------------===//

Marginals GibbsSolver::solve(const FactorGraph &G,
                             SolveReport *Report) const {
  Timer SolveTimer;
  telemetry::Span SolveSpan("solver.gibbs", telemetry::TraceLevel::Method,
                            "solver");
  const unsigned NumVars = G.variableCount();
  if (NumVars == 0) {
    if (Report) {
      *Report = SolveReport();
      Report->Converged = Opts.Samples > 0;
      if (!Report->Converged)
        Report->Reason = "no samples requested (Samples == 0)";
    }
    return {};
  }
  Rng Random(Opts.Seed);
  const FactorGraph::EdgeLayout &L = G.edgeLayout();
  const unsigned NumFactors = G.factorCount();

  // Initialize from priors.
  std::vector<uint8_t> State(NumVars);
  for (unsigned V = 0; V != NumVars; ++V)
    State[V] = Random.flip(G.variable(V).Prior);

  // Incremental conditional evaluation: each factor's current table
  // index is cached and maintained under flips (flipping V XORs V's
  // slot bits into every adjacent factor's index), so a conditional
  // weight is one table load per adjacent factor instead of an index
  // rebuild over that factor's whole scope.
  std::vector<uint32_t> CurIndex(NumFactors, 0);
  for (uint32_t E = 0; E != L.edgeCount(); ++E)
    if (State[L.EdgeVar[E]])
      CurIndex[L.EdgeFactor[E]] |= L.EdgeSlotBit[E];
  // Table base pointers are stable while the graph (and thus the cached
  // layout) is unmodified.
  std::vector<const double *> Tables(NumFactors);
  for (uint32_t F = 0; F != NumFactors; ++F)
    Tables[F] = G.factor(F).Table.data();

  std::vector<uint32_t> TrueCounts(NumVars, 0);
  unsigned Collected = 0;
  bool DeadlineExpired = false;
  uint64_t Updates = 0;
  const unsigned Sweeps = Opts.BurnIn + Opts.Samples;
  const bool TraceSweeps =
      telemetry::enabled(telemetry::TraceLevel::Solver);
  unsigned Sweep = 0;
  for (; Sweep != Sweeps; ++Sweep) {
    if (Opts.Budget.expired(Sweep)) {
      DeadlineExpired = true;
      break;
    }
    if (TraceSweeps && (Sweep & 0xFF) == 0)
      telemetry::counterSample("gibbs.progress",
                               telemetry::TraceLevel::Solver, "solver",
                               "sweep", static_cast<double>(Sweep));
    for (unsigned V = 0; V != NumVars; ++V) {
      // On large graphs a single sweep can outlast the whole budget, so
      // re-check the wall clock every 64 variables; small graphs keep
      // the exact sweep counts the per-sweep check alone would produce.
      if ((V & 0x3F) == 0x3F && Opts.Budget.expired(Sweep)) {
        DeadlineExpired = true;
        break;
      }
      // Conditional weight of X_V = b given the rest. EdgeVarMask covers
      // every slot of V in the factor, so a factor whose scope repeats V
      // still evaluates both occurrences at the same value (and, like
      // the pre-CSR kernel, contributes one table load per occurrence).
      double W0 = 1.0 - G.variable(V).Prior;
      double W1 = G.variable(V).Prior;
      for (uint32_t I = L.VarOffset[V]; I != L.VarOffset[V + 1]; ++I) {
        const uint32_t E = L.VarEdges[I];
        const uint32_t F = L.EdgeFactor[E];
        const uint32_t Mask = L.EdgeVarMask[E];
        const uint32_t Base = CurIndex[F] & ~Mask;
        W0 *= Tables[F][Base];
        W1 *= Tables[F][Base | Mask];
      }
      ++Updates;
      const double Sum = W0 + W1;
      const bool NewBit =
          Sum > 0 ? Random.flip(W1 / Sum) : Random.flip(0.5);
      if (NewBit != static_cast<bool>(State[V])) {
        State[V] = NewBit;
        for (uint32_t I = L.VarOffset[V]; I != L.VarOffset[V + 1]; ++I) {
          const uint32_t E = L.VarEdges[I];
          CurIndex[L.EdgeFactor[E]] ^= L.EdgeSlotBit[E];
        }
      }
    }
    if (DeadlineExpired)
      break; // Do not sample a half-updated sweep.
    if (Sweep >= Opts.BurnIn) {
      for (unsigned V = 0; V != NumVars; ++V)
        TrueCounts[V] += State[V];
      ++Collected;
    }
  }

  // A cut-short chain averages whatever samples it collected; with none
  // at all the marginals stay at the uninformative 0.5.
  Marginals Result(NumVars, 0.5);
  if (Collected > 0)
    for (unsigned V = 0; V != NumVars; ++V)
      Result[V] = static_cast<double>(TrueCounts[V]) /
                  static_cast<double>(Collected);
  // Samples == 0 collects nothing by construction: that is a
  // non-convergent run over uninformative marginals, not a vacuous
  // success.
  const bool Converged = Opts.Samples > 0 && Collected == Opts.Samples;
  if (Report) {
    Report->Iterations = Sweep;
    Report->DeadlineExpired = DeadlineExpired;
    Report->Converged = Converged;
    Report->Residual = 0.0;
    Report->Updates = Updates;
    Report->Seconds = SolveTimer.seconds();
    Report->Reason.clear();
    if (!Converged) {
      // Every non-convergent outcome names its cause, so the cascade's
      // Diagnostics and the trace agree on why the stage was abandoned
      // (including the Samples == 0 degenerate request, which used to
      // surface as a reasonless "Samples == 0" non-convergence).
      if (Opts.Samples == 0)
        Report->Reason = "no samples requested (Samples == 0)";
      else
        Report->Reason = formatStr(
            "deadline expired after %u of %u sweeps, %u/%u samples "
            "collected",
            Sweep, Sweeps, Collected, Opts.Samples);
    }
  }
  if (telemetry::enabled(telemetry::TraceLevel::Phase)) {
    telemetry::counter("solver.gibbs.solves").add(1);
    telemetry::counter("solver.gibbs.flips").add(Updates);
    if (!Converged)
      telemetry::counter("solver.gibbs.nonconverged").add(1);
    telemetry::histogram("solver.gibbs.sweeps")
        .record(static_cast<double>(Sweep));
    telemetry::histogram("solver.gibbs.samples")
        .record(static_cast<double>(Collected));
    telemetry::histogram("solver.gibbs.seconds")
        .record(SolveTimer.seconds());
  }
  if (SolveSpan.active()) {
    SolveSpan.arg("vars", NumVars);
    SolveSpan.arg("sweeps", Sweep);
    SolveSpan.arg("samples", Collected);
    SolveSpan.arg("flips", Updates);
    SolveSpan.argBool("converged", Converged);
    if (!Opts.Budget.unlimited())
      SolveSpan.arg("budget_remaining_s", Opts.Budget.remainingSeconds());
  }
  return Result;
}
