//===- Solvers.h - Marginal inference over factor graphs --------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three marginal solvers over FactorGraph:
///  - SumProductSolver: loopy belief propagation, the sum-product
///    algorithm of the paper's reference [14]. ANEK's workhorse.
///  - ExactSolver: marginalization by enumeration; ground truth for tests
///    and the engine behind the deterministic "Anek Logical" mode.
///  - GibbsSolver: seeded Gibbs sampling, the "sampling the marginal
///    functions" alternative mentioned in Section 3.4.
///
/// Every solver accepts a Deadline budget and produces a SolveReport, so
/// callers can treat convergence and runtime as a contract (the fallback
/// cascade in AnekInfer/GlobalInfer keys off these) instead of trusting
/// the solver to terminate usefully on pathological graphs.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_FACTOR_SOLVERS_H
#define ANEK_FACTOR_SOLVERS_H

#include "factor/FactorGraph.h"
#include "support/Deadline.h"
#include "support/Rng.h"
#include "support/Status.h"

#include <optional>
#include <vector>

namespace anek {

/// Result of a marginal computation: P(X = true) per variable.
using Marginals = std::vector<double>;

/// How a solve went: the convergence contract a caller can branch on.
struct SolveReport {
  /// True when the solver reached its own notion of done (BP: residual
  /// under tolerance; Gibbs: all requested samples collected; exact:
  /// always when it returns a value).
  bool Converged = false;
  /// Last L-inf message residual (BP) or 0 for solvers without one.
  double Residual = 0.0;
  /// Iterations/sweeps actually executed.
  unsigned Iterations = 0;
  /// Wall-clock seconds spent inside the solver.
  double Seconds = 0.0;
  /// True when the Deadline budget cut the solve short.
  bool DeadlineExpired = false;
  /// Raw kernel work done: messages computed (BP) or single-variable
  /// resampling steps (Gibbs). Updates / Seconds is the throughput the
  /// bench suite tracks.
  uint64_t Updates = 0;
  /// Factor updates elided by residual scheduling (BP only): sweeps over
  /// factors whose inputs had not moved since their last update.
  uint64_t SkippedUpdates = 0;
  /// Why the solver missed its convergence contract, in the solver's own
  /// words ("deadline expired after 3 of 2200 sweeps, 0/2000 samples
  /// collected"); empty when Converged. The fallback cascade threads
  /// this into MethodReport::Reason, so Diagnostics and traces agree on
  /// why a stage was abandoned.
  std::string Reason;
};

/// Loopy belief propagation (sum-product) with a flooding schedule.
class SumProductSolver {
public:
  struct Options {
    unsigned MaxIterations = 40;
    /// L-inf convergence threshold on message change.
    double Tolerance = 1e-5;
    /// Message damping in [0,1): new = (1-d)*new + d*old. Helps loopy
    /// graphs converge.
    double Damping = 0.15;
    /// Wall-clock budget checked once per iteration (default unlimited).
    Deadline Budget;
    /// Residual-driven factor scheduling: skip a factor's table sweep
    /// when its incoming messages have accumulated less than half the
    /// tolerance of change since its last update *and* that update
    /// already moved its outgoing messages by at most the tolerance —
    /// converged regions stop paying per-iteration cost. Skipping is a
    /// pure function of message values, so it is deterministic.
    bool ResidualScheduling = true;
    /// Every RefreshInterval-th iteration recomputes every factor
    /// regardless of residual, so sub-threshold drift cannot accumulate
    /// unseen. 0 disables the periodic refresh.
    unsigned RefreshInterval = 8;
  };

  SumProductSolver() = default;
  explicit SumProductSolver(Options Opts) : Opts(Opts) {}

  /// Computes (approximate) marginals. Exact on trees; approximate on
  /// loopy graphs, which is all the paper requires (Section 3.4).
  ///
  /// When \p GraphLikelihood is non-null it receives, per variable, the
  /// normalized product of the incoming factor-to-variable messages with
  /// the variable's own prior excluded: the belief the *graph* holds
  /// about the variable. On trees this is the exact leave-the-prior-out
  /// cavity marginal; ANEK's summary extraction uses it as the evidence
  /// a method body or call site contributes.
  ///
  /// When \p Report is non-null it receives the convergence report; BP
  /// never fails outright, it only degrades (possibly unconverged
  /// beliefs), so the marginals are always usable as an approximation.
  Marginals solve(const FactorGraph &G, Marginals *GraphLikelihood = nullptr,
                  SolveReport *Report = nullptr) const;

  /// Iterations used by the last solve() call.
  mutable unsigned LastIterations = 0;

private:
  Options Opts;
};

/// Injection seam for BP solves. AnekInfer routes every sum-product
/// solve through InferOptions::Bp when set, instead of constructing a
/// SumProductSolver locally; the serving layer installs a delegate that
/// fuses concurrent requests' solves into one shared-arena kernel sweep
/// (serve/FusedSolver.h). The contract is strict byte-identity with
/// `SumProductSolver(O).solve(G, GraphLikelihood, Report)` — marginals,
/// likelihoods, and report fields must not depend on how solves were
/// batched.
class BpSolveDelegate {
public:
  virtual ~BpSolveDelegate() = default;
  virtual Marginals solve(const SumProductSolver::Options &O,
                          const FactorGraph &G, Marginals *GraphLikelihood,
                          SolveReport *Report) = 0;
};

/// Exact marginals by enumerating all 2^n assignments. Only usable for
/// small graphs; larger inputs return a structured error, never abort.
class ExactSolver {
public:
  static constexpr unsigned MaxVariables = 24;

  /// Exact marginals, or ResourceExhausted when the graph exceeds
  /// MaxVariables / DeadlineExceeded when \p Budget expires mid-sweep.
  Expected<Marginals> solve(const FactorGraph &G,
                            const Deadline &Budget = Deadline()) const;

  /// Interprets every factor as a hard constraint (weight > Threshold
  /// means "satisfied") and counts satisfying assignments; the engine of
  /// the deterministic "Anek Logical" configuration. Returns std::nullopt
  /// when the variable count exceeds \p VarLimit or \p Budget expires
  /// mid-enumeration — the deterministic analogue of the paper's Logical
  /// run that "ran out of memory before a fixed point was reached" (DNF).
  std::optional<uint64_t> countSatisfying(const FactorGraph &G,
                                          unsigned VarLimit,
                                          double Threshold = 0.5,
                                          const Deadline &Budget =
                                              Deadline()) const;

  /// Deterministic-solutions marginals: the fraction of *satisfying*
  /// assignments (every factor weight > Threshold) in which each variable
  /// is true. Returns std::nullopt when the graph exceeds \p VarLimit
  /// (DNF), \p Budget expires mid-enumeration, or no assignment satisfies
  /// all constraints (a buggy program makes the logical system
  /// unsatisfiable — exactly the failure mode the paper's probabilistic
  /// encoding exists to avoid).
  std::optional<Marginals> solveLogical(const FactorGraph &G,
                                        unsigned VarLimit,
                                        double Threshold = 0.5,
                                        const Deadline &Budget =
                                            Deadline()) const;
};

/// Gibbs sampling with a deterministic seed.
class GibbsSolver {
public:
  struct Options {
    unsigned BurnIn = 200;
    unsigned Samples = 2000;
    uint64_t Seed = 1;
    /// Wall-clock budget checked once per sweep (default unlimited). An
    /// expired budget returns marginals over the samples collected so
    /// far; the report says how many that was.
    Deadline Budget;
  };

  GibbsSolver() = default;
  explicit GibbsSolver(Options Opts) : Opts(Opts) {}

  Marginals solve(const FactorGraph &G, SolveReport *Report = nullptr) const;

private:
  Options Opts;
};

} // namespace anek

#endif // ANEK_FACTOR_SOLVERS_H
