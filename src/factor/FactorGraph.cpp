//===- FactorGraph.cpp - Boolean factor graphs -----------------------------===//

#include "factor/FactorGraph.h"

#include "support/FaultInject.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace anek;

double anek::clampProb(double P) {
  constexpr double Eps = 1e-9;
  if (P < Eps)
    return Eps;
  if (P > 1.0 - Eps)
    return 1.0 - Eps;
  return P;
}

VarId FactorGraph::addVariable(double Prior, std::string Name) {
  // Fault 'alloc-perturb': interleave an unconnected padding variable so
  // every subsequent VarId shifts. Marginals of real variables must be
  // unaffected — any result change under this fault is an allocation-order
  // dependence bug somewhere in the stack.
  if (faults::anyActive() && faults::active(FaultKind::AllocPerturb) &&
      (Vars.size() & 1) == 0) {
    Variable Pad;
    Pad.Prior = 0.5;
    Pad.Name = "__pad";
    Vars.push_back(std::move(Pad));
  }
  Variable V;
  V.Prior = clampProb(Prior);
  V.Name = std::move(Name);
  Vars.push_back(std::move(V));
  IndexValid = false;
  LayoutValid = false;
  return static_cast<VarId>(Vars.size() - 1);
}

void FactorGraph::addFactor(std::vector<VarId> Scope,
                            std::vector<double> Table) {
  assert(!Scope.empty() && "factor with empty scope");
  assert(Scope.size() <= MaxScope && "factor scope too large");
  assert(Table.size() == (size_t{1} << Scope.size()) &&
         "table size must be 2^|scope|");
#ifndef NDEBUG
  for (VarId V : Scope)
    assert(V < Vars.size() && "factor names unknown variable");
  for (double W : Table)
    assert(W >= 0.0 && "negative factor weight");
#endif
  Factors.push_back({std::move(Scope), std::move(Table)});
  IndexValid = false;
  LayoutValid = false;
}

void FactorGraph::addPredicateFactor(
    std::vector<VarId> Scope,
    const std::function<bool(const std::vector<bool> &)> &Predicate,
    double HighProb) {
  assert(Scope.size() <= MaxScope && "factor scope too large");
  const size_t N = Scope.size();
  std::vector<double> Table(size_t{1} << N);
  std::vector<bool> Assignment(N);
  double Hi = clampProb(HighProb);
  for (size_t Index = 0; Index != Table.size(); ++Index) {
    for (size_t Bit = 0; Bit != N; ++Bit)
      Assignment[Bit] = (Index >> Bit) & 1;
    Table[Index] = Predicate(Assignment) ? Hi : 1.0 - Hi;
  }
  addFactor(std::move(Scope), std::move(Table));
}

void FactorGraph::addEqualityFactor(VarId A, VarId B, double HighProb) {
  double Hi = clampProb(HighProb);
  double Lo = 1.0 - Hi;
  // Index bit 0 = A, bit 1 = B.
  addFactor({A, B}, {Hi, Lo, Lo, Hi});
}

void FactorGraph::setPrior(VarId Var, double Prior) {
  assert(Var < Vars.size() && "unknown variable");
  Vars[Var].Prior = clampProb(Prior);
}

const FactorGraph::EdgeLayout &FactorGraph::edgeLayout() const {
  if (LayoutValid)
    return Layout;
  const uint32_t NumVars = static_cast<uint32_t>(Vars.size());
  const uint32_t NumFactors = static_cast<uint32_t>(Factors.size());

  Layout = EdgeLayout();
  Layout.FactorOffset.resize(NumFactors + 1, 0);
  uint32_t NumEdges = 0;
  for (uint32_t F = 0; F != NumFactors; ++F) {
    Layout.FactorOffset[F] = NumEdges;
    NumEdges += static_cast<uint32_t>(Factors[F].Scope.size());
  }
  Layout.FactorOffset[NumFactors] = NumEdges;

  Layout.EdgeVar.resize(NumEdges);
  Layout.EdgeFactor.resize(NumEdges);
  Layout.EdgeSlotBit.resize(NumEdges);
  Layout.EdgeVarMask.resize(NumEdges);
  for (uint32_t F = 0; F != NumFactors; ++F) {
    const std::vector<VarId> &Scope = Factors[F].Scope;
    const uint32_t Base = Layout.FactorOffset[F];
    for (uint32_t K = 0; K != Scope.size(); ++K) {
      Layout.EdgeVar[Base + K] = Scope[K];
      Layout.EdgeFactor[Base + K] = F;
      Layout.EdgeSlotBit[Base + K] = uint32_t{1} << K;
      uint32_t Mask = 0;
      for (uint32_t K2 = 0; K2 != Scope.size(); ++K2)
        if (Scope[K2] == Scope[K])
          Mask |= uint32_t{1} << K2;
      Layout.EdgeVarMask[Base + K] = Mask;
    }
    Layout.MaxFactorDegree = std::max(
        Layout.MaxFactorDegree, static_cast<uint32_t>(Scope.size()));
  }

  // Variable-major CSR by counting sort: edge ids land in ascending
  // order within each variable because the fill walks edges in order.
  Layout.VarOffset.assign(NumVars + 1, 0);
  for (uint32_t E = 0; E != NumEdges; ++E)
    ++Layout.VarOffset[Layout.EdgeVar[E] + 1];
  for (uint32_t V = 0; V != NumVars; ++V) {
    Layout.MaxVarDegree = std::max(Layout.MaxVarDegree,
                                   Layout.VarOffset[V + 1]);
    Layout.VarOffset[V + 1] += Layout.VarOffset[V];
  }
  Layout.VarEdges.resize(NumEdges);
  std::vector<uint32_t> Cursor(Layout.VarOffset.begin(),
                               Layout.VarOffset.end() - 1);
  for (uint32_t E = 0; E != NumEdges; ++E)
    Layout.VarEdges[Cursor[Layout.EdgeVar[E]]++] = E;

  // Flattened tables. The total stays below 2^31 entries so 32-bit
  // *signed* gather indices (the AVX2 i32 gather form) are safe.
  size_t TableTotal = 0;
  Layout.TableOffset.resize(NumFactors);
  for (uint32_t F = 0; F != NumFactors; ++F) {
    Layout.TableOffset[F] = static_cast<uint32_t>(TableTotal);
    TableTotal += Factors[F].Table.size();
  }
  assert(TableTotal < (size_t{1} << 31) &&
         "flattened factor tables exceed 32-bit gather indexing");
  Layout.TableFlat.resize(TableTotal);
  for (uint32_t F = 0; F != NumFactors; ++F)
    std::copy(Factors[F].Table.begin(), Factors[F].Table.end(),
              Layout.TableFlat.begin() + Layout.TableOffset[F]);

  // Variable-major companion arrays for the Gibbs kernel.
  Layout.VmFactor.resize(NumEdges);
  Layout.VmMask.resize(NumEdges);
  Layout.VmSlotBit.resize(NumEdges);
  Layout.VmTableBase.resize(NumEdges);
  for (uint32_t I = 0; I != NumEdges; ++I) {
    const uint32_t E = Layout.VarEdges[I];
    const uint32_t F = Layout.EdgeFactor[E];
    Layout.VmFactor[I] = F;
    Layout.VmMask[I] = Layout.EdgeVarMask[E];
    Layout.VmSlotBit[I] = Layout.EdgeSlotBit[E];
    Layout.VmTableBase[I] = Layout.TableOffset[F];
  }

  // Gibbs conditional-pair tables: one per (factor, slot), each the
  // factor's table rearranged as adjacent {bit-clear, bit-set} pairs
  // over the table index with the slot bit compacted out (see
  // FactorGraph.h). Sized first so the whole expansion can be skipped
  // (arrays left empty => kernels fall back to TableFlat gathers) when
  // a factor repeats a scope variable (multi-bit mask, not compactable)
  // or a graph with huge tables would blow the budget; the decision
  // depends only on the graph, so every kernel backend sees the same
  // layout.
  constexpr size_t PairBudget = size_t{1} << 21; // floats (8 MiB).
  size_t PairTotal = 0;
  bool PairEligible = true;
  for (uint32_t E = 0; E != NumEdges; ++E)
    PairEligible &= Layout.EdgeVarMask[E] == Layout.EdgeSlotBit[E];
  for (uint32_t F = 0; F != NumFactors; ++F)
    PairTotal += (Layout.FactorOffset[F + 1] - Layout.FactorOffset[F]) *
                 Factors[F].Table.size();
  if (PairEligible && PairTotal <= PairBudget) {
    Layout.PairFlat.resize(PairTotal);
    std::vector<uint32_t> EdgePairBase(NumEdges);
    // Factors are laid out in descending table-size order (sizes are
    // powers of two, so each base lands aligned to its own table
    // size). That makes a flip's XOR into a composite current pair
    // index (base + 2*compacted-index, see the flip-adjacency CSR)
    // exact: the toggled bits all sit below the base's alignment, so
    // they never borrow from or carry into the base bits.
    std::vector<uint32_t> FactorOrder(NumFactors);
    for (uint32_t F = 0; F != NumFactors; ++F)
      FactorOrder[F] = F;
    std::stable_sort(FactorOrder.begin(), FactorOrder.end(),
                     [&](uint32_t A, uint32_t B) {
                       return Factors[A].Table.size() >
                              Factors[B].Table.size();
                     });
    size_t Next = 0;
    for (uint32_t OF = 0; OF != NumFactors; ++OF) {
      const uint32_t F = FactorOrder[OF];
      const uint32_t Begin = Layout.FactorOffset[F];
      const uint32_t End = Layout.FactorOffset[F + 1];
      const std::vector<double> &Table = Factors[F].Table;
      for (uint32_t E = Begin; E != End; ++E) {
        const uint32_t Low = Layout.EdgeSlotBit[E] - 1;
        EdgePairBase[E] = static_cast<uint32_t>(Next);
        // Comp walks the compacted index space; Idx re-expands it
        // around the slot bit (low bits in place, high bits shifted
        // up one).
        for (size_t Comp = 0; Comp != Table.size() / 2; ++Comp) {
          const size_t Idx = (Comp & Low) | ((Comp & ~size_t{Low}) << 1);
          Layout.PairFlat[Next + 2 * Comp] =
              static_cast<float>(Table[Idx]);
          Layout.PairFlat[Next + 2 * Comp + 1] =
              static_cast<float>(Table[Idx | Layout.EdgeSlotBit[E]]);
        }
        Next += Table.size();
      }
    }
    Layout.VmPairBase.resize(NumEdges);
    Layout.VmPairLow.resize(NumEdges);
    for (uint32_t I = 0; I != NumEdges; ++I) {
      const uint32_t E = Layout.VarEdges[I];
      Layout.VmPairBase[I] = EdgePairBase[E];
      Layout.VmPairLow[I] = Layout.EdgeSlotBit[E] - 1;
    }

    // Flip-adjacency CSR (see FactorGraph.h): for every ordered pair
    // of distinct edges (Ek, Ej) of a factor, flipping Ek's variable
    // XORs a constant into Ej's position's compacted pair index. The
    // delta in pair-index space: Ej's compaction drops its own slot
    // bit Bj, so a toggled bit Bk lands at Bk >> 1 when above Bj (in
    // place otherwise), and the {w0, w1} pair stride doubles it.
    std::vector<uint32_t> PosOfEdge(NumEdges);
    for (uint32_t I = 0; I != NumEdges; ++I)
      PosOfEdge[Layout.VarEdges[I]] = I;
    Layout.FlipOffset.assign(NumVars + 1, 0);
    for (uint32_t F = 0; F != NumFactors; ++F) {
      const uint32_t Deg = Layout.FactorOffset[F + 1] - Layout.FactorOffset[F];
      for (uint32_t E = Layout.FactorOffset[F];
           E != Layout.FactorOffset[F + 1]; ++E)
        Layout.FlipOffset[Layout.EdgeVar[E] + 1] += Deg - 1;
    }
    for (uint32_t V = 0; V != NumVars; ++V)
      Layout.FlipOffset[V + 1] += Layout.FlipOffset[V];
    Layout.FlipPos.resize(Layout.FlipOffset[NumVars]);
    Layout.FlipDelta.resize(Layout.FlipOffset[NumVars]);
    std::vector<uint32_t> FlipCursor(Layout.FlipOffset.begin(),
                                     Layout.FlipOffset.end() - 1);
    for (uint32_t F = 0; F != NumFactors; ++F) {
      const uint32_t Begin = Layout.FactorOffset[F];
      const uint32_t End = Layout.FactorOffset[F + 1];
      for (uint32_t Ek = Begin; Ek != End; ++Ek) {
        const uint32_t Bk = Layout.EdgeSlotBit[Ek];
        uint32_t &Cursor = FlipCursor[Layout.EdgeVar[Ek]];
        for (uint32_t Ej = Begin; Ej != End; ++Ej) {
          if (Ej == Ek)
            continue;
          Layout.FlipPos[Cursor] = PosOfEdge[Ej];
          Layout.FlipDelta[Cursor] =
              Bk > Layout.EdgeSlotBit[Ej] ? Bk : Bk << 1;
          ++Cursor;
        }
      }
    }
  }

  LayoutValid = true;
  return Layout;
}

const std::vector<std::vector<uint32_t>> &FactorGraph::varToFactors() const {
  if (!IndexValid) {
    const EdgeLayout &L = edgeLayout();
    VarFactorIndex.assign(Vars.size(), {});
    for (uint32_t V = 0; V != Vars.size(); ++V) {
      VarFactorIndex[V].reserve(L.varDegree(static_cast<VarId>(V)));
      for (uint32_t I = L.VarOffset[V]; I != L.VarOffset[V + 1]; ++I)
        VarFactorIndex[V].push_back(L.EdgeFactor[L.VarEdges[I]]);
    }
    IndexValid = true;
  }
  return VarFactorIndex;
}

double FactorGraph::jointWeight(const std::vector<bool> &Assignment) const {
  assert(Assignment.size() == Vars.size() && "assignment size mismatch");
  double Weight = 1.0;
  for (size_t V = 0; V != Vars.size(); ++V)
    Weight *= Assignment[V] ? Vars[V].Prior : 1.0 - Vars[V].Prior;
  for (const Factor &F : Factors) {
    size_t Index = 0;
    for (size_t Bit = 0; Bit != F.Scope.size(); ++Bit)
      if (Assignment[F.Scope[Bit]])
        Index |= size_t{1} << Bit;
    Weight *= F.Table[Index];
  }
  return Weight;
}
