//===- KernelsAvx2.cpp - AVX2 solver kernel backend ------------------------===//
//
// Compiled with -mavx2 (and -ffp-contract=off; note -mfma is NOT passed,
// so no backend can contract a multiply-add the scalar one does not).
// This TU must stay COMDAT-clean: it includes only the kernel headers
// and intrinsics, and everything it defines besides kernelsAvx2() has
// internal linkage, so no AVX2-encoded code can be picked by the linker
// to satisfy a baseline-TU reference. Dispatch (Kernels.cpp) guarantees
// kernelsAvx2()'s table is only *called through* on hosts whose CPU
// reports AVX2.
//
//===----------------------------------------------------------------------===//

#include "factor/Kernels.h"

#if ANEK_KERNELS_AVX2

#include "factor/KernelsImpl.h"

#include <immintrin.h>

namespace {

struct Avx2Traits {
  typedef __m256d Vec;
  static Vec broadcast(double X) { return _mm256_set1_pd(X); }
  static Vec zero() { return _mm256_setzero_pd(); }
  static Vec load(const double *P) { return _mm256_loadu_pd(P); }
  static void store(double *P, Vec V) { _mm256_storeu_pd(P, V); }
  static Vec setr(double A, double B, double C, double D) {
    return _mm256_setr_pd(A, B, C, D);
  }
  static Vec gather(const double *Base, const uint32_t *Idx) {
    // Indices are 32-bit and (per EdgeLayout's size guard) < 2^31, so
    // the signed i32 gather form is safe.
    const __m128i I =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(
            const_cast<uint32_t *>(Idx)));
    return _mm256_i32gather_pd(Base, I, 8);
  }
  static Vec add(Vec A, Vec B) { return _mm256_add_pd(A, B); }
  static Vec sub(Vec A, Vec B) { return _mm256_sub_pd(A, B); }
  static Vec mul(Vec A, Vec B) { return _mm256_mul_pd(A, B); }
  static Vec div(Vec A, Vec B) { return _mm256_div_pd(A, B); }
  static Vec min(Vec A, Vec B) { return _mm256_min_pd(A, B); }
  static Vec max(Vec A, Vec B) { return _mm256_max_pd(A, B); }
  static Vec abs(Vec A) {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), A);
  }
  static Vec selectGt0(Vec S, Vec A, Vec B) {
    const Vec Mask = _mm256_cmp_pd(S, _mm256_setzero_pd(), _CMP_GT_OQ);
    return _mm256_blendv_pd(B, A, Mask);
  }
  template <int M> static Vec blend(Vec A, Vec B) {
    return _mm256_blend_pd(A, B, M);
  }
  static Vec lo128(Vec A, Vec B) {
    return _mm256_permute2f128_pd(A, B, 0x20);
  }
  static Vec hi128(Vec A, Vec B) {
    return _mm256_permute2f128_pd(A, B, 0x31);
  }
  template <int I0, int I1> static Vec shuffle(Vec A, Vec B) {
    return _mm256_shuffle_pd(A, B, I0 | (I1 << 1) | (I0 << 2) | (I1 << 3));
  }
  // Pair loads: two adjacent floats per index, all four widened to
  // double with one vcvtps2pd (exact, so identical to the scalar
  // backend's per-element casts).
  static Vec pair2(const float *Base, uint32_t I, uint32_t J) {
    const __m128 F = _mm_loadh_pi(
        _mm_loadl_pi(_mm_setzero_ps(),
                     reinterpret_cast<const __m64 *>(Base + I)),
        reinterpret_cast<const __m64 *>(Base + J));
    return _mm256_cvtps_pd(F);
  }
  static Vec pairLo(const float *Base, uint32_t I) {
    return _mm256_cvtps_pd(_mm_set_ps(1.0f, 1.0f, Base[I + 1], Base[I]));
  }
  static Vec pairHi(const float *Base, uint32_t I) {
    return _mm256_cvtps_pd(_mm_set_ps(Base[I + 1], Base[I], 1.0f, 1.0f));
  }
};

} // namespace

namespace anek {
namespace kern {

const SolverKernels *kernelsAvx2() {
  static const SolverKernels Table = {
      Backend::Avx2,
      "avx2",
      &impl::bpVarMessagesT<Avx2Traits>,
      &impl::bpVarScatterT<Avx2Traits>,
      &impl::bpFactorSweepT<Avx2Traits>,
      &impl::gibbsSweepT<Avx2Traits>,
  };
  return &Table;
}

} // namespace kern
} // namespace anek

#else // !ANEK_KERNELS_AVX2

namespace anek {
namespace kern {

const SolverKernels *kernelsAvx2() { return nullptr; }

} // namespace kern
} // namespace anek

#endif
