//===- BpDriver.cpp - Multi-span BP engine over one kernel arena ------------===//

#include "factor/BpDriver.h"

#include "support/Format.h"
#include "support/Trace.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace anek;
using namespace anek::bp;

BpEngine::BpEngine(const kern::BpView &V) : View(V) {
  const uint32_t NumEdges = V.NumEdges;
  const uint32_t NumFactors = V.NumFactors;
  const double Inf = std::numeric_limits<double>::infinity();
  VarToFactor.assign(NumEdges, 0.5);
  FactorToVar.assign(NumEdges, 0.5);
  ClampT.resize(NumEdges);
  ClampF.resize(NumEdges);
  SufT.resize(NumEdges);
  SufF.resize(NumEdges);
  // NewMsg mirrors VarToFactor per position (pass C reads it as the
  // previous outgoing message), so it must share the 0.5 seed.
  NewMsg.assign(NumEdges, 0.5);
  Change.resize(NumEdges);
  OutT.resize(NumEdges);
  OutF.resize(NumEdges);
  EChange.resize(NumEdges);
  // The +inf seeds force every factor to run on the first iteration.
  PendingIn.assign(NumFactors, Inf);
  LastOut.assign(NumFactors, Inf);
  ActiveFactors.resize(NumFactors);
  ActiveEdges.resize(NumEdges);
  uint32_t MaxDeg = 0;
  for (uint32_t Var = 0; Var != V.NumVars; ++Var) {
    const uint32_t Deg = V.VarOffset[Var + 1] - V.VarOffset[Var];
    MaxDeg = std::max(MaxDeg, Deg);
    if (Deg >= kern::LogDomainMinDegree)
      HighDegVars.push_back(Var);
  }
  if (!HighDegVars.empty()) {
    LogSufT.resize(MaxDeg);
    LogSufF.resize(MaxDeg);
  }
  State.VarToFactor = VarToFactor.data();
  State.FactorToVar = FactorToVar.data();
  State.ClampT = ClampT.data();
  State.ClampF = ClampF.data();
  State.SufT = SufT.data();
  State.SufF = SufF.data();
  State.NewMsg = NewMsg.data();
  State.Change = Change.data();
  State.OutT = OutT.data();
  State.OutF = OutF.data();
  State.EChange = EChange.data();
  State.PendingIn = PendingIn.data();
  State.LastOut = LastOut.data();
  State.ActiveFactors = ActiveFactors.data();
  State.ActiveEdges = ActiveEdges.data();
}

void BpEngine::logDomainFixup(const kern::BpConsts &C, uint32_t VB,
                              uint32_t VE) {
  if (HighDegVars.empty())
    return;
  auto It = std::lower_bound(HighDegVars.begin(), HighDegVars.end(), VB);
  for (; It != HighDegVars.end() && *It < VE; ++It) {
    const uint32_t Var = *It;
    const uint32_t B = View.VarOffset[Var];
    const uint32_t E = View.VarOffset[Var + 1];
    // Exclusive suffix/prefix *sums of logs* of the already-clamped
    // incoming messages (clamped, so every log is finite).
    double RunT = 0.0, RunF = 0.0;
    for (uint32_t P = E; P-- != B;) {
      LogSufT[P - B] = RunT;
      LogSufF[P - B] = RunF;
      RunT += std::log(ClampT[P]);
      RunF += std::log(ClampF[P]);
    }
    double PreLogT = std::log(View.Priors[Var]);
    double PreLogF = std::log(1.0 - View.Priors[Var]);
    for (uint32_t P = B; P != E; ++P) {
      const double LogT = PreLogT + LogSufT[P - B];
      const double LogF = PreLogF + LogSufF[P - B];
      // True/(True+False) = 1/(1+exp(logF-logT)); exp saturating to
      // +inf or 0 degrades gracefully to 0 or 1.
      const double Undamped = 1.0 / (1.0 + std::exp(LogF - LogT));
      const double Old = VarToFactor[View.VarEdges[P]];
      const double Damped = C.OneMinusDamping * Undamped + C.Damping * Old;
      NewMsg[P] = Damped;
      Change[P] = std::fabs(Damped - Old);
      PreLogT += std::log(ClampT[P]);
      PreLogF += std::log(ClampF[P]);
    }
  }
}

void BpEngine::run(const SumProductSolver::Options &Opts, Span *Spans,
                   size_t Count, bool EmitResiduals) {
  const kern::SolverKernels &K = kern::solverKernels();
  const kern::BpConsts C{Opts.Damping, 1.0 - Opts.Damping, Opts.Tolerance,
                         0.5 * Opts.Tolerance};
  for (unsigned Iter = 0;; ++Iter) {
    // Freeze spans exactly where the standalone loop would exit; a
    // frozen span's messages are final.
    bool AnyActive = false;
    for (size_t I = 0; I != Count; ++I) {
      Span &S = Spans[I];
      if (S.Active &&
          (Iter == Opts.MaxIterations || !(S.Delta > Opts.Tolerance))) {
        S.Active = false;
        S.Iterations = Iter;
      }
      AnyActive |= S.Active;
    }
    if (!AnyActive)
      break;
    if (Opts.Budget.expired(Iter)) {
      for (size_t I = 0; I != Count; ++I) {
        Span &S = Spans[I];
        if (S.Active) {
          S.Active = false;
          S.Iterations = Iter;
          S.DeadlineExpired = true;
        }
      }
      break;
    }
    if (EmitResiduals && Iter != 0)
      telemetry::counterSample("bp.residual", telemetry::TraceLevel::Solver,
                               "solver", "residual", Spans[0].Delta);
    const bool Refresh =
        Opts.RefreshInterval != 0 &&
        (Iter % Opts.RefreshInterval) == Opts.RefreshInterval - 1;
    // Steady state (no residual scheduling, no log-domain fixup
    // pending): pass D is fused into the var-message kernel, which
    // commits and returns the max change itself. Otherwise the split
    // form runs so the fixup can overwrite NewMsg/Change in between.
    const bool Commit = !Opts.ResidualScheduling && HighDegVars.empty();
    for (size_t I = 0; I != Count; ++I) {
      Span &S = Spans[I];
      if (!S.Active)
        continue;
      double D1 =
          K.BpVarMessages(View, State, C, S.VarBegin, S.VarEnd, Commit);
      if (!Commit) {
        logDomainFixup(C, S.VarBegin, S.VarEnd);
        D1 = K.BpVarScatter(View, State, C, S.VarBegin, S.VarEnd,
                            Opts.ResidualScheduling);
      }
      S.Updates += View.VarOffset[S.VarEnd] - View.VarOffset[S.VarBegin];
      const double D2 =
          K.BpFactorSweep(View, State, C, S.FactorBegin, S.FactorEnd,
                          Opts.ResidualScheduling, Refresh, &S.Updates,
                          &S.Skipped);
      S.Delta = D1 > D2 ? D1 : D2;
    }
  }
}

void BpEngine::beliefs(const Span &S, Marginals &Out,
                       Marginals *GraphLikelihood) const {
  const uint32_t NumVars = S.VarEnd - S.VarBegin;
  Out.assign(NumVars, 0.5);
  if (GraphLikelihood)
    GraphLikelihood->assign(NumVars, 0.5);
  for (uint32_t Var = S.VarBegin; Var != S.VarEnd; ++Var) {
    double True = View.Priors[Var];
    double False = 1.0 - True;
    double GraphTrue = 1.0, GraphFalse = 1.0;
    for (uint32_t I = View.VarOffset[Var]; I != View.VarOffset[Var + 1];
         ++I) {
      const double In = FactorToVar[View.VarEdges[I]];
      const double MsgTrue = clampProb(In);
      const double MsgFalse = clampProb(1.0 - In);
      True *= MsgTrue;
      False *= MsgFalse;
      GraphTrue *= MsgTrue;
      GraphFalse *= MsgFalse;
      // Renormalize as we go so long products stay in range.
      const double Scale = GraphTrue + GraphFalse;
      GraphTrue /= Scale;
      GraphFalse /= Scale;
    }
    const double Sum = True + False;
    Out[Var - S.VarBegin] = Sum > 0 ? True / Sum : 0.5;
    if (GraphLikelihood)
      (*GraphLikelihood)[Var - S.VarBegin] = GraphTrue;
  }
}

bool anek::bp::spanConverged(const Span &S, bool ForcedNonConvergence,
                             double Tolerance) {
  return !ForcedNonConvergence && !S.DeadlineExpired && S.Delta <= Tolerance;
}

void anek::bp::fillReport(SolveReport &Report, const Span &S,
                          bool ForcedNonConvergence, double Tolerance) {
  const bool Converged = spanConverged(S, ForcedNonConvergence, Tolerance);
  Report.Iterations = S.Iterations;
  Report.Residual = S.Delta;
  Report.DeadlineExpired = S.DeadlineExpired;
  Report.Converged = Converged;
  Report.Updates = S.Updates;
  Report.SkippedUpdates = S.Skipped;
  Report.Reason.clear();
  if (!Converged)
    Report.Reason = formatStr(
        "residual %.2g after %u iterations%s%s", S.Delta, S.Iterations,
        S.DeadlineExpired ? ", budget expired" : "",
        ForcedNonConvergence ? ", injected non-convergence" : "");
}
