//===- Kernels.h - SIMD solver kernels over the CSR edge layout --*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The KernelBackend seam: every hot solver loop (BP variable-message
/// passes, BP factor sweeps, Gibbs sweeps) runs through a table of
/// function pointers so the same driver code executes on an AVX2, NEON,
/// or scalar backend chosen at runtime.
///
/// Determinism contract: all backends are byte-identical. Vectorization
/// is across *independent outputs* (edges, variable-major positions,
/// factor-table entries), and every multi-element reduction uses the same
/// fixed 4-lane strided tree in every backend — lane j accumulates
/// elements j, j+4, j+8, ..., and the final combine is always
/// (L0 op L1) op (L2 op L3). Kernel translation units are compiled with
/// -ffp-contract=off so no backend fuses a multiply-add the others do
/// not.
///
/// COMDAT safety: the per-ISA translation units (KernelsAvx2.cpp,
/// KernelsNeon.cpp) are compiled with arch flags above the binary's
/// baseline. They must not *call* any inline function defined in a
/// shared header (the linker could pick the AVX2-compiled COMDAT copy to
/// satisfy every TU and crash pre-AVX2 hosts). This header therefore
/// exposes plain structs and function pointers only; the few shared
/// helpers the kernels need (SplitMix64, clamping) are internal-linkage
/// `static` functions so each TU keeps its own copy.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_FACTOR_KERNELS_H
#define ANEK_FACTOR_KERNELS_H

#include <cstdint>
#include <string>

#include "support/Status.h"

namespace anek {
namespace kern {

/// Clamp floor for BP messages; must match anek::clampProb's epsilon
/// (FactorGraph.cpp).
constexpr double MessageEps = 1e-9;

/// Variables with at least this many incident edges get their phase-1
/// messages recomputed in the log domain by the driver (a product of 64+
/// clamped probabilities can underflow to 0 and erase the signal). The
/// fixup runs in the baseline-compiled driver TU, once, for every
/// backend — so it cannot break backend byte-identity.
constexpr uint32_t LogDomainMinDegree = 64;

/// SplitMix64 — byte-for-byte the arithmetic of support/Rng.h::Rng,
/// duplicated as internal-linkage functions for COMDAT safety (see file
/// header). Integer-only, so every TU computes identical streams.
static inline uint64_t rngNext(uint64_t &State) {
  State += 0x9E3779B97F4A7C15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

/// Uniform draw in [0, 1) — same arithmetic as Rng::uniform.
static inline double rngUniform(uint64_t &State) {
  return static_cast<double>(rngNext(State) >> 11) * 0x1.0p-53;
}

enum class Backend : int {
  Scalar = 0,
  Avx2 = 1,
  Neon = 2,
};

/// Read-only view of one factor-graph arena in CSR form. For a
/// standalone solve this aliases FactorGraph::EdgeLayout directly; for a
/// fused solve it points at the rebased concatenation of several
/// layouts (factor/Fused.cpp).
struct BpView {
  uint32_t NumVars = 0;
  uint32_t NumFactors = 0;
  uint32_t NumEdges = 0;
  const uint32_t *FactorOffset = nullptr; ///< NumFactors+1; edge ranges.
  const uint32_t *VarOffset = nullptr;    ///< NumVars+1; position ranges.
  const uint32_t *VarEdges = nullptr;     ///< position -> edge id.
  const uint32_t *VmFactor = nullptr;     ///< position -> owning factor.
  const uint32_t *TableOffset = nullptr;  ///< factor -> base in TableFlat.
  const double *TableFlat = nullptr;      ///< concatenated factor tables.
  const double *Priors = nullptr;         ///< per-variable prior.
};

/// Mutable per-solve state. All arrays are allocated by the driver
/// (factor/BpDriver.cpp); "position" arrays are indexed like VarEdges.
struct BpState {
  double *VarToFactor = nullptr; ///< per edge.
  double *FactorToVar = nullptr; ///< per edge.
  // Phase-1 scratch, per position. SufT/SufF hold the exclusive suffix
  // products after pass B's backward walk, then the full
  // prefix*suffix products (the unnormalized outgoing polarity
  // weights) after its forward walk folds the running prefix in.
  double *ClampT = nullptr;
  double *ClampF = nullptr;
  double *SufT = nullptr;
  double *SufF = nullptr;
  double *NewMsg = nullptr;
  double *Change = nullptr;
  // Phase-2 scratch, per edge.
  double *OutT = nullptr;
  double *OutF = nullptr;
  double *EChange = nullptr;
  // Residual-scheduling state, per factor.
  double *PendingIn = nullptr;
  double *LastOut = nullptr;
  // Phase-2 skip compaction scratch (capacity NumFactors / NumEdges).
  uint32_t *ActiveFactors = nullptr;
  uint32_t *ActiveEdges = nullptr;
};

struct BpConsts {
  double Damping = 0.0;
  double OneMinusDamping = 1.0;
  double Tolerance = 0.0;
  double SkipTolerance = 0.0;
};

/// Variable-major view for Gibbs sweeps (arrays from EdgeLayout's Vm*
/// companions, rebased for fused arenas).
struct GibbsView {
  uint32_t NumVars = 0;
  const uint32_t *VarOffset = nullptr;   ///< NumVars+1; position ranges.
  const uint32_t *VmFactor = nullptr;    ///< position -> owning factor.
  const uint32_t *VmMask = nullptr;      ///< position -> repeated-scope mask.
  const uint32_t *VmSlotBit = nullptr;   ///< position -> slot bit.
  const uint32_t *VmTableBase = nullptr; ///< position -> TableFlat base.
  const double *TableFlat = nullptr;
  const double *Priors = nullptr;
  /// Conditional-pair tables (EdgeLayout::PairFlat / VmPairBase /
  /// VmPairLow), or nullptr when the layout skipped them (repeated
  /// scope variables or size cap). Presence is a property of the
  /// graph, so every backend takes the same sweep path; the float
  /// entries widen to double losslessly, so pair loads cannot break
  /// backend byte-identity.
  const float *PairFlat = nullptr;
  /// Flip-adjacency CSR (EdgeLayout::FlipOffset / FlipPos / FlipDelta):
  /// flipping variable X XORs FlipDelta[K] into PosIdx[FlipPos[K]] for
  /// K in [FlipOffset[X], FlipOffset[X+1]). With it the pair-path
  /// weight loop is one PosIdx load and one pair load per occurrence.
  const uint32_t *FlipOffset = nullptr;
  const uint32_t *FlipPos = nullptr;
  const uint32_t *FlipDelta = nullptr;
};

struct GibbsState {
  /// Per factor: current assignment bits. Maintained only on the
  /// TableFlat fallback path; the pair path tracks state in PosIdx.
  uint32_t *CurIndex = nullptr;
  uint8_t *Assign = nullptr;    ///< per variable: current boolean state.
  uint64_t *RngState = nullptr; ///< SplitMix64 state (rngNext arithmetic).
  /// Per position: current index into PairFlat (the owning factor's
  /// index with the slot bit compacted out, doubled by the pair
  /// stride, plus the position's base). The driver initializes it from
  /// CurIndex; sweeps maintain it through the flip-adjacency CSR.
  /// Null when the layout has no pair tables.
  uint32_t *PosIdx = nullptr;
};

/// One backend's kernel entry points. Plain function pointers: the
/// dispatch TU resolves a backend once and drivers call through it.
struct SolverKernels {
  Backend Kind;
  const char *Name;

  /// BP phase-1 passes A-C for variables [VB, VE): gather+clamp incoming
  /// factor->var messages, per-variable exclusive prefix/suffix products,
  /// then the damped message update into NewMsg (per position).
  ///
  /// With Commit false it does NOT write VarToFactor or compute a max —
  /// it fills NewMsg/Change and returns 0.0, and the driver may
  /// overwrite NewMsg/Change for high-degree variables (log domain)
  /// before following up with BpVarScatter. With Commit true (the
  /// steady state: no residual scheduling, no log-domain fixup pending)
  /// pass C itself scatters NewMsg into VarToFactor and returns the max
  /// change — pass D is fused away and Change is not even written,
  /// saving three full position streams per iteration.
  double (*BpVarMessages)(const BpView &V, const BpState &S, const BpConsts &C,
                          uint32_t VB, uint32_t VE, bool Commit);

  /// BP phase-1 pass D: scatter NewMsg into VarToFactor, accumulate
  /// Change into PendingIn (when Scheduling) in ascending position order,
  /// return the max Change over [VarOffset[VB], VarOffset[VE]). Only
  /// called when BpVarMessages ran with Commit false.
  double (*BpVarScatter)(const BpView &V, const BpState &S, const BpConsts &C,
                         uint32_t VB, uint32_t VE, bool Scheduling);

  /// BP phase 2 for factors [FB, FE): skip-compaction (residual
  /// scheduling), per-factor marginalization into OutT/OutF, damped
  /// factor->var message commit, PendingIn/LastOut bookkeeping. Returns
  /// the max message change; adds updated-edge / skipped-factor counts.
  double (*BpFactorSweep)(const BpView &V, const BpState &S, const BpConsts &C,
                          uint32_t FB, uint32_t FE, bool Scheduling,
                          bool Refresh, uint64_t *Updates, uint64_t *Skipped);

  /// One Gibbs pass over variables [VB, VE): per variable, the 4-lane
  /// conditional-weight product over incident factor tables, one RNG
  /// draw, and the XOR flip scatter into CurIndex. The driver calls this
  /// in chunks so deadline checks keep their PR 3 cadence.
  void (*GibbsSweep)(const GibbsView &V, const GibbsState &S, uint32_t VB,
                     uint32_t VE);
};

/// Backend constructors. A getter returns nullptr when its backend is
/// compiled out (non-x86 build, compiler without -mavx2) — callers and
/// dispatch must treat that as "unavailable", never as an error.
const SolverKernels *kernelsScalar();
const SolverKernels *kernelsAvx2();
const SolverKernels *kernelsNeon();

/// The active backend. First use resolves it: ANEK_FORCE_SCALAR=1 in the
/// environment forces scalar; otherwise the best backend the host CPU
/// supports (cpu::hasAvx2 / cpu::hasNeon), else scalar.
const SolverKernels &solverKernels();

/// Select a backend by name: "scalar", "avx2", "neon", or "auto"
/// (re-run CPU detection). Fails without changing the active backend
/// when the name is unknown or the backend is unavailable on this host.
Status setKernelBackend(const std::string &Name);

/// Kind of the currently active backend.
Backend activeKernelBackend();

/// Human-readable name for a backend kind.
const char *kernelBackendName(Backend Kind);

} // namespace kern
} // namespace anek

#endif // ANEK_FACTOR_KERNELS_H
