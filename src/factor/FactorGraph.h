//===- FactorGraph.h - Boolean factor graphs ---------------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The probabilistic substrate replacing INFER.NET: a factor graph over
/// Bernoulli variables. The joint distribution is the pointwise product of
/// per-variable priors and factor tables (paper Eq. 5); constraint
/// generation turns every logical/heuristic rule into a soft predicate
/// factor (paper Eq. 6): h where the predicate holds, 1-h elsewhere.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_FACTOR_FACTORGRAPH_H
#define ANEK_FACTOR_FACTORGRAPH_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace anek {

/// Index of a Bernoulli variable within one FactorGraph.
using VarId = uint32_t;

/// A factor graph over Boolean variables.
class FactorGraph {
public:
  /// One Bernoulli variable with its prior P(X = true).
  struct Variable {
    double Prior = 0.5;
    std::string Name;
  };

  /// One factor: a non-negative table over the joint assignments of its
  /// scope. Table index encoding: bit i set <=> Scope[i] is true.
  struct Factor {
    std::vector<VarId> Scope;
    std::vector<double> Table;
  };

  /// Largest supported factor scope (table size stays cache-friendly and
  /// message updates tractable).
  static constexpr unsigned MaxScope = 16;

  /// Adds a variable with prior \p Prior; \p Name aids debugging output.
  VarId addVariable(double Prior, std::string Name = "");

  /// Adds a tabular factor. Table must have size 2^|Scope|.
  void addFactor(std::vector<VarId> Scope, std::vector<double> Table);

  /// Adds a soft predicate factor (paper Eq. 6): weight \p HighProb when
  /// \p Predicate holds of the assignment, 1 - HighProb otherwise.
  /// The assignment passed to the predicate is indexed like Scope.
  void addPredicateFactor(
      std::vector<VarId> Scope,
      const std::function<bool(const std::vector<bool> &)> &Predicate,
      double HighProb);

  /// Adds a soft equality factor between two variables.
  void addEqualityFactor(VarId A, VarId B, double HighProb);

  /// Sharpens/overrides the prior of a variable (used by summary
  /// application, which re-seeds interface nodes each iteration).
  void setPrior(VarId Var, double Prior);

  unsigned variableCount() const {
    return static_cast<unsigned>(Vars.size());
  }
  unsigned factorCount() const {
    return static_cast<unsigned>(Factors.size());
  }
  const Variable &variable(VarId Id) const { return Vars[Id]; }
  const Factor &factor(uint32_t Id) const { return Factors[Id]; }

  /// Flat CSR edge layout shared by every message-passing solver. One
  /// *edge* exists per (factor, scope slot) pair; its id is
  /// FactorOffset[F] + K, so each factor's slots are contiguous and a
  /// message array indexed by edge id needs no nested vectors. The
  /// variable-major view (VarOffset/VarEdges) lists each variable's
  /// edges sorted by edge id, i.e. by (factor, slot) — a fixed,
  /// allocation-independent order the determinism contract relies on.
  struct EdgeLayout {
    /// Factor-major: edges of factor F are [FactorOffset[F],
    /// FactorOffset[F+1]).
    std::vector<uint32_t> FactorOffset;
    /// Variable at each edge (the factor's scope, flattened).
    std::vector<VarId> EdgeVar;
    /// Owning factor of each edge.
    std::vector<uint32_t> EdgeFactor;
    /// Variable-major: edge ids adjacent to V are VarEdges[VarOffset[V]
    /// .. VarOffset[V+1]), ascending.
    std::vector<uint32_t> VarOffset;
    std::vector<uint32_t> VarEdges;
    /// Table-index bit of the edge's own slot (1 << slot).
    std::vector<uint32_t> EdgeSlotBit;
    /// OR of the slot bits of *every* occurrence of the edge's variable
    /// in the owning factor's scope. Equal to EdgeSlotBit except for the
    /// degenerate factors that repeat a variable; incremental Gibbs uses
    /// it to set all of a variable's bits in one mask operation.
    std::vector<uint32_t> EdgeVarMask;
    uint32_t MaxVarDegree = 0;
    uint32_t MaxFactorDegree = 0;

    uint32_t edgeCount() const {
      return static_cast<uint32_t>(EdgeVar.size());
    }
    uint32_t varDegree(VarId V) const {
      return VarOffset[V + 1] - VarOffset[V];
    }
    uint32_t factorDegree(uint32_t F) const {
      return FactorOffset[F + 1] - FactorOffset[F];
    }
  };

  /// The CSR layout, built on first use and cached; adding a variable or
  /// factor invalidates it (setPrior does not). Not thread-safe: solvers
  /// sharing one graph across threads must touch it once up front.
  const EdgeLayout &edgeLayout() const;

  /// Factors mentioning each variable, one entry per scope occurrence
  /// (built lazily from the edge layout and cached alongside it).
  const std::vector<std::vector<uint32_t>> &varToFactors() const;

  /// Unnormalized joint weight of a full assignment (priors included).
  double jointWeight(const std::vector<bool> &Assignment) const;

private:
  std::vector<Variable> Vars;
  std::vector<Factor> Factors;
  mutable EdgeLayout Layout;
  mutable bool LayoutValid = false;
  mutable std::vector<std::vector<uint32_t>> VarFactorIndex;
  mutable bool IndexValid = false;
};

/// Clamps a probability away from 0 and 1 so message products stay finite.
double clampProb(double P);

} // namespace anek

#endif // ANEK_FACTOR_FACTORGRAPH_H
