//===- FactorGraph.h - Boolean factor graphs ---------------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The probabilistic substrate replacing INFER.NET: a factor graph over
/// Bernoulli variables. The joint distribution is the pointwise product of
/// per-variable priors and factor tables (paper Eq. 5); constraint
/// generation turns every logical/heuristic rule into a soft predicate
/// factor (paper Eq. 6): h where the predicate holds, 1-h elsewhere.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_FACTOR_FACTORGRAPH_H
#define ANEK_FACTOR_FACTORGRAPH_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace anek {

/// Index of a Bernoulli variable within one FactorGraph.
using VarId = uint32_t;

/// A factor graph over Boolean variables.
class FactorGraph {
public:
  /// One Bernoulli variable with its prior P(X = true).
  struct Variable {
    double Prior = 0.5;
    std::string Name;
  };

  /// One factor: a non-negative table over the joint assignments of its
  /// scope. Table index encoding: bit i set <=> Scope[i] is true.
  struct Factor {
    std::vector<VarId> Scope;
    std::vector<double> Table;
  };

  /// Largest supported factor scope (table size stays cache-friendly and
  /// message updates tractable).
  static constexpr unsigned MaxScope = 16;

  /// Adds a variable with prior \p Prior; \p Name aids debugging output.
  VarId addVariable(double Prior, std::string Name = "");

  /// Adds a tabular factor. Table must have size 2^|Scope|.
  void addFactor(std::vector<VarId> Scope, std::vector<double> Table);

  /// Adds a soft predicate factor (paper Eq. 6): weight \p HighProb when
  /// \p Predicate holds of the assignment, 1 - HighProb otherwise.
  /// The assignment passed to the predicate is indexed like Scope.
  void addPredicateFactor(
      std::vector<VarId> Scope,
      const std::function<bool(const std::vector<bool> &)> &Predicate,
      double HighProb);

  /// Adds a soft equality factor between two variables.
  void addEqualityFactor(VarId A, VarId B, double HighProb);

  /// Sharpens/overrides the prior of a variable (used by summary
  /// application, which re-seeds interface nodes each iteration).
  void setPrior(VarId Var, double Prior);

  unsigned variableCount() const {
    return static_cast<unsigned>(Vars.size());
  }
  unsigned factorCount() const {
    return static_cast<unsigned>(Factors.size());
  }
  const Variable &variable(VarId Id) const { return Vars[Id]; }
  const Factor &factor(uint32_t Id) const { return Factors[Id]; }

  /// Flat CSR edge layout shared by every message-passing solver. One
  /// *edge* exists per (factor, scope slot) pair; its id is
  /// FactorOffset[F] + K, so each factor's slots are contiguous and a
  /// message array indexed by edge id needs no nested vectors. The
  /// variable-major view (VarOffset/VarEdges) lists each variable's
  /// edges sorted by edge id, i.e. by (factor, slot) — a fixed,
  /// allocation-independent order the determinism contract relies on.
  struct EdgeLayout {
    /// Factor-major: edges of factor F are [FactorOffset[F],
    /// FactorOffset[F+1]).
    std::vector<uint32_t> FactorOffset;
    /// Variable at each edge (the factor's scope, flattened).
    std::vector<VarId> EdgeVar;
    /// Owning factor of each edge.
    std::vector<uint32_t> EdgeFactor;
    /// Variable-major: edge ids adjacent to V are VarEdges[VarOffset[V]
    /// .. VarOffset[V+1]), ascending.
    std::vector<uint32_t> VarOffset;
    std::vector<uint32_t> VarEdges;
    /// Table-index bit of the edge's own slot (1 << slot).
    std::vector<uint32_t> EdgeSlotBit;
    /// OR of the slot bits of *every* occurrence of the edge's variable
    /// in the owning factor's scope. Equal to EdgeSlotBit except for the
    /// degenerate factors that repeat a variable; incremental Gibbs uses
    /// it to set all of a variable's bits in one mask operation.
    std::vector<uint32_t> EdgeVarMask;
    /// Every factor table concatenated into one contiguous array:
    /// factor F's table occupies TableFlat[TableOffset[F] ..
    /// TableOffset[F] + 2^deg(F)). SIMD kernels gather table entries
    /// from a single base pointer instead of chasing per-factor
    /// vectors; safe to cache because factor tables are immutable once
    /// added (setPrior does not touch them).
    std::vector<double> TableFlat;
    std::vector<uint32_t> TableOffset;
    /// Variable-major companions of VarEdges, so the Gibbs inner loop
    /// is one indexed load per field instead of two dependent loads:
    /// for position I, VmFactor[I] = EdgeFactor[VarEdges[I]], VmMask[I]
    /// = EdgeVarMask[VarEdges[I]], VmSlotBit[I] =
    /// EdgeSlotBit[VarEdges[I]], VmTableBase[I] =
    /// TableOffset[VmFactor[I]].
    std::vector<uint32_t> VmFactor;
    std::vector<uint32_t> VmMask;
    std::vector<uint32_t> VmSlotBit;
    std::vector<uint32_t> VmTableBase;
    /// Gibbs conditional-pair tables: for each (factor, slot)
    /// incidence, a table of adjacent weight pairs {Table[Idx with slot
    /// bit clear], Table[Idx with slot bit set]} indexed by the
    /// factor's current index with the slot bit compacted out, so the
    /// Gibbs sweep loads one contiguous pair per occurrence instead of
    /// two strided table entries — at the same total footprint as
    /// TableFlat per slot. Entries are float: a sampling-weight cache,
    /// exact on the widening load in every backend (float -> double is
    /// lossless), with the build-time rounding (~1e-7 relative) far
    /// below the sampler's own Monte Carlo error; TableFlat stays the
    /// double source of truth for BP. VmPairBase[I] is position I's
    /// base into PairFlat; VmPairLow[I] = SlotBit - 1, the mask of
    /// index bits below the slot (the compaction key). Left empty when
    /// any factor repeats a scope variable (multi-bit masks do not
    /// compact) or the expansion would exceed a fixed size cap; the
    /// Gibbs kernel then falls back to gathering from TableFlat.
    std::vector<float> PairFlat;
    std::vector<uint32_t> VmPairBase;
    std::vector<uint32_t> VmPairLow;
    /// Flip-adjacency CSR over the pair tables, built alongside them:
    /// flipping variable X toggles one bit of every adjacent factor's
    /// current index, which toggles exactly one bit of the compacted
    /// pair index of every OTHER position of those factors (a position
    /// never indexes on its own bit, so X's own positions are
    /// unaffected). Both the target position and the XOR delta are
    /// static: for flipped slot bit Bk seen from a position with slot
    /// bit Bj, the pair-index delta is Bk when Bk > Bj (the toggled
    /// bit sits above the compacted-out slot, shifted down one, then
    /// doubled by the pair stride) and Bk << 1 otherwise. This lets
    /// the sweep maintain a per-position "current pair index" array
    /// with pure XORs, making the weight loop one index load + one
    /// pair load per occurrence with no per-edge index arithmetic.
    /// For variable X the entries live at [FlipOffset[X],
    /// FlipOffset[X+1]): FlipPos is the variable-major position whose
    /// index changes, FlipDelta the XOR. Total size is
    /// sum_F deg(F)*(deg(F)-1), bounded by the pair-table budget
    /// (deg-1 < 2^deg).
    std::vector<uint32_t> FlipOffset;
    std::vector<uint32_t> FlipPos;
    std::vector<uint32_t> FlipDelta;
    uint32_t MaxVarDegree = 0;
    uint32_t MaxFactorDegree = 0;

    uint32_t edgeCount() const {
      return static_cast<uint32_t>(EdgeVar.size());
    }
    uint32_t varDegree(VarId V) const {
      return VarOffset[V + 1] - VarOffset[V];
    }
    uint32_t factorDegree(uint32_t F) const {
      return FactorOffset[F + 1] - FactorOffset[F];
    }
  };

  /// The CSR layout, built on first use and cached; adding a variable or
  /// factor invalidates it (setPrior does not). Not thread-safe: solvers
  /// sharing one graph across threads must touch it once up front.
  const EdgeLayout &edgeLayout() const;

  /// Factors mentioning each variable, one entry per scope occurrence
  /// (built lazily from the edge layout and cached alongside it).
  const std::vector<std::vector<uint32_t>> &varToFactors() const;

  /// Unnormalized joint weight of a full assignment (priors included).
  double jointWeight(const std::vector<bool> &Assignment) const;

private:
  std::vector<Variable> Vars;
  std::vector<Factor> Factors;
  mutable EdgeLayout Layout;
  mutable bool LayoutValid = false;
  mutable std::vector<std::vector<uint32_t>> VarFactorIndex;
  mutable bool IndexValid = false;
};

/// Clamps a probability away from 0 and 1 so message products stay finite.
double clampProb(double P);

} // namespace anek

#endif // ANEK_FACTOR_FACTORGRAPH_H
