//===- KernelsScalar.cpp - Reference scalar solver kernel backend ----------===//
//
// Always built, with the target's baseline flags: the portable fallback
// every other backend must match byte-for-byte. The Traits emulates a
// 4-lane vector with plain doubles so the templated kernel bodies run
// the exact lane structure (strided reduction trees, neutral-element
// padding) the SIMD backends use.
//
//===----------------------------------------------------------------------===//

#include "factor/Kernels.h"
#include "factor/KernelsImpl.h"

namespace {

using anek::kern::impl::absBits;

struct ScalarTraits {
  struct Vec {
    double L[4];
  };
  static Vec broadcast(double X) { return {{X, X, X, X}}; }
  static Vec zero() { return broadcast(0.0); }
  static Vec load(const double *P) { return {{P[0], P[1], P[2], P[3]}}; }
  static void store(double *P, Vec V) {
    P[0] = V.L[0];
    P[1] = V.L[1];
    P[2] = V.L[2];
    P[3] = V.L[3];
  }
  static Vec setr(double A, double B, double C, double D) {
    return {{A, B, C, D}};
  }
  static Vec gather(const double *Base, const uint32_t *Idx) {
    return {{Base[Idx[0]], Base[Idx[1]], Base[Idx[2]], Base[Idx[3]]}};
  }
  static Vec add(Vec A, Vec B) {
    Vec R;
    for (int J = 0; J != 4; ++J)
      R.L[J] = A.L[J] + B.L[J];
    return R;
  }
  static Vec sub(Vec A, Vec B) {
    Vec R;
    for (int J = 0; J != 4; ++J)
      R.L[J] = A.L[J] - B.L[J];
    return R;
  }
  static Vec mul(Vec A, Vec B) {
    Vec R;
    for (int J = 0; J != 4; ++J)
      R.L[J] = A.L[J] * B.L[J];
    return R;
  }
  static Vec div(Vec A, Vec B) {
    Vec R;
    for (int J = 0; J != 4; ++J)
      R.L[J] = A.L[J] / B.L[J];
    return R;
  }
  // minpd/maxpd convention: return B on equality (same value anyway).
  static Vec min(Vec A, Vec B) {
    Vec R;
    for (int J = 0; J != 4; ++J)
      R.L[J] = A.L[J] < B.L[J] ? A.L[J] : B.L[J];
    return R;
  }
  static Vec max(Vec A, Vec B) {
    Vec R;
    for (int J = 0; J != 4; ++J)
      R.L[J] = A.L[J] > B.L[J] ? A.L[J] : B.L[J];
    return R;
  }
  static Vec abs(Vec A) {
    Vec R;
    for (int J = 0; J != 4; ++J)
      R.L[J] = absBits(A.L[J]);
    return R;
  }
  static Vec selectGt0(Vec S, Vec A, Vec B) {
    Vec R;
    for (int J = 0; J != 4; ++J)
      R.L[J] = S.L[J] > 0.0 ? A.L[J] : B.L[J];
    return R;
  }
  template <int M> static Vec blend(Vec A, Vec B) {
    Vec R;
    for (int J = 0; J != 4; ++J)
      R.L[J] = ((M >> J) & 1) ? B.L[J] : A.L[J];
    return R;
  }
  static Vec lo128(Vec A, Vec B) {
    return {{A.L[0], A.L[1], B.L[0], B.L[1]}};
  }
  static Vec hi128(Vec A, Vec B) {
    return {{A.L[2], A.L[3], B.L[2], B.L[3]}};
  }
  template <int I0, int I1> static Vec shuffle(Vec A, Vec B) {
    return {{A.L[I0], B.L[I1], A.L[2 + I0], B.L[2 + I1]}};
  }
  static Vec pair2(const float *Base, uint32_t I, uint32_t J) {
    return {{static_cast<double>(Base[I]), static_cast<double>(Base[I + 1]),
             static_cast<double>(Base[J]), static_cast<double>(Base[J + 1])}};
  }
  static Vec pairLo(const float *Base, uint32_t I) {
    return {{static_cast<double>(Base[I]), static_cast<double>(Base[I + 1]),
             1.0, 1.0}};
  }
  static Vec pairHi(const float *Base, uint32_t I) {
    return {{1.0, 1.0, static_cast<double>(Base[I]),
             static_cast<double>(Base[I + 1])}};
  }
};

} // namespace

namespace anek {
namespace kern {

const SolverKernels *kernelsScalar() {
  static const SolverKernels Table = {
      Backend::Scalar,
      "scalar",
      &impl::bpVarMessagesT<ScalarTraits>,
      &impl::bpVarScatterT<ScalarTraits>,
      &impl::bpFactorSweepT<ScalarTraits>,
      &impl::gibbsSweepT<ScalarTraits>,
  };
  return &Table;
}

} // namespace kern
} // namespace anek
