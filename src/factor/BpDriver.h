//===- BpDriver.h - Multi-span BP engine over one kernel arena ---*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Library-internal driver shared by SumProductSolver::solve (one span
/// over the graph's own EdgeLayout, zero-copy) and fusedBpSolve (many
/// spans over a rebased concatenated arena, factor/Fused.cpp). A *span*
/// is one independent factor graph: a contiguous variable range and a
/// contiguous factor range whose edges never cross spans.
///
/// The determinism argument for fusion: each span freezes (stops
/// iterating) under exactly the condition the standalone solve loop
/// would exit — `Iter == MaxIterations || !(Delta > Tolerance)` checked
/// before each iteration — and every span starts at local iteration 0,
/// so an active span's local iteration always equals the engine's
/// iteration and the periodic Refresh cadence is unchanged. A frozen
/// span's messages are never touched again, and no kernel reads across
/// span boundaries, so the bytes each span produces are independent of
/// which other spans share the arena.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_FACTOR_BPDRIVER_H
#define ANEK_FACTOR_BPDRIVER_H

#include "factor/Kernels.h"
#include "factor/Solvers.h"

#include <vector>

namespace anek {
namespace bp {

/// One independent factor graph within the arena, plus its solve
/// outcome (the fields SumProductSolver::solve reports).
struct Span {
  uint32_t VarBegin = 0;
  uint32_t VarEnd = 0;
  uint32_t FactorBegin = 0;
  uint32_t FactorEnd = 0;
  // Outcome.
  double Delta = 1.0;
  unsigned Iterations = 0;
  bool Active = true;
  bool DeadlineExpired = false;
  uint64_t Updates = 0;
  uint64_t Skipped = 0;
};

/// Owns the per-solve message and scratch arrays over one arena view
/// and runs the iteration loop through the active kernel backend.
class BpEngine {
public:
  explicit BpEngine(const kern::BpView &View);

  /// Runs the flooding loop until every span freezes or the budget
  /// expires. \p EmitResiduals enables the per-iteration bp.residual
  /// counter samples (standalone solves only — with multiple spans a
  /// single residual stream is meaningless).
  void run(const SumProductSolver::Options &Opts, Span *Spans, size_t Count,
           bool EmitResiduals);

  /// Beliefs for one span from the final factor->var messages: the
  /// scalar-kernel epilogue verbatim. Out is indexed from the span's
  /// first variable.
  void beliefs(const Span &S, Marginals &Out,
               Marginals *GraphLikelihood) const;

private:
  /// Recompute NewMsg/Change in the log domain for the span's variables
  /// with degree >= kern::LogDomainMinDegree (linear-domain products of
  /// that many clamped messages can underflow to 0 and erase the
  /// signal). Runs in this baseline TU for every backend, so it cannot
  /// break backend byte-identity.
  void logDomainFixup(const kern::BpConsts &C, uint32_t VB, uint32_t VE);

  kern::BpView View;
  std::vector<double> VarToFactor, FactorToVar;
  std::vector<double> ClampT, ClampF, SufT, SufF, NewMsg, Change;
  std::vector<double> OutT, OutF, EChange;
  std::vector<double> PendingIn, LastOut;
  std::vector<uint32_t> ActiveFactors, ActiveEdges;
  std::vector<uint32_t> HighDegVars; ///< ascending; empty on most graphs.
  std::vector<double> LogSufT, LogSufF;
  kern::BpState State;
};

/// The standalone solve's convergence predicate.
bool spanConverged(const Span &S, bool ForcedNonConvergence, double Tolerance);

/// Fills a SolveReport from a finished span — field for field (and
/// Reason string for Reason string) what SumProductSolver::solve
/// reports. Seconds is left to the caller.
void fillReport(SolveReport &Report, const Span &S, bool ForcedNonConvergence,
                double Tolerance);

} // namespace bp
} // namespace anek

#endif // ANEK_FACTOR_BPDRIVER_H
