//===- Fused.h - Cross-request fused BP solves ------------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Packs several independent factor graphs into one shared CSR arena and
/// solves them with a single multi-span run of the BP kernel driver
/// (factor/BpDriver.h). One kernel invocation per iteration then sweeps
/// every still-active request's edges back to back — amortizing dispatch
/// and loop overhead and keeping the vector units fed across requests —
/// instead of one invocation per request per iteration.
///
/// Results are byte-identical to solving each graph alone with the same
/// Options (see BpDriver.h for the determinism argument); only Seconds
/// is shared, since the fused sweep has no per-request wall clock.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_FACTOR_FUSED_H
#define ANEK_FACTOR_FUSED_H

#include "factor/Solvers.h"

#include <cstddef>

namespace anek {

/// One request in a fused solve: the input graph plus the out-params a
/// standalone SumProductSolver::solve call would fill.
struct FusedBpJob {
  const FactorGraph *Graph = nullptr;
  /// Whether to compute the leave-the-prior-out GraphLikelihood belief.
  bool WantLikelihood = false;
  // Outputs.
  Marginals Out;
  Marginals GraphLikelihood;
  SolveReport Report;
};

/// Solves all \p Count jobs in one shared arena. Every job's Out,
/// GraphLikelihood (when requested), and Report are byte-identical to
/// `SumProductSolver(Opts).solve(*Graph, ...)` — except Report.Seconds,
/// which is the whole fused solve's wall time for every job.
void fusedBpSolve(const SumProductSolver::Options &Opts, FusedBpJob *Jobs,
                  size_t Count);

} // namespace anek

#endif // ANEK_FACTOR_FUSED_H
