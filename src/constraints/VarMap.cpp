//===- VarMap.cpp - Random variables for PFG nodes and edges ---------------===//

#include "constraints/VarMap.h"

#include "support/Format.h"

#include <cassert>

using namespace anek;

static PermVars makeVars(FactorGraph &G, const Pfg &P, const char *Prefix,
                         uint32_t Id, TypeDecl *Class) {
  PermVars Vars;
  for (PermKind Kind : AllPermKinds)
    Vars.Kind[static_cast<unsigned>(Kind)] = G.addVariable(
        0.5, formatStr("%s%u.%s", Prefix, Id, permKindName(Kind)));
  if (Class)
    for (const std::string &State : Class->States.names())
      Vars.State.push_back(
          G.addVariable(0.5, formatStr("%s%u.%s", Prefix, Id,
                                       State.c_str())));
  (void)P;
  return Vars;
}

PfgVarMap::PfgVarMap(const Pfg &P, FactorGraph &G) {
  NodeVars.reserve(P.nodeCount());
  for (PfgNodeId Id = 0; Id != P.nodeCount(); ++Id)
    NodeVars.push_back(makeVars(G, P, "n", Id, P.node(Id).Class));
  EdgeVars.reserve(P.edgeCount());
  for (PfgEdgeId Id = 0; Id != P.edgeCount(); ++Id) {
    // An edge ranges over the state space of its source node's class.
    TypeDecl *Class = P.node(P.edge(Id).From).Class;
    if (!Class)
      Class = P.node(P.edge(Id).To).Class;
    EdgeVars.push_back(makeVars(G, P, "e", Id, Class));
  }
}

void anek::setSpecPriors(FactorGraph &G, const PermVars &Vars,
                         const std::vector<std::string> &States,
                         const std::optional<PermState> &PS, double Hi,
                         double Lo) {
  if (!PS)
    return;
  for (PermKind Kind : AllPermKinds)
    G.setPrior(Vars.Kind[static_cast<unsigned>(Kind)],
               Kind == PS->Kind ? Hi : Lo);
  // An empty state means ALIVE, the root.
  const std::string &Wanted =
      PS->State.empty() ? std::string(AliveStateName) : PS->State;
  for (size_t I = 0, E = Vars.State.size(); I != E; ++I) {
    assert(I < States.size() && "state list shorter than variables");
    G.setPrior(Vars.State[I], States[I] == Wanted ? Hi : Lo);
  }
}

void anek::setMarginalPriors(FactorGraph &G, const PermVars &Vars,
                             const std::vector<double> &Marginals) {
  size_t Index = 0;
  for (PermKind Kind : AllPermKinds) {
    if (Index >= Marginals.size())
      return;
    G.setPrior(Vars.Kind[static_cast<unsigned>(Kind)], Marginals[Index++]);
  }
  for (VarId State : Vars.State) {
    if (Index >= Marginals.size())
      return;
    G.setPrior(State, Marginals[Index++]);
  }
}

std::vector<double> anek::readMarginals(const PermVars &Vars,
                                        const std::vector<double> &Solution) {
  std::vector<double> Out;
  Out.reserve(NumPermKinds + Vars.State.size());
  for (PermKind Kind : AllPermKinds)
    Out.push_back(Solution[Vars.Kind[static_cast<unsigned>(Kind)]]);
  for (VarId State : Vars.State)
    Out.push_back(Solution[State]);
  return Out;
}
