//===- ConstraintGen.h - Logical and heuristic constraints -------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Section 3.3: turns a PFG into probabilistic constraints.
///
/// Logical constraints (always generated):
///   L1 Outgoing — branch nodes propagate their permission unchanged to
///      every outgoing edge; split nodes obey the sound-splitting order of
///      Eq. 2 plus unique/full exclusivity across sibling edges; states
///      propagate unchanged across splits.
///   L2 Incoming — a node's permission equals (one of) its incoming
///      edges'.
///   L3 Field write — the receiver of a field store is immutable or pure
///      only with very low probability.
///
/// Heuristic constraints (each individually toggleable; all encode the
/// "intuitions gleaned from years of writing such specifications"):
///   H1 constructors return unique; H2 pre and post kinds match;
///   H3 create* methods return unique; H4 set* receivers are writing;
///   H5 synchronized targets are full/share/pure.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_CONSTRAINTS_CONSTRAINTGEN_H
#define ANEK_CONSTRAINTS_CONSTRAINTGEN_H

#include "constraints/VarMap.h"

namespace anek {

/// Tunable probabilities (the h parameters of Section 3.3) and toggles.
struct ConstraintOptions {
  // Logical constraint strengths.
  double L1Branch = 0.95;   ///< h1: node = each branch edge.
  double L1Split = 0.95;    ///< h2: sound splitting.
  double L2Incoming = 0.95; ///< h3: node = one incoming edge.
  double L3FieldWrite = 0.95;

  // Heuristic strengths ("elevated probability").
  double H1Ctor = 0.85;
  double H2PrePost = 0.75;
  double H3Create = 0.85;
  double H4Setter = 0.8;
  double H5Sync = 0.75;
  /// H6 is the dual of the paper's "unique is the best returned
  /// permission" discussion: *required* permissions should be as weak as
  /// possible, so unique is unlikely at a method's own pre nodes unless
  /// the body forces it.
  double H6WeakPre = 0.4;

  bool EnableH1 = true;
  bool EnableH2 = true;
  bool EnableH3 = true;
  bool EnableH4 = true;
  bool EnableH5 = true;
  bool EnableH6 = true;

  /// Logical-only mode: drop every heuristic (the paper's "Anek Logical"
  /// configuration runs these constraints deterministically).
  bool LogicalOnly = false;

  /// The sibling-exclusivity conjunct of Eq. 2. PLURAL re-checks
  /// exclusivity soundly after inference, and as a soft factor it biases
  /// loopy BP against exclusive kinds on every split, so it is off by
  /// default (ablated in bench_ablation_heuristics).
  bool EnableExclusivity = false;

  /// Optional soft at-most-one-kind competition per node (off by default:
  /// it deflates marginals below the applied priors, which the summary
  /// cavity extraction reads as negative evidence; the paper extracts the
  /// most likely kind instead). Ablated in bench_ablation_heuristics.
  bool KindMutex = false;
  double KindMutexProb = 0.9;

  /// Returns a copy with all heuristics disabled.
  ConstraintOptions logicalOnly() const {
    ConstraintOptions Out = *this;
    Out.LogicalOnly = true;
    return Out;
  }
};

/// Statistics about generated constraints (for benches and tests).
struct ConstraintStats {
  unsigned BranchEquality = 0;
  unsigned SplitFactors = 0;
  unsigned ExclusivityFactors = 0;
  unsigned IncomingFactors = 0;
  unsigned FieldWriteFactors = 0;
  unsigned HeuristicFactors = 0;
};

/// Generates all constraints for \p P into \p G using the variables of
/// \p Vars.
ConstraintStats generateConstraints(const Pfg &P, FactorGraph &G,
                                    const PfgVarMap &Vars,
                                    const ConstraintOptions &Opts = {});

} // namespace anek

#endif // ANEK_CONSTRAINTS_CONSTRAINTGEN_H
