//===- VarMap.h - Random variables for PFG nodes and edges -------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Section 3.2: every PFG node and edge carries one Bernoulli
/// variable per permission kind and one per abstract state of its class.
/// This module creates those variables in a FactorGraph and provides the
/// prior-seeding helpers (existing specs get B(0.9)/B(0.1); everything
/// else starts at B(0.5)).
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_CONSTRAINTS_VARMAP_H
#define ANEK_CONSTRAINTS_VARMAP_H

#include "factor/FactorGraph.h"
#include "perm/PermKind.h"
#include "perm/Spec.h"
#include "pfg/Pfg.h"

#include <array>
#include <vector>

namespace anek {

/// The variables of one PFG node or edge: five permission-kind variables
/// plus one per abstract state (aligned with Pfg::statesOf, ALIVE first;
/// empty when the class is unknown).
struct PermVars {
  std::array<VarId, NumPermKinds> Kind{};
  std::vector<VarId> State;
};

/// Owns the node/edge -> variable mapping for one method's PFG.
class PfgVarMap {
public:
  /// Creates all variables in \p G with neutral B(0.5) priors.
  PfgVarMap(const Pfg &P, FactorGraph &G);

  const PermVars &node(PfgNodeId Id) const { return NodeVars[Id]; }
  const PermVars &edge(PfgEdgeId Id) const { return EdgeVars[Id]; }

private:
  std::vector<PermVars> NodeVars;
  std::vector<PermVars> EdgeVars;
};

/// Default high/low prior strengths for declared specifications
/// (paper Section 3.2 uses 0.9/0.1).
inline constexpr double SpecPriorHigh = 0.9;
inline constexpr double SpecPriorLow = 0.1;

/// Seeds priors of \p Vars from a declared PermState: the named kind and
/// state become B(Hi), every other kind/state B(Lo). A PermState with an
/// empty state names ALIVE. When \p PS is std::nullopt nothing changes
/// (unknown spec keeps B(0.5)).
void setSpecPriors(FactorGraph &G, const PermVars &Vars,
                   const std::vector<std::string> &States,
                   const std::optional<PermState> &PS,
                   double Hi = SpecPriorHigh, double Lo = SpecPriorLow);

/// Seeds priors of \p Vars from a dense marginal vector laid out as
/// [kinds..., states...]; entries beyond the vector keep their priors.
void setMarginalPriors(FactorGraph &G, const PermVars &Vars,
                       const std::vector<double> &Marginals);

/// Reads the marginals of \p Vars out of a solved marginal vector into the
/// dense [kinds..., states...] layout.
std::vector<double> readMarginals(const PermVars &Vars,
                                  const std::vector<double> &Solution);

} // namespace anek

#endif // ANEK_CONSTRAINTS_VARMAP_H
