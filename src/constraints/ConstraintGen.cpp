//===- ConstraintGen.cpp - Logical and heuristic constraints ---------------===//

#include "constraints/ConstraintGen.h"

#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/Trace.h"

#include <cassert>

using namespace anek;

namespace {

/// Generation context shared by the per-rule helpers.
struct GenContext {
  const Pfg &P;
  FactorGraph &G;
  const PfgVarMap &Vars;
  const ConstraintOptions &Opts;
  ConstraintStats Stats;

  /// Per-kind and per-state soft equality between two variable sets.
  void equalize(const PermVars &A, const PermVars &B, double H,
                bool KindsOnly = false) {
    for (unsigned K = 0; K != NumPermKinds; ++K)
      G.addEqualityFactor(A.Kind[K], B.Kind[K], H);
    if (KindsOnly)
      return;
    size_t States = std::min(A.State.size(), B.State.size());
    for (size_t S = 0; S != States; ++S)
      G.addEqualityFactor(A.State[S], B.State[S], H);
  }

  /// Unary factor nudging a variable toward \p TrueProb.
  void nudge(VarId Var, double TrueProb) {
    G.addFactor({Var}, {1.0 - TrueProb, TrueProb});
    ++Stats.HeuristicFactors;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// L1: outgoing permissions
//===----------------------------------------------------------------------===//

/// Split-edge kind coupling. The sound-splitting order of the paper's
/// Eq. 2 is enforced softly as per-kind equality between the node and the
/// edge: equality factors are bias-free under belief propagation, the
/// mismatch probability absorbs legal downgrades, and the sibling
/// exclusivity factor below rules out duplicated exclusive permissions.
/// (Call-pre priors are applied in "at least this kind" form, see
/// AnekInfer, so a weak requirement never suppresses a stronger permission
/// flowing through the split.)
static void addSplitDowngrade(GenContext &Ctx, const PermVars &Node,
                              const PermVars &Edge) {
  for (unsigned K = 0; K != NumPermKinds; ++K) {
    Ctx.G.addEqualityFactor(Node.Kind[K], Edge.Kind[K], Ctx.Opts.L1Split);
    ++Ctx.Stats.SplitFactors;
  }
}

/// Sibling exclusivity (last conjunct of Eq. 2): at most one outgoing
/// split edge may carry an exclusive (unique or full) permission.
static void addSplitExclusivity(GenContext &Ctx, const PermVars &E1,
                                const PermVars &E2) {
  unsigned U = static_cast<unsigned>(PermKind::Unique);
  unsigned F = static_cast<unsigned>(PermKind::Full);
  Ctx.G.addPredicateFactor(
      {E1.Kind[U], E1.Kind[F], E2.Kind[U], E2.Kind[F]},
      [](const std::vector<bool> &A) {
        bool FirstExclusive = A[0] || A[1];
        bool SecondExclusive = A[2] || A[3];
        return !(FirstExclusive && SecondExclusive);
      },
      Ctx.Opts.L1Split);
  ++Ctx.Stats.ExclusivityFactors;
}

static void generateOutgoing(GenContext &Ctx, PfgNodeId N) {
  const std::vector<PfgEdgeId> &Out = Ctx.P.outEdges(N);
  if (Out.empty())
    return;
  const PermVars &NodeVars = Ctx.Vars.node(N);
  bool IsSplit = Ctx.P.node(N).Kind == PfgNodeKind::Split;

  if (!IsSplit) {
    // Branch or straight-line flow: permission unchanged on every edge.
    for (PfgEdgeId E : Out) {
      Ctx.equalize(NodeVars, Ctx.Vars.edge(E), Ctx.Opts.L1Branch,
                   /*KindsOnly=*/Ctx.P.edge(E).StateOpaque);
      ++Ctx.Stats.BranchEquality;
    }
    return;
  }

  for (PfgEdgeId E : Out) {
    addSplitDowngrade(Ctx, NodeVars, Ctx.Vars.edge(E));
    if (Ctx.P.edge(E).StateOpaque)
      continue; // The callee may transition the state (see PfgBuilder).
    // States survive splitting unchanged (Eq. 2, final line).
    const PermVars &EdgeVars = Ctx.Vars.edge(E);
    size_t States = std::min(NodeVars.State.size(), EdgeVars.State.size());
    for (size_t S = 0; S != States; ++S)
      Ctx.G.addEqualityFactor(NodeVars.State[S], EdgeVars.State[S],
                              Ctx.Opts.L1Split);
  }
  if (Ctx.Opts.EnableExclusivity)
    for (size_t I = 0; I != Out.size(); ++I)
      for (size_t J = I + 1; J != Out.size(); ++J)
        addSplitExclusivity(Ctx, Ctx.Vars.edge(Out[I]),
                            Ctx.Vars.edge(Out[J]));
}

//===----------------------------------------------------------------------===//
// L2: incoming permissions
//===----------------------------------------------------------------------===//

static void generateIncoming(GenContext &Ctx, PfgNodeId N) {
  const std::vector<PfgEdgeId> &In = Ctx.P.inEdges(N);
  if (In.empty())
    return;
  const PermVars &NodeVars = Ctx.Vars.node(N);
  bool IsMerge = Ctx.P.node(N).Kind == PfgNodeKind::Merge;

  if (In.size() == 1) {
    Ctx.equalize(NodeVars, Ctx.Vars.edge(In[0]), Ctx.Opts.L2Incoming,
                 /*KindsOnly=*/Ctx.P.edge(In[0]).StateOpaque);
    ++Ctx.Stats.IncomingFactors;
    return;
  }

  // Multiple incoming edges: the node's permission equals one of the
  // incoming edges'. Soft pairwise equalities encode this without the
  // marginal bias a disjunction factor exerts under loopy BP.
  //
  // At merge nodes the division of labour is sharp: permission *kinds*
  // travel around the call on the retained (state-opaque) edge — a
  // borrow that round-trips restores the original permission (paper
  // Section 2), so the callee's post-condition kind says nothing about
  // what the caller holds afterwards — while abstract *states* return
  // exclusively through the callee's post edge, because the callee may
  // have transitioned the object.
  for (PfgEdgeId E : In) {
    const PermVars &EdgeVars = Ctx.Vars.edge(E);
    bool IsRetained = Ctx.P.edge(E).StateOpaque;
    if (!IsMerge || IsRetained) {
      double KindStrength = IsMerge ? Ctx.Opts.L2Incoming : 0.8;
      for (unsigned K = 0; K != NumPermKinds; ++K)
        Ctx.G.addEqualityFactor(NodeVars.Kind[K], EdgeVars.Kind[K],
                                KindStrength);
    }
    if (!IsRetained) {
      double StateStrength = IsMerge ? Ctx.Opts.L2Incoming : 0.8;
      size_t States = std::min(NodeVars.State.size(),
                               EdgeVars.State.size());
      for (size_t S = 0; S != States; ++S)
        Ctx.G.addEqualityFactor(NodeVars.State[S], EdgeVars.State[S],
                                StateStrength);
    }
    ++Ctx.Stats.IncomingFactors;
  }
}

//===----------------------------------------------------------------------===//
// L3: field writes
//===----------------------------------------------------------------------===//

static void generateFieldWrite(GenContext &Ctx, PfgNodeId N) {
  const PfgNode &Node = Ctx.P.node(N);
  if (Node.Kind != PfgNodeKind::FieldWrite ||
      Node.ReceiverNode == NoPfgNode)
    return;
  const PermVars &Recv = Ctx.Vars.node(Node.ReceiverNode);
  unsigned U = static_cast<unsigned>(PermKind::Unique);
  unsigned F = static_cast<unsigned>(PermKind::Full);
  unsigned S = static_cast<unsigned>(PermKind::Share);
  unsigned Imm = static_cast<unsigned>(PermKind::Immutable);
  unsigned Pure = static_cast<unsigned>(PermKind::Pure);
  Ctx.G.addPredicateFactor(
      {Recv.Kind[Imm], Recv.Kind[Pure]},
      [](const std::vector<bool> &A) { return !A[0] && !A[1]; },
      Ctx.Opts.L3FieldWrite);
  // "A field cannot be modified without writing permission to its
  // receiver": positively, some writing kind is present.
  Ctx.G.addPredicateFactor(
      {Recv.Kind[U], Recv.Kind[F], Recv.Kind[S]},
      [](const std::vector<bool> &A) { return A[0] || A[1] || A[2]; },
      Ctx.Opts.L3FieldWrite);
  Ctx.Stats.FieldWriteFactors += 2;
}

//===----------------------------------------------------------------------===//
// Heuristics H1-H5
//===----------------------------------------------------------------------===//

static void generateHeuristics(GenContext &Ctx) {
  const ConstraintOptions &Opts = Ctx.Opts;
  const Pfg &P = Ctx.P;
  unsigned U = static_cast<unsigned>(PermKind::Unique);
  unsigned Imm = static_cast<unsigned>(PermKind::Immutable);
  unsigned Pure = static_cast<unsigned>(PermKind::Pure);

  // H1: constructors return unique.
  if (Opts.EnableH1)
    for (PfgNodeId N = 0; N != P.nodeCount(); ++N)
      if (P.node(N).Kind == PfgNodeKind::NewObject)
        Ctx.nudge(Ctx.Vars.node(N).Kind[U], Opts.H1Ctor);

  // H2: a parameter keeps its permission kind across the method (pre and
  // post kinds agree; states may change).
  if (Opts.EnableH2) {
    auto Tie = [&](PfgNodeId Pre, PfgNodeId Post) {
      if (Pre == NoPfgNode || Post == NoPfgNode)
        return;
      Ctx.equalize(Ctx.Vars.node(Pre), Ctx.Vars.node(Post), Opts.H2PrePost,
                   /*KindsOnly=*/true);
      Ctx.Stats.HeuristicFactors += NumPermKinds;
    };
    Tie(P.ReceiverPre, P.ReceiverPost);
    for (size_t I = 0; I != P.ParamPre.size(); ++I)
      Tie(P.ParamPre[I], P.ParamPost[I]);
  }

  // H3: create* factory methods return unique.
  if (Opts.EnableH3) {
    if (P.Method && startsWith(P.Method->Name, "create") &&
        P.ResultNode != NoPfgNode)
      Ctx.nudge(Ctx.Vars.node(P.ResultNode).Kind[U], Opts.H3Create);
    for (PfgNodeId N = 0; N != P.nodeCount(); ++N) {
      const PfgNode &Node = P.node(N);
      if (Node.Kind == PfgNodeKind::CallResult && Node.Callee &&
          startsWith(Node.Callee->Name, "create"))
        Ctx.nudge(Ctx.Vars.node(N).Kind[U], Opts.H3Create);
    }
  }

  // H4: set* methods take a writing permission to their receiver, so
  // immutable/pure are unlikely on the receiver pre and post. The
  // idiomatic writing kind for a setter spec is full (exclusive write,
  // shared reads), so it gets the elevated probability.
  if (Opts.EnableH4) {
    unsigned FullK = static_cast<unsigned>(PermKind::Full);
    auto Damp = [&](PfgNodeId N) {
      if (N == NoPfgNode)
        return;
      Ctx.nudge(Ctx.Vars.node(N).Kind[Imm], 1.0 - Opts.H4Setter);
      Ctx.nudge(Ctx.Vars.node(N).Kind[Pure], 1.0 - Opts.H4Setter);
      Ctx.nudge(Ctx.Vars.node(N).Kind[FullK], Opts.H4Setter);
    };
    if (P.Method && startsWith(P.Method->Name, "set")) {
      Damp(P.ReceiverPre);
      Damp(P.ReceiverPost);
    }
    for (PfgNodeId N = 0; N != P.nodeCount(); ++N) {
      const PfgNode &Node = P.node(N);
      bool IsRecvCallNode = (Node.Kind == PfgNodeKind::CallPre ||
                             Node.Kind == PfgNodeKind::CallPost) &&
                            Node.Target.Kind == SpecTargetKind::Receiver;
      if (IsRecvCallNode && Node.Callee &&
          startsWith(Node.Callee->Name, "set"))
        Damp(N);
    }
  }

  // H6: required permissions are as weak as possible — unique is
  // unlikely at a method's own precondition nodes unless forced.
  if (Opts.EnableH6) {
    auto Weaken = [&](PfgNodeId N) {
      if (N != NoPfgNode)
        Ctx.nudge(Ctx.Vars.node(N).Kind[U], Opts.H6WeakPre);
    };
    Weaken(P.ReceiverPre);
    for (PfgNodeId N : P.ParamPre)
      Weaken(N);
  }

  // H5: synchronized targets are thread-shared: full, share or pure.
  if (Opts.EnableH5) {
    unsigned F = static_cast<unsigned>(PermKind::Full);
    unsigned S = static_cast<unsigned>(PermKind::Share);
    for (PfgNodeId N : P.SyncTargets) {
      const PermVars &Vars = Ctx.Vars.node(N);
      Ctx.G.addPredicateFactor(
          {Vars.Kind[F], Vars.Kind[S], Vars.Kind[Pure]},
          [](const std::vector<bool> &A) { return A[0] || A[1] || A[2]; },
          Opts.H5Sync);
      ++Ctx.Stats.HeuristicFactors;
    }
  }
}

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

ConstraintStats anek::generateConstraints(const Pfg &P, FactorGraph &G,
                                          const PfgVarMap &Vars,
                                          const ConstraintOptions &Opts) {
  telemetry::Span Span("constraints.generate",
                       telemetry::TraceLevel::Method, "constraints");
  GenContext Ctx{P, G, Vars, Opts, {}};

  for (PfgNodeId N = 0; N != P.nodeCount(); ++N) {
    generateOutgoing(Ctx, N);
    generateIncoming(Ctx, N);
    generateFieldWrite(Ctx, N);
  }

  if (!Opts.LogicalOnly)
    generateHeuristics(Ctx);

  if (Opts.KindMutex) {
    for (PfgNodeId N = 0; N != P.nodeCount(); ++N) {
      const PermVars &NodeVars = Vars.node(N);
      std::vector<VarId> Scope(NodeVars.Kind.begin(), NodeVars.Kind.end());
      G.addPredicateFactor(
          Scope,
          [](const std::vector<bool> &A) {
            unsigned Count = 0;
            for (bool B : A)
              Count += B;
            return Count <= 1;
          },
          Opts.KindMutexProb);
      ++Ctx.Stats.HeuristicFactors;
    }
  }

  if (Span.active()) {
    Span.arg("vars", G.variableCount());
    Span.arg("factors", G.factorCount());
    Span.arg("heuristic_factors", Ctx.Stats.HeuristicFactors);
  }
  if (telemetry::enabled(telemetry::TraceLevel::Phase)) {
    telemetry::counter("constraints.runs").add(1);
    telemetry::counter("constraints.variables").add(G.variableCount());
    telemetry::counter("constraints.factors").add(G.factorCount());
    telemetry::counter("constraints.heuristic_factors")
        .add(Ctx.Stats.HeuristicFactors);
  }
  return Ctx.Stats;
}
