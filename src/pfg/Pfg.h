//===- Pfg.h - Permissions Flow Graph ----------------------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Permissions Flow Graph of paper Section 3.1: a directed graph of
/// the flow of access permissions through one method. It differs from a
/// dataflow graph in exactly two ways (both quoted from the paper): at
/// method call sites and field assignments some permission is retained in
/// the calling context, and permission can flow back out of arguments
/// after a call returns. Nodes carry the class whose state space their
/// random variables range over; field-access nodes keep a link to their
/// receiver node (the dotted line of Figure 7).
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_PFG_PFG_H
#define ANEK_PFG_PFG_H

#include "lang/Ast.h"

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace anek {

using PfgNodeId = uint32_t;
using PfgEdgeId = uint32_t;
inline constexpr PfgNodeId NoPfgNode = std::numeric_limits<PfgNodeId>::max();

/// What a node represents.
enum class PfgNodeKind {
  ParamPre,   ///< Permission required of a parameter/receiver at entry.
  ParamPost,  ///< Permission returned for a parameter/receiver at exit.
  Result,     ///< Permission of the method's returned value.
  CallPre,    ///< Callee's precondition for one argument at one call site.
  CallPost,   ///< Callee's postcondition for one argument at one call site.
  CallResult, ///< Value returned by a callee at one call site.
  NewObject,  ///< Object created by a constructor (H1 applies here).
  FieldRead,  ///< Permission source: a field load.
  FieldWrite, ///< Permission sink: a field store (L3 applies to receiver).
  Split,      ///< Permission split point (outgoing edges obey Eq. 2).
  Merge,      ///< Merge of retained and returned permission after a call.
  Join,       ///< Control-flow join of one object's permission.
  Unknown,    ///< Source for values the analysis cannot track.
};

/// Printable name of a node kind.
const char *pfgNodeKindName(PfgNodeKind Kind);

/// One PFG node.
struct PfgNode {
  PfgNodeKind Kind = PfgNodeKind::Unknown;
  /// Class whose state space the node's state variables range over; null
  /// when unknown (then only permission-kind variables are created).
  TypeDecl *Class = nullptr;
  /// Receiver/parameter identity for ParamPre/ParamPost/CallPre/CallPost.
  SpecTarget Target;
  /// Callee for CallPre/CallPost/CallResult/NewObject nodes.
  MethodDecl *Callee = nullptr;
  /// Owning call site index for Call*/NewObject nodes.
  uint32_t CallSite = 0;
  /// Field name for FieldRead/FieldWrite.
  std::string FieldName;
  /// Receiver node of a field access (the dotted edge in Figure 7).
  PfgNodeId ReceiverNode = NoPfgNode;
  SourceLocation Loc;
};

/// One directed edge.
struct PfgEdge {
  PfgNodeId From = NoPfgNode;
  PfgNodeId To = NoPfgNode;
  /// True for the retained split->merge edge around a call site: the
  /// callee may transition the object's state, so abstract-state equality
  /// must not propagate across this edge (permission kinds still do).
  bool StateOpaque = false;
};

/// A call site's interface nodes (what summary application binds,
/// PARAMARG(c) in Definition 1).
struct PfgCallSite {
  MethodDecl *Callee = nullptr;
  bool IsCtor = false;
  SourceLocation Loc;
  PfgNodeId RecvPre = NoPfgNode;
  PfgNodeId RecvPost = NoPfgNode;
  std::vector<PfgNodeId> ArgPre;  ///< NoPfgNode for primitive args.
  std::vector<PfgNodeId> ArgPost; ///< NoPfgNode for primitive args.
  PfgNodeId Result = NoPfgNode;   ///< NewObject node for constructors.
};

/// The PFG of one method.
class Pfg {
public:
  MethodDecl *Method = nullptr;

  PfgNodeId addNode(PfgNode Node);
  PfgEdgeId addEdge(PfgNodeId From, PfgNodeId To,
                    bool StateOpaque = false);

  const PfgNode &node(PfgNodeId Id) const { return Nodes[Id]; }
  PfgNode &node(PfgNodeId Id) { return Nodes[Id]; }
  const PfgEdge &edge(PfgEdgeId Id) const { return Edges[Id]; }

  unsigned nodeCount() const { return static_cast<unsigned>(Nodes.size()); }
  unsigned edgeCount() const { return static_cast<unsigned>(Edges.size()); }

  const std::vector<PfgEdgeId> &outEdges(PfgNodeId Id) const {
    return OutEdges[Id];
  }
  const std::vector<PfgEdgeId> &inEdges(PfgNodeId Id) const {
    return InEdges[Id];
  }

  /// Interface nodes of the method itself.
  PfgNodeId ReceiverPre = NoPfgNode;
  PfgNodeId ReceiverPost = NoPfgNode;
  std::vector<PfgNodeId> ParamPre;  ///< NoPfgNode for primitive params.
  std::vector<PfgNodeId> ParamPost; ///< NoPfgNode for primitive params.
  PfgNodeId ResultNode = NoPfgNode;

  /// Call sites in body order.
  std::vector<PfgCallSite> CallSites;

  /// Nodes that were targets of synchronized blocks (heuristic H5).
  std::vector<PfgNodeId> SyncTargets;

  /// State names for a node (the names of its class's space, ALIVE first);
  /// empty vector when the node has no known class.
  std::vector<std::string> statesOf(PfgNodeId Id) const;

  /// Human-readable description of one node, e.g. "PRE this" or
  /// "callpre#2 iterator(this)".
  std::string describe(PfgNodeId Id) const;

  /// Multi-line listing of nodes and edges (tests, Figure 6 bench).
  std::string str() const;

  /// GraphViz rendering (Figure 6 reproduction).
  std::string dot() const;

private:
  std::vector<PfgNode> Nodes;
  std::vector<PfgEdge> Edges;
  std::vector<std::vector<PfgEdgeId>> OutEdges;
  std::vector<std::vector<PfgEdgeId>> InEdges;
};

} // namespace anek

#endif // ANEK_PFG_PFG_H
