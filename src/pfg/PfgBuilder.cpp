//===- PfgBuilder.cpp - Build PFGs from the action IR ----------------------===//

#include "pfg/PfgBuilder.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <cassert>
#include <map>

using namespace anek;

namespace {

/// Map from local slots to the PFG node currently holding their
/// permission. Only object-typed locals appear.
using NodeMap = std::map<LocalId, PfgNodeId>;

/// Builder state for one method.
class Builder {
public:
  explicit Builder(const MethodIr &Ir) : Ir(Ir) { G.Method = Ir.Method; }

  Pfg run();

private:
  PfgNodeId makeNode(PfgNodeKind Kind, TypeDecl *Class, SourceLocation Loc) {
    PfgNode N;
    N.Kind = Kind;
    N.Class = Class;
    N.Loc = Loc;
    return G.addNode(std::move(N));
  }

  /// Current node for \p Local, creating an Unknown source on demand for
  /// object-typed locals the analysis has not seen a definition for.
  PfgNodeId currentNode(NodeMap &Map, LocalId Local, SourceLocation Loc);

  /// True when \p Local holds an object reference worth tracking.
  bool isTracked(LocalId Local) const {
    return Local != NoLocal && Ir.Locals[Local].Class != nullptr;
  }

  void handleCall(NodeMap &Map, const Action &A);
  void handleAction(NodeMap &Map, const Action &A);

  /// Reverse post-order over reachable blocks.
  std::vector<uint32_t> computeRpo() const;

  const MethodIr &Ir;
  Pfg G;
  /// Pending loop-head joins: block -> (local -> join node).
  std::map<uint32_t, NodeMap> LoopJoins;
  /// Exit node-maps per processed block.
  std::map<uint32_t, NodeMap> ExitMaps;
};

} // namespace

PfgNodeId Builder::currentNode(NodeMap &Map, LocalId Local,
                               SourceLocation Loc) {
  assert(isTracked(Local) && "requesting node for untracked local");
  auto It = Map.find(Local);
  if (It != Map.end())
    return It->second;
  PfgNodeId N = makeNode(PfgNodeKind::Unknown, Ir.Locals[Local].Class, Loc);
  Map[Local] = N;
  return N;
}

void Builder::handleCall(NodeMap &Map, const Action &A) {
  PfgCallSite Site;
  Site.Callee = A.Callee;
  Site.IsCtor = A.Kind == ActionKind::Alloc;
  Site.Loc = A.Loc;
  uint32_t SiteId = static_cast<uint32_t>(G.CallSites.size());

  // One argument's flow through the call: cur -> split -> callee-pre,
  // split -> merge, callee-post -> merge; the local continues at the
  // merge (paper Figure 6).
  auto FlowThrough = [&](LocalId Local, SpecTarget Target,
                         TypeDecl *IfaceClass, PfgNodeId &PreOut,
                         PfgNodeId &PostOut) {
    PfgNodeId Cur = currentNode(Map, Local, A.Loc);
    TypeDecl *Class = IfaceClass ? IfaceClass : Ir.Locals[Local].Class;

    PfgNodeId Split = makeNode(PfgNodeKind::Split, Class, A.Loc);
    PfgNodeId Pre = makeNode(PfgNodeKind::CallPre, Class, A.Loc);
    PfgNodeId Post = makeNode(PfgNodeKind::CallPost, Class, A.Loc);
    PfgNodeId Merge = makeNode(PfgNodeKind::Merge, Class, A.Loc);
    G.node(Pre).Target = Target;
    G.node(Pre).Callee = A.Callee;
    G.node(Pre).CallSite = SiteId;
    G.node(Post).Target = Target;
    G.node(Post).Callee = A.Callee;
    G.node(Post).CallSite = SiteId;

    G.addEdge(Cur, Split);
    G.addEdge(Split, Pre);
    // The retained edge is state-opaque: the callee may transition the
    // object, so the merged state comes back via the post edge only.
    G.addEdge(Split, Merge, /*StateOpaque=*/true);
    G.addEdge(Post, Merge);
    Map[Local] = Merge;
    PreOut = Pre;
    PostOut = Post;
  };

  // Receiver.
  if (A.Kind == ActionKind::Call && A.Recv != NoLocal && isTracked(A.Recv)) {
    TypeDecl *RecvClass = A.Callee ? A.Callee->Owner : nullptr;
    FlowThrough(A.Recv, SpecTarget::receiver(), RecvClass, Site.RecvPre,
                Site.RecvPost);
  }

  // Object-typed arguments.
  Site.ArgPre.assign(A.Args.size(), NoPfgNode);
  Site.ArgPost.assign(A.Args.size(), NoPfgNode);
  for (unsigned I = 0, E = static_cast<unsigned>(A.Args.size()); I != E;
       ++I) {
    LocalId Arg = A.Args[I];
    if (!isTracked(Arg))
      continue;
    TypeDecl *ParamClass = nullptr;
    if (A.Callee && I < A.Callee->Params.size() &&
        A.Callee->Params[I].Type.isClass())
      ParamClass = A.Callee->Params[I].Type.Decl;
    FlowThrough(Arg, SpecTarget::param(I), ParamClass, Site.ArgPre[I],
                Site.ArgPost[I]);
  }

  // Result.
  if (A.Kind == ActionKind::Alloc) {
    PfgNodeId NewNode = makeNode(PfgNodeKind::NewObject, A.AllocClass, A.Loc);
    G.node(NewNode).Callee = A.Callee;
    G.node(NewNode).CallSite = SiteId;
    Site.Result = NewNode;
    if (A.Dst != NoLocal)
      Map[A.Dst] = NewNode;
  } else if (A.Dst != NoLocal && isTracked(A.Dst)) {
    TypeDecl *RetClass = Ir.Locals[A.Dst].Class;
    if (A.Callee && A.Callee->ReturnType.isClass() &&
        A.Callee->ReturnType.Decl)
      RetClass = A.Callee->ReturnType.Decl;
    PfgNodeId Res = makeNode(PfgNodeKind::CallResult, RetClass, A.Loc);
    G.node(Res).Callee = A.Callee;
    G.node(Res).CallSite = SiteId;
    Site.Result = Res;
    Map[A.Dst] = Res;
  }

  G.CallSites.push_back(std::move(Site));
}

void Builder::handleAction(NodeMap &Map, const Action &A) {
  switch (A.Kind) {
  case ActionKind::Alloc:
  case ActionKind::Call:
    handleCall(Map, A);
    return;
  case ActionKind::Copy:
    if (isTracked(A.Dst) && isTracked(A.Src))
      Map[A.Dst] = currentNode(Map, A.Src, A.Loc);
    return;
  case ActionKind::FieldLoad: {
    if (!isTracked(A.Dst))
      return;
    PfgNodeId Read =
        makeNode(PfgNodeKind::FieldRead, Ir.Locals[A.Dst].Class, A.Loc);
    G.node(Read).FieldName = A.FieldName;
    if (isTracked(A.Recv))
      G.node(Read).ReceiverNode = currentNode(Map, A.Recv, A.Loc);
    Map[A.Dst] = Read;
    return;
  }
  case ActionKind::FieldStore: {
    if (!isTracked(A.Src)) {
      // Primitive store: still note the write for L3 via a receiver-less
      // sink only when the receiver is tracked.
      if (isTracked(A.Recv)) {
        PfgNodeId Write = makeNode(PfgNodeKind::FieldWrite, nullptr, A.Loc);
        G.node(Write).FieldName = A.FieldName;
        G.node(Write).ReceiverNode = currentNode(Map, A.Recv, A.Loc);
      }
      return;
    }
    // Some permission is retained by the assigning context (paper
    // Section 3.1): cur -> split -> {fieldwrite, retained}.
    PfgNodeId Cur = currentNode(Map, A.Src, A.Loc);
    TypeDecl *Class = Ir.Locals[A.Src].Class;
    PfgNodeId Split = makeNode(PfgNodeKind::Split, Class, A.Loc);
    PfgNodeId Write = makeNode(PfgNodeKind::FieldWrite, Class, A.Loc);
    PfgNodeId Retained = makeNode(PfgNodeKind::Merge, Class, A.Loc);
    G.node(Write).FieldName = A.FieldName;
    if (isTracked(A.Recv))
      G.node(Write).ReceiverNode = currentNode(Map, A.Recv, A.Loc);
    G.addEdge(Cur, Split);
    G.addEdge(Split, Write);
    G.addEdge(Split, Retained);
    Map[A.Src] = Retained;
    return;
  }
  case ActionKind::Return:
    if (A.Src != NoLocal && isTracked(A.Src) && G.ResultNode != NoPfgNode)
      G.addEdge(currentNode(Map, A.Src, A.Loc), G.ResultNode);
    return;
  case ActionKind::EnterSync:
    if (isTracked(A.Recv))
      G.SyncTargets.push_back(currentNode(Map, A.Recv, A.Loc));
    return;
  case ActionKind::ExitSync:
  case ActionKind::OpaqueUse:
    return;
  }
}

std::vector<uint32_t> Builder::computeRpo() const {
  std::vector<uint32_t> PostOrder;
  std::vector<uint8_t> Visited(Ir.Blocks.size(), 0);
  // Iterative DFS.
  std::vector<std::pair<uint32_t, size_t>> Stack;
  Stack.push_back({MethodIr::EntryBlock, 0});
  Visited[MethodIr::EntryBlock] = 1;
  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    const std::vector<uint32_t> &Succs = Ir.Blocks[Block].Term.Succs;
    if (NextSucc < Succs.size()) {
      uint32_t Succ = Succs[NextSucc++];
      if (!Visited[Succ]) {
        Visited[Succ] = 1;
        Stack.push_back({Succ, 0});
      }
      continue;
    }
    PostOrder.push_back(Block);
    Stack.pop_back();
  }
  return {PostOrder.rbegin(), PostOrder.rend()};
}

Pfg Builder::run() {
  MethodDecl *Method = Ir.Method;

  // Interface nodes.
  if (Ir.ReceiverLocal != NoLocal && isTracked(Ir.ReceiverLocal)) {
    G.ReceiverPre = makeNode(PfgNodeKind::ParamPre, Method->Owner,
                             Method->Loc);
    G.node(G.ReceiverPre).Target = SpecTarget::receiver();
    G.ReceiverPost = makeNode(PfgNodeKind::ParamPost, Method->Owner,
                              Method->Loc);
    G.node(G.ReceiverPost).Target = SpecTarget::receiver();
  }
  G.ParamPre.assign(Ir.ParamLocals.size(), NoPfgNode);
  G.ParamPost.assign(Ir.ParamLocals.size(), NoPfgNode);
  for (unsigned I = 0, E = static_cast<unsigned>(Ir.ParamLocals.size());
       I != E; ++I) {
    LocalId Local = Ir.ParamLocals[I];
    if (!isTracked(Local))
      continue;
    G.ParamPre[I] =
        makeNode(PfgNodeKind::ParamPre, Ir.Locals[Local].Class, Method->Loc);
    G.node(G.ParamPre[I]).Target = SpecTarget::param(I);
    G.ParamPost[I] =
        makeNode(PfgNodeKind::ParamPost, Ir.Locals[Local].Class, Method->Loc);
    G.node(G.ParamPost[I]).Target = SpecTarget::param(I);
  }
  if (Method->ReturnType.isClass() && Method->ReturnType.Decl &&
      !Method->IsCtor)
    G.ResultNode =
        makeNode(PfgNodeKind::Result, Method->ReturnType.Decl, Method->Loc);

  std::vector<uint32_t> Rpo = computeRpo();
  std::vector<uint32_t> RpoIndex(Ir.Blocks.size(),
                                 static_cast<uint32_t>(Ir.Blocks.size()));
  for (uint32_t I = 0; I != Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;

  std::vector<std::vector<uint32_t>> Preds = Ir.predecessors();

  // A block is a loop head if some reachable predecessor comes later in
  // RPO (a back edge).
  auto IsBackEdge = [&](uint32_t From, uint32_t To) {
    return RpoIndex[From] >= RpoIndex[To];
  };

  for (uint32_t Block : Rpo) {
    NodeMap Entry;
    bool IsLoopHead = false;
    std::vector<uint32_t> ForwardPreds;
    for (uint32_t Pred : Preds[Block]) {
      if (RpoIndex[Pred] == Ir.Blocks.size())
        continue; // Unreachable predecessor.
      if (IsBackEdge(Pred, Block))
        IsLoopHead = true;
      else
        ForwardPreds.push_back(Pred);
    }

    if (Block == MethodIr::EntryBlock) {
      if (G.ReceiverPre != NoPfgNode)
        Entry[Ir.ReceiverLocal] = G.ReceiverPre;
      for (unsigned I = 0; I != Ir.ParamLocals.size(); ++I)
        if (G.ParamPre[I] != NoPfgNode)
          Entry[Ir.ParamLocals[I]] = G.ParamPre[I];
    } else if (ForwardPreds.size() == 1 && !IsLoopHead) {
      Entry = ExitMaps[ForwardPreds[0]];
    } else if (!ForwardPreds.empty()) {
      // Merge forward predecessors: keep locals present in all of them.
      Entry = ExitMaps[ForwardPreds[0]];
      for (size_t P = 1; P < ForwardPreds.size(); ++P) {
        const NodeMap &Other = ExitMaps[ForwardPreds[P]];
        for (auto It = Entry.begin(); It != Entry.end();) {
          auto Found = Other.find(It->first);
          if (Found == Other.end()) {
            It = Entry.erase(It);
            continue;
          }
          if (Found->second != It->second) {
            // Differing nodes: join them.
            PfgNodeId Join = makeNode(PfgNodeKind::Join,
                                      Ir.Locals[It->first].Class,
                                      SourceLocation());
            G.addEdge(It->second, Join);
            G.addEdge(Found->second, Join);
            It->second = Join;
          }
          ++It;
        }
      }
    }

    if (IsLoopHead) {
      // Every tracked local entering the loop gets a join node so the
      // back edge can feed permission around the loop (Figure 6).
      NodeMap Joins;
      for (auto &[Local, Node] : Entry) {
        PfgNodeId Join =
            makeNode(PfgNodeKind::Join, Ir.Locals[Local].Class,
                     SourceLocation());
        G.addEdge(Node, Join);
        Joins[Local] = Join;
        Node = Join;
      }
      LoopJoins[Block] = Joins;
    }

    // Walk the block.
    NodeMap Map = Entry;
    for (const Action &A : Ir.Blocks[Block].Actions)
      handleAction(Map, A);

    // At method exits, parameters flow to their POST nodes.
    if (Ir.Blocks[Block].Term.Kind == TermKind::Exit) {
      if (G.ReceiverPost != NoPfgNode && Map.count(Ir.ReceiverLocal))
        G.addEdge(Map[Ir.ReceiverLocal], G.ReceiverPost);
      for (unsigned I = 0; I != Ir.ParamLocals.size(); ++I)
        if (G.ParamPost[I] != NoPfgNode && Map.count(Ir.ParamLocals[I]))
          G.addEdge(Map[Ir.ParamLocals[I]], G.ParamPost[I]);
    }

    ExitMaps[Block] = std::move(Map);
  }

  // Wire back edges into the loop-head joins.
  for (auto &[Head, Joins] : LoopJoins) {
    for (uint32_t Pred : Preds[Head]) {
      if (RpoIndex[Pred] == Ir.Blocks.size() || !IsBackEdge(Pred, Head))
        continue;
      auto ExitIt = ExitMaps.find(Pred);
      if (ExitIt == ExitMaps.end())
        continue;
      for (auto &[Local, Join] : Joins) {
        auto Found = ExitIt->second.find(Local);
        // Skip self-edges: the permission was not touched in the loop.
        if (Found != ExitIt->second.end() && Found->second != Join)
          G.addEdge(Found->second, Join);
      }
    }
  }

  return std::move(G);
}

Pfg anek::buildPfg(const MethodIr &Ir) {
  assert(Ir.Method && "IR without method");
  telemetry::Span S("pfg.build", telemetry::TraceLevel::Method, "pfg");
  Builder B(Ir);
  Pfg G = B.run();
  if (S.active()) {
    S.arg("method", Ir.Method->qualifiedName());
    S.arg("nodes", G.nodeCount());
    S.arg("edges", G.edgeCount());
    S.arg("call_sites", static_cast<uint64_t>(G.CallSites.size()));
  }
  if (telemetry::enabled(telemetry::TraceLevel::Phase)) {
    telemetry::counter("pfg.builds").add(1);
    telemetry::counter("pfg.nodes").add(G.nodeCount());
    telemetry::counter("pfg.edges").add(G.edgeCount());
    telemetry::counter("pfg.call_sites").add(G.CallSites.size());
    telemetry::histogram("pfg.nodes_per_method")
        .record(static_cast<double>(G.nodeCount()));
  }
  return G;
}
