//===- Pfg.cpp - Permissions Flow Graph ------------------------------------===//

#include "pfg/Pfg.h"

#include "support/Format.h"

#include <cassert>

using namespace anek;

const char *anek::pfgNodeKindName(PfgNodeKind Kind) {
  switch (Kind) {
  case PfgNodeKind::ParamPre:
    return "PRE";
  case PfgNodeKind::ParamPost:
    return "POST";
  case PfgNodeKind::Result:
    return "RESULT";
  case PfgNodeKind::CallPre:
    return "callpre";
  case PfgNodeKind::CallPost:
    return "callpost";
  case PfgNodeKind::CallResult:
    return "callresult";
  case PfgNodeKind::NewObject:
    return "new";
  case PfgNodeKind::FieldRead:
    return "fieldread";
  case PfgNodeKind::FieldWrite:
    return "fieldwrite";
  case PfgNodeKind::Split:
    return "split";
  case PfgNodeKind::Merge:
    return "merge";
  case PfgNodeKind::Join:
    return "join";
  case PfgNodeKind::Unknown:
    return "unknown";
  }
  return "?";
}

PfgNodeId Pfg::addNode(PfgNode Node) {
  Nodes.push_back(std::move(Node));
  OutEdges.emplace_back();
  InEdges.emplace_back();
  return static_cast<PfgNodeId>(Nodes.size() - 1);
}

PfgEdgeId Pfg::addEdge(PfgNodeId From, PfgNodeId To, bool StateOpaque) {
  assert(From < Nodes.size() && To < Nodes.size() && "edge endpoint missing");
  Edges.push_back({From, To, StateOpaque});
  PfgEdgeId Id = static_cast<PfgEdgeId>(Edges.size() - 1);
  OutEdges[From].push_back(Id);
  InEdges[To].push_back(Id);
  return Id;
}

std::vector<std::string> Pfg::statesOf(PfgNodeId Id) const {
  const PfgNode &N = node(Id);
  if (!N.Class)
    return {};
  return N.Class->States.names();
}

std::string Pfg::describe(PfgNodeId Id) const {
  const PfgNode &N = node(Id);
  std::string Out = pfgNodeKindName(N.Kind);
  switch (N.Kind) {
  case PfgNodeKind::ParamPre:
  case PfgNodeKind::ParamPost: {
    Out += " ";
    if (N.Target.Kind == SpecTargetKind::Receiver)
      Out += "this";
    else if (Method && N.Target.ParamIndex < Method->Params.size())
      Out += Method->Params[N.Target.ParamIndex].Name;
    else
      Out += formatStr("#%u", N.Target.ParamIndex);
    break;
  }
  case PfgNodeKind::CallPre:
  case PfgNodeKind::CallPost:
    Out += formatStr("#%u ", N.CallSite);
    Out += N.Callee ? N.Callee->Name : "?";
    Out += N.Target.Kind == SpecTargetKind::Receiver
               ? "(this)"
               : formatStr("(#%u)", N.Target.ParamIndex);
    break;
  case PfgNodeKind::CallResult:
  case PfgNodeKind::NewObject:
    Out += formatStr("#%u ", N.CallSite);
    Out += N.Callee ? N.Callee->Name
                    : (N.Kind == PfgNodeKind::NewObject ? "<default-ctor>"
                                                        : "?");
    break;
  case PfgNodeKind::FieldRead:
  case PfgNodeKind::FieldWrite:
    Out += " ." + N.FieldName;
    break;
  default:
    break;
  }
  return Out;
}

std::string Pfg::str() const {
  std::string Out =
      formatStr("pfg for %s: %u nodes, %u edges\n",
                Method ? Method->qualifiedName().c_str() : "<unknown>",
                nodeCount(), edgeCount());
  for (PfgNodeId Id = 0; Id != nodeCount(); ++Id) {
    Out += formatStr("  n%u: %s", Id, describe(Id).c_str());
    if (node(Id).Class)
      Out += " : " + node(Id).Class->Name;
    if (node(Id).ReceiverNode != NoPfgNode)
      Out += formatStr(" (recv n%u)", node(Id).ReceiverNode);
    Out += "\n";
    for (PfgEdgeId E : outEdges(Id))
      Out += formatStr("    -> n%u\n", edge(E).To);
  }
  return Out;
}

std::string Pfg::dot() const {
  std::string Out = "digraph pfg {\n  rankdir=TB;\n  node [shape=box, "
                    "fontname=\"Helvetica\"];\n";
  for (PfgNodeId Id = 0; Id != nodeCount(); ++Id) {
    std::string Shape;
    switch (node(Id).Kind) {
    case PfgNodeKind::Split:
    case PfgNodeKind::Merge:
    case PfgNodeKind::Join:
      Shape = ", shape=ellipse";
      break;
    case PfgNodeKind::ParamPre:
    case PfgNodeKind::ParamPost:
    case PfgNodeKind::Result:
      Shape = ", style=bold";
      break;
    default:
      break;
    }
    Out += formatStr("  n%u [label=\"%s\"%s];\n", Id, describe(Id).c_str(),
                     Shape.c_str());
  }
  for (const PfgEdge &E : Edges)
    Out += formatStr("  n%u -> n%u;\n", E.From, E.To);
  // Dotted receiver links of field accesses (Figure 7).
  for (PfgNodeId Id = 0; Id != nodeCount(); ++Id)
    if (node(Id).ReceiverNode != NoPfgNode)
      Out += formatStr("  n%u -> n%u [style=dotted, arrowhead=none];\n", Id,
                       node(Id).ReceiverNode);
  Out += "}\n";
  return Out;
}
