//===- PfgBuilder.h - Build PFGs from the action IR --------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#ifndef ANEK_PFG_PFGBUILDER_H
#define ANEK_PFG_PFGBUILDER_H

#include "analysis/Ir.h"
#include "pfg/Pfg.h"

namespace anek {

/// Builds the Permissions Flow Graph for \p Ir (paper Section 3.1).
///
/// The construction walks the control-flow graph forward, tracking for
/// every object-typed local the PFG node currently holding its
/// permission (reassignment through copies is the local must-alias
/// tracking the paper describes). Calls introduce split and merge nodes,
/// field accesses introduce source/sink nodes, control-flow merges
/// introduce join nodes, and loop heads join with their back edges.
///
/// Deliberately (paper Section 4.2/4.3): the PFG is *not* branch
/// sensitive — @TrueIndicates information is ignored here even though the
/// PLURAL checker uses it. This is the documented cause of ANEK's fourth
/// PMD warning.
Pfg buildPfg(const MethodIr &Ir);

} // namespace anek

#endif // ANEK_PFG_PFGBUILDER_H
