//===- Summary.h - Probabilistic method summaries ----------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Probabilistic method summaries (paper Section 3.4): per interface
/// target (receiver pre/post, each parameter pre/post, result) a vector of
/// Bernoulli marginals over [5 permission kinds, then the class's abstract
/// states]. A summary pools three evidence sources by odds
/// multiplication, mirroring the pointwise product of the joint model
/// (Definition 1):
///   - the declared-spec prior (B(0.9)/B(0.1), Section 3.2),
///   - evidence from solving the method's own PFG, and
///   - evidence from every call site referencing the method.
/// Call-site application uses the cavity principle: the prior applied at a
/// site excludes that site's own previous contribution, so evidence is
/// never echoed back.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_INFER_SUMMARY_H
#define ANEK_INFER_SUMMARY_H

#include "lang/Ast.h"
#include "perm/PermKind.h"
#include "perm/Spec.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace anek {

/// Identifies one call site contributing evidence: the calling method and
/// its call-site index within that caller's PFG.
using CallSiteKey = std::pair<const MethodDecl *, uint32_t>;

/// Orders call-site keys by (caller declaration index, site index). The
/// pooled odds product is a float reduction over the site map, so its
/// iteration order is part of the result: pointer order would make
/// summaries (and every downstream spec) vary with ASLR.
struct CallSiteOrder {
  bool operator()(const CallSiteKey &A, const CallSiteKey &B) const {
    unsigned AI = A.first ? A.first->DeclIndex : 0;
    unsigned BI = B.first ? B.first->DeclIndex : 0;
    if (AI != BI)
      return AI < BI;
    if (A.second != B.second)
      return A.second < B.second;
    return A.first < B.first; // Hand-built ASTs Sema never numbered.
  }
};

/// Read access to TargetSummary's evidence internals for the wire codec
/// (SummaryIO.cpp). Serialization must see the raw odds multipliers, not
/// the pooled probabilities: pooling is a lossy float reduction, and the
/// shard determinism contract needs the exact operands to cross the
/// process boundary bit-for-bit.
struct SummaryWireAccess;

/// Evidence-pooled marginals for one interface target.
class TargetSummary {
public:
  TargetSummary() = default;
  /// \p Class provides the state list (may be null: kinds only).
  explicit TargetSummary(TypeDecl *Class);

  /// Number of tracked variables (5 kinds + states).
  size_t size() const { return DeclaredPrior.size(); }

  /// State names aligned with entries [NumPermKinds...].
  const std::vector<std::string> &states() const { return States; }

  /// Seeds the declared-spec prior (paper Section 3.2).
  void setDeclaredPrior(const std::optional<PermState> &PS, double Hi,
                        double Lo);

  /// Replaces the own-body evidence (as odds multipliers).
  /// Returns the largest absolute change in pooled probability.
  double setSelfOdds(std::vector<double> Odds);

  /// Replaces one call site's evidence. Returns the largest absolute
  /// change in pooled probability.
  double setSiteOdds(CallSiteKey Site, std::vector<double> Odds);

  /// Pooled probabilities including every evidence source.
  std::vector<double> pooled() const;

  /// Pooled probabilities excluding the method's own-body evidence (the
  /// prior to apply at the method's interface nodes before re-solving).
  std::vector<double> pooledWithoutSelf() const;

  /// Pooled probabilities excluding one call site's evidence (the cavity
  /// prior to apply at that site's nodes).
  std::vector<double> pooledWithoutSite(CallSiteKey Site) const;

private:
  friend struct SummaryWireAccess;

  std::vector<double> pool(const std::vector<double> *SkipOdds,
                           const CallSiteKey *SkipSite) const;

  std::vector<std::string> States;
  std::vector<double> DeclaredPrior; ///< Probabilities.
  std::vector<double> SelfOdds;      ///< Odds multipliers (1 = neutral).
  /// Per-site odds in declaration-index order (see CallSiteOrder: the
  /// pooling product must not depend on pointer values).
  std::map<CallSiteKey, std::vector<double>, CallSiteOrder> SiteOdds;
};

/// Summary of one method across every interface target.
struct MethodSummary {
  std::optional<TargetSummary> RecvPre;
  std::optional<TargetSummary> RecvPost;
  std::vector<std::optional<TargetSummary>> ParamPre;
  std::vector<std::optional<TargetSummary>> ParamPost;
  std::optional<TargetSummary> Result;

  /// Builds a summary skeleton for \p Method, seeding declared-spec
  /// priors. Targets exist for every object-typed parameter/receiver and
  /// the result when its type is a class.
  static MethodSummary forMethod(const MethodDecl &Method, double Hi,
                                 double Lo);
};

/// Converts probability to odds with clamping (odds of 0.5 are 1).
double probToOdds(double P);
/// Converts odds back to probability.
double oddsToProb(double Odds);

/// Extracts a deterministic spec from pooled marginals (paper Fig. 9,
/// lines 22-29): per target take the most likely kind and state; emit an
/// atom only when the winning kind exceeds threshold \p T; attach the
/// winning state when it also exceeds \p T and is not ALIVE.
MethodSpec extractSpec(const MethodSummary &Summary, unsigned NumParams,
                       double T);

/// The single-target core of extractSpec, reusable by the global and
/// logical inference modes: \p P is laid out [kinds..., states...].
/// \p PreferUnique implements the paper's "as returned permissions go,
/// unique is the best choice whenever possible": when unique and the
/// winning kind both clear the threshold and are nearly tied, unique is
/// chosen. Used for result targets.
std::optional<PermState>
extractPermState(const std::vector<double> &P,
                 const std::vector<std::string> &States, double T,
                 bool PreferUnique = false);

} // namespace anek

#endif // ANEK_INFER_SUMMARY_H
