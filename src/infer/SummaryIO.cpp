//===- SummaryIO.cpp - Versioned wire codec for summaries ------------------===//

#include "infer/SummaryIO.h"

#include "support/WireFormat.h"

#include <map>

using namespace anek;
using namespace anek::summaryio;

namespace anek {

// The codec's window into TargetSummary (friend; see Summary.h).
struct SummaryWireAccess {
  static const std::vector<double> &selfOdds(const TargetSummary &T) {
    return T.SelfOdds;
  }
  static const std::map<CallSiteKey, std::vector<double>, CallSiteOrder> &
  siteOdds(const TargetSummary &T) {
    return T.SiteOdds;
  }
};

} // namespace anek

namespace {

/// "ANEKSUM1" as a little-endian u64.
constexpr uint64_t BlobMagic = 0x314D55534B454E41ULL;
/// magic(8) + version(4) + kind(4) + length(8) + checksum(8).
constexpr size_t HeaderBytes = 32;

Status corrupt(const std::string &What) {
  return Status::error(ErrorCode::InvalidArgument,
                       "summary blob rejected: " + What);
}

//===----------------------------------------------------------------------===//
// Snapshot payload
//===----------------------------------------------------------------------===//

void encodeTarget(wire::Writer &W,
                  const std::optional<TargetSummary> &Target) {
  W.u8(Target.has_value() ? 1 : 0);
  if (!Target)
    return;
  W.u32(static_cast<uint32_t>(Target->size()));
  const std::vector<double> &Self = SummaryWireAccess::selfOdds(*Target);
  W.u32(static_cast<uint32_t>(Self.size()));
  for (double O : Self)
    W.f64(O);
  const auto &Sites = SummaryWireAccess::siteOdds(*Target);
  W.u32(static_cast<uint32_t>(Sites.size()));
  for (const auto &[Site, Odds] : Sites) {
    W.u32(Site.first ? Site.first->DeclIndex : 0);
    W.u32(Site.second);
    for (double O : Odds)
      W.f64(O);
  }
}

/// Decl-index lookup built from the store's own keys: snapshots may only
/// reference methods both sides know about.
using DeclLookup = std::map<uint32_t, const MethodDecl *>;

Status decodeTarget(wire::Reader &R, std::optional<TargetSummary> &Target,
                    const DeclLookup &Decls, const std::string &Where) {
  uint8_t Present = 0;
  if (!R.u8(Present))
    return corrupt("truncated at " + Where);
  if ((Present != 0) != Target.has_value())
    return corrupt("target presence mismatch at " + Where +
                   " (the snapshot and the local program disagree about "
                   "which interface positions are object-typed)");
  if (!Present)
    return Status::ok();

  uint32_t Size = 0;
  if (!R.u32(Size))
    return corrupt("truncated at " + Where);
  if (Size != Target->size())
    return corrupt("target arity mismatch at " + Where + " (snapshot says " +
                   std::to_string(Size) + " variables, local summary has " +
                   std::to_string(Target->size()) + ")");

  uint32_t SelfCount = 0;
  if (!R.count(SelfCount, 8))
    return corrupt("truncated self odds at " + Where);
  if (SelfCount != 0 && SelfCount != Size)
    return corrupt("self odds arity mismatch at " + Where);
  if (SelfCount != 0) {
    std::vector<double> Odds(SelfCount);
    for (double &O : Odds)
      if (!R.f64(O))
        return corrupt("truncated self odds at " + Where);
    Target->setSelfOdds(std::move(Odds));
  }

  uint32_t SiteCount = 0;
  if (!R.count(SiteCount, 8))
    return corrupt("truncated site list at " + Where);
  for (uint32_t I = 0; I != SiteCount; ++I) {
    uint32_t CallerIndex = 0, SiteIndex = 0;
    if (!R.u32(CallerIndex) || !R.u32(SiteIndex))
      return corrupt("truncated site key at " + Where);
    auto Caller = Decls.find(CallerIndex);
    if (Caller == Decls.end())
      return corrupt("site at " + Where + " references unknown method #" +
                     std::to_string(CallerIndex));
    std::vector<double> Odds(Size);
    for (double &O : Odds)
      if (!R.f64(O))
        return corrupt("truncated site odds at " + Where);
    Target->setSiteOdds({Caller->second, SiteIndex}, std::move(Odds));
  }
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// Outcome payload
//===----------------------------------------------------------------------===//

void encodeSolveReport(wire::Writer &W, const SolveReport &Solve) {
  W.u8(Solve.Converged ? 1 : 0);
  W.f64(Solve.Residual);
  W.u64(Solve.Iterations);
  W.f64(Solve.Seconds);
  W.u8(Solve.DeadlineExpired ? 1 : 0);
  W.u64(Solve.Updates);
  W.u64(Solve.SkippedUpdates);
  W.str(Solve.Reason);
}

bool decodeSolveReport(wire::Reader &R, SolveReport &Solve) {
  uint8_t Converged = 0, DeadlineExpired = 0;
  uint64_t Iterations = 0;
  bool Ok = R.u8(Converged) && R.f64(Solve.Residual) && R.u64(Iterations) &&
            R.f64(Solve.Seconds) && R.u8(DeadlineExpired) &&
            R.u64(Solve.Updates) && R.u64(Solve.SkippedUpdates) &&
            R.str(Solve.Reason);
  Solve.Converged = Converged != 0;
  Solve.DeadlineExpired = DeadlineExpired != 0;
  Solve.Iterations = static_cast<unsigned>(Iterations);
  return Ok;
}

void encodeUpdate(wire::Writer &W, const SummaryUpdate &U) {
  W.u32(U.OwnerDeclIndex);
  W.u8(static_cast<uint8_t>(U.Role));
  W.u32(U.ParamIndex);
  W.u8(U.IsSelf ? 1 : 0);
  W.u32(U.SiteCallerDeclIndex);
  W.u32(U.SiteIndex);
  W.u32(static_cast<uint32_t>(U.Odds.size()));
  for (double O : U.Odds)
    W.f64(O);
  W.str(U.DebugLine);
}

bool decodeUpdate(wire::Reader &R, SummaryUpdate &U) {
  uint8_t Role = 0, IsSelf = 0;
  if (!(R.u32(U.OwnerDeclIndex) && R.u8(Role) && R.u32(U.ParamIndex) &&
        R.u8(IsSelf) && R.u32(U.SiteCallerDeclIndex) && R.u32(U.SiteIndex)))
    return false;
  if (Role > static_cast<uint8_t>(SummaryTargetRole::Result))
    return false;
  U.Role = static_cast<SummaryTargetRole>(Role);
  U.IsSelf = IsSelf != 0;
  uint32_t OddsCount = 0;
  if (!R.count(OddsCount, 8))
    return false;
  U.Odds.resize(OddsCount);
  for (double &O : U.Odds)
    if (!R.f64(O))
      return false;
  return R.str(U.DebugLine);
}

} // namespace

//===----------------------------------------------------------------------===//
// Envelope
//===----------------------------------------------------------------------===//

std::string summaryio::sealBlob(BlobKind Kind, std::string Payload) {
  wire::Writer W;
  W.u64(BlobMagic);
  W.u32(WireVersion);
  W.u32(static_cast<uint32_t>(Kind));
  W.u64(Payload.size());
  W.u64(wire::fnv1a64(Payload));
  std::string Blob = W.take();
  Blob += Payload;
  return Blob;
}

Expected<std::string> summaryio::openBlob(std::string_view Blob,
                                          BlobKind ExpectKind) {
  if (Blob.size() < HeaderBytes)
    return corrupt("truncated header (" + std::to_string(Blob.size()) +
                   " of " + std::to_string(HeaderBytes) + " bytes)");
  wire::Reader R(Blob.substr(0, HeaderBytes));
  uint64_t Magic = 0, Length = 0, Checksum = 0;
  uint32_t Version = 0, Kind = 0;
  R.u64(Magic);
  R.u32(Version);
  R.u32(Kind);
  R.u64(Length);
  R.u64(Checksum);
  if (Magic != BlobMagic)
    return corrupt("bad magic");
  if (Version != WireVersion)
    return corrupt("unsupported wire version " + std::to_string(Version) +
                   " (this build speaks version " +
                   std::to_string(WireVersion) + ")");
  if (Kind != static_cast<uint32_t>(ExpectKind))
    return corrupt("unexpected blob kind " + std::to_string(Kind) +
                   " (want " +
                   std::to_string(static_cast<uint32_t>(ExpectKind)) + ")");
  if (Length > MaxBlobBytes)
    return Status::error(ErrorCode::ResourceExhausted,
                         "summary blob rejected: declared payload of " +
                             std::to_string(Length) + " bytes exceeds the " +
                             std::to_string(MaxBlobBytes) + "-byte cap");
  if (Length != Blob.size() - HeaderBytes)
    return corrupt("payload length mismatch (header declares " +
                   std::to_string(Length) + " bytes, " +
                   std::to_string(Blob.size() - HeaderBytes) + " present)");
  std::string_view Payload = Blob.substr(HeaderBytes);
  if (wire::fnv1a64(Payload) != Checksum)
    return corrupt("checksum mismatch (payload corrupted in flight)");
  return std::string(Payload);
}

const char *summaryio::summaryTargetRoleName(SummaryTargetRole Role) {
  switch (Role) {
  case SummaryTargetRole::RecvPre:
    return "recv-pre";
  case SummaryTargetRole::RecvPost:
    return "recv-post";
  case SummaryTargetRole::ParamPre:
    return "param-pre";
  case SummaryTargetRole::ParamPost:
    return "param-post";
  case SummaryTargetRole::Result:
    return "result";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// Snapshot
//===----------------------------------------------------------------------===//

std::string
summaryio::encodeSnapshot(const MethodDeclMap<MethodSummary> &Summaries) {
  wire::Writer W;
  W.u32(static_cast<uint32_t>(Summaries.size()));
  for (const auto &[Method, Summary] : Summaries) {
    W.u32(Method->DeclIndex);
    encodeTarget(W, Summary.RecvPre);
    encodeTarget(W, Summary.RecvPost);
    W.u32(static_cast<uint32_t>(Summary.ParamPre.size()));
    for (const auto &Target : Summary.ParamPre)
      encodeTarget(W, Target);
    W.u32(static_cast<uint32_t>(Summary.ParamPost.size()));
    for (const auto &Target : Summary.ParamPost)
      encodeTarget(W, Target);
    encodeTarget(W, Summary.Result);
  }
  return sealBlob(BlobKind::Snapshot, W.take());
}

Status summaryio::decodeSnapshot(std::string_view Blob,
                                 MethodDeclMap<MethodSummary> &Summaries) {
  Expected<std::string> Payload = openBlob(Blob, BlobKind::Snapshot);
  if (!Payload)
    return Payload.status();

  DeclLookup Decls;
  for (const auto &[Method, Summary] : Summaries)
    Decls.emplace(Method->DeclIndex, Method);

  wire::Reader R(*Payload);
  uint32_t MethodCount = 0;
  if (!R.count(MethodCount, 4))
    return corrupt("truncated method count");
  if (MethodCount != Summaries.size())
    return corrupt("method count mismatch (snapshot has " +
                   std::to_string(MethodCount) + ", local store has " +
                   std::to_string(Summaries.size()) + ")");
  for (uint32_t I = 0; I != MethodCount; ++I) {
    uint32_t DeclIndex = 0;
    if (!R.u32(DeclIndex))
      return corrupt("truncated method record");
    auto Decl = Decls.find(DeclIndex);
    if (Decl == Decls.end())
      return corrupt("snapshot references unknown method #" +
                     std::to_string(DeclIndex));
    MethodSummary &Summary = Summaries[Decl->second];
    const std::string Where = Decl->second->qualifiedName();
    if (Status S = decodeTarget(R, Summary.RecvPre, Decls, Where + "/recv-pre");
        !S)
      return S;
    if (Status S =
            decodeTarget(R, Summary.RecvPost, Decls, Where + "/recv-post");
        !S)
      return S;
    for (auto [Vec, Tag] :
         {std::pair(&Summary.ParamPre, "/param-pre"),
          std::pair(&Summary.ParamPost, "/param-post")}) {
      uint32_t ParamCount = 0;
      if (!R.count(ParamCount, 1))
        return corrupt("truncated parameter count at " + Where);
      if (ParamCount != Vec->size())
        return corrupt("parameter count mismatch at " + Where + Tag);
      for (uint32_t P = 0; P != ParamCount; ++P)
        if (Status S = decodeTarget(R, (*Vec)[P], Decls,
                                    Where + Tag + "#" + std::to_string(P));
            !S)
          return S;
    }
    if (Status S = decodeTarget(R, Summary.Result, Decls, Where + "/result");
        !S)
      return S;
  }
  if (!R.done())
    return corrupt("trailing bytes after the last method record");
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// Outcomes
//===----------------------------------------------------------------------===//

std::string
summaryio::encodeOutcomes(const std::vector<ShardMethodOutcome> &Outcomes) {
  wire::Writer W;
  W.u32(static_cast<uint32_t>(Outcomes.size()));
  for (const ShardMethodOutcome &O : Outcomes) {
    W.u32(O.DeclIndex);
    W.u8(O.Failed ? 1 : 0);
    W.str(O.Error);
    W.u8(O.SolverUsed);
    W.u8(O.FallbackUsed ? 1 : 0);
    W.str(O.Reason);
    encodeSolveReport(W, O.Solve);
    W.u32(O.Solves);
    W.u64(O.Variables);
    W.u64(O.Factors);
    W.f64(O.SolveSeconds);
    W.u32(static_cast<uint32_t>(O.Updates.size()));
    for (const SummaryUpdate &U : O.Updates)
      encodeUpdate(W, U);
  }
  return sealBlob(BlobKind::Outcomes, W.take());
}

Expected<std::vector<ShardMethodOutcome>>
summaryio::decodeOutcomes(std::string_view Blob) {
  Expected<std::string> Payload = openBlob(Blob, BlobKind::Outcomes);
  if (!Payload)
    return Payload.status();
  wire::Reader R(*Payload);
  uint32_t Count = 0;
  if (!R.count(Count, 4))
    return corrupt("truncated outcome count");
  std::vector<ShardMethodOutcome> Outcomes(Count);
  for (ShardMethodOutcome &O : Outcomes) {
    uint8_t Failed = 0, FallbackUsed = 0;
    if (!(R.u32(O.DeclIndex) && R.u8(Failed) && R.str(O.Error) &&
          R.u8(O.SolverUsed) && R.u8(FallbackUsed) && R.str(O.Reason)))
      return corrupt("truncated outcome record");
    O.Failed = Failed != 0;
    O.FallbackUsed = FallbackUsed != 0;
    if (!decodeSolveReport(R, O.Solve))
      return corrupt("truncated solve report");
    uint64_t Variables = 0, Factors = 0;
    if (!(R.u32(O.Solves) && R.u64(Variables) && R.u64(Factors) &&
          R.f64(O.SolveSeconds)))
      return corrupt("truncated outcome statistics");
    O.Variables = Variables;
    O.Factors = Factors;
    uint32_t UpdateCount = 0;
    if (!R.count(UpdateCount, 16))
      return corrupt("truncated update count");
    O.Updates.resize(UpdateCount);
    for (SummaryUpdate &U : O.Updates)
      if (!decodeUpdate(R, U))
        return corrupt("truncated summary update");
  }
  if (!R.done())
    return corrupt("trailing bytes after the last outcome");
  return Outcomes;
}

//===----------------------------------------------------------------------===//
// Cache entries
//===----------------------------------------------------------------------===//

std::string summaryio::encodeCacheEntry(uint64_t Key,
                                        const CachedSolve &Entry) {
  wire::Writer W;
  W.u64(Key);
  W.u8(Entry.SolverUsed);
  W.u8(Entry.FallbackUsed ? 1 : 0);
  W.str(Entry.Reason);
  encodeSolveReport(W, Entry.Solve);
  W.u32(Entry.Solves);
  W.u64(Entry.Variables);
  W.u64(Entry.Factors);
  W.f64(Entry.SolveSeconds);
  W.u32(static_cast<uint32_t>(Entry.Updates.size()));
  for (const CachedUpdate &U : Entry.Updates) {
    W.str(U.OwnerName);
    W.u8(U.Role);
    W.u32(U.ParamIndex);
    W.u8(U.IsSelf ? 1 : 0);
    W.str(U.SiteCallerName);
    W.u32(U.SiteIndex);
    W.u32(static_cast<uint32_t>(U.Odds.size()));
    for (double O : U.Odds)
      W.f64(O);
    W.str(U.DebugLine);
  }
  return sealBlob(BlobKind::CacheEntry, W.take());
}

Expected<CachedSolve> summaryio::decodeCacheEntry(std::string_view Blob,
                                                  uint64_t ExpectKey) {
  Expected<std::string> Payload = openBlob(Blob, BlobKind::CacheEntry);
  if (!Payload)
    return Payload.status();
  wire::Reader R(*Payload);
  uint64_t Key = 0;
  if (!R.u64(Key))
    return corrupt("truncated cache key");
  if (Key != ExpectKey)
    return corrupt("cache key echo mismatch (entry filed under a "
                   "different content key)");
  CachedSolve Entry;
  uint8_t FallbackUsed = 0;
  if (!(R.u8(Entry.SolverUsed) && R.u8(FallbackUsed) && R.str(Entry.Reason)))
    return corrupt("truncated cache entry header");
  Entry.FallbackUsed = FallbackUsed != 0;
  if (!decodeSolveReport(R, Entry.Solve))
    return corrupt("truncated cached solve report");
  if (!(R.u32(Entry.Solves) && R.u64(Entry.Variables) &&
        R.u64(Entry.Factors) && R.f64(Entry.SolveSeconds)))
    return corrupt("truncated cache entry statistics");
  uint32_t UpdateCount = 0;
  if (!R.count(UpdateCount, 16))
    return corrupt("truncated cached update count");
  Entry.Updates.resize(UpdateCount);
  for (CachedUpdate &U : Entry.Updates) {
    uint8_t IsSelf = 0;
    if (!(R.str(U.OwnerName) && R.u8(U.Role) && R.u32(U.ParamIndex) &&
          R.u8(IsSelf) && R.str(U.SiteCallerName) && R.u32(U.SiteIndex)))
      return corrupt("truncated cached update");
    if (U.Role > static_cast<uint8_t>(SummaryTargetRole::Result))
      return corrupt("cached update role out of range");
    U.IsSelf = IsSelf != 0;
    uint32_t OddsCount = 0;
    if (!R.count(OddsCount, 8))
      return corrupt("truncated cached odds count");
    U.Odds.resize(OddsCount);
    for (double &O : U.Odds)
      if (!R.f64(O))
        return corrupt("truncated cached odds");
    if (!R.str(U.DebugLine))
      return corrupt("truncated cached debug line");
  }
  if (!R.done())
    return corrupt("trailing bytes after the last cached update");
  return Entry;
}
