//===- SolveCache.h - Content-addressed SOLVE memoization --------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine-side interface of the incremental summary cache. The engine
/// memoizes individual SOLVE invocations: before analyzing a method it
/// computes a key that digests *every* input the solve depends on — the
/// method's token stream, the transitive content of its callees' SCCs,
/// the algorithm options, the per-method solver seed, and the exact bit
/// patterns of the pooled summary odds applied as priors — and asks the
/// cache. A hit replays the stored evidence byte-identically (the key
/// guarantees the solve would have produced exactly those bytes); a miss
/// solves and stores. Because the applied-prior bit patterns are part of
/// the key, dirtiness needs no separate propagation protocol: editing a
/// method changes its SCC's content hash, which changes the chain hashes
/// of every transitive caller, so exactly the reachable waves miss.
///
/// The interface lives in src/infer (like WaveShardExecutor) so the
/// engine does not depend on the storage backend; the on-disk
/// implementation is src/cache/SummaryCache, injected by the driver.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_INFER_SOLVECACHE_H
#define ANEK_INFER_SOLVECACHE_H

#include "factor/Solvers.h"

#include <cstdint>
#include <string>
#include <vector>

namespace anek {

/// One deferred summary update in cache form: the durable image of the
/// engine's PendingUpdate. Methods and call-site owners are named by
/// qualified name — not declaration index — so an entry stays replayable
/// after an edit elsewhere in the file shifts every index.
struct CachedUpdate {
  std::string OwnerName;
  /// summaryio::SummaryTargetRole as its enum value.
  uint8_t Role = 0;
  /// Parameter position for the Param* roles; 0 otherwise.
  uint32_t ParamIndex = 0;
  /// True: own-body evidence (setSelfOdds). False: call-site evidence.
  bool IsSelf = true;
  /// Qualified name of the calling method for site evidence; empty when
  /// IsSelf.
  std::string SiteCallerName;
  uint32_t SiteIndex = 0;
  /// Odds multipliers, one per tracked variable of the target.
  std::vector<double> Odds;
  /// ANEK_DEBUG_EVIDENCE annotation, replayed for byte-identical output.
  std::string DebugLine;
};

/// Everything one successful SOLVE invocation produced: the MethodReport
/// mirror plus the deferred updates and accounting, exactly the shape of
/// summaryio::ShardMethodOutcome minus the failure fields (failed solves
/// are never cached — a failure must re-run, not replay).
struct CachedSolve {
  uint8_t SolverUsed = 0; ///< SolverChoice as its enum value.
  bool FallbackUsed = false;
  std::string Reason;
  SolveReport Solve;
  uint32_t Solves = 0;
  uint64_t Variables = 0;
  uint64_t Factors = 0;
  double SolveSeconds = 0.0;
  std::vector<CachedUpdate> Updates;
};

/// Lookup classification, kept distinct so the run's accounting can tell
/// "never seen" from "seen but edited" from "entry rotted on disk". All
/// three non-Hit outcomes mean the same thing operationally: solve it.
enum class CacheLookup {
  Hit,         ///< Key matched; \p Out is the replayable entry.
  Miss,        ///< Nothing cached under this method name.
  Invalidated, ///< Cached under a different key: content changed.
  Corrupt,     ///< Entry exists but failed checksum/version/decode.
};

/// Storage interface the engine calls through. Implementations must be
/// thread-safe: wave workers of one run — and concurrent batch requests
/// sharing a cache directory — look up and store concurrently.
class SolveCache {
public:
  virtual ~SolveCache() = default;

  /// Looks up the entry for \p MethodName under content key \p Key.
  virtual CacheLookup lookup(const std::string &MethodName, uint64_t Key,
                             CachedSolve &Out) = 0;

  /// Stores \p Entry for \p MethodName under \p Key, replacing any entry
  /// cached under an older key. Storage failures are absorbed (a cache
  /// that cannot persist degrades to misses, never to errors).
  virtual void store(const std::string &MethodName, uint64_t Key,
                     const CachedSolve &Entry) = 0;
};

/// Per-run cache accounting, carried in InferResult.
struct CacheStats {
  unsigned Hits = 0;
  unsigned Misses = 0;
  /// Lookups that found an entry under a stale key (content changed) plus
  /// hits whose replay failed validation against the current program.
  unsigned Invalidated = 0;
  /// Entries that failed envelope/decode validation (classified as
  /// misses, never as errors — see DESIGN.md).
  unsigned Corrupt = 0;
  unsigned Stores = 0;
};

} // namespace anek

#endif // ANEK_INFER_SOLVECACHE_H
