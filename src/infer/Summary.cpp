//===- Summary.cpp - Probabilistic method summaries ------------------------===//

#include "infer/Summary.h"

#include "perm/StateSpace.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace anek;

double anek::probToOdds(double P) {
  constexpr double Eps = 1e-9;
  P = std::clamp(P, Eps, 1.0 - Eps);
  return P / (1.0 - P);
}

double anek::oddsToProb(double Odds) {
  constexpr double Cap = 1e9;
  Odds = std::clamp(Odds, 1.0 / Cap, Cap);
  return Odds / (1.0 + Odds);
}

TargetSummary::TargetSummary(TypeDecl *Class) {
  if (Class)
    States = Class->States.names();
  DeclaredPrior.assign(NumPermKinds + States.size(), 0.5);
  SelfOdds.assign(DeclaredPrior.size(), 1.0);
}

void TargetSummary::setDeclaredPrior(const std::optional<PermState> &PS,
                                     double Hi, double Lo) {
  if (!PS)
    return;
  for (unsigned K = 0; K != NumPermKinds; ++K)
    DeclaredPrior[K] =
        static_cast<PermKind>(K) == PS->Kind ? Hi : Lo;
  const std::string &Wanted =
      PS->State.empty() ? std::string(AliveStateName) : PS->State;
  for (size_t S = 0; S != States.size(); ++S)
    DeclaredPrior[NumPermKinds + S] = States[S] == Wanted ? Hi : Lo;
}

static double maxDelta(const std::vector<double> &A,
                       const std::vector<double> &B) {
  double Delta = 0.0;
  for (size_t I = 0, E = std::min(A.size(), B.size()); I != E; ++I)
    Delta = std::max(Delta, std::fabs(A[I] - B[I]));
  return Delta;
}

double TargetSummary::setSelfOdds(std::vector<double> Odds) {
  Odds.resize(size(), 1.0);
  std::vector<double> Before = pooled();
  SelfOdds = std::move(Odds);
  return maxDelta(Before, pooled());
}

double TargetSummary::setSiteOdds(CallSiteKey Site,
                                  std::vector<double> Odds) {
  Odds.resize(size(), 1.0);
  std::vector<double> Before = pooled();
  SiteOdds[Site] = std::move(Odds);
  return maxDelta(Before, pooled());
}

std::vector<double> TargetSummary::pool(const std::vector<double> *SkipOdds,
                                        const CallSiteKey *SkipSite) const {
  std::vector<double> Out(size());
  for (size_t I = 0; I != size(); ++I) {
    double Odds = probToOdds(DeclaredPrior[I]);
    if (SkipOdds != &SelfOdds && I < SelfOdds.size())
      Odds *= SelfOdds[I];
    for (const auto &[Site, Vec] : SiteOdds) {
      if (SkipSite && Site == *SkipSite)
        continue;
      if (I < Vec.size())
        Odds *= Vec[I];
    }
    Out[I] = oddsToProb(Odds);
  }
  return Out;
}

std::vector<double> TargetSummary::pooled() const {
  return pool(nullptr, nullptr);
}

std::vector<double> TargetSummary::pooledWithoutSelf() const {
  return pool(&SelfOdds, nullptr);
}

std::vector<double>
TargetSummary::pooledWithoutSite(CallSiteKey Site) const {
  return pool(nullptr, &Site);
}

MethodSummary MethodSummary::forMethod(const MethodDecl &Method, double Hi,
                                       double Lo) {
  MethodSummary Summary;
  const MethodSpec &Spec = Method.DeclaredSpec;
  bool HasSpec = Method.HasDeclaredSpec;

  if (!Method.IsStatic && Method.Owner) {
    Summary.RecvPre.emplace(Method.Owner);
    Summary.RecvPost.emplace(Method.Owner);
    if (HasSpec) {
      Summary.RecvPre->setDeclaredPrior(Spec.ReceiverPre, Hi, Lo);
      Summary.RecvPost->setDeclaredPrior(Spec.ReceiverPost, Hi, Lo);
    }
  }

  unsigned NumParams = static_cast<unsigned>(Method.Params.size());
  Summary.ParamPre.resize(NumParams);
  Summary.ParamPost.resize(NumParams);
  for (unsigned I = 0; I != NumParams; ++I) {
    const ParamDecl &Param = Method.Params[I];
    if (!Param.Type.isClass() || !Param.Type.Decl)
      continue;
    Summary.ParamPre[I].emplace(Param.Type.Decl);
    Summary.ParamPost[I].emplace(Param.Type.Decl);
    if (HasSpec && I < Spec.ParamPre.size()) {
      Summary.ParamPre[I]->setDeclaredPrior(Spec.ParamPre[I], Hi, Lo);
      Summary.ParamPost[I]->setDeclaredPrior(Spec.ParamPost[I], Hi, Lo);
    }
  }

  // Constructors "return" their receiver post; model the result as the
  // receiver-post target so call sites (NewObject nodes) read it.
  if (Method.IsCtor) {
    Summary.Result.emplace(Method.Owner);
    if (HasSpec && Spec.ReceiverPost)
      Summary.Result->setDeclaredPrior(Spec.ReceiverPost, Hi, Lo);
  } else if (Method.ReturnType.isClass() && Method.ReturnType.Decl) {
    Summary.Result.emplace(Method.ReturnType.Decl);
    if (HasSpec)
      Summary.Result->setDeclaredPrior(Spec.Result, Hi, Lo);
  }
  return Summary;
}

std::optional<PermState>
anek::extractPermState(const std::vector<double> &P,
                       const std::vector<std::string> &States, double T,
                       bool PreferUnique) {
  assert(P.size() >= NumPermKinds && "marginal vector too short");
  unsigned BestKind = 0;
  for (unsigned K = 1; K != NumPermKinds; ++K)
    if (P[K] > P[BestKind])
      BestKind = K;
  if (P[BestKind] <= T)
    return std::nullopt;
  // "Unique is the best choice whenever possible" for returned values.
  constexpr unsigned UniqueIndex = static_cast<unsigned>(PermKind::Unique);
  if (PreferUnique && BestKind != UniqueIndex && P[UniqueIndex] > T &&
      P[BestKind] - P[UniqueIndex] < 0.1)
    BestKind = UniqueIndex;

  PermState Out;
  Out.Kind = static_cast<PermKind>(BestKind);
  if (!States.empty() && P.size() >= NumPermKinds + States.size()) {
    size_t BestState = 0;
    for (size_t S = 1; S != States.size(); ++S)
      if (P[NumPermKinds + S] > P[NumPermKinds + BestState])
        BestState = S;
    if (P[NumPermKinds + BestState] > T &&
        States[BestState] != AliveStateName)
      Out.State = States[BestState];
  }
  return Out;
}

/// Picks the winning kind/state of one pooled vector, or nothing when the
/// winner does not clear the threshold.
static std::optional<PermState>
extractTarget(const TargetSummary &Summary, double T,
              bool PreferUnique = false) {
  return extractPermState(Summary.pooled(), Summary.states(), T,
                          PreferUnique);
}

MethodSpec anek::extractSpec(const MethodSummary &Summary,
                             unsigned NumParams, double T) {
  assert(T >= 0.5 && T < 1.0 && "threshold t must be in [0.5, 1)");
  MethodSpec Spec;
  Spec.resizeParams(NumParams);
  if (Summary.RecvPre)
    Spec.ReceiverPre = extractTarget(*Summary.RecvPre, T);
  if (Summary.RecvPost)
    Spec.ReceiverPost = extractTarget(*Summary.RecvPost, T);
  for (unsigned I = 0; I != NumParams && I < Summary.ParamPre.size(); ++I)
    if (Summary.ParamPre[I])
      Spec.ParamPre[I] = extractTarget(*Summary.ParamPre[I], T);
  for (unsigned I = 0; I != NumParams && I < Summary.ParamPost.size(); ++I)
    if (Summary.ParamPost[I])
      Spec.ParamPost[I] = extractTarget(*Summary.ParamPost[I], T);
  if (Summary.Result)
    Spec.Result = extractTarget(*Summary.Result, T, /*PreferUnique=*/true);
  return Spec;
}
