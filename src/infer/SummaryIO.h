//===- SummaryIO.h - Versioned wire codec for summaries ----------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The (de)serialization layer that lets probabilistic summaries cross a
/// process boundary (src/shard/). Two blob kinds share one envelope:
///
///  - a *snapshot* freezes the evidence state of the whole summary store
///    at a wave boundary (per target: own-body odds and per-call-site
///    odds, keyed by declaration index). The receiving worker rebuilds
///    the store skeleton from its own copy of the program (declared-spec
///    priors and state lists are a pure function of the AST plus
///    SpecHi/SpecLo), then overlays the snapshot's odds — so the wire
///    carries only what solving produced, and both sides agree
///    bit-for-bit because doubles travel as bit-cast u64.
///
///  - an *outcomes* blob carries a worker's results back: per analyzed
///    method a full MethodReport mirror plus the deferred summary
///    updates ANEK-INFER would have produced in process, each identified
///    by (owner declaration index, interface role, site key).
///
/// Envelope: magic, version, kind, payload length, FNV-1a checksum, then
/// the payload. Decoding is defensive end to end: truncated headers,
/// wrong versions, oversized declared lengths, checksum mismatches and
/// shape mismatches against the local program all come back as Status
/// errors — corrupt input can fail a shard attempt (the coordinator
/// classifies that as WorkerLost and re-dispatches) but can never crash
/// the coordinator or smuggle in a short read.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_INFER_SUMMARYIO_H
#define ANEK_INFER_SUMMARYIO_H

#include "factor/Solvers.h"
#include "infer/SolveCache.h"
#include "infer/Summary.h"
#include "lang/Ast.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace anek {
namespace summaryio {

/// Bump on any layout change; decoders reject every other version.
constexpr uint32_t WireVersion = 1;

/// What a sealed blob carries. The kind is part of the envelope so a
/// snapshot can never be mistaken for an outcomes blob by a confused
/// (or corrupted) peer.
enum class BlobKind : uint32_t {
  Snapshot = 1,
  Outcomes = 2,
  /// One memoized SOLVE result of the incremental summary cache
  /// (src/cache/): a key echo plus a CachedSolve body.
  CacheEntry = 3,
};

/// Hard cap on a payload's declared length. A corrupt length field must
/// bound allocation, not drive it.
constexpr uint64_t MaxBlobBytes = uint64_t(1) << 30;

/// Wraps \p Payload in the versioned, checksummed envelope.
std::string sealBlob(BlobKind Kind, std::string Payload);

/// Validates the envelope and returns the payload. Errors (all
/// ErrorCode::InvalidArgument except the oversize case, which is
/// ResourceExhausted): truncated header, bad magic, wrong version,
/// unexpected kind, declared length over MaxBlobBytes or disagreeing
/// with the actual size, checksum mismatch.
Expected<std::string> openBlob(std::string_view Blob, BlobKind ExpectKind);

/// Which interface target of a method summary an update addresses.
enum class SummaryTargetRole : uint8_t {
  RecvPre = 0,
  RecvPost,
  ParamPre,
  ParamPost,
  Result,
};

/// "recv-pre" / "param-post" / ... for diagnostics.
const char *summaryTargetRoleName(SummaryTargetRole Role);

/// One deferred summary update in wire form: the process-independent
/// image of the engine's PendingUpdate. Methods and call sites are named
/// by declaration index (stable across processes parsing the same
/// source), never by pointer.
struct SummaryUpdate {
  /// Declaration index of the method whose summary is updated.
  uint32_t OwnerDeclIndex = 0;
  SummaryTargetRole Role = SummaryTargetRole::RecvPre;
  /// Parameter position for the Param* roles; 0 otherwise.
  uint32_t ParamIndex = 0;
  /// True: own-body evidence (setSelfOdds). False: call-site evidence.
  bool IsSelf = true;
  /// Call-site key for site evidence: the calling method's declaration
  /// index and the site's index within that caller's PFG.
  uint32_t SiteCallerDeclIndex = 0;
  uint32_t SiteIndex = 0;
  /// Odds multipliers, one per tracked variable of the target.
  std::vector<double> Odds;
  /// ANEK_DEBUG_EVIDENCE annotation; carried so debug output is
  /// byte-identical whether the update was computed locally or remotely.
  std::string DebugLine;
};

/// Everything a worker reports for one analyzed method: a MethodReport
/// mirror plus the updates and accounting the engine would have produced
/// had it analyzed the method in process.
struct ShardMethodOutcome {
  uint32_t DeclIndex = 0;

  /// Mirror of MethodReport::Failed/Error (the failure already happened
  /// remotely; it is merged as a skip, exactly like a local failure).
  bool Failed = false;
  std::string Error;

  /// MethodReport mirror: solver cascade outcome.
  uint8_t SolverUsed = 0; ///< SolverChoice as its enum value.
  bool FallbackUsed = false;
  std::string Reason;
  SolveReport Solve;
  uint32_t Solves = 0;

  /// Run-statistics contributions.
  uint64_t Variables = 0;
  uint64_t Factors = 0;
  double SolveSeconds = 0.0;

  std::vector<SummaryUpdate> Updates;
};

/// Serializes the evidence state of \p Summaries (sealed Snapshot blob).
/// Iteration is declaration-index order (MethodDeclMap) and site maps are
/// CallSiteOrder-ordered, so equal stores encode to equal bytes.
std::string encodeSnapshot(const MethodDeclMap<MethodSummary> &Summaries);

/// Overlays a snapshot blob onto \p Summaries, a skeleton store built
/// over the *same program* with the same SpecHi/SpecLo (so shapes and
/// priors already agree; only SelfOdds/SiteOdds are written). Errors on
/// any envelope violation (see openBlob) and on shape mismatches: a
/// declaration index absent from the store, a target present on exactly
/// one side, or an odds vector of the wrong arity.
Status decodeSnapshot(std::string_view Blob,
                      MethodDeclMap<MethodSummary> &Summaries);

/// Serializes worker results (sealed Outcomes blob).
std::string encodeOutcomes(const std::vector<ShardMethodOutcome> &Outcomes);

/// Decodes an outcomes blob. Structural validation only (the envelope
/// plus bounds); semantic validation against the program — do these
/// declaration indices exist, do arities match — happens where the
/// decl-index table lives (the engine's merge step).
Expected<std::vector<ShardMethodOutcome>>
decodeOutcomes(std::string_view Blob);

/// Serializes one memoized SOLVE result (sealed CacheEntry blob). \p Key
/// — the content key the entry is filed under — is echoed into the
/// payload so a blob renamed or cross-linked on disk cannot replay as a
/// different entry.
std::string encodeCacheEntry(uint64_t Key, const CachedSolve &Entry);

/// Decodes a cache-entry blob, requiring its echoed key to equal
/// \p ExpectKey. Structural validation only (envelope, bounds, key echo);
/// semantic validation against the current program happens in the
/// engine's replay step. Callers classify any error as a corrupt cache
/// entry — a miss, never a failure of the run.
Expected<CachedSolve> decodeCacheEntry(std::string_view Blob,
                                       uint64_t ExpectKey);

} // namespace summaryio
} // namespace anek

#endif // ANEK_INFER_SUMMARYIO_H
