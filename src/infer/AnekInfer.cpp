//===- AnekInfer.cpp - The modular ANEK-INFER algorithm --------------------===//

#include "infer/AnekInfer.h"

#include "analysis/CallGraph.h"
#include "analysis/IrBuilder.h"
#include "factor/Solvers.h"
#include "lang/PrettyPrinter.h"
#include "pfg/PfgBuilder.h"
#include "support/FaultInject.h"
#include "support/Format.h"
#include "support/Hash.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <functional>
#include <memory>
#include <numeric>
#include <set>

using namespace anek;

const char *anek::solverChoiceName(SolverChoice Choice) {
  switch (Choice) {
  case SolverChoice::SumProduct:
    return "bp";
  case SolverChoice::Gibbs:
    return "gibbs";
  case SolverChoice::Exact:
    return "exact";
  }
  return "unknown";
}

const MethodSpec *InferResult::specFor(const MethodDecl *Method) const {
  static const MethodSpec Empty;
  if (Method->HasDeclaredSpec)
    return &Method->DeclaredSpec;
  auto It = Inferred.find(Method);
  if (It != Inferred.end())
    return &It->second;
  return &Empty;
}

namespace {

/// Odds-ratio clamp: keeps evidence finite when marginals saturate.
double oddsRatio(double Marginal, double AppliedPrior) {
  double Ratio = probToOdds(Marginal) / probToOdds(AppliedPrior);
  return std::clamp(Ratio, 1e-6, 1e6);
}

/// Rewrites a summary prior for call-site application.
///
/// Requirement side (call pre): a callee that requires K is satisfied by
/// anything stronger, so kinds *stronger* than the winning kind must not
/// be suppressed — the object flowing through may hold more than is lent.
///
/// Availability side (call post / result): a callee that returns K also
/// makes every *weaker* kind available (unique can be downgraded to
/// anything), and the caller's retained permission can reconstitute
/// *stronger* kinds through merging (Section 2's borrow round trip), so
/// no kind other than the named one may be suppressed at the site.
std::vector<double> transformPrior(std::vector<double> P,
                                   bool IsRequirement) {
  if (P.size() < NumPermKinds)
    return P;
  unsigned Best = 0;
  for (unsigned K = 1; K != NumPermKinds; ++K)
    if (P[K] > P[Best])
      Best = K;
  if (P[Best] <= 0.6)
    return P; // No confident kind: leave untouched.
  if (IsRequirement) {
    for (unsigned K = 0; K != Best; ++K)
      P[K] = std::max(P[K], 0.5);
  } else {
    for (unsigned K = Best + 1; K != NumPermKinds; ++K)
      P[K] = std::max(P[K], 0.5);
  }
  return P;
}

/// Appends one cascade decision to a report's reason trail and mirrors it
/// into the trace, so `--report` output and a Perfetto view of the same
/// run tell one story.
void appendReason(MethodReport &Report, std::string Why) {
  if (telemetry::enabled(telemetry::TraceLevel::Solver))
    telemetry::instant("cascade.transition", telemetry::TraceLevel::Solver,
                       "infer",
                       "\"reason\":" + telemetry::jsonQuote(Why));
  if (!Report.Reason.empty())
    Report.Reason += "; ";
  Report.Reason += std::move(Why);
}

/// Counts one cascade stage entry (Phase-level metrics).
void countCascadeStage(const char *Stage) {
  if (telemetry::enabled(telemetry::TraceLevel::Phase))
    telemetry::counter(std::string("cascade.stage.") + Stage).add(1);
}

/// The engine behind runAnekInfer.
///
/// Phase 2 runs as rounds of reverse-topological SCC *waves* (see
/// CallGraph::sccWaves). Every method in a wave is analyzed as an
/// independent job against the summary store as it stood when the wave
/// began: jobs only read, and return their evidence as deferred
/// PendingUpdate records. The scheduling thread merges those records in
/// declaration order after the wave, so the float reductions inside the
/// summaries see one fixed order no matter how many workers ran the
/// jobs. This makes `-j N` byte-identical to `-j 1` by construction.
class InferEngine {
public:
  InferEngine(Program &Prog, const InferOptions &Opts,
              DiagnosticEngine *Diags)
      : Prog(Prog), Opts(Opts), Diags(Diags), Graph(Prog) {}

  InferResult run();

  /// Worker-side shard body (see runShardMethods): skeleton store +
  /// snapshot overlay, then sequential analyzeOne over the shard's
  /// methods in declaration-index order.
  Expected<std::vector<summaryio::ShardMethodOutcome>>
  analyzeShard(const std::vector<unsigned> &DeclIndices,
               const std::string &Snapshot);

private:
  struct MethodData {
    MethodIr Ir;
    Pfg G;
  };

  /// One deferred summary write produced by a wave job. Applied by the
  /// scheduling thread only, in declaration order.
  struct PendingUpdate {
    TargetSummary *Target = nullptr;
    /// Method whose summary the target belongs to (requeue key).
    MethodDecl *SummaryOwner = nullptr;
    /// Which interface target of the owner (with ParamIndex for the
    /// Param* roles). Redundant with Target in process; it is the
    /// process-independent name the shard wire format uses instead of
    /// the pointer.
    summaryio::SummaryTargetRole Role = summaryio::SummaryTargetRole::RecvPre;
    uint32_t ParamIndex = 0;
    bool IsSelf = false;
    CallSiteKey Site{nullptr, 0};
    std::vector<double> Odds;
    /// ANEK_DEBUG_EVIDENCE trace line (empty when tracing is off);
    /// printed at merge time so the trace is deterministic too.
    std::string DebugLine;
  };

  /// Everything a wave job hands back to the scheduler.
  struct MethodOutcome {
    bool Failed = false;
    std::string Error;
    MethodReport Report;
    std::vector<PendingUpdate> Updates;
    unsigned Variables = 0;
    unsigned Factors = 0;
    double SolveSeconds = 0.0;
  };

  /// Record of one summary-prior application so its evidence can be
  /// divided back out after the solve.
  struct Application {
    PfgNodeId Node = NoPfgNode;
    TargetSummary *Target = nullptr;
    /// Method whose summary the target belongs to.
    MethodDecl *SummaryOwner = nullptr;
    summaryio::SummaryTargetRole Role = summaryio::SummaryTargetRole::RecvPre;
    uint32_t ParamIndex = 0;
    std::vector<double> Applied;
    bool IsSelf = false;
    /// True for call-site precondition nodes: a site may only weaken a
    /// requirement, never strengthen it (requirements come from bodies).
    bool IsRequirement = false;
    CallSiteKey Site{nullptr, 0};
  };

  /// Builds and solves one method's model against the current (frozen)
  /// summary store. Pure with respect to engine state: all writes are
  /// returned as deferred updates inside the outcome. Safe to run
  /// concurrently with other analyzeOne calls.
  MethodOutcome analyzeOne(MethodDecl *M);

  /// Enumerates every summary-prior application \p M's model makes —
  /// own interface targets first, then call sites in PFG order — with
  /// App.Applied already pooled and transformed, and hands each record to
  /// \p Fn (which may consume it). This is the single source of truth for
  /// the application stream: analyzeOne uses it to set priors, and
  /// solveKeyFor digests the identical stream into the cache key, so the
  /// two can never drift apart. Reads the frozen summary store only.
  void forEachApplication(MethodDecl *M, const Pfg &G,
                          const std::function<void(Application &)> &Fn);

  /// Per-target evidence helper: converts the solved marginals /
  /// graph-side cavity beliefs into an odds vector (call-site evidence
  /// on preconditions is weaken-only: odds capped at 1). Appends a
  /// deferred update to \p Updates; no engine state is touched.
  void computeEvidence(std::vector<PendingUpdate> &Updates,
                       const Application &App,
                       const std::vector<double> &Marginals,
                       const std::vector<double> &GraphBelief) const;

  /// Converts a shard executor's wire outcomes back into engine
  /// outcomes, resolving declaration indices against this program and
  /// validating shape end to end (one outcome per batch method, known
  /// owners/callers, matching odds arity). \p Outcomes is indexed like
  /// \p Batch. Any violation returns an error and the caller discards
  /// the whole wave result (the wave then reruns in process).
  Status adoptWireOutcomes(std::vector<summaryio::ShardMethodOutcome> Wire,
                           const std::vector<MethodDecl *> &Batch,
                           std::vector<MethodOutcome> &Outcomes);

  /// The target a (role, param-index) pair names inside \p Summary, or
  /// null when that interface position carries no summary.
  static TargetSummary *resolveTarget(MethodSummary &Summary,
                                      summaryio::SummaryTargetRole Role,
                                      uint32_t ParamIndex);

  /// Builds the decl-index lookup shard wire identification relies on.
  /// False when indices are not globally unique (hand-built ASTs Sema
  /// never numbered): shard mode is then unusable and the engine runs
  /// in process.
  bool buildDeclIndexLookup();

  // Incremental summary cache (DESIGN.md, "Incremental inference and the
  // summary cache"). The engine memoizes individual SOLVE invocations:
  // the key digests every input the solve depends on, so a hit replays
  // the stored evidence byte-identically by construction.

  /// Gates and arms the cache for this run: verifies the preconditions
  /// (no per-solve time budget, unique qualified names, no armed
  /// analysis-perturbing fault) and precomputes the run-constant key
  /// components — the program-environment/options digest and the per-SCC
  /// transitive content chain hashes. Leaves Cache null when unusable.
  void prepareCache();

  /// The content key of \p M's next SOLVE against the current summary
  /// store: environment digest + the method's SCC chain hash + its
  /// solver seed + the exact bit patterns of the application stream.
  uint64_t solveKeyFor(MethodDecl *M);

  /// Converts a cached solve back into an engine outcome, resolving
  /// qualified names against the current program and validating shape
  /// (known owners/callers, present targets, matching odds arity) like
  /// adoptWireOutcomes does for shard results. False on any mismatch:
  /// the entry is then treated as invalidated and the method re-solved.
  bool adoptCachedSolve(CachedSolve Entry, MethodOutcome &Out);

  /// The durable image of a fresh outcome, with every method named by
  /// qualified name so the entry survives declaration-index shifts.
  CachedSolve toCachedSolve(const MethodOutcome &Out) const;

  /// Runs the configured solver, walking the fallback cascade when the
  /// primary misses its convergence contract; fills \p GraphBelief with
  /// the per-node cavity beliefs (for solvers without native support,
  /// approximated by dividing the prior out of the marginal) and records
  /// the cascade decisions in \p Report. \p Seed seeds any sampling
  /// stage (stable per method, independent of scheduling).
  Expected<Marginals> solveGraph(const FactorGraph &G, Marginals &GraphBelief,
                                 MethodReport &Report, uint64_t Seed) const;

  /// Stable solver seed for \p M: a hash of the qualified method name
  /// mixed with the user seed. Identical across runs, processes and job
  /// counts; distinct (in practice) across methods and user seeds.
  uint64_t methodSeed(const MethodDecl *M) const;

  Program &Prog;
  const InferOptions &Opts;
  DiagnosticEngine *Diags;
  CallGraph Graph;
  // All per-method maps are declaration-ordered so every iteration over
  // them (merging, reporting, extraction) is deterministic.
  MethodDeclMap<MethodReport> Reports;
  MethodDeclMap<MethodData> Data;
  MethodDeclMap<MethodSummary> Summaries;
  /// Declaration index -> method, for shard wire identification. Only
  /// populated when shard mode is in play (see buildDeclIndexLookup).
  std::map<uint32_t, MethodDecl *> DeclsByIndex;

  /// Non-null only when Opts.Cache is set and its preconditions hold
  /// (see prepareCache); everything below is populated alongside it.
  SolveCache *Cache = nullptr;
  /// Digest of the type/signature/annotation environment (bodies
  /// excluded) mixed with the algorithm-option fingerprint.
  uint64_t CacheEnvHash = 0;
  /// Per method: its SCC's token-content hash mixed with the chain
  /// hashes of every callee SCC, transitively. Editing any method
  /// changes this for the whole reverse-reachable cone — that is the
  /// cache's invalidation propagation.
  std::map<const MethodDecl *, uint64_t> ChainHashes;
  /// Qualified name -> method, for cache-entry replay resolution.
  std::map<std::string, MethodDecl *> DeclsByName;
};

} // namespace

void InferEngine::computeEvidence(std::vector<PendingUpdate> &Updates,
                                  const Application &App,
                                  const std::vector<double> &Marginals,
                                  const std::vector<double> &GraphBelief) const {
  TargetSummary *Target = App.Target;
  const std::vector<double> &Applied = App.Applied;
  MethodDecl *SummaryOwner = App.SummaryOwner;
  const bool IsSelf = App.IsSelf;
  const bool WeakenOnly = !App.IsSelf && App.IsRequirement;
  const CallSiteKey &Site = App.Site;
  // Two evidence channels, chosen by direction:
  //
  //  - Requirement-side call votes (WeakenOnly) use the graph-side cavity
  //    belief (the node's applied prior excluded): a caller that knows
  //    nothing about the object yields exactly 0.5 = neutral, so
  //    ignorance never erodes an API spec, while genuine contradiction
  //    (e.g. ALIVE evidence against a HASNEXT requirement) votes below.
  //
  //  - Everything else measures the solved marginal against the applied
  //    prior: that integrates long equality chains strongly enough for
  //    body evidence to clear the extraction threshold. A probability
  //    deadband absorbs the attenuation a strong prior suffers from
  //    merely-uninformed neighbors.
  // The weaken deadband is wide: post-condition priors of *other* calls
  // on the same chain can depress a cavity belief to ~0.4 without any
  // real counter-evidence; genuine contradiction (a state test or a
  // conflicting spec one hop away) lands near 0.1-0.2.
  constexpr double WeakenDeadband = 0.2;
  constexpr double BoostDeadband = 0.15;
  constexpr double OddsCap = 9.0;

  std::vector<double> Odds(Target->size(), 1.0);
  for (size_t I = 0, E = std::min(Applied.size(), Marginals.size()); I != E;
       ++I) {
    if (I >= Odds.size())
      break;
    double Ratio = 1.0;
    if (WeakenOnly) {
      double Belief = I < GraphBelief.size() ? GraphBelief[I] : 0.5;
      if (std::fabs(Belief - 0.5) < WeakenDeadband)
        continue;
      Ratio = std::min(probToOdds(Belief), 1.0);
    } else {
      if (std::fabs(Marginals[I] - Applied[I]) < BoostDeadband)
        continue;
      Ratio = oddsRatio(Marginals[I], Applied[I]);
    }
    Odds[I] = std::clamp(Ratio, 1.0 / OddsCap, OddsCap);
  }

  PendingUpdate Update;
  Update.Target = Target;
  Update.SummaryOwner = SummaryOwner;
  Update.Role = App.Role;
  Update.ParamIndex = App.ParamIndex;
  Update.IsSelf = IsSelf;
  Update.Site = Site;
  if (std::getenv("ANEK_DEBUG_EVIDENCE")) {
    std::string Line = SummaryOwner ? SummaryOwner->qualifiedName() : "?";
    Line += IsSelf ? " self" : " site";
    if (!IsSelf && Site.first)
      Line += " " + Site.first->qualifiedName() + "#" +
              std::to_string(Site.second);
    Line += WeakenOnly ? " [weaken]" : " [boost]";
    for (size_t I = 0; I != Odds.size(); ++I)
      if (Odds[I] != 1.0)
        Line += " v" + std::to_string(I) + "=" +
                std::to_string(Odds[I]);
    Update.DebugLine = std::move(Line);
  }
  Update.Odds = std::move(Odds);
  Updates.push_back(std::move(Update));
}

uint64_t InferEngine::methodSeed(const MethodDecl *M) const {
  uint64_t Hash = stableHash64(M->qualifiedName());
  // splitmix64-style finalizer over the user seed, so nearby seeds (1, 2,
  // ...) still decorrelate every method's chain.
  uint64_t S = Opts.Seed + 0x9E3779B97F4A7C15ULL;
  S = (S ^ (S >> 30)) * 0xBF58476D1CE4E5B9ULL;
  S = (S ^ (S >> 27)) * 0x94D049BB133111EBULL;
  S ^= S >> 31;
  uint64_t Mixed = Hash ^ S;
  return Mixed ? Mixed : 0x9E3779B97F4A7C15ULL;
}

Expected<Marginals> InferEngine::solveGraph(const FactorGraph &G,
                                            Marginals &GraphBelief,
                                            MethodReport &Report,
                                            uint64_t Seed) const {
  Deadline Budget = Opts.SolveBudgetSeconds > 0.0
                        ? Deadline::afterSeconds(Opts.SolveBudgetSeconds)
                        : Deadline();
  ++Report.Solves;
  Report.Fallback = false;
  Report.Reason.clear();

  // For solvers without native cavity support, divide the prior out of
  // the marginal (exact on trees, approximate on loops).
  auto DividePriors = [&](const Marginals &M) {
    GraphBelief.assign(M.size(), 0.5);
    for (unsigned V = 0; V != M.size(); ++V)
      GraphBelief[V] = oddsToProb(probToOdds(M[V]) /
                                  probToOdds(G.variable(V).Prior));
  };

  auto RunBp = [&](SumProductSolver::Options O) {
    O.Budget = Budget;
    Report.Used = SolverChoice::SumProduct;
    // The delegate (when installed) is contractually byte-identical to
    // the local solver, so the cascade does not care which path ran.
    if (Opts.Bp)
      return Opts.Bp->solve(O, G, &GraphBelief, &Report.Solve);
    return SumProductSolver(O).solve(G, &GraphBelief, &Report.Solve);
  };
  auto RunGibbs = [&]() {
    GibbsSolver::Options O;
    O.Budget = Budget;
    O.Seed = Seed;
    Report.Used = SolverChoice::Gibbs;
    Marginals M = GibbsSolver(O).solve(G, &Report.Solve);
    DividePriors(M);
    return M;
  };
  // Terminal stage: enumeration is bounded by MaxVariables, so it runs
  // without the outer budget (an injected 'deadline' fault still trips
  // the fresh Deadline and exercises the total-failure path).
  auto RunExact = [&]() -> Expected<Marginals> {
    Expected<Marginals> M = ExactSolver().solve(G, Deadline());
    if (M) {
      DividePriors(*M);
      Report.Used = SolverChoice::Exact;
      Report.Solve = SolveReport();
      Report.Solve.Converged = true;
    }
    return M;
  };

  // Explicitly requested non-default solvers keep their semantics.
  if (Opts.Solver == SolverChoice::Gibbs)
    return RunGibbs();
  if (Opts.Solver == SolverChoice::Exact) {
    Expected<Marginals> M = RunExact();
    if (M)
      return M;
    // Too large for enumeration; fall back to belief propagation.
    Report.Fallback = true;
    appendReason(Report, M.status().str());
    return RunBp(SumProductSolver::Options());
  }

  // The cascade (DESIGN.md): BP -> damped BP -> Gibbs -> exact.
  SumProductSolver::Options BpOpts;
  Marginals M = RunBp(BpOpts);
  if (Report.Solve.Converged || !Opts.Fallback)
    return M;

  Report.Fallback = true;
  // The solver names its own failure (SolveReport::Reason); the cascade
  // only adds which stage it is leaving.
  appendReason(Report,
               "bp missed convergence (" + Report.Solve.Reason + ")");
  countCascadeStage("damped_bp");

  // Stage 2: heavier damping and a longer leash tame most oscillations.
  // The retry also turns residual scheduling off: a solve that already
  // missed its contract should not skip any factor update, however
  // quiet, while it hunts for the fixed point.
  SumProductSolver::Options Damped;
  Damped.Damping = 0.6;
  Damped.MaxIterations = BpOpts.MaxIterations * 2;
  Damped.ResidualScheduling = false;
  Marginals DampedM = RunBp(Damped);
  if (Report.Solve.Converged)
    return DampedM;
  SolveReport DampedReport = Report.Solve;
  // Nearly-converged beliefs beat a jump to sampling: Gibbs noise can
  // erase a spec that a residual this small would have kept. The injected
  // non-convergence fault models *bad* divergence, so it skips this exit.
  constexpr double NearConvergence = 1e-2;
  if (!(faults::anyActive() &&
        faults::active(FaultKind::BpNonConvergence)) &&
      !Report.Solve.DeadlineExpired &&
      Report.Solve.Residual <= NearConvergence) {
    appendReason(Report, formatStr("accepted nearly-converged damped bp "
                                   "(residual %.2g)",
                                   Report.Solve.Residual));
    return DampedM;
  }
  appendReason(Report, formatStr("damped bp retry missed convergence "
                                 "(residual %.2g)",
                                 Report.Solve.Residual));
  countCascadeStage("gibbs");

  // Stage 3: seeded Gibbs does not depend on message convergence at all.
  Marginals GibbsM = RunGibbs();
  if (Report.Solve.Converged)
    return GibbsM;
  bool GibbsCollectedSome = Report.Solve.Iterations > 0;
  // Thread the sampler's own reason through: before SolveReport carried
  // one, a Samples == 0 non-convergence left this stage reasonless in
  // the trail, so Diagnostics and traces disagreed on why Gibbs was
  // abandoned.
  appendReason(Report, "gibbs chain cut short (" +
                           (Report.Solve.Reason.empty()
                                ? std::string("no reason reported")
                                : Report.Solve.Reason) +
                           ")");

  // Stage 4: exact enumeration when the graph is small enough.
  if (G.variableCount() <= ExactSolver::MaxVariables) {
    countCascadeStage("exact");
    Expected<Marginals> ExactM = RunExact();
    if (ExactM)
      return ExactM;
    appendReason(Report, ExactM.status().str());
  }

  // Every stage degraded: keep the best approximation we have — a partial
  // Gibbs estimate when any samples were collected, else the damped
  // (unconverged) BP beliefs. Still a usable approximation, and the
  // report says exactly how it was obtained.
  if (telemetry::enabled(telemetry::TraceLevel::Phase))
    telemetry::counter("cascade.kept_degraded").add(1);
  if (GibbsCollectedSome) {
    appendReason(Report, "using partial gibbs estimate");
    return GibbsM;
  }
  Report.Used = SolverChoice::SumProduct;
  Report.Solve = DampedReport;
  appendReason(Report, "using unconverged bp beliefs");
  // GraphBelief currently holds Gibbs-derived beliefs; recompute for the
  // damped BP marginals we are about to return.
  DividePriors(DampedM);
  return DampedM;
}

void InferEngine::forEachApplication(
    MethodDecl *M, const Pfg &G,
    const std::function<void(Application &)> &Fn) {
  using summaryio::SummaryTargetRole;
  auto Apply = [&](PfgNodeId Node, TargetSummary *Target,
                   MethodDecl *SummaryOwner, SummaryTargetRole Role,
                   uint32_t ParamIndex, bool IsSelf, CallSiteKey Site,
                   bool IsRequirement = false) {
    if (Node == NoPfgNode || !Target)
      return;
    Application App;
    App.Node = Node;
    App.Target = Target;
    App.SummaryOwner = SummaryOwner;
    App.Role = Role;
    App.ParamIndex = ParamIndex;
    App.IsSelf = IsSelf;
    App.Site = Site;
    App.IsRequirement = IsRequirement;
    App.Applied =
        IsSelf ? Target->pooledWithoutSelf() : Target->pooledWithoutSite(Site);
    if (!IsSelf)
      App.Applied = transformPrior(std::move(App.Applied), IsRequirement);
    Fn(App);
  };

  // The method's own interface nodes: prior = summary minus own evidence.
  MethodSummary &Self = Summaries.at(M);
  CallSiteKey NoSite{nullptr, 0};
  Apply(G.ReceiverPre, Self.RecvPre ? &*Self.RecvPre : nullptr, M,
        SummaryTargetRole::RecvPre, 0, true, NoSite);
  Apply(G.ReceiverPost, Self.RecvPost ? &*Self.RecvPost : nullptr, M,
        SummaryTargetRole::RecvPost, 0, true, NoSite);
  for (size_t I = 0; I != G.ParamPre.size(); ++I) {
    if (I < Self.ParamPre.size() && Self.ParamPre[I])
      Apply(G.ParamPre[I], &*Self.ParamPre[I], M,
            SummaryTargetRole::ParamPre, static_cast<uint32_t>(I), true,
            NoSite);
    if (I < Self.ParamPost.size() && Self.ParamPost[I])
      Apply(G.ParamPost[I], &*Self.ParamPost[I], M,
            SummaryTargetRole::ParamPost, static_cast<uint32_t>(I), true,
            NoSite);
  }
  if (Self.Result)
    Apply(G.ResultNode, &*Self.Result, M, SummaryTargetRole::Result, 0, true,
          NoSite);

  // Call sites: cavity priors from callee summaries (APPLYSUMMARY).
  for (uint32_t S = 0; S != G.CallSites.size(); ++S) {
    const PfgCallSite &Site = G.CallSites[S];
    if (!Site.Callee)
      continue;
    auto SumIt = Summaries.find(Site.Callee);
    if (SumIt == Summaries.end())
      continue;
    MethodSummary &Callee = SumIt->second;
    MethodDecl *D = Site.Callee;
    CallSiteKey Key{M, S};
    Apply(Site.RecvPre, Callee.RecvPre ? &*Callee.RecvPre : nullptr, D,
          SummaryTargetRole::RecvPre, 0, false, Key, /*IsRequirement=*/true);
    Apply(Site.RecvPost, Callee.RecvPost ? &*Callee.RecvPost : nullptr, D,
          SummaryTargetRole::RecvPost, 0, false, Key);
    for (size_t I = 0; I != Site.ArgPre.size(); ++I) {
      if (I < Callee.ParamPre.size() && Callee.ParamPre[I])
        Apply(Site.ArgPre[I], &*Callee.ParamPre[I], D,
              SummaryTargetRole::ParamPre, static_cast<uint32_t>(I), false,
              Key, /*IsRequirement=*/true);
      if (I < Callee.ParamPost.size() && Callee.ParamPost[I])
        Apply(Site.ArgPost[I], &*Callee.ParamPost[I], D,
              SummaryTargetRole::ParamPost, static_cast<uint32_t>(I), false,
              Key);
    }
    if (Callee.Result)
      Apply(Site.Result, &*Callee.Result, D, SummaryTargetRole::Result, 0,
            false, Key);
  }
}

InferEngine::MethodOutcome InferEngine::analyzeOne(MethodDecl *M) {
  MethodOutcome Out;
  auto Fail = [&](const Status &S) {
    Out.Failed = true;
    Out.Error = S.str();
    return std::move(Out);
  };

  // Fault 'solve-fail': this method's SOLVE step fails outright, proving
  // the isolation path keeps the rest of the program inferable. Under a
  // batch FaultScope the scoped label "<scope>/<method>" also matches, so
  // one request can be poisoned without touching its neighbors.
  if (faults::anyActive() &&
      (faults::active(FaultKind::SolveFailure, M->qualifiedName()) ||
       (!Opts.FaultScope.empty() &&
        faults::active(FaultKind::SolveFailure,
                       Opts.FaultScope + "/" + M->qualifiedName()))))
    return Fail(
        faults::injectedError(FaultKind::SolveFailure, M->qualifiedName()));

  const MethodData &MD = Data.at(M);
  const Pfg &G = MD.G;

  FactorGraph FG;
  PfgVarMap Vars(G, FG);
  generateConstraints(G, FG, Vars, Opts.Constraints);

  // Records of every prior application so evidence can be divided out.
  // Everything read below comes from the wave's frozen summary store;
  // the writes go through deferred PendingUpdates.
  std::vector<Application> Applications;
  forEachApplication(M, G, [&](Application &App) {
    setMarginalPriors(FG, Vars.node(App.Node), App.Applied);
    Applications.push_back(std::move(App));
  });

  Timer SolveTimer;
  Marginals GraphBelief;
  Expected<Marginals> Solved =
      solveGraph(FG, GraphBelief, Out.Report, methodSeed(M));
  Out.SolveSeconds = SolveTimer.seconds();
  Out.Variables = FG.variableCount();
  Out.Factors = FG.factorCount();
  if (!Solved)
    return Fail(Solved.status());
  Marginals Solution = Solved.take();

  // Compute the evidence to push back into summaries (UPDATESUMMARY) as
  // deferred updates; the scheduling thread applies them after the wave.
  for (const Application &App : Applications) {
    std::vector<double> NodeMarginals =
        readMarginals(Vars.node(App.Node), Solution);
    std::vector<double> NodeBelief =
        readMarginals(Vars.node(App.Node), GraphBelief);
    computeEvidence(Out.Updates, App, NodeMarginals, NodeBelief);
  }
  return Out;
}

TargetSummary *InferEngine::resolveTarget(MethodSummary &Summary,
                                          summaryio::SummaryTargetRole Role,
                                          uint32_t ParamIndex) {
  using summaryio::SummaryTargetRole;
  switch (Role) {
  case SummaryTargetRole::RecvPre:
    return Summary.RecvPre ? &*Summary.RecvPre : nullptr;
  case SummaryTargetRole::RecvPost:
    return Summary.RecvPost ? &*Summary.RecvPost : nullptr;
  case SummaryTargetRole::ParamPre:
    return ParamIndex < Summary.ParamPre.size() && Summary.ParamPre[ParamIndex]
               ? &*Summary.ParamPre[ParamIndex]
               : nullptr;
  case SummaryTargetRole::ParamPost:
    return ParamIndex < Summary.ParamPost.size() &&
                   Summary.ParamPost[ParamIndex]
               ? &*Summary.ParamPost[ParamIndex]
               : nullptr;
  case SummaryTargetRole::Result:
    return Summary.Result ? &*Summary.Result : nullptr;
  }
  return nullptr;
}

bool InferEngine::buildDeclIndexLookup() {
  DeclsByIndex.clear();
  for (const auto &Type : Prog.Types)
    for (const auto &M : Type->Methods)
      if (!DeclsByIndex.emplace(M->DeclIndex, M.get()).second)
        return false; // Unnumbered (hand-built) decls collide on index 0.
  return true;
}

namespace {

void hashAnnotation(HashStream &H, const RawAnnotation &A) {
  H.str(A.Name);
  H.u32(static_cast<uint32_t>(A.Args.size()));
  for (const auto &[K, V] : A.Args) {
    H.str(K);
    H.str(V);
  }
  H.u32(static_cast<uint32_t>(A.ListArgs.size()));
  for (const std::string &S : A.ListArgs)
    H.str(S);
}

/// Digest of everything about \p M *except* its body: the part other
/// methods' models can see (callee resolution, declared-spec priors,
/// summary shapes). Part of the environment hash for every entry.
uint64_t methodSignatureHash(const MethodDecl &M) {
  HashStream H;
  H.str(M.Name);
  H.u8(M.IsStatic ? 1 : 0);
  H.u8(M.IsCtor ? 1 : 0);
  H.u8(M.IsTest ? 1 : 0);
  H.str(M.ReturnType.str());
  H.u32(static_cast<uint32_t>(M.Params.size()));
  for (const ParamDecl &P : M.Params) {
    H.str(P.Type.str());
    H.str(P.Name);
  }
  H.u32(static_cast<uint32_t>(M.Annotations.size()));
  for (const RawAnnotation &A : M.Annotations)
    hashAnnotation(H, A);
  return H.digest();
}

/// Signature plus the body as the pretty-printer re-serializes it. The
/// printer reads the parsed AST, so this is a token-stream hash: editing
/// whitespace or comments leaves the digest unchanged, editing any token
/// the parser kept changes it.
uint64_t methodContentHash(const MethodDecl &M) {
  HashStream H;
  H.str(M.Owner ? M.Owner->Name : std::string());
  H.u64(methodSignatureHash(M));
  H.u8(M.Body ? 1 : 0);
  if (M.Body)
    H.str(printStmt(*M.Body));
  return H.digest();
}

} // namespace

void InferEngine::prepareCache() {
  Cache = nullptr;
  if (!Opts.Cache)
    return;
  // A per-solve time budget makes solve outcomes timing-dependent, so a
  // replay is not guaranteed to reproduce a fresh solve. Governed runs
  // (deadline'd batch requests) therefore never cache.
  if (Opts.SolveBudgetSeconds > 0.0)
    return;
  // Analysis-perturbing faults change what a fresh solve would compute;
  // caching across them would either launder a faulted result into clean
  // runs or replay a clean result past an armed fault. Infrastructure
  // faults (wire corruption, worker crashes) do not perturb results —
  // the degradation contract absorbs them — so they keep caching on.
  if (faults::anyActive() &&
      (faults::kindActive(FaultKind::BpNonConvergence) ||
       faults::kindActive(FaultKind::DeadlineExpiry) ||
       faults::kindActive(FaultKind::AllocPerturb) ||
       faults::kindActive(FaultKind::SolveFailure)))
    return;
  // Replay resolution is by qualified name; ambiguity would alias
  // entries across distinct methods.
  DeclsByName.clear();
  for (const auto &Type : Prog.Types)
    for (const auto &M : Type->Methods)
      if (!DeclsByName.emplace(M->qualifiedName(), M.get()).second) {
        DeclsByName.clear();
        return;
      }

  // Environment digest: the wire version (entries are sealed blobs), the
  // full algorithm-option fingerprint, and the type/signature/annotation
  // level of the program — everything that shapes summary skeletons and
  // callee resolution without being any one method's body. Threshold,
  // SummaryTolerance and MaxIters are deliberately excluded: they steer
  // extraction and scheduling, not what one SOLVE computes, so entries
  // stay valid across them.
  HashStream Env;
  Env.u32(summaryio::WireVersion);
  Env.u8(static_cast<uint8_t>(Opts.Solver));
  Env.u8(Opts.Fallback ? 1 : 0);
  Env.f64(Opts.SpecHi);
  Env.f64(Opts.SpecLo);
  const ConstraintOptions &C = Opts.Constraints;
  Env.f64(C.L1Branch);
  Env.f64(C.L1Split);
  Env.f64(C.L2Incoming);
  Env.f64(C.L3FieldWrite);
  Env.f64(C.H1Ctor);
  Env.f64(C.H2PrePost);
  Env.f64(C.H3Create);
  Env.f64(C.H4Setter);
  Env.f64(C.H5Sync);
  Env.f64(C.H6WeakPre);
  Env.u8(C.EnableH1 ? 1 : 0);
  Env.u8(C.EnableH2 ? 1 : 0);
  Env.u8(C.EnableH3 ? 1 : 0);
  Env.u8(C.EnableH4 ? 1 : 0);
  Env.u8(C.EnableH5 ? 1 : 0);
  Env.u8(C.EnableH6 ? 1 : 0);
  Env.u8(C.LogicalOnly ? 1 : 0);
  Env.u8(C.EnableExclusivity ? 1 : 0);
  Env.u8(C.KindMutex ? 1 : 0);
  Env.f64(C.KindMutexProb);
  // Evidence tracing annotates updates with debug lines that are stored
  // and replayed; entries written with tracing off lack them.
  Env.u8(std::getenv("ANEK_DEBUG_EVIDENCE") ? 1 : 0);
  for (const auto &Type : Prog.Types) {
    Env.str(Type->Name);
    Env.u8(Type->IsInterface ? 1 : 0);
    Env.str(Type->SuperName);
    Env.u32(static_cast<uint32_t>(Type->InterfaceNames.size()));
    for (const std::string &I : Type->InterfaceNames)
      Env.str(I);
    Env.u32(static_cast<uint32_t>(Type->TypeParams.size()));
    for (const std::string &P : Type->TypeParams)
      Env.str(P);
    Env.u32(static_cast<uint32_t>(Type->Annotations.size()));
    for (const RawAnnotation &A : Type->Annotations)
      hashAnnotation(Env, A);
    Env.u32(static_cast<uint32_t>(Type->Fields.size()));
    for (const FieldDecl &F : Type->Fields) {
      Env.str(F.Name);
      Env.str(F.Type.str());
    }
    Env.u32(static_cast<uint32_t>(Type->Methods.size()));
    for (const auto &M : Type->Methods)
      Env.u64(methodSignatureHash(*M));
  }
  CacheEnvHash = Env.digest();

  // Per-SCC transitive chain hashes, computed callees-first over the
  // condensation (sccGroups is reverse-topological, so every callee
  // group's hash exists before its callers fold it in). Editing one
  // method's body changes its SCC's hash and, through the folds, the
  // hash of every SCC that can reach it — exactly the set of methods
  // whose solves could observe the edit through summaries.
  ChainHashes.clear();
  std::vector<CallGraph::SccGroup> Groups = Graph.sccGroups();
  std::vector<uint64_t> GroupHash(Groups.size(), 0);
  for (size_t S = 0; S != Groups.size(); ++S) {
    HashStream H;
    for (MethodDecl *Member : Groups[S].Members)
      H.u64(methodContentHash(*Member));
    for (unsigned Callee : Groups[S].CalleeGroups)
      H.u64(GroupHash[Callee]);
    GroupHash[S] = H.digest();
    for (MethodDecl *Member : Groups[S].Members)
      ChainHashes[Member] = GroupHash[S];
  }
  Cache = Opts.Cache;
}

uint64_t InferEngine::solveKeyFor(MethodDecl *M) {
  HashStream H;
  H.u64(CacheEnvHash);
  H.u64(ChainHashes.at(M));
  H.u64(methodSeed(M));
  // The exact bit patterns of every prior the model applies, in the one
  // canonical enumeration order. This is what makes replay byte-safe
  // *within* a run's fixpoint iteration: the same method re-solved after
  // its callees' summaries moved gets a different key, while a warm run
  // that replays wave by wave reproduces the same summary trajectory and
  // therefore the same sequence of keys.
  forEachApplication(M, Data.at(M).G, [&](Application &App) {
    H.u8(static_cast<uint8_t>(App.Role));
    H.u32(App.ParamIndex);
    H.u8(App.IsSelf ? 1 : 0);
    H.u8(App.IsRequirement ? 1 : 0);
    H.str(App.SummaryOwner ? App.SummaryOwner->qualifiedName()
                           : std::string());
    H.u32(App.Site.second);
    H.u32(static_cast<uint32_t>(App.Applied.size()));
    for (double V : App.Applied)
      H.f64(V);
  });
  return H.digest();
}

bool InferEngine::adoptCachedSolve(CachedSolve Entry, MethodOutcome &Out) {
  if (Entry.SolverUsed > static_cast<uint8_t>(SolverChoice::Exact))
    return false;
  MethodOutcome Adopted;
  Adopted.Report.Used = static_cast<SolverChoice>(Entry.SolverUsed);
  Adopted.Report.Fallback = Entry.FallbackUsed;
  Adopted.Report.Reason = std::move(Entry.Reason);
  Adopted.Report.Solve = std::move(Entry.Solve);
  Adopted.Report.Solves = Entry.Solves;
  Adopted.Variables = static_cast<unsigned>(Entry.Variables);
  Adopted.Factors = static_cast<unsigned>(Entry.Factors);
  Adopted.SolveSeconds = Entry.SolveSeconds;
  for (CachedUpdate &U : Entry.Updates) {
    if (U.Role > static_cast<uint8_t>(summaryio::SummaryTargetRole::Result))
      return false;
    auto OwnerIt = DeclsByName.find(U.OwnerName);
    if (OwnerIt == DeclsByName.end())
      return false;
    MethodDecl *Owner = OwnerIt->second;
    auto SumIt = Summaries.find(Owner);
    if (SumIt == Summaries.end())
      return false;
    TargetSummary *Target = resolveTarget(
        SumIt->second, static_cast<summaryio::SummaryTargetRole>(U.Role),
        U.ParamIndex);
    if (!Target || U.Odds.size() != Target->size())
      return false;
    PendingUpdate P;
    P.Target = Target;
    P.SummaryOwner = Owner;
    P.Role = static_cast<summaryio::SummaryTargetRole>(U.Role);
    P.ParamIndex = U.ParamIndex;
    P.IsSelf = U.IsSelf;
    if (!U.IsSelf) {
      auto CallerIt = DeclsByName.find(U.SiteCallerName);
      if (CallerIt == DeclsByName.end())
        return false;
      P.Site = {CallerIt->second, U.SiteIndex};
    }
    P.Odds = std::move(U.Odds);
    P.DebugLine = std::move(U.DebugLine);
    Adopted.Updates.push_back(std::move(P));
  }
  Out = std::move(Adopted);
  return true;
}

CachedSolve InferEngine::toCachedSolve(const MethodOutcome &Out) const {
  CachedSolve Entry;
  Entry.SolverUsed = static_cast<uint8_t>(Out.Report.Used);
  Entry.FallbackUsed = Out.Report.Fallback;
  Entry.Reason = Out.Report.Reason;
  Entry.Solve = Out.Report.Solve;
  Entry.Solves = Out.Report.Solves;
  Entry.Variables = Out.Variables;
  Entry.Factors = Out.Factors;
  Entry.SolveSeconds = Out.SolveSeconds;
  for (const PendingUpdate &U : Out.Updates) {
    CachedUpdate CU;
    CU.OwnerName = U.SummaryOwner ? U.SummaryOwner->qualifiedName()
                                  : std::string();
    CU.Role = static_cast<uint8_t>(U.Role);
    CU.ParamIndex = U.ParamIndex;
    CU.IsSelf = U.IsSelf;
    if (!U.IsSelf && U.Site.first)
      CU.SiteCallerName = U.Site.first->qualifiedName();
    CU.SiteIndex = U.Site.second;
    CU.Odds = U.Odds; // Copied: the merge step moves the live ones.
    CU.DebugLine = U.DebugLine;
    Entry.Updates.push_back(std::move(CU));
  }
  return Entry;
}

Status InferEngine::adoptWireOutcomes(
    std::vector<summaryio::ShardMethodOutcome> Wire,
    const std::vector<MethodDecl *> &Batch,
    std::vector<MethodOutcome> &Outcomes) {
  auto Reject = [](const std::string &Why) {
    return Status::error(ErrorCode::InvalidArgument,
                         "shard wave result rejected: " + Why);
  };
  if (Wire.size() != Batch.size())
    return Reject("got " + std::to_string(Wire.size()) + " outcomes for a " +
                  std::to_string(Batch.size()) + "-method batch");

  std::map<uint32_t, size_t> Slot;
  for (size_t I = 0; I != Batch.size(); ++I)
    Slot.emplace(Batch[I]->DeclIndex, I);
  std::vector<bool> Filled(Batch.size(), false);

  for (summaryio::ShardMethodOutcome &W : Wire) {
    auto SlotIt = Slot.find(W.DeclIndex);
    if (SlotIt == Slot.end())
      return Reject("outcome for method #" + std::to_string(W.DeclIndex) +
                    " which is not in this wave");
    if (Filled[SlotIt->second])
      return Reject("duplicate outcome for method #" +
                    std::to_string(W.DeclIndex));
    Filled[SlotIt->second] = true;

    MethodOutcome Out;
    Out.Failed = W.Failed;
    Out.Error = std::move(W.Error);
    if (W.SolverUsed > static_cast<uint8_t>(SolverChoice::Exact))
      return Reject("unknown solver id " + std::to_string(W.SolverUsed));
    Out.Report.Used = static_cast<SolverChoice>(W.SolverUsed);
    Out.Report.Fallback = W.FallbackUsed;
    Out.Report.Reason = std::move(W.Reason);
    Out.Report.Solve = std::move(W.Solve);
    Out.Report.Solves = W.Solves;
    Out.Variables = static_cast<unsigned>(W.Variables);
    Out.Factors = static_cast<unsigned>(W.Factors);
    Out.SolveSeconds = W.SolveSeconds;

    for (summaryio::SummaryUpdate &U : W.Updates) {
      auto OwnerIt = DeclsByIndex.find(U.OwnerDeclIndex);
      if (OwnerIt == DeclsByIndex.end())
        return Reject("update names unknown method #" +
                      std::to_string(U.OwnerDeclIndex));
      MethodDecl *Owner = OwnerIt->second;
      auto SumIt = Summaries.find(Owner);
      if (SumIt == Summaries.end())
        return Reject("update names unsummarized method '" +
                      Owner->qualifiedName() + "'");
      TargetSummary *Target =
          resolveTarget(SumIt->second, U.Role, U.ParamIndex);
      if (!Target)
        return Reject("update names missing target " +
                      std::string(summaryio::summaryTargetRoleName(U.Role)) +
                      "#" + std::to_string(U.ParamIndex) + " of '" +
                      Owner->qualifiedName() + "'");
      if (U.Odds.size() != Target->size())
        return Reject("odds arity mismatch for '" + Owner->qualifiedName() +
                      "' (" + std::to_string(U.Odds.size()) + " vs " +
                      std::to_string(Target->size()) + ")");
      PendingUpdate P;
      P.Target = Target;
      P.SummaryOwner = Owner;
      P.Role = U.Role;
      P.ParamIndex = U.ParamIndex;
      P.IsSelf = U.IsSelf;
      if (!U.IsSelf) {
        auto CallerIt = DeclsByIndex.find(U.SiteCallerDeclIndex);
        if (CallerIt == DeclsByIndex.end())
          return Reject("site update names unknown caller #" +
                        std::to_string(U.SiteCallerDeclIndex));
        P.Site = {CallerIt->second, U.SiteIndex};
      }
      P.Odds = std::move(U.Odds);
      P.DebugLine = std::move(U.DebugLine);
      Out.Updates.push_back(std::move(P));
    }
    Outcomes[SlotIt->second] = std::move(Out);
  }
  return Status::ok();
}

Expected<std::vector<summaryio::ShardMethodOutcome>>
InferEngine::analyzeShard(const std::vector<unsigned> &DeclIndices,
                          const std::string &Snapshot) {
  if (!buildDeclIndexLookup())
    return Status::error(ErrorCode::InvalidArgument,
                         "shard execution needs globally unique declaration "
                         "indices (program was not Sema-numbered)");

  // Skeleton store over the whole program: priors and shapes are a pure
  // function of the AST + SpecHi/SpecLo, so both sides rebuild them and
  // the snapshot only carries evidence.
  for (const auto &Type : Prog.Types)
    for (const auto &M : Type->Methods)
      Summaries.emplace(M.get(), MethodSummary::forMethod(*M, Opts.SpecHi,
                                                          Opts.SpecLo));
  if (Status S = summaryio::decodeSnapshot(Snapshot, Summaries); !S)
    return S;

  // Resolve and order the shard (declaration-index order; the
  // coordinator merges by batch slot, so our order only needs to be
  // deterministic, not to match the request).
  std::vector<MethodDecl *> Methods;
  Methods.reserve(DeclIndices.size());
  for (unsigned Index : DeclIndices) {
    auto It = DeclsByIndex.find(Index);
    if (It == DeclsByIndex.end())
      return Status::error(ErrorCode::InvalidArgument,
                           "shard names unknown method #" +
                               std::to_string(Index));
    if (!It->second->Body)
      return Status::error(ErrorCode::InvalidArgument,
                           "shard names bodiless method '" +
                               It->second->qualifiedName() + "'");
    Methods.push_back(It->second);
  }
  std::sort(Methods.begin(), Methods.end(), DeclIndexLess());

  std::vector<summaryio::ShardMethodOutcome> Wire;
  Wire.reserve(Methods.size());
  for (MethodDecl *M : Methods) {
    summaryio::ShardMethodOutcome W;
    W.DeclIndex = M->DeclIndex;
    MethodOutcome Out;
    try {
      MethodData MD;
      MD.Ir = lowerToIr(*M);
      MD.G = buildPfg(MD.Ir);
      Data.emplace(M, std::move(MD));
      Out = analyzeOne(M);
    } catch (const std::exception &E) {
      Out.Failed = true;
      Out.Error = Status::error(ErrorCode::Internal, E.what()).str();
    }
    W.Failed = Out.Failed;
    W.Error = std::move(Out.Error);
    W.SolverUsed = static_cast<uint8_t>(Out.Report.Used);
    W.FallbackUsed = Out.Report.Fallback;
    W.Reason = std::move(Out.Report.Reason);
    W.Solve = std::move(Out.Report.Solve);
    W.Solves = Out.Report.Solves;
    W.Variables = Out.Variables;
    W.Factors = Out.Factors;
    W.SolveSeconds = Out.SolveSeconds;
    for (PendingUpdate &U : Out.Updates) {
      summaryio::SummaryUpdate WU;
      WU.OwnerDeclIndex = U.SummaryOwner ? U.SummaryOwner->DeclIndex : 0;
      WU.Role = U.Role;
      WU.ParamIndex = U.ParamIndex;
      WU.IsSelf = U.IsSelf;
      WU.SiteCallerDeclIndex = U.Site.first ? U.Site.first->DeclIndex : 0;
      WU.SiteIndex = U.Site.second;
      WU.Odds = std::move(U.Odds);
      WU.DebugLine = std::move(U.DebugLine);
      W.Updates.push_back(std::move(WU));
    }
    Wire.push_back(std::move(W));
  }
  return Wire;
}

InferResult InferEngine::run() {
  InferResult Result;

  // Phase 1 (Figure 9 lines 2-6): initialize variables, models, worklist.
  // Model construction is isolated per method: one body the lowering
  // chokes on must not take whole-program inference down with it.
  telemetry::Span Phase1("infer.phase1.models", telemetry::TraceLevel::Phase,
                         "infer");
  std::vector<MethodDecl *> Bodies = Prog.methodsWithBodies();
  if (Phase1.active())
    Phase1.arg("methods", static_cast<uint64_t>(Bodies.size()));
  for (MethodDecl *M : Bodies) {
    try {
      MethodData MD;
      MD.Ir = lowerToIr(*M);
      MD.G = buildPfg(MD.Ir);
      Data.emplace(M, std::move(MD));
    } catch (const std::exception &E) {
      MethodReport &Report = Reports[M];
      Report.Failed = true;
      Report.Error = Status::error(ErrorCode::Internal, E.what()).str();
      ++Result.MethodsFailed;
      if (Diags)
        Diags->warning(M->Loc,
                       "model construction for '" + M->qualifiedName() +
                           "' failed (" + std::string(E.what()) +
                           "); method skipped, conservative summary used");
    }
  }
  for (const auto &Type : Prog.Types)
    for (const auto &M : Type->Methods)
      Summaries.emplace(M.get(),
                        MethodSummary::forMethod(*M, Opts.SpecHi,
                                                 Opts.SpecLo));

  Phase1.close();

  unsigned MaxIters =
      Opts.MaxIters ? Opts.MaxIters
                    : static_cast<unsigned>(3 * Bodies.size());

  // Phase 2 (lines 8-21): bounded iteration, scheduled as rounds of
  // reverse-topological SCC waves. Jobs within a wave read the summary
  // store as it stood when the wave began and return deferred updates;
  // the merge below applies them in declaration order, so results do not
  // depend on the worker count. A method whose analysis fails is
  // isolated: it keeps its conservative default summary (declared priors
  // only), a buffered diagnostic records why, and the schedule moves on
  // so every other method still gets a spec.
  telemetry::Span Phase2("infer.phase2.waves", telemetry::TraceLevel::Phase,
                         "infer");
  std::vector<std::vector<MethodDecl *>> Waves = Graph.sccWaves();
  // An externally owned pool (the batch serving layer shares one across
  // requests) overrides Parallelism; otherwise the engine owns its own.
  ThreadPool *Pool = Opts.Pool;
  std::unique_ptr<ThreadPool> OwnedPool;
  unsigned JobCount =
      Opts.Parallelism ? Opts.Parallelism : ThreadPool::defaultParallelism();
  if (!Pool && JobCount > 1) {
    OwnedPool = std::make_unique<ThreadPool>(JobCount);
    Pool = OwnedPool.get();
  }
  if (telemetry::enabled(telemetry::TraceLevel::Phase))
    telemetry::gauge("infer.parallelism")
        .set(static_cast<double>(Pool ? Pool->threadCount() : 1));

  // Sharded execution is only usable when methods have globally unique
  // declaration indices (any Sema-checked program); otherwise wire
  // identification is ambiguous and the engine quietly stays in process.
  const bool ShardUsable = Opts.ShardExec && buildDeclIndexLookup();

  // Arm the incremental cache (a no-op unless Opts.Cache is set and its
  // preconditions hold). The chain hashes computed here are the run's
  // invalidation frontier: they never change within a run, while the
  // applied-prior part of each key tracks the fixpoint iteration.
  {
    telemetry::Span CachePrep("cache.prepare", telemetry::TraceLevel::Phase,
                              "infer");
    prepareCache();
    if (CachePrep.active())
      CachePrep.argBool("armed", Cache != nullptr);
  }

  // Cooperative cancellation/budget poll, consulted at wave boundaries
  // only: inside a wave the jobs run to completion (their SOLVE steps are
  // individually bounded by SolveBudgetSeconds), so an abort never leaves
  // a half-merged summary store.
  auto AbortStatus = [&]() -> Status {
    if (Opts.Cancel && Opts.Cancel->cancelled())
      return Opts.Cancel->status();
    if (!Opts.RunBudget.unlimited() && Opts.RunBudget.expired())
      return Status::error(ErrorCode::DeadlineExceeded,
                           "run budget expired at wave boundary");
    return Status::ok();
  };

  std::set<MethodDecl *, DeclIndexLess> Dirty;
  std::set<MethodDecl *, DeclIndexLess> FailedMethods;
  for (const auto &Wave : Waves)
    for (MethodDecl *M : Wave)
      if (Data.count(M))
        Dirty.insert(M);
  // Phase-2 failure diagnostics are buffered per method and flushed in
  // source (declaration) order below: emission order must not depend on
  // which round or wave a method happened to fail in.
  MethodDeclMap<std::string> BufferedWarnings;

  unsigned Round = 0, WaveIndex = 0;
  while (!Dirty.empty() && Result.WorklistPicks < MaxIters &&
         Result.Aborted.isOk()) {
    bool AnyRun = false;
    ++Round;
    for (const auto &Wave : Waves) {
      // Wave boundary: the only place a governed run may be cut short.
      if (Status S = AbortStatus(); !S) {
        Result.Aborted = std::move(S);
        if (telemetry::enabled(telemetry::TraceLevel::Phase))
          telemetry::counter("infer.aborted").add(1);
        break;
      }
      // The wave is already in declaration order; so is the batch.
      std::vector<MethodDecl *> Batch;
      for (MethodDecl *M : Wave)
        if (Dirty.count(M) && !FailedMethods.count(M) && Data.count(M))
          Batch.push_back(M);
      if (Result.WorklistPicks + Batch.size() > MaxIters)
        Batch.resize(MaxIters - Result.WorklistPicks);
      if (Batch.empty())
        continue;
      for (MethodDecl *M : Batch)
        Dirty.erase(M);
      Result.WorklistPicks += static_cast<unsigned>(Batch.size());
      AnyRun = true;

      telemetry::Span WaveSpan("infer.wave", telemetry::TraceLevel::Phase,
                               "infer");
      if (WaveSpan.active()) {
        WaveSpan.arg("round", Round);
        WaveSpan.arg("wave", WaveIndex);
        WaveSpan.arg("methods", static_cast<uint64_t>(Batch.size()));
        telemetry::counter("infer.waves").add(1);
      }
      ++WaveIndex;

      // Build + solve every job in the batch against the frozen store.
      // Each job wraps itself in a method span that records where its
      // wall-clock went: time spent queued behind other jobs (wait_us,
      // measured from wave dispatch to job start) vs. time actually
      // analyzing (the span duration).
      const int64_t DispatchUs =
          telemetry::enabled() ? telemetry::nowUs() : 0;
      std::vector<MethodOutcome> Outcomes(Batch.size());

      // Cache lookups run on the scheduling thread against the same
      // frozen store the jobs would read. Hits fill their outcome slot
      // directly; everything else lands in Pending and is solved below
      // (sharded or in process). The merge step never sees the
      // difference: it walks the full batch in declaration order either
      // way, which is what keeps warm output byte-identical to cold.
      std::vector<size_t> Pending;
      std::vector<uint64_t> Keys;
      if (Cache) {
        telemetry::Span LookupSpan("cache.lookup",
                                   telemetry::TraceLevel::Phase, "infer");
        Keys.resize(Batch.size(), 0);
        unsigned WaveHits = 0;
        for (size_t I = 0; I != Batch.size(); ++I) {
          Keys[I] = solveKeyFor(Batch[I]);
          CachedSolve Entry;
          bool Resolved = false;
          switch (Cache->lookup(Batch[I]->qualifiedName(), Keys[I], Entry)) {
          case CacheLookup::Hit:
            if (adoptCachedSolve(std::move(Entry), Outcomes[I])) {
              ++Result.Cache.Hits;
              ++WaveHits;
              Resolved = true;
            } else {
              // Decoded but does not fit the current program: stale.
              ++Result.Cache.Invalidated;
            }
            break;
          case CacheLookup::Miss:
            ++Result.Cache.Misses;
            break;
          case CacheLookup::Invalidated:
            ++Result.Cache.Invalidated;
            break;
          case CacheLookup::Corrupt:
            ++Result.Cache.Corrupt;
            break;
          }
          if (!Resolved)
            Pending.push_back(I);
        }
        if (LookupSpan.active()) {
          LookupSpan.arg("hits", WaveHits);
          LookupSpan.arg("pending", static_cast<uint64_t>(Pending.size()));
        }
      } else {
        Pending.resize(Batch.size());
        std::iota(Pending.begin(), Pending.end(), size_t(0));
      }

      // Sharded path: freeze the store into a snapshot, hand the pending
      // sub-batch to the executor, and adopt its outcomes in place of
      // running the jobs here. Validation failures and executor errors
      // degrade the wave back to the in-process scheduler — identical
      // results either way (the executor contract), so degradation is
      // invisible in the output and the run can never be lost to
      // infrastructure.
      bool RemoteMerged = false;
      if (ShardUsable && !Pending.empty()) {
        telemetry::Span ShardWave("shard.wave", telemetry::TraceLevel::Phase,
                                  "shard");
        if (ShardWave.active()) {
          ShardWave.arg("wave", Result.Shard.WavesRemote +
                                    Result.Shard.WavesDegraded);
          ShardWave.arg("methods", static_cast<uint64_t>(Pending.size()));
        }
        std::vector<MethodDecl *> Sub;
        std::vector<unsigned> Indices;
        Sub.reserve(Pending.size());
        Indices.reserve(Pending.size());
        for (size_t I : Pending) {
          Sub.push_back(Batch[I]);
          Indices.push_back(Batch[I]->DeclIndex);
        }
        std::vector<MethodOutcome> SubOutcomes(Sub.size());
        Expected<std::vector<summaryio::ShardMethodOutcome>> Remote =
            Opts.ShardExec->executeWave(Indices,
                                        summaryio::encodeSnapshot(Summaries));
        Status Adopt =
            Remote ? adoptWireOutcomes(Remote.take(), Sub, SubOutcomes)
                   : Remote.status();
        if (Adopt) {
          for (size_t J = 0; J != Pending.size(); ++J)
            Outcomes[Pending[J]] = std::move(SubOutcomes[J]);
          RemoteMerged = true;
          ++Result.Shard.WavesRemote;
        } else {
          ++Result.Shard.WavesDegraded;
          if (telemetry::enabled(telemetry::TraceLevel::Phase))
            telemetry::counter("shard.wave_degraded").add(1);
          if (Diags)
            Diags->warning(Batch.front()->Loc,
                           "shard executor failed for a " +
                               std::to_string(Pending.size()) +
                               "-method wave (" + Adopt.str() +
                               "); wave re-run in process");
        }
      }

      if (!RemoteMerged)
        parallelFor(Pool, Pending.size(), [&](size_t J) {
        const size_t I = Pending[J];
        // Attribute the job's allocations to the governing request (a
        // no-op when ungoverned). Pool workers are shared across batch
        // requests, so enrollment must happen per job, not per thread.
        memtrack::MemScope MemGuard(Opts.Memory);
        telemetry::Span JobSpan("infer.method",
                                telemetry::TraceLevel::Method, "infer");
        int64_t WaitUs = 0;
        if (telemetry::enabled(telemetry::TraceLevel::Phase)) {
          WaitUs = telemetry::nowUs() - DispatchUs;
          telemetry::histogram("infer.queue_wait_us")
              .record(static_cast<double>(WaitUs));
        }
        const int64_t RunStartUs =
            telemetry::enabled() ? telemetry::nowUs() : 0;
        try {
          Outcomes[I] = analyzeOne(Batch[I]);
        } catch (const std::exception &E) {
          Outcomes[I].Failed = true;
          Outcomes[I].Error =
              Status::error(ErrorCode::Internal, E.what()).str();
        }
        if (telemetry::enabled(telemetry::TraceLevel::Phase))
          telemetry::histogram("infer.method_run_us")
              .record(static_cast<double>(telemetry::nowUs() - RunStartUs));
        if (JobSpan.active()) {
          const MethodOutcome &Out = Outcomes[I];
          JobSpan.arg("method", Batch[I]->qualifiedName());
          JobSpan.arg("wait_us", WaitUs);
          if (Out.Failed) {
            JobSpan.argBool("failed", true);
          } else {
            JobSpan.arg("vars", Out.Variables);
            JobSpan.arg("factors", Out.Factors);
            JobSpan.arg("solver", solverChoiceName(Out.Report.Used));
            JobSpan.argBool("fallback", Out.Report.Fallback);
          }
        }
      });

      // Persist fresh outcomes before the merge moves their odds out.
      // Failed solves are never stored: a failure must re-run, not
      // replay (the next run may not hit the fault, budget or bug).
      if (Cache) {
        for (size_t I : Pending) {
          if (Outcomes[I].Failed)
            continue;
          Cache->store(Batch[I]->qualifiedName(), Keys[I],
                       toCachedSolve(Outcomes[I]));
          ++Result.Cache.Stores;
        }
      }

      // Merge, in declaration (= batch) order, on this thread only.
      telemetry::Span MergeSpan("infer.merge", telemetry::TraceLevel::Phase,
                                "infer");
      unsigned MergedUpdates = 0, Requeued = 0;
      for (size_t I = 0; I != Batch.size(); ++I) {
        MethodDecl *M = Batch[I];
        MethodOutcome &Out = Outcomes[I];
        unsigned PrevSolves = 0;
        if (auto It = Reports.find(M); It != Reports.end())
          PrevSolves = It->second.Solves;
        Out.Report.Solves += PrevSolves;
        if (Out.Failed) {
          Out.Report.Failed = true;
          Out.Report.Error = Out.Error;
          Reports[M] = std::move(Out.Report);
          if (FailedMethods.insert(M).second) {
            ++Result.MethodsFailed;
            BufferedWarnings.emplace(
                M, "inference for '" + M->qualifiedName() + "' failed (" +
                       Out.Error +
                       "); method skipped, conservative summary used");
          }
          continue;
        }
        Result.SolveSeconds += Out.SolveSeconds;
        Result.TotalVariables += Out.Variables;
        Result.TotalFactors += Out.Factors;
        if (Out.Report.Fallback)
          ++Result.FallbackSolves;
        Reports[M] = std::move(Out.Report);

        // A changed summary invalidates the models that consume it: the
        // owning method itself and its callers (they applied the stale
        // summary). They rerun in a later wave or the next round.
        for (PendingUpdate &U : Out.Updates) {
          if (!U.DebugLine.empty())
            std::fprintf(stderr, "evidence %s\n", U.DebugLine.c_str());
          ++MergedUpdates;
          double Delta =
              U.IsSelf ? U.Target->setSelfOdds(std::move(U.Odds))
                       : U.Target->setSiteOdds(U.Site, std::move(U.Odds));
          if (Delta <= Opts.SummaryTolerance)
            continue;
          ++Requeued;
          auto MarkDirty = [&](MethodDecl *T) {
            if (Data.count(T) && !FailedMethods.count(T))
              Dirty.insert(T);
          };
          MarkDirty(U.SummaryOwner);
          for (MethodDecl *Caller : Graph.callers(U.SummaryOwner))
            MarkDirty(Caller);
        }
      }
      if (MergeSpan.active()) {
        MergeSpan.arg("updates", MergedUpdates);
        MergeSpan.arg("requeued", Requeued);
      }
      if (telemetry::enabled(telemetry::TraceLevel::Phase))
        telemetry::counter("infer.summary_updates").add(MergedUpdates);
      if (Result.WorklistPicks >= MaxIters)
        break;
    }
    if (!AnyRun)
      break; // Every dirty method is failed or budget-excluded.
  }
  for (const auto &[M, Message] : BufferedWarnings)
    if (Diags)
      Diags->warning(M->Loc, Message);
  Result.MethodsAnalyzed = static_cast<unsigned>(Bodies.size());
  if (Phase2.active())
    Phase2.arg("picks", Result.WorklistPicks);
  Phase2.close();

  telemetry::Span Phase3("infer.phase3.extract",
                         telemetry::TraceLevel::Phase, "infer");

  // Phase 3 (lines 22-29): extract deterministic specifications. A failed
  // method is conservatively silent: no inferred spec beats a spec built
  // from a summary its own evidence never reached. An aborted run
  // extracts nothing: partial summaries must not masquerade as specs.
  for (MethodDecl *M : Bodies) {
    if (!Result.Aborted.isOk())
      break;
    if (auto It = Reports.find(M); It != Reports.end() && It->second.Failed)
      continue;
    if (Opts.RespectDeclared && M->HasDeclaredSpec)
      continue;
    MethodSpec Spec =
        extractSpec(Summaries.at(M),
                    static_cast<unsigned>(M->Params.size()), Opts.Threshold);
    if (M->IsCtor && Spec.Result) {
      // A constructor's "result" is its receiver after construction.
      if (!Spec.ReceiverPost)
        Spec.ReceiverPost = Spec.Result;
      Spec.Result.reset();
    }
    if (!Spec.isEmpty())
      Result.Inferred.emplace(M, std::move(Spec));
  }

  for (auto &[M, Summary] : Summaries)
    Result.Summaries.emplace(M, Summary);
  Result.Reports = Reports;
  if (Opts.ShardExec) {
    // Dispatch-side counters live in the executor; the wave-level view
    // is ours. Merge both into the result.
    ShardStats S = Opts.ShardExec->stats();
    S.WavesRemote = Result.Shard.WavesRemote;
    S.WavesDegraded = Result.Shard.WavesDegraded;
    Result.Shard = S;
    if (telemetry::enabled(telemetry::TraceLevel::Phase)) {
      telemetry::counter("shard.waves_remote").add(S.WavesRemote);
      telemetry::counter("shard.workers_lost").add(S.WorkersLost);
      telemetry::counter("shard.quarantined").add(S.ShardsQuarantined);
    }
  }
  if (Opts.Cache && telemetry::enabled(telemetry::TraceLevel::Phase)) {
    telemetry::counter("cache.hit").add(Result.Cache.Hits);
    telemetry::counter("cache.miss").add(Result.Cache.Misses);
    telemetry::counter("cache.invalidated").add(Result.Cache.Invalidated);
    telemetry::counter("cache.corrupt").add(Result.Cache.Corrupt);
    telemetry::counter("cache.store").add(Result.Cache.Stores);
  }
  if (Phase3.active())
    Phase3.arg("inferred", static_cast<uint64_t>(Result.Inferred.size()));
  if (telemetry::enabled(telemetry::TraceLevel::Phase)) {
    telemetry::counter("infer.worklist_picks").add(Result.WorklistPicks);
    telemetry::counter("infer.methods_analyzed")
        .add(Result.MethodsAnalyzed);
    telemetry::counter("infer.methods_failed").add(Result.MethodsFailed);
    telemetry::counter("infer.fallback_solves").add(Result.FallbackSolves);
    telemetry::counter("infer.specs_inferred")
        .add(Result.Inferred.size());
  }
  return Result;
}

InferResult anek::runAnekInfer(Program &Prog, const InferOptions &Opts,
                               DiagnosticEngine *Diags) {
  InferEngine Engine(Prog, Opts, Diags);
  return Engine.run();
}

Expected<std::vector<summaryio::ShardMethodOutcome>>
anek::runShardMethods(Program &Prog,
                      const std::vector<unsigned> &DeclIndices,
                      const std::string &Snapshot,
                      const InferOptions &Opts) {
  // The worker is strictly a leaf: it must never re-shard, and the cache
  // belongs to the coordinator (which already skipped cached methods
  // before dispatching this shard).
  InferOptions Leaf = Opts;
  Leaf.ShardExec = nullptr;
  Leaf.Cache = nullptr;
  InferEngine Engine(Prog, Leaf, nullptr);
  return Engine.analyzeShard(DeclIndices, Snapshot);
}
