//===- AnekInfer.cpp - The modular ANEK-INFER algorithm --------------------===//

#include "infer/AnekInfer.h"

#include "analysis/CallGraph.h"
#include "analysis/IrBuilder.h"
#include "factor/Solvers.h"
#include "pfg/PfgBuilder.h"
#include "support/FaultInject.h"
#include "support/Format.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <exception>
#include <set>

using namespace anek;

const char *anek::solverChoiceName(SolverChoice Choice) {
  switch (Choice) {
  case SolverChoice::SumProduct:
    return "bp";
  case SolverChoice::Gibbs:
    return "gibbs";
  case SolverChoice::Exact:
    return "exact";
  }
  return "unknown";
}

const MethodSpec *InferResult::specFor(const MethodDecl *Method) const {
  static const MethodSpec Empty;
  if (Method->HasDeclaredSpec)
    return &Method->DeclaredSpec;
  auto It = Inferred.find(Method);
  if (It != Inferred.end())
    return &It->second;
  return &Empty;
}

namespace {

/// Odds-ratio clamp: keeps evidence finite when marginals saturate.
double oddsRatio(double Marginal, double AppliedPrior) {
  double Ratio = probToOdds(Marginal) / probToOdds(AppliedPrior);
  return std::clamp(Ratio, 1e-6, 1e6);
}

/// Rewrites a summary prior for call-site application.
///
/// Requirement side (call pre): a callee that requires K is satisfied by
/// anything stronger, so kinds *stronger* than the winning kind must not
/// be suppressed — the object flowing through may hold more than is lent.
///
/// Availability side (call post / result): a callee that returns K also
/// makes every *weaker* kind available (unique can be downgraded to
/// anything), and the caller's retained permission can reconstitute
/// *stronger* kinds through merging (Section 2's borrow round trip), so
/// no kind other than the named one may be suppressed at the site.
std::vector<double> transformPrior(std::vector<double> P,
                                   bool IsRequirement) {
  if (P.size() < NumPermKinds)
    return P;
  unsigned Best = 0;
  for (unsigned K = 1; K != NumPermKinds; ++K)
    if (P[K] > P[Best])
      Best = K;
  if (P[Best] <= 0.6)
    return P; // No confident kind: leave untouched.
  if (IsRequirement) {
    for (unsigned K = 0; K != Best; ++K)
      P[K] = std::max(P[K], 0.5);
  } else {
    for (unsigned K = Best + 1; K != NumPermKinds; ++K)
      P[K] = std::max(P[K], 0.5);
  }
  return P;
}

/// Appends one cascade decision to a report's reason trail.
void appendReason(MethodReport &Report, std::string Why) {
  if (!Report.Reason.empty())
    Report.Reason += "; ";
  Report.Reason += std::move(Why);
}

/// The engine behind runAnekInfer.
class InferEngine {
public:
  InferEngine(Program &Prog, const InferOptions &Opts,
              DiagnosticEngine *Diags)
      : Prog(Prog), Opts(Opts), Diags(Diags), Graph(Prog) {}

  InferResult run();

private:
  struct MethodData {
    MethodIr Ir;
    Pfg G;
  };

  /// Solves one method's model; returns methods whose summary changed by
  /// more than the tolerance, or the failure that made the method
  /// unanalyzable (the caller isolates it).
  Expected<std::set<MethodDecl *>> analyzeOne(MethodDecl *M,
                                              InferResult &Result);

  /// Per-target evidence update helper. Converts the graph-side cavity
  /// beliefs into odds and writes them into \p Target. \p WeakenOnly caps
  /// odds at 1 (call-site evidence on preconditions). Returns the
  /// pooled-probability delta.
  double updateEvidence(TargetSummary &Target,
                        const std::vector<double> &Applied,
                        const std::vector<double> &Marginals,
                        const std::vector<double> &GraphBelief, bool IsSelf,
                        bool WeakenOnly, CallSiteKey Site,
                        const MethodDecl *DebugOwner = nullptr);

  /// Runs the configured solver, walking the fallback cascade when the
  /// primary misses its convergence contract; fills \p GraphBelief with
  /// the per-node cavity beliefs (for solvers without native support,
  /// approximated by dividing the prior out of the marginal) and records
  /// the cascade decisions in \p Report.
  Expected<Marginals> solveGraph(const FactorGraph &G, Marginals &GraphBelief,
                                 MethodReport &Report);

  Program &Prog;
  const InferOptions &Opts;
  DiagnosticEngine *Diags;
  CallGraph Graph;
  std::map<const MethodDecl *, MethodReport> Reports;
  std::map<MethodDecl *, MethodData> Data;
  std::map<const MethodDecl *, MethodSummary> Summaries;
  /// Declaration-order index: all iteration over method sets goes through
  /// this so results do not depend on pointer values.
  std::map<const MethodDecl *, unsigned> MethodIndex;
};

} // namespace

double InferEngine::updateEvidence(TargetSummary &Target,
                                   const std::vector<double> &Applied,
                                   const std::vector<double> &Marginals,
                                   const std::vector<double> &GraphBelief,
                                   bool IsSelf, bool WeakenOnly,
                                   CallSiteKey Site,
                                   const MethodDecl *DebugOwner) {
  // Two evidence channels, chosen by direction:
  //
  //  - Requirement-side call votes (WeakenOnly) use the graph-side cavity
  //    belief (the node's applied prior excluded): a caller that knows
  //    nothing about the object yields exactly 0.5 = neutral, so
  //    ignorance never erodes an API spec, while genuine contradiction
  //    (e.g. ALIVE evidence against a HASNEXT requirement) votes below.
  //
  //  - Everything else measures the solved marginal against the applied
  //    prior: that integrates long equality chains strongly enough for
  //    body evidence to clear the extraction threshold. A probability
  //    deadband absorbs the attenuation a strong prior suffers from
  //    merely-uninformed neighbors.
  // The weaken deadband is wide: post-condition priors of *other* calls
  // on the same chain can depress a cavity belief to ~0.4 without any
  // real counter-evidence; genuine contradiction (a state test or a
  // conflicting spec one hop away) lands near 0.1-0.2.
  constexpr double WeakenDeadband = 0.2;
  constexpr double BoostDeadband = 0.15;
  constexpr double OddsCap = 9.0;

  std::vector<double> Odds(Target.size(), 1.0);
  for (size_t I = 0, E = std::min(Applied.size(), Marginals.size()); I != E;
       ++I) {
    if (I >= Odds.size())
      break;
    double Ratio = 1.0;
    if (WeakenOnly) {
      double Belief = I < GraphBelief.size() ? GraphBelief[I] : 0.5;
      if (std::fabs(Belief - 0.5) < WeakenDeadband)
        continue;
      Ratio = std::min(probToOdds(Belief), 1.0);
    } else {
      if (std::fabs(Marginals[I] - Applied[I]) < BoostDeadband)
        continue;
      Ratio = oddsRatio(Marginals[I], Applied[I]);
    }
    Odds[I] = std::clamp(Ratio, 1.0 / OddsCap, OddsCap);
  }
  if (std::getenv("ANEK_DEBUG_EVIDENCE")) {
    std::string Line = DebugOwner ? DebugOwner->qualifiedName() : "?";
    Line += IsSelf ? " self" : " site";
    if (!IsSelf && Site.first)
      Line += " " + Site.first->qualifiedName() + "#" +
              std::to_string(Site.second);
    Line += WeakenOnly ? " [weaken]" : " [boost]";
    for (size_t I = 0; I != Odds.size(); ++I)
      if (Odds[I] != 1.0)
        Line += " v" + std::to_string(I) + "=" +
                std::to_string(Odds[I]);
    std::fprintf(stderr, "evidence %s\n", Line.c_str());
  }
  return IsSelf ? Target.setSelfOdds(std::move(Odds))
                : Target.setSiteOdds(Site, std::move(Odds));
}

Expected<Marginals> InferEngine::solveGraph(const FactorGraph &G,
                                            Marginals &GraphBelief,
                                            MethodReport &Report) {
  Deadline Budget = Opts.SolveBudgetSeconds > 0.0
                        ? Deadline::afterSeconds(Opts.SolveBudgetSeconds)
                        : Deadline();
  ++Report.Solves;
  Report.Fallback = false;
  Report.Reason.clear();

  // For solvers without native cavity support, divide the prior out of
  // the marginal (exact on trees, approximate on loops).
  auto DividePriors = [&](const Marginals &M) {
    GraphBelief.assign(M.size(), 0.5);
    for (unsigned V = 0; V != M.size(); ++V)
      GraphBelief[V] = oddsToProb(probToOdds(M[V]) /
                                  probToOdds(G.variable(V).Prior));
  };

  auto RunBp = [&](SumProductSolver::Options O) {
    O.Budget = Budget;
    Report.Used = SolverChoice::SumProduct;
    return SumProductSolver(O).solve(G, &GraphBelief, &Report.Solve);
  };
  auto RunGibbs = [&]() {
    GibbsSolver::Options O;
    O.Budget = Budget;
    Report.Used = SolverChoice::Gibbs;
    Marginals M = GibbsSolver(O).solve(G, &Report.Solve);
    DividePriors(M);
    return M;
  };
  // Terminal stage: enumeration is bounded by MaxVariables, so it runs
  // without the outer budget (an injected 'deadline' fault still trips
  // the fresh Deadline and exercises the total-failure path).
  auto RunExact = [&]() -> Expected<Marginals> {
    Expected<Marginals> M = ExactSolver().solve(G, Deadline());
    if (M) {
      DividePriors(*M);
      Report.Used = SolverChoice::Exact;
      Report.Solve = SolveReport();
      Report.Solve.Converged = true;
    }
    return M;
  };

  // Explicitly requested non-default solvers keep their semantics.
  if (Opts.Solver == SolverChoice::Gibbs)
    return RunGibbs();
  if (Opts.Solver == SolverChoice::Exact) {
    Expected<Marginals> M = RunExact();
    if (M)
      return M;
    // Too large for enumeration; fall back to belief propagation.
    Report.Fallback = true;
    appendReason(Report, M.status().str());
    return RunBp(SumProductSolver::Options());
  }

  // The cascade (DESIGN.md): BP -> damped BP -> Gibbs -> exact.
  SumProductSolver::Options BpOpts;
  Marginals M = RunBp(BpOpts);
  if (Report.Solve.Converged || !Opts.Fallback)
    return M;

  Report.Fallback = true;
  appendReason(Report,
               formatStr("bp missed convergence (residual %.2g after %u "
                         "iterations%s)",
                         Report.Solve.Residual, Report.Solve.Iterations,
                         Report.Solve.DeadlineExpired ? ", budget expired"
                                                      : ""));

  // Stage 2: heavier damping and a longer leash tame most oscillations.
  SumProductSolver::Options Damped;
  Damped.Damping = 0.6;
  Damped.MaxIterations = BpOpts.MaxIterations * 2;
  Marginals DampedM = RunBp(Damped);
  if (Report.Solve.Converged)
    return DampedM;
  SolveReport DampedReport = Report.Solve;
  // Nearly-converged beliefs beat a jump to sampling: Gibbs noise can
  // erase a spec that a residual this small would have kept. The injected
  // non-convergence fault models *bad* divergence, so it skips this exit.
  constexpr double NearConvergence = 1e-2;
  if (!(faults::anyActive() &&
        faults::active(FaultKind::BpNonConvergence)) &&
      !Report.Solve.DeadlineExpired &&
      Report.Solve.Residual <= NearConvergence) {
    appendReason(Report, formatStr("accepted nearly-converged damped bp "
                                   "(residual %.2g)",
                                   Report.Solve.Residual));
    return DampedM;
  }
  appendReason(Report, formatStr("damped bp retry missed convergence "
                                 "(residual %.2g)",
                                 Report.Solve.Residual));

  // Stage 3: seeded Gibbs does not depend on message convergence at all.
  Marginals GibbsM = RunGibbs();
  if (Report.Solve.Converged)
    return GibbsM;
  bool GibbsCollectedSome = Report.Solve.Iterations > 0;
  appendReason(Report, "gibbs chain cut short");

  // Stage 4: exact enumeration when the graph is small enough.
  if (G.variableCount() <= ExactSolver::MaxVariables) {
    Expected<Marginals> ExactM = RunExact();
    if (ExactM)
      return ExactM;
    appendReason(Report, ExactM.status().str());
  }

  // Every stage degraded: keep the best approximation we have — a partial
  // Gibbs estimate when any samples were collected, else the damped
  // (unconverged) BP beliefs. Still a usable approximation, and the
  // report says exactly how it was obtained.
  if (GibbsCollectedSome) {
    appendReason(Report, "using partial gibbs estimate");
    return GibbsM;
  }
  Report.Used = SolverChoice::SumProduct;
  Report.Solve = DampedReport;
  appendReason(Report, "using unconverged bp beliefs");
  // GraphBelief currently holds Gibbs-derived beliefs; recompute for the
  // damped BP marginals we are about to return.
  DividePriors(DampedM);
  return DampedM;
}

Expected<std::set<MethodDecl *>> InferEngine::analyzeOne(MethodDecl *M,
                                                         InferResult &Result) {
  // Fault 'solve-fail': this method's SOLVE step fails outright, proving
  // the isolation path keeps the rest of the program inferable.
  if (faults::anyActive() &&
      faults::active(FaultKind::SolveFailure, M->qualifiedName()))
    return faults::injectedError(FaultKind::SolveFailure, M->qualifiedName());

  MethodData &MD = Data.at(M);
  const Pfg &G = MD.G;

  FactorGraph FG;
  PfgVarMap Vars(G, FG);
  generateConstraints(G, FG, Vars, Opts.Constraints);

  // Records of every prior application so evidence can be divided out.
  struct Application {
    PfgNodeId Node = NoPfgNode;
    TargetSummary *Target = nullptr;
    /// Method whose summary the target belongs to.
    MethodDecl *SummaryOwner = nullptr;
    std::vector<double> Applied;
    bool IsSelf = false;
    /// True for call-site precondition nodes: a site may only weaken a
    /// requirement, never strengthen it (requirements come from bodies).
    bool IsRequirement = false;
    CallSiteKey Site{nullptr, 0};
  };
  std::vector<Application> Applications;

  auto Apply = [&](PfgNodeId Node, TargetSummary *Target,
                   MethodDecl *SummaryOwner, bool IsSelf, CallSiteKey Site,
                   bool IsRequirement = false) {
    if (Node == NoPfgNode || !Target)
      return;
    Application App;
    App.Node = Node;
    App.Target = Target;
    App.SummaryOwner = SummaryOwner;
    App.IsSelf = IsSelf;
    App.Site = Site;
    App.IsRequirement = IsRequirement;
    App.Applied =
        IsSelf ? Target->pooledWithoutSelf() : Target->pooledWithoutSite(Site);
    if (!IsSelf)
      App.Applied = transformPrior(std::move(App.Applied), IsRequirement);
    setMarginalPriors(FG, Vars.node(Node), App.Applied);
    Applications.push_back(std::move(App));
  };

  // The method's own interface nodes: prior = summary minus own evidence.
  MethodSummary &Self = Summaries.at(M);
  CallSiteKey NoSite{nullptr, 0};
  Apply(G.ReceiverPre, Self.RecvPre ? &*Self.RecvPre : nullptr, M, true,
        NoSite);
  Apply(G.ReceiverPost, Self.RecvPost ? &*Self.RecvPost : nullptr, M, true,
        NoSite);
  for (size_t I = 0; I != G.ParamPre.size(); ++I) {
    if (I < Self.ParamPre.size() && Self.ParamPre[I])
      Apply(G.ParamPre[I], &*Self.ParamPre[I], M, true, NoSite);
    if (I < Self.ParamPost.size() && Self.ParamPost[I])
      Apply(G.ParamPost[I], &*Self.ParamPost[I], M, true, NoSite);
  }
  if (Self.Result)
    Apply(G.ResultNode, &*Self.Result, M, true, NoSite);

  // Call sites: cavity priors from callee summaries (APPLYSUMMARY).
  for (uint32_t S = 0; S != G.CallSites.size(); ++S) {
    const PfgCallSite &Site = G.CallSites[S];
    if (!Site.Callee)
      continue;
    auto SumIt = Summaries.find(Site.Callee);
    if (SumIt == Summaries.end())
      continue;
    MethodSummary &Callee = SumIt->second;
    MethodDecl *D = Site.Callee;
    CallSiteKey Key{M, S};
    Apply(Site.RecvPre, Callee.RecvPre ? &*Callee.RecvPre : nullptr, D,
          false, Key, /*IsRequirement=*/true);
    Apply(Site.RecvPost, Callee.RecvPost ? &*Callee.RecvPost : nullptr, D,
          false, Key);
    for (size_t I = 0; I != Site.ArgPre.size(); ++I) {
      if (I < Callee.ParamPre.size() && Callee.ParamPre[I])
        Apply(Site.ArgPre[I], &*Callee.ParamPre[I], D, false, Key,
              /*IsRequirement=*/true);
      if (I < Callee.ParamPost.size() && Callee.ParamPost[I])
        Apply(Site.ArgPost[I], &*Callee.ParamPost[I], D, false, Key);
    }
    if (Callee.Result)
      Apply(Site.Result, &*Callee.Result, D, false, Key);
  }

  Timer SolveTimer;
  Marginals GraphBelief;
  MethodReport &Report = Reports[M];
  Expected<Marginals> Solved = solveGraph(FG, GraphBelief, Report);
  Result.SolveSeconds += SolveTimer.seconds();
  Result.TotalVariables += FG.variableCount();
  Result.TotalFactors += FG.factorCount();
  if (!Solved)
    return Solved.status();
  if (Report.Fallback)
    ++Result.FallbackSolves;
  Marginals Solution = Solved.take();

  // Push evidence back into summaries (UPDATESUMMARY).
  std::set<MethodDecl *> Changed;
  for (const Application &App : Applications) {
    std::vector<double> NodeMarginals =
        readMarginals(Vars.node(App.Node), Solution);
    std::vector<double> NodeBelief =
        readMarginals(Vars.node(App.Node), GraphBelief);
    double Delta = updateEvidence(*App.Target, App.Applied, NodeMarginals,
                                  NodeBelief, App.IsSelf,
                                  !App.IsSelf && App.IsRequirement,
                                  App.Site, App.SummaryOwner);
    if (Delta > Opts.SummaryTolerance)
      Changed.insert(App.SummaryOwner);
  }
  return Changed;
}

InferResult InferEngine::run() {
  InferResult Result;

  // Phase 1 (Figure 9 lines 2-6): initialize variables, models, worklist.
  // Model construction is isolated per method: one body the lowering
  // chokes on must not take whole-program inference down with it.
  std::vector<MethodDecl *> Bodies = Prog.methodsWithBodies();
  for (MethodDecl *M : Bodies) {
    try {
      MethodData MD;
      MD.Ir = lowerToIr(*M);
      MD.G = buildPfg(MD.Ir);
      Data.emplace(M, std::move(MD));
    } catch (const std::exception &E) {
      MethodReport &Report = Reports[M];
      Report.Failed = true;
      Report.Error = Status::error(ErrorCode::Internal, E.what()).str();
      ++Result.MethodsFailed;
      if (Diags)
        Diags->warning(M->Loc,
                       "model construction for '" + M->qualifiedName() +
                           "' failed (" + std::string(E.what()) +
                           "); method skipped, conservative summary used");
    }
  }
  for (const auto &Type : Prog.Types)
    for (const auto &M : Type->Methods) {
      MethodIndex.emplace(M.get(),
                          static_cast<unsigned>(MethodIndex.size()));
      Summaries.emplace(M.get(),
                        MethodSummary::forMethod(*M, Opts.SpecHi,
                                                 Opts.SpecLo));
    }

  std::deque<MethodDecl *> Worklist;
  std::set<MethodDecl *> InWorklist;
  for (MethodDecl *M : Graph.bottomUpOrder()) {
    if (!Data.count(M))
      continue;
    Worklist.push_back(M);
    InWorklist.insert(M);
  }

  unsigned MaxIters =
      Opts.MaxIters ? Opts.MaxIters
                    : static_cast<unsigned>(3 * Bodies.size());

  // Phase 2 (lines 8-21): bounded worklist iteration. A method whose
  // analysis fails is isolated: it keeps its conservative default summary
  // (declared priors only), a diagnostic records why, and the worklist
  // moves on so every other method still gets a spec.
  std::set<MethodDecl *> FailedMethods;
  while (!Worklist.empty() && Result.WorklistPicks < MaxIters) {
    MethodDecl *M = Worklist.front();
    Worklist.pop_front();
    InWorklist.erase(M);
    ++Result.WorklistPicks;

    Expected<std::set<MethodDecl *>> Analyzed = [&]() ->
        Expected<std::set<MethodDecl *>> {
      try {
        return analyzeOne(M, Result);
      } catch (const std::exception &E) {
        return Status::error(ErrorCode::Internal, E.what());
      }
    }();
    if (!Analyzed) {
      MethodReport &Report = Reports[M];
      Report.Failed = true;
      Report.Error = Analyzed.status().str();
      if (FailedMethods.insert(M).second) {
        ++Result.MethodsFailed;
        if (Diags)
          Diags->warning(M->Loc,
                         "inference for '" + M->qualifiedName() +
                             "' failed (" + Analyzed.status().str() +
                             "); method skipped, conservative summary used");
      }
      continue;
    }
    std::set<MethodDecl *> ChangedSet = Analyzed.take();
    // Iterate in declaration order, not pointer order: the requeue order
    // must be deterministic across runs and processes.
    std::vector<MethodDecl *> Changed(ChangedSet.begin(), ChangedSet.end());
    std::sort(Changed.begin(), Changed.end(),
              [&](const MethodDecl *A, const MethodDecl *B) {
                return MethodIndex.at(A) < MethodIndex.at(B);
              });

    // A changed summary invalidates the models that consume it: the
    // method itself and its callers (they applied the stale summary).
    for (MethodDecl *C : Changed) {
      auto Enqueue = [&](MethodDecl *Target) {
        if (!Data.count(Target) || InWorklist.count(Target) ||
            FailedMethods.count(Target))
          return;
        Worklist.push_back(Target);
        InWorklist.insert(Target);
      };
      Enqueue(C);
      for (MethodDecl *Caller : Graph.callers(C))
        Enqueue(Caller);
    }
  }
  Result.MethodsAnalyzed = static_cast<unsigned>(Bodies.size());

  // Phase 3 (lines 22-29): extract deterministic specifications. A failed
  // method is conservatively silent: no inferred spec beats a spec built
  // from a summary its own evidence never reached.
  for (MethodDecl *M : Bodies) {
    if (auto It = Reports.find(M); It != Reports.end() && It->second.Failed)
      continue;
    if (Opts.RespectDeclared && M->HasDeclaredSpec)
      continue;
    MethodSpec Spec =
        extractSpec(Summaries.at(M),
                    static_cast<unsigned>(M->Params.size()), Opts.Threshold);
    if (M->IsCtor && Spec.Result) {
      // A constructor's "result" is its receiver after construction.
      if (!Spec.ReceiverPost)
        Spec.ReceiverPost = Spec.Result;
      Spec.Result.reset();
    }
    if (!Spec.isEmpty())
      Result.Inferred.emplace(M, std::move(Spec));
  }

  for (auto &[M, Summary] : Summaries)
    Result.Summaries.emplace(M, Summary);
  Result.Reports = Reports;
  return Result;
}

InferResult anek::runAnekInfer(Program &Prog, const InferOptions &Opts,
                               DiagnosticEngine *Diags) {
  InferEngine Engine(Prog, Opts, Diags);
  return Engine.run();
}
