//===- AnekInfer.h - The modular ANEK-INFER algorithm ------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ANEK-INFER worklist algorithm of paper Figure 9: per-method
/// probabilistic models are solved one at a time; probabilistic summaries
/// placed at method boundaries carry information across methods; the loop
/// runs a bounded number of iterations instead of to a fixpoint; a final
/// thresholding step extracts deterministic specifications.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_INFER_ANEKINFER_H
#define ANEK_INFER_ANEKINFER_H

#include "constraints/ConstraintGen.h"
#include "infer/Summary.h"
#include "lang/Ast.h"

#include <map>
#include <memory>

namespace anek {

/// Which marginal solver ANEK-INFER's SOLVE step uses.
enum class SolverChoice { SumProduct, Gibbs, Exact };

/// Tunables of the inference (paper Sections 3.3-3.4).
struct InferOptions {
  /// Worklist picks (Figure 9's MaxIters). 0 means 3 passes over the
  /// methods with bodies.
  unsigned MaxIters = 0;
  /// Extraction threshold t in [0.5, 1).
  double Threshold = 0.7;
  /// A summary change below this does not requeue dependents.
  double SummaryTolerance = 0.02;
  SolverChoice Solver = SolverChoice::SumProduct;
  ConstraintOptions Constraints;
  /// Spec-prior strengths (Section 3.2).
  double SpecHi = 0.9;
  double SpecLo = 0.1;
  /// Keep explicitly declared specs instead of inferred ones.
  bool RespectDeclared = true;
};

/// Outcome of a run.
struct InferResult {
  /// Inferred specs for methods that had none declared (non-empty only).
  std::map<const MethodDecl *, MethodSpec> Inferred;
  /// Final summaries (for inspection/benches).
  std::map<const MethodDecl *, MethodSummary> Summaries;

  // Statistics.
  unsigned WorklistPicks = 0;
  unsigned MethodsAnalyzed = 0;
  unsigned TotalVariables = 0;
  unsigned TotalFactors = 0;
  double SolveSeconds = 0.0;

  /// The spec to use for \p Method: declared when present, else inferred,
  /// else an empty spec.
  const MethodSpec *specFor(const MethodDecl *Method) const;

  /// Number of methods that received a non-empty inferred spec.
  unsigned inferredAnnotationCount() const {
    return static_cast<unsigned>(Inferred.size());
  }
};

/// Runs ANEK-INFER over every method with a body in \p Prog.
InferResult runAnekInfer(Program &Prog, const InferOptions &Opts = {});

} // namespace anek

#endif // ANEK_INFER_ANEKINFER_H
