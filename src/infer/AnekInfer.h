//===- AnekInfer.h - The modular ANEK-INFER algorithm ------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ANEK-INFER worklist algorithm of paper Figure 9: per-method
/// probabilistic models are solved one at a time; probabilistic summaries
/// placed at method boundaries carry information across methods; the loop
/// runs a bounded number of iterations instead of to a fixpoint; a final
/// thresholding step extracts deterministic specifications.
///
/// The loop is scheduled as reverse-topological *waves* of call-graph
/// SCCs: every method in a wave is built and solved against a read-only
/// snapshot of the summary store, and the resulting evidence is merged
/// back in declaration order once the wave completes. Because the
/// schedule is the algorithm (not an implementation detail of a thread
/// count), `Parallelism = N` produces byte-identical results to
/// `Parallelism = 1`. See DESIGN.md, "Concurrency model".
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_INFER_ANEKINFER_H
#define ANEK_INFER_ANEKINFER_H

#include "constraints/ConstraintGen.h"
#include "factor/Solvers.h"
#include "infer/SolveCache.h"
#include "infer/Summary.h"
#include "infer/SummaryIO.h"
#include "lang/Ast.h"
#include "support/Cancel.h"
#include "support/Deadline.h"
#include "support/Diagnostics.h"
#include "support/MemTrack.h"

#include <map>
#include <memory>

namespace anek {

class ThreadPool;

/// Which marginal solver ANEK-INFER's SOLVE step uses.
enum class SolverChoice { SumProduct, Gibbs, Exact };

/// Renders a SolverChoice as "bp"/"gibbs"/"exact".
const char *solverChoiceName(SolverChoice Choice);

/// Counters of the sharded execution tier (src/shard/), carried in
/// InferResult so the serving layer can classify a run that survived
/// worker losses as degraded rather than silently clean.
struct ShardStats {
  /// Wave batches the executor ran remotely.
  unsigned WavesRemote = 0;
  /// Waves that fell back to in-process execution after the executor
  /// failed outright or returned an unusable result.
  unsigned WavesDegraded = 0;
  /// Shard dispatches to worker processes, re-dispatches included.
  unsigned ShardsDispatched = 0;
  /// Dispatches that were retries after a worker loss.
  unsigned Redispatches = 0;
  /// Worker processes lost: crashed, hung past the heartbeat deadline,
  /// or recycled after an unreadable frame.
  unsigned WorkersLost = 0;
  unsigned WorkersSpawned = 0;
  /// Shards that exhausted their loss budget and were degraded to
  /// in-process sequential execution (terminal state
  /// degraded(shard-quarantine); the work is never lost).
  unsigned ShardsQuarantined = 0;
  /// Dispatches served over a socket transport (remote worker daemons);
  /// the rest ran over local fork/exec pipes.
  unsigned RemoteDispatches = 0;
  /// Socket sessions opened to an endpoint that had been connected
  /// before — the reconnect-after-loss (or after-refusal) path.
  unsigned Reconnects = 0;
  /// Remote endpoints that exhausted their reconnect credit and were
  /// quarantined for the run; dispatches fall down the ladder to local
  /// fork/exec workers (and ultimately in-process).
  unsigned EndpointsQuarantined = 0;
};

/// Executes wave batches outside the engine's own process. The engine
/// stays in charge of the algorithm — wave composition, the frozen
/// snapshot, merge order — and delegates only the embarrassingly
/// parallel middle: "analyze these methods against this snapshot".
///
/// The contract that keeps `--shards N` byte-identical to `-j1`:
/// executeWave receives a declaration-ordered batch plus a sealed
/// summary snapshot (summaryio::encodeSnapshot) and must return exactly
/// one outcome per requested method, computed as runShardMethods would
/// compute it with the same options. Outcomes may arrive in any order
/// (the engine re-sorts into batch order before merging) and may be
/// computed anywhere, any number of attempts deep — re-dispatch after a
/// crash re-runs against the same snapshot, so retries are invisible in
/// the result. An error return degrades the wave to in-process
/// execution; it never fails the run.
class WaveShardExecutor {
public:
  virtual ~WaveShardExecutor() = default;

  /// Analyzes the methods named by \p DeclIndices against \p Snapshot.
  virtual Expected<std::vector<summaryio::ShardMethodOutcome>>
  executeWave(const std::vector<unsigned> &DeclIndices,
              const std::string &Snapshot) = 0;

  /// Dispatch-side counters accumulated so far (WavesRemote/WavesDegraded
  /// are filled by the engine; implementations report the rest).
  virtual ShardStats stats() const { return {}; }
};

/// Tunables of the inference (paper Sections 3.3-3.4).
struct InferOptions {
  /// Worklist picks (Figure 9's MaxIters). 0 means 3 passes over the
  /// methods with bodies.
  unsigned MaxIters = 0;
  /// Extraction threshold t in [0.5, 1).
  double Threshold = 0.7;
  /// A summary change below this does not requeue dependents.
  double SummaryTolerance = 0.02;
  SolverChoice Solver = SolverChoice::SumProduct;
  ConstraintOptions Constraints;
  /// Spec-prior strengths (Section 3.2).
  double SpecHi = 0.9;
  double SpecLo = 0.1;
  /// Keep explicitly declared specs instead of inferred ones.
  bool RespectDeclared = true;

  // Robustness knobs (see DESIGN.md, "Failure model and degradation").
  /// When the primary solver misses its convergence contract, walk the
  /// fallback cascade (BP -> damped BP -> Gibbs -> exact) instead of
  /// silently using unconverged beliefs.
  bool Fallback = true;
  /// Wall-clock budget per SOLVE step in seconds; 0 = unlimited. The
  /// budget is a degradation trigger, not an abort: an expired solve
  /// falls through the cascade and ultimately keeps the best partial
  /// marginals available.
  double SolveBudgetSeconds = 0.0;

  // Parallel scheduler (DESIGN.md, "Concurrency model").
  /// Worker threads for the wave scheduler: 1 = run wave jobs inline,
  /// 0 = one worker per hardware thread, N = exactly N workers. The
  /// schedule (SCC waves over a read-only summary snapshot, updates
  /// merged in declaration order) is the same for every value, so the
  /// result is byte-identical regardless of Parallelism.
  unsigned Parallelism = 1;
  /// User seed mixed into every per-method solver seed. Each method's
  /// Gibbs chain is seeded from a stable hash of its qualified name plus
  /// this value, so sampling does not depend on scheduling order.
  uint64_t Seed = 1;

  // Serving integration (DESIGN.md, "Serving model"). All four default to
  // "not governed"; single-request callers pay nothing.
  /// Externally owned worker pool for wave jobs; overrides Parallelism
  /// when set. The batch serving layer shares one pool across requests.
  ThreadPool *Pool = nullptr;
  /// Cooperative cancellation, polled at wave boundaries: a cancelled run
  /// stops scheduling waves and returns with InferResult::Aborted set to
  /// the token's status. The work already merged stays in the result.
  const CancelToken *Cancel = nullptr;
  /// Whole-run wall-clock budget, polled at the same wave boundaries
  /// (SolveBudgetSeconds bounds individual SOLVE steps). Unlimited by
  /// default; an explicitly limited budget that expires aborts the run
  /// with DeadlineExceeded.
  Deadline RunBudget;
  /// When set, every inference thread (scheduler and wave workers alike)
  /// enrolls its allocations here, so a batch request's peak-memory
  /// watermark covers the whole solve.
  memtrack::MemCharge *Memory = nullptr;
  /// Request-scoped fault label prefix: site-filtered faults also match
  /// "<FaultScope>/<qualified-method>", so a batch request can be faulted
  /// without perturbing concurrent requests over the same program.
  std::string FaultScope;

  // Sharded execution (DESIGN.md, "Sharded execution and failure model").
  /// When set, wave batches are handed to this executor (normally a
  /// shard::ShardCoordinator farming the batch to worker processes)
  /// instead of the in-process scheduler. Requires globally unique
  /// declaration indices (any Sema-checked program); the engine verifies
  /// and silently runs in process otherwise. Never set in a worker.
  WaveShardExecutor *ShardExec = nullptr;

  // Incremental summary cache (DESIGN.md, "Incremental inference and the
  // summary cache").
  /// When set, the engine memoizes SOLVE invocations through this cache:
  /// each wave job's inputs are digested into a content key and a hit
  /// replays the stored evidence byte-identically instead of solving.
  /// Caching silently disables itself when its preconditions do not hold
  /// — a per-solve time budget (SolveBudgetSeconds > 0 makes solve
  /// results timing-dependent), ambiguous qualified method names, or an
  /// armed analysis-perturbing fault — because a replay would then not be
  /// guaranteed to reproduce what a fresh solve would compute. Never set
  /// in a shard worker.
  SolveCache *Cache = nullptr;

  // Fused solving (DESIGN.md, "Solver kernel layout").
  /// When set, every sum-product solve the engine issues is routed
  /// through this delegate instead of a locally constructed
  /// SumProductSolver. The serving layer installs serve::FusedBpSolver
  /// here so concurrent requests' solves rendezvous into shared-arena
  /// kernel sweeps; the delegate contract (factor/Solvers.h) keeps
  /// results byte-identical either way.
  BpSolveDelegate *Bp = nullptr;
};

/// How one method's SOLVE step went, cascade decisions included.
struct MethodReport {
  /// The solver whose marginals were actually used (last solve).
  SolverChoice Used = SolverChoice::SumProduct;
  /// True when any fallback stage past the first BP attempt was taken.
  bool Fallback = false;
  /// Why the cascade moved on; empty when the first attempt converged.
  std::string Reason;
  /// Convergence report of the solve whose marginals were used.
  SolveReport Solve;
  /// Number of SOLVE invocations across worklist picks.
  unsigned Solves = 0;
  /// True when the method was skipped entirely (constraint generation or
  /// every solver failed); its summary stays at the conservative default.
  bool Failed = false;
  /// The failure, when Failed.
  std::string Error;
};

/// Outcome of a run. The per-method maps are keyed in declaration order
/// (MethodDeclMap), so iterating them for output is deterministic across
/// runs and processes — pointer-keyed maps would leak ASLR into reports.
struct InferResult {
  /// Inferred specs for methods that had none declared (non-empty only).
  MethodDeclMap<MethodSpec> Inferred;
  /// Final summaries (for inspection/benches).
  MethodDeclMap<MethodSummary> Summaries;

  /// Per-method solver/cascade reports (one per method with a body).
  MethodDeclMap<MethodReport> Reports;

  // Statistics.
  unsigned WorklistPicks = 0;
  unsigned MethodsAnalyzed = 0;
  /// Methods isolated after a failure (skipped with a diagnostic).
  unsigned MethodsFailed = 0;
  /// SOLVE steps that used a fallback solver.
  unsigned FallbackSolves = 0;
  unsigned TotalVariables = 0;
  unsigned TotalFactors = 0;
  double SolveSeconds = 0.0;

  /// Sharded-execution counters; all zero unless InferOptions::ShardExec
  /// was set. ShardsQuarantined != 0 or WavesDegraded != 0 means the run
  /// survived infrastructure failures by degrading (results are still
  /// byte-identical to -j1 by the executor contract).
  ShardStats Shard;

  /// Summary-cache accounting; all zero unless InferOptions::Cache was
  /// set and usable. Corrupt != 0 means entries failed validation and
  /// were re-inferred (a cache integrity problem is never a run error).
  CacheStats Cache;

  /// Non-ok when the run was cut short by InferOptions::Cancel or
  /// RunBudget at a wave boundary. Summaries and reports reflect the work
  /// merged before the abort; no specs are extracted from an aborted run.
  Status Aborted;

  /// The spec to use for \p Method: declared when present, else inferred,
  /// else an empty spec.
  const MethodSpec *specFor(const MethodDecl *Method) const;

  /// Number of methods that received a non-empty inferred spec.
  unsigned inferredAnnotationCount() const {
    return static_cast<unsigned>(Inferred.size());
  }
};

/// Runs ANEK-INFER over every method with a body in \p Prog.
///
/// Inference never aborts on a bad method: a method whose constraint
/// generation or solve fails is skipped with a warning collected in
/// \p Diags (when provided), keeps its conservative default summary, and
/// the rest of the program is still inferred.
InferResult runAnekInfer(Program &Prog, const InferOptions &Opts = {},
                         DiagnosticEngine *Diags = nullptr);

/// Worker-side shard entry (`anek --worker`, src/shard/): analyzes the
/// methods named by \p DeclIndices — sequentially, in declaration-index
/// order — against the frozen summary \p Snapshot and returns their wire
/// outcomes. \p Opts must carry the same algorithm knobs (solver,
/// cascade, SpecHi/SpecLo, seed, constraints) as the coordinating run:
/// given that, the outcomes are byte-for-byte the evidence the
/// coordinator's own scheduler would have produced for the same wave.
/// A method that fails analysis yields a Failed outcome (merged as a
/// skip); the call itself errors only on structural problems — an
/// unknown declaration index or a snapshot that does not decode against
/// this program.
Expected<std::vector<summaryio::ShardMethodOutcome>>
runShardMethods(Program &Prog, const std::vector<unsigned> &DeclIndices,
                const std::string &Snapshot, const InferOptions &Opts);

} // namespace anek

#endif // ANEK_INFER_ANEKINFER_H
