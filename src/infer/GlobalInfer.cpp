//===- GlobalInfer.cpp - Whole-program joint inference ----------------------===//

#include "infer/GlobalInfer.h"

#include "analysis/IrBuilder.h"
#include "factor/Solvers.h"
#include "pfg/PfgBuilder.h"
#include "support/FaultInject.h"
#include "support/Format.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cmath>
#include <stdexcept>

using namespace anek;

namespace {

/// One method's PFG and its variables inside the shared joint graph.
struct MethodModel {
  MethodDecl *Method = nullptr;
  MethodIr Ir;
  Pfg G;
  std::unique_ptr<PfgVarMap> Vars;
};

/// Builds the Definition 1 joint graph: every method's constraints plus
/// PARAMARG bindings across call sites.
std::vector<MethodModel> buildJointGraph(Program &Prog, FactorGraph &FG,
                                         const InferOptions &Opts,
                                         DiagnosticEngine *Diags,
                                         unsigned *MethodsFailed) {
  std::vector<MethodModel> Models;
  for (MethodDecl *M : Prog.methodsWithBodies()) {
    // Per-method isolation, same contract as the modular algorithm: one
    // body the lowering or constraint generation chokes on is left out
    // of the joint graph instead of killing whole-program inference.
    try {
      if (faults::anyActive() &&
          faults::active(FaultKind::SolveFailure, M->qualifiedName()))
        throw std::runtime_error(
            faults::injectedError(FaultKind::SolveFailure, M->qualifiedName())
                .str());
      MethodModel Model;
      Model.Method = M;
      Model.Ir = lowerToIr(*M);
      Model.G = buildPfg(Model.Ir);
      Model.Vars = std::make_unique<PfgVarMap>(Model.G, FG);
      generateConstraints(Model.G, FG, *Model.Vars, Opts.Constraints);
      Models.push_back(std::move(Model));
    } catch (const std::exception &E) {
      if (MethodsFailed)
        ++*MethodsFailed;
      if (Diags)
        Diags->warning(M->Loc, "joint model for '" + M->qualifiedName() +
                                   "' failed (" + E.what() +
                                   "); method left out of the joint graph");
    }
  }

  // Declared-spec priors at interface nodes.
  for (MethodModel &Model : Models) {
    MethodDecl *M = Model.Method;
    if (!M->HasDeclaredSpec)
      continue;
    const MethodSpec &Spec = M->DeclaredSpec;
    const Pfg &G = Model.G;
    auto Seed = [&](PfgNodeId Node, const std::optional<PermState> &PS) {
      if (Node == NoPfgNode || !PS)
        return;
      setSpecPriors(FG, Model.Vars->node(Node), G.statesOf(Node), PS,
                    Opts.SpecHi, Opts.SpecLo);
    };
    Seed(G.ReceiverPre, Spec.ReceiverPre);
    Seed(G.ReceiverPost, Spec.ReceiverPost);
    for (size_t I = 0; I != G.ParamPre.size(); ++I) {
      if (I < Spec.ParamPre.size())
        Seed(G.ParamPre[I], Spec.ParamPre[I]);
      if (I < Spec.ParamPost.size())
        Seed(G.ParamPost[I], Spec.ParamPost[I]);
    }
    Seed(G.ResultNode, Spec.Result);
  }

  // PARAMARG: equality constraints binding parameters to arguments.
  // Declaration-index keyed like every per-method map: lookup-only today,
  // but pointer order must never become load-bearing by accident.
  MethodDeclMap<const MethodModel *> ByMethod;
  for (const MethodModel &Model : Models)
    ByMethod[Model.Method] = &Model;

  const double BindProb = 0.95;
  for (MethodModel &Model : Models) {
    for (const PfgCallSite &Site : Model.G.CallSites) {
      if (!Site.Callee)
        continue;
      auto It = ByMethod.find(Site.Callee);
      if (It == ByMethod.end()) {
        // Bodiless callee (API): its declared spec seeds the site nodes.
        const MethodSpec &Spec = Site.Callee->DeclaredSpec;
        if (!Site.Callee->HasDeclaredSpec)
          continue;
        auto Seed = [&](PfgNodeId Node,
                        const std::optional<PermState> &PS) {
          if (Node == NoPfgNode || !PS)
            return;
          setSpecPriors(FG, Model.Vars->node(Node), Model.G.statesOf(Node),
                        PS, Opts.SpecHi, Opts.SpecLo);
        };
        Seed(Site.RecvPre, Spec.ReceiverPre);
        Seed(Site.RecvPost, Spec.ReceiverPost);
        for (size_t I = 0; I != Site.ArgPre.size(); ++I) {
          if (I < Spec.ParamPre.size())
            Seed(Site.ArgPre[I], Spec.ParamPre[I]);
          if (I < Spec.ParamPost.size())
            Seed(Site.ArgPost[I], Spec.ParamPost[I]);
        }
        Seed(Site.Result, Site.Callee->IsCtor ? Spec.ReceiverPost
                                              : Spec.Result);
        continue;
      }

      const MethodModel &Callee = *It->second;
      auto Bind = [&](PfgNodeId SiteNode, PfgNodeId IfaceNode) {
        if (SiteNode == NoPfgNode || IfaceNode == NoPfgNode)
          return;
        const PermVars &A = Model.Vars->node(SiteNode);
        const PermVars &B = Callee.Vars->node(IfaceNode);
        for (unsigned K = 0; K != NumPermKinds; ++K)
          FG.addEqualityFactor(A.Kind[K], B.Kind[K], BindProb);
        size_t States = std::min(A.State.size(), B.State.size());
        for (size_t S = 0; S != States; ++S)
          FG.addEqualityFactor(A.State[S], B.State[S], BindProb);
      };
      Bind(Site.RecvPre, Callee.G.ReceiverPre);
      Bind(Site.RecvPost, Callee.G.ReceiverPost);
      for (size_t I = 0; I != Site.ArgPre.size(); ++I) {
        if (I < Callee.G.ParamPre.size())
          Bind(Site.ArgPre[I], Callee.G.ParamPre[I]);
        if (I < Callee.G.ParamPost.size())
          Bind(Site.ArgPost[I], Callee.G.ParamPost[I]);
      }
      // A constructor's new object is the callee's receiver post; a plain
      // call's result is the callee's result node.
      Bind(Site.Result, Site.IsCtor ? Callee.G.ReceiverPost
                                    : Callee.G.ResultNode);
    }
  }
  return Models;
}

/// Extracts specs for all modeled methods from a joint solution.
MethodDeclMap<MethodSpec>
extractAll(const std::vector<MethodModel> &Models, const Marginals &Solution,
           const InferOptions &Opts) {
  MethodDeclMap<MethodSpec> Out;
  for (const MethodModel &Model : Models) {
    MethodDecl *M = Model.Method;
    if (Opts.RespectDeclared && M->HasDeclaredSpec)
      continue;
    const Pfg &G = Model.G;
    MethodSpec Spec;
    Spec.resizeParams(static_cast<unsigned>(M->Params.size()));
    auto Extract = [&](PfgNodeId Node) -> std::optional<PermState> {
      if (Node == NoPfgNode)
        return std::nullopt;
      std::vector<double> P =
          readMarginals(Model.Vars->node(Node), Solution);
      return extractPermState(P, G.statesOf(Node), Opts.Threshold);
    };
    Spec.ReceiverPre = Extract(G.ReceiverPre);
    Spec.ReceiverPost = Extract(G.ReceiverPost);
    for (size_t I = 0; I != G.ParamPre.size(); ++I) {
      Spec.ParamPre[I] = Extract(G.ParamPre[I]);
      Spec.ParamPost[I] = Extract(G.ParamPost[I]);
    }
    Spec.Result = Extract(G.ResultNode);
    if (!Spec.isEmpty())
      Out.emplace(M, std::move(Spec));
  }
  return Out;
}

} // namespace

GlobalResult anek::runGlobalInfer(Program &Prog, const InferOptions &Opts,
                                  DiagnosticEngine *Diags) {
  telemetry::Span Span("global.infer", telemetry::TraceLevel::Phase,
                       "infer");
  GlobalResult Result;
  FactorGraph FG;
  std::vector<MethodModel> Models =
      buildJointGraph(Prog, FG, Opts, Diags, &Result.MethodsFailed);
  Result.TotalVariables = FG.variableCount();
  Result.TotalFactors = FG.factorCount();
  if (Span.active()) {
    Span.arg("vars", Result.TotalVariables);
    Span.arg("factors", Result.TotalFactors);
  }

  Deadline Budget = Opts.SolveBudgetSeconds > 0.0
                        ? Deadline::afterSeconds(Opts.SolveBudgetSeconds)
                        : Deadline();
  auto AppendReason = [&](std::string Why) {
    if (!Result.CascadeReason.empty())
      Result.CascadeReason += "; ";
    Result.CascadeReason += std::move(Why);
  };

  // Same fallback cascade as the modular algorithm, applied to the one
  // joint solve: BP -> damped BP -> Gibbs -> exact (small graphs only).
  Timer SolveTimer;
  SumProductSolver::Options SolverOpts;
  SolverOpts.MaxIterations = 80;
  SolverOpts.Budget = Budget;
  Result.Used = SolverChoice::SumProduct;
  Marginals Solution =
      SumProductSolver(SolverOpts).solve(FG, nullptr, &Result.Solve);
  if (!Result.Solve.Converged && Opts.Fallback) {
    Result.Fallback = true;
    AppendReason(formatStr("bp missed convergence (residual %.2g after %u "
                           "iterations)",
                           Result.Solve.Residual, Result.Solve.Iterations));
    SumProductSolver::Options Damped = SolverOpts;
    Damped.Damping = 0.6;
    Damped.MaxIterations = SolverOpts.MaxIterations * 2;
    Solution = SumProductSolver(Damped).solve(FG, nullptr, &Result.Solve);
    // Same near-convergence exit as the modular cascade: beliefs a hair
    // short of the tolerance are better than Gibbs sampling noise.
    constexpr double NearConvergence = 1e-2;
    if (!Result.Solve.Converged &&
        !(faults::anyActive() &&
          faults::active(FaultKind::BpNonConvergence)) &&
        !Result.Solve.DeadlineExpired &&
        Result.Solve.Residual <= NearConvergence) {
      AppendReason(formatStr("accepted nearly-converged damped bp "
                             "(residual %.2g)",
                             Result.Solve.Residual));
    } else if (!Result.Solve.Converged) {
      AppendReason(formatStr("damped bp retry missed convergence "
                             "(residual %.2g)",
                             Result.Solve.Residual));
      GibbsSolver::Options GibbsOpts;
      GibbsOpts.Budget = Budget;
      Result.Used = SolverChoice::Gibbs;
      Solution = GibbsSolver(GibbsOpts).solve(FG, &Result.Solve);
      if (!Result.Solve.Converged &&
          FG.variableCount() <= ExactSolver::MaxVariables) {
        AppendReason("gibbs chain cut short");
        if (Expected<Marginals> Exact = ExactSolver().solve(FG, Deadline())) {
          Result.Used = SolverChoice::Exact;
          Result.Solve = SolveReport();
          Result.Solve.Converged = true;
          Solution = Exact.take();
        }
      }
    }
  }
  Result.SolveSeconds = SolveTimer.seconds();

  Result.Inferred = extractAll(Models, Solution, Opts);
  return Result;
}

LogicalResult anek::runLogicalInfer(Program &Prog, unsigned VarLimit,
                                    const InferOptions &Opts) {
  LogicalResult Result;
  InferOptions LogicalOpts = Opts;
  LogicalOpts.Constraints = Opts.Constraints.logicalOnly();

  FactorGraph FG;
  std::vector<MethodModel> Models =
      buildJointGraph(Prog, FG, LogicalOpts, nullptr, nullptr);
  Result.TotalVariables = FG.variableCount();
  Result.TotalFactors = FG.factorCount();
  Result.Log2SearchSpace = static_cast<double>(FG.variableCount());

  // The logical enumeration honors the same per-solve wall-clock budget
  // as the probabilistic solvers; an expired budget is one more way the
  // deterministic configuration DNFs.
  Deadline Budget = Opts.SolveBudgetSeconds > 0.0
                        ? Deadline::afterSeconds(Opts.SolveBudgetSeconds)
                        : Deadline();
  Timer SolveTimer;
  ExactSolver Solver;
  std::optional<Marginals> Solution =
      Solver.solveLogical(FG, VarLimit, 0.5, Budget);
  Result.SolveSeconds = SolveTimer.seconds();

  if (!Solution) {
    Result.Finished = false;
    if (FG.variableCount() > VarLimit)
      Result.FailureReason = formatStr(
          "search space 2^%u assignments exceeds the enumeration budget "
          "of 2^%u (out of memory before a fixed point)",
          FG.variableCount(), VarLimit);
    else if (Budget.expired())
      Result.FailureReason = formatStr(
          "enumeration budget of %.3gs expired before a fixed point",
          Opts.SolveBudgetSeconds);
    else
      Result.FailureReason =
          "constraint system unsatisfiable (conflicting constraints)";
    return Result;
  }

  Result.Finished = true;
  Result.Inferred = extractAll(Models, *Solution, LogicalOpts);
  return Result;
}
