//===- GlobalInfer.h - Whole-program joint inference -------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two non-modular baselines:
///
///  - runGlobalInfer: builds the paper's Definition 1 model literally —
///    the product of every method's constraint system plus PARAMARG
///    equality factors binding parameters to arguments across call sites —
///    and solves it as one joint factor graph. At a fixpoint ANEK-INFER is
///    meant to agree with this (Section 3.4); it also anchors the
///    scalability bench.
///
///  - runLogicalInfer: the paper's "Anek Logical" configuration: only
///    logical constraints, solved deterministically (satisfying-assignment
///    enumeration). On anything beyond toy programs this exhausts its
///    resource budget and reports DNF, as in Table 2.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_INFER_GLOBALINFER_H
#define ANEK_INFER_GLOBALINFER_H

#include "infer/AnekInfer.h"

namespace anek {

/// Result of the joint whole-program inference. Inferred is keyed in
/// declaration order (MethodDeclMap) so printing it is deterministic.
struct GlobalResult {
  MethodDeclMap<MethodSpec> Inferred;
  unsigned TotalVariables = 0;
  unsigned TotalFactors = 0;
  double SolveSeconds = 0.0;

  /// Cascade bookkeeping for the single joint solve (same semantics as
  /// the per-method MethodReport in the modular algorithm).
  SolverChoice Used = SolverChoice::SumProduct;
  bool Fallback = false;
  std::string CascadeReason;
  SolveReport Solve;
  /// Methods whose model construction failed and were left out of the
  /// joint graph (each has a warning in the DiagnosticEngine).
  unsigned MethodsFailed = 0;
};

/// Solves the whole program as one factor graph (Definition 1). A method
/// whose model cannot be built is skipped with a warning in \p Diags;
/// the joint graph covers everything else.
GlobalResult runGlobalInfer(Program &Prog, const InferOptions &Opts = {},
                            DiagnosticEngine *Diags = nullptr);

/// Result of the deterministic logical-only inference.
struct LogicalResult {
  /// False when the solver gave up (DNF) — either too many variables for
  /// enumeration or an unsatisfiable constraint system (buggy program).
  bool Finished = false;
  /// Why it did not finish (empty when Finished).
  std::string FailureReason;
  unsigned TotalVariables = 0;
  unsigned TotalFactors = 0;
  /// Assignments the enumeration would have to consider (2^vars), as a
  /// log2 so it stays printable.
  double Log2SearchSpace = 0.0;
  MethodDeclMap<MethodSpec> Inferred;
  double SolveSeconds = 0.0;
};

/// Runs the deterministic logical-only configuration. \p VarLimit bounds
/// the enumeration (the "memory budget").
LogicalResult runLogicalInfer(Program &Prog, unsigned VarLimit = 24,
                              const InferOptions &Opts = {});

} // namespace anek

#endif // ANEK_INFER_GLOBALINFER_H
