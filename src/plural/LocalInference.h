//===- LocalInference.h - PLURAL's local fraction inference ------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Table 3 baseline: PLURAL does not need annotations on local
/// variables because a local inference determines "which fractions of
/// permissions are consumed and returned by different parts of a method
/// body", solving the resulting constraints by Gaussian elimination
/// [4, ch. 5]. We reproduce that engine over the PFG of a method: each
/// edge carries a fraction variable; conservation holds at interior
/// nodes; sources supply a whole permission; splits divide evenly; calls
/// return what they borrowed.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_PLURAL_LOCALINFERENCE_H
#define ANEK_PLURAL_LOCALINFERENCE_H

#include "pfg/Pfg.h"
#include "support/Rational.h"

#include <optional>
#include <vector>

namespace anek {

/// Result of the fractional inference over one method.
struct LocalInferenceResult {
  /// Whether a consistent fractional assignment exists.
  bool Consistent = false;
  /// Fraction assigned to each PFG edge (by edge id).
  std::vector<Rational> EdgeFractions;
  /// Row operations performed by the elimination (work metric).
  uint64_t EliminationOps = 0;
  /// Variables (edges) and equations in the system (size metrics).
  unsigned NumVariables = 0;
  unsigned NumEquations = 0;
  /// True when all fractions landed in [0, 1].
  bool InRange = false;
};

/// Runs the Gaussian-elimination fraction inference over \p G.
LocalInferenceResult runLocalInference(const Pfg &G);

} // namespace anek

#endif // ANEK_PLURAL_LOCALINFERENCE_H
