//===- LocalInference.cpp - PLURAL's local fraction inference --------------===//

#include "plural/LocalInference.h"

#include "plural/GaussianElim.h"

using namespace anek;

LocalInferenceResult anek::runLocalInference(const Pfg &G) {
  LocalInferenceResult Result;
  const unsigned NumEdges = G.edgeCount();
  Result.NumVariables = NumEdges;
  LinearSystem System(NumEdges);

  for (PfgNodeId N = 0; N != G.nodeCount(); ++N) {
    const std::vector<PfgEdgeId> &In = G.inEdges(N);
    const std::vector<PfgEdgeId> &Out = G.outEdges(N);
    const PfgNodeKind Kind = G.node(N).Kind;

    // Sources supply one whole permission to their outgoing flow.
    bool IsSource = Kind == PfgNodeKind::ParamPre ||
                    Kind == PfgNodeKind::NewObject ||
                    Kind == PfgNodeKind::FieldRead ||
                    Kind == PfgNodeKind::CallResult ||
                    Kind == PfgNodeKind::Unknown;
    if (IsSource && !Out.empty()) {
      std::vector<std::pair<unsigned, Rational>> Terms;
      for (PfgEdgeId E : Out)
        Terms.push_back({E, Rational(1)});
      System.addEquation(Terms, Rational(1));
      continue;
    }

    // Splits divide their input evenly across the outgoing edges (the
    // canonical half-and-half split of fractional permissions).
    if (Kind == PfgNodeKind::Split && !In.empty() && Out.size() >= 2) {
      // Conservation: sum(out) = sum(in).
      std::vector<std::pair<unsigned, Rational>> Terms;
      for (PfgEdgeId E : Out)
        Terms.push_back({E, Rational(1)});
      for (PfgEdgeId E : In)
        Terms.push_back({E, Rational(-1)});
      System.addEquation(Terms, Rational(0));
      // Even division: every pair of outgoing edges carries equal flow.
      for (size_t I = 1; I != Out.size(); ++I)
        System.addEquation(
            {{Out[0], Rational(1)}, {Out[I], Rational(-1)}}, Rational(0));
      continue;
    }

    // Call pre/post pairing: the callee returns what it borrowed. The
    // builder guarantees a CallPre has exactly one incoming edge and the
    // matching CallPost one outgoing edge; equate them via the call site.
    if (Kind == PfgNodeKind::CallPre && In.size() == 1) {
      // Locate the matching post node through the call-site record.
      const PfgNode &Node = G.node(N);
      if (Node.CallSite < G.CallSites.size()) {
        const PfgCallSite &Site = G.CallSites[Node.CallSite];
        PfgNodeId Post = NoPfgNode;
        if (Node.Target.Kind == SpecTargetKind::Receiver)
          Post = Site.RecvPost;
        else if (Node.Target.ParamIndex < Site.ArgPost.size())
          Post = Site.ArgPost[Node.Target.ParamIndex];
        if (Post != NoPfgNode && G.outEdges(Post).size() == 1)
          System.addEquation({{In[0], Rational(1)},
                              {G.outEdges(Post)[0], Rational(-1)}},
                             Rational(0));
      }
      continue;
    }
    if (Kind == PfgNodeKind::CallPost)
      continue; // Handled via its CallPre partner.

    // Interior conservation: flow in equals flow out (merges, joins).
    if (!In.empty() && !Out.empty()) {
      std::vector<std::pair<unsigned, Rational>> Terms;
      for (PfgEdgeId E : Out)
        Terms.push_back({E, Rational(1)});
      for (PfgEdgeId E : In)
        Terms.push_back({E, Rational(-1)});
      System.addEquation(Terms, Rational(0));
    }
  }

  Result.NumEquations = System.equationCount();
  std::optional<std::vector<Rational>> Solution =
      System.solve(&Result.EliminationOps);
  if (!Solution)
    return Result;
  Result.Consistent = true;
  Result.EdgeFractions = std::move(*Solution);
  Result.InRange = true;
  for (const Rational &F : Result.EdgeFractions)
    if (F.isNegative() || F > Rational(1))
      Result.InRange = false;
  return Result;
}
