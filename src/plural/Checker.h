//===- Checker.h - The PLURAL modular typestate checker ----------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A modular, flow-sensitive typestate checker in the PLURAL style
/// (paper Section 2): one method at a time, reference types refined by
/// access permissions with fractions, abstract states tracked through
/// calls, and dynamic state tests (@TrueIndicates/@FalseIndicates) applied
/// branch-sensitively. Specifications come from a pluggable provider so
/// the same checker runs the paper's Original / Bierhoff / Anek
/// configurations.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_PLURAL_CHECKER_H
#define ANEK_PLURAL_CHECKER_H

#include "lang/Ast.h"
#include "perm/FracPerm.h"
#include "support/Diagnostics.h"

#include <functional>
#include <vector>

namespace anek {

/// Supplies the spec for a method; must return non-null (an empty spec
/// means "unannotated").
using SpecProvider = std::function<const MethodSpec *(const MethodDecl *)>;

/// One checker warning (a subset of the diagnostics, kept structured for
/// the Table 2 metrics).
struct CheckWarning {
  SourceLocation Loc;
  const MethodDecl *InMethod = nullptr;
  const MethodDecl *Callee = nullptr; ///< Null for non-call warnings.
  std::string Message;
};

/// Result of checking a whole program.
struct CheckResult {
  std::vector<CheckWarning> Warnings;
  unsigned MethodsChecked = 0;

  unsigned warningCount() const {
    return static_cast<unsigned>(Warnings.size());
  }
};

/// Options for the checker.
struct CheckerOptions {
  /// Apply @TrueIndicates/@FalseIndicates on branches (PLURAL supports
  /// this; disable to model a branch-insensitive checker).
  bool BranchSensitive = true;
  /// Permission assumed for values with no specification at all
  /// (unannotated callee results, unknown fields). `share` lets
  /// read-style protocols pass while exclusive requirements still fail,
  /// which matches how unannotated PLURAL clients behave.
  PermKind DefaultKind = PermKind::Share;
};

/// Checks every method body in \p Prog against \p Specs.
CheckResult runChecker(Program &Prog, const SpecProvider &Specs,
                       const CheckerOptions &Opts = {});

/// Convenience provider: each method's declared spec only.
SpecProvider declaredSpecsOnly();

} // namespace anek

#endif // ANEK_PLURAL_CHECKER_H
