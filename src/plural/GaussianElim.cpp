//===- GaussianElim.cpp - Exact rational linear solving --------------------===//

#include "plural/GaussianElim.h"

#include <cassert>

using namespace anek;

void LinearSystem::addEquation(
    const std::vector<std::pair<unsigned, Rational>> &Terms, Rational Rhs) {
  Row R;
  R.Coeffs.assign(NumVars, Rational(0));
  for (const auto &[Var, Coeff] : Terms) {
    assert(Var < NumVars && "equation names unknown variable");
    R.Coeffs[Var] += Coeff;
  }
  R.Rhs = Rhs;
  Rows.push_back(std::move(R));
}

std::optional<std::vector<Rational>>
LinearSystem::solve(uint64_t *EliminationOps) const {
  std::vector<Row> M = Rows;
  uint64_t Ops = 0;

  unsigned PivotRow = 0;
  std::vector<int> PivotColOfRow(M.size(), -1);
  for (unsigned Col = 0; Col != NumVars && PivotRow < M.size(); ++Col) {
    // Find a pivot.
    unsigned Found = PivotRow;
    while (Found < M.size() && M[Found].Coeffs[Col].isZero())
      ++Found;
    if (Found == M.size())
      continue;
    std::swap(M[PivotRow], M[Found]);

    // Normalize the pivot row. An invalid pivot (overflow poison from a
    // pathological system) makes the whole solve unsolvable rather than
    // silently wrong.
    Rational Pivot = M[PivotRow].Coeffs[Col];
    if (!Pivot.isValid())
      return std::nullopt;
    for (unsigned C = Col; C != NumVars; ++C) {
      M[PivotRow].Coeffs[C] /= Pivot;
      ++Ops;
    }
    M[PivotRow].Rhs /= Pivot;

    // Eliminate the column everywhere else.
    for (unsigned R = 0; R != M.size(); ++R) {
      if (R == PivotRow || M[R].Coeffs[Col].isZero())
        continue;
      Rational Factor = M[R].Coeffs[Col];
      for (unsigned C = Col; C != NumVars; ++C) {
        M[R].Coeffs[C] -= Factor * M[PivotRow].Coeffs[C];
        ++Ops;
      }
      M[R].Rhs -= Factor * M[PivotRow].Rhs;
    }
    PivotColOfRow[PivotRow] = static_cast<int>(Col);
    ++PivotRow;
  }

  if (EliminationOps)
    *EliminationOps = Ops;

  // Inconsistency check: a zero row with nonzero RHS.
  for (unsigned R = PivotRow; R < M.size(); ++R) {
    bool AllZero = true;
    for (const Rational &C : M[R].Coeffs)
      if (!C.isZero()) {
        AllZero = false;
        break;
      }
    if (AllZero && !M[R].Rhs.isZero())
      return std::nullopt;
  }

  // Read the solution; free variables get zero.
  std::vector<Rational> Solution(NumVars, Rational(0));
  for (unsigned R = 0; R != PivotRow; ++R) {
    int Col = PivotColOfRow[R];
    assert(Col >= 0 && "pivot bookkeeping broken");
    Rational Value = M[R].Rhs;
    for (unsigned C = static_cast<unsigned>(Col) + 1; C != NumVars; ++C)
      if (!M[R].Coeffs[C].isZero())
        Value -= M[R].Coeffs[C] * Solution[C];
    Solution[static_cast<unsigned>(Col)] = Value;
  }
  for (const Rational &Value : Solution)
    if (!Value.isValid())
      return std::nullopt;
  return Solution;
}
