//===- Checker.cpp - The PLURAL modular typestate checker ------------------===//

#include "plural/Checker.h"

#include "analysis/IrBuilder.h"
#include "perm/StateSpace.h"

#include <cassert>
#include <map>
#include <set>

using namespace anek;

namespace {

/// Permission and abstract state of one tracked object.
struct ObjPerm {
  FracPerm Perm = FracPerm(PermKind::Share, Rational(1));
  /// Current abstract state; empty = ALIVE / unknown.
  std::string State;

  bool operator==(const ObjPerm &Other) const = default;
};

/// Abstract checker state at one program point: a must-alias partition of
/// the locals plus one ObjPerm per partition class.
struct AbsState {
  bool Reachable = false;
  std::map<LocalId, uint32_t> Vn;
  std::map<uint32_t, ObjPerm> Perm;

  bool operator==(const AbsState &Other) const = default;
};

/// Canonicalizes value numbers by first occurrence (stable comparison).
AbsState canonicalize(const AbsState &S) {
  AbsState Out;
  Out.Reachable = S.Reachable;
  std::map<uint32_t, uint32_t> Renaming;
  for (const auto &[Local, Vn] : S.Vn) {
    auto [It, Inserted] =
        Renaming.insert({Vn, static_cast<uint32_t>(Renaming.size())});
    (void)Inserted;
    Out.Vn[Local] = It->second;
    auto PermIt = S.Perm.find(Vn);
    if (PermIt != S.Perm.end())
      Out.Perm[It->second] = PermIt->second;
  }
  return Out;
}

/// Joins object facts: weaker kind, smaller fraction, common state.
ObjPerm joinObj(const ObjPerm &A, const ObjPerm &B) {
  ObjPerm Out;
  Out.Perm = joinPerms(A.Perm, B.Perm);
  Out.State = A.State == B.State ? A.State : std::string();
  return Out;
}

/// Control-flow join of two abstract states.
AbsState joinStates(const AbsState &A, const AbsState &B) {
  if (!A.Reachable)
    return B;
  if (!B.Reachable)
    return A;
  AbsState Out;
  Out.Reachable = true;
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> PairIds;
  for (const auto &[Local, VnA] : A.Vn) {
    auto ItB = B.Vn.find(Local);
    if (ItB == B.Vn.end())
      continue; // Only tracked on one path: drop.
    auto [PairIt, Inserted] = PairIds.insert(
        {{VnA, ItB->second}, static_cast<uint32_t>(PairIds.size())});
    (void)Inserted;
    uint32_t NewVn = PairIt->second;
    Out.Vn[Local] = NewVn;
    auto PermA = A.Perm.find(VnA);
    auto PermB = B.Perm.find(ItB->second);
    if (PermA != A.Perm.end() && PermB != B.Perm.end())
      Out.Perm[NewVn] = joinObj(PermA->second, PermB->second);
    else if (PermA != A.Perm.end())
      Out.Perm[NewVn] = PermA->second;
    else if (PermB != B.Perm.end())
      Out.Perm[NewVn] = PermB->second;
  }
  return canonicalize(Out);
}

/// Checks one method body.
class MethodChecker {
public:
  MethodChecker(MethodDecl &Method, const SpecProvider &Specs,
                const CheckerOptions &Opts, CheckResult &Result)
      : Method(Method), Specs(Specs), Opts(Opts), Result(Result),
        Ir(lowerToIr(Method)) {}

  void run();

private:
  ObjPerm defaultObj() const {
    ObjPerm Obj;
    Obj.Perm = FracPerm(Opts.DefaultKind, Rational(1));
    return Obj;
  }

  ObjPerm fromPermState(const PermState &PS) const {
    ObjPerm Obj;
    Obj.Perm = FracPerm::whole(PS.Kind);
    Obj.State = PS.State;
    return Obj;
  }

  bool isTracked(LocalId Local) const {
    return Local != NoLocal && Ir.Locals[Local].Class != nullptr;
  }

  uint32_t vnOf(AbsState &S, LocalId Local) {
    auto It = S.Vn.find(Local);
    if (It != S.Vn.end())
      return It->second;
    uint32_t Fresh = NextFresh++;
    S.Vn[Local] = Fresh;
    S.Perm[Fresh] = defaultObj();
    return Fresh;
  }

  /// True when the object's current state satisfies the required state in
  /// the class's hierarchy (current refines required).
  bool stateSatisfies(TypeDecl *Class, const std::string &Have,
                      const std::string &Need) const;

  void warn(SourceLocation Loc, const MethodDecl *Callee,
            std::string Message) {
    if (!EmitWarnings)
      return;
    // One warning per source location keeps the counts per-site.
    if (!WarnedLocs.insert({Loc.Line, Loc.Column}).second)
      return;
    Result.Warnings.push_back({Loc, &Method, Callee, std::move(Message)});
  }

  /// Requirement check + effect application for one call target.
  void applyCallTarget(AbsState &S, LocalId Local,
                       const std::optional<PermState> &Pre,
                       const std::optional<PermState> &Post,
                       TypeDecl *SpecClass, const Action &A,
                       std::vector<std::string> &Problems);

  void transferAction(AbsState &S, const Action &A);

  /// Applies a dynamic state test outcome to the branch successor state.
  void applyStateTest(AbsState &S, const StateTestInfo &Test, bool Edge);

  /// Checks the method's own postcondition at an exit block.
  void checkPostconditions(AbsState &S, SourceLocation Loc);

  MethodDecl &Method;
  const SpecProvider &Specs;
  const CheckerOptions &Opts;
  CheckResult &Result;
  MethodIr Ir;
  uint32_t NextFresh = 0;
  bool EmitWarnings = false;
  std::set<std::pair<uint32_t, uint32_t>> WarnedLocs;
};

} // namespace

bool MethodChecker::stateSatisfies(TypeDecl *Class, const std::string &Have,
                                   const std::string &Need) const {
  if (Need.empty() || Need == AliveStateName)
    return true; // ALIVE is the root: always satisfied.
  if (Have.empty())
    return false; // Unknown state cannot prove a refinement.
  if (Have == Need)
    return true;
  if (!Class)
    return false;
  std::optional<StateId> HaveId = Class->States.find(Have);
  std::optional<StateId> NeedId = Class->States.find(Need);
  if (!HaveId || !NeedId)
    return false;
  return Class->States.refines(*HaveId, *NeedId);
}

void MethodChecker::applyCallTarget(AbsState &S, LocalId Local,
                                    const std::optional<PermState> &Pre,
                                    const std::optional<PermState> &Post,
                                    TypeDecl *SpecClass, const Action &A,
                                    std::vector<std::string> &Problems) {
  if (!isTracked(Local))
    return;
  uint32_t Vn = vnOf(S, Local);
  ObjPerm &Obj = S.Perm[Vn];
  TypeDecl *Class = SpecClass ? SpecClass : Ir.Locals[Local].Class;

  std::optional<FracPerm> Residue;
  FracPerm Original = Obj.Perm;
  if (Pre) {
    std::optional<LendResult> Lent = lend(Obj.Perm, Pre->Kind);
    if (!Lent) {
      Problems.push_back(std::string("needs ") + permKindName(Pre->Kind) +
                         " permission but only " + Obj.Perm.str() +
                         " is available");
    } else {
      Residue = Lent->Residue;
    }
    if (!stateSatisfies(Class, Obj.State, Pre->State))
      Problems.push_back("requires state " + Pre->State + " but " +
                         (Obj.State.empty() ? std::string(AliveStateName)
                                            : Obj.State) +
                         " is known");
  }

  // Effects.
  if (Post) {
    PermKind Lent = Pre ? Pre->Kind : Post->Kind;
    Obj.Perm = mergeAfterCall(Original, Lent, FracPerm::whole(Post->Kind),
                              Residue);
    Obj.State = Post->State; // Empty means back to ALIVE.
  } else if (Pre) {
    // Permission consumed without a returned post: keep the residue.
    if (Residue)
      Obj.Perm = *Residue;
    Obj.State.clear();
  } else {
    // Fully unannotated callee: the call may transition the object.
    Obj.State.clear();
  }
  (void)A;
}

void MethodChecker::transferAction(AbsState &S, const Action &A) {
  switch (A.Kind) {
  case ActionKind::Alloc: {
    if (A.Dst == NoLocal || !isTracked(A.Dst))
      return;
    uint32_t Fresh = NextFresh++;
    S.Vn[A.Dst] = Fresh;
    ObjPerm Obj;
    Obj.Perm = FracPerm::whole(PermKind::Unique);
    if (A.Callee) {
      const MethodSpec *Spec = Specs(A.Callee);
      if (Spec && Spec->ReceiverPost)
        Obj = fromPermState(*Spec->ReceiverPost);
    }
    S.Perm[Fresh] = Obj;
    return;
  }
  case ActionKind::Call: {
    const MethodSpec *Spec = A.Callee ? Specs(A.Callee) : nullptr;
    static const MethodSpec Empty;
    if (!Spec)
      Spec = &Empty;
    std::vector<std::string> Problems;

    if (A.Recv != NoLocal)
      applyCallTarget(S, A.Recv, Spec->ReceiverPre, Spec->ReceiverPost,
                      A.Callee ? A.Callee->Owner : nullptr, A, Problems);
    for (size_t I = 0; I != A.Args.size(); ++I) {
      std::optional<PermState> Pre, Post;
      TypeDecl *ParamClass = nullptr;
      if (I < Spec->ParamPre.size())
        Pre = Spec->ParamPre[I];
      if (I < Spec->ParamPost.size())
        Post = Spec->ParamPost[I];
      if (A.Callee && I < A.Callee->Params.size() &&
          A.Callee->Params[I].Type.isClass())
        ParamClass = A.Callee->Params[I].Type.Decl;
      applyCallTarget(S, A.Args[I], Pre, Post, ParamClass, A, Problems);
    }

    if (!Problems.empty()) {
      std::string Message =
          "call to " +
          (A.Callee ? A.Callee->qualifiedName() : std::string("<unknown>"));
      for (const std::string &P : Problems)
        Message += "; " + P;
      warn(A.Loc, A.Callee, std::move(Message));
    }

    // Result value.
    if (A.Dst != NoLocal && isTracked(A.Dst)) {
      uint32_t Fresh = NextFresh++;
      S.Vn[A.Dst] = Fresh;
      S.Perm[Fresh] =
          Spec->Result ? fromPermState(*Spec->Result) : defaultObj();
    }
    return;
  }
  case ActionKind::Copy:
    if (isTracked(A.Dst) && isTracked(A.Src))
      S.Vn[A.Dst] = vnOf(S, A.Src);
    return;
  case ActionKind::FieldLoad:
    if (A.Dst != NoLocal && isTracked(A.Dst)) {
      uint32_t Fresh = NextFresh++;
      S.Vn[A.Dst] = Fresh;
      S.Perm[Fresh] = defaultObj();
    }
    return;
  case ActionKind::FieldStore: {
    if (!isTracked(A.Recv))
      return;
    uint32_t Vn = vnOf(S, A.Recv);
    const ObjPerm &Obj = S.Perm[Vn];
    if (!allowsWrite(Obj.Perm.Kind))
      warn(A.Loc, nullptr,
           "field write to ." + A.FieldName + " requires a modifying "
           "permission but only " + Obj.Perm.str() + " is available");
    return;
  }
  case ActionKind::Return: {
    const MethodSpec *Spec = Specs(&Method);
    if (!Spec || !Spec->Result || A.Src == NoLocal || !isTracked(A.Src))
      return;
    uint32_t Vn = vnOf(S, A.Src);
    const ObjPerm &Obj = S.Perm[Vn];
    std::vector<std::string> Problems;
    if (!lend(Obj.Perm, Spec->Result->Kind))
      Problems.push_back(std::string("result must be ") +
                         permKindName(Spec->Result->Kind) + " but only " +
                         Obj.Perm.str() + " is available");
    if (!stateSatisfies(Ir.Locals[A.Src].Class, Obj.State,
                        Spec->Result->State))
      Problems.push_back("result must be in state " + Spec->Result->State);
    if (!Problems.empty()) {
      std::string Message = "return from " + Method.qualifiedName();
      for (const std::string &P : Problems)
        Message += "; " + P;
      warn(A.Loc, nullptr, std::move(Message));
    }
    return;
  }
  case ActionKind::EnterSync:
  case ActionKind::ExitSync:
  case ActionKind::OpaqueUse:
    return;
  }
}

void MethodChecker::applyStateTest(AbsState &S, const StateTestInfo &Test,
                                   bool Edge) {
  if (!Opts.BranchSensitive || Test.Subject == NoLocal ||
      !isTracked(Test.Subject))
    return;
  const MethodSpec *Spec = Specs(Test.TestMethod);
  if (!Spec)
    return;
  // `if (!x.test())`: the true edge of the branch is the false outcome of
  // the test.
  bool TestOutcome = Test.Negated ? !Edge : Edge;
  const std::string &Indicated =
      TestOutcome ? Spec->TrueIndicates : Spec->FalseIndicates;
  if (Indicated.empty())
    return;
  uint32_t Vn = vnOf(S, Test.Subject);
  S.Perm[Vn].State = Indicated;
}

void MethodChecker::checkPostconditions(AbsState &S, SourceLocation Loc) {
  const MethodSpec *Spec = Specs(&Method);
  if (!Spec)
    return;
  std::vector<std::string> Problems;
  auto CheckPost = [&](LocalId Local, const std::optional<PermState> &Post,
                       const std::string &Name) {
    if (!Post || !isTracked(Local))
      return;
    uint32_t Vn = vnOf(S, Local);
    const ObjPerm &Obj = S.Perm[Vn];
    if (!lend(Obj.Perm, Post->Kind))
      Problems.push_back("cannot return " + std::string(permKindName(
                             Post->Kind)) + "(" + Name + "), only " +
                         Obj.Perm.str() + " remains");
    if (!stateSatisfies(Ir.Locals[Local].Class, Obj.State, Post->State))
      Problems.push_back(Name + " must end in state " + Post->State);
  };
  if (Ir.ReceiverLocal != NoLocal)
    CheckPost(Ir.ReceiverLocal, Spec->ReceiverPost, "this");
  for (size_t I = 0; I != Ir.ParamLocals.size(); ++I)
    if (I < Spec->ParamPost.size())
      CheckPost(Ir.ParamLocals[I], Spec->ParamPost[I],
                I < Method.Params.size() ? Method.Params[I].Name
                                         : "#" + std::to_string(I));
  if (!Problems.empty()) {
    std::string Message = "postcondition of " + Method.qualifiedName();
    for (const std::string &P : Problems)
      Message += "; " + P;
    warn(Loc, nullptr, std::move(Message));
  }
}

void MethodChecker::run() {
  const MethodSpec *OwnSpec = Specs(&Method);

  // Entry state from the method's own precondition.
  AbsState Entry;
  Entry.Reachable = true;
  NextFresh = 0;
  auto Seed = [&](LocalId Local, const std::optional<PermState> &Pre) {
    if (!isTracked(Local))
      return;
    uint32_t Vn = NextFresh++;
    Entry.Vn[Local] = Vn;
    Entry.Perm[Vn] = Pre ? fromPermState(*Pre) : defaultObj();
  };
  if (Ir.ReceiverLocal != NoLocal) {
    std::optional<PermState> Pre;
    if (OwnSpec)
      Pre = Method.IsCtor ? std::optional<PermState>(
                                PermState{PermKind::Unique, ""})
                          : OwnSpec->ReceiverPre;
    else if (Method.IsCtor)
      Pre = PermState{PermKind::Unique, ""};
    Seed(Ir.ReceiverLocal, Pre);
  }
  for (size_t I = 0; I != Ir.ParamLocals.size(); ++I) {
    std::optional<PermState> Pre;
    if (OwnSpec && I < OwnSpec->ParamPre.size())
      Pre = OwnSpec->ParamPre[I];
    Seed(Ir.ParamLocals[I], Pre);
  }
  Entry = canonicalize(Entry);

  const size_t NumBlocks = Ir.Blocks.size();
  // Per-block entry states. Fixpoint first (warnings suppressed), then one
  // emission pass with the stable states.
  std::vector<AbsState> EntryStates(NumBlocks);
  EntryStates[MethodIr::EntryBlock] = Entry;

  auto ProcessBlock = [&](uint32_t Block, AbsState State,
                          std::vector<std::pair<uint32_t, AbsState>> &Out) {
    // Fresh value numbers must be deterministic per block for
    // convergence: derive from a large per-block base.
    NextFresh = 1000000 + Block * 10000;
    for (const Action &A : Ir.Blocks[Block].Actions)
      transferAction(State, A);
    const Terminator &Term = Ir.Blocks[Block].Term;
    switch (Term.Kind) {
    case TermKind::Goto:
      Out.push_back({Term.Succs[0], canonicalize(State)});
      break;
    case TermKind::CondBranch: {
      AbsState TrueState = State;
      AbsState FalseState = State;
      if (Term.StateTest) {
        applyStateTest(TrueState, *Term.StateTest, true);
        applyStateTest(FalseState, *Term.StateTest, false);
      }
      Out.push_back({Term.Succs[0], canonicalize(TrueState)});
      Out.push_back({Term.Succs[1], canonicalize(FalseState)});
      break;
    }
    case TermKind::Exit:
      if (EmitWarnings) {
        SourceLocation Loc = Method.Loc;
        if (!Ir.Blocks[Block].Actions.empty())
          Loc = Ir.Blocks[Block].Actions.back().Loc;
        checkPostconditions(State, Loc);
      }
      break;
    }
  };

  // Fixpoint.
  EmitWarnings = false;
  bool Changed = true;
  unsigned Rounds = 0;
  while (Changed && Rounds < 100) {
    Changed = false;
    ++Rounds;
    for (uint32_t Block = 0; Block != NumBlocks; ++Block) {
      if (!EntryStates[Block].Reachable)
        continue;
      std::vector<std::pair<uint32_t, AbsState>> Out;
      ProcessBlock(Block, EntryStates[Block], Out);
      for (auto &[Succ, State] : Out) {
        AbsState Joined = joinStates(EntryStates[Succ], State);
        if (!(Joined == EntryStates[Succ])) {
          EntryStates[Succ] = std::move(Joined);
          Changed = true;
        }
      }
    }
  }

  // Emission pass.
  EmitWarnings = true;
  for (uint32_t Block = 0; Block != NumBlocks; ++Block) {
    if (!EntryStates[Block].Reachable)
      continue;
    std::vector<std::pair<uint32_t, AbsState>> Out;
    ProcessBlock(Block, EntryStates[Block], Out);
  }
}

CheckResult anek::runChecker(Program &Prog, const SpecProvider &Specs,
                             const CheckerOptions &Opts) {
  CheckResult Result;
  for (MethodDecl *M : Prog.methodsWithBodies()) {
    MethodChecker Checker(*M, Specs, Opts, Result);
    Checker.run();
    ++Result.MethodsChecked;
  }
  return Result;
}

SpecProvider anek::declaredSpecsOnly() {
  return [](const MethodDecl *M) -> const MethodSpec * {
    static const MethodSpec Empty;
    return M->HasDeclaredSpec ? &M->DeclaredSpec : &Empty;
  };
}
