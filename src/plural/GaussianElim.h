//===- GaussianElim.h - Exact rational linear solving ------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gaussian elimination over exact rationals. PLURAL's local permission
/// inference "relies upon Gaussian Elimination to find satisfying
/// fractional permission assignments" (paper Section 4.2, citing [4,
/// ch. 5]); this is that engine, also used standalone in tests.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_PLURAL_GAUSSIANELIM_H
#define ANEK_PLURAL_GAUSSIANELIM_H

#include "support/Rational.h"

#include <optional>
#include <vector>

namespace anek {

/// A dense linear system A x = b over rationals.
class LinearSystem {
public:
  explicit LinearSystem(unsigned NumVars) : NumVars(NumVars) {}

  /// Adds the equation sum(Coeffs[i] * x_Vars[i]) = Rhs.
  void addEquation(const std::vector<std::pair<unsigned, Rational>> &Terms,
                   Rational Rhs);

  unsigned variableCount() const { return NumVars; }
  unsigned equationCount() const {
    return static_cast<unsigned>(Rows.size());
  }

  /// Solves by Gaussian elimination with exact pivoting. Free variables
  /// are assigned zero. Returns std::nullopt when inconsistent.
  /// \p EliminationOps, when non-null, receives the number of row
  /// operations performed (the Table 3 work metric).
  std::optional<std::vector<Rational>>
  solve(uint64_t *EliminationOps = nullptr) const;

private:
  struct Row {
    std::vector<Rational> Coeffs; // Dense, length NumVars.
    Rational Rhs;
  };

  unsigned NumVars;
  std::vector<Row> Rows;
};

} // namespace anek

#endif // ANEK_PLURAL_GAUSSIANELIM_H
