//===- Report.h - The `anek report` run profiler -----------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Digests the telemetry artifacts one run leaves behind — an
/// `anek-trace-v1` Chrome trace, an `anek-metrics-v1` snapshot, an
/// `anek-batch-v1` JSONL stream, any subset — into one profile a human
/// can read in ten seconds (DESIGN.md, "Distributed telemetry"): where
/// the wall-clock went per phase, the top spans by duration, the cache
/// hit rate, how hard the shard tier fought (spawns, losses,
/// re-dispatches, quarantines), the queue-wait vs. solve split, and the
/// per-request outcome table.
///
/// The profiler is a pure function of the artifact bytes: it never runs
/// inference, so profiling a run costs milliseconds regardless of what
/// the run cost. Missing artifacts degrade the profile (their sections
/// are absent), they never fail it — `anek report --metrics m.json` with
/// no trace is a legitimate call. Malformed artifact files, by contrast,
/// are hard errors: a truncated trace silently profiled as "fast" would
/// be worse than no profile.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_REPORT_REPORT_H
#define ANEK_REPORT_REPORT_H

#include "support/Status.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace anek {
namespace report {

/// Aggregate of one span name within the trace.
struct SpanStat {
  std::string Name;
  uint64_t Count = 0;
  int64_t TotalUs = 0;
  int64_t MaxUs = 0;
};

/// One row of the per-request outcome table (from the batch JSONL).
struct RequestRow {
  unsigned Index = 0;
  std::string Id;
  std::string State;
  unsigned Attempts = 0;
  double Seconds = 0.0;
  double QueueSeconds = 0.0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  std::string Reason;
};

/// Everything `anek report` prints, in analyzable form. Sections are
/// independently optional (Has* flags) so any artifact subset profiles.
struct Profile {
  // --- Trace-derived (HasTrace) ------------------------------------
  bool HasTrace = false;
  /// Wall-clock per top-level phase: depth-0 complete spans grouped by
  /// name, ordered by total duration descending.
  std::vector<SpanStat> Phases;
  /// All complete spans grouped by name, ordered by total duration
  /// descending, truncated to TopK by the renderers.
  std::vector<SpanStat> Spans;
  /// Remote (worker) pids seen in the trace, ascending.
  std::vector<unsigned> WorkerPids;
  uint64_t TraceEvents = 0;
  int64_t TraceSpanUs = 0; ///< max end - min start over complete spans.

  // --- Metrics-derived (HasMetrics) --------------------------------
  bool HasMetrics = false;
  std::map<std::string, uint64_t> Counters;
  /// Histogram name -> (count, sum, p50, p95, p99) in exported units.
  struct HistRow {
    uint64_t Count = 0;
    double Sum = 0.0, P50 = 0.0, P95 = 0.0, P99 = 0.0;
  };
  std::map<std::string, HistRow> Histograms;
  /// cache.hit / (cache.hit + cache.miss); negative when no cache
  /// counters were exported.
  double CacheHitRate = -1.0;
  /// Total microseconds requests spent queued vs. solving (from the
  /// infer.queue_wait_us / infer.method_run_us counters).
  uint64_t QueueWaitUs = 0;
  uint64_t MethodRunUs = 0;
  /// Shard-tier effort counters (0 when the run never sharded).
  uint64_t WorkersSpawned = 0;
  uint64_t WorkersLost = 0;
  uint64_t Redispatches = 0;
  uint64_t Quarantined = 0;
  uint64_t TelemetryFrames = 0;
  uint64_t TelemetryDropped = 0;

  // --- Batch-derived (HasBatch) ------------------------------------
  bool HasBatch = false;
  std::vector<RequestRow> Requests;
  std::map<std::string, unsigned> StateCounts;
  double BatchSeconds = 0.0;      ///< Sum of per-request execution time.
  double BatchQueueSeconds = 0.0; ///< Sum of per-request queue wait.
  uint64_t BatchCacheHits = 0;
  uint64_t BatchCacheMisses = 0;
};

/// How many top spans the renderers show.
constexpr unsigned DefaultTopK = 10;

/// Builds a profile from artifact *text* already in memory; empty strings
/// mean "artifact absent". This is the testable core — file I/O stays in
/// buildProfile.
Expected<Profile> profileFromText(const std::string &TraceJson,
                                  const std::string &MetricsJson,
                                  const std::string &BatchJsonl);

/// Reads the named artifact files (empty paths skipped) and profiles
/// them. Unreadable or malformed files are errors.
Expected<Profile> buildProfile(const std::string &TracePath,
                               const std::string &MetricsPath,
                               const std::string &BatchPath);

/// The human-readable rendering (the default `anek report` output).
std::string renderText(const Profile &P, unsigned TopK = DefaultTopK);

/// The machine-readable rendering: one `anek-report-v1` JSON document.
std::string renderJson(const Profile &P, unsigned TopK = DefaultTopK);

} // namespace report
} // namespace anek

#endif // ANEK_REPORT_REPORT_H
