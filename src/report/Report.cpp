//===- Report.cpp - The `anek report` run profiler --------------------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "report/Report.h"

#include "support/Format.h"
#include "support/Json.h"
#include "support/Trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace anek;
using namespace anek::report;

namespace {

bool endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

/// True for the counter/histogram \p Name naming metric \p Leaf either
/// directly or under an aggregation prefix ("shard.worker.cache.hit"
/// counts toward "cache.hit" — worker-side work is still work).
bool namesMetric(const std::string &Name, const char *Leaf) {
  return Name == Leaf || endsWith(Name, std::string(".") + Leaf);
}

std::vector<SpanStat> sortedStats(std::map<std::string, SpanStat> &&ByName) {
  std::vector<SpanStat> Out;
  Out.reserve(ByName.size());
  for (auto &[Name, S] : ByName)
    Out.push_back(std::move(S));
  std::stable_sort(Out.begin(), Out.end(),
                   [](const SpanStat &A, const SpanStat &B) {
                     if (A.TotalUs != B.TotalUs)
                       return A.TotalUs > B.TotalUs;
                     return A.Name < B.Name;
                   });
  return Out;
}

Status digestTrace(const std::string &Text, Profile &P) {
  json::Value Doc;
  std::string Error;
  if (!json::parse(Text, Doc, &Error))
    return Status::error(ErrorCode::InvalidArgument,
                         "malformed trace file: " + Error);
  const json::Value &Events = Doc.at("traceEvents");
  if (Events.K != json::Value::Array)
    return Status::error(ErrorCode::InvalidArgument,
                         "trace file has no traceEvents array");
  std::map<std::string, SpanStat> Phases, Spans;
  std::map<unsigned, bool> Pids;
  int64_t MinTs = 0, MaxEnd = 0;
  bool AnySpan = false;
  for (const json::Value &E : Events.Items) {
    std::string Ph = E.at("ph").str();
    if (Ph == "M")
      continue; // Lane-name metadata, not a timed event.
    ++P.TraceEvents;
    unsigned Pid = static_cast<unsigned>(E.at("pid").num(1.0));
    if (Pid != 1)
      Pids[Pid] = true;
    if (Ph != "X")
      continue;
    std::string Name = E.at("name").str();
    int64_t Ts = static_cast<int64_t>(E.at("ts").num());
    int64_t Dur = static_cast<int64_t>(E.at("dur").num());
    unsigned Depth = static_cast<unsigned>(E.at("args").at("depth").num());
    if (!AnySpan) {
      MinTs = Ts;
      MaxEnd = Ts + Dur;
      AnySpan = true;
    } else {
      MinTs = std::min(MinTs, Ts);
      MaxEnd = std::max(MaxEnd, Ts + Dur);
    }
    auto Bump = [&](std::map<std::string, SpanStat> &Into) {
      SpanStat &S = Into[Name];
      S.Name = Name;
      ++S.Count;
      S.TotalUs += Dur;
      S.MaxUs = std::max(S.MaxUs, Dur);
    };
    Bump(Spans);
    // "Phases" are the local process's top-of-stack spans: what the run
    // was doing, not what every nested helper was doing.
    if (Depth == 0 && Pid == 1)
      Bump(Phases);
  }
  P.HasTrace = true;
  P.Phases = sortedStats(std::move(Phases));
  P.Spans = sortedStats(std::move(Spans));
  for (const auto &[Pid, Seen] : Pids)
    P.WorkerPids.push_back(Pid);
  P.TraceSpanUs = AnySpan ? MaxEnd - MinTs : 0;
  return Status::ok();
}

Status digestMetrics(const std::string &Text, Profile &P) {
  json::Value Doc;
  std::string Error;
  if (!json::parse(Text, Doc, &Error))
    return Status::error(ErrorCode::InvalidArgument,
                         "malformed metrics file: " + Error);
  if (Doc.at("schema").str() != "anek-metrics-v1")
    return Status::error(ErrorCode::InvalidArgument,
                         "metrics file is not anek-metrics-v1");
  for (const auto &[Name, V] : Doc.at("counters").Fields)
    P.Counters[Name] = static_cast<uint64_t>(V.num());
  for (const auto &[Name, V] : Doc.at("histograms").Fields) {
    Profile::HistRow Row;
    Row.Count = static_cast<uint64_t>(V.at("count").num());
    Row.Sum = V.at("sum").num();
    Row.P50 = V.at("p50").num();
    Row.P95 = V.at("p95").num();
    Row.P99 = V.at("p99").num();
    P.Histograms[Name] = Row;
  }
  P.HasMetrics = true;

  uint64_t Hits = 0, Misses = 0;
  for (const auto &[Name, V] : P.Counters) {
    if (namesMetric(Name, "cache.hit"))
      Hits += V;
    if (namesMetric(Name, "cache.miss"))
      Misses += V;
  }
  if (Hits + Misses > 0)
    P.CacheHitRate = static_cast<double>(Hits) /
                     static_cast<double>(Hits + Misses);
  for (const auto &[Name, H] : P.Histograms) {
    if (namesMetric(Name, "infer.queue_wait_us"))
      P.QueueWaitUs += static_cast<uint64_t>(H.Sum);
    if (namesMetric(Name, "infer.method_run_us"))
      P.MethodRunUs += static_cast<uint64_t>(H.Sum);
  }
  auto Counter = [&](const char *Name) -> uint64_t {
    auto It = P.Counters.find(Name);
    return It == P.Counters.end() ? 0 : It->second;
  };
  P.WorkersSpawned = Counter("shard.workers_spawned");
  P.WorkersLost = Counter("shard.workers_lost");
  P.Redispatches = Counter("shard.redispatches");
  P.Quarantined = Counter("shard.quarantined");
  P.TelemetryFrames = Counter("shard.telemetry_frames");
  P.TelemetryDropped = Counter("shard.telemetry_dropped");
  return Status::ok();
}

Status digestBatch(const std::string &Text, Profile &P) {
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    json::Value Doc;
    std::string Error;
    if (!json::parse(Line, Doc, &Error))
      return Status::error(ErrorCode::InvalidArgument,
                           formatStr("malformed batch line %u: %s", LineNo,
                                     Error.c_str()));
    if (Doc.at("schema").str() != "anek-batch-v1")
      return Status::error(
          ErrorCode::InvalidArgument,
          formatStr("batch line %u is not anek-batch-v1", LineNo));
    RequestRow Row;
    Row.Index = static_cast<unsigned>(Doc.at("index").num());
    Row.Id = Doc.at("id").str();
    Row.State = Doc.at("state").str();
    Row.Attempts = static_cast<unsigned>(Doc.at("attempts").num());
    Row.Seconds = Doc.at("seconds").num();
    Row.QueueSeconds = Doc.at("queue_seconds").num();
    Row.CacheHits = static_cast<uint64_t>(Doc.at("cache_hits").num());
    Row.CacheMisses = static_cast<uint64_t>(Doc.at("cache_misses").num());
    Row.Reason = Doc.at("reason").str();
    ++P.StateCounts[Row.State];
    P.BatchSeconds += Row.Seconds;
    P.BatchQueueSeconds += Row.QueueSeconds;
    P.BatchCacheHits += Row.CacheHits;
    P.BatchCacheMisses += Row.CacheMisses;
    P.Requests.push_back(std::move(Row));
  }
  P.HasBatch = true;
  std::stable_sort(P.Requests.begin(), P.Requests.end(),
                   [](const RequestRow &A, const RequestRow &B) {
                     return A.Index < B.Index;
                   });
  return Status::ok();
}

Status readFileInto(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Status::error(ErrorCode::InvalidArgument,
                         "cannot read '" + Path + "'");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return Status::ok();
}

std::string formatUs(int64_t Us) {
  if (Us >= 1000000)
    return formatStr("%.2fs", static_cast<double>(Us) / 1e6);
  return formatStr("%.2fms", static_cast<double>(Us) / 1e3);
}

} // namespace

Expected<Profile> report::profileFromText(const std::string &TraceJson,
                                          const std::string &MetricsJson,
                                          const std::string &BatchJsonl) {
  Profile P;
  if (!TraceJson.empty())
    if (Status S = digestTrace(TraceJson, P); !S)
      return S;
  if (!MetricsJson.empty())
    if (Status S = digestMetrics(MetricsJson, P); !S)
      return S;
  if (!BatchJsonl.empty())
    if (Status S = digestBatch(BatchJsonl, P); !S)
      return S;
  if (!P.HasTrace && !P.HasMetrics && !P.HasBatch)
    return Status::error(ErrorCode::InvalidArgument,
                         "nothing to profile: no artifact provided");
  return P;
}

Expected<Profile> report::buildProfile(const std::string &TracePath,
                                       const std::string &MetricsPath,
                                       const std::string &BatchPath) {
  std::string Trace, Metrics, Batch;
  if (!TracePath.empty())
    if (Status S = readFileInto(TracePath, Trace); !S)
      return S;
  if (!MetricsPath.empty())
    if (Status S = readFileInto(MetricsPath, Metrics); !S)
      return S;
  if (!BatchPath.empty())
    if (Status S = readFileInto(BatchPath, Batch); !S)
      return S;
  return profileFromText(Trace, Metrics, Batch);
}

std::string report::renderText(const Profile &P, unsigned TopK) {
  std::string Out;
  Out += "anek run profile\n";
  Out += "================\n";
  if (P.HasTrace) {
    Out += formatStr("\ntrace: %llu events over %s",
                     static_cast<unsigned long long>(P.TraceEvents),
                     formatUs(P.TraceSpanUs).c_str());
    if (!P.WorkerPids.empty()) {
      Out += formatStr(", %zu worker lane(s):", P.WorkerPids.size());
      for (unsigned Pid : P.WorkerPids)
        Out += formatStr(" %u", Pid);
    }
    Out += "\n\nphases (top-level spans)\n";
    for (const SpanStat &S : P.Phases)
      Out += formatStr("  %-28s %10s  x%llu\n", S.Name.c_str(),
                       formatUs(S.TotalUs).c_str(),
                       static_cast<unsigned long long>(S.Count));
    Out += formatStr("\ntop %u spans by total time\n",
                     std::min<unsigned>(TopK,
                                        static_cast<unsigned>(P.Spans.size())));
    unsigned Shown = 0;
    for (const SpanStat &S : P.Spans) {
      if (Shown++ == TopK)
        break;
      Out += formatStr("  %-28s %10s  x%-6llu max %s\n", S.Name.c_str(),
                       formatUs(S.TotalUs).c_str(),
                       static_cast<unsigned long long>(S.Count),
                       formatUs(S.MaxUs).c_str());
    }
  }
  if (P.HasMetrics) {
    Out += "\nmetrics\n";
    if (P.CacheHitRate >= 0.0)
      Out += formatStr("  cache hit rate        %.1f%%\n",
                       P.CacheHitRate * 100.0);
    if (P.QueueWaitUs || P.MethodRunUs) {
      uint64_t Total = P.QueueWaitUs + P.MethodRunUs;
      Out += formatStr(
          "  queue-wait vs solve   %s / %s (%.1f%% waiting)\n",
          formatUs(static_cast<int64_t>(P.QueueWaitUs)).c_str(),
          formatUs(static_cast<int64_t>(P.MethodRunUs)).c_str(),
          Total ? 100.0 * static_cast<double>(P.QueueWaitUs) /
                      static_cast<double>(Total)
                : 0.0);
    }
    if (P.WorkersSpawned || P.WorkersLost || P.Quarantined)
      Out += formatStr("  shard tier            %llu spawned, %llu lost, "
                       "%llu re-dispatched, %llu quarantined\n",
                       static_cast<unsigned long long>(P.WorkersSpawned),
                       static_cast<unsigned long long>(P.WorkersLost),
                       static_cast<unsigned long long>(P.Redispatches),
                       static_cast<unsigned long long>(P.Quarantined));
    if (P.TelemetryFrames || P.TelemetryDropped)
      Out += formatStr("  worker telemetry      %llu frame(s), %llu "
                       "dropped\n",
                       static_cast<unsigned long long>(P.TelemetryFrames),
                       static_cast<unsigned long long>(P.TelemetryDropped));
    for (const auto &[Name, H] : P.Histograms)
      Out += formatStr("  %-28s n=%-8llu p50=%-10.4g p95=%-10.4g "
                       "p99=%.4g\n",
                       Name.c_str(),
                       static_cast<unsigned long long>(H.Count), H.P50,
                       H.P95, H.P99);
  }
  if (P.HasBatch) {
    Out += formatStr("\nbatch: %zu request(s)", P.Requests.size());
    bool FirstState = true;
    for (const auto &[State, N] : P.StateCounts) {
      Out += FirstState ? " — " : ", ";
      FirstState = false;
      Out += formatStr("%u %s", N, State.c_str());
    }
    Out += formatStr("\n  execution %.3fs, queue wait %.3fs", P.BatchSeconds,
                     P.BatchQueueSeconds);
    if (P.BatchCacheHits + P.BatchCacheMisses)
      Out += formatStr(", cache %llu/%llu hits",
                       static_cast<unsigned long long>(P.BatchCacheHits),
                       static_cast<unsigned long long>(P.BatchCacheHits +
                                                       P.BatchCacheMisses));
    Out += "\n\n  idx id               state     att  seconds   queue     "
           "cache\n";
    for (const RequestRow &R : P.Requests) {
      Out += formatStr("  %-3u %-16s %-9s %-4u %-9.3f %-9.3f %llu/%llu",
                       R.Index, R.Id.c_str(), R.State.c_str(), R.Attempts,
                       R.Seconds, R.QueueSeconds,
                       static_cast<unsigned long long>(R.CacheHits),
                       static_cast<unsigned long long>(R.CacheHits +
                                                       R.CacheMisses));
      if (!R.Reason.empty())
        Out += "  " + R.Reason;
      Out += "\n";
    }
  }
  return Out;
}

std::string report::renderJson(const Profile &P, unsigned TopK) {
  using telemetry::jsonNumber;
  using telemetry::jsonQuote;
  std::string Out = "{\n  \"schema\": \"anek-report-v1\"";
  auto SpanArray = [&](const std::vector<SpanStat> &Stats, unsigned Limit) {
    std::string A = "[";
    bool First = true;
    unsigned Shown = 0;
    for (const SpanStat &S : Stats) {
      if (Shown++ == Limit)
        break;
      A += First ? "\n" : ",\n";
      First = false;
      A += "      {\"name\": " + jsonQuote(S.Name) +
           ", \"count\": " + jsonNumber(static_cast<double>(S.Count)) +
           ", \"total_us\": " + jsonNumber(static_cast<double>(S.TotalUs)) +
           ", \"max_us\": " + jsonNumber(static_cast<double>(S.MaxUs)) + "}";
    }
    A += First ? "]" : "\n    ]";
    return A;
  };
  if (P.HasTrace) {
    Out += ",\n  \"trace\": {\n";
    Out += "    \"events\": " +
           jsonNumber(static_cast<double>(P.TraceEvents)) + ",\n";
    Out += "    \"span_us\": " +
           jsonNumber(static_cast<double>(P.TraceSpanUs)) + ",\n";
    Out += "    \"worker_pids\": [";
    for (size_t I = 0; I != P.WorkerPids.size(); ++I)
      Out += (I ? ", " : "") + jsonNumber(P.WorkerPids[I]);
    Out += "],\n";
    Out += "    \"phases\": " +
           SpanArray(P.Phases, static_cast<unsigned>(P.Phases.size())) +
           ",\n";
    Out += "    \"top_spans\": " + SpanArray(P.Spans, TopK) + "\n  }";
  }
  if (P.HasMetrics) {
    Out += ",\n  \"metrics\": {\n";
    Out += "    \"cache_hit_rate\": " +
           (P.CacheHitRate >= 0.0 ? jsonNumber(P.CacheHitRate) : "null") +
           ",\n";
    Out += "    \"queue_wait_us\": " +
           jsonNumber(static_cast<double>(P.QueueWaitUs)) + ",\n";
    Out += "    \"method_run_us\": " +
           jsonNumber(static_cast<double>(P.MethodRunUs)) + ",\n";
    Out += "    \"shard\": {\"workers_spawned\": " +
           jsonNumber(static_cast<double>(P.WorkersSpawned)) +
           ", \"workers_lost\": " +
           jsonNumber(static_cast<double>(P.WorkersLost)) +
           ", \"redispatches\": " +
           jsonNumber(static_cast<double>(P.Redispatches)) +
           ", \"quarantined\": " +
           jsonNumber(static_cast<double>(P.Quarantined)) +
           ", \"telemetry_frames\": " +
           jsonNumber(static_cast<double>(P.TelemetryFrames)) +
           ", \"telemetry_dropped\": " +
           jsonNumber(static_cast<double>(P.TelemetryDropped)) + "},\n";
    Out += "    \"histograms\": {";
    bool First = true;
    for (const auto &[Name, H] : P.Histograms) {
      Out += First ? "\n" : ",\n";
      First = false;
      Out += "      " + jsonQuote(Name) +
             ": {\"count\": " + jsonNumber(static_cast<double>(H.Count)) +
             ", \"sum\": " + jsonNumber(H.Sum) +
             ", \"p50\": " + jsonNumber(H.P50) +
             ", \"p95\": " + jsonNumber(H.P95) +
             ", \"p99\": " + jsonNumber(H.P99) + "}";
    }
    Out += First ? "}" : "\n    }";
    Out += "\n  }";
  }
  if (P.HasBatch) {
    Out += ",\n  \"batch\": {\n";
    Out += "    \"requests\": " +
           jsonNumber(static_cast<double>(P.Requests.size())) + ",\n";
    Out += "    \"states\": {";
    bool First = true;
    for (const auto &[State, N] : P.StateCounts) {
      Out += First ? "" : ", ";
      First = false;
      Out += jsonQuote(State) + ": " + jsonNumber(N);
    }
    Out += "},\n";
    Out += "    \"seconds\": " + jsonNumber(P.BatchSeconds) + ",\n";
    Out += "    \"queue_seconds\": " + jsonNumber(P.BatchQueueSeconds) +
           ",\n";
    Out += "    \"cache_hits\": " +
           jsonNumber(static_cast<double>(P.BatchCacheHits)) + ",\n";
    Out += "    \"cache_misses\": " +
           jsonNumber(static_cast<double>(P.BatchCacheMisses)) + ",\n";
    Out += "    \"rows\": [";
    First = true;
    for (const RequestRow &R : P.Requests) {
      Out += First ? "\n" : ",\n";
      First = false;
      Out += "      {\"index\": " + jsonNumber(R.Index) +
             ", \"id\": " + jsonQuote(R.Id) +
             ", \"state\": " + jsonQuote(R.State) +
             ", \"attempts\": " + jsonNumber(R.Attempts) +
             ", \"seconds\": " + jsonNumber(R.Seconds) +
             ", \"queue_seconds\": " + jsonNumber(R.QueueSeconds) +
             ", \"cache_hits\": " +
             jsonNumber(static_cast<double>(R.CacheHits)) +
             ", \"cache_misses\": " +
             jsonNumber(static_cast<double>(R.CacheMisses));
      if (!R.Reason.empty())
        Out += ", \"reason\": " + jsonQuote(R.Reason);
      Out += "}";
    }
    Out += First ? "]" : "\n    ]";
    Out += "\n  }";
  }
  Out += "\n}\n";
  return Out;
}
