//===- StateSpace.cpp - Typestate hierarchies per class -------------------===//

#include "perm/StateSpace.h"

using namespace anek;

StateSpace::StateSpace() {
  Names.push_back(AliveStateName);
  Parents.push_back(AliveId);
}

StateId StateSpace::addState(const std::string &Name, StateId Parent) {
  assert(Parent < Names.size() && "unknown parent state");
  if (std::optional<StateId> Existing = find(Name))
    return *Existing;
  Names.push_back(Name);
  Parents.push_back(Parent);
  return static_cast<StateId>(Names.size() - 1);
}

std::optional<StateId> StateSpace::find(const std::string &Name) const {
  for (StateId Id = 0, E = static_cast<StateId>(Names.size()); Id != E; ++Id)
    if (Names[Id] == Name)
      return Id;
  return std::nullopt;
}

bool StateSpace::refines(StateId Sub, StateId Super) const {
  assert(Sub < Names.size() && Super < Names.size() && "state out of range");
  StateId Cur = Sub;
  while (true) {
    if (Cur == Super)
      return true;
    if (Cur == AliveId)
      return false;
    Cur = Parents[Cur];
  }
}
