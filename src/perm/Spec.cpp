//===- Spec.cpp - Access permission method specifications ------------------===//

#include "perm/Spec.h"

#include "perm/StateSpace.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace anek;

void MethodSpec::resizeParams(unsigned NumParams) {
  if (ParamPre.size() < NumParams)
    ParamPre.resize(NumParams);
  if (ParamPost.size() < NumParams)
    ParamPost.resize(NumParams);
}

bool MethodSpec::isEmpty() const {
  if (ReceiverPre || ReceiverPost || Result)
    return false;
  for (const auto &P : ParamPre)
    if (P)
      return false;
  for (const auto &P : ParamPost)
    if (P)
      return false;
  return TrueIndicates.empty() && FalseIndicates.empty();
}

unsigned MethodSpec::atomCount() const {
  unsigned Count = 0;
  Count += ReceiverPre ? 1 : 0;
  Count += ReceiverPost ? 1 : 0;
  Count += Result ? 1 : 0;
  for (const auto &P : ParamPre)
    Count += P ? 1 : 0;
  for (const auto &P : ParamPost)
    Count += P ? 1 : 0;
  return Count;
}

/// Parses a single atom "kind(target) [in STATE]".
static std::optional<SpecAtom>
parseAtom(const std::string &Piece, const std::vector<std::string> &ParamNames,
          std::string &Error) {
  size_t Open = Piece.find('(');
  size_t Close = Piece.find(')');
  if (Open == std::string::npos || Close == std::string::npos ||
      Close < Open) {
    Error = "malformed spec atom '" + Piece + "'";
    return std::nullopt;
  }
  std::string KindText = trim(Piece.substr(0, Open));
  std::optional<PermKind> Kind = parsePermKind(KindText);
  if (!Kind) {
    Error = "unknown permission kind '" + KindText + "'";
    return std::nullopt;
  }

  SpecAtom Atom;
  Atom.Kind = *Kind;

  std::string TargetText = trim(Piece.substr(Open + 1, Close - Open - 1));
  if (TargetText == "this") {
    Atom.Target = SpecTarget::receiver();
  } else if (TargetText == "result") {
    Atom.Target = SpecTarget::result();
  } else if (!TargetText.empty() && TargetText[0] == '#') {
    Atom.Target = SpecTarget::param(
        static_cast<unsigned>(std::stoul(TargetText.substr(1))));
  } else {
    bool Found = false;
    for (unsigned I = 0, E = static_cast<unsigned>(ParamNames.size()); I != E;
         ++I) {
      if (ParamNames[I] == TargetText) {
        Atom.Target = SpecTarget::param(I);
        Found = true;
        break;
      }
    }
    if (!Found) {
      Error = "unknown spec target '" + TargetText + "'";
      return std::nullopt;
    }
  }

  std::string Rest = trim(Piece.substr(Close + 1));
  if (!Rest.empty()) {
    if (!startsWith(Rest, "in")) {
      Error = "expected 'in STATE' after target, got '" + Rest + "'";
      return std::nullopt;
    }
    Atom.State = trim(Rest.substr(2));
    if (Atom.State.empty()) {
      Error = "missing state name after 'in'";
      return std::nullopt;
    }
    if (Atom.State == AliveStateName)
      Atom.State.clear(); // ALIVE is the unconstrained root.
  }
  return Atom;
}

std::optional<std::vector<SpecAtom>>
anek::parseSpecAtoms(const std::string &Text,
                     const std::vector<std::string> &ParamNames,
                     std::string &Error) {
  std::vector<SpecAtom> Atoms;
  // Atoms are separated by '*' (linear conjunction) or ','.
  std::string Normalized = Text;
  for (char &C : Normalized)
    if (C == ',')
      C = '*';
  for (const std::string &Piece : splitAndTrim(Normalized, '*')) {
    std::optional<SpecAtom> Atom = parseAtom(Piece, ParamNames, Error);
    if (!Atom)
      return std::nullopt;
    Atoms.push_back(*Atom);
  }
  return Atoms;
}

/// Stores \p Atom into the right slot of \p Spec; duplicate targets on one
/// side are an error.
static bool placeAtom(MethodSpec &Spec, const SpecAtom &Atom, bool IsRequires,
                      std::string &Error) {
  PermState PS{Atom.Kind, Atom.State};
  std::optional<PermState> *Slot = nullptr;
  switch (Atom.Target.Kind) {
  case SpecTargetKind::Receiver:
    Slot = IsRequires ? &Spec.ReceiverPre : &Spec.ReceiverPost;
    break;
  case SpecTargetKind::Param:
    if (Atom.Target.ParamIndex >= Spec.ParamPre.size()) {
      Error = "spec names parameter #" +
              std::to_string(Atom.Target.ParamIndex) + " which does not exist";
      return false;
    }
    Slot = IsRequires ? &Spec.ParamPre[Atom.Target.ParamIndex]
                      : &Spec.ParamPost[Atom.Target.ParamIndex];
    break;
  case SpecTargetKind::Result:
    if (IsRequires) {
      Error = "'result' may only appear in ensures";
      return false;
    }
    Slot = &Spec.Result;
    break;
  }
  if (*Slot) {
    Error = "duplicate spec atom for one target";
    return false;
  }
  *Slot = PS;
  return true;
}

std::optional<MethodSpec>
anek::buildMethodSpec(const std::vector<SpecAtom> &Requires,
                      const std::vector<SpecAtom> &Ensures, unsigned NumParams,
                      std::string &Error) {
  MethodSpec Spec;
  Spec.resizeParams(NumParams);
  for (const SpecAtom &Atom : Requires)
    if (!placeAtom(Spec, Atom, /*IsRequires=*/true, Error))
      return std::nullopt;
  for (const SpecAtom &Atom : Ensures)
    if (!placeAtom(Spec, Atom, /*IsRequires=*/false, Error))
      return std::nullopt;
  return Spec;
}

std::string anek::printPermState(const PermState &PS) {
  std::string Result = permKindName(PS.Kind);
  if (!PS.State.empty()) {
    Result += " in ";
    Result += PS.State;
  }
  return Result;
}

/// Renders "kind(name) [in STATE]".
static std::string printAtom(const PermState &PS, const std::string &Name) {
  std::string Out = permKindName(PS.Kind);
  Out += "(";
  Out += Name;
  Out += ")";
  if (!PS.State.empty()) {
    Out += " in ";
    Out += PS.State;
  }
  return Out;
}

std::string anek::printSpecSide(const MethodSpec &Spec, bool IsRequires,
                                const std::vector<std::string> &ParamNames) {
  std::vector<std::string> Parts;
  const std::optional<PermState> &Recv =
      IsRequires ? Spec.ReceiverPre : Spec.ReceiverPost;
  if (Recv)
    Parts.push_back(printAtom(*Recv, "this"));
  const auto &Params = IsRequires ? Spec.ParamPre : Spec.ParamPost;
  for (unsigned I = 0, E = static_cast<unsigned>(Params.size()); I != E; ++I) {
    if (!Params[I])
      continue;
    std::string Name =
        I < ParamNames.size() ? ParamNames[I] : "#" + std::to_string(I);
    Parts.push_back(printAtom(*Params[I], Name));
  }
  if (!IsRequires && Spec.Result)
    Parts.push_back(printAtom(*Spec.Result, "result"));
  return join(Parts, " * ");
}
