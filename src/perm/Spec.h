//===- Spec.h - Access permission method specifications ----------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Method specifications in the PLURAL style (paper Figure 2):
///
///   @Perm(requires = "full(this) in HASNEXT * pure(x)",
///         ensures  = "full(this) in ALIVE * unique(result)")
///
/// A spec atom names a permission kind, a target (receiver, a parameter, or
/// the result), and optionally an abstract state. This module owns both the
/// in-memory representation and the textual parse/print used by the
/// frontend and by the spec applier.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_PERM_SPEC_H
#define ANEK_PERM_SPEC_H

#include "perm/PermKind.h"

#include <optional>
#include <string>
#include <vector>

namespace anek {

/// What a spec atom refers to.
enum class SpecTargetKind { Receiver, Param, Result };

/// The subject of one spec atom.
struct SpecTarget {
  SpecTargetKind Kind = SpecTargetKind::Receiver;
  /// Parameter index when Kind == Param.
  unsigned ParamIndex = 0;

  static SpecTarget receiver() { return {SpecTargetKind::Receiver, 0}; }
  static SpecTarget param(unsigned Index) {
    return {SpecTargetKind::Param, Index};
  }
  static SpecTarget result() { return {SpecTargetKind::Result, 0}; }

  bool operator==(const SpecTarget &Other) const = default;
};

/// One atom: "kind(target) [in STATE]". An empty State means no state
/// requirement beyond ALIVE.
struct SpecAtom {
  PermKind Kind = PermKind::Pure;
  SpecTarget Target;
  std::string State;

  bool operator==(const SpecAtom &Other) const = default;
};

/// Permission and state on one side (pre or post) for one target.
struct PermState {
  PermKind Kind = PermKind::Pure;
  /// Empty string means ALIVE / unconstrained.
  std::string State;

  bool operator==(const PermState &Other) const = default;
};

/// Complete specification of a method: per-target pre and post permission
/// plus the dynamic-state-test annotations.
struct MethodSpec {
  std::optional<PermState> ReceiverPre;
  std::optional<PermState> ReceiverPost;
  std::vector<std::optional<PermState>> ParamPre;
  std::vector<std::optional<PermState>> ParamPost;
  std::optional<PermState> Result;

  /// @TrueIndicates / @FalseIndicates state names (dynamic state tests on
  /// the receiver); empty when absent.
  std::string TrueIndicates;
  std::string FalseIndicates;

  /// Ensures the ParamPre/ParamPost vectors cover \p NumParams entries.
  void resizeParams(unsigned NumParams);

  /// True if no atom and no indicator is present.
  bool isEmpty() const;

  /// Number of spec atoms present across both sides (annotation count used
  /// by the Table 2 metric).
  unsigned atomCount() const;

  bool operator==(const MethodSpec &Other) const = default;
};

/// Parses a requires/ensures string into atoms. Atoms are separated by '*'
/// or ','. \p ParamNames maps names to parameter indices; "this" and
/// "result" are always understood. On failure returns std::nullopt and
/// sets \p Error.
std::optional<std::vector<SpecAtom>>
parseSpecAtoms(const std::string &Text,
               const std::vector<std::string> &ParamNames,
               std::string &Error);

/// Assembles a MethodSpec from parsed requires and ensures atoms.
/// "result" atoms are only legal on the ensures side.
std::optional<MethodSpec>
buildMethodSpec(const std::vector<SpecAtom> &Requires,
                const std::vector<SpecAtom> &Ensures, unsigned NumParams,
                std::string &Error);

/// Prints one side back to the annotation syntax, e.g.
/// "full(this) in HASNEXT * pure(x)". \p ParamNames supplies the names.
std::string printSpecSide(const MethodSpec &Spec, bool IsRequires,
                          const std::vector<std::string> &ParamNames);

/// Renders a PermState as "kind" or "kind in STATE".
std::string printPermState(const PermState &PS);

} // namespace anek

#endif // ANEK_PERM_SPEC_H
