//===- StateSpace.h - Typestate hierarchies per class ------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract-state hierarchy a class declares (paper Section 2). Every
/// space is rooted at ALIVE ("the root of the state hierarchy" in the
/// PLURAL methodology); refinements like HASNEXT/END hang below it.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_PERM_STATESPACE_H
#define ANEK_PERM_STATESPACE_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace anek {

/// Index of a state within its StateSpace.
using StateId = uint32_t;

/// Distinguished root state present in every space.
inline constexpr const char *AliveStateName = "ALIVE";

/// The tree of abstract states declared by one class or interface.
class StateSpace {
public:
  /// Constructs a space containing only ALIVE.
  StateSpace();

  /// The id of the ALIVE root (always 0).
  static constexpr StateId AliveId = 0;

  /// Adds state \p Name refining \p Parent (default: ALIVE). Re-adding an
  /// existing name returns its id unchanged.
  StateId addState(const std::string &Name, StateId Parent = AliveId);

  /// Looks up a state by name.
  std::optional<StateId> find(const std::string &Name) const;

  const std::string &name(StateId Id) const {
    assert(Id < Names.size() && "state id out of range");
    return Names[Id];
  }

  StateId parent(StateId Id) const {
    assert(Id < Parents.size() && "state id out of range");
    return Parents[Id];
  }

  unsigned size() const { return static_cast<unsigned>(Names.size()); }

  /// True if \p Sub equals \p Super or refines it (transitively).
  bool refines(StateId Sub, StateId Super) const;

  /// All state names, root first (useful for building per-state variables).
  const std::vector<std::string> &names() const { return Names; }

private:
  std::vector<std::string> Names;
  std::vector<StateId> Parents;
};

} // namespace anek

#endif // ANEK_PERM_STATESPACE_H
