//===- PermKind.h - The five access permission kinds -------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five access permission kinds of Bierhoff & Aldrich's PLURAL system
/// (paper Figure 4), the downgrade (splitting) order used by constraint L1
/// (paper Eq. 2), and the residue table used by the checker when permission
/// is lent across a call site.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_PERM_PERMKIND_H
#define ANEK_PERM_PERMKIND_H

#include <array>
#include <optional>
#include <string>

namespace anek {

/// A permission kind. The enumerator order is the downgrade order of the
/// paper's splitting constraint (Eq. 2): a permission of kind K may appear
/// on a split edge as any kind with ordinal >= K's ordinal.
enum class PermKind : unsigned {
  Unique = 0,    ///< No other references exist.
  Full = 1,      ///< Exclusive write; others may read.
  Immutable = 2, ///< This and all others read-only.
  Share = 3,     ///< This and others may read and write.
  Pure = 4,      ///< Read-only; others may read and write.
};

/// Number of permission kinds (used to size per-kind variable arrays).
inline constexpr unsigned NumPermKinds = 5;

/// All kinds in downgrade order, for iteration.
inline constexpr std::array<PermKind, NumPermKinds> AllPermKinds = {
    PermKind::Unique, PermKind::Full, PermKind::Immutable, PermKind::Share,
    PermKind::Pure};

/// The lowercase annotation keyword for \p Kind ("unique", "full", ...).
const char *permKindName(PermKind Kind);

/// Parses a permission keyword; returns std::nullopt on unknown text.
std::optional<PermKind> parsePermKind(const std::string &Text);

/// True if a reference with \p Kind may write through itself
/// (unique, full, share).
bool allowsWrite(PermKind Kind);

/// True if other aliases may write while \p Kind is held (share, pure).
bool othersMayWrite(PermKind Kind);

/// True if \p From may be (soundly) downgraded to \p To along a split
/// edge, per the order of the paper's Eq. 2:
///   unique -> {unique, full, immutable, share, pure}
///   full -> {full, immutable, share, pure}
///   immutable -> {immutable, share, pure}
///   share -> {share, pure}
///   pure -> {pure}
bool canDowngrade(PermKind From, PermKind To);

/// True if \p Kind may be duplicated without destroying it (share,
/// immutable, pure coexist with copies of themselves); unique and full are
/// exclusive.
bool isDuplicable(PermKind Kind);

/// The strongest permission a caller can retain while lending \p Lent out
/// of a permission of kind \p Have. Returns std::nullopt when nothing can
/// be retained (the whole permission is lent), and is only defined when
/// canDowngrade(Have, Lent).
std::optional<PermKind> residueAfterLending(PermKind Have, PermKind Lent);

/// The strongest kind obtainable by merging permissions \p A and \p B for
/// the same object (fractional merging, paper Section 2). Merging two
/// halves of an exclusive permission restores it; our checker approximates
/// with the strongest of the two sides unless fractions prove more.
PermKind strongerKind(PermKind A, PermKind B);

/// The weaker (more permissive to aliases) of two kinds; used as the join
/// in the checker's dataflow lattice.
PermKind weakerKind(PermKind A, PermKind B);

} // namespace anek

#endif // ANEK_PERM_PERMKIND_H
