//===- PermKind.cpp - The five access permission kinds --------------------===//

#include "perm/PermKind.h"

#include <cassert>

using namespace anek;

const char *anek::permKindName(PermKind Kind) {
  switch (Kind) {
  case PermKind::Unique:
    return "unique";
  case PermKind::Full:
    return "full";
  case PermKind::Immutable:
    return "immutable";
  case PermKind::Share:
    return "share";
  case PermKind::Pure:
    return "pure";
  }
  assert(false && "unknown permission kind");
  return "unknown";
}

std::optional<PermKind> anek::parsePermKind(const std::string &Text) {
  for (PermKind Kind : AllPermKinds)
    if (Text == permKindName(Kind))
      return Kind;
  return std::nullopt;
}

bool anek::allowsWrite(PermKind Kind) {
  return Kind == PermKind::Unique || Kind == PermKind::Full ||
         Kind == PermKind::Share;
}

bool anek::othersMayWrite(PermKind Kind) {
  return Kind == PermKind::Share || Kind == PermKind::Pure;
}

bool anek::canDowngrade(PermKind From, PermKind To) {
  return static_cast<unsigned>(From) <= static_cast<unsigned>(To);
}

bool anek::isDuplicable(PermKind Kind) {
  return Kind == PermKind::Share || Kind == PermKind::Immutable ||
         Kind == PermKind::Pure;
}

std::optional<PermKind>
anek::residueAfterLending(PermKind Have, PermKind Lent) {
  assert(canDowngrade(Have, Lent) && "illegal lend");
  switch (Have) {
  case PermKind::Unique:
    switch (Lent) {
    case PermKind::Unique:
      return std::nullopt; // Everything is lent.
    case PermKind::Full:
      return PermKind::Pure; // Callee has exclusive write; we may observe.
    case PermKind::Immutable:
      return PermKind::Immutable;
    case PermKind::Share:
      return PermKind::Share;
    case PermKind::Pure:
      return PermKind::Full; // We keep the exclusive write side.
    }
    break;
  case PermKind::Full:
    switch (Lent) {
    case PermKind::Full:
      return std::nullopt;
    case PermKind::Immutable:
    case PermKind::Share:
      return PermKind::Pure;
    case PermKind::Pure:
      return PermKind::Full;
    default:
      break;
    }
    break;
  case PermKind::Immutable:
    // Immutable duplicates freely (fractions shrink).
    return PermKind::Immutable;
  case PermKind::Share:
    return PermKind::Share;
  case PermKind::Pure:
    return PermKind::Pure;
  }
  return std::nullopt;
}

PermKind anek::strongerKind(PermKind A, PermKind B) {
  return canDowngrade(A, B) ? A : B;
}

PermKind anek::weakerKind(PermKind A, PermKind B) {
  return canDowngrade(A, B) ? B : A;
}
