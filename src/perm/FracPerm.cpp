//===- FracPerm.cpp - Fractional access permissions ------------------------===//

#include "perm/FracPerm.h"

using namespace anek;

std::string FracPerm::str() const {
  std::string Out = permKindName(Kind);
  if (!(Frac == Rational(1))) {
    Out += "{";
    Out += Frac.str();
    Out += "}";
  }
  return Out;
}

std::optional<LendResult> anek::lend(const FracPerm &Have, PermKind Needed) {
  if (!canDowngrade(Have.Kind, Needed))
    return std::nullopt;
  if (Have.Frac.isZero())
    return std::nullopt;

  LendResult Result;
  if (Have.Kind == Needed && isDuplicable(Needed)) {
    // Duplicable same-kind lend: split the fraction in half.
    Rational Half = Have.Frac * Rational(1, 2);
    Result.Lent = FracPerm(Needed, Half);
    Result.Residue = FracPerm(Needed, Half);
    return Result;
  }

  Result.Lent = FracPerm(Needed, Have.Frac);
  std::optional<PermKind> ResidueKind = residueAfterLending(Have.Kind, Needed);
  if (ResidueKind)
    Result.Residue = FracPerm(*ResidueKind, Have.Frac);
  return Result;
}

FracPerm anek::mergeAfterCall(const FracPerm &Original, PermKind Lent,
                              const FracPerm &Returned,
                              const std::optional<FracPerm> &Residue) {
  // The callee returned at least what it borrowed: the split is undone
  // and the original permission reappears (fractional merging).
  if (canDowngrade(Returned.Kind, Lent))
    return Original;
  // A weakening callee post: combine the stronger of the residue and the
  // returned permission.
  if (Residue)
    return FracPerm(strongerKind(Residue->Kind, Returned.Kind),
                    Original.Frac);
  return Returned;
}

FracPerm anek::joinPerms(const FracPerm &A, const FracPerm &B) {
  FracPerm Result;
  Result.Kind = weakerKind(A.Kind, B.Kind);
  Result.Frac = A.Frac <= B.Frac ? A.Frac : B.Frac;
  return Result;
}
