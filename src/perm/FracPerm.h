//===- FracPerm.h - Fractional access permissions ----------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A permission kind paired with an exact fraction (Boyland [7], paper
/// Section 2): weaker permissions carry fractions of a whole so that
/// merging can restore stronger ones. The PLURAL checker threads these
/// through method bodies; split/lend/merge are the only operations.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_PERM_FRACPERM_H
#define ANEK_PERM_FRACPERM_H

#include "perm/PermKind.h"
#include "support/Rational.h"

#include <optional>
#include <string>

namespace anek {

/// A fraction of a permission of some kind. Fraction 1 of an exclusive
/// kind is the whole permission; duplicable kinds circulate in halves,
/// quarters, and so on.
struct FracPerm {
  PermKind Kind = PermKind::Pure;
  Rational Frac = Rational(1);

  FracPerm() = default;
  FracPerm(PermKind Kind, Rational Frac) : Kind(Kind), Frac(Frac) {}

  /// A whole permission of \p Kind.
  static FracPerm whole(PermKind Kind) { return FracPerm(Kind, Rational(1)); }

  bool operator==(const FracPerm &Other) const = default;

  /// Renders as "kind" or "kind{n/d}".
  std::string str() const;
};

/// The outcome of lending permission at a call site: what the callee
/// receives and what the caller retains for the duration of the call.
struct LendResult {
  FracPerm Lent;
  /// Empty when the whole permission was handed over.
  std::optional<FracPerm> Residue;
};

/// Attempts to lend a permission of kind \p Needed out of \p Have.
/// Returns std::nullopt if \p Have cannot be downgraded to \p Needed.
/// Duplicable kinds split their fraction in half; exclusive kinds follow
/// the residue table of residueAfterLending().
std::optional<LendResult> lend(const FracPerm &Have, PermKind Needed);

/// Merges permission returned from a callee with the caller's residue
/// (paper Section 2, "merging"). \p Lent is what the callee borrowed. If
/// the callee returned at least what it borrowed, the split is undone and
/// \p Original reappears; otherwise the result combines the residue with
/// what came back (sound: we never fabricate write ability, both sides
/// co-existed).
FracPerm mergeAfterCall(const FracPerm &Original, PermKind Lent,
                        const FracPerm &Returned,
                        const std::optional<FracPerm> &Residue);

/// The join of two permissions for the same object on two control-flow
/// paths: the weaker kind with the smaller fraction (sound approximation).
FracPerm joinPerms(const FracPerm &A, const FracPerm &B);

} // namespace anek

#endif // ANEK_PERM_FRACPERM_H
