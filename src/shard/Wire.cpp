//===- Wire.cpp - The anek-shard-v1 framed pipe protocol --------------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "shard/Wire.h"

#include "support/Subprocess.h"
#include "support/WireFormat.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unistd.h>

using namespace anek;
using namespace anek::shard;

namespace {

Status malformed(const std::string &What) {
  return Status::error(ErrorCode::InvalidArgument,
                       "shard frame rejected: " + What);
}

bool knownFrameType(uint16_t Raw) {
  return Raw >= static_cast<uint16_t>(FrameType::Init) &&
         Raw <= static_cast<uint16_t>(FrameType::InitAck);
}

/// The effective payload cap for a connection: 0 means the protocol
/// default, anything else is clamped into [floor, default] so a mis-set
/// knob can neither disable the bound nor starve the protocol.
uint64_t effectiveCap(uint64_t MaxPayload) {
  if (MaxPayload == 0 || MaxPayload > MaxFramePayload)
    return MaxFramePayload;
  return std::max(MaxPayload, MinConfigurableFramePayload);
}

/// Validates a decoded header. \p Available is the payload byte count
/// actually present (the in-memory path); the pipe path passes the
/// declared length through after the cap check and validates the checksum
/// once the payload has been read.
Status checkHeader(uint32_t Magic, uint16_t Version, uint16_t RawType,
                   uint64_t PayloadLen, uint64_t MaxPayload) {
  if (Magic != FrameMagic)
    return malformed("bad magic");
  if (Version != ProtocolVersion)
    return malformed("unsupported protocol version " +
                     std::to_string(Version));
  if (!knownFrameType(RawType))
    return malformed("unknown frame type " + std::to_string(RawType));
  if (PayloadLen > effectiveCap(MaxPayload))
    return Status::error(ErrorCode::ResourceExhausted,
                         "shard frame rejected: declared payload of " +
                             std::to_string(PayloadLen) +
                             " bytes exceeds the frame cap");
  return Status::ok();
}

double secondsLeft(std::chrono::steady_clock::time_point DeadlineAt,
                   bool Unlimited) {
  if (Unlimited)
    return -1.0;
  return std::chrono::duration<double>(DeadlineAt -
                                       std::chrono::steady_clock::now())
      .count();
}

/// readFull under a frame-wide deadline: waits for readability with the
/// remaining budget before every read(), so a peer that stalls mid-frame
/// still trips DeadlineExceeded instead of blocking forever.
Status readFullWithin(int Fd, void *Buffer, size_t Size,
                      std::chrono::steady_clock::time_point DeadlineAt,
                      bool Unlimited) {
  char *Out = static_cast<char *>(Buffer);
  size_t Done = 0;
  while (Done < Size) {
    double Left = secondsLeft(DeadlineAt, Unlimited);
    if (!Unlimited && Left <= 0.0)
      return Status::error(ErrorCode::DeadlineExceeded,
                           "shard frame read timed out");
    if (Status S = subprocess::waitReadable(Fd, Left); !S)
      return S;
    ssize_t N = ::read(Fd, Out + Done, Size - Done);
    if (N > 0) {
      Done += static_cast<size_t>(N);
      continue;
    }
    if (N == 0)
      return Status::error(ErrorCode::WorkerLost,
                           "pipe closed mid-frame (peer died)");
    if (errno == EINTR)
      continue;
    return Status::error(ErrorCode::Internal,
                         std::string("read failed: ") + std::strerror(errno));
  }
  return Status::ok();
}

} // namespace

const char *shard::frameTypeName(FrameType Type) {
  switch (Type) {
  case FrameType::Init:
    return "init";
  case FrameType::Task:
    return "task";
  case FrameType::Result:
    return "result";
  case FrameType::Heartbeat:
    return "heartbeat";
  case FrameType::Shutdown:
    return "shutdown";
  case FrameType::Error:
    return "error";
  case FrameType::Telemetry:
    return "telemetry";
  case FrameType::InitDigest:
    return "init-digest";
  case FrameType::InitNeeded:
    return "init-needed";
  case FrameType::InitAck:
    return "init-ack";
  }
  return "unknown";
}

std::string shard::encodeFrame(FrameType Type, std::string_view Payload) {
  return encodeFrame(Type, Payload, ProtocolVersion);
}

std::string shard::encodeFrame(FrameType Type, std::string_view Payload,
                               uint16_t Version) {
  wire::Writer W;
  W.u32(FrameMagic);
  W.u16(Version);
  W.u16(static_cast<uint16_t>(Type));
  W.u64(Payload.size());
  W.u64(wire::fnv1a64(Payload));
  std::string Out = W.take();
  Out.append(Payload.data(), Payload.size());
  return Out;
}

Expected<Frame> shard::parseFrame(std::string_view Bytes,
                                  uint64_t MaxPayload) {
  if (Bytes.size() < FrameHeaderBytes)
    return malformed("truncated header (" + std::to_string(Bytes.size()) +
                     " of " + std::to_string(FrameHeaderBytes) + " bytes)");
  wire::Reader R(Bytes.substr(0, FrameHeaderBytes));
  uint32_t Magic = 0;
  uint16_t Version = 0, RawType = 0;
  uint64_t PayloadLen = 0, Checksum = 0;
  R.u32(Magic);
  R.u16(Version);
  R.u16(RawType);
  R.u64(PayloadLen);
  R.u64(Checksum);
  if (!R.done())
    return malformed("unreadable header");
  if (Status S = checkHeader(Magic, Version, RawType, PayloadLen, MaxPayload);
      !S)
    return S;
  if (Bytes.size() - FrameHeaderBytes != PayloadLen)
    return malformed("declared payload of " + std::to_string(PayloadLen) +
                     " bytes, got " +
                     std::to_string(Bytes.size() - FrameHeaderBytes));
  std::string_view Payload = Bytes.substr(FrameHeaderBytes);
  if (wire::fnv1a64(Payload) != Checksum)
    return malformed("checksum mismatch");
  Frame F;
  F.Type = static_cast<FrameType>(RawType);
  F.Payload.assign(Payload.data(), Payload.size());
  return F;
}

Status shard::writeFrame(int Fd, FrameType Type, std::string_view Payload) {
  std::string Bytes = encodeFrame(Type, Payload);
  return subprocess::writeFull(Fd, Bytes.data(), Bytes.size());
}

Expected<Frame> shard::readFrame(int Fd, double TimeoutSeconds,
                                 uint64_t MaxPayload) {
  bool Unlimited = TimeoutSeconds < 0.0;
  auto DeadlineAt =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(Unlimited ? 0.0 : TimeoutSeconds));

  char Header[FrameHeaderBytes];
  if (Status S = readFullWithin(Fd, Header, sizeof(Header), DeadlineAt,
                                Unlimited);
      !S)
    return S;
  wire::Reader R(std::string_view(Header, sizeof(Header)));
  uint32_t Magic = 0;
  uint16_t Version = 0, RawType = 0;
  uint64_t PayloadLen = 0, Checksum = 0;
  R.u32(Magic);
  R.u16(Version);
  R.u16(RawType);
  R.u64(PayloadLen);
  R.u64(Checksum);
  if (!R.done())
    return malformed("unreadable header");
  if (Status S = checkHeader(Magic, Version, RawType, PayloadLen, MaxPayload);
      !S)
    return S;

  Frame F;
  F.Type = static_cast<FrameType>(RawType);
  // Grow the payload buffer as bytes actually arrive instead of
  // pre-allocating the full declared length: a corrupt or hostile header
  // may declare anything up to the frame cap, and a multi-hundred-MB
  // allocation driven by 24 header bytes is an easy way to knock over the
  // coordinator before the checksum ever gets a say. With chunked reads
  // the allocation is bounded by bytes received (plus one chunk), so a
  // lying peer costs us at most what it actually sends.
  constexpr size_t ReadChunk = 64 * 1024;
  F.Payload.reserve(std::min<uint64_t>(PayloadLen, ReadChunk));
  while (F.Payload.size() < PayloadLen) {
    const size_t Prev = F.Payload.size();
    const size_t Step =
        static_cast<size_t>(std::min<uint64_t>(PayloadLen - Prev, ReadChunk));
    F.Payload.resize(Prev + Step);
    if (Status S = readFullWithin(Fd, F.Payload.data() + Prev, Step,
                                  DeadlineAt, Unlimited);
        !S)
      return S;
  }
  if (wire::fnv1a64(F.Payload) != Checksum)
    return malformed("checksum mismatch");
  return F;
}

// --- Init ----------------------------------------------------------------

std::string shard::encodeInit(const std::string &Source,
                              const InferOptions &Opts,
                              uint8_t CollectLevel) {
  wire::Writer W;
  W.str(Source);
  W.u32(Opts.MaxIters);
  W.f64(Opts.Threshold);
  W.f64(Opts.SummaryTolerance);
  W.u8(static_cast<uint8_t>(Opts.Solver));
  W.f64(Opts.SpecHi);
  W.f64(Opts.SpecLo);
  W.u8(Opts.RespectDeclared ? 1 : 0);
  W.u8(Opts.Fallback ? 1 : 0);
  W.f64(Opts.SolveBudgetSeconds);
  W.u64(Opts.Seed);
  W.str(Opts.FaultScope);
  const ConstraintOptions &C = Opts.Constraints;
  W.f64(C.L1Branch);
  W.f64(C.L1Split);
  W.f64(C.L2Incoming);
  W.f64(C.L3FieldWrite);
  W.f64(C.H1Ctor);
  W.f64(C.H2PrePost);
  W.f64(C.H3Create);
  W.f64(C.H4Setter);
  W.f64(C.H5Sync);
  W.f64(C.H6WeakPre);
  uint8_t Toggles = 0;
  Toggles |= C.EnableH1 ? 1u << 0 : 0;
  Toggles |= C.EnableH2 ? 1u << 1 : 0;
  Toggles |= C.EnableH3 ? 1u << 2 : 0;
  Toggles |= C.EnableH4 ? 1u << 3 : 0;
  Toggles |= C.EnableH5 ? 1u << 4 : 0;
  Toggles |= C.EnableH6 ? 1u << 5 : 0;
  Toggles |= C.LogicalOnly ? 1u << 6 : 0;
  Toggles |= C.EnableExclusivity ? 1u << 7 : 0;
  W.u8(Toggles);
  W.u8(C.KindMutex ? 1 : 0);
  W.f64(C.KindMutexProb);
  W.u8(CollectLevel);
  return W.take();
}

Status shard::decodeInit(std::string_view Payload, std::string &Source,
                         InferOptions &Opts, uint8_t *CollectLevel) {
  // The source text can legitimately be large; bound it by the frame cap
  // rather than the Reader's conservative string default.
  wire::Reader R(Payload);
  if (!R.str(Source, MaxFramePayload))
    return malformed("init source");
  uint8_t Solver = 0, RespectDeclared = 0, Fallback = 0;
  bool Ok = R.u32(Opts.MaxIters) && R.f64(Opts.Threshold) &&
            R.f64(Opts.SummaryTolerance) && R.u8(Solver) &&
            R.f64(Opts.SpecHi) && R.f64(Opts.SpecLo) &&
            R.u8(RespectDeclared) && R.u8(Fallback) &&
            R.f64(Opts.SolveBudgetSeconds) && R.u64(Opts.Seed) &&
            R.str(Opts.FaultScope);
  if (!Ok)
    return malformed("init options");
  if (Solver > static_cast<uint8_t>(SolverChoice::Exact))
    return malformed("init solver choice out of range");
  Opts.Solver = static_cast<SolverChoice>(Solver);
  Opts.RespectDeclared = RespectDeclared != 0;
  Opts.Fallback = Fallback != 0;
  ConstraintOptions &C = Opts.Constraints;
  uint8_t Toggles = 0, KindMutex = 0;
  Ok = R.f64(C.L1Branch) && R.f64(C.L1Split) && R.f64(C.L2Incoming) &&
       R.f64(C.L3FieldWrite) && R.f64(C.H1Ctor) && R.f64(C.H2PrePost) &&
       R.f64(C.H3Create) && R.f64(C.H4Setter) && R.f64(C.H5Sync) &&
       R.f64(C.H6WeakPre) && R.u8(Toggles) && R.u8(KindMutex) &&
       R.f64(C.KindMutexProb);
  if (!Ok)
    return malformed("init constraint options");
  uint8_t Level = 0;
  if (!R.u8(Level) || !R.done())
    return malformed("init telemetry level");
  if (Level > static_cast<uint8_t>(telemetry::TraceLevel::Solver))
    return malformed("init telemetry level out of range");
  if (CollectLevel)
    *CollectLevel = Level;
  C.EnableH1 = (Toggles & (1u << 0)) != 0;
  C.EnableH2 = (Toggles & (1u << 1)) != 0;
  C.EnableH3 = (Toggles & (1u << 2)) != 0;
  C.EnableH4 = (Toggles & (1u << 3)) != 0;
  C.EnableH5 = (Toggles & (1u << 4)) != 0;
  C.EnableH6 = (Toggles & (1u << 5)) != 0;
  C.LogicalOnly = (Toggles & (1u << 6)) != 0;
  C.EnableExclusivity = (Toggles & (1u << 7)) != 0;
  C.KindMutex = KindMutex != 0;
  return Status::ok();
}

uint64_t shard::initDigest(std::string_view InitPayload) {
  return wire::fnv1a64(InitPayload);
}

std::string shard::encodeInitDigest(uint64_t Digest) {
  wire::Writer W;
  W.u64(Digest);
  return W.take();
}

Status shard::decodeInitDigest(std::string_view Payload, uint64_t &Digest) {
  wire::Reader R(Payload);
  if (!R.u64(Digest) || !R.done())
    return malformed("init digest");
  return Status::ok();
}

// --- Task ----------------------------------------------------------------

std::string shard::encodeTask(const std::vector<unsigned> &DeclIndices,
                              std::string_view Snapshot,
                              const TaskMeta &Meta) {
  wire::Writer W;
  W.u32(static_cast<uint32_t>(DeclIndices.size()));
  for (unsigned Index : DeclIndices)
    W.u32(Index);
  W.str(Snapshot);
  W.u64(Meta.ParentFlowId);
  W.u32(Meta.Wave);
  W.u64(static_cast<uint64_t>(Meta.DispatchUs));
  return W.take();
}

Status shard::decodeTask(std::string_view Payload,
                         std::vector<unsigned> &DeclIndices,
                         std::string &Snapshot, TaskMeta *Meta) {
  wire::Reader R(Payload);
  uint32_t Count = 0;
  if (!R.count(Count, sizeof(uint32_t)))
    return malformed("task method count");
  DeclIndices.clear();
  DeclIndices.reserve(Count);
  for (uint32_t I = 0; I != Count; ++I) {
    uint32_t Index = 0;
    if (!R.u32(Index))
      return malformed("task method index");
    DeclIndices.push_back(Index);
  }
  if (!R.str(Snapshot, MaxFramePayload))
    return malformed("task snapshot");
  TaskMeta M;
  uint64_t DispatchUs = 0;
  if (!R.u64(M.ParentFlowId) || !R.u32(M.Wave) || !R.u64(DispatchUs) ||
      !R.done())
    return malformed("task dispatch identity");
  M.DispatchUs = static_cast<int64_t>(DispatchUs);
  if (Meta)
    *Meta = M;
  return Status::ok();
}

// --- Telemetry -----------------------------------------------------------
//
// The blob carries its own version byte so its schema can evolve without
// another protocol bump; the frame checksum already covers integrity.

namespace {
constexpr uint8_t TelemetryBlobVersion = 1;
} // namespace

std::string shard::encodeTelemetry(const TelemetryBlob &Blob) {
  wire::Writer W;
  W.u8(TelemetryBlobVersion);
  W.u32(Blob.Pid);
  W.u32(Blob.Wave);
  W.u64(Blob.ParentFlowId);
  W.u64(static_cast<uint64_t>(Blob.TaskStartUs));
  W.u32(static_cast<uint32_t>(Blob.Events.size()));
  for (const telemetry::EventRecord &E : Blob.Events) {
    W.str(E.Name);
    W.str(E.Category);
    W.u8(static_cast<uint8_t>(E.Phase));
    W.u64(static_cast<uint64_t>(E.TsUs));
    W.u64(static_cast<uint64_t>(E.DurUs));
    W.u32(E.Tid);
    W.u32(E.Depth);
    W.u64(E.FlowId);
    W.str(E.Args);
  }
  const telemetry::MetricsSnapshot &M = Blob.Metrics;
  W.u32(static_cast<uint32_t>(M.Counters.size()));
  for (const auto &[Name, V] : M.Counters) {
    W.str(Name);
    W.u64(V);
  }
  W.u32(static_cast<uint32_t>(M.Gauges.size()));
  for (const auto &[Name, V] : M.Gauges) {
    W.str(Name);
    W.f64(V);
  }
  W.u32(static_cast<uint32_t>(M.Histograms.size()));
  for (const auto &[Name, H] : M.Histograms) {
    W.str(Name);
    W.u64(H.Count);
    W.f64(H.Sum);
    W.f64(H.Min);
    W.f64(H.Max);
    W.u32(static_cast<uint32_t>(H.Buckets.size()));
    for (uint64_t B : H.Buckets)
      W.u64(B);
  }
  return W.take();
}

Status shard::decodeTelemetry(std::string_view Payload, TelemetryBlob &Blob) {
  wire::Reader R(Payload);
  uint8_t Version = 0;
  if (!R.u8(Version))
    return malformed("telemetry blob header");
  if (Version != TelemetryBlobVersion)
    return malformed("unsupported telemetry blob version " +
                     std::to_string(Version));
  uint64_t TaskStartUs = 0;
  if (!R.u32(Blob.Pid) || !R.u32(Blob.Wave) || !R.u64(Blob.ParentFlowId) ||
      !R.u64(TaskStartUs))
    return malformed("telemetry blob header");
  Blob.TaskStartUs = static_cast<int64_t>(TaskStartUs);

  uint32_t NumEvents = 0;
  // Each event needs at least 3 string length prefixes + the fixed
  // fields; the per-element floor keeps a corrupt count from driving a
  // giant reserve.
  if (!R.count(NumEvents, 3 * sizeof(uint32_t) + 29))
    return malformed("telemetry event count");
  Blob.Events.clear();
  Blob.Events.reserve(NumEvents);
  for (uint32_t I = 0; I != NumEvents; ++I) {
    telemetry::EventRecord E;
    uint8_t Phase = 0;
    uint64_t TsUs = 0, DurUs = 0;
    bool Ok = R.str(E.Name) && R.str(E.Category) && R.u8(Phase) &&
              R.u64(TsUs) && R.u64(DurUs) && R.u32(E.Tid) && R.u32(E.Depth) &&
              R.u64(E.FlowId) && R.str(E.Args);
    if (!Ok)
      return malformed("telemetry event");
    E.Phase = static_cast<char>(Phase);
    E.TsUs = static_cast<int64_t>(TsUs);
    E.DurUs = static_cast<int64_t>(DurUs);
    Blob.Events.push_back(std::move(E));
  }

  telemetry::MetricsSnapshot &M = Blob.Metrics;
  uint32_t N = 0;
  if (!R.count(N, sizeof(uint32_t) + sizeof(uint64_t)))
    return malformed("telemetry counter count");
  M.Counters.clear();
  for (uint32_t I = 0; I != N; ++I) {
    std::string Name;
    uint64_t V = 0;
    if (!R.str(Name) || !R.u64(V))
      return malformed("telemetry counter");
    M.Counters[std::move(Name)] = V;
  }
  if (!R.count(N, sizeof(uint32_t) + sizeof(uint64_t)))
    return malformed("telemetry gauge count");
  M.Gauges.clear();
  for (uint32_t I = 0; I != N; ++I) {
    std::string Name;
    double V = 0.0;
    if (!R.str(Name) || !R.f64(V))
      return malformed("telemetry gauge");
    M.Gauges[std::move(Name)] = V;
  }
  if (!R.count(N, 2 * sizeof(uint32_t) + 4 * sizeof(uint64_t)))
    return malformed("telemetry histogram count");
  M.Histograms.clear();
  for (uint32_t I = 0; I != N; ++I) {
    std::string Name;
    telemetry::HistogramSnapshot H;
    uint32_t NumBuckets = 0;
    bool Ok = R.str(Name) && R.u64(H.Count) && R.f64(H.Sum) &&
              R.f64(H.Min) && R.f64(H.Max) &&
              R.count(NumBuckets, sizeof(uint64_t));
    if (!Ok || NumBuckets > telemetry::Histogram::NumBuckets)
      return malformed("telemetry histogram");
    H.Buckets.resize(NumBuckets);
    for (uint32_t B = 0; B != NumBuckets; ++B)
      if (!R.u64(H.Buckets[B]))
        return malformed("telemetry histogram bucket");
    M.Histograms[std::move(Name)] = std::move(H);
  }
  if (!R.done())
    return malformed("telemetry blob trailer");
  return Status::ok();
}
