//===- WorkerDaemon.h - The persistent `anek workerd` daemon -----*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent worker daemon of the networked shard tier (DESIGN.md,
/// "Sharded execution and failure model"). Where a pipe worker is born
/// per coordinator and dies with it, a daemon outlives both: it listens
/// on a socket (TCP or Unix-domain), serves any number of coordinator
/// sessions — concurrently, one thread per connection — and returns to
/// accept when a coordinator disconnects, however rudely.
///
/// The point of persistence is the resident program cache. A session
/// opens with the Init-by-digest handshake (Wire.h): the coordinator
/// sends the fnv1a64 of its Init payload; if the daemon already holds
/// the decoded, parsed program under that digest it answers InitAck
/// immediately and the session skips shipping — and re-parsing — the
/// whole program. Only a miss pays the full Init. Because the digest is
/// computed over the exact Init bytes (source + algorithm options +
/// collection level), an edited program is a different digest by
/// construction: the daemon re-requests the full payload and can never
/// serve a stale program. Sessions sharing a resident program run
/// concurrently — the analysis reads the Program, all mutable state is
/// per-engine (the same contract the in-process parallel scheduler
/// relies on).
///
/// A session that opens with the wrong protocol version (a mismatched
/// binary) is rejected by the frame decoder and dropped; the daemon
/// survives and keeps accepting. Malformed traffic ends the *session*,
/// never the daemon.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SHARD_WORKERDAEMON_H
#define ANEK_SHARD_WORKERDAEMON_H

#include "support/Socket.h"
#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace anek {
namespace shard {

struct WorkerDaemonOptions {
  /// Where to listen: "host:port" (port 0 = kernel-assigned, see
  /// boundAddress) or "unix:/path". The driver's `--listen`.
  std::string ListenAddress;
  /// Per-connection frame cap (0 = protocol default). The driver's
  /// `--max-frame-bytes`.
  uint64_t MaxFrameBytes = 0;
  /// How long a session may sit idle between tasks before the daemon
  /// gives it up (< 0 = forever). The driver's `--idle-timeout`.
  double IdleTimeoutSeconds = -1.0;
  /// Resident programs kept across sessions; the oldest is evicted when
  /// a miss would exceed this.
  unsigned MaxResidentPrograms = 8;
};

struct WorkerDaemonStats {
  unsigned SessionsAccepted = 0;
  /// Sessions dropped before serving a task: version skew, malformed
  /// handshake, unparseable program.
  unsigned SessionsRejected = 0;
  unsigned DigestHits = 0;
  unsigned DigestMisses = 0;
  unsigned TasksServed = 0;
};

/// The daemon. start() binds and spawns the accept loop; stop() (or the
/// destructor) shuts every live session down and joins. Tests run it
/// in-process; `anek workerd` wraps it behind runWorkerDaemon below.
class WorkerDaemon {
public:
  explicit WorkerDaemon(WorkerDaemonOptions Opts);
  ~WorkerDaemon();

  WorkerDaemon(const WorkerDaemon &) = delete;
  WorkerDaemon &operator=(const WorkerDaemon &) = delete;

  /// Binds, listens and starts accepting. InvalidArgument/Internal on a
  /// bad or unbindable address.
  Status start();

  /// The actual bound address (resolves a requested TCP port 0).
  std::string boundAddress() const;

  /// Stops accepting, ends every live session and joins all threads.
  /// Idempotent.
  void stop();

  WorkerDaemonStats stats() const;

private:
  struct Resident;
  struct Session;

  void acceptLoop();
  void runSession(Session &S);
  /// Digest lookup / insertion with FIFO eviction at the cap.
  std::shared_ptr<Resident> lookupResident(uint64_t Digest);
  void storeResident(uint64_t Digest, std::shared_ptr<Resident> Entry);

  WorkerDaemonOptions Opts;
  sock::ListenSocket Listener;
  std::thread Acceptor;
  bool Started = false;

  mutable std::mutex Mutex; ///< Guards Sessions, Residents, Order, Stats.
  std::vector<std::unique_ptr<Session>> Sessions;
  std::vector<std::pair<uint64_t, std::shared_ptr<Resident>>> Residents;
  WorkerDaemonStats Stats;
  bool Stopping = false;
};

/// Blocking driver entry for `anek workerd`: starts the daemon, prints
/// the bound address to stderr (so harnesses can scrape readiness), and
/// serves until SIGINT/SIGTERM. Returns a process exit code.
int runWorkerDaemon(const WorkerDaemonOptions &Opts);

} // namespace shard
} // namespace anek

#endif // ANEK_SHARD_WORKERDAEMON_H
