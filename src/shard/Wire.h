//===- Wire.h - The anek-shard-v1 framed pipe protocol -----------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator <-> worker protocol of the sharded execution tier
/// (DESIGN.md, "Sharded execution and failure model"). A connection is a
/// pair of pipes carrying *frames*:
///
///   header  u32 magic | u16 version | u16 type | u64 payload-len | u64 fnv
///   payload payload-len bytes
///
/// and a session is:
///
///   coordinator -> worker   Init      source text + algorithm options
///                                     + telemetry collection level
///   (socket sessions open with an Init-by-digest handshake instead:
///    InitDigest carries the fnv1a64 of the Init payload the coordinator
///    would send; a daemon that already holds that program answers
///    InitAck straight away, otherwise InitNeeded asks for the full Init
///    — so re-connects to a persistent worker daemon ship 32 bytes, not
///    the whole program, and a stale daemon can never serve an edited
///    program by accident because the digest is the content.)
///   coordinator -> worker   Task      decl indices + summary snapshot
///                                     + dispatch identity (parent flow
///                                     id, wave ordinal, dispatch clock)
///   worker -> coordinator   Heartbeat every ~200ms while a task runs
///   worker -> coordinator   Telemetry trace spans + metrics deltas the
///                                     task produced (collection on only)
///   worker -> coordinator   Result    sealed outcomes blob
///   worker -> coordinator   Error     message (structural failure)
///   coordinator -> worker   Shutdown  drain and exit
///
/// Decoding is defensive end to end: a truncated header, wrong magic or
/// version, an oversized declared length, or a checksum mismatch all come
/// back as Status errors (never a crash, never an unbounded allocation).
/// The coordinator classifies any unreadable frame as a lost worker —
/// kill, respawn, re-dispatch — so a corrupt byte stream costs one
/// attempt, not the run.
///
/// readFrame takes a deadline covering the *whole* frame, re-armed only
/// between frames: a worker stopped mid-payload trips the same timeout as
/// one that never wrote a byte, so hang detection has no blind spot.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SHARD_WIRE_H
#define ANEK_SHARD_WIRE_H

#include "infer/AnekInfer.h"
#include "support/Metrics.h"
#include "support/Status.h"
#include "support/Trace.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace anek {
namespace shard {

/// "ANKS" little-endian; rejects non-frame bytes immediately.
constexpr uint32_t FrameMagic = 0x534B4E41u;
/// The `anek-shard-v1` protocol version; decoders reject all others.
/// Version 2 added the Telemetry frame, the Init collection level and the
/// Task dispatch-identity fields; v1 peers are rejected outright (both
/// ends are always the same re-exec'd binary, so a mismatch means a torn
/// stream or a foreign writer, not a legitimate old peer).
constexpr uint16_t ProtocolVersion = 2;
/// Default hard cap on a frame's declared payload length. A corrupt
/// length field must bound allocation, not drive it. readFrame and
/// parseFrame accept a tighter per-connection cap (the driver's
/// `--shard-max-frame-bytes`); this constant is the ceiling and the
/// default.
constexpr uint64_t MaxFramePayload = uint64_t(1) << 30;
/// Floor for a configured frame cap: a header plus a small payload must
/// always fit, or the protocol cannot even carry its own Error frames.
constexpr uint64_t MinConfigurableFramePayload = 4096;
/// Fixed header size (see file comment for the layout).
constexpr size_t FrameHeaderBytes = 24;
/// How often a busy worker emits Heartbeat frames. Protocol-level so
/// coordinators can size their deadline as a multiple of it.
constexpr double HeartbeatIntervalSeconds = 0.2;

enum class FrameType : uint16_t {
  Init = 1,
  Task = 2,
  Result = 3,
  Heartbeat = 4,
  Shutdown = 5,
  Error = 6,
  Telemetry = 7,
  // Socket-session handshake (see the file comment). Pipe sessions keep
  // the bare Init — their worker was just spawned, so it can never
  // already hold the program.
  InitDigest = 8, ///< coordinator -> daemon: fnv1a64 of the Init payload
  InitNeeded = 9, ///< daemon -> coordinator: unknown digest, send Init
  InitAck = 10,   ///< daemon -> coordinator: program resident, send Tasks
};

/// "init" / "task" / ... for diagnostics.
const char *frameTypeName(FrameType Type);

struct Frame {
  FrameType Type = FrameType::Heartbeat;
  std::string Payload;
};

/// Renders the header + payload of one frame.
std::string encodeFrame(FrameType Type, std::string_view Payload);

/// encodeFrame with an explicit protocol version stamp. Only the
/// version-skew fault and the handshake-rejection tests write anything
/// but ProtocolVersion — a frame carrying the wrong version is exactly
/// what a mismatched coordinator/daemon pair would exchange, and the
/// receiver must reject it.
std::string encodeFrame(FrameType Type, std::string_view Payload,
                        uint16_t Version);

/// Decodes one complete frame from \p Bytes (tests and fuzz-style corrupt
/// suites; the pipe path below shares the same validation). Errors:
/// truncated header, bad magic, unsupported version, unknown type,
/// payload length over the cap or disagreeing with the bytes present,
/// checksum mismatch. \p MaxPayload = 0 means the MaxFramePayload
/// default; smaller values tighten the allocation bound per connection.
Expected<Frame> parseFrame(std::string_view Bytes, uint64_t MaxPayload = 0);

/// Writes one frame to \p Fd (EINTR-safe, EPIPE -> WorkerLost).
Status writeFrame(int Fd, FrameType Type, std::string_view Payload);

/// Reads one frame from \p Fd with \p TimeoutSeconds covering the whole
/// frame (< 0 = never time out). Errors: DeadlineExceeded on timeout,
/// WorkerLost on EOF, and the parseFrame vocabulary for malformed bytes.
/// \p MaxPayload as in parseFrame.
Expected<Frame> readFrame(int Fd, double TimeoutSeconds,
                          uint64_t MaxPayload = 0);

/// The content digest the Init-by-digest handshake exchanges: fnv1a64
/// over the exact encodeInit payload bytes, so "same digest" means "same
/// source, same algorithm options, same collection level".
uint64_t initDigest(std::string_view InitPayload);

/// InitDigest payload codec (a bare u64; InitNeeded and InitAck carry no
/// payload).
std::string encodeInitDigest(uint64_t Digest);
Status decodeInitDigest(std::string_view Payload, uint64_t &Digest);

// --- Payload codecs ------------------------------------------------------
//
// Init and Task payloads use the same wire::Writer/Reader substrate as
// the summary blobs; Result payloads are summaryio outcome blobs verbatim
// (sealed and checksummed in their own right); Error payloads are the raw
// message text; Heartbeat and Shutdown carry no payload.

/// Everything a worker needs to become the coordinator's algorithmic
/// twin: the program source plus the InferOptions knobs that change what
/// analysis computes. Scheduling knobs (Parallelism, Pool, governors) are
/// deliberately absent — a worker always analyzes its shard sequentially.
/// \p CollectLevel is the coordinator's telemetry::TraceLevel as a raw
/// byte: non-zero asks the worker to collect at (at least) that level and
/// ship a Telemetry frame per task. Collection never changes Result
/// bytes, so this knob cannot perturb the determinism contract.
std::string encodeInit(const std::string &Source, const InferOptions &Opts,
                       uint8_t CollectLevel = 0);
Status decodeInit(std::string_view Payload, std::string &Source,
                  InferOptions &Opts, uint8_t *CollectLevel = nullptr);

/// Identity of one dispatch, carried by the Task frame so the worker's
/// spans can nest under the coordinator's dispatch span: the
/// coordinator-side flow id its dispatch span opened (0 = tracing off),
/// the engine wave ordinal, and the coordinator's trace clock at
/// dispatch (worker timestamps are shifted by DispatchUs minus the
/// worker's task-start time, aligning the two process clocks).
struct TaskMeta {
  uint64_t ParentFlowId = 0;
  uint32_t Wave = 0;
  int64_t DispatchUs = 0;
};

/// A shard dispatch: which methods (by declaration index, ascending) to
/// analyze against which summary snapshot (a sealed summaryio blob),
/// stamped with the dispatch identity above.
std::string encodeTask(const std::vector<unsigned> &DeclIndices,
                       std::string_view Snapshot,
                       const TaskMeta &Meta = {});
Status decodeTask(std::string_view Payload, std::vector<unsigned> &DeclIndices,
                  std::string &Snapshot, TaskMeta *Meta = nullptr);

/// The telemetry a worker ships alongside each Result when the Init
/// frame asked for collection: the trace events recorded since the last
/// ship and the metrics delta this task produced, stamped with the
/// worker's pid (its coordinator-side lane) and the echo of the Task's
/// dispatch identity. Loss semantics are best-effort by design: the
/// coordinator drops an unreadable Telemetry payload (counting it) and
/// the dispatch succeeds on the Result frame alone.
struct TelemetryBlob {
  uint32_t Pid = 0;
  uint32_t Wave = 0;
  uint64_t ParentFlowId = 0;
  int64_t TaskStartUs = 0; ///< Worker trace clock when the task began.
  std::vector<telemetry::EventRecord> Events;
  telemetry::MetricsSnapshot Metrics;
};

std::string encodeTelemetry(const TelemetryBlob &Blob);
Status decodeTelemetry(std::string_view Payload, TelemetryBlob &Blob);

} // namespace shard
} // namespace anek

#endif // ANEK_SHARD_WIRE_H
