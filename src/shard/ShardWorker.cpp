//===- ShardWorker.cpp - The `anek --worker` process loop -------------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "shard/ShardWorker.h"

#include "infer/AnekInfer.h"
#include "lang/Sema.h"
#include "shard/Wire.h"
#include "support/Diagnostics.h"
#include "support/Metrics.h"
#include "support/Subprocess.h"
#include "support/Trace.h"

#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include <unistd.h>

using namespace anek;
using namespace anek::shard;

namespace {

/// Serializes every frame the worker emits: the heartbeat thread and the
/// task loop share one pipe, and an interleaved write would hand the
/// coordinator a torn frame (which it must — and does — treat as a lost
/// worker, wasting a perfectly good attempt).
class FrameSender {
public:
  explicit FrameSender(int Fd) : Fd(Fd) {}

  Status send(FrameType Type, std::string_view Payload) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return writeFrame(Fd, Type, Payload);
  }

private:
  int Fd;
  std::mutex Mutex;
};

/// Emits Heartbeat frames every HeartbeatIntervalSeconds until stopped.
/// Write failures are ignored here: if the coordinator is gone the task
/// loop's own Result write will discover it.
class HeartbeatPulse {
public:
  explicit HeartbeatPulse(FrameSender &Sender) : Sender(Sender) {
    Thread = std::thread([this] { run(); });
  }

  ~HeartbeatPulse() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Stop = true;
    }
    Cond.notify_all();
    Thread.join();
  }

private:
  void run() {
    std::unique_lock<std::mutex> Lock(Mutex);
    for (;;) {
      if (Cond.wait_for(Lock,
                        std::chrono::duration<double>(
                            HeartbeatIntervalSeconds),
                        [this] { return Stop; }))
        return;
      Lock.unlock();
      (void)Sender.send(FrameType::Heartbeat, {});
      Lock.lock();
    }
  }

  FrameSender &Sender;
  std::thread Thread;
  std::mutex Mutex;
  std::condition_variable Cond;
  bool Stop = false;
};

} // namespace

int shard::runWorkerLoop(int InFd, int OutFd) {
  subprocess::ignoreSigpipe();
  FrameSender Sender(OutFd);

  // Session setup: exactly one Init frame, carrying everything needed to
  // become the coordinator's algorithmic twin.
  Expected<Frame> InitFrame = readFrame(InFd, /*TimeoutSeconds=*/-1.0);
  if (!InitFrame)
    return 1;
  if (InitFrame->Type != FrameType::Init) {
    (void)Sender.send(FrameType::Error,
                      std::string("expected init frame, got ") +
                          frameTypeName(InitFrame->Type));
    return 1;
  }
  std::string Source;
  InferOptions Opts;
  uint8_t CollectLevel = 0;
  if (Status S = decodeInit(InitFrame->Payload, Source, Opts, &CollectLevel);
      !S) {
    (void)Sender.send(FrameType::Error, S.str());
    return 1;
  }
  // The coordinator's collection level is a floor, not an override: a
  // worker started with its own --trace-level (e.g. to debug one shard at
  // solver depth) keeps the deeper setting.
  if (CollectLevel > static_cast<uint8_t>(telemetry::traceLevel()))
    telemetry::setTraceLevel(static_cast<telemetry::TraceLevel>(CollectLevel));
  const bool ShipTelemetry = CollectLevel != 0;
  // Draining cursors into the local trace buffers: each task ships only
  // the events recorded since the previous ship.
  std::vector<size_t> ShipMarks;
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = parseAndAnalyze(Source, Diags);
  if (!Prog) {
    (void)Sender.send(FrameType::Error,
                      "worker cannot parse program: " + Diags.str());
    return 1;
  }

  // Task service loop. The worker is stateless across tasks; each Task
  // frame carries its own snapshot, so a respawned worker picking up a
  // re-dispatched shard starts from identical inputs.
  for (;;) {
    Expected<Frame> F = readFrame(InFd, /*TimeoutSeconds=*/-1.0);
    if (!F)
      // EOF = coordinator gone (or shutting down without ceremony); a
      // malformed frame from the coordinator is equally unrecoverable.
      return F.status().code() == ErrorCode::WorkerLost ? 0 : 1;
    switch (F->Type) {
    case FrameType::Shutdown:
      return 0;
    case FrameType::Task: {
      std::vector<unsigned> DeclIndices;
      std::string Snapshot;
      TaskMeta Meta;
      if (Status S = decodeTask(F->Payload, DeclIndices, Snapshot, &Meta);
          !S) {
        if (!Sender.send(FrameType::Error, S.str()))
          return 1;
        break;
      }
      telemetry::MetricsSnapshot Before;
      if (ShipTelemetry)
        Before = telemetry::captureMetrics();
      int64_t TaskStartUs = telemetry::nowUs();
      Expected<std::vector<summaryio::ShardMethodOutcome>> Outcomes = [&] {
        HeartbeatPulse Pulse(Sender);
        // Scoped so the task span is closed — and therefore collectable —
        // before telemetry is drained below.
        telemetry::Span TaskSpan("shard.task", telemetry::TraceLevel::Phase,
                                 "shard");
        if (TaskSpan.active()) {
          TaskSpan.arg("wave", Meta.Wave);
          TaskSpan.arg("methods", static_cast<uint64_t>(DeclIndices.size()));
        }
        return runShardMethods(*Prog, DeclIndices, Snapshot, Opts);
      }();
      if (ShipTelemetry) {
        // Best-effort by contract: a failed Telemetry write is discovered
        // (and classified) by the Result write that follows.
        TelemetryBlob Blob;
        Blob.Pid = static_cast<uint32_t>(::getpid());
        Blob.Wave = Meta.Wave;
        Blob.ParentFlowId = Meta.ParentFlowId;
        Blob.TaskStartUs = TaskStartUs;
        Blob.Events = telemetry::collectEventsSince(ShipMarks);
        Blob.Metrics = telemetry::diffMetrics(Before, telemetry::captureMetrics());
        (void)Sender.send(FrameType::Telemetry, encodeTelemetry(Blob));
      }
      Status Sent =
          Outcomes ? Sender.send(FrameType::Result,
                                 summaryio::encodeOutcomes(*Outcomes))
                   : Sender.send(FrameType::Error, Outcomes.status().str());
      if (!Sent)
        return 1;
      break;
    }
    default:
      // Heartbeats flow worker -> coordinator only; anything else here is
      // a protocol bug worth reporting but not dying over.
      if (!Sender.send(FrameType::Error,
                       std::string("unexpected frame type ") +
                           frameTypeName(F->Type)))
        return 1;
      break;
    }
  }
}
