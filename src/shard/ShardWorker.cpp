//===- ShardWorker.cpp - The `anek --worker` process loop -------------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "shard/ShardWorker.h"

#include "infer/AnekInfer.h"
#include "lang/Sema.h"
#include "shard/Wire.h"
#include "support/Diagnostics.h"
#include "support/Metrics.h"
#include "support/Subprocess.h"
#include "support/Trace.h"

#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include <unistd.h>

using namespace anek;
using namespace anek::shard;

namespace {

/// Emits Heartbeat frames every HeartbeatIntervalSeconds until stopped.
/// Write failures are ignored here: if the coordinator is gone the task
/// loop's own Result write will discover it.
class HeartbeatPulse {
public:
  explicit HeartbeatPulse(FrameSender &Sender) : Sender(Sender) {
    Thread = std::thread([this] { run(); });
  }

  ~HeartbeatPulse() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Stop = true;
    }
    Cond.notify_all();
    Thread.join();
  }

private:
  void run() {
    std::unique_lock<std::mutex> Lock(Mutex);
    for (;;) {
      if (Cond.wait_for(Lock,
                        std::chrono::duration<double>(
                            HeartbeatIntervalSeconds),
                        [this] { return Stop; }))
        return;
      Lock.unlock();
      (void)Sender.send(FrameType::Heartbeat, {});
      Lock.lock();
    }
  }

  FrameSender &Sender;
  std::thread Thread;
  std::mutex Mutex;
  std::condition_variable Cond;
  bool Stop = false;
};

} // namespace

SessionResult shard::serveSession(int InFd, FrameSender &Sender,
                                  Program &Prog, const InferOptions &Opts,
                                  uint8_t CollectLevel,
                                  const SessionLimits &Limits) {
  SessionResult R;
  // The coordinator's collection level is a floor, not an override: a
  // worker started with its own --trace-level (e.g. to debug one shard at
  // solver depth) keeps the deeper setting.
  if (CollectLevel > static_cast<uint8_t>(telemetry::traceLevel()))
    telemetry::setTraceLevel(static_cast<telemetry::TraceLevel>(CollectLevel));
  const bool ShipTelemetry = CollectLevel != 0;
  // Draining cursors into the local trace buffers: each task ships only
  // the events recorded since the previous ship.
  std::vector<size_t> ShipMarks;

  // Task service loop. The session is stateless across tasks; each Task
  // frame carries its own snapshot, so a respawned worker — or another
  // daemon session — picking up a re-dispatched shard starts from
  // identical inputs.
  for (;;) {
    Expected<Frame> F =
        readFrame(InFd, Limits.IdleTimeoutSeconds, Limits.MaxFrameBytes);
    if (!F) {
      // EOF = peer gone (or shutting down without ceremony) and an idle
      // timeout is a session that earned its keep; a malformed frame from
      // the peer is unrecoverable — its stream can no longer be trusted.
      R.Clean = F.status().code() == ErrorCode::WorkerLost ||
                F.status().code() == ErrorCode::DeadlineExceeded;
      return R;
    }
    switch (F->Type) {
    case FrameType::Shutdown:
      return R;
    case FrameType::Task: {
      std::vector<unsigned> DeclIndices;
      std::string Snapshot;
      TaskMeta Meta;
      if (Status S = decodeTask(F->Payload, DeclIndices, Snapshot, &Meta);
          !S) {
        if (!Sender.send(FrameType::Error, S.str())) {
          R.Clean = false;
          return R;
        }
        break;
      }
      telemetry::MetricsSnapshot Before;
      if (ShipTelemetry)
        Before = telemetry::captureMetrics();
      int64_t TaskStartUs = telemetry::nowUs();
      Expected<std::vector<summaryio::ShardMethodOutcome>> Outcomes = [&] {
        HeartbeatPulse Pulse(Sender);
        // Scoped so the task span is closed — and therefore collectable —
        // before telemetry is drained below.
        telemetry::Span TaskSpan("shard.task", telemetry::TraceLevel::Phase,
                                 "shard");
        if (TaskSpan.active()) {
          TaskSpan.arg("wave", Meta.Wave);
          TaskSpan.arg("methods", static_cast<uint64_t>(DeclIndices.size()));
        }
        return runShardMethods(Prog, DeclIndices, Snapshot, Opts);
      }();
      if (ShipTelemetry) {
        // Best-effort by contract: a failed Telemetry write is discovered
        // (and classified) by the Result write that follows.
        TelemetryBlob Blob;
        Blob.Pid = static_cast<uint32_t>(::getpid());
        Blob.Wave = Meta.Wave;
        Blob.ParentFlowId = Meta.ParentFlowId;
        Blob.TaskStartUs = TaskStartUs;
        Blob.Events = telemetry::collectEventsSince(ShipMarks);
        Blob.Metrics =
            telemetry::diffMetrics(Before, telemetry::captureMetrics());
        (void)Sender.send(FrameType::Telemetry, encodeTelemetry(Blob));
      }
      Status Sent =
          Outcomes ? Sender.send(FrameType::Result,
                                 summaryio::encodeOutcomes(*Outcomes))
                   : Sender.send(FrameType::Error, Outcomes.status().str());
      if (!Sent) {
        R.Clean = false;
        return R;
      }
      ++R.TasksServed;
      break;
    }
    default:
      // Heartbeats flow worker -> coordinator only; anything else here is
      // a protocol bug worth reporting but not dying over.
      if (!Sender.send(FrameType::Error,
                       std::string("unexpected frame type ") +
                           frameTypeName(F->Type))) {
        R.Clean = false;
        return R;
      }
      break;
    }
  }
}

int shard::runWorkerLoop(int InFd, int OutFd) {
  subprocess::ignoreSigpipe();
  FrameSender Sender(OutFd);

  // Session setup: exactly one Init frame, carrying everything needed to
  // become the coordinator's algorithmic twin.
  Expected<Frame> InitFrame = readFrame(InFd, /*TimeoutSeconds=*/-1.0);
  if (!InitFrame)
    return 1;
  if (InitFrame->Type != FrameType::Init) {
    (void)Sender.send(FrameType::Error,
                      std::string("expected init frame, got ") +
                          frameTypeName(InitFrame->Type));
    return 1;
  }
  std::string Source;
  InferOptions Opts;
  uint8_t CollectLevel = 0;
  if (Status S = decodeInit(InitFrame->Payload, Source, Opts, &CollectLevel);
      !S) {
    (void)Sender.send(FrameType::Error, S.str());
    return 1;
  }
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = parseAndAnalyze(Source, Diags);
  if (!Prog) {
    (void)Sender.send(FrameType::Error,
                      "worker cannot parse program: " + Diags.str());
    return 1;
  }

  SessionResult R = serveSession(InFd, Sender, *Prog, Opts, CollectLevel);
  return R.Clean ? 0 : 1;
}
