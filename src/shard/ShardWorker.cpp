//===- ShardWorker.cpp - The `anek --worker` process loop -------------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "shard/ShardWorker.h"

#include "infer/AnekInfer.h"
#include "lang/Sema.h"
#include "shard/Wire.h"
#include "support/Diagnostics.h"
#include "support/Subprocess.h"

#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

using namespace anek;
using namespace anek::shard;

namespace {

/// Serializes every frame the worker emits: the heartbeat thread and the
/// task loop share one pipe, and an interleaved write would hand the
/// coordinator a torn frame (which it must — and does — treat as a lost
/// worker, wasting a perfectly good attempt).
class FrameSender {
public:
  explicit FrameSender(int Fd) : Fd(Fd) {}

  Status send(FrameType Type, std::string_view Payload) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return writeFrame(Fd, Type, Payload);
  }

private:
  int Fd;
  std::mutex Mutex;
};

/// Emits Heartbeat frames every HeartbeatIntervalSeconds until stopped.
/// Write failures are ignored here: if the coordinator is gone the task
/// loop's own Result write will discover it.
class HeartbeatPulse {
public:
  explicit HeartbeatPulse(FrameSender &Sender) : Sender(Sender) {
    Thread = std::thread([this] { run(); });
  }

  ~HeartbeatPulse() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Stop = true;
    }
    Cond.notify_all();
    Thread.join();
  }

private:
  void run() {
    std::unique_lock<std::mutex> Lock(Mutex);
    for (;;) {
      if (Cond.wait_for(Lock,
                        std::chrono::duration<double>(
                            HeartbeatIntervalSeconds),
                        [this] { return Stop; }))
        return;
      Lock.unlock();
      (void)Sender.send(FrameType::Heartbeat, {});
      Lock.lock();
    }
  }

  FrameSender &Sender;
  std::thread Thread;
  std::mutex Mutex;
  std::condition_variable Cond;
  bool Stop = false;
};

} // namespace

int shard::runWorkerLoop(int InFd, int OutFd) {
  subprocess::ignoreSigpipe();
  FrameSender Sender(OutFd);

  // Session setup: exactly one Init frame, carrying everything needed to
  // become the coordinator's algorithmic twin.
  Expected<Frame> InitFrame = readFrame(InFd, /*TimeoutSeconds=*/-1.0);
  if (!InitFrame)
    return 1;
  if (InitFrame->Type != FrameType::Init) {
    (void)Sender.send(FrameType::Error,
                      std::string("expected init frame, got ") +
                          frameTypeName(InitFrame->Type));
    return 1;
  }
  std::string Source;
  InferOptions Opts;
  if (Status S = decodeInit(InitFrame->Payload, Source, Opts); !S) {
    (void)Sender.send(FrameType::Error, S.str());
    return 1;
  }
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = parseAndAnalyze(Source, Diags);
  if (!Prog) {
    (void)Sender.send(FrameType::Error,
                      "worker cannot parse program: " + Diags.str());
    return 1;
  }

  // Task service loop. The worker is stateless across tasks; each Task
  // frame carries its own snapshot, so a respawned worker picking up a
  // re-dispatched shard starts from identical inputs.
  for (;;) {
    Expected<Frame> F = readFrame(InFd, /*TimeoutSeconds=*/-1.0);
    if (!F)
      // EOF = coordinator gone (or shutting down without ceremony); a
      // malformed frame from the coordinator is equally unrecoverable.
      return F.status().code() == ErrorCode::WorkerLost ? 0 : 1;
    switch (F->Type) {
    case FrameType::Shutdown:
      return 0;
    case FrameType::Task: {
      std::vector<unsigned> DeclIndices;
      std::string Snapshot;
      if (Status S = decodeTask(F->Payload, DeclIndices, Snapshot); !S) {
        if (!Sender.send(FrameType::Error, S.str()))
          return 1;
        break;
      }
      Expected<std::vector<summaryio::ShardMethodOutcome>> Outcomes = [&] {
        HeartbeatPulse Pulse(Sender);
        return runShardMethods(*Prog, DeclIndices, Snapshot, Opts);
      }();
      Status Sent =
          Outcomes ? Sender.send(FrameType::Result,
                                 summaryio::encodeOutcomes(*Outcomes))
                   : Sender.send(FrameType::Error, Outcomes.status().str());
      if (!Sent)
        return 1;
      break;
    }
    default:
      // Heartbeats flow worker -> coordinator only; anything else here is
      // a protocol bug worth reporting but not dying over.
      if (!Sender.send(FrameType::Error,
                       std::string("unexpected frame type ") +
                           frameTypeName(F->Type)))
        return 1;
      break;
    }
  }
}
