//===- ShardSoak.h - Worker-chaos soak for the shard tier --------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker-chaos soak (DESIGN.md, "Sharded execution and failure
/// model"): repeated sharded inference runs over the built-in examples
/// under randomized — but seeded, hence reproducible — worker chaos
/// (crashes, hangs, corrupted result frames, in combination), checking
/// the tier's invariants:
///
///  - every run completes with exactly one terminal accounting per shard
///    (served, re-dispatched then served, or quarantined — never lost);
///  - the driver-visible output is byte-identical to an in-process `-j1`
///    baseline on *every* round, faulted or not;
///  - loss bookkeeping is coherent (re-dispatches and quarantines are
///    bounded by observed worker losses).
///
/// The harness owns the process-global fault registry while it runs
/// (activations are scoped per round and reset after); do not run it
/// concurrently with other fault-injection users.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SHARD_SHARDSOAK_H
#define ANEK_SHARD_SHARDSOAK_H

#include "infer/AnekInfer.h"

#include <cstdint>
#include <string>
#include <vector>

namespace anek {
namespace shard {

struct ShardSoakConfig {
  /// Sharded inference runs to drive (each over one built-in example).
  unsigned Rounds = 25;
  /// Worker processes per run (= max shards per wave).
  unsigned Workers = 4;
  /// Seeds the chaos assignment and the solver seeds.
  uint64_t Seed = 1;
  /// Fraction of rounds that get chaos, in [0, 1].
  double FaultRate = 0.6;
  /// Heartbeat deadline per run; kept small so hang rounds converge fast.
  double HeartbeatTimeoutSeconds = 2.0;
  /// Minimum total shard dispatches for the soak to count as a real
  /// exercise; fewer is a violation. 0 disables the check.
  unsigned MinDispatches = 0;
  /// Worker command line; empty means {<self-exe>, "--worker"} (the soak
  /// drivers handle --worker themselves; tests point this at `anek`).
  std::vector<std::string> WorkerArgv;
};

struct ShardSoakReport {
  unsigned Rounds = 0;
  /// Rounds that ran with at least one fault armed.
  unsigned FaultedRounds = 0;
  /// Coordinator + engine counters summed over all rounds.
  ShardStats Totals;
  /// Human-readable invariant violations; empty = soak passed.
  std::vector<std::string> Violations;

  bool passed() const { return Violations.empty(); }
};

/// Runs one worker-chaos soak. Never throws for a round-level failure
/// (that is a violation by definition); propagates only harness bugs.
ShardSoakReport runShardSoak(const ShardSoakConfig &Cfg);

} // namespace shard
} // namespace anek

#endif // ANEK_SHARD_SHARDSOAK_H
