//===- ShardSoak.h - Worker-chaos soak for the shard tier --------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker-chaos soak (DESIGN.md, "Sharded execution and failure
/// model"): repeated sharded inference runs over the built-in examples
/// under randomized — but seeded, hence reproducible — worker chaos
/// (crashes, hangs, corrupted result frames, in combination), checking
/// the tier's invariants. With Endpoints configured the same harness
/// soaks the socket transport against live `anek workerd` daemons, and
/// NetChaos draws from the network fault vocabulary instead — injected
/// connection refusals, mid-frame resets, read stalls, handshake version
/// skew — while the BetweenRounds hook lets the driver kill and respawn
/// real daemons under the soak. The invariants checked:
///
///  - every run completes with exactly one terminal accounting per shard
///    (served, re-dispatched then served, or quarantined — never lost);
///  - the driver-visible output is byte-identical to an in-process `-j1`
///    baseline on *every* round, faulted or not;
///  - loss bookkeeping is coherent (re-dispatches and quarantines are
///    bounded by observed worker losses).
///
/// The harness owns the process-global fault registry while it runs
/// (activations are scoped per round and reset after); do not run it
/// concurrently with other fault-injection users.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SHARD_SHARDSOAK_H
#define ANEK_SHARD_SHARDSOAK_H

#include "infer/AnekInfer.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace anek {
namespace shard {

struct ShardSoakConfig {
  /// Sharded inference runs to drive (each over one built-in example).
  unsigned Rounds = 25;
  /// Worker processes per run (= max shards per wave).
  unsigned Workers = 4;
  /// Seeds the chaos assignment and the solver seeds.
  uint64_t Seed = 1;
  /// Fraction of rounds that get chaos, in [0, 1].
  double FaultRate = 0.6;
  /// Heartbeat deadline per run; kept small so hang rounds converge fast.
  double HeartbeatTimeoutSeconds = 2.0;
  /// Minimum total shard dispatches for the soak to count as a real
  /// exercise; fewer is a violation. 0 disables the check.
  unsigned MinDispatches = 0;
  /// Worker command line; empty means {<self-exe>, "--worker"} (the soak
  /// drivers handle --worker themselves; tests point this at `anek`).
  /// Under Endpoints this is the fork/exec rung sockets degrade to.
  std::vector<std::string> WorkerArgv;
  /// Remote `anek workerd` endpoints; non-empty runs every round over
  /// socket transports (slot k prefers Endpoints[k % size], falling back
  /// to WorkerArgv and then in-process on failure).
  std::vector<std::string> Endpoints;
  /// Draw round chaos from the network fault vocabulary (net-refuse,
  /// net-reset-midframe, net-stall, net-handshake-skew, plus socket
  /// session kills) instead of the pipe-era kinds. Needs Endpoints.
  bool NetChaos = false;
  /// Called at the top of each round before chaos is armed; soak drivers
  /// use it to SIGKILL and respawn real daemon processes mid-soak.
  std::function<void(unsigned Round)> BetweenRounds;
};

struct ShardSoakReport {
  unsigned Rounds = 0;
  /// Rounds that ran with at least one fault armed.
  unsigned FaultedRounds = 0;
  /// Coordinator + engine counters summed over all rounds.
  ShardStats Totals;
  /// Human-readable invariant violations; empty = soak passed.
  std::vector<std::string> Violations;

  bool passed() const { return Violations.empty(); }
};

/// Runs one worker-chaos soak. Never throws for a round-level failure
/// (that is a violation by definition); propagates only harness bugs.
ShardSoakReport runShardSoak(const ShardSoakConfig &Cfg);

} // namespace shard
} // namespace anek

#endif // ANEK_SHARD_SHARDSOAK_H
