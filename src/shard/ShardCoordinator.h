//===- ShardCoordinator.h - Crash-tolerant shard dispatch --------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator side of the sharded execution tier (DESIGN.md,
/// "Sharded execution and failure model"). A ShardCoordinator implements
/// the engine's WaveShardExecutor contract by partitioning each wave into
/// contiguous shards and farming them to a pool of fork/exec'd worker
/// processes (`anek --worker`) over the anek-shard-v1 pipe protocol.
///
/// Failure is first-class, not exceptional:
///
///  - *crash*: the worker's pipe hits EOF (or the Task write gets EPIPE);
///    the child is reaped, the shard re-dispatched to a fresh worker.
///  - *hang*: no frame — heartbeat included — arrives within the
///    heartbeat deadline; the worker is SIGKILLed, reaped, re-dispatched.
///  - *corrupt*: a frame fails its magic/version/length/checksum
///    validation; the worker is recycled (its stream can no longer be
///    trusted) and the shard re-dispatched.
///
/// All three classify as ErrorCode::WorkerLost — transient by contract —
/// and re-dispatch backs off under the serving layer's RetryPolicy
/// jitter. A shard that keeps killing workers (QuarantineAfter
/// consecutive losses) is *quarantined*: degraded to in-process
/// sequential execution via runShardMethods, so the terminal state is
/// degraded(shard-quarantine) and never "lost". Because a re-dispatched
/// or quarantined shard re-runs against the same frozen snapshot, the
/// merged results are byte-identical to `-j1` no matter how many workers
/// died along the way.
///
/// The worker-crash / worker-hang / wire-corrupt fault kinds are
/// implemented here with real kernel effects (SIGKILL, SIGSTOP, a flipped
/// payload byte), so the failure paths above are exercised by actual
/// process death, not simulated flags.
///
/// The coordinator is also the telemetry aggregation point (DESIGN.md,
/// "Distributed telemetry"): Telemetry frames arriving ahead of each
/// Result are merged into the unified trace as per-worker-pid lanes
/// (flow-linked to the dispatch span) and into the metrics registry under
/// the `shard.worker.` prefix; spawns, losses and quarantines become
/// trace instants. All of it is best-effort and read-only with respect to
/// results — the merged outcome bytes are identical with collection on or
/// off.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SHARD_SHARDCOORDINATOR_H
#define ANEK_SHARD_SHARDCOORDINATOR_H

#include "infer/AnekInfer.h"
#include "serve/RetryPolicy.h"
#include "support/Subprocess.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace anek {
namespace shard {

struct CoordinatorOptions {
  /// Worker processes (= maximum shards per wave). The driver's
  /// `--shards N`.
  unsigned Workers = 2;
  /// A worker that produces no frame — heartbeats count — for this long
  /// while owing a result is declared hung and killed. Workers heartbeat
  /// every HeartbeatIntervalSeconds, so this is ~50 missed beats.
  double HeartbeatTimeoutSeconds = 10.0;
  /// Consecutive losses on one shard dispatch before it is quarantined to
  /// in-process execution.
  unsigned QuarantineAfter = 3;
  /// Worker command line; empty means {<self-exe>, "--worker"}. Tests
  /// point this at the real `anek` binary.
  std::vector<std::string> WorkerArgv;
  /// Extra arguments appended to WorkerArgv (whether defaulted or not):
  /// the driver forwards its own telemetry flags (`--trace-level`, and
  /// `--trace`/`--metrics` when their paths carry a `%p` pid slot) so
  /// workers collect what the coordinator collects.
  std::vector<std::string> WorkerExtraArgv;
  /// Backoff between re-dispatches of a lost shard (the same policy —
  /// and the same deterministic jitter — the serving layer retries with).
  serve::RetryPolicy Retry;
};

/// Farms wave batches out to worker processes. One coordinator serves one
/// inference run (it holds the Program for quarantine fallback); workers
/// persist across waves and are shut down by the destructor.
///
/// Thread-safety: executeWave is called from the engine's scheduler loop
/// (one wave at a time); the per-shard dispatch threads it spawns each
/// own their worker slot exclusively. stats() may race executeWave and is
/// mutex-guarded.
class ShardCoordinator : public WaveShardExecutor {
public:
  /// \p Source must be the exact text \p Prog was parsed from — workers
  /// re-parse it, and the decl-index identification of methods relies on
  /// both sides seeing the same program. \p Opts carries the algorithm
  /// knobs forwarded to workers; scheduling fields are ignored.
  ShardCoordinator(Program &Prog, std::string Source, InferOptions Opts,
                   CoordinatorOptions CoOpts = {});
  ~ShardCoordinator() override;

  Expected<std::vector<summaryio::ShardMethodOutcome>>
  executeWave(const std::vector<unsigned> &DeclIndices,
              const std::string &Snapshot) override;

  ShardStats stats() const override;

private:
  struct Slot {
    subprocess::ChildProcess Child;
    bool Ready = false; ///< Spawned and Init'd.
  };

  /// Spawns + Inits the slot's worker if it is not already serving.
  Status ensureWorker(Slot &S, unsigned SlotIndex);
  /// Kills (SIGKILL), reaps and forgets the slot's worker.
  void dropWorker(Slot &S);
  /// One shard, driven to its terminal state: dispatch / re-dispatch
  /// under the loss budget, then quarantine. Never loses the shard.
  Expected<std::vector<summaryio::ShardMethodOutcome>>
  runShard(unsigned SlotIndex, uint32_t Wave,
           const std::vector<unsigned> &Indices, const std::string &Snapshot);
  /// One dispatch attempt. \p WorkerReported is set when the failure is a
  /// worker Error frame (deterministic, not retryable). Telemetry frames
  /// arriving before the Result are merged into the local trace/metrics
  /// stores here; an undecodable one is dropped and counted, never
  /// escalated — losing a span must not cost a dispatch.
  Expected<std::vector<summaryio::ShardMethodOutcome>>
  dispatchOnce(Slot &S, uint32_t Wave, const std::vector<unsigned> &Indices,
               const std::string &Snapshot, bool &WorkerReported);

  Program &Prog;
  InferOptions Opts; ///< Leaf options: ShardExec cleared.
  CoordinatorOptions Co;
  std::string InitPayload; ///< encodeInit(Source, Opts), sent per spawn.
  std::vector<std::unique_ptr<Slot>> Slots;
  std::atomic<uint32_t> WaveOrdinal{0}; ///< Stamped into Task frames.

  mutable std::mutex StatsMutex;
  ShardStats Stats;
};

} // namespace shard
} // namespace anek

#endif // ANEK_SHARD_SHARDCOORDINATOR_H
