//===- ShardCoordinator.h - Crash-tolerant shard dispatch --------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator side of the sharded execution tier (DESIGN.md,
/// "Sharded execution and failure model"). A ShardCoordinator implements
/// the engine's WaveShardExecutor contract by partitioning each wave into
/// contiguous shards and farming them to a pool of worker sessions over
/// the anek-shard-v2 framed protocol — each session a Transport
/// (Transport.h): a remote `anek workerd` daemon over a socket when an
/// endpoint is configured, a local fork/exec'd `anek --worker` child
/// otherwise.
///
/// Failure is first-class, not exceptional:
///
///  - *crash*: the worker's stream hits EOF or reset (or the Task write
///    gets EPIPE/RST); the session is dropped, the shard re-dispatched.
///  - *hang*: no frame — heartbeat included — arrives within the
///    heartbeat deadline; the session is torn down and re-dispatched.
///  - *corrupt*: a frame fails its magic/version/length/checksum
///    validation; the session is recycled (its stream can no longer be
///    trusted) and the shard re-dispatched.
///  - *refusal / reset / handshake skew*: a socket session cannot even be
///    established; classified exactly like a loss.
///
/// All of these classify as ErrorCode::WorkerLost — transient by
/// contract — and re-dispatch backs off under the serving layer's
/// RetryPolicy jitter. Remote failures additionally charge the endpoint's
/// ledger (serve::EndpointLedger): after EndpointReconnectAttempts
/// consecutive failures the endpoint is quarantined for the run and the
/// slot falls down the *degradation ladder* — remote socket worker →
/// local fork/exec worker → in-process execution. The last rung is the
/// shard quarantine that always existed: QuarantineAfter consecutive
/// local losses degrade the shard to runShardMethods in-process, so the
/// terminal state is degraded(shard-quarantine) and never "lost". Because
/// a re-dispatched or quarantined shard re-runs against the same frozen
/// snapshot, the merged results are byte-identical to `-j1` no matter how
/// many workers — local or remote — died along the way.
///
/// The worker-crash / worker-hang / wire-corrupt fault kinds are
/// implemented here with real kernel effects through the transport seam
/// (SIGKILL or RST, SIGSTOP or a read blackhole, a flipped payload byte);
/// the net-refuse / net-reset-midframe / net-stall / net-handshake-skew
/// kinds live inside SocketTransport at the moment the real network
/// failure would occur.
///
/// The coordinator is also the telemetry aggregation point (DESIGN.md,
/// "Distributed telemetry"): Telemetry frames arriving ahead of each
/// Result are merged into the unified trace as per-worker-pid lanes
/// (flow-linked to the dispatch span) and into the metrics registry under
/// the `shard.worker.` prefix; spawns, connects, losses and quarantines
/// become trace instants. All of it is best-effort and read-only with
/// respect to results — the merged outcome bytes are identical with
/// collection on or off.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SHARD_SHARDCOORDINATOR_H
#define ANEK_SHARD_SHARDCOORDINATOR_H

#include "infer/AnekInfer.h"
#include "serve/RetryPolicy.h"
#include "shard/Transport.h"
#include "support/Subprocess.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace anek {
namespace shard {

struct CoordinatorOptions {
  /// Worker sessions (= maximum shards per wave). The driver's
  /// `--shards N`.
  unsigned Workers = 2;
  /// A worker that produces no frame — heartbeats count — for this long
  /// while owing a result is declared hung and dropped. Workers heartbeat
  /// every HeartbeatIntervalSeconds, so this is ~50 missed beats. The
  /// driver's `--heartbeat-timeout`.
  double HeartbeatTimeoutSeconds = 10.0;
  /// Consecutive local (fork/exec) losses on one shard dispatch before it
  /// is quarantined to in-process execution.
  unsigned QuarantineAfter = 3;
  /// Remote worker daemon endpoints ("host:port" or "unix:/path"); slot k
  /// prefers Endpoints[k % size]. Empty = local fork/exec workers only.
  /// The driver's `--workers ADDR[,ADDR...]`.
  std::vector<std::string> Endpoints;
  /// Socket connect (and handshake-reply) deadline per attempt.
  double ConnectTimeoutSeconds = 5.0;
  /// Consecutive failures charged to one endpoint — refused/reset
  /// connects, handshake rejections, mid-dispatch losses — before that
  /// endpoint is quarantined for the run and its slots fall back to local
  /// fork/exec workers.
  unsigned EndpointReconnectAttempts = 3;
  /// Per-connection frame cap, bounding decode pre-allocation (0 = the
  /// protocol default, MaxFramePayload). The driver's
  /// `--shard-max-frame-bytes`.
  uint64_t MaxFrameBytes = 0;
  /// Worker command line; empty means {<self-exe>, "--worker"}. Tests
  /// point this at the real `anek` binary.
  std::vector<std::string> WorkerArgv;
  /// Extra arguments appended to WorkerArgv (whether defaulted or not):
  /// the driver forwards its own telemetry flags (`--trace-level`, and
  /// `--trace`/`--metrics` when their paths carry a `%p` pid slot) so
  /// workers collect what the coordinator collects.
  std::vector<std::string> WorkerExtraArgv;
  /// Backoff between re-dispatches of a lost shard (the same policy —
  /// and the same deterministic jitter — the serving layer retries with).
  serve::RetryPolicy Retry;
};

/// Farms wave batches out to worker sessions. One coordinator serves one
/// inference run (it holds the Program for quarantine fallback); sessions
/// persist across waves and are shut down by the destructor.
///
/// Thread-safety: executeWave is called from the engine's scheduler loop
/// (one wave at a time); the per-shard dispatch threads it spawns each
/// own their worker slot exclusively. The endpoint ledger and the stats
/// are shared across those threads and mutex-guarded; stats() may race
/// executeWave.
class ShardCoordinator : public WaveShardExecutor {
public:
  /// \p Source must be the exact text \p Prog was parsed from — workers
  /// re-parse it, and the decl-index identification of methods relies on
  /// both sides seeing the same program. \p Opts carries the algorithm
  /// knobs forwarded to workers; scheduling fields are ignored.
  ShardCoordinator(Program &Prog, std::string Source, InferOptions Opts,
                   CoordinatorOptions CoOpts = {});
  ~ShardCoordinator() override;

  Expected<std::vector<summaryio::ShardMethodOutcome>>
  executeWave(const std::vector<unsigned> &DeclIndices,
              const std::string &Snapshot) override;

  ShardStats stats() const override;

private:
  struct Slot {
    std::unique_ptr<Transport> Conn;
    /// The remote endpoint this slot prefers; empty = local-only.
    std::string Endpoint;
  };

  /// Establishes the slot's session if it is not already serving,
  /// walking the ladder: remote endpoint (unless quarantined) first,
  /// local fork/exec second. \p RemoteAttempt reports which rung failed
  /// so the caller charges the right budget.
  Status ensureWorker(Slot &S, unsigned SlotIndex, bool &RemoteAttempt);
  /// Tears down the slot's session (kill/close + reap).
  void dropWorker(Slot &S);
  /// Charges one failure to \p Endpoint; on the quarantine transition,
  /// records stats and telemetry.
  void noteEndpointFailure(const std::string &Endpoint);
  /// One shard, driven to its terminal state: dispatch / re-dispatch
  /// under the loss budgets, then quarantine. Never loses the shard.
  Expected<std::vector<summaryio::ShardMethodOutcome>>
  runShard(unsigned SlotIndex, uint32_t Wave,
           const std::vector<unsigned> &Indices, const std::string &Snapshot);
  /// One dispatch attempt over an established session. \p WorkerReported
  /// is set when the failure is a worker Error frame (deterministic, not
  /// retryable). Telemetry frames arriving before the Result are merged
  /// into the local trace/metrics stores here; an undecodable one is
  /// dropped and counted, never escalated — losing a span must not cost
  /// a dispatch.
  Expected<std::vector<summaryio::ShardMethodOutcome>>
  dispatchOnce(Transport &T, uint32_t Wave,
               const std::vector<unsigned> &Indices,
               const std::string &Snapshot, bool &WorkerReported);

  Program &Prog;
  InferOptions Opts; ///< Leaf options: ShardExec cleared.
  CoordinatorOptions Co;
  std::string InitPayload; ///< encodeInit(Source, Opts), sent per session.
  std::vector<std::unique_ptr<Slot>> Slots;
  std::atomic<uint32_t> WaveOrdinal{0}; ///< Stamped into Task frames.
  serve::EndpointLedger Endpoints;      ///< Remote-endpoint credit.

  mutable std::mutex StatsMutex;
  ShardStats Stats;
  /// Successful connects per endpoint; the second and later are
  /// Reconnects. Guarded by StatsMutex.
  std::map<std::string, unsigned> EndpointConnects;
};

} // namespace shard
} // namespace anek

#endif // ANEK_SHARD_SHARDCOORDINATOR_H
