//===- ShardCoordinator.cpp - Crash-tolerant shard dispatch -----------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "shard/ShardCoordinator.h"

#include "shard/Wire.h"
#include "support/FaultInject.h"
#include "support/Format.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

using namespace anek;
using namespace anek::shard;

namespace {

void bumpCounter(const char *Name) {
  if (telemetry::enabled(telemetry::TraceLevel::Phase))
    telemetry::counter(Name).add(1);
}

/// Merges one worker's shipped telemetry into the coordinator-side
/// stores: events land in the worker's pid lane with the two process
/// clocks aligned (worker task-start mapped onto coordinator dispatch
/// time), metrics land under `shard.worker.`. When the dispatch opened a
/// flow, a synthesized flow-end at task start stitches the worker lane to
/// the coordinator's dispatch span — the worker itself never learns about
/// flow events.
void absorbWorkerTelemetry(const TelemetryBlob &Blob, int64_t DispatchUs) {
  if (!telemetry::enabled(telemetry::TraceLevel::Phase))
    return;
  std::vector<telemetry::EventRecord> Events = Blob.Events;
  if (Blob.ParentFlowId != 0) {
    telemetry::EventRecord Flow;
    Flow.Name = "shard.flow";
    Flow.Category = "shard";
    Flow.Phase = 'f';
    Flow.TsUs = Blob.TaskStartUs;
    Flow.Tid = 0;
    Flow.FlowId = Blob.ParentFlowId;
    Events.push_back(std::move(Flow));
  }
  telemetry::addRemoteEvents(Blob.Pid,
                             formatStr("anek-worker pid %u", Blob.Pid),
                             Events, DispatchUs - Blob.TaskStartUs);
  telemetry::absorbMetrics(Blob.Metrics, "shard.worker.");
}

bool isSocket(const Transport &T) {
  return std::strcmp(T.kind(), "socket") == 0;
}

} // namespace

ShardCoordinator::ShardCoordinator(Program &Prog, std::string Source,
                                   InferOptions Opts,
                                   CoordinatorOptions CoOpts)
    : Prog(Prog), Opts(std::move(Opts)), Co(std::move(CoOpts)),
      Endpoints(Co.EndpointReconnectAttempts) {
  // The coordinator writes to pipes/sockets whose peer may be freshly
  // dead; EPIPE must arrive as a Status, not SIGPIPE.
  subprocess::ignoreSigpipe();
  // Quarantine fallback and workers both run leaf analyses; neither may
  // recurse into sharding.
  this->Opts.ShardExec = nullptr;
  if (Co.Workers == 0)
    Co.Workers = 1;
  if (Co.WorkerArgv.empty())
    Co.WorkerArgv = {subprocess::selfExePath("anek"), "--worker"};
  Co.WorkerArgv.insert(Co.WorkerArgv.end(), Co.WorkerExtraArgv.begin(),
                       Co.WorkerExtraArgv.end());
  // Workers collect at (at least) the coordinator's level and ship per
  // task; level 0 keeps the protocol telemetry-free.
  InitPayload = encodeInit(Source, this->Opts,
                           static_cast<uint8_t>(telemetry::traceLevel()));
  Slots.reserve(Co.Workers);
  for (unsigned I = 0; I != Co.Workers; ++I) {
    auto S = std::make_unique<Slot>();
    if (!Co.Endpoints.empty())
      S->Endpoint = Co.Endpoints[I % Co.Endpoints.size()];
    Slots.push_back(std::move(S));
  }
}

ShardCoordinator::~ShardCoordinator() {
  // Best-effort graceful shutdown: a pipe worker exits, a daemon session
  // ends (the daemon itself returns to accept). The transport destructors
  // kill/close whatever ignores it (a SIGSTOPped straggler included).
  for (std::unique_ptr<Slot> &S : Slots)
    if (S->Conn && S->Conn->healthy())
      (void)S->Conn->send(FrameType::Shutdown, {});
}

ShardStats ShardCoordinator::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  return Stats;
}

void ShardCoordinator::noteEndpointFailure(const std::string &Endpoint) {
  if (!Endpoints.recordFailure(Endpoint))
    return;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.EndpointsQuarantined;
  }
  bumpCounter("shard.endpoints_quarantined");
  telemetry::instant("shard.endpoint_quarantine",
                     telemetry::TraceLevel::Phase, "shard",
                     "\"endpoint\": " + telemetry::jsonQuote(Endpoint));
}

Status ShardCoordinator::ensureWorker(Slot &S, unsigned SlotIndex,
                                      bool &RemoteAttempt) {
  RemoteAttempt = false;
  if (S.Conn && S.Conn->healthy())
    return Status::ok(); // Alive and Init'd from a previous dispatch.
  dropWorker(S);

  // Ladder rung 1: the slot's remote endpoint, while it has credit.
  if (!S.Endpoint.empty() && !Endpoints.quarantined(S.Endpoint)) {
    RemoteAttempt = true;
    auto T = std::make_unique<SocketTransport>(
        S.Endpoint, InitPayload, Co.ConnectTimeoutSeconds, Co.MaxFrameBytes,
        Opts.FaultScope);
    if (Status Up = T->open(); !Up) {
      noteEndpointFailure(S.Endpoint);
      return Up;
    }
    Endpoints.recordSuccess(S.Endpoint);
    bool Reconnect;
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      Reconnect = EndpointConnects[S.Endpoint]++ > 0;
      if (Reconnect)
        ++Stats.Reconnects;
    }
    bumpCounter(Reconnect ? "shard.reconnects" : "shard.remote_connects");
    if (telemetry::enabled(telemetry::TraceLevel::Phase))
      telemetry::instant("shard.remote_connect", telemetry::TraceLevel::Phase,
                         "shard",
                         formatStr("\"slot\": %u, \"reconnect\": %s, "
                                   "\"endpoint\": ",
                                   SlotIndex, Reconnect ? "true" : "false") +
                             telemetry::jsonQuote(S.Endpoint));
    S.Conn = std::move(T);
    return Status::ok();
  }

  // Ladder rung 2: a local fork/exec worker.
  RemoteAttempt = false;
  auto P = std::make_unique<PipeTransport>(Co.WorkerArgv, InitPayload,
                                           Co.MaxFrameBytes);
  if (Status Up = P->open(); !Up)
    return Up;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.WorkersSpawned;
  }
  bumpCounter("shard.workers_spawned");
  if (telemetry::enabled(telemetry::TraceLevel::Phase))
    telemetry::instant("shard.worker_spawn", telemetry::TraceLevel::Phase,
                       "shard",
                       formatStr("\"slot\": %u, \"pid\": %d", SlotIndex,
                                 static_cast<int>(P->pid())));
  S.Conn = std::move(P);
  return Status::ok();
}

void ShardCoordinator::dropWorker(Slot &S) { S.Conn.reset(); }

Expected<std::vector<summaryio::ShardMethodOutcome>>
ShardCoordinator::dispatchOnce(Transport &T, uint32_t Wave,
                               const std::vector<unsigned> &Indices,
                               const std::string &Snapshot,
                               bool &WorkerReported) {
  TaskMeta Meta;
  Meta.Wave = Wave;
  if (telemetry::enabled(telemetry::TraceLevel::Method)) {
    // Open a flow at dispatch; the matching end is synthesized into the
    // worker's lane when its telemetry arrives, drawing the arrow from
    // this dispatch span to the remote task span in the trace viewer.
    Meta.ParentFlowId = telemetry::newFlowId();
    telemetry::flowBegin("shard.flow", telemetry::TraceLevel::Method,
                         "shard", Meta.ParentFlowId);
  }
  Meta.DispatchUs = telemetry::nowUs();
  if (Status W = T.send(FrameType::Task, encodeTask(Indices, Snapshot, Meta));
      !W)
    return W;
  for (;;) {
    // Any frame — heartbeats included — proves liveness and re-arms the
    // deadline; a worker silent for the whole window is declared hung.
    Expected<Frame> F = T.recv(Co.HeartbeatTimeoutSeconds);
    if (!F)
      return F.status();
    switch (F->Type) {
    case FrameType::Heartbeat:
      continue;
    case FrameType::Telemetry: {
      TelemetryBlob Blob;
      if (Status S = decodeTelemetry(F->Payload, Blob); !S) {
        // Dropped, counted, never fatal: the dispatch is decided by the
        // Result frame alone.
        bumpCounter("shard.telemetry_dropped");
        telemetry::instant("shard.telemetry_dropped",
                           telemetry::TraceLevel::Phase, "shard",
                           "\"reason\": " + telemetry::jsonQuote(S.message()));
        continue;
      }
      bumpCounter("shard.telemetry_frames");
      absorbWorkerTelemetry(Blob, Meta.DispatchUs);
      continue;
    }
    case FrameType::Result: {
      std::string Payload = std::move(F->Payload);
      // The wire-corrupt control point: flip one byte of the received
      // result exactly as a torn stream would. The outcome blob's own
      // checksum rejects it, which classifies as a lost worker.
      if (faults::anyActive() &&
          faults::consumeFire(FaultKind::WireCorrupt, Opts.FaultScope) &&
          !Payload.empty())
        Payload[Payload.size() / 2] ^= 0x20;
      Expected<std::vector<summaryio::ShardMethodOutcome>> Out =
          summaryio::decodeOutcomes(Payload);
      if (!Out)
        return Status::error(ErrorCode::WorkerLost,
                             "unreadable result frame: " +
                                 Out.status().str());
      return Out;
    }
    case FrameType::Error:
      // The worker is healthy and *reporting* a deterministic failure
      // (bad index, snapshot mismatch). Retrying cannot help; the engine
      // degrades the wave to in-process execution instead.
      WorkerReported = true;
      return Status::error(ErrorCode::Internal,
                           "worker reported: " + F->Payload);
    default:
      return Status::error(ErrorCode::WorkerLost,
                           std::string("unexpected frame type ") +
                               frameTypeName(F->Type));
    }
  }
}

Expected<std::vector<summaryio::ShardMethodOutcome>>
ShardCoordinator::runShard(unsigned SlotIndex, uint32_t Wave,
                           const std::vector<unsigned> &Indices,
                           const std::string &Snapshot) {
  Slot &S = *Slots[SlotIndex];
  const std::string RetryLabel =
      Opts.FaultScope + "/shard" + std::to_string(SlotIndex);
  // Two loss budgets implement the ladder's bottom: remote losses charge
  // the endpoint ledger (shared across slots; quarantine drops the slot
  // to the pipe rung), local losses count here toward the shard's
  // in-process quarantine. Attempts pace the shared backoff.
  unsigned LocalLosses = 0;
  unsigned Attempt = 0;
  for (;;) {
    if (LocalLosses >= Co.QuarantineAfter) {
      // Quarantine: this shard keeps killing workers, so it degrades to
      // in-process sequential execution. Same snapshot, same options,
      // same bytes — the shard is slower, never lost.
      {
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Stats.ShardsQuarantined;
      }
      bumpCounter("shard.quarantined");
      telemetry::instant("shard.quarantine", telemetry::TraceLevel::Phase,
                         "shard",
                         formatStr("\"slot\": %u, \"wave\": %u, "
                                   "\"losses\": %u",
                                   SlotIndex, Wave, LocalLosses));
      telemetry::Span Q("shard.quarantine", telemetry::TraceLevel::Phase,
                        "shard");
      if (Q.active())
        Q.arg("slot", SlotIndex);
      return runShardMethods(Prog, Indices, Snapshot, Opts);
    }
    if (Attempt > 0) {
      double Delay = Co.Retry.delaySeconds(RetryLabel, Attempt + 1);
      if (Delay > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(Delay));
    }
    bool RemoteAttempt = false;
    if (Status Up = ensureWorker(S, SlotIndex, RemoteAttempt); !Up) {
      // Session-establishment failure: a refused/reset/skewed connect
      // already charged its endpoint inside ensureWorker; a failed local
      // spawn counts against the same budget as a local loss — a slot
      // that cannot even start a worker must still reach quarantine.
      ++Attempt;
      if (!RemoteAttempt)
        ++LocalLosses;
      {
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Stats.WorkersLost;
      }
      bumpCounter("shard.workers_lost");
      continue;
    }
    const bool Remote = isSocket(*S.Conn);
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Stats.ShardsDispatched;
      if (Remote)
        ++Stats.RemoteDispatches;
      if (Attempt > 0)
        ++Stats.Redispatches;
    }
    bumpCounter(Attempt > 0 ? "shard.redispatches" : "shard.dispatches");

    // Chaos control points, applied with real kernel effects the instant
    // the shard is dispatched: a killed worker crashes under the task
    // (EOF/RST on its stream), a stopped one hangs (heartbeat silence).
    if (faults::anyActive()) {
      if (faults::consumeFire(FaultKind::WorkerCrash, Opts.FaultScope))
        S.Conn->injectCrash();
      else if (faults::consumeFire(FaultKind::WorkerHang, Opts.FaultScope))
        S.Conn->injectHang();
    }

    bool WorkerReported = false;
    Expected<std::vector<summaryio::ShardMethodOutcome>> Out = [&] {
      telemetry::Span D("shard.dispatch", telemetry::TraceLevel::Method,
                        "shard");
      if (D.active()) {
        D.arg("slot", SlotIndex);
        D.arg("wave", Wave);
        D.arg("methods", static_cast<uint64_t>(Indices.size()));
      }
      return dispatchOnce(*S.Conn, Wave, Indices, Snapshot, WorkerReported);
    }();
    if (Out)
      return Out;
    if (WorkerReported)
      return Out.status();
    // Crash, hang or corruption: recycle the session and re-dispatch. The
    // failure becomes a trace instant (hang vs. lost distinguished by the
    // deadline error code); the retry itself is silent by design.
    telemetry::instant(
        "shard.worker_lost", telemetry::TraceLevel::Phase, "shard",
        formatStr("\"slot\": %u, \"wave\": %u, \"transport\": \"%s\", "
                  "\"kind\": \"%s\", \"message\": ",
                  SlotIndex, Wave, S.Conn->kind(),
                  Out.status().code() == ErrorCode::DeadlineExceeded
                      ? "hang"
                      : "lost") +
            telemetry::jsonQuote(Out.status().message()));
    if (Remote)
      noteEndpointFailure(S.Endpoint);
    else
      ++LocalLosses;
    dropWorker(S);
    ++Attempt;
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Stats.WorkersLost;
    }
    bumpCounter("shard.workers_lost");
  }
}

Expected<std::vector<summaryio::ShardMethodOutcome>>
ShardCoordinator::executeWave(const std::vector<unsigned> &DeclIndices,
                              const std::string &Snapshot) {
  std::vector<summaryio::ShardMethodOutcome> Merged;
  if (DeclIndices.empty())
    return Merged;
  const uint32_t Wave =
      WaveOrdinal.fetch_add(1, std::memory_order_relaxed);

  // Contiguous, balanced shards; shard k runs on worker slot k. The
  // partition is a pure function of the wave, so re-running a wave (with
  // or without worker deaths in between) shards identically.
  size_t NumShards =
      std::min<size_t>(Co.Workers, DeclIndices.size());
  std::vector<std::vector<unsigned>> Shards(NumShards);
  size_t Base = DeclIndices.size() / NumShards;
  size_t Extra = DeclIndices.size() % NumShards;
  size_t At = 0;
  for (size_t K = 0; K != NumShards; ++K) {
    size_t Take = Base + (K < Extra ? 1 : 0);
    Shards[K].assign(DeclIndices.begin() + At,
                     DeclIndices.begin() + At + Take);
    At += Take;
  }

  std::vector<std::vector<summaryio::ShardMethodOutcome>> Results(NumShards);
  std::vector<Status> Errors(NumShards, Status::ok());
  auto RunOne = [&](size_t K) {
    Expected<std::vector<summaryio::ShardMethodOutcome>> Out =
        runShard(static_cast<unsigned>(K), Wave, Shards[K], Snapshot);
    if (Out)
      Results[K] = Out.take();
    else
      Errors[K] = Out.status();
  };
  if (NumShards == 1) {
    RunOne(0);
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(NumShards);
    for (size_t K = 0; K != NumShards; ++K)
      Threads.emplace_back(RunOne, K);
    for (std::thread &T : Threads)
      T.join();
  }

  for (size_t K = 0; K != NumShards; ++K)
    if (!Errors[K])
      return Status::error(Errors[K].code(),
                           formatStr("shard %zu/%zu failed: %s", K + 1,
                                     NumShards,
                                     Errors[K].message().c_str()));
  for (std::vector<summaryio::ShardMethodOutcome> &R : Results) {
    Merged.insert(Merged.end(), std::make_move_iterator(R.begin()),
                  std::make_move_iterator(R.end()));
  }
  return Merged;
}
