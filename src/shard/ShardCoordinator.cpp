//===- ShardCoordinator.cpp - Crash-tolerant shard dispatch -----------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "shard/ShardCoordinator.h"

#include "shard/Wire.h"
#include "support/FaultInject.h"
#include "support/Format.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <thread>

using namespace anek;
using namespace anek::shard;

namespace {

void bumpCounter(const char *Name) {
  if (telemetry::enabled(telemetry::TraceLevel::Phase))
    telemetry::counter(Name).add(1);
}

} // namespace

ShardCoordinator::ShardCoordinator(Program &Prog, std::string Source,
                                   InferOptions Opts,
                                   CoordinatorOptions CoOpts)
    : Prog(Prog), Opts(std::move(Opts)), Co(std::move(CoOpts)) {
  // The coordinator writes to pipes whose peer may be freshly dead; EPIPE
  // must arrive as a Status, not SIGPIPE.
  subprocess::ignoreSigpipe();
  // Quarantine fallback and workers both run leaf analyses; neither may
  // recurse into sharding.
  this->Opts.ShardExec = nullptr;
  if (Co.Workers == 0)
    Co.Workers = 1;
  if (Co.WorkerArgv.empty())
    Co.WorkerArgv = {subprocess::selfExePath("anek"), "--worker"};
  InitPayload = encodeInit(Source, this->Opts);
  Slots.reserve(Co.Workers);
  for (unsigned I = 0; I != Co.Workers; ++I)
    Slots.push_back(std::make_unique<Slot>());
}

ShardCoordinator::~ShardCoordinator() {
  // Best-effort graceful shutdown; the ChildProcess destructors SIGKILL
  // and reap whatever ignores it (a SIGSTOPped straggler included).
  for (std::unique_ptr<Slot> &S : Slots)
    if (S->Ready && S->Child.running())
      (void)writeFrame(S->Child.writeFd(), FrameType::Shutdown, {});
}

ShardStats ShardCoordinator::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  return Stats;
}

Status ShardCoordinator::ensureWorker(Slot &S) {
  if (S.Ready && S.Child.running() && !S.Child.poll())
    return Status::ok(); // Alive and Init'd from a previous dispatch.
  dropWorker(S);
  if (Status Sp = S.Child.spawn(Co.WorkerArgv); !Sp)
    return Sp;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.WorkersSpawned;
  }
  bumpCounter("shard.workers_spawned");
  if (Status Init =
          writeFrame(S.Child.writeFd(), FrameType::Init, InitPayload);
      !Init) {
    dropWorker(S);
    return Init;
  }
  S.Ready = true;
  return Status::ok();
}

void ShardCoordinator::dropWorker(Slot &S) {
  // Move-assigning a fresh ChildProcess SIGKILLs, reaps and closes pipes;
  // SIGKILL terminates even a SIGSTOPped worker, so a hung child cannot
  // wedge the reap.
  S.Child = subprocess::ChildProcess();
  S.Ready = false;
}

Expected<std::vector<summaryio::ShardMethodOutcome>>
ShardCoordinator::dispatchOnce(Slot &S,
                               const std::vector<unsigned> &Indices,
                               const std::string &Snapshot,
                               bool &WorkerReported) {
  if (Status W = writeFrame(S.Child.writeFd(), FrameType::Task,
                            encodeTask(Indices, Snapshot));
      !W)
    return W;
  for (;;) {
    // Any frame — heartbeats included — proves liveness and re-arms the
    // deadline; a worker silent for the whole window is declared hung.
    Expected<Frame> F =
        readFrame(S.Child.readFd(), Co.HeartbeatTimeoutSeconds);
    if (!F)
      return F.status();
    switch (F->Type) {
    case FrameType::Heartbeat:
      continue;
    case FrameType::Result: {
      std::string Payload = std::move(F->Payload);
      // The wire-corrupt control point: flip one byte of the received
      // result exactly as a torn pipe would. The outcome blob's own
      // checksum rejects it, which classifies as a lost worker.
      if (faults::anyActive() &&
          faults::consumeFire(FaultKind::WireCorrupt, Opts.FaultScope) &&
          !Payload.empty())
        Payload[Payload.size() / 2] ^= 0x20;
      Expected<std::vector<summaryio::ShardMethodOutcome>> Out =
          summaryio::decodeOutcomes(Payload);
      if (!Out)
        return Status::error(ErrorCode::WorkerLost,
                             "unreadable result frame: " +
                                 Out.status().str());
      return Out;
    }
    case FrameType::Error:
      // The worker is healthy and *reporting* a deterministic failure
      // (bad index, snapshot mismatch). Retrying cannot help; the engine
      // degrades the wave to in-process execution instead.
      WorkerReported = true;
      return Status::error(ErrorCode::Internal,
                           "worker reported: " + F->Payload);
    default:
      return Status::error(ErrorCode::WorkerLost,
                           std::string("unexpected frame type ") +
                               frameTypeName(F->Type));
    }
  }
}

Expected<std::vector<summaryio::ShardMethodOutcome>>
ShardCoordinator::runShard(unsigned SlotIndex,
                           const std::vector<unsigned> &Indices,
                           const std::string &Snapshot) {
  Slot &S = *Slots[SlotIndex];
  const std::string RetryLabel =
      Opts.FaultScope + "/shard" + std::to_string(SlotIndex);
  unsigned Losses = 0;
  for (;;) {
    if (Losses >= Co.QuarantineAfter) {
      // Quarantine: this shard keeps killing workers, so it degrades to
      // in-process sequential execution. Same snapshot, same options,
      // same bytes — the shard is slower, never lost.
      {
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Stats.ShardsQuarantined;
      }
      bumpCounter("shard.quarantined");
      telemetry::Span Q("shard.quarantine", telemetry::TraceLevel::Phase,
                        "shard");
      return runShardMethods(Prog, Indices, Snapshot, Opts);
    }
    if (Losses > 0) {
      double Delay = Co.Retry.delaySeconds(RetryLabel, Losses + 1);
      if (Delay > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(Delay));
    }
    if (Status Up = ensureWorker(S); !Up) {
      // Spawn/Init failure counts against the same loss budget: a slot
      // that cannot even start a worker must still reach quarantine.
      ++Losses;
      {
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Stats.WorkersLost;
      }
      bumpCounter("shard.workers_lost");
      continue;
    }
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Stats.ShardsDispatched;
      if (Losses > 0)
        ++Stats.Redispatches;
    }
    bumpCounter(Losses > 0 ? "shard.redispatches" : "shard.dispatches");

    // Chaos control points, applied with real kernel effects the instant
    // the shard is dispatched: a SIGKILLed worker crashes under the task
    // (EOF on its pipe), a SIGSTOPped one hangs (heartbeat silence).
    if (faults::anyActive()) {
      if (faults::consumeFire(FaultKind::WorkerCrash, Opts.FaultScope))
        S.Child.kill(SIGKILL);
      else if (faults::consumeFire(FaultKind::WorkerHang, Opts.FaultScope))
        S.Child.kill(SIGSTOP);
    }

    bool WorkerReported = false;
    telemetry::Span D("shard.dispatch", telemetry::TraceLevel::Method,
                      "shard");
    Expected<std::vector<summaryio::ShardMethodOutcome>> Out =
        dispatchOnce(S, Indices, Snapshot, WorkerReported);
    if (Out)
      return Out;
    if (WorkerReported)
      return Out.status();
    // Crash, hang or corruption: recycle the worker and re-dispatch. The
    // exit status (when there is one) goes into the breadcrumb trail via
    // telemetry; the retry itself is silent by design.
    dropWorker(S);
    ++Losses;
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Stats.WorkersLost;
    }
    bumpCounter("shard.workers_lost");
  }
}

Expected<std::vector<summaryio::ShardMethodOutcome>>
ShardCoordinator::executeWave(const std::vector<unsigned> &DeclIndices,
                              const std::string &Snapshot) {
  std::vector<summaryio::ShardMethodOutcome> Merged;
  if (DeclIndices.empty())
    return Merged;

  // Contiguous, balanced shards; shard k runs on worker slot k. The
  // partition is a pure function of the wave, so re-running a wave (with
  // or without worker deaths in between) shards identically.
  size_t NumShards =
      std::min<size_t>(Co.Workers, DeclIndices.size());
  std::vector<std::vector<unsigned>> Shards(NumShards);
  size_t Base = DeclIndices.size() / NumShards;
  size_t Extra = DeclIndices.size() % NumShards;
  size_t At = 0;
  for (size_t K = 0; K != NumShards; ++K) {
    size_t Take = Base + (K < Extra ? 1 : 0);
    Shards[K].assign(DeclIndices.begin() + At,
                     DeclIndices.begin() + At + Take);
    At += Take;
  }

  std::vector<std::vector<summaryio::ShardMethodOutcome>> Results(NumShards);
  std::vector<Status> Errors(NumShards, Status::ok());
  auto RunOne = [&](size_t K) {
    Expected<std::vector<summaryio::ShardMethodOutcome>> Out =
        runShard(static_cast<unsigned>(K), Shards[K], Snapshot);
    if (Out)
      Results[K] = Out.take();
    else
      Errors[K] = Out.status();
  };
  if (NumShards == 1) {
    RunOne(0);
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(NumShards);
    for (size_t K = 0; K != NumShards; ++K)
      Threads.emplace_back(RunOne, K);
    for (std::thread &T : Threads)
      T.join();
  }

  for (size_t K = 0; K != NumShards; ++K)
    if (!Errors[K])
      return Status::error(Errors[K].code(),
                           formatStr("shard %zu/%zu failed: %s", K + 1,
                                     NumShards,
                                     Errors[K].message().c_str()));
  for (std::vector<summaryio::ShardMethodOutcome> &R : Results) {
    Merged.insert(Merged.end(), std::make_move_iterator(R.begin()),
                  std::make_move_iterator(R.end()));
  }
  return Merged;
}
