//===- WorkerDaemon.cpp - The persistent `anek workerd` daemon --------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "shard/WorkerDaemon.h"

#include "infer/AnekInfer.h"
#include "lang/Sema.h"
#include "shard/ShardWorker.h"
#include "shard/Wire.h"
#include "support/Diagnostics.h"
#include "support/Subprocess.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

using namespace anek;
using namespace anek::shard;

/// One decoded, parsed program kept resident across sessions. Immutable
/// once built; sessions share it read-only (analysis state is
/// per-engine).
struct WorkerDaemon::Resident {
  std::unique_ptr<Program> Prog;
  InferOptions Opts;
  uint8_t CollectLevel = 0;
};

struct WorkerDaemon::Session {
  int Fd = -1;
  std::thread Thread;
  std::atomic<bool> Done{false};
};

WorkerDaemon::WorkerDaemon(WorkerDaemonOptions Opts)
    : Opts(std::move(Opts)) {}

WorkerDaemon::~WorkerDaemon() { stop(); }

Status WorkerDaemon::start() {
  // Sessions write to coordinators that may vanish mid-frame; EPIPE must
  // arrive as a Status, not SIGPIPE.
  subprocess::ignoreSigpipe();
  if (Status S = Listener.listen(Opts.ListenAddress); !S)
    return S;
  Started = true;
  Acceptor = std::thread([this] { acceptLoop(); });
  return Status::ok();
}

std::string WorkerDaemon::boundAddress() const {
  return Listener.boundAddress();
}

void WorkerDaemon::stop() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Stopping)
      return;
    Stopping = true;
    // Wake every session parked in a frame read; their loops exit on the
    // resulting EOF/error.
    for (std::unique_ptr<Session> &S : Sessions)
      if (S->Fd >= 0)
        ::shutdown(S->Fd, SHUT_RDWR);
  }
  Listener.close(); // Unblocks the acceptor.
  if (Acceptor.joinable())
    Acceptor.join();
  std::vector<std::unique_ptr<Session>> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ToJoin.swap(Sessions);
  }
  for (std::unique_ptr<Session> &S : ToJoin) {
    if (S->Thread.joinable())
      S->Thread.join();
    if (S->Fd >= 0)
      ::close(S->Fd);
  }
}

WorkerDaemonStats WorkerDaemon::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}

std::shared_ptr<WorkerDaemon::Resident>
WorkerDaemon::lookupResident(uint64_t Digest) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[D, Entry] : Residents)
    if (D == Digest)
      return Entry;
  return nullptr;
}

void WorkerDaemon::storeResident(uint64_t Digest,
                                 std::shared_ptr<Resident> Entry) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[D, E] : Residents)
    if (D == Digest) {
      E = std::move(Entry); // A concurrent miss raced us; either wins.
      return;
    }
  if (Residents.size() >= Opts.MaxResidentPrograms && !Residents.empty())
    Residents.erase(Residents.begin()); // FIFO: evict the oldest.
  Residents.emplace_back(Digest, std::move(Entry));
}

void WorkerDaemon::acceptLoop() {
  for (;;) {
    Expected<int> Conn = Listener.accept(/*TimeoutSeconds=*/-1.0);
    if (!Conn) {
      // The listener was closed under us (stop()) or gave a transient
      // accept failure; only the former ends the loop.
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Stopping || !Listener.listening())
        return;
      continue;
    }
    auto S = std::make_unique<Session>();
    S->Fd = *Conn;
    Session *Raw = S.get();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Stopping) {
        ::close(*Conn);
        return;
      }
      ++Stats.SessionsAccepted;
      // Reap sessions that already finished so a long-lived daemon's
      // thread list stays proportional to live connections.
      for (auto It = Sessions.begin(); It != Sessions.end();) {
        if ((*It)->Done.load(std::memory_order_acquire)) {
          if ((*It)->Thread.joinable())
            (*It)->Thread.join();
          if ((*It)->Fd >= 0)
            ::close((*It)->Fd);
          It = Sessions.erase(It);
        } else {
          ++It;
        }
      }
      Sessions.push_back(std::move(S));
    }
    Raw->Thread = std::thread([this, Raw] {
      runSession(*Raw);
      Raw->Done.store(true, std::memory_order_release);
    });
  }
}

void WorkerDaemon::runSession(Session &S) {
  FrameSender Sender(S.Fd);
  auto Reject = [&](const std::string &Why) {
    if (!Why.empty())
      (void)Sender.send(FrameType::Error, Why);
    ::shutdown(S.Fd, SHUT_RDWR);
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.SessionsRejected;
  };

  // Handshake. A frame with the wrong protocol version fails the decoder
  // right here; dropping the connection without ceremony is the correct
  // answer to a peer whose bytes we cannot even frame.
  Expected<Frame> First =
      readFrame(S.Fd, Opts.IdleTimeoutSeconds, Opts.MaxFrameBytes);
  if (!First)
    return Reject(First.status().code() == ErrorCode::InvalidArgument
                      ? First.status().str()
                      : std::string());

  std::shared_ptr<Resident> Entry;
  if (First->Type == FrameType::InitDigest) {
    uint64_t Digest = 0;
    if (Status D = decodeInitDigest(First->Payload, Digest); !D)
      return Reject(D.str());
    Entry = lookupResident(Digest);
    if (Entry) {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Stats.DigestHits;
    } else {
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        ++Stats.DigestMisses;
      }
      if (!Sender.send(FrameType::InitNeeded, {}))
        return Reject(std::string());
      First = readFrame(S.Fd, Opts.IdleTimeoutSeconds, Opts.MaxFrameBytes);
      if (!First)
        return Reject(std::string());
      if (First->Type != FrameType::Init)
        return Reject(std::string("expected init frame, got ") +
                      frameTypeName(First->Type));
    }
  } else if (First->Type != FrameType::Init) {
    return Reject(std::string("expected init-digest or init frame, got ") +
                  frameTypeName(First->Type));
  }

  if (!Entry) {
    // Full Init path: decode, parse, and make the program resident under
    // the digest of the exact bytes received — the coordinator computed
    // its digest over the same bytes, so hit means identical.
    auto Fresh = std::make_shared<Resident>();
    std::string Source;
    if (Status D = decodeInit(First->Payload, Source, Fresh->Opts,
                              &Fresh->CollectLevel);
        !D)
      return Reject(D.str());
    DiagnosticEngine Diags;
    Fresh->Prog = parseAndAnalyze(Source, Diags);
    if (!Fresh->Prog)
      return Reject("workerd cannot parse program: " + Diags.str());
    // Daemon sessions are leaves exactly like pipe workers.
    Fresh->Opts.ShardExec = nullptr;
    Fresh->Opts.Cache = nullptr;
    storeResident(initDigest(First->Payload), Fresh);
    Entry = std::move(Fresh);
  }

  if (!Sender.send(FrameType::InitAck, {}))
    return Reject(std::string());

  SessionLimits Limits;
  Limits.IdleTimeoutSeconds = Opts.IdleTimeoutSeconds;
  Limits.MaxFrameBytes = Opts.MaxFrameBytes;
  SessionResult R = serveSession(S.Fd, Sender, *Entry->Prog, Entry->Opts,
                                 Entry->CollectLevel, Limits);
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats.TasksServed += R.TasksServed;
}

// --- runWorkerDaemon -----------------------------------------------------

namespace {

std::atomic<bool> StopRequested{false};

void onStopSignal(int) { StopRequested.store(true, std::memory_order_relaxed); }

} // namespace

int shard::runWorkerDaemon(const WorkerDaemonOptions &Opts) {
  WorkerDaemon Daemon(Opts);
  if (Status S = Daemon.start(); !S) {
    std::fprintf(stderr, "anek workerd: %s\n", S.str().c_str());
    return 1;
  }
  // Scrapable readiness line: harnesses wait for it (or just retry
  // connects) before pointing coordinators here.
  std::fprintf(stderr, "anek workerd: listening on %s\n",
               Daemon.boundAddress().c_str());
  StopRequested.store(false, std::memory_order_relaxed);
  struct sigaction Sa;
  std::memset(&Sa, 0, sizeof(Sa));
  Sa.sa_handler = onStopSignal;
  ::sigaction(SIGINT, &Sa, nullptr);
  ::sigaction(SIGTERM, &Sa, nullptr);
  while (!StopRequested.load(std::memory_order_relaxed))
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Daemon.stop();
  WorkerDaemonStats Stats = Daemon.stats();
  std::fprintf(stderr,
               "anek workerd: served %u task(s) over %u session(s) "
               "(%u digest hit(s), %u miss(es), %u rejected)\n",
               Stats.TasksServed, Stats.SessionsAccepted, Stats.DigestHits,
               Stats.DigestMisses, Stats.SessionsRejected);
  return 0;
}
