//===- ShardSoak.cpp - Worker-chaos soak for the shard tier -----------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "shard/ShardSoak.h"

#include "corpus/ExampleSources.h"
#include "lang/PrettyPrinter.h"
#include "lang/Sema.h"
#include "shard/ShardCoordinator.h"
#include "support/FaultInject.h"
#include "support/Format.h"

#include <memory>

using namespace anek;
using namespace anek::shard;

namespace {

/// splitmix64: the soak's chaos source. Deterministic in the seed, so a
/// failing round is re-runnable by seed alone.
uint64_t mix(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

struct ExampleCase {
  const char *Name;
  std::string Source;
};

/// In-process `-j1` ground truth for one example: the exact bytes `anek
/// infer` would print before its stats trailer.
std::string computeBaseline(const std::string &Source, uint64_t Seed,
                            std::string &Error) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = parseAndAnalyze(Source, Diags);
  if (!Prog) {
    Error = "baseline parse failed: " + Diags.str();
    return std::string();
  }
  InferOptions Opts;
  Opts.Parallelism = 1;
  Opts.Seed = Seed;
  InferResult Inference = runAnekInfer(*Prog, Opts, &Diags);
  PrintOptions POpts;
  POpts.SpecFor = [&](const MethodDecl &M) { return *Inference.specFor(&M); };
  return printProgram(*Prog, POpts);
}

} // namespace

ShardSoakReport shard::runShardSoak(const ShardSoakConfig &Cfg) {
  ShardSoakReport Report;
  auto Violate = [&](std::string Message) {
    Report.Violations.push_back(std::move(Message));
  };

  ExampleCase Examples[] = {
      {"spreadsheet", iteratorApiSource() + spreadsheetSource()},
      {"file", fileProtocolSource()},
      {"field", fieldExampleSource()},
  };
  std::string Baselines[3];
  for (unsigned E = 0; E != 3; ++E) {
    std::string Error;
    Baselines[E] = computeBaseline(Examples[E].Source, Cfg.Seed, Error);
    if (!Error.empty()) {
      Violate(formatStr("example %s: %s", Examples[E].Name, Error.c_str()));
      return Report;
    }
  }

  for (unsigned Round = 0; Round != Cfg.Rounds; ++Round) {
    ++Report.Rounds;
    const ExampleCase &Ex = Examples[Round % 3];

    // Real process chaos first: the driver's hook may SIGKILL and respawn
    // daemons here, so the round starts against a world that just changed
    // under it.
    if (Cfg.BetweenRounds)
      Cfg.BetweenRounds(Round);

    // Seeded chaos for this round: maybe nothing, else one or two fault
    // kinds with small fire budgets — enough to force re-dispatches and,
    // every few rounds, a quarantine. Net mode draws refusals, mid-frame
    // resets, stalls, handshake skew and session kills instead of the
    // pipe-era kinds.
    faults::reset();
    uint64_t Roll = mix(Cfg.Seed * 1000003ULL + Round);
    bool Faulted =
        static_cast<double>(Roll >> 11) * (1.0 / 9007199254740992.0) <
        Cfg.FaultRate;
    std::string Spec;
    if (Faulted) {
      ++Report.FaultedRounds;
      if (Cfg.NetChaos) {
        switch (mix(Roll) % 7) {
        case 0:
          Spec = "net-refuse*1";
          break;
        case 1:
          Spec = formatStr("net-reset-midframe*%u",
                           1 + unsigned(mix(Roll + 1) % 2));
          break;
        case 2:
          Spec = "net-stall*1";
          break;
        case 3:
          Spec = "net-handshake-skew*1";
          break;
        case 4:
          // On a socket transport worker-crash kills the *session* with a
          // hard RST — the daemon survives and the slot reconnects.
          Spec = formatStr("worker-crash*%u",
                           1 + unsigned(mix(Roll + 2) % 2));
          break;
        case 5:
          Spec = "net-refuse*2,net-reset-midframe*1";
          break;
        case 6:
          Spec = "wire-corrupt*1";
          break;
        }
      } else {
        switch (mix(Roll) % 5) {
        case 0:
          Spec = "worker-crash*1";
          break;
        case 1:
          Spec =
              formatStr("worker-crash*%u", 2 + unsigned(mix(Roll + 1) % 3));
          break;
        case 2:
          Spec = "worker-hang*1";
          break;
        case 3:
          Spec =
              formatStr("wire-corrupt*%u", 1 + unsigned(mix(Roll + 2) % 2));
          break;
        case 4:
          Spec = "worker-crash*2,wire-corrupt*1";
          break;
        }
      }
      if (Status S = faults::activateSpec(Spec); !S) {
        Violate(formatStr("round %u: bad chaos spec '%s': %s", Round,
                          Spec.c_str(), S.str().c_str()));
        continue;
      }
    }

    DiagnosticEngine Diags;
    std::unique_ptr<Program> Prog = parseAndAnalyze(Ex.Source, Diags);
    if (!Prog) {
      Violate(formatStr("round %u: parse failed", Round));
      faults::reset();
      continue;
    }
    InferOptions Opts;
    Opts.Parallelism = 1;
    Opts.Seed = Cfg.Seed;
    CoordinatorOptions CoOpts;
    CoOpts.Workers = Cfg.Workers;
    CoOpts.HeartbeatTimeoutSeconds = Cfg.HeartbeatTimeoutSeconds;
    CoOpts.WorkerArgv = Cfg.WorkerArgv;
    CoOpts.Endpoints = Cfg.Endpoints;
    // A refused connect to a freshly killed daemon must not burn seconds
    // of soak wall-clock before falling down the ladder.
    CoOpts.ConnectTimeoutSeconds = 2.0;
    CoOpts.Retry.Seed = Cfg.Seed;
    ShardCoordinator Coordinator(*Prog, Ex.Source, Opts, CoOpts);
    Opts.ShardExec = &Coordinator;

    InferResult Inference = runAnekInfer(*Prog, Opts, &Diags);
    faults::reset();

    if (!Inference.Aborted.isOk()) {
      Violate(formatStr("round %u (%s%s%s): run aborted: %s", Round, Ex.Name,
                        Faulted ? ", chaos " : "", Spec.c_str(),
                        Inference.Aborted.str().c_str()));
      continue;
    }
    PrintOptions POpts;
    POpts.SpecFor = [&](const MethodDecl &M) {
      return *Inference.specFor(&M);
    };
    std::string Output = printProgram(*Prog, POpts);
    if (Output != Baselines[Round % 3])
      Violate(formatStr("round %u (%s%s%s): output diverged from the -j1 "
                        "baseline",
                        Round, Ex.Name, Faulted ? ", chaos " : "",
                        Spec.c_str()));

    // Terminal accounting per shard: dispatches resolve into served
    // results, re-dispatches, or quarantines — and the books must agree.
    ShardStats S = Inference.Shard;
    if (S.WavesRemote == 0 && S.WavesDegraded == 0)
      Violate(formatStr("round %u: no wave reached the executor", Round));
    if (S.Redispatches > S.WorkersLost)
      Violate(formatStr("round %u: %u re-dispatches but only %u losses",
                        Round, S.Redispatches, S.WorkersLost));
    if (S.ShardsQuarantined != 0 && S.WorkersLost < S.ShardsQuarantined)
      Violate(formatStr("round %u: quarantine without matching losses",
                        Round));
    // The BetweenRounds hook kills processes outside the fault registry,
    // so an unfaulted round can legitimately lose workers then.
    if (!Faulted && !Cfg.BetweenRounds && S.WorkersLost != 0)
      Violate(formatStr("round %u: %u workers lost with no chaos armed",
                        Round, S.WorkersLost));
    Report.Totals.WavesRemote += S.WavesRemote;
    Report.Totals.WavesDegraded += S.WavesDegraded;
    Report.Totals.ShardsDispatched += S.ShardsDispatched;
    Report.Totals.RemoteDispatches += S.RemoteDispatches;
    Report.Totals.Redispatches += S.Redispatches;
    Report.Totals.Reconnects += S.Reconnects;
    Report.Totals.WorkersLost += S.WorkersLost;
    Report.Totals.WorkersSpawned += S.WorkersSpawned;
    Report.Totals.ShardsQuarantined += S.ShardsQuarantined;
    Report.Totals.EndpointsQuarantined += S.EndpointsQuarantined;
  }

  if (Cfg.MinDispatches != 0 &&
      Report.Totals.ShardsDispatched < Cfg.MinDispatches)
    Violate(formatStr("soak made %u shard dispatches, need >= %u for a "
                      "meaningful exercise",
                      Report.Totals.ShardsDispatched, Cfg.MinDispatches));
  // A net soak that never reached a daemon exercised nothing but the
  // fallback rungs — that is a broken harness, not a passing soak.
  if (!Cfg.Endpoints.empty() && Report.Totals.RemoteDispatches == 0)
    Violate("net soak made no remote dispatches — every round fell "
            "straight to the fallback rungs");
  return Report;
}
