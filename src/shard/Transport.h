//===- Transport.h - The coordinator's worker-transport seam -----*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport seam of the sharded execution tier (DESIGN.md, "Sharded
/// execution and failure model"). PR 6 claimed the framed protocol "does
/// not care whether the peer is a pipe"; this seam makes that claim a
/// type. A Transport is one worker session the coordinator can dispatch
/// on: open() establishes it, send()/recv() move frames, and any failure
/// surfaces as a Status the coordinator classifies exactly as before —
/// there is no transport-specific error vocabulary above this line.
///
/// Two implementations:
///
///  - PipeTransport: today's fork/exec'd `anek --worker` child. open()
///    spawns it and writes the Init frame; closing kills and reaps it.
///
///  - SocketTransport: a connection to a persistent `anek workerd`
///    daemon (TCP or Unix-domain). open() connects under a timeout and
///    runs the Init-by-digest handshake (Wire.h): InitDigest first, the
///    full Init only on InitNeeded, session ready on InitAck. Refusal,
///    reset, version skew and EOF all classify as WorkerLost — transient,
///    like a crashed pipe worker.
///
/// The chaos control points ride the seam too, each with a real kernel
/// effect: injectCrash is SIGKILL on a pipe worker and a hard RST close
/// on a socket; injectHang is SIGSTOP on a pipe worker and a read-side
/// blackhole on a socket (the daemon keeps writing, we stop seeing it),
/// so heartbeat hang detection is exercised by genuine silence. The
/// net-refuse / net-reset-midframe / net-stall / net-handshake-skew
/// faults are implemented inside SocketTransport at the moment the real
/// network failure would occur.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SHARD_TRANSPORT_H
#define ANEK_SHARD_TRANSPORT_H

#include "shard/Wire.h"
#include "support/Status.h"
#include "support/Subprocess.h"

#include <string>
#include <string_view>
#include <vector>

namespace anek {
namespace shard {

/// One worker session. Not thread-safe; each coordinator dispatch thread
/// owns its transport exclusively (the same contract worker slots always
/// had).
class Transport {
public:
  virtual ~Transport() = default;

  /// Establishes the session (spawn + Init, or connect + handshake).
  /// Failure classification is the caller's job; WorkerLost and
  /// DeadlineExceeded are the transient outcomes.
  virtual Status open() = 0;

  /// Cheap liveness check between dispatches: true while the session is
  /// established and the peer has not been observed dead.
  virtual bool healthy() = 0;

  virtual Status send(FrameType Type, std::string_view Payload) = 0;
  virtual Expected<Frame> recv(double TimeoutSeconds) = 0;

  /// Tears the session down (kill + reap / close). Idempotent.
  virtual void close() = 0;

  /// "pipe" or "socket" — for stats, telemetry and bench labels.
  virtual const char *kind() const = 0;

  /// The worker's pid for telemetry lanes; -1 when the peer is remote.
  virtual pid_t pid() const { return -1; }

  /// Chaos control points with real kernel effects (see file comment).
  virtual void injectCrash() = 0;
  virtual void injectHang() = 0;
};

/// The fork/exec transport: one `anek --worker` child over stdin/stdout
/// pipes.
class PipeTransport : public Transport {
public:
  /// \p Argv is the full worker command line; \p InitPayload the
  /// encodeInit bytes written right after spawn; \p MaxFrameBytes the
  /// per-connection frame cap (0 = protocol default).
  PipeTransport(std::vector<std::string> Argv, const std::string &InitPayload,
                uint64_t MaxFrameBytes);
  ~PipeTransport() override { close(); }

  Status open() override;
  bool healthy() override;
  Status send(FrameType Type, std::string_view Payload) override;
  Expected<Frame> recv(double TimeoutSeconds) override;
  void close() override;
  const char *kind() const override { return "pipe"; }
  pid_t pid() const override { return Child.pid(); }
  void injectCrash() override;
  void injectHang() override;

private:
  std::vector<std::string> Argv;
  const std::string &InitPayload;
  uint64_t MaxFrameBytes;
  subprocess::ChildProcess Child;
  bool Ready = false;
};

/// The socket transport: one connection to a worker daemon.
class SocketTransport : public Transport {
public:
  /// \p FaultScope scopes the net-* fault filters exactly as the other
  /// shard faults are scoped (the coordinator's InferOptions.FaultScope).
  SocketTransport(std::string Address, const std::string &InitPayload,
                  double ConnectTimeoutSeconds, uint64_t MaxFrameBytes,
                  std::string FaultScope);
  ~SocketTransport() override { close(); }

  Status open() override;
  bool healthy() override;
  Status send(FrameType Type, std::string_view Payload) override;
  Expected<Frame> recv(double TimeoutSeconds) override;
  void close() override;
  const char *kind() const override { return "socket"; }
  void injectCrash() override;
  void injectHang() override;

  const std::string &address() const { return Address; }

private:
  /// The Init-by-digest handshake over the fresh connection.
  Status handshake();
  /// Swaps reads onto a never-written pipe so the next recv() sees pure
  /// silence until its deadline trips (the net-stall / hang effect).
  void blackholeReads();

  std::string Address;
  const std::string &InitPayload;
  double ConnectTimeoutSeconds;
  uint64_t MaxFrameBytes;
  std::string FaultScope;
  int Fd = -1;       ///< The connected socket (write side always).
  int ReadFd = -1;   ///< Where recv() reads; != Fd while blackholed.
  int BlackholeWriteFd = -1; ///< Keeps the blackhole pipe open (no EOF).
  bool Ready = false;
};

} // namespace shard
} // namespace anek

#endif // ANEK_SHARD_TRANSPORT_H
