//===- ShardWorker.h - The `anek --worker` process loop ----------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker side of the sharded execution tier (DESIGN.md, "Sharded
/// execution and failure model"). A worker is a fork/exec'd copy of the
/// driver running runWorkerLoop over its stdin/stdout: it receives one
/// Init frame (program source + algorithm options), then serves Task
/// frames — analyze these declaration indices against this summary
/// snapshot — until Shutdown or EOF. While a task runs, a heartbeat
/// thread emits Heartbeat frames so the coordinator can tell "slow" from
/// "hung"; writes are mutex-serialized so a heartbeat can never tear a
/// Result frame.
///
/// A worker is deliberately stateless between tasks (every Task carries
/// its full snapshot): the coordinator may kill and respawn one at any
/// moment, and a re-dispatched shard on a fresh worker computes exactly
/// the bytes the lost worker would have.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SHARD_SHARDWORKER_H
#define ANEK_SHARD_SHARDWORKER_H

namespace anek {
namespace shard {

/// Runs the worker protocol over \p InFd (frames from the coordinator)
/// and \p OutFd (frames back). Returns a process exit code: 0 on a clean
/// Shutdown/EOF, 1 when the session could not even start (unparseable
/// Init program — reported as an Error frame first). Task-level failures
/// are protocol traffic (Error frames), not exit codes: the worker stays
/// up for the next task, and the coordinator decides what the failure
/// means.
int runWorkerLoop(int InFd, int OutFd);

} // namespace shard
} // namespace anek

#endif // ANEK_SHARD_SHARDWORKER_H
