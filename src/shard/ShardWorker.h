//===- ShardWorker.h - The `anek --worker` process loop ----------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker side of the sharded execution tier (DESIGN.md, "Sharded
/// execution and failure model"). A worker is a fork/exec'd copy of the
/// driver running runWorkerLoop over its stdin/stdout: it receives one
/// Init frame (program source + algorithm options), then serves Task
/// frames — analyze these declaration indices against this summary
/// snapshot — until Shutdown or EOF. While a task runs, a heartbeat
/// thread emits Heartbeat frames so the coordinator can tell "slow" from
/// "hung"; writes are mutex-serialized so a heartbeat can never tear a
/// Result frame.
///
/// A worker is deliberately stateless between tasks (every Task carries
/// its full snapshot): the coordinator may kill and respawn one at any
/// moment, and a re-dispatched shard on a fresh worker computes exactly
/// the bytes the lost worker would have.
///
/// The Task-serving core is shared with the persistent worker daemon
/// (WorkerDaemon.h): serveSession is the one implementation of "answer
/// Task frames against this resident program", whether the session
/// arrived over a pipe from a fork/exec parent or over a socket from a
/// remote coordinator.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SHARD_SHARDWORKER_H
#define ANEK_SHARD_SHARDWORKER_H

#include "infer/AnekInfer.h"
#include "shard/Wire.h"
#include "support/Status.h"

#include <cstdint>
#include <mutex>
#include <string_view>

namespace anek {
namespace shard {

/// Serializes every frame a worker emits: the heartbeat thread and the
/// task loop share one stream, and an interleaved write would hand the
/// coordinator a torn frame (which it must — and does — treat as a lost
/// worker, wasting a perfectly good attempt).
class FrameSender {
public:
  explicit FrameSender(int Fd) : Fd(Fd) {}

  Status send(FrameType Type, std::string_view Payload) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return writeFrame(Fd, Type, Payload);
  }

private:
  int Fd;
  std::mutex Mutex;
};

/// Per-session knobs of serveSession.
struct SessionLimits {
  /// How long to wait for the next Task before giving the session up
  /// (< 0 = forever). Pipe workers wait forever — their lifetime is the
  /// coordinator's; daemon sessions may bound idleness.
  double IdleTimeoutSeconds = -1.0;
  /// Per-connection frame cap (0 = protocol default).
  uint64_t MaxFrameBytes = 0;
};

/// How a session ended.
struct SessionResult {
  /// True on Shutdown or EOF (the peer is simply gone — normal in the
  /// shard failure model); false when our own sends failed or a frame
  /// from the peer was malformed beyond answering.
  bool Clean = true;
  unsigned TasksServed = 0;
};

/// The Task-serving core: reads Task/Shutdown frames from \p InFd and
/// answers over \p Sender against the resident \p Prog until the peer
/// hangs up. Heartbeats pulse while a task runs; when \p CollectLevel is
/// non-zero a Telemetry frame ships before each Result. Task-level
/// failures are Error frames, never session enders — the peer decides
/// what they mean.
SessionResult serveSession(int InFd, FrameSender &Sender, Program &Prog,
                           const InferOptions &Opts, uint8_t CollectLevel,
                           const SessionLimits &Limits = {});

/// Runs the worker protocol over \p InFd (frames from the coordinator)
/// and \p OutFd (frames back). Returns a process exit code: 0 on a clean
/// Shutdown/EOF, 1 when the session could not even start (unparseable
/// Init program — reported as an Error frame first). Task-level failures
/// are protocol traffic (Error frames), not exit codes: the worker stays
/// up for the next task, and the coordinator decides what the failure
/// means.
int runWorkerLoop(int InFd, int OutFd);

} // namespace shard
} // namespace anek

#endif // ANEK_SHARD_SHARDWORKER_H
