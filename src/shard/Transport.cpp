//===- Transport.cpp - The coordinator's worker-transport seam --------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "shard/Transport.h"

#include "support/FaultInject.h"
#include "support/Socket.h"

#include <csignal>
#include <unistd.h>

using namespace anek;
using namespace anek::shard;

// --- PipeTransport -------------------------------------------------------

PipeTransport::PipeTransport(std::vector<std::string> Argv,
                             const std::string &InitPayload,
                             uint64_t MaxFrameBytes)
    : Argv(std::move(Argv)), InitPayload(InitPayload),
      MaxFrameBytes(MaxFrameBytes) {}

Status PipeTransport::open() {
  close();
  if (Status Sp = Child.spawn(Argv); !Sp)
    return Sp;
  if (Status Init = writeFrame(Child.writeFd(), FrameType::Init, InitPayload);
      !Init) {
    close();
    return Init;
  }
  Ready = true;
  return Status::ok();
}

bool PipeTransport::healthy() {
  return Ready && Child.running() && !Child.poll();
}

Status PipeTransport::send(FrameType Type, std::string_view Payload) {
  return writeFrame(Child.writeFd(), Type, Payload);
}

Expected<Frame> PipeTransport::recv(double TimeoutSeconds) {
  return readFrame(Child.readFd(), TimeoutSeconds, MaxFrameBytes);
}

void PipeTransport::close() {
  // Move-assigning a fresh ChildProcess SIGKILLs, reaps and closes pipes;
  // SIGKILL terminates even a SIGSTOPped worker, so a hung child cannot
  // wedge the reap.
  Child = subprocess::ChildProcess();
  Ready = false;
}

void PipeTransport::injectCrash() { Child.kill(SIGKILL); }

void PipeTransport::injectHang() { Child.kill(SIGSTOP); }

// --- SocketTransport -----------------------------------------------------

SocketTransport::SocketTransport(std::string Address,
                                 const std::string &InitPayload,
                                 double ConnectTimeoutSeconds,
                                 uint64_t MaxFrameBytes,
                                 std::string FaultScope)
    : Address(std::move(Address)), InitPayload(InitPayload),
      ConnectTimeoutSeconds(ConnectTimeoutSeconds),
      MaxFrameBytes(MaxFrameBytes), FaultScope(std::move(FaultScope)) {}

Status SocketTransport::handshake() {
  // The version-skew control point: stamp the InitDigest frame with a
  // version one past ours — exactly the bytes a mismatched binary would
  // send — and let the daemon's decoder reject the session for real.
  uint16_t Version = ProtocolVersion;
  if (faults::anyActive() &&
      faults::consumeFire(FaultKind::NetHandshakeSkew, FaultScope))
    Version = ProtocolVersion + 1;
  const std::string DigestFrame = encodeFrame(
      FrameType::InitDigest, encodeInitDigest(initDigest(InitPayload)),
      Version);
  if (Status S = subprocess::writeFull(Fd, DigestFrame.data(),
                                       DigestFrame.size());
      !S)
    return S;
  Expected<Frame> Reply = readFrame(Fd, ConnectTimeoutSeconds, MaxFrameBytes);
  if (!Reply)
    return Reply.status().code() == ErrorCode::WorkerLost
               ? Status::error(ErrorCode::WorkerLost,
                               "daemon at '" + Address +
                                   "' closed the handshake (version skew or "
                                   "shutdown): " + Reply.status().message())
               : Reply.status();
  if (Reply->Type == FrameType::InitNeeded) {
    if (Status S = writeFrame(Fd, FrameType::Init, InitPayload); !S)
      return S;
    Reply = readFrame(Fd, ConnectTimeoutSeconds, MaxFrameBytes);
    if (!Reply)
      return Reply.status();
  }
  if (Reply->Type == FrameType::Error)
    return Status::error(ErrorCode::WorkerLost,
                         "daemon at '" + Address +
                             "' rejected the session: " + Reply->Payload);
  if (Reply->Type != FrameType::InitAck)
    return Status::error(ErrorCode::WorkerLost,
                         std::string("unexpected handshake frame ") +
                             frameTypeName(Reply->Type));
  return Status::ok();
}

Status SocketTransport::open() {
  close();
  // The refusal control point fires before the connect ever happens —
  // indistinguishable from a daemon that is not there.
  if (faults::anyActive() &&
      faults::consumeFire(FaultKind::NetRefuse, FaultScope))
    return Status::error(ErrorCode::WorkerLost,
                         "cannot connect to '" + Address +
                             "': connection refused (injected)");
  Expected<int> Conn = sock::connectTo(Address, ConnectTimeoutSeconds);
  if (!Conn)
    return Conn.status();
  Fd = *Conn;
  ReadFd = Fd;
  if (Status Hs = handshake(); !Hs) {
    close();
    return Hs;
  }
  Ready = true;
  return Status::ok();
}

bool SocketTransport::healthy() { return Ready && Fd >= 0; }

Status SocketTransport::send(FrameType Type, std::string_view Payload) {
  if (Fd < 0)
    return Status::error(ErrorCode::WorkerLost, "socket session closed");
  // The torn-connection control point: write the frame header plus half
  // the payload, then hard-reset. The daemon sees a mid-frame RST; we
  // report the loss the peer's kernel would have reported to us.
  if (faults::anyActive() &&
      faults::consumeFire(FaultKind::NetResetMidframe, FaultScope)) {
    const std::string Bytes = encodeFrame(Type, Payload);
    const size_t Half = FrameHeaderBytes + (Bytes.size() - FrameHeaderBytes) / 2;
    (void)subprocess::writeFull(Fd, Bytes.data(), Half);
    sock::resetClose(Fd);
    if (ReadFd != Fd && ReadFd >= 0)
      ::close(ReadFd);
    if (BlackholeWriteFd >= 0)
      ::close(BlackholeWriteFd);
    Fd = ReadFd = BlackholeWriteFd = -1;
    Ready = false;
    return Status::error(ErrorCode::WorkerLost,
                         "connection to '" + Address +
                             "' reset mid-frame (injected)");
  }
  return writeFrame(Fd, Type, Payload);
}

Expected<Frame> SocketTransport::recv(double TimeoutSeconds) {
  if (ReadFd < 0)
    return Status::error(ErrorCode::WorkerLost, "socket session closed");
  // The stall control point: from here on this session's reads see pure
  // silence (the daemon's frames land in a socket buffer nobody reads),
  // so the caller's heartbeat deadline must trip — the same observable
  // behavior as a network path that silently stopped delivering.
  if (faults::anyActive() &&
      faults::consumeFire(FaultKind::NetStall, FaultScope))
    blackholeReads();
  return readFrame(ReadFd, TimeoutSeconds, MaxFrameBytes);
}

void SocketTransport::blackholeReads() {
  int Pipe[2];
  if (::pipe(Pipe) != 0)
    return; // Out of fds: the stall simply does not happen.
  if (ReadFd != Fd && ReadFd >= 0)
    ::close(ReadFd);
  if (BlackholeWriteFd >= 0)
    ::close(BlackholeWriteFd);
  ReadFd = Pipe[0];
  BlackholeWriteFd = Pipe[1]; // Held open so the read end never sees EOF.
}

void SocketTransport::close() {
  if (ReadFd >= 0 && ReadFd != Fd)
    ::close(ReadFd);
  if (BlackholeWriteFd >= 0)
    ::close(BlackholeWriteFd);
  if (Fd >= 0)
    ::close(Fd);
  Fd = ReadFd = BlackholeWriteFd = -1;
  Ready = false;
}

void SocketTransport::injectCrash() {
  // The socket analogue of SIGKILL: a hard RST, after which every
  // operation on the session fails the way a crashed daemon would.
  if (Fd >= 0) {
    sock::resetClose(Fd);
    if (ReadFd != Fd && ReadFd >= 0)
      ::close(ReadFd);
    if (BlackholeWriteFd >= 0)
      ::close(BlackholeWriteFd);
    Fd = ReadFd = BlackholeWriteFd = -1;
  }
  Ready = false;
}

void SocketTransport::injectHang() { blackholeReads(); }
