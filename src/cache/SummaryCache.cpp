//===- SummaryCache.cpp - On-disk/in-memory solve cache --------------------===//

#include "cache/SummaryCache.h"

#include "infer/SummaryIO.h"
#include "support/FaultInject.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

using namespace anek;
using namespace anek::cache;

namespace fs = std::filesystem;

SummaryCache::SummaryCache(std::string Dir) : Dir(std::move(Dir)) {
  if (this->Dir.empty())
    return;
  std::error_code Ec;
  fs::create_directories(this->Dir, Ec);
  // An uncreatable directory is not an error: every lookup will miss and
  // every store will fail to persist, which is the degradation contract.
  loadIndex();
}

std::string SummaryCache::hexKey(uint64_t Key) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Key));
  return Buf;
}

void SummaryCache::loadIndex() {
  std::ifstream In(fs::path(Dir) / IndexFileName, std::ios::binary);
  if (!In)
    return; // A fresh directory: empty cache, not corruption.
  std::string Line;
  if (!std::getline(In, Line) || Line != IndexFileName) {
    ++Stats.Corrupt; // Header of a different (or damaged) format.
    return;
  }
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    const size_t Space = Line.find(' ');
    if (Space != 16 || Line.size() < 18) {
      ++Stats.Corrupt;
      return; // Abandon the damaged tail; parsed entries stay usable.
    }
    const std::string Hex = Line.substr(0, 16);
    char *End = nullptr;
    const uint64_t Key = std::strtoull(Hex.c_str(), &End, 16);
    if (!End || *End != '\0') {
      ++Stats.Corrupt;
      return;
    }
    Index[Line.substr(Space + 1)].insert(Key);
  }
}

bool SummaryCache::loadBlob(uint64_t Key, std::string &Blob) {
  if (Dir.empty()) {
    auto It = MemBlobs.find(Key);
    if (It == MemBlobs.end())
      return false;
    Blob = It->second;
    return true;
  }
  std::ifstream In(fs::path(Dir) / (hexKey(Key) + ".sum"), std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Blob = std::move(Buf).str();
  return In.good() || In.eof();
}

bool SummaryCache::saveBlob(uint64_t Key, const std::string &Blob) {
  if (Dir.empty()) {
    MemBlobs[Key] = Blob;
    return true;
  }
  // Temp file + rename: a crash mid-write leaves either the old blob or
  // none, never a torn one (and a torn rename survivor would still be
  // caught by the envelope checksum).
  const fs::path Final = fs::path(Dir) / (hexKey(Key) + ".sum");
  const fs::path Tmp = fs::path(Dir) / (hexKey(Key) + ".sum.tmp");
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(Blob.data(), static_cast<std::streamsize>(Blob.size()));
    if (!Out.good())
      return false;
  }
  std::error_code Ec;
  fs::rename(Tmp, Final, Ec);
  if (Ec) {
    fs::remove(Tmp, Ec);
    return false;
  }
  return true;
}

CacheLookup SummaryCache::lookup(const std::string &MethodName, uint64_t Key,
                                 CachedSolve &Out) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(MethodName);
  if (It == Index.end()) {
    ++Stats.Misses;
    return CacheLookup::Miss;
  }
  if (!It->second.count(Key)) {
    // Entries exist, but none under this content key: the method (or
    // something it transitively depends on, or the summary state it is
    // being solved against) changed since they were written.
    ++Stats.Invalidated;
    return CacheLookup::Invalidated;
  }
  auto Drop = [&] {
    It->second.erase(Key);
    if (It->second.empty())
      Index.erase(It);
    ++Stats.Corrupt;
  };
  std::string Blob;
  if (!loadBlob(Key, Blob)) {
    // Indexed but the blob is gone/unreadable: rot, classified as a miss.
    Drop();
    return CacheLookup::Corrupt;
  }
  // The wire-corrupt control point at the `cache` site: flip one byte of
  // the loaded blob, exactly as disk rot would. The envelope checksum
  // rejects it below and the lookup degrades to a counted miss.
  if (faults::anyActive() &&
      faults::consumeFire(FaultKind::WireCorrupt, "cache") && !Blob.empty())
    Blob[Blob.size() / 2] ^= 0x20;
  Expected<CachedSolve> Decoded = summaryio::decodeCacheEntry(Blob, Key);
  if (!Decoded) {
    Drop();
    if (Dir.empty())
      MemBlobs.erase(Key);
    return CacheLookup::Corrupt;
  }
  Out = Decoded.take();
  ++Stats.Hits;
  return CacheLookup::Hit;
}

void SummaryCache::store(const std::string &MethodName, uint64_t Key,
                         const CachedSolve &Entry) {
  const std::string Blob = summaryio::encodeCacheEntry(Key, Entry);
  std::lock_guard<std::mutex> Lock(Mutex);
  if (auto It = Index.find(MethodName);
      It != Index.end() && It->second.count(Key))
    return; // Already stored (a warm run re-stores nothing).
  if (!saveBlob(Key, Blob))
    return; // Absorbed: an unpersistable entry is a future miss.
  if (!Dir.empty()) {
    const fs::path IndexPath = fs::path(Dir) / IndexFileName;
    std::error_code Ec;
    const bool Fresh = !fs::exists(IndexPath, Ec);
    std::ofstream Out(IndexPath, std::ios::binary | std::ios::app);
    if (!Out)
      return;
    if (Fresh)
      Out << IndexFileName << "\n";
    Out << hexKey(Key) << " " << MethodName << "\n";
    if (!Out.good())
      return;
  }
  Index[MethodName].insert(Key);
  ++Stats.Stores;
}

CacheStats SummaryCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}

size_t SummaryCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t N = 0;
  for (const auto &[Name, Keys] : Index)
    N += Keys.size();
  return N;
}
