//===- SummaryCache.h - On-disk/in-memory solve cache ------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage backend of the incremental summary cache (the engine-side
/// contract is src/infer/SolveCache.h; the design discussion is in
/// DESIGN.md, "Incremental inference and the summary cache").
///
/// Layout of a cache directory:
///
///   <dir>/index.anek-cache-v1   one header line, then one
///                               "<16-hex-key> <qualified-name>" line per
///                               stored entry, appended on store; a method
///                               keeps *every* key it was stored under
///                               (the engine's fixpoint solves one method
///                               several times per run, once per summary
///                               state, and a warm replay needs the whole
///                               trajectory, not just the final state)
///   <dir>/<16-hex-key>.sum      one sealed CacheEntry blob per key
///                               (summaryio envelope: magic, version,
///                               kind, length, checksum, key echo)
///
/// Every defect a stale or tampered directory can exhibit — truncated
/// index, missing blob file, bit flips, a blob written by a different
/// wire version, a blob renamed to another key — is classified as a miss
/// (CacheLookup::Corrupt, counted), never as an error: a rotten cache
/// costs a re-solve, not a failed run. Store failures are likewise
/// absorbed (a cache that cannot persist degrades to misses).
///
/// An empty directory string keeps the cache purely in memory; entries
/// still round-trip through the sealed blob codec so the corruption
/// behavior is identical to disk.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_CACHE_SUMMARYCACHE_H
#define ANEK_CACHE_SUMMARYCACHE_H

#include "infer/SolveCache.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

namespace anek {
namespace cache {

/// Name of the index file inside a cache directory; doubles as the
/// on-disk format version (a directory written by an incompatible future
/// layout simply has no index under this name and reads as empty).
inline constexpr const char *IndexFileName = "index.anek-cache-v1";

/// Thread-safe SolveCache over one directory (or memory). One instance
/// may be shared by concurrent batch requests naming the same `cache=`
/// directory; a single mutex guards the index and all file traffic.
class SummaryCache : public SolveCache {
public:
  /// Opens (and if needed creates) \p Dir, loading any existing index.
  /// An empty \p Dir selects the in-memory mode. Never fails: an
  /// unusable directory behaves as an always-miss cache.
  explicit SummaryCache(std::string Dir);

  CacheLookup lookup(const std::string &MethodName, uint64_t Key,
                     CachedSolve &Out) override;
  void store(const std::string &MethodName, uint64_t Key,
             const CachedSolve &Entry) override;

  /// Storage-level accounting since construction, across every run that
  /// shared this instance (the per-run view lives in InferResult::Cache).
  CacheStats stats() const;

  /// Number of entries currently indexed (tests).
  size_t size() const;

private:
  /// "<16-hex>" of \p Key — the blob's base name and the index's key
  /// column.
  static std::string hexKey(uint64_t Key);

  /// Loads the sealed blob for \p Key into \p Blob. False when the blob
  /// is missing/unreadable (disk) or was never stored (memory).
  bool loadBlob(uint64_t Key, std::string &Blob);

  /// Persists \p Blob for \p Key (temp file + rename on disk). False on
  /// any I/O failure.
  bool saveBlob(uint64_t Key, const std::string &Blob);

  /// Parses the index file into Index. Malformed content abandons the
  /// rest of the file (counted as one corrupt event) — entries already
  /// parsed stay usable.
  void loadIndex();

  mutable std::mutex Mutex;
  std::string Dir; ///< Empty in the in-memory mode.
  /// Qualified method name -> every content key stored for it (one per
  /// summary state its fixpoint trajectory visited).
  std::map<std::string, std::set<uint64_t>> Index;
  /// Sealed blobs by key (in-memory mode only).
  std::map<uint64_t, std::string> MemBlobs;
  CacheStats Stats;
};

} // namespace cache
} // namespace anek

#endif // ANEK_CACHE_SUMMARYCACHE_H
