//===- Ast.h - MiniJava abstract syntax trees --------------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the MiniJava dialect: the Java subset the paper's abstraction
/// reads (classes, interfaces, fields, methods, locals, calls, `new`,
/// field access, structured control flow, `synchronized`) plus PLURAL's
/// annotation vocabulary. Semantic links (resolved callees, declared
/// specs, state spaces) are filled in by Sema.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_LANG_AST_H
#define ANEK_LANG_AST_H

#include "perm/Spec.h"
#include "perm/StateSpace.h"
#include "support/Casting.h"
#include "support/SourceLocation.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace anek {

class TypeDecl;
class MethodDecl;

//===----------------------------------------------------------------------===//
// Types and annotations
//===----------------------------------------------------------------------===//

/// A syntactic type reference. Generic arguments are parsed but erased for
/// analysis purposes (`Iterator<Integer>` behaves as `Iterator`).
struct TypeRef {
  enum class Tag { Void, Int, Boolean, Class } Kind = Tag::Void;
  /// Class name when Kind == Class.
  std::string Name;
  /// Generic arguments (kept for pretty-printing only).
  std::vector<TypeRef> Args;
  SourceLocation Loc;

  /// Resolved declaration when Kind == Class (set by Sema); null for
  /// unresolved or non-class types.
  TypeDecl *Decl = nullptr;

  static TypeRef voidTy() { return TypeRef{}; }
  static TypeRef intTy() {
    TypeRef T;
    T.Kind = Tag::Int;
    return T;
  }
  static TypeRef boolTy() {
    TypeRef T;
    T.Kind = Tag::Boolean;
    return T;
  }
  static TypeRef classTy(std::string Name) {
    TypeRef T;
    T.Kind = Tag::Class;
    T.Name = std::move(Name);
    return T;
  }

  bool isClass() const { return Kind == Tag::Class; }
  bool isVoid() const { return Kind == Tag::Void; }
  bool isBoolean() const { return Kind == Tag::Boolean; }

  /// Renders as source syntax, e.g. "Iterator<Integer>".
  std::string str() const;
};

/// An annotation as parsed: name plus named string arguments and/or a list
/// of strings, e.g. @Perm(requires="...", ensures="...") or
/// @States({"HASNEXT","END"}).
struct RawAnnotation {
  std::string Name;
  std::map<std::string, std::string> Args;
  std::vector<std::string> ListArgs;
  SourceLocation Loc;

  /// Returns the value of argument \p Key or "" when absent.
  const std::string &arg(const std::string &Key) const;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Static type of an expression after Sema: either a primitive tag or a
/// resolved class.
struct ExprType {
  TypeRef::Tag Kind = TypeRef::Tag::Void;
  TypeDecl *Decl = nullptr; // Non-null only for class-typed expressions.

  bool isClass() const { return Kind == TypeRef::Tag::Class; }
  bool isBoolean() const { return Kind == TypeRef::Tag::Boolean; }
};

/// Base class of all expressions.
class Expr {
public:
  enum class Kind {
    VarRef,
    This,
    FieldRead,
    Call,
    New,
    Assign,
    IntLit,
    BoolLit,
    StringLit,
    NullLit,
    Binary,
    Unary,
  };

  Kind getKind() const { return TheKind; }
  SourceLocation getLoc() const { return Loc; }

  /// Static type, available after Sema.
  ExprType Type;

  virtual ~Expr();

protected:
  Expr(Kind TheKind, SourceLocation Loc) : TheKind(TheKind), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLocation Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

/// How an unqualified identifier resolved.
enum class VarRefBinding { Unresolved, Local, Param, FieldOfThis };

/// A reference to a local variable, parameter, or (after resolution)
/// an implicit field of `this`.
class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string Name, SourceLocation Loc)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}

  std::string Name;
  VarRefBinding Binding = VarRefBinding::Unresolved;
  /// Parameter index when Binding == Param.
  unsigned ParamIndex = 0;
  /// Declaring statement when Binding == Local.
  class VarDeclStmt *LocalDecl = nullptr;

  static bool classof(const Expr *E) { return E->getKind() == Kind::VarRef; }
};

/// The receiver reference `this`.
class ThisExpr : public Expr {
public:
  explicit ThisExpr(SourceLocation Loc) : Expr(Kind::This, Loc) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::This; }
};

/// A field read `base.f`.
class FieldReadExpr : public Expr {
public:
  FieldReadExpr(ExprPtr Base, std::string FieldName, SourceLocation Loc)
      : Expr(Kind::FieldRead, Loc), Base(std::move(Base)),
        FieldName(std::move(FieldName)) {}

  ExprPtr Base;
  std::string FieldName;

  static bool classof(const Expr *E) {
    return E->getKind() == Kind::FieldRead;
  }
};

/// A method call `base.m(args)`; Base is null for unqualified calls on the
/// implicit receiver.
class CallExpr : public Expr {
public:
  CallExpr(ExprPtr Base, std::string MethodName, std::vector<ExprPtr> Args,
           SourceLocation Loc)
      : Expr(Kind::Call, Loc), Base(std::move(Base)),
        MethodName(std::move(MethodName)), Args(std::move(Args)) {}

  ExprPtr Base;
  std::string MethodName;
  std::vector<ExprPtr> Args;

  /// Resolved callee (set by Sema); null when unresolvable.
  MethodDecl *Callee = nullptr;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Call; }
};

/// An object allocation `new C(args)`.
class NewExpr : public Expr {
public:
  NewExpr(TypeRef ClassType, std::vector<ExprPtr> Args, SourceLocation Loc)
      : Expr(Kind::New, Loc), ClassType(std::move(ClassType)),
        Args(std::move(Args)) {}

  TypeRef ClassType;
  std::vector<ExprPtr> Args;

  /// Resolved constructor (may be null: implicit default constructor).
  MethodDecl *Ctor = nullptr;

  static bool classof(const Expr *E) { return E->getKind() == Kind::New; }
};

/// An assignment `lhs = rhs`. The LHS is a VarRefExpr (local/param) or a
/// FieldReadExpr (then this is a field write).
class AssignExpr : public Expr {
public:
  AssignExpr(ExprPtr Lhs, ExprPtr Rhs, SourceLocation Loc)
      : Expr(Kind::Assign, Loc), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {}

  ExprPtr Lhs;
  ExprPtr Rhs;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Assign; }
};

/// Integer literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(long Value, SourceLocation Loc)
      : Expr(Kind::IntLit, Loc), Value(Value) {}
  long Value;
  static bool classof(const Expr *E) { return E->getKind() == Kind::IntLit; }
};

/// Boolean literal.
class BoolLitExpr : public Expr {
public:
  BoolLitExpr(bool Value, SourceLocation Loc)
      : Expr(Kind::BoolLit, Loc), Value(Value) {}
  bool Value;
  static bool classof(const Expr *E) { return E->getKind() == Kind::BoolLit; }
};

/// String literal.
class StringLitExpr : public Expr {
public:
  StringLitExpr(std::string Value, SourceLocation Loc)
      : Expr(Kind::StringLit, Loc), Value(std::move(Value)) {}
  std::string Value;
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::StringLit;
  }
};

/// The null literal.
class NullLitExpr : public Expr {
public:
  explicit NullLitExpr(SourceLocation Loc) : Expr(Kind::NullLit, Loc) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::NullLit; }
};

/// Binary operators.
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Eq,
  Ne,
  Lt,
  Gt,
  Le,
  Ge,
  And,
  Or,
};

/// A binary expression.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs, SourceLocation Loc)
      : Expr(Kind::Binary, Loc), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}

  BinaryOp Op;
  ExprPtr Lhs;
  ExprPtr Rhs;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }
};

/// Unary operators.
enum class UnaryOp { Not, Neg };

/// A unary expression.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand, SourceLocation Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}

  UnaryOp Op;
  ExprPtr Operand;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of all statements.
class Stmt {
public:
  enum class Kind {
    Block,
    VarDecl,
    If,
    While,
    Return,
    Assert,
    Synchronized,
    ExprStmt,
  };

  Kind getKind() const { return TheKind; }
  SourceLocation getLoc() const { return Loc; }

  virtual ~Stmt();

protected:
  Stmt(Kind TheKind, SourceLocation Loc) : TheKind(TheKind), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLocation Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// `{ stmts }`
class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<StmtPtr> Stmts, SourceLocation Loc)
      : Stmt(Kind::Block, Loc), Stmts(std::move(Stmts)) {}
  std::vector<StmtPtr> Stmts;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Block; }
};

/// `T x = init;` (init optional).
class VarDeclStmt : public Stmt {
public:
  VarDeclStmt(TypeRef Type, std::string Name, ExprPtr Init,
              SourceLocation Loc)
      : Stmt(Kind::VarDecl, Loc), Type(std::move(Type)),
        Name(std::move(Name)), Init(std::move(Init)) {}
  TypeRef Type;
  std::string Name;
  ExprPtr Init; // May be null.
  static bool classof(const Stmt *S) { return S->getKind() == Kind::VarDecl; }
};

/// `if (cond) then else els`
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLocation Loc)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; // May be null.
  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }
};

/// `while (cond) body`
class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLocation Loc)
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}
  ExprPtr Cond;
  StmtPtr Body;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::While; }
};

/// `return e;` (value optional).
class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr Value, SourceLocation Loc)
      : Stmt(Kind::Return, Loc), Value(std::move(Value)) {}
  ExprPtr Value; // May be null.
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Return; }
};

/// `assert e;`
class AssertStmt : public Stmt {
public:
  AssertStmt(ExprPtr Cond, SourceLocation Loc)
      : Stmt(Kind::Assert, Loc), Cond(std::move(Cond)) {}
  ExprPtr Cond;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assert; }
};

/// `synchronized (e) { ... }` — heuristic H5 reads these.
class SynchronizedStmt : public Stmt {
public:
  SynchronizedStmt(ExprPtr Target, StmtPtr Body, SourceLocation Loc)
      : Stmt(Kind::Synchronized, Loc), Target(std::move(Target)),
        Body(std::move(Body)) {}
  ExprPtr Target;
  StmtPtr Body;
  static bool classof(const Stmt *S) {
    return S->getKind() == Kind::Synchronized;
  }
};

/// An expression evaluated for effect (calls, assignments).
class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, SourceLocation Loc)
      : Stmt(Kind::ExprStmt, Loc), E(std::move(E)) {}
  ExprPtr E;
  static bool classof(const Stmt *S) { return S->getKind() == Kind::ExprStmt; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A method parameter.
struct ParamDecl {
  TypeRef Type;
  std::string Name;
  SourceLocation Loc;
};

/// A field declaration.
struct FieldDecl {
  TypeRef Type;
  std::string Name;
  SourceLocation Loc;
};

/// A method (or constructor) declaration.
class MethodDecl {
public:
  std::vector<RawAnnotation> Annotations;
  bool IsStatic = false;
  bool IsCtor = false;
  TypeRef ReturnType;
  std::string Name;
  std::vector<ParamDecl> Params;
  std::unique_ptr<BlockStmt> Body; // Null for interface methods.
  SourceLocation Loc;

  /// Enclosing type (set by Sema).
  TypeDecl *Owner = nullptr;

  /// Program-wide declaration index (set by Sema, declaration order).
  /// Anything that must iterate deterministically over sets of methods —
  /// summary pooling, report printing, requeue order — keys on this
  /// instead of the pointer value, so results do not depend on ASLR.
  unsigned DeclIndex = 0;

  /// Declared spec from @Perm/@Spec annotations (set by Sema); empty spec
  /// when unannotated.
  MethodSpec DeclaredSpec;
  /// True when an explicit @Perm/@Spec annotation was present.
  bool HasDeclaredSpec = false;
  /// True when annotated @Test.
  bool IsTest = false;

  /// Parameter names in order (for spec parsing/printing).
  std::vector<std::string> paramNames() const;

  /// "Owner.name" for diagnostics.
  std::string qualifiedName() const;
};

/// A class or interface declaration.
class TypeDecl {
public:
  std::vector<RawAnnotation> Annotations;
  bool IsInterface = false;
  std::string Name;
  /// Generic parameter names (erased, kept for printing).
  std::vector<std::string> TypeParams;
  std::string SuperName; // Empty when none.
  std::vector<std::string> InterfaceNames;
  std::vector<FieldDecl> Fields;
  std::vector<std::unique_ptr<MethodDecl>> Methods;
  SourceLocation Loc;

  /// Resolved supertype links (set by Sema).
  TypeDecl *Super = nullptr;
  std::vector<TypeDecl *> Interfaces;

  /// Typestate hierarchy from @States annotations (set by Sema).
  StateSpace States;

  /// Looks up a field in this type or a supertype.
  const FieldDecl *findField(const std::string &Name) const;

  /// Looks up a method by name and arity in this type or a supertype.
  MethodDecl *findMethod(const std::string &Name, unsigned Arity) const;

  /// True if this type equals or transitively extends/implements \p Other.
  bool isSubtypeOf(const TypeDecl *Other) const;
};

/// A whole MiniJava program (one compilation unit for our purposes).
class Program {
public:
  std::vector<std::unique_ptr<TypeDecl>> Types;

  /// Finds a type by name; null when absent.
  TypeDecl *findType(const std::string &Name) const;

  /// All methods that have bodies, in declaration order.
  std::vector<MethodDecl *> methodsWithBodies() const;
};

/// Strict weak order on MethodDecl pointers by declaration index, with the
/// pointer as a tie-break for hand-built ASTs Sema never numbered. Maps
/// keyed this way iterate in source order, not allocation order.
struct DeclIndexLess {
  bool operator()(const MethodDecl *A, const MethodDecl *B) const {
    if (A->DeclIndex != B->DeclIndex)
      return A->DeclIndex < B->DeclIndex;
    return A < B;
  }
};

/// A MethodDecl-keyed map whose iteration order is declaration order.
template <typename V>
using MethodDeclMap = std::map<const MethodDecl *, V, DeclIndexLess>;

} // namespace anek

#endif // ANEK_LANG_AST_H
