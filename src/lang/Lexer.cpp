//===- Lexer.cpp - MiniJava lexer ------------------------------------------===//

#include "lang/Lexer.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <cassert>
#include <cctype>
#include <unordered_map>

using namespace anek;

const char *anek::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::KwClass:
    return "'class'";
  case TokenKind::KwInterface:
    return "'interface'";
  case TokenKind::KwExtends:
    return "'extends'";
  case TokenKind::KwImplements:
    return "'implements'";
  case TokenKind::KwStatic:
    return "'static'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwBoolean:
    return "'boolean'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwThis:
    return "'this'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwAssert:
    return "'assert'";
  case TokenKind::KwSynchronized:
    return "'synchronized'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::At:
    return "'@'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Not:
    return "'!'";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::AndAnd:
    return "'&&'";
  case TokenKind::OrOr:
    return "'||'";
  }
  return "unknown";
}

static const std::unordered_map<std::string, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string, TokenKind> Table = {
      {"class", TokenKind::KwClass},
      {"interface", TokenKind::KwInterface},
      {"extends", TokenKind::KwExtends},
      {"implements", TokenKind::KwImplements},
      {"static", TokenKind::KwStatic},
      {"void", TokenKind::KwVoid},
      {"int", TokenKind::KwInt},
      {"boolean", TokenKind::KwBoolean},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"return", TokenKind::KwReturn},
      {"new", TokenKind::KwNew},
      {"this", TokenKind::KwThis},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"null", TokenKind::KwNull},
      {"assert", TokenKind::KwAssert},
      {"synchronized", TokenKind::KwSynchronized},
  };
  return Table;
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  assert(!atEnd() && "advancing past end of buffer");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLocation Start = here();
      advance();
      advance();
      bool Closed = false;
      while (!atEnd()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    break;
  }
}

Token Lexer::lexToken() {
  if (telemetry::enabled(telemetry::TraceLevel::Phase)) {
    static telemetry::Counter &Tokens =
        telemetry::counter("frontend.tokens");
    Tokens.add(1);
  }
  skipTrivia();
  Token Tok;
  Tok.Loc = here();
  if (atEnd()) {
    Tok.Kind = TokenKind::EndOfFile;
    return Tok;
  }

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text;
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      Text += advance();
    auto It = keywordTable().find(Text);
    Tok.Kind = It != keywordTable().end() ? It->second : TokenKind::Identifier;
    Tok.Text = std::move(Text);
    return Tok;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::string Text;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      Text += advance();
    Tok.Kind = TokenKind::IntLiteral;
    Tok.Text = std::move(Text);
    return Tok;
  }

  if (C == '"') {
    advance();
    std::string Text;
    bool Closed = false;
    while (!atEnd()) {
      char D = advance();
      if (D == '"') {
        Closed = true;
        break;
      }
      if (D == '\\' && !atEnd()) {
        char E = advance();
        switch (E) {
        case 'n':
          Text += '\n';
          break;
        case 't':
          Text += '\t';
          break;
        default:
          Text += E;
          break;
        }
        continue;
      }
      Text += D;
    }
    if (!Closed)
      Diags.error(Tok.Loc, "unterminated string literal");
    Tok.Kind = TokenKind::StringLiteral;
    Tok.Text = std::move(Text);
    return Tok;
  }

  advance();
  switch (C) {
  case '{':
    Tok.Kind = TokenKind::LBrace;
    return Tok;
  case '}':
    Tok.Kind = TokenKind::RBrace;
    return Tok;
  case '(':
    Tok.Kind = TokenKind::LParen;
    return Tok;
  case ')':
    Tok.Kind = TokenKind::RParen;
    return Tok;
  case ';':
    Tok.Kind = TokenKind::Semi;
    return Tok;
  case ',':
    Tok.Kind = TokenKind::Comma;
    return Tok;
  case '.':
    Tok.Kind = TokenKind::Dot;
    return Tok;
  case '@':
    Tok.Kind = TokenKind::At;
    return Tok;
  case '+':
    Tok.Kind = TokenKind::Plus;
    return Tok;
  case '-':
    Tok.Kind = TokenKind::Minus;
    return Tok;
  case '*':
    Tok.Kind = TokenKind::Star;
    return Tok;
  case '/':
    Tok.Kind = TokenKind::Slash;
    return Tok;
  case '%':
    Tok.Kind = TokenKind::Percent;
    return Tok;
  case '=':
    if (peek() == '=') {
      advance();
      Tok.Kind = TokenKind::EqEq;
    } else {
      Tok.Kind = TokenKind::Assign;
    }
    return Tok;
  case '!':
    if (peek() == '=') {
      advance();
      Tok.Kind = TokenKind::NotEq;
    } else {
      Tok.Kind = TokenKind::Not;
    }
    return Tok;
  case '<':
    if (peek() == '=') {
      advance();
      Tok.Kind = TokenKind::Le;
    } else {
      Tok.Kind = TokenKind::Lt;
    }
    return Tok;
  case '>':
    if (peek() == '=') {
      advance();
      Tok.Kind = TokenKind::Ge;
    } else {
      Tok.Kind = TokenKind::Gt;
    }
    return Tok;
  case '&':
    if (peek() == '&') {
      advance();
      Tok.Kind = TokenKind::AndAnd;
      return Tok;
    }
    break;
  case '|':
    if (peek() == '|') {
      advance();
      Tok.Kind = TokenKind::OrOr;
      return Tok;
    }
    break;
  default:
    break;
  }
  Diags.error(Tok.Loc, std::string("unexpected character '") + C + "'");
  return lexToken();
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Tokens.push_back(lexToken());
    if (Tokens.back().is(TokenKind::EndOfFile))
      break;
  }
  return Tokens;
}
