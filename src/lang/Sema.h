//===- Sema.h - MiniJava semantic analysis -----------------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resolves the parsed Program: links type references and the class
/// hierarchy, builds per-class state spaces from @States annotations,
/// parses @Perm/@Spec annotations into MethodSpec objects, binds names in
/// method bodies (locals, parameters, implicit fields), resolves call
/// targets, and computes static expression types.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_LANG_SEMA_H
#define ANEK_LANG_SEMA_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

namespace anek {

/// Runs all semantic analysis passes over \p Prog. Returns true when no
/// errors were produced (warnings are fine).
bool runSema(Program &Prog, DiagnosticEngine &Diags);

/// Convenience: lex + parse + sema. Returns null when any error occurred.
std::unique_ptr<Program> parseAndAnalyze(const std::string &Source,
                                         DiagnosticEngine &Diags);

} // namespace anek

#endif // ANEK_LANG_SEMA_H
