//===- Token.h - MiniJava lexical tokens -------------------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#ifndef ANEK_LANG_TOKEN_H
#define ANEK_LANG_TOKEN_H

#include "support/SourceLocation.h"

#include <string>

namespace anek {

/// Token kinds for the MiniJava dialect.
enum class TokenKind {
  EndOfFile,
  Identifier,
  IntLiteral,
  StringLiteral,

  // Keywords.
  KwClass,
  KwInterface,
  KwExtends,
  KwImplements,
  KwStatic,
  KwVoid,
  KwInt,
  KwBoolean,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwNew,
  KwThis,
  KwTrue,
  KwFalse,
  KwNull,
  KwAssert,
  KwSynchronized,

  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  Semi,
  Comma,
  Dot,
  At,
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Not,
  Lt,
  Gt,
  Le,
  Ge,
  EqEq,
  NotEq,
  AndAnd,
  OrOr,
};

/// Printable name of a token kind (for diagnostics).
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Text carries the identifier spelling, literal value
/// text, or string literal contents (without quotes).
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string Text;
  SourceLocation Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace anek

#endif // ANEK_LANG_TOKEN_H
