//===- Parser.h - MiniJava recursive-descent parser --------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#ifndef ANEK_LANG_PARSER_H
#define ANEK_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <memory>
#include <vector>

namespace anek {

/// Parses MiniJava source into a Program. Error recovery is per-member:
/// a malformed member emits a diagnostic and skips to the next plausible
/// member boundary.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  /// Parses the whole token stream. Always returns a Program; callers
  /// should check Diags.hasErrors().
  std::unique_ptr<Program> parseProgram();

  /// Convenience: lex and parse \p Source in one step.
  static std::unique_ptr<Program> parse(const std::string &Source,
                                        DiagnosticEngine &Diags);

private:
  // Token stream helpers.
  const Token &peek(unsigned Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token advance();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool match(TokenKind Kind);
  /// Consumes a token of \p Kind or reports an error naming \p Context.
  bool expect(TokenKind Kind, const char *Context);
  void skipToMemberBoundary();

  // Declarations.
  std::unique_ptr<TypeDecl> parseTypeDecl(std::vector<RawAnnotation> Annots);
  void parseMember(TypeDecl &Type);
  std::vector<RawAnnotation> parseAnnotations();
  RawAnnotation parseAnnotation();
  TypeRef parseType();
  std::vector<ParamDecl> parseParams();

  // Statements.
  StmtPtr parseStmt();
  std::unique_ptr<BlockStmt> parseBlock();

  // Expressions (precedence climbing).
  ExprPtr parseExpr();
  ExprPtr parseAssignment();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  std::vector<ExprPtr> parseArgs();

  /// True when statement position starts a local variable declaration.
  bool looksLikeVarDecl() const;
  /// Skips a generic argument list starting at offset \p I (which must
  /// point at '<'); returns the offset one past the matching '>', or 0 on
  /// mismatch.
  size_t scanGenericArgs(size_t I) const;

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace anek

#endif // ANEK_LANG_PARSER_H
