//===- Parser.cpp - MiniJava recursive-descent parser ----------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"

#include <cassert>
#include <optional>

using namespace anek;

Parser::Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() &&
         this->Tokens.back().is(TokenKind::EndOfFile) &&
         "token stream must end with EOF");
}

std::unique_ptr<Program> Parser::parse(const std::string &Source,
                                       DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  return P.parseProgram();
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1; // EOF token.
  return Tokens[Index];
}

Token Parser::advance() {
  Token Tok = current();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return Tok;
}

bool Parser::match(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (match(Kind))
    return true;
  Diags.error(current().Loc,
              std::string("expected ") + tokenKindName(Kind) + " in " +
                  Context + ", got " + tokenKindName(current().Kind));
  return false;
}

void Parser::skipToMemberBoundary() {
  unsigned Depth = 0;
  while (!check(TokenKind::EndOfFile)) {
    if (check(TokenKind::LBrace)) {
      ++Depth;
    } else if (check(TokenKind::RBrace)) {
      if (Depth == 0)
        return;
      --Depth;
    } else if (Depth == 0 && check(TokenKind::Semi)) {
      advance();
      return;
    }
    advance();
  }
}

//===----------------------------------------------------------------------===//
// Annotations
//===----------------------------------------------------------------------===//

RawAnnotation Parser::parseAnnotation() {
  RawAnnotation Annot;
  Annot.Loc = current().Loc;
  expect(TokenKind::At, "annotation");
  if (check(TokenKind::Identifier))
    Annot.Name = advance().Text;
  else
    Diags.error(current().Loc, "expected annotation name after '@'");
  if (!match(TokenKind::LParen))
    return Annot; // Marker annotation like @Test.

  // Either named args (ident = "..."), a positional string, or a string
  // list { "...", ... }.
  while (!check(TokenKind::RParen) && !check(TokenKind::EndOfFile)) {
    if (check(TokenKind::Identifier) && peek(1).is(TokenKind::Assign)) {
      std::string Key = advance().Text;
      advance(); // '='
      if (check(TokenKind::StringLiteral))
        Annot.Args[Key] = advance().Text;
      else
        Diags.error(current().Loc, "expected string annotation value");
    } else if (check(TokenKind::StringLiteral)) {
      Annot.Args["value"] = advance().Text;
    } else if (match(TokenKind::LBrace)) {
      while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
        if (check(TokenKind::StringLiteral))
          Annot.ListArgs.push_back(advance().Text);
        else {
          Diags.error(current().Loc, "expected string in annotation list");
          advance();
        }
        if (!match(TokenKind::Comma))
          break;
      }
      expect(TokenKind::RBrace, "annotation list");
    } else {
      Diags.error(current().Loc, "malformed annotation argument");
      advance();
    }
    if (!match(TokenKind::Comma))
      break;
  }
  expect(TokenKind::RParen, "annotation");
  return Annot;
}

std::vector<RawAnnotation> Parser::parseAnnotations() {
  std::vector<RawAnnotation> Annots;
  while (check(TokenKind::At))
    Annots.push_back(parseAnnotation());
  return Annots;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

TypeRef Parser::parseType() {
  TypeRef Type;
  Type.Loc = current().Loc;
  if (match(TokenKind::KwVoid)) {
    Type.Kind = TypeRef::Tag::Void;
    return Type;
  }
  if (match(TokenKind::KwInt)) {
    Type.Kind = TypeRef::Tag::Int;
    return Type;
  }
  if (match(TokenKind::KwBoolean)) {
    Type.Kind = TypeRef::Tag::Boolean;
    return Type;
  }
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected a type name");
    Type.Kind = TypeRef::Tag::Void;
    return Type;
  }
  Type.Kind = TypeRef::Tag::Class;
  Type.Name = advance().Text;
  if (match(TokenKind::Lt)) {
    while (!check(TokenKind::Gt) && !check(TokenKind::EndOfFile)) {
      Type.Args.push_back(parseType());
      if (!match(TokenKind::Comma))
        break;
    }
    expect(TokenKind::Gt, "generic argument list");
  }
  return Type;
}

std::vector<ParamDecl> Parser::parseParams() {
  std::vector<ParamDecl> Params;
  expect(TokenKind::LParen, "parameter list");
  while (!check(TokenKind::RParen) && !check(TokenKind::EndOfFile)) {
    ParamDecl Param;
    Param.Loc = current().Loc;
    Param.Type = parseType();
    if (check(TokenKind::Identifier))
      Param.Name = advance().Text;
    else
      Diags.error(current().Loc, "expected parameter name");
    Params.push_back(std::move(Param));
    if (!match(TokenKind::Comma))
      break;
  }
  expect(TokenKind::RParen, "parameter list");
  return Params;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> Parser::parseProgram() {
  auto Prog = std::make_unique<Program>();
  while (!check(TokenKind::EndOfFile)) {
    std::vector<RawAnnotation> Annots = parseAnnotations();
    if (check(TokenKind::KwClass) || check(TokenKind::KwInterface)) {
      if (auto Type = parseTypeDecl(std::move(Annots)))
        Prog->Types.push_back(std::move(Type));
      continue;
    }
    Diags.error(current().Loc, "expected a class or interface declaration");
    advance();
  }
  return Prog;
}

std::unique_ptr<TypeDecl>
Parser::parseTypeDecl(std::vector<RawAnnotation> Annots) {
  auto Type = std::make_unique<TypeDecl>();
  Type->Annotations = std::move(Annots);
  Type->Loc = current().Loc;
  Type->IsInterface = check(TokenKind::KwInterface);
  advance(); // class/interface keyword.
  if (check(TokenKind::Identifier))
    Type->Name = advance().Text;
  else
    Diags.error(current().Loc, "expected type name");

  if (match(TokenKind::Lt)) {
    while (check(TokenKind::Identifier)) {
      Type->TypeParams.push_back(advance().Text);
      if (!match(TokenKind::Comma))
        break;
    }
    expect(TokenKind::Gt, "type parameter list");
  }

  if (match(TokenKind::KwExtends)) {
    TypeRef Super = parseType();
    if (Type->IsInterface) {
      // Interfaces may extend several interfaces.
      Type->InterfaceNames.push_back(Super.Name);
      while (match(TokenKind::Comma))
        Type->InterfaceNames.push_back(parseType().Name);
    } else {
      Type->SuperName = Super.Name;
    }
  }
  if (match(TokenKind::KwImplements)) {
    Type->InterfaceNames.push_back(parseType().Name);
    while (match(TokenKind::Comma))
      Type->InterfaceNames.push_back(parseType().Name);
  }

  expect(TokenKind::LBrace, "type body");
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile))
    parseMember(*Type);
  expect(TokenKind::RBrace, "type body");
  return Type;
}

void Parser::parseMember(TypeDecl &Type) {
  std::vector<RawAnnotation> Annots = parseAnnotations();
  bool IsStatic = match(TokenKind::KwStatic);
  SourceLocation Loc = current().Loc;

  // Constructor: ClassName '(' ... without a preceding return type.
  if (check(TokenKind::Identifier) && current().Text == Type.Name &&
      peek(1).is(TokenKind::LParen)) {
    auto Method = std::make_unique<MethodDecl>();
    Method->Annotations = std::move(Annots);
    Method->IsStatic = false;
    Method->IsCtor = true;
    Method->ReturnType = TypeRef::classTy(Type.Name);
    Method->Name = advance().Text;
    Method->Params = parseParams();
    Method->Loc = Loc;
    if (check(TokenKind::LBrace))
      Method->Body = parseBlock();
    else
      expect(TokenKind::Semi, "constructor declaration");
    Type.Methods.push_back(std::move(Method));
    return;
  }

  TypeRef DeclType = parseType();
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected member name");
    skipToMemberBoundary();
    return;
  }
  std::string Name = advance().Text;

  if (check(TokenKind::LParen)) {
    auto Method = std::make_unique<MethodDecl>();
    Method->Annotations = std::move(Annots);
    Method->IsStatic = IsStatic;
    Method->ReturnType = std::move(DeclType);
    Method->Name = std::move(Name);
    Method->Params = parseParams();
    Method->Loc = Loc;
    if (check(TokenKind::LBrace))
      Method->Body = parseBlock();
    else
      expect(TokenKind::Semi, "method declaration");
    Type.Methods.push_back(std::move(Method));
    return;
  }

  // Field. Initializers are not supported (the paper's subset has none).
  FieldDecl Field;
  Field.Type = std::move(DeclType);
  Field.Name = std::move(Name);
  Field.Loc = Loc;
  if (!Annots.empty())
    Diags.warning(Loc, "annotations on fields are ignored");
  expect(TokenKind::Semi, "field declaration");
  Type.Fields.push_back(std::move(Field));
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  SourceLocation Loc = current().Loc;
  expect(TokenKind::LBrace, "block");
  std::vector<StmtPtr> Stmts;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    size_t Before = Pos;
    Stmts.push_back(parseStmt());
    if (Pos == Before) // Defensive: guarantee progress on bad input.
      advance();
  }
  expect(TokenKind::RBrace, "block");
  return std::make_unique<BlockStmt>(std::move(Stmts), Loc);
}

size_t Parser::scanGenericArgs(size_t I) const {
  assert(peek(I).is(TokenKind::Lt) && "scanGenericArgs expects '<'");
  unsigned Depth = 0;
  size_t Limit = I + 32; // Generic arg lists are short; bound the scan.
  while (I < Limit) {
    const Token &Tok = peek(I);
    if (Tok.is(TokenKind::EndOfFile))
      return 0;
    if (Tok.is(TokenKind::Lt))
      ++Depth;
    else if (Tok.is(TokenKind::Gt)) {
      --Depth;
      if (Depth == 0)
        return I + 1;
    } else if (!Tok.is(TokenKind::Identifier) && !Tok.is(TokenKind::Comma) &&
               !Tok.is(TokenKind::KwInt) && !Tok.is(TokenKind::KwBoolean)) {
      return 0; // Not a generic argument list after all.
    }
    ++I;
  }
  return 0;
}

bool Parser::looksLikeVarDecl() const {
  if (check(TokenKind::KwInt) || check(TokenKind::KwBoolean))
    return peek(1).is(TokenKind::Identifier);
  if (!check(TokenKind::Identifier))
    return false;
  // `Foo x ...`
  if (peek(1).is(TokenKind::Identifier))
    return true;
  // `Foo<T> x ...` — distinguish from `a < b`.
  if (peek(1).is(TokenKind::Lt)) {
    size_t After = scanGenericArgs(1);
    return After != 0 && peek(static_cast<unsigned>(After))
                             .is(TokenKind::Identifier);
  }
  return false;
}

StmtPtr Parser::parseStmt() {
  SourceLocation Loc = current().Loc;

  if (check(TokenKind::LBrace))
    return parseBlock();

  if (match(TokenKind::KwIf)) {
    expect(TokenKind::LParen, "if statement");
    ExprPtr Cond = parseExpr();
    expect(TokenKind::RParen, "if statement");
    StmtPtr Then = parseStmt();
    StmtPtr Else;
    if (match(TokenKind::KwElse))
      Else = parseStmt();
    return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else), Loc);
  }

  if (match(TokenKind::KwWhile)) {
    expect(TokenKind::LParen, "while statement");
    ExprPtr Cond = parseExpr();
    expect(TokenKind::RParen, "while statement");
    StmtPtr Body = parseStmt();
    return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
  }

  if (match(TokenKind::KwReturn)) {
    ExprPtr Value;
    if (!check(TokenKind::Semi))
      Value = parseExpr();
    expect(TokenKind::Semi, "return statement");
    return std::make_unique<ReturnStmt>(std::move(Value), Loc);
  }

  if (match(TokenKind::KwAssert)) {
    // Accept both `assert e;` and `assert(e);`.
    bool Paren = match(TokenKind::LParen);
    ExprPtr Cond = parseExpr();
    if (Paren)
      expect(TokenKind::RParen, "assert statement");
    expect(TokenKind::Semi, "assert statement");
    return std::make_unique<AssertStmt>(std::move(Cond), Loc);
  }

  if (match(TokenKind::KwSynchronized)) {
    expect(TokenKind::LParen, "synchronized statement");
    ExprPtr Target = parseExpr();
    expect(TokenKind::RParen, "synchronized statement");
    StmtPtr Body = parseBlock();
    return std::make_unique<SynchronizedStmt>(std::move(Target),
                                              std::move(Body), Loc);
  }

  if (looksLikeVarDecl()) {
    TypeRef Type = parseType();
    std::string Name = advance().Text;
    ExprPtr Init;
    if (match(TokenKind::Assign))
      Init = parseExpr();
    expect(TokenKind::Semi, "variable declaration");
    return std::make_unique<VarDeclStmt>(std::move(Type), std::move(Name),
                                         std::move(Init), Loc);
  }

  ExprPtr E = parseExpr();
  expect(TokenKind::Semi, "expression statement");
  return std::make_unique<ExprStmt>(std::move(E), Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() { return parseAssignment(); }

ExprPtr Parser::parseAssignment() {
  ExprPtr Lhs = parseBinary(0);
  if (!check(TokenKind::Assign))
    return Lhs;
  SourceLocation Loc = current().Loc;
  advance();
  ExprPtr Rhs = parseAssignment(); // Right-associative.
  if (!isa<VarRefExpr>(Lhs.get()) && !isa<FieldReadExpr>(Lhs.get()))
    Diags.error(Loc, "assignment target must be a variable or field");
  return std::make_unique<AssignExpr>(std::move(Lhs), std::move(Rhs), Loc);
}

/// Binding strengths for binary operators; higher binds tighter.
static int binaryPrec(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::OrOr:
    return 1;
  case TokenKind::AndAnd:
    return 2;
  case TokenKind::EqEq:
  case TokenKind::NotEq:
    return 3;
  case TokenKind::Lt:
  case TokenKind::Gt:
  case TokenKind::Le:
  case TokenKind::Ge:
    return 4;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 5;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 6;
  default:
    return -1;
  }
}

static std::optional<BinaryOp> binaryOpFor(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::OrOr:
    return BinaryOp::Or;
  case TokenKind::AndAnd:
    return BinaryOp::And;
  case TokenKind::EqEq:
    return BinaryOp::Eq;
  case TokenKind::NotEq:
    return BinaryOp::Ne;
  case TokenKind::Lt:
    return BinaryOp::Lt;
  case TokenKind::Gt:
    return BinaryOp::Gt;
  case TokenKind::Le:
    return BinaryOp::Le;
  case TokenKind::Ge:
    return BinaryOp::Ge;
  case TokenKind::Plus:
    return BinaryOp::Add;
  case TokenKind::Minus:
    return BinaryOp::Sub;
  case TokenKind::Star:
    return BinaryOp::Mul;
  case TokenKind::Slash:
    return BinaryOp::Div;
  case TokenKind::Percent:
    return BinaryOp::Rem;
  default:
    // Not a binary operator. binaryPrec() gates what reaches here, but a
    // parser must never abort on token-stream surprises: the caller emits
    // a diagnostic and recovers.
    return std::nullopt;
  }
}

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr Lhs = parseUnary();
  while (true) {
    int Prec = binaryPrec(current().Kind);
    if (Prec < 0 || Prec < MinPrec)
      return Lhs;
    Token Op = advance();
    std::optional<BinaryOp> Kind = binaryOpFor(Op.Kind);
    if (!Kind) {
      Diags.error(Op.Loc, std::string("'") + tokenKindName(Op.Kind) +
                              "' is not a binary operator");
      return Lhs;
    }
    ExprPtr Rhs = parseBinary(Prec + 1);
    Lhs = std::make_unique<BinaryExpr>(*Kind, std::move(Lhs),
                                       std::move(Rhs), Op.Loc);
  }
}

ExprPtr Parser::parseUnary() {
  SourceLocation Loc = current().Loc;
  if (match(TokenKind::Not))
    return std::make_unique<UnaryExpr>(UnaryOp::Not, parseUnary(), Loc);
  if (match(TokenKind::Minus))
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, parseUnary(), Loc);
  return parsePostfix();
}

std::vector<ExprPtr> Parser::parseArgs() {
  std::vector<ExprPtr> Args;
  expect(TokenKind::LParen, "argument list");
  while (!check(TokenKind::RParen) && !check(TokenKind::EndOfFile)) {
    Args.push_back(parseExpr());
    if (!match(TokenKind::Comma))
      break;
  }
  expect(TokenKind::RParen, "argument list");
  return Args;
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  while (check(TokenKind::Dot)) {
    SourceLocation Loc = current().Loc;
    advance();
    if (!check(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected member name after '.'");
      return E;
    }
    std::string Name = advance().Text;
    if (check(TokenKind::LParen)) {
      std::vector<ExprPtr> Args = parseArgs();
      E = std::make_unique<CallExpr>(std::move(E), std::move(Name),
                                     std::move(Args), Loc);
    } else {
      E = std::make_unique<FieldReadExpr>(std::move(E), std::move(Name), Loc);
    }
  }
  return E;
}

ExprPtr Parser::parsePrimary() {
  SourceLocation Loc = current().Loc;

  if (match(TokenKind::KwThis))
    return std::make_unique<ThisExpr>(Loc);

  if (match(TokenKind::KwNew)) {
    TypeRef Type = parseType();
    std::vector<ExprPtr> Args = parseArgs();
    return std::make_unique<NewExpr>(std::move(Type), std::move(Args), Loc);
  }

  if (check(TokenKind::IntLiteral)) {
    long Value = std::stol(advance().Text);
    return std::make_unique<IntLitExpr>(Value, Loc);
  }
  if (match(TokenKind::KwTrue))
    return std::make_unique<BoolLitExpr>(true, Loc);
  if (match(TokenKind::KwFalse))
    return std::make_unique<BoolLitExpr>(false, Loc);
  if (match(TokenKind::KwNull))
    return std::make_unique<NullLitExpr>(Loc);
  if (check(TokenKind::StringLiteral))
    return std::make_unique<StringLitExpr>(advance().Text, Loc);

  if (match(TokenKind::LParen)) {
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "parenthesized expression");
    return E;
  }

  if (check(TokenKind::Identifier)) {
    std::string Name = advance().Text;
    if (check(TokenKind::LParen)) {
      // Unqualified call: implicit `this` receiver (or a static method of
      // the enclosing class; Sema decides).
      std::vector<ExprPtr> Args = parseArgs();
      return std::make_unique<CallExpr>(nullptr, std::move(Name),
                                        std::move(Args), Loc);
    }
    return std::make_unique<VarRefExpr>(std::move(Name), Loc);
  }

  Diags.error(Loc, std::string("expected an expression, got ") +
                       tokenKindName(current().Kind));
  advance();
  return std::make_unique<NullLitExpr>(Loc);
}
