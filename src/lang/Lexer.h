//===- Lexer.h - MiniJava lexer ----------------------------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#ifndef ANEK_LANG_LEXER_H
#define ANEK_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace anek {

/// Turns a MiniJava source buffer into tokens. Comments (// and /* */) and
/// whitespace are skipped. The token stream always ends with EndOfFile.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes the whole buffer. On a lexical error a diagnostic is emitted
  /// and the offending character skipped.
  std::vector<Token> lexAll();

private:
  Token lexToken();
  void skipTrivia();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLocation here() const { return SourceLocation(Line, Column); }

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace anek

#endif // ANEK_LANG_LEXER_H
