//===- PrettyPrinter.h - Render MiniJava ASTs back to source -----*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a Program back to MiniJava source. This is the reproduction of
/// the paper's "Eclipse Applier" (Fig. 10): after inference, methods can
/// be printed with their inferred @Perm annotations applied.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_LANG_PRETTYPRINTER_H
#define ANEK_LANG_PRETTYPRINTER_H

#include "lang/Ast.h"

#include <functional>
#include <string>

namespace anek {

/// Options controlling the printed output.
struct PrintOptions {
  /// When set, called per method to obtain the spec to print; when it
  /// returns an empty spec, no @Perm annotation is emitted. When unset,
  /// each method's DeclaredSpec is printed (if explicitly annotated).
  std::function<MethodSpec(const MethodDecl &)> SpecFor;
  /// Indentation width in spaces.
  unsigned Indent = 2;
};

/// Prints a whole program.
std::string printProgram(const Program &Prog, const PrintOptions &Opts = {});

/// Prints one expression (used in diagnostics and tests).
std::string printExpr(const Expr &E);

/// Prints one statement subtree at the given indentation level.
std::string printStmt(const Stmt &S, const PrintOptions &Opts = {},
                      unsigned Level = 0);

} // namespace anek

#endif // ANEK_LANG_PRETTYPRINTER_H
