//===- Sema.cpp - MiniJava semantic analysis -------------------------------===//

#include "lang/Sema.h"

#include "lang/Parser.h"
#include "support/Trace.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace anek;

namespace {

/// Implements the analysis passes; one instance per program.
class SemaImpl {
public:
  SemaImpl(Program &Prog, DiagnosticEngine &Diags)
      : Prog(Prog), Diags(Diags) {}

  bool run();

private:
  void resolveHierarchy();
  void buildStateSpace(TypeDecl &Type);
  void attachSpecs(TypeDecl &Type, MethodDecl &Method);
  void analyzeMethod(MethodDecl &Method);

  // Body analysis.
  void visitStmt(Stmt *S);
  void visitExpr(Expr *E);
  ExprType typeOfClass(TypeDecl *Decl) {
    ExprType T;
    T.Kind = TypeRef::Tag::Class;
    T.Decl = Decl;
    return T;
  }
  ExprType typeOfRef(const TypeRef &Ref);
  TypeDecl *resolveClassName(const std::string &Name, SourceLocation Loc);

  // Scope management for locals.
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  VarDeclStmt *lookupLocal(const std::string &Name);

  Program &Prog;
  DiagnosticEngine &Diags;
  TypeDecl *CurType = nullptr;
  MethodDecl *CurMethod = nullptr;
  std::vector<std::unordered_map<std::string, VarDeclStmt *>> Scopes;
  std::unordered_set<const TypeDecl *> StatesBuilt;
};

} // namespace

TypeDecl *SemaImpl::resolveClassName(const std::string &Name,
                                     SourceLocation Loc) {
  // Generic type parameters erase to Object (the analysis is
  // monomorphic, matching the paper's treatment of Java generics).
  if (CurType) {
    for (const std::string &Param : CurType->TypeParams)
      if (Param == Name)
        return resolveClassName("Object", Loc);
  }
  // `String` and `Object` are ambient library classes; synthesize them on
  // first use so programs need not declare them.
  if (TypeDecl *Decl = Prog.findType(Name))
    return Decl;
  if (Name == "String" || Name == "Object" || Name == "Integer") {
    auto Ambient = std::make_unique<TypeDecl>();
    Ambient->Name = Name;
    Ambient->Loc = SourceLocation();
    TypeDecl *Raw = Ambient.get();
    Prog.Types.push_back(std::move(Ambient));
    return Raw;
  }
  Diags.error(Loc, "unknown type '" + Name + "'");
  return nullptr;
}

void SemaImpl::resolveHierarchy() {
  for (const auto &Type : Prog.Types) {
    if (!Type->SuperName.empty()) {
      Type->Super = resolveClassName(Type->SuperName, Type->Loc);
      if (Type->Super == Type.get()) {
        Diags.error(Type->Loc, "type '" + Type->Name + "' extends itself");
        Type->Super = nullptr;
      }
    }
    for (const std::string &Name : Type->InterfaceNames)
      if (TypeDecl *Iface = resolveClassName(Name, Type->Loc))
        Type->Interfaces.push_back(Iface);
  }
}

void SemaImpl::buildStateSpace(TypeDecl &Type) {
  if (StatesBuilt.count(&Type))
    return;
  StatesBuilt.insert(&Type);

  // Inherit the supertype spaces first.
  auto InheritFrom = [&](TypeDecl *Parent) {
    if (!Parent)
      return;
    buildStateSpace(*Parent);
    for (StateId Id = 1, E = Parent->States.size(); Id != E; ++Id) {
      StateId ParentOfId = Parent->States.parent(Id);
      // Parent chains are topologically ordered (parents precede
      // children), so the parent name is already present.
      StateId Mapped = StateSpace::AliveId;
      if (ParentOfId != StateSpace::AliveId)
        Mapped = *Type.States.find(Parent->States.name(ParentOfId));
      Type.States.addState(Parent->States.name(Id), Mapped);
    }
  };
  InheritFrom(Type.Super);
  for (TypeDecl *Iface : Type.Interfaces)
    InheritFrom(Iface);

  for (const RawAnnotation &Annot : Type.Annotations) {
    if (Annot.Name != "States")
      continue;
    StateId Parent = StateSpace::AliveId;
    const std::string &Refines = Annot.arg("refines");
    if (!Refines.empty()) {
      if (std::optional<StateId> Found = Type.States.find(Refines))
        Parent = *Found;
      else
        Diags.error(Annot.Loc, "@States refines unknown state '" + Refines +
                                   "'");
    }
    for (const std::string &Name : Annot.ListArgs)
      Type.States.addState(Name, Parent);
  }
}

void SemaImpl::attachSpecs(TypeDecl &Type, MethodDecl &Method) {
  Method.Owner = &Type;
  Method.DeclaredSpec.resizeParams(static_cast<unsigned>(
      Method.Params.size()));
  std::vector<std::string> ParamNames = Method.paramNames();

  for (const RawAnnotation &Annot : Method.Annotations) {
    if (Annot.Name == "Test") {
      Method.IsTest = true;
      continue;
    }
    if (Annot.Name == "TrueIndicates") {
      Method.DeclaredSpec.TrueIndicates = Annot.arg("value");
      continue;
    }
    if (Annot.Name == "FalseIndicates") {
      Method.DeclaredSpec.FalseIndicates = Annot.arg("value");
      continue;
    }
    if (Annot.Name != "Perm" && Annot.Name != "Spec")
      continue;

    std::string Error;
    auto Requires = parseSpecAtoms(Annot.arg("requires"), ParamNames, Error);
    if (!Requires) {
      Diags.error(Annot.Loc, "in requires: " + Error);
      continue;
    }
    auto Ensures = parseSpecAtoms(Annot.arg("ensures"), ParamNames, Error);
    if (!Ensures) {
      Diags.error(Annot.Loc, "in ensures: " + Error);
      continue;
    }
    std::optional<MethodSpec> Spec =
        buildMethodSpec(*Requires, *Ensures,
                        static_cast<unsigned>(Method.Params.size()), Error);
    if (!Spec) {
      Diags.error(Annot.Loc, Error);
      continue;
    }
    // Keep indicator annotations that may already have been attached.
    Spec->TrueIndicates = Method.DeclaredSpec.TrueIndicates;
    Spec->FalseIndicates = Method.DeclaredSpec.FalseIndicates;
    Method.DeclaredSpec = std::move(*Spec);
    Method.HasDeclaredSpec = true;
  }

  // Validate state names against the relevant state spaces.
  auto CheckState = [&](const std::optional<PermState> &PS, TypeDecl *Subject,
                        const char *What) {
    if (!PS || PS->State.empty() || !Subject)
      return;
    if (!Subject->States.find(PS->State))
      Diags.warning(Method.Loc, "spec for " + Method.qualifiedName() +
                                    " names state '" + PS->State +
                                    "' unknown to " + Subject->Name + " (" +
                                    What + ")");
  };
  CheckState(Method.DeclaredSpec.ReceiverPre, &Type, "receiver pre");
  CheckState(Method.DeclaredSpec.ReceiverPost, &Type, "receiver post");
}

ExprType SemaImpl::typeOfRef(const TypeRef &Ref) {
  ExprType T;
  T.Kind = Ref.Kind;
  if (Ref.isClass())
    T.Decl = Ref.Decl;
  return T;
}

VarDeclStmt *SemaImpl::lookupLocal(const std::string &Name) {
  for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

void SemaImpl::visitExpr(Expr *E) {
  assert(E && "visiting null expression");
  switch (E->getKind()) {
  case Expr::Kind::VarRef: {
    auto *Ref = cast<VarRefExpr>(E);
    if (VarDeclStmt *Local = lookupLocal(Ref->Name)) {
      Ref->Binding = VarRefBinding::Local;
      Ref->LocalDecl = Local;
      Ref->Type = typeOfRef(Local->Type);
      return;
    }
    for (unsigned I = 0, N = static_cast<unsigned>(CurMethod->Params.size());
         I != N; ++I) {
      if (CurMethod->Params[I].Name == Ref->Name) {
        Ref->Binding = VarRefBinding::Param;
        Ref->ParamIndex = I;
        Ref->Type = typeOfRef(CurMethod->Params[I].Type);
        return;
      }
    }
    if (const FieldDecl *Field = CurMethod->Owner->findField(Ref->Name)) {
      Ref->Binding = VarRefBinding::FieldOfThis;
      Ref->Type = typeOfRef(Field->Type);
      return;
    }
    Diags.error(Ref->getLoc(), "unknown name '" + Ref->Name + "' in " +
                                   CurMethod->qualifiedName());
    return;
  }
  case Expr::Kind::This:
    E->Type = typeOfClass(CurMethod->Owner);
    return;
  case Expr::Kind::FieldRead: {
    auto *Read = cast<FieldReadExpr>(E);
    visitExpr(Read->Base.get());
    if (!Read->Base->Type.isClass() || !Read->Base->Type.Decl)
      return; // Already diagnosed or untyped.
    const FieldDecl *Field =
        Read->Base->Type.Decl->findField(Read->FieldName);
    if (!Field) {
      Diags.error(Read->getLoc(), "type '" + Read->Base->Type.Decl->Name +
                                      "' has no field '" + Read->FieldName +
                                      "'");
      return;
    }
    Read->Type = typeOfRef(Field->Type);
    return;
  }
  case Expr::Kind::Call: {
    auto *Call = cast<CallExpr>(E);
    TypeDecl *ReceiverType = nullptr;
    if (Call->Base) {
      visitExpr(Call->Base.get());
      ReceiverType = Call->Base->Type.Decl;
      if (!Call->Base->Type.isClass()) {
        Diags.error(Call->getLoc(),
                    "method call on a non-object value in " +
                        CurMethod->qualifiedName());
      }
    } else {
      ReceiverType = CurMethod->Owner;
    }
    for (const ExprPtr &Arg : Call->Args)
      visitExpr(Arg.get());
    if (!ReceiverType)
      return;
    Call->Callee = ReceiverType->findMethod(
        Call->MethodName, static_cast<unsigned>(Call->Args.size()));
    if (!Call->Callee) {
      Diags.error(Call->getLoc(), "no method '" + Call->MethodName + "/" +
                                      std::to_string(Call->Args.size()) +
                                      "' on type '" + ReceiverType->Name +
                                      "'");
      return;
    }
    E->Type = typeOfRef(Call->Callee->ReturnType);
    return;
  }
  case Expr::Kind::New: {
    auto *New = cast<NewExpr>(E);
    for (const ExprPtr &Arg : New->Args)
      visitExpr(Arg.get());
    TypeDecl *Decl = resolveClassName(New->ClassType.Name, New->getLoc());
    New->ClassType.Decl = Decl;
    if (Decl) {
      if (Decl->IsInterface)
        Diags.error(New->getLoc(),
                    "cannot instantiate interface '" + Decl->Name + "'");
      for (const auto &M : Decl->Methods)
        if (M->IsCtor && M->Params.size() == New->Args.size())
          New->Ctor = M.get();
      E->Type = typeOfClass(Decl);
    }
    return;
  }
  case Expr::Kind::Assign: {
    auto *Assign = cast<AssignExpr>(E);
    visitExpr(Assign->Rhs.get());
    visitExpr(Assign->Lhs.get());
    E->Type = Assign->Lhs->Type;
    return;
  }
  case Expr::Kind::IntLit:
    E->Type.Kind = TypeRef::Tag::Int;
    return;
  case Expr::Kind::BoolLit:
    E->Type.Kind = TypeRef::Tag::Boolean;
    return;
  case Expr::Kind::StringLit:
    E->Type = typeOfClass(resolveClassName("String", E->getLoc()));
    return;
  case Expr::Kind::NullLit:
    E->Type.Kind = TypeRef::Tag::Class; // Null inhabits any class type.
    E->Type.Decl = nullptr;
    return;
  case Expr::Kind::Binary: {
    auto *Bin = cast<BinaryExpr>(E);
    visitExpr(Bin->Lhs.get());
    visitExpr(Bin->Rhs.get());
    switch (Bin->Op) {
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Gt:
    case BinaryOp::Le:
    case BinaryOp::Ge:
    case BinaryOp::And:
    case BinaryOp::Or:
      E->Type.Kind = TypeRef::Tag::Boolean;
      break;
    default:
      // String concatenation propagates String; everything else is int.
      if (Bin->Op == BinaryOp::Add && Bin->Lhs->Type.isClass())
        E->Type = Bin->Lhs->Type;
      else
        E->Type.Kind = TypeRef::Tag::Int;
      break;
    }
    return;
  }
  case Expr::Kind::Unary: {
    auto *Un = cast<UnaryExpr>(E);
    visitExpr(Un->Operand.get());
    E->Type.Kind = Un->Op == UnaryOp::Not ? TypeRef::Tag::Boolean
                                          : TypeRef::Tag::Int;
    return;
  }
  }
}

void SemaImpl::visitStmt(Stmt *S) {
  assert(S && "visiting null statement");
  switch (S->getKind()) {
  case Stmt::Kind::Block: {
    pushScope();
    for (const StmtPtr &Inner : cast<BlockStmt>(S)->Stmts)
      visitStmt(Inner.get());
    popScope();
    return;
  }
  case Stmt::Kind::VarDecl: {
    auto *Decl = cast<VarDeclStmt>(S);
    if (Decl->Type.isClass())
      Decl->Type.Decl = resolveClassName(Decl->Type.Name, Decl->getLoc());
    if (Decl->Init)
      visitExpr(Decl->Init.get());
    if (lookupLocal(Decl->Name))
      Diags.error(Decl->getLoc(),
                  "redeclaration of local '" + Decl->Name + "'");
    assert(!Scopes.empty() && "variable declared outside any scope");
    Scopes.back()[Decl->Name] = Decl;
    return;
  }
  case Stmt::Kind::If: {
    auto *If = cast<IfStmt>(S);
    visitExpr(If->Cond.get());
    visitStmt(If->Then.get());
    if (If->Else)
      visitStmt(If->Else.get());
    return;
  }
  case Stmt::Kind::While: {
    auto *While = cast<WhileStmt>(S);
    visitExpr(While->Cond.get());
    visitStmt(While->Body.get());
    return;
  }
  case Stmt::Kind::Return: {
    auto *Ret = cast<ReturnStmt>(S);
    if (Ret->Value)
      visitExpr(Ret->Value.get());
    return;
  }
  case Stmt::Kind::Assert:
    visitExpr(cast<AssertStmt>(S)->Cond.get());
    return;
  case Stmt::Kind::Synchronized: {
    auto *Sync = cast<SynchronizedStmt>(S);
    visitExpr(Sync->Target.get());
    visitStmt(Sync->Body.get());
    return;
  }
  case Stmt::Kind::ExprStmt:
    visitExpr(cast<ExprStmt>(S)->E.get());
    return;
  }
}

void SemaImpl::analyzeMethod(MethodDecl &Method) {
  if (!Method.Body)
    return;
  CurMethod = &Method;
  // Resolve parameter types.
  for (ParamDecl &Param : Method.Params)
    if (Param.Type.isClass())
      Param.Type.Decl = resolveClassName(Param.Type.Name, Param.Loc);
  if (Method.ReturnType.isClass())
    Method.ReturnType.Decl =
        resolveClassName(Method.ReturnType.Name, Method.Loc);
  Scopes.clear();
  pushScope();
  visitStmt(Method.Body.get());
  popScope();
  CurMethod = nullptr;
}

bool SemaImpl::run() {
  resolveHierarchy();
  // Note: resolveClassName may append ambient types while we iterate, so
  // index-based loops are required here.
  for (size_t I = 0; I < Prog.Types.size(); ++I)
    buildStateSpace(*Prog.Types[I]);
  for (size_t I = 0; I < Prog.Types.size(); ++I) {
    TypeDecl &Type = *Prog.Types[I];
    CurType = &Type;
    for (FieldDecl &Field : Type.Fields)
      if (Field.Type.isClass() && !Field.Type.Decl)
        Field.Type.Decl = resolveClassName(Field.Type.Name, Field.Loc);
    for (const auto &Method : Type.Methods)
      attachSpecs(Type, *Method);
    CurType = nullptr;
  }
  for (size_t I = 0; I < Prog.Types.size(); ++I) {
    TypeDecl &Type = *Prog.Types[I];
    CurType = &Type;
    for (const auto &Method : Type.Methods) {
      // Resolve signature types even for bodiless methods, so specs and
      // call-site reasoning see resolved parameter/return classes.
      for (ParamDecl &Param : Method->Params)
        if (Param.Type.isClass() && !Param.Type.Decl)
          Param.Type.Decl = resolveClassName(Param.Type.Name, Param.Loc);
      if (Method->ReturnType.isClass() && !Method->ReturnType.Decl)
        Method->ReturnType.Decl =
            resolveClassName(Method->ReturnType.Name, Method->Loc);
      analyzeMethod(*Method);
    }
    CurType = nullptr;
  }
  // Number every method in declaration order (ambient types appended by
  // resolveClassName included). DeclIndexLess keys on this so downstream
  // iteration order never depends on pointer values.
  unsigned NextIndex = 0;
  for (const auto &Type : Prog.Types)
    for (const auto &Method : Type->Methods)
      Method->DeclIndex = NextIndex++;
  return !Diags.hasErrors();
}

bool anek::runSema(Program &Prog, DiagnosticEngine &Diags) {
  SemaImpl Impl(Prog, Diags);
  return Impl.run();
}

std::unique_ptr<Program> anek::parseAndAnalyze(const std::string &Source,
                                               DiagnosticEngine &Diags) {
  std::unique_ptr<Program> Prog;
  {
    // Lexing is interleaved with parsing (the parser pulls tokens on
    // demand), so this span covers both; frontend.tokens counts the lex
    // side on its own.
    telemetry::Span S("frontend.parse", telemetry::TraceLevel::Phase,
                      "frontend");
    if (S.active())
      S.arg("bytes", static_cast<uint64_t>(Source.size()));
    Prog = Parser::parse(Source, Diags);
  }
  if (Diags.hasErrors())
    return nullptr;
  telemetry::Span S("frontend.sema", telemetry::TraceLevel::Phase,
                    "frontend");
  if (!runSema(*Prog, Diags))
    return nullptr;
  if (S.active())
    S.arg("types", static_cast<uint64_t>(Prog->Types.size()));
  return Prog;
}
