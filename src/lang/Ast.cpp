//===- Ast.cpp - MiniJava abstract syntax trees ----------------------------===//

#include "lang/Ast.h"

using namespace anek;

// Out-of-line virtual anchors keep the vtables in one object file.
Expr::~Expr() = default;
Stmt::~Stmt() = default;

std::string TypeRef::str() const {
  switch (Kind) {
  case Tag::Void:
    return "void";
  case Tag::Int:
    return "int";
  case Tag::Boolean:
    return "boolean";
  case Tag::Class:
    break;
  }
  std::string Out = Name;
  if (!Args.empty()) {
    Out += "<";
    for (size_t I = 0, E = Args.size(); I != E; ++I) {
      if (I != 0)
        Out += ", ";
      Out += Args[I].str();
    }
    Out += ">";
  }
  return Out;
}

const std::string &RawAnnotation::arg(const std::string &Key) const {
  static const std::string Empty;
  auto It = Args.find(Key);
  return It != Args.end() ? It->second : Empty;
}

std::vector<std::string> MethodDecl::paramNames() const {
  std::vector<std::string> Names;
  Names.reserve(Params.size());
  for (const ParamDecl &P : Params)
    Names.push_back(P.Name);
  return Names;
}

std::string MethodDecl::qualifiedName() const {
  std::string Out = Owner ? Owner->Name : std::string("<unknown>");
  Out += ".";
  Out += Name;
  return Out;
}

const FieldDecl *TypeDecl::findField(const std::string &Name) const {
  for (const FieldDecl &F : Fields)
    if (F.Name == Name)
      return &F;
  if (Super)
    return Super->findField(Name);
  return nullptr;
}

MethodDecl *TypeDecl::findMethod(const std::string &Name,
                                 unsigned Arity) const {
  for (const auto &M : Methods)
    if (!M->IsCtor && M->Name == Name && M->Params.size() == Arity)
      return M.get();
  if (Super)
    if (MethodDecl *M = Super->findMethod(Name, Arity))
      return M;
  for (TypeDecl *Iface : Interfaces)
    if (MethodDecl *M = Iface->findMethod(Name, Arity))
      return M;
  return nullptr;
}

bool TypeDecl::isSubtypeOf(const TypeDecl *Other) const {
  if (this == Other)
    return true;
  if (Super && Super->isSubtypeOf(Other))
    return true;
  for (const TypeDecl *Iface : Interfaces)
    if (Iface->isSubtypeOf(Other))
      return true;
  return false;
}

TypeDecl *Program::findType(const std::string &Name) const {
  for (const auto &T : Types)
    if (T->Name == Name)
      return T.get();
  return nullptr;
}

std::vector<MethodDecl *> Program::methodsWithBodies() const {
  std::vector<MethodDecl *> Result;
  for (const auto &T : Types)
    for (const auto &M : T->Methods)
      if (M->Body)
        Result.push_back(M.get());
  return Result;
}
