//===- PrettyPrinter.cpp - Render MiniJava ASTs back to source -------------===//

#include "lang/PrettyPrinter.h"

#include <cassert>

using namespace anek;

static const char *binaryOpText(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}

std::string anek::printExpr(const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::VarRef:
    return cast<VarRefExpr>(&E)->Name;
  case Expr::Kind::This:
    return "this";
  case Expr::Kind::FieldRead: {
    const auto *Read = cast<FieldReadExpr>(&E);
    return printExpr(*Read->Base) + "." + Read->FieldName;
  }
  case Expr::Kind::Call: {
    const auto *Call = cast<CallExpr>(&E);
    std::string Out =
        Call->Base ? printExpr(*Call->Base) + "." : std::string();
    Out += Call->MethodName;
    Out += "(";
    for (size_t I = 0, N = Call->Args.size(); I != N; ++I) {
      if (I != 0)
        Out += ", ";
      Out += printExpr(*Call->Args[I]);
    }
    Out += ")";
    return Out;
  }
  case Expr::Kind::New: {
    const auto *New = cast<NewExpr>(&E);
    std::string Out = "new " + New->ClassType.str() + "(";
    for (size_t I = 0, N = New->Args.size(); I != N; ++I) {
      if (I != 0)
        Out += ", ";
      Out += printExpr(*New->Args[I]);
    }
    Out += ")";
    return Out;
  }
  case Expr::Kind::Assign: {
    const auto *Assign = cast<AssignExpr>(&E);
    return printExpr(*Assign->Lhs) + " = " + printExpr(*Assign->Rhs);
  }
  case Expr::Kind::IntLit:
    return std::to_string(cast<IntLitExpr>(&E)->Value);
  case Expr::Kind::BoolLit:
    return cast<BoolLitExpr>(&E)->Value ? "true" : "false";
  case Expr::Kind::StringLit:
    return "\"" + cast<StringLitExpr>(&E)->Value + "\"";
  case Expr::Kind::NullLit:
    return "null";
  case Expr::Kind::Binary: {
    const auto *Bin = cast<BinaryExpr>(&E);
    return "(" + printExpr(*Bin->Lhs) + " " + binaryOpText(Bin->Op) + " " +
           printExpr(*Bin->Rhs) + ")";
  }
  case Expr::Kind::Unary: {
    const auto *Un = cast<UnaryExpr>(&E);
    return std::string(Un->Op == UnaryOp::Not ? "!" : "-") +
           printExpr(*Un->Operand);
  }
  }
  assert(false && "unknown expression kind");
  return "";
}

static std::string indentOf(const PrintOptions &Opts, unsigned Level) {
  return std::string(static_cast<size_t>(Opts.Indent) * Level, ' ');
}

std::string anek::printStmt(const Stmt &S, const PrintOptions &Opts,
                            unsigned Level) {
  std::string Pad = indentOf(Opts, Level);
  switch (S.getKind()) {
  case Stmt::Kind::Block: {
    std::string Out = Pad + "{\n";
    for (const StmtPtr &Inner : cast<BlockStmt>(&S)->Stmts)
      Out += printStmt(*Inner, Opts, Level + 1);
    Out += Pad + "}\n";
    return Out;
  }
  case Stmt::Kind::VarDecl: {
    const auto *Decl = cast<VarDeclStmt>(&S);
    std::string Out = Pad + Decl->Type.str() + " " + Decl->Name;
    if (Decl->Init)
      Out += " = " + printExpr(*Decl->Init);
    Out += ";\n";
    return Out;
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(&S);
    std::string Out = Pad + "if (" + printExpr(*If->Cond) + ")\n";
    Out += printStmt(*If->Then, Opts, Level + 1);
    if (If->Else) {
      Out += Pad + "else\n";
      Out += printStmt(*If->Else, Opts, Level + 1);
    }
    return Out;
  }
  case Stmt::Kind::While: {
    const auto *While = cast<WhileStmt>(&S);
    return Pad + "while (" + printExpr(*While->Cond) + ")\n" +
           printStmt(*While->Body, Opts, Level + 1);
  }
  case Stmt::Kind::Return: {
    const auto *Ret = cast<ReturnStmt>(&S);
    if (Ret->Value)
      return Pad + "return " + printExpr(*Ret->Value) + ";\n";
    return Pad + "return;\n";
  }
  case Stmt::Kind::Assert:
    return Pad + "assert " + printExpr(*cast<AssertStmt>(&S)->Cond) + ";\n";
  case Stmt::Kind::Synchronized: {
    const auto *Sync = cast<SynchronizedStmt>(&S);
    return Pad + "synchronized (" + printExpr(*Sync->Target) + ")\n" +
           printStmt(*Sync->Body, Opts, Level + 1);
  }
  case Stmt::Kind::ExprStmt:
    return Pad + printExpr(*cast<ExprStmt>(&S)->E) + ";\n";
  }
  assert(false && "unknown statement kind");
  return "";
}

/// Prints the @Perm annotation for \p Spec, if any atom is present.
static std::string printSpecAnnotation(const MethodSpec &Spec,
                                       const std::vector<std::string> &Names,
                                       const std::string &Pad) {
  std::string Requires = printSpecSide(Spec, /*IsRequires=*/true, Names);
  std::string Ensures = printSpecSide(Spec, /*IsRequires=*/false, Names);
  if (Requires.empty() && Ensures.empty())
    return "";
  std::string Out = Pad + "@Perm(";
  if (!Requires.empty())
    Out += "requires=\"" + Requires + "\"";
  if (!Ensures.empty()) {
    if (!Requires.empty())
      Out += ", ";
    Out += "ensures=\"" + Ensures + "\"";
  }
  Out += ")\n";
  return Out;
}

static std::string printMethod(const MethodDecl &Method,
                               const PrintOptions &Opts, unsigned Level) {
  std::string Pad = indentOf(Opts, Level);
  std::string Out;

  MethodSpec Spec = Opts.SpecFor ? Opts.SpecFor(Method)
                    : Method.HasDeclaredSpec ? Method.DeclaredSpec
                                             : MethodSpec();
  Out += printSpecAnnotation(Spec, Method.paramNames(), Pad);
  if (!Spec.TrueIndicates.empty())
    Out += Pad + "@TrueIndicates(\"" + Spec.TrueIndicates + "\")\n";
  if (!Spec.FalseIndicates.empty())
    Out += Pad + "@FalseIndicates(\"" + Spec.FalseIndicates + "\")\n";
  if (Method.IsTest)
    Out += Pad + "@Test\n";

  Out += Pad;
  if (Method.IsStatic)
    Out += "static ";
  if (!Method.IsCtor) {
    Out += Method.ReturnType.str();
    Out += " ";
  }
  Out += Method.Name;
  Out += "(";
  for (size_t I = 0, N = Method.Params.size(); I != N; ++I) {
    if (I != 0)
      Out += ", ";
    Out += Method.Params[I].Type.str() + " " + Method.Params[I].Name;
  }
  Out += ")";
  if (!Method.Body) {
    Out += ";\n";
    return Out;
  }
  Out += "\n";
  Out += printStmt(*Method.Body, Opts, Level);
  return Out;
}

std::string anek::printProgram(const Program &Prog, const PrintOptions &Opts) {
  std::string Out;
  for (const auto &Type : Prog.Types) {
    if (!Type->Loc.isValid() && Type->Methods.empty() && Type->Fields.empty())
      continue; // Skip synthesized ambient types (String, Object).
    if (Type->States.size() > 1) {
      Out += "@States({";
      for (StateId Id = 1, E = Type->States.size(); Id != E; ++Id) {
        if (Id != 1)
          Out += ", ";
        Out += "\"" + Type->States.name(Id) + "\"";
      }
      Out += "})\n";
    }
    Out += Type->IsInterface ? "interface " : "class ";
    Out += Type->Name;
    if (!Type->TypeParams.empty()) {
      Out += "<";
      for (size_t I = 0, N = Type->TypeParams.size(); I != N; ++I) {
        if (I != 0)
          Out += ", ";
        Out += Type->TypeParams[I];
      }
      Out += ">";
    }
    if (!Type->SuperName.empty())
      Out += " extends " + Type->SuperName;
    if (!Type->InterfaceNames.empty()) {
      Out += Type->IsInterface ? " extends " : " implements ";
      for (size_t I = 0, N = Type->InterfaceNames.size(); I != N; ++I) {
        if (I != 0)
          Out += ", ";
        Out += Type->InterfaceNames[I];
      }
    }
    Out += " {\n";
    for (const FieldDecl &Field : Type->Fields)
      Out += indentOf(Opts, 1) + Field.Type.str() + " " + Field.Name + ";\n";
    for (const auto &Method : Type->Methods) {
      Out += printMethod(*Method, Opts, 1);
      Out += "\n";
    }
    Out += "}\n\n";
  }
  return Out;
}
