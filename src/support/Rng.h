//===- Rng.h - Deterministic pseudo-random numbers ---------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded SplitMix64 generator. All randomized components (corpus
/// generation, Gibbs sampling) take one of these so every run of the test
/// and bench suites is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_RNG_H
#define ANEK_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace anek {

/// SplitMix64: tiny, fast, and statistically adequate for workload
/// generation and Gibbs sampling.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound).
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + below(Hi - Lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability \p P.
  bool flip(double P) { return uniform() < P; }

private:
  uint64_t State;
};

} // namespace anek

#endif // ANEK_SUPPORT_RNG_H
