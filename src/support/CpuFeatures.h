//===- CpuFeatures.h - Runtime CPU capability detection ----------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime detection of the SIMD capabilities the solver kernels can
/// dispatch to (src/factor/Kernels.h). Detection is a property of the
/// *host*, not the build: a binary compiled with the AVX2 kernel TU still
/// runs correctly on a pre-AVX2 machine because dispatch consults these
/// predicates before ever touching a vector code path.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_CPUFEATURES_H
#define ANEK_SUPPORT_CPUFEATURES_H

namespace anek {
namespace cpu {

/// True when the host CPU (and OS, via XSAVE state) supports AVX2.
/// Always false off x86-64.
bool hasAvx2();

/// True on aarch64 (NEON/ASIMD is architecturally mandatory there).
/// Always false elsewhere.
bool hasNeon();

} // namespace cpu
} // namespace anek

#endif // ANEK_SUPPORT_CPUFEATURES_H
