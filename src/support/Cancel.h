//===- Cancel.h - Cooperative cancellation token -----------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A first-cancel-wins token for cooperative cancellation. The serving
/// layer's ResourceGovernor cancels a request's token when its deadline or
/// memory budget is exhausted; the inference engine polls cancelled() at
/// wave boundaries (one relaxed atomic load) and aborts the run with the
/// recorded Status instead of being killed mid-solve. See DESIGN.md,
/// "Serving model".
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_CANCEL_H
#define ANEK_SUPPORT_CANCEL_H

#include "support/Status.h"

#include <atomic>
#include <mutex>
#include <string>

namespace anek {

/// Sticky cancellation flag plus the reason that set it. Thread-safe: any
/// thread may cancel, any thread may poll; the first cancel wins and later
/// ones are ignored, so the recorded reason names the original trigger.
class CancelToken {
public:
  CancelToken() = default;
  CancelToken(const CancelToken &) = delete;
  CancelToken &operator=(const CancelToken &) = delete;

  /// Records \p Code/\p Why and trips the flag; a no-op once cancelled.
  void cancel(ErrorCode Code, std::string Why) {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Flag.load(std::memory_order_relaxed))
      return; // First cancel wins.
    this->Code = Code;
    this->Why = std::move(Why);
    Flag.store(true, std::memory_order_release);
  }

  /// One atomic load: the whole cost of a poll on the hot path.
  bool cancelled() const { return Flag.load(std::memory_order_acquire); }

  /// The cancellation reason; ok() while not cancelled.
  Status status() const {
    if (!cancelled())
      return Status::ok();
    std::lock_guard<std::mutex> Lock(Mutex);
    return Status::error(Code, Why);
  }

private:
  std::atomic<bool> Flag{false};
  mutable std::mutex Mutex;
  ErrorCode Code = ErrorCode::Ok;
  std::string Why;
};

} // namespace anek

#endif // ANEK_SUPPORT_CANCEL_H
