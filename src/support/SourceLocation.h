//===- SourceLocation.h - Positions in MiniJava source ----------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column positions used by the lexer, parser, and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_SOURCELOCATION_H
#define ANEK_SUPPORT_SOURCELOCATION_H

#include <cstdint>
#include <string>

namespace anek {

/// A position in a source buffer. Lines and columns are 1-based; a value of
/// zero in both fields denotes an invalid/unknown location.
struct SourceLocation {
  uint32_t Line = 0;
  uint32_t Column = 0;

  SourceLocation() = default;
  SourceLocation(uint32_t Line, uint32_t Column) : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLocation &Other) const = default;

  /// Renders as "line:col" (or "<unknown>" when invalid).
  std::string str() const;
};

inline std::string SourceLocation::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Column);
}

} // namespace anek

#endif // ANEK_SUPPORT_SOURCELOCATION_H
