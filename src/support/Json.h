//===- Json.h - Minimal JSON document reader ---------------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON reader for the telemetry artifacts ANEK
/// itself emits (`anek-trace-v1`, `anek-metrics-v1`, `anek-batch-v1`
/// lines): `anek report` digests a run's artifacts back into a profile,
/// and tests verify exporter output structurally instead of by substring.
///
/// This is a reader for trusted-ish local files, not a validator: it
/// accepts exactly the JSON grammar (objects, arrays, strings with the
/// standard escapes, numbers, true/false/null), fails closed on anything
/// else, and never recurses deeper than a fixed bound so a pathological
/// file cannot blow the stack.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_JSON_H
#define ANEK_SUPPORT_JSON_H

#include <map>
#include <string>
#include <vector>

namespace anek {
namespace json {

/// One parsed JSON value. Lookup helpers return a shared Null value for
/// missing keys, so chained reads of optional fields need no existence
/// checks.
struct Value {
  enum Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Null;
  bool B = false;
  double N = 0.0;
  std::string S;
  std::vector<Value> Items;
  std::map<std::string, Value> Fields;

  bool isNull() const { return K == Null; }
  bool has(const std::string &Key) const { return Fields.count(Key) != 0; }
  /// Object member by key; the Null value when absent or not an object.
  const Value &at(const std::string &Key) const;
  /// The number when K == Number, else \p Fallback.
  double num(double Fallback = 0.0) const {
    return K == Number ? N : Fallback;
  }
  /// The string when K == String, else \p Fallback.
  std::string str(const std::string &Fallback = std::string()) const {
    return K == String ? S : Fallback;
  }
};

/// Parses \p Text as one JSON document (surrounding whitespace allowed,
/// trailing garbage rejected). Returns false — with \p Error describing
/// the byte offset when non-null — on malformed input.
bool parse(const std::string &Text, Value &Out, std::string *Error = nullptr);

} // namespace json
} // namespace anek

#endif // ANEK_SUPPORT_JSON_H
