//===- Subprocess.cpp - Child processes and EINTR-safe pipe I/O ------------===//

#include "support/Subprocess.h"

#include "support/Format.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace anek;
using namespace anek::subprocess;

Status subprocess::readFull(int Fd, void *Buffer, size_t Size) {
  char *Out = static_cast<char *>(Buffer);
  size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::read(Fd, Out + Done, Size - Done);
    if (N > 0) {
      Done += static_cast<size_t>(N);
      continue;
    }
    if (N == 0)
      return Status::error(ErrorCode::WorkerLost,
                           formatStr("pipe closed after %zu of %zu bytes",
                                     Done, Size));
    if (errno == EINTR)
      continue; // A signal is not a failure; resume the read.
    return Status::error(ErrorCode::Internal,
                         formatStr("read failed: %s", std::strerror(errno)));
  }
  return Status::ok();
}

Status subprocess::writeFull(int Fd, const void *Buffer, size_t Size) {
  const char *In = static_cast<const char *>(Buffer);
  size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::write(Fd, In + Done, Size - Done);
    if (N >= 0) {
      Done += static_cast<size_t>(N);
      continue;
    }
    if (errno == EINTR)
      continue;
    if (errno == EPIPE)
      return Status::error(ErrorCode::WorkerLost,
                           formatStr("pipe peer gone after %zu of %zu bytes",
                                     Done, Size));
    return Status::error(ErrorCode::Internal,
                         formatStr("write failed: %s", std::strerror(errno)));
  }
  return Status::ok();
}

Status subprocess::waitReadable(int Fd, double TimeoutSeconds) {
  using Clock = std::chrono::steady_clock;
  // The absolute expiry is fixed up front so EINTR retries re-poll with
  // only the remaining time: a stream of signals shrinks each poll but
  // never extends the total wait.
  const bool Unlimited = TimeoutSeconds < 0.0;
  const Clock::time_point Expiry =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             Unlimited ? 0.0 : TimeoutSeconds));
  for (;;) {
    int TimeoutMs = -1;
    if (!Unlimited) {
      double Remaining =
          std::chrono::duration<double>(Expiry - Clock::now()).count();
      if (Remaining <= 0.0)
        return Status::error(ErrorCode::DeadlineExceeded,
                             "timed out waiting for pipe data");
      // Round up so a sub-millisecond remainder still polls once.
      TimeoutMs = static_cast<int>(Remaining * 1000.0) + 1;
    }
    struct pollfd P;
    P.fd = Fd;
    P.events = POLLIN;
    P.revents = 0;
    int N = ::poll(&P, 1, TimeoutMs);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::error(ErrorCode::Internal,
                           formatStr("poll failed: %s",
                                     std::strerror(errno)));
    }
    if (N == 0)
      return Status::error(ErrorCode::DeadlineExceeded,
                           "timed out waiting for pipe data");
    if (P.revents & POLLIN)
      return Status::ok(); // Data (or EOF readable as 0 bytes) is ready.
    if (P.revents & (POLLHUP | POLLERR | POLLNVAL))
      return Status::error(ErrorCode::WorkerLost, "pipe peer hung up");
  }
}

void subprocess::ignoreSigpipe() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &SA, nullptr);
}

std::string subprocess::selfExePath(const std::string &Fallback) {
  char Buffer[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buffer, sizeof(Buffer) - 1);
  if (N <= 0)
    return Fallback;
  Buffer[N] = '\0';
  return std::string(Buffer);
}

std::string ExitStatus::str() const {
  if (Signalled)
    return formatStr("signal %d", Signal);
  if (Exited)
    return formatStr("exit %d", Code);
  return "unknown";
}

ChildProcess::~ChildProcess() {
  if (Pid > 0 && !Reaped) {
    kill(SIGKILL);
    wait();
  }
  closePipes();
}

ChildProcess::ChildProcess(ChildProcess &&Other) noexcept { *this = std::move(Other); }

ChildProcess &ChildProcess::operator=(ChildProcess &&Other) noexcept {
  if (this == &Other)
    return *this;
  if (Pid > 0 && !Reaped) {
    kill(SIGKILL);
    wait();
  }
  closePipes();
  Pid = Other.Pid;
  ReadFd = Other.ReadFd;
  WriteFd = Other.WriteFd;
  LastExit = Other.LastExit;
  Reaped = Other.Reaped;
  Other.reset();
  return *this;
}

void ChildProcess::reset() {
  Pid = -1;
  ReadFd = -1;
  WriteFd = -1;
  LastExit = ExitStatus();
  Reaped = false;
}

Status ChildProcess::spawn(const std::vector<std::string> &Argv) {
  if (Argv.empty())
    return Status::error(ErrorCode::InvalidArgument, "empty argv");
  if (Pid > 0)
    return Status::error(ErrorCode::InvalidArgument,
                         "child already running");

  int ToChild[2] = {-1, -1};  // Coordinator writes [1], child stdin [0].
  int FromChild[2] = {-1, -1};// Child stdout [1], coordinator reads [0].
  if (::pipe(ToChild) != 0)
    return Status::error(ErrorCode::Internal,
                         formatStr("pipe failed: %s", std::strerror(errno)));
  if (::pipe(FromChild) != 0) {
    ::close(ToChild[0]);
    ::close(ToChild[1]);
    return Status::error(ErrorCode::Internal,
                         formatStr("pipe failed: %s", std::strerror(errno)));
  }

  std::vector<char *> Args;
  Args.reserve(Argv.size() + 1);
  for (const std::string &A : Argv)
    Args.push_back(const_cast<char *>(A.c_str()));
  Args.push_back(nullptr);

  pid_t Child = ::fork();
  if (Child < 0) {
    for (int Fd : {ToChild[0], ToChild[1], FromChild[0], FromChild[1]})
      ::close(Fd);
    return Status::error(ErrorCode::Internal,
                         formatStr("fork failed: %s", std::strerror(errno)));
  }
  if (Child == 0) {
    // Child: only async-signal-safe calls between fork and exec (the
    // parent may be multi-threaded). stderr is deliberately inherited.
    ::dup2(ToChild[0], STDIN_FILENO);
    ::dup2(FromChild[1], STDOUT_FILENO);
    for (int Fd : {ToChild[0], ToChild[1], FromChild[0], FromChild[1]})
      ::close(Fd);
    ::execv(Args[0], Args.data());
    ::_exit(127); // exec failed; the coordinator sees exit 127 = spawn loss.
  }

  ::close(ToChild[0]);
  ::close(FromChild[1]);
  // Close-on-exec on the coordinator ends: a worker forked later must not
  // inherit (and thereby hold open) a sibling's pipes, or that sibling's
  // EOF-based crash detection would hang until every worker exited.
  ::fcntl(ToChild[1], F_SETFD, FD_CLOEXEC);
  ::fcntl(FromChild[0], F_SETFD, FD_CLOEXEC);
  Pid = Child;
  WriteFd = ToChild[1];
  ReadFd = FromChild[0];
  LastExit = ExitStatus();
  Reaped = false;
  return Status::ok();
}

void ChildProcess::kill(int Signal) {
  if (Pid > 0 && !Reaped)
    ::kill(Pid, Signal);
}

std::optional<ExitStatus> ChildProcess::poll() {
  if (Pid <= 0)
    return std::nullopt;
  if (Reaped)
    return LastExit;
  for (;;) {
    int Raw = 0;
    pid_t R = ::waitpid(Pid, &Raw, WNOHANG);
    if (R == 0)
      return std::nullopt; // Still running.
    if (R < 0) {
      if (errno == EINTR)
        continue;
      // ECHILD etc.: treat as ended with unknown status.
      Reaped = true;
      return LastExit;
    }
    LastExit.Exited = WIFEXITED(Raw);
    LastExit.Signalled = WIFSIGNALED(Raw);
    LastExit.Code = LastExit.Exited ? WEXITSTATUS(Raw) : 0;
    LastExit.Signal = LastExit.Signalled ? WTERMSIG(Raw) : 0;
    Reaped = true;
    return LastExit;
  }
}

ExitStatus ChildProcess::wait() {
  if (Pid <= 0 || Reaped)
    return LastExit;
  for (;;) {
    int Raw = 0;
    pid_t R = ::waitpid(Pid, &Raw, 0);
    if (R < 0) {
      if (errno == EINTR)
        continue; // The whole point: signals must not drop the reap.
      Reaped = true;
      return LastExit;
    }
    LastExit.Exited = WIFEXITED(Raw);
    LastExit.Signalled = WIFSIGNALED(Raw);
    LastExit.Code = LastExit.Exited ? WEXITSTATUS(Raw) : 0;
    LastExit.Signal = LastExit.Signalled ? WTERMSIG(Raw) : 0;
    Reaped = true;
    return LastExit;
  }
}

void ChildProcess::closePipes() {
  if (ReadFd >= 0)
    ::close(ReadFd);
  if (WriteFd >= 0)
    ::close(WriteFd);
  ReadFd = -1;
  WriteFd = -1;
}
