//===- CpuFeatures.cpp - Runtime CPU capability detection -------------------===//

#include "support/CpuFeatures.h"

namespace anek {
namespace cpu {

bool hasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  // GCC/Clang's cpu_supports goes through __cpu_indicator_init, which
  // checks both the CPUID feature bit and the OS's XCR0 (so AVX state is
  // actually saved/restored across context switches).
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool hasNeon() {
#if defined(__aarch64__)
  return true;
#else
  return false;
#endif
}

} // namespace cpu
} // namespace anek
