//===- Socket.cpp - Stream sockets for the shard transport ------------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include "support/Subprocess.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace anek;
using namespace anek::sock;

namespace {

Status syscallError(const std::string &What) {
  return Status::error(ErrorCode::Internal,
                       What + ": " + std::strerror(errno));
}

/// Refusal, reset, and unreachability are the transient class: the daemon
/// behind the address may be restarting, and the coordinator's ladder
/// decides how long to keep trying.
Status connectError(const std::string &Address) {
  return Status::error(ErrorCode::WorkerLost,
                       "cannot connect to '" + Address +
                           "': " + std::strerror(errno));
}

void setCloexec(int Fd) { ::fcntl(Fd, F_SETFD, FD_CLOEXEC); }

Status setNonblocking(int Fd, bool On) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0)
    return syscallError("fcntl(F_GETFL)");
  Flags = On ? (Flags | O_NONBLOCK) : (Flags & ~O_NONBLOCK);
  if (::fcntl(Fd, F_SETFL, Flags) < 0)
    return syscallError("fcntl(F_SETFL)");
  return Status::ok();
}

/// Splits "host:port" at the last colon (leaving room for future
/// bracketed-IPv6 growth without eating today's "127.0.0.1:0").
Status splitHostPort(const std::string &Address, std::string &Host,
                     std::string &Port) {
  size_t Colon = Address.rfind(':');
  if (Colon == std::string::npos || Colon == 0 ||
      Colon + 1 == Address.size())
    return Status::error(ErrorCode::InvalidArgument,
                         "bad socket address '" + Address +
                             "' (want host:port or unix:/path)");
  Host = Address.substr(0, Colon);
  Port = Address.substr(Colon + 1);
  return Status::ok();
}

Status fillUnixAddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    return Status::error(ErrorCode::InvalidArgument,
                         "unix socket path '" + Path +
                             "' is empty or too long");
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return Status::ok();
}

/// getaddrinfo for one host:port; the first result wins. Numeric hosts
/// and ports never block on a resolver.
Status resolveTcp(const std::string &Address, addrinfo **Out) {
  std::string Host, Port;
  if (Status S = splitHostPort(Address, Host, Port); !S)
    return S;
  addrinfo Hints;
  std::memset(&Hints, 0, sizeof(Hints));
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  Hints.ai_flags = AI_PASSIVE;
  int Rc = ::getaddrinfo(Host.c_str(), Port.c_str(), &Hints, Out);
  if (Rc != 0)
    return Status::error(ErrorCode::InvalidArgument,
                         "cannot resolve '" + Address +
                             "': " + ::gai_strerror(Rc));
  return Status::ok();
}

/// "ip:port" of a bound TCP socket, resolving a requested port 0.
std::string describeBound(int Fd, const std::string &Requested) {
  sockaddr_storage Ss;
  socklen_t Len = sizeof(Ss);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Ss), &Len) != 0)
    return Requested;
  char Host[INET6_ADDRSTRLEN] = {0};
  unsigned Port = 0;
  if (Ss.ss_family == AF_INET) {
    auto *In = reinterpret_cast<sockaddr_in *>(&Ss);
    ::inet_ntop(AF_INET, &In->sin_addr, Host, sizeof(Host));
    Port = ntohs(In->sin_port);
  } else if (Ss.ss_family == AF_INET6) {
    auto *In6 = reinterpret_cast<sockaddr_in6 *>(&Ss);
    ::inet_ntop(AF_INET6, &In6->sin6_addr, Host, sizeof(Host));
    Port = ntohs(In6->sin6_port);
  } else {
    return Requested;
  }
  return std::string(Host) + ":" + std::to_string(Port);
}

} // namespace

bool sock::isUnixAddress(const std::string &Address) {
  return Address.rfind("unix:", 0) == 0 ||
         Address.find('/') != std::string::npos;
}

std::string sock::unixPath(const std::string &Address) {
  return Address.rfind("unix:", 0) == 0 ? Address.substr(5) : Address;
}

// --- ListenSocket --------------------------------------------------------

ListenSocket::~ListenSocket() { close(); }

ListenSocket::ListenSocket(ListenSocket &&Other) noexcept
    : Fd(std::exchange(Other.Fd, -1)), Bound(std::move(Other.Bound)),
      UnlinkPath(std::move(Other.UnlinkPath)) {
  Other.Bound.clear();
  Other.UnlinkPath.clear();
}

ListenSocket &ListenSocket::operator=(ListenSocket &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = std::exchange(Other.Fd, -1);
    Bound = std::move(Other.Bound);
    UnlinkPath = std::move(Other.UnlinkPath);
    Other.Bound.clear();
    Other.UnlinkPath.clear();
  }
  return *this;
}

Status ListenSocket::listen(const std::string &Address) {
  close();
  if (isUnixAddress(Address)) {
    const std::string Path = unixPath(Address);
    sockaddr_un Addr;
    if (Status S = fillUnixAddr(Path, Addr); !S)
      return S;
    int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (S < 0)
      return syscallError("socket(AF_UNIX)");
    setCloexec(S);
    // A previous daemon that died without cleanup leaves the path behind;
    // rebinding over it is the restart story, not an error.
    ::unlink(Path.c_str());
    if (::bind(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
        ::listen(S, 16) != 0) {
      Status E = syscallError("bind/listen on '" + Address + "'");
      ::close(S);
      return E;
    }
    Fd = S;
    Bound = "unix:" + Path;
    UnlinkPath = Path;
    return Status::ok();
  }

  addrinfo *Info = nullptr;
  if (Status S = resolveTcp(Address, &Info); !S)
    return S;
  Status LastErr = Status::error(ErrorCode::Internal, "no usable address");
  for (addrinfo *Ai = Info; Ai; Ai = Ai->ai_next) {
    int S = ::socket(Ai->ai_family, Ai->ai_socktype, Ai->ai_protocol);
    if (S < 0) {
      LastErr = syscallError("socket");
      continue;
    }
    setCloexec(S);
    int One = 1;
    ::setsockopt(S, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    if (::bind(S, Ai->ai_addr, Ai->ai_addrlen) != 0 ||
        ::listen(S, 16) != 0) {
      LastErr = syscallError("bind/listen on '" + Address + "'");
      ::close(S);
      continue;
    }
    Fd = S;
    Bound = describeBound(S, Address);
    ::freeaddrinfo(Info);
    return Status::ok();
  }
  ::freeaddrinfo(Info);
  return LastErr;
}

Expected<int> ListenSocket::accept(double TimeoutSeconds) {
  if (Fd < 0)
    return Status::error(ErrorCode::WorkerLost, "listening socket closed");
  if (Status S = subprocess::waitReadable(Fd, TimeoutSeconds); !S)
    return S;
  for (;;) {
    int Conn = ::accept(Fd, nullptr, nullptr);
    if (Conn >= 0) {
      setCloexec(Conn);
      int One = 1;
      ::setsockopt(Conn, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
      return Conn;
    }
    if (errno == EINTR)
      continue;
    // A peer that connected and reset before we accepted costs nothing
    // but this attempt.
    if (errno == ECONNABORTED)
      return Status::error(ErrorCode::WorkerLost,
                           "connection aborted before accept");
    return syscallError("accept");
  }
}

void ListenSocket::close() {
  if (Fd >= 0) {
    // shutdown() wakes any thread parked in accept()'s poll; close alone
    // would leave it blocked until the next connection.
    ::shutdown(Fd, SHUT_RDWR);
    ::close(Fd);
    Fd = -1;
  }
  if (!UnlinkPath.empty()) {
    ::unlink(UnlinkPath.c_str());
    UnlinkPath.clear();
  }
  Bound.clear();
}

// --- connectTo -----------------------------------------------------------

namespace {

/// Non-blocking connect driven to completion under a deadline: start the
/// connect, poll for writability with the remaining budget (EINTR-safe),
/// then read the final verdict from SO_ERROR.
Status finishConnect(int S, double TimeoutSeconds,
                     const std::string &Address) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(
                      TimeoutSeconds < 0.0 ? 0.0 : TimeoutSeconds);
  for (;;) {
    pollfd Pfd{S, POLLOUT, 0};
    int Ms = -1;
    if (TimeoutSeconds >= 0.0) {
      double Left = std::chrono::duration<double>(
                        Deadline - std::chrono::steady_clock::now())
                        .count();
      if (Left <= 0.0)
        return Status::error(ErrorCode::DeadlineExceeded,
                             "connect to '" + Address + "' timed out");
      Ms = static_cast<int>(Left * 1000.0) + 1;
    }
    int Rc = ::poll(&Pfd, 1, Ms);
    if (Rc < 0) {
      if (errno == EINTR)
        continue;
      return syscallError("poll(connect)");
    }
    if (Rc == 0)
      return Status::error(ErrorCode::DeadlineExceeded,
                           "connect to '" + Address + "' timed out");
    int Err = 0;
    socklen_t Len = sizeof(Err);
    if (::getsockopt(S, SOL_SOCKET, SO_ERROR, &Err, &Len) != 0)
      return syscallError("getsockopt(SO_ERROR)");
    if (Err != 0) {
      errno = Err;
      return connectError(Address);
    }
    return Status::ok();
  }
}

Expected<int> connectOne(int Family, int Type, int Protocol,
                         const sockaddr *Addr, socklen_t AddrLen,
                         double TimeoutSeconds, const std::string &Address) {
  int S = ::socket(Family, Type, Protocol);
  if (S < 0)
    return syscallError("socket");
  setCloexec(S);
  if (Status St = setNonblocking(S, true); !St) {
    ::close(S);
    return St;
  }
  int Rc;
  do {
    Rc = ::connect(S, Addr, AddrLen);
  } while (Rc != 0 && errno == EINTR);
  if (Rc != 0 && errno != EINPROGRESS && errno != EAGAIN) {
    Status E = connectError(Address);
    ::close(S);
    return E;
  }
  if (Rc != 0) {
    if (Status St = finishConnect(S, TimeoutSeconds, Address); !St) {
      ::close(S);
      return St;
    }
  }
  if (Status St = setNonblocking(S, false); !St) {
    ::close(S);
    return St;
  }
  if (Family != AF_UNIX) {
    int One = 1;
    ::setsockopt(S, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  }
  return S;
}

} // namespace

Expected<int> sock::connectTo(const std::string &Address,
                              double TimeoutSeconds) {
  if (isUnixAddress(Address)) {
    sockaddr_un Addr;
    if (Status S = fillUnixAddr(unixPath(Address), Addr); !S)
      return S;
    return connectOne(AF_UNIX, SOCK_STREAM, 0,
                      reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr),
                      TimeoutSeconds, Address);
  }
  addrinfo *Info = nullptr;
  if (Status S = resolveTcp(Address, &Info); !S)
    return S;
  Status LastErr = Status::error(ErrorCode::WorkerLost,
                                 "cannot connect to '" + Address +
                                     "': no usable address");
  for (addrinfo *Ai = Info; Ai; Ai = Ai->ai_next) {
    Expected<int> S =
        connectOne(Ai->ai_family, Ai->ai_socktype, Ai->ai_protocol,
                   Ai->ai_addr, Ai->ai_addrlen, TimeoutSeconds, Address);
    if (S) {
      ::freeaddrinfo(Info);
      return S;
    }
    LastErr = S.status();
  }
  ::freeaddrinfo(Info);
  return LastErr;
}

void sock::resetClose(int Fd) {
  if (Fd < 0)
    return;
  linger Lin;
  Lin.l_onoff = 1;
  Lin.l_linger = 0;
  ::setsockopt(Fd, SOL_SOCKET, SO_LINGER, &Lin, sizeof(Lin));
  ::close(Fd);
}
