//===- Metrics.cpp - Named counters, gauges and histograms -----------------===//

#include "support/Metrics.h"

#include "support/Trace.h"

#include <fstream>
#include <map>
#include <memory>
#include <mutex>

using namespace anek;
using namespace anek::telemetry;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

void Histogram::record(double Sample) {
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
  double Cur = Min.load(std::memory_order_relaxed);
  while (Sample < Cur &&
         !Min.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed))
    ;
  Cur = Max.load(std::memory_order_relaxed);
  while (Sample > Cur &&
         !Max.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed))
    ;
}

double Histogram::min() const {
  return count() ? Min.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() ? Max.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::mean() const {
  uint64_t N = count();
  return N ? sum() / static_cast<double>(N) : 0.0;
}

void Histogram::reset() {
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0.0, std::memory_order_relaxed);
  Min.store(std::numeric_limits<double>::infinity(),
            std::memory_order_relaxed);
  Max.store(-std::numeric_limits<double>::infinity(),
            std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

namespace {

/// std::map keeps names sorted, giving the exporter its stable key order
/// for free. Entries are never erased, so references handed out by the
/// lookup functions stay valid for the process lifetime.
struct MetricsRegistry {
  std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

MetricsRegistry &registry() {
  static MetricsRegistry *R = new MetricsRegistry(); // Never destroyed:
  return *R; // cached references must survive static teardown.
}

template <typename T>
T &lookup(std::map<std::string, std::unique_ptr<T>> &Map,
          const std::string &Name, std::mutex &Mutex) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<T> &Slot = Map[Name];
  if (!Slot)
    Slot = std::make_unique<T>();
  return *Slot;
}

} // namespace

Counter &anek::telemetry::counter(const std::string &Name) {
  MetricsRegistry &R = registry();
  return lookup(R.Counters, Name, R.Mutex);
}

Gauge &anek::telemetry::gauge(const std::string &Name) {
  MetricsRegistry &R = registry();
  return lookup(R.Gauges, Name, R.Mutex);
}

Histogram &anek::telemetry::histogram(const std::string &Name) {
  MetricsRegistry &R = registry();
  return lookup(R.Histograms, Name, R.Mutex);
}

//===----------------------------------------------------------------------===//
// Export
//===----------------------------------------------------------------------===//

std::string anek::telemetry::metricsJson() {
  MetricsRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::string Out;
  Out += "{\n  \"schema\": \"anek-metrics-v1\",\n";
  Out += "  \"traceLevel\": ";
  Out += jsonQuote(traceLevelName(traceLevel()));
  Out += ",\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, C] : R.Counters) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    " + jsonQuote(Name) + ": " +
           std::to_string(static_cast<unsigned long long>(C->value()));
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += "  \"gauges\": {";
  First = true;
  for (const auto &[Name, G] : R.Gauges) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    " + jsonQuote(Name) + ": " + jsonNumber(G->value());
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += "  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : R.Histograms) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    " + jsonQuote(Name) + ": {\"count\": " +
           std::to_string(static_cast<unsigned long long>(H->count())) +
           ", \"sum\": " + jsonNumber(H->sum()) +
           ", \"min\": " + jsonNumber(H->min()) +
           ", \"max\": " + jsonNumber(H->max()) +
           ", \"mean\": " + jsonNumber(H->mean()) + "}";
  }
  Out += First ? "}\n" : "\n  }\n";
  Out += "}\n";
  return Out;
}

bool anek::telemetry::writeMetricsFile(const std::string &Path,
                                       std::string *Error) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << metricsJson();
  Out.flush();
  if (!Out) {
    if (Error)
      *Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

void anek::telemetry::resetMetricsForTest() {
  MetricsRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (auto &[Name, C] : R.Counters)
    C->reset();
  for (auto &[Name, G] : R.Gauges)
    G->reset();
  for (auto &[Name, H] : R.Histograms)
    H->reset();
}
