//===- Metrics.cpp - Named counters, gauges and histograms -----------------===//

#include "support/Metrics.h"

#include "support/Trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

using namespace anek;
using namespace anek::telemetry;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

namespace {

/// Bucket b covers [2^(b-32), 2^(b-31)); bucket 0 additionally absorbs
/// zeros, negatives and NaN, the last bucket absorbs +inf and overflow.
unsigned bucketIndex(double Sample) {
  if (!(Sample > 0.0))
    return 0; // Zero, negative, NaN.
  if (!std::isfinite(Sample))
    return Histogram::NumBuckets - 1;
  int Exp = 0;
  std::frexp(Sample, &Exp); // Sample in [2^(Exp-1), 2^Exp).
  long B = static_cast<long>(Exp) + 31;
  return static_cast<unsigned>(
      std::clamp<long>(B, 0, Histogram::NumBuckets - 1));
}

} // namespace

void Histogram::record(double Sample) {
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
  Buckets[bucketIndex(Sample)].fetch_add(1, std::memory_order_relaxed);
  double Cur = Min.load(std::memory_order_relaxed);
  while (Sample < Cur &&
         !Min.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed))
    ;
  Cur = Max.load(std::memory_order_relaxed);
  while (Sample > Cur &&
         !Max.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed))
    ;
}

uint64_t Histogram::bucketCount(unsigned I) const {
  return I < NumBuckets ? Buckets[I].load(std::memory_order_relaxed) : 0;
}

double Histogram::percentile(double Q) const {
  if (!count())
    return 0.0;
  Q = std::clamp(Q, 0.0, 1.0);
  uint64_t Total = 0;
  for (unsigned I = 0; I != NumBuckets; ++I)
    Total += bucketCount(I);
  if (Total == 0)
    return mean(); // Absorbed-from-legacy data without bucket counts.
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(Q * static_cast<double>(Total)));
  Rank = std::max<uint64_t>(1, std::min(Rank, Total));
  uint64_t Cum = 0;
  unsigned Hit = NumBuckets - 1;
  for (unsigned I = 0; I != NumBuckets; ++I) {
    Cum += bucketCount(I);
    if (Cum >= Rank) {
      Hit = I;
      break;
    }
  }
  // Geometric midpoint of the hit bucket; bucket 0 has no lower bound,
  // so report the observed minimum. Clamp into the true range.
  double Rep = Hit == 0
                   ? min()
                   : std::exp2(static_cast<double>(Hit) - 32.0) *
                         std::sqrt(2.0);
  return std::clamp(Rep, min(), max());
}

void Histogram::absorb(uint64_t AddCount, double AddSum, double SeenMin,
                       double SeenMax,
                       const std::vector<uint64_t> &AddBuckets) {
  if (AddCount == 0)
    return;
  Count.fetch_add(AddCount, std::memory_order_relaxed);
  Sum.fetch_add(AddSum, std::memory_order_relaxed);
  for (unsigned I = 0; I != std::min<size_t>(AddBuckets.size(), NumBuckets);
       ++I)
    if (AddBuckets[I])
      Buckets[I].fetch_add(AddBuckets[I], std::memory_order_relaxed);
  double Cur = Min.load(std::memory_order_relaxed);
  while (SeenMin < Cur &&
         !Min.compare_exchange_weak(Cur, SeenMin, std::memory_order_relaxed))
    ;
  Cur = Max.load(std::memory_order_relaxed);
  while (SeenMax > Cur &&
         !Max.compare_exchange_weak(Cur, SeenMax, std::memory_order_relaxed))
    ;
}

double Histogram::min() const {
  return count() ? Min.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() ? Max.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::mean() const {
  uint64_t N = count();
  return N ? sum() / static_cast<double>(N) : 0.0;
}

void Histogram::reset() {
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0.0, std::memory_order_relaxed);
  Min.store(std::numeric_limits<double>::infinity(),
            std::memory_order_relaxed);
  Max.store(-std::numeric_limits<double>::infinity(),
            std::memory_order_relaxed);
  for (unsigned I = 0; I != NumBuckets; ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

namespace {

/// std::map keeps names sorted, giving the exporter its stable key order
/// for free. Entries are never erased, so references handed out by the
/// lookup functions stay valid for the process lifetime.
struct MetricsRegistry {
  std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

MetricsRegistry &registry() {
  static MetricsRegistry *R = new MetricsRegistry(); // Never destroyed:
  return *R; // cached references must survive static teardown.
}

template <typename T>
T &lookup(std::map<std::string, std::unique_ptr<T>> &Map,
          const std::string &Name, std::mutex &Mutex) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<T> &Slot = Map[Name];
  if (!Slot)
    Slot = std::make_unique<T>();
  return *Slot;
}

} // namespace

Counter &anek::telemetry::counter(const std::string &Name) {
  MetricsRegistry &R = registry();
  return lookup(R.Counters, Name, R.Mutex);
}

Gauge &anek::telemetry::gauge(const std::string &Name) {
  MetricsRegistry &R = registry();
  return lookup(R.Gauges, Name, R.Mutex);
}

Histogram &anek::telemetry::histogram(const std::string &Name) {
  MetricsRegistry &R = registry();
  return lookup(R.Histograms, Name, R.Mutex);
}

//===----------------------------------------------------------------------===//
// Export
//===----------------------------------------------------------------------===//

std::string anek::telemetry::metricsJson() {
  MetricsRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::string Out;
  Out += "{\n  \"schema\": \"anek-metrics-v1\",\n";
  Out += "  \"traceLevel\": ";
  Out += jsonQuote(traceLevelName(traceLevel()));
  Out += ",\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, C] : R.Counters) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    " + jsonQuote(Name) + ": " +
           std::to_string(static_cast<unsigned long long>(C->value()));
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += "  \"gauges\": {";
  First = true;
  for (const auto &[Name, G] : R.Gauges) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    " + jsonQuote(Name) + ": " + jsonNumber(G->value());
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += "  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : R.Histograms) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    " + jsonQuote(Name) + ": {\"count\": " +
           std::to_string(static_cast<unsigned long long>(H->count())) +
           ", \"sum\": " + jsonNumber(H->sum()) +
           ", \"min\": " + jsonNumber(H->min()) +
           ", \"max\": " + jsonNumber(H->max()) +
           ", \"mean\": " + jsonNumber(H->mean()) +
           ", \"p50\": " + jsonNumber(H->percentile(0.50)) +
           ", \"p95\": " + jsonNumber(H->percentile(0.95)) +
           ", \"p99\": " + jsonNumber(H->percentile(0.99)) + "}";
  }
  Out += First ? "}\n" : "\n  }\n";
  Out += "}\n";
  return Out;
}

bool anek::telemetry::writeMetricsFile(const std::string &Path,
                                       std::string *Error) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << metricsJson();
  Out.flush();
  if (!Out) {
    if (Error)
      *Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

void anek::telemetry::resetMetricsForTest() {
  MetricsRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (auto &[Name, C] : R.Counters)
    C->reset();
  for (auto &[Name, G] : R.Gauges)
    G->reset();
  for (auto &[Name, H] : R.Histograms)
    H->reset();
}

//===----------------------------------------------------------------------===//
// Cross-process aggregation
//===----------------------------------------------------------------------===//

MetricsSnapshot anek::telemetry::captureMetrics() {
  MetricsSnapshot Snap;
  MetricsRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (const auto &[Name, C] : R.Counters)
    Snap.Counters[Name] = C->value();
  for (const auto &[Name, G] : R.Gauges)
    Snap.Gauges[Name] = G->value();
  for (const auto &[Name, H] : R.Histograms) {
    HistogramSnapshot &HS = Snap.Histograms[Name];
    HS.Count = H->count();
    HS.Sum = H->sum();
    HS.Min = H->min();
    HS.Max = H->max();
    HS.Buckets.resize(Histogram::NumBuckets);
    for (unsigned I = 0; I != Histogram::NumBuckets; ++I)
      HS.Buckets[I] = H->bucketCount(I);
  }
  return Snap;
}

MetricsSnapshot anek::telemetry::diffMetrics(const MetricsSnapshot &Base,
                                             const MetricsSnapshot &Now) {
  MetricsSnapshot Delta;
  for (const auto &[Name, V] : Now.Counters) {
    auto It = Base.Counters.find(Name);
    uint64_t Before = It == Base.Counters.end() ? 0 : It->second;
    // Counters are monotonic; a reset between captures would make V <
    // Before, in which case ship the full new value.
    uint64_t D = V >= Before ? V - Before : V;
    if (D)
      Delta.Counters[Name] = D;
  }
  for (const auto &[Name, V] : Now.Gauges) {
    auto It = Base.Gauges.find(Name);
    if (It == Base.Gauges.end() || It->second != V)
      Delta.Gauges[Name] = V;
  }
  for (const auto &[Name, HS] : Now.Histograms) {
    auto It = Base.Histograms.find(Name);
    const HistogramSnapshot *Before =
        It == Base.Histograms.end() ? nullptr : &It->second;
    uint64_t BeforeCount = Before ? Before->Count : 0;
    if (HS.Count == BeforeCount)
      continue;
    HistogramSnapshot D;
    if (HS.Count < BeforeCount) { // Reset between captures: ship whole.
      D = HS;
    } else {
      D.Count = HS.Count - BeforeCount;
      D.Sum = HS.Sum - (Before ? Before->Sum : 0.0);
      D.Min = HS.Min;
      D.Max = HS.Max;
      D.Buckets.resize(HS.Buckets.size());
      for (size_t I = 0; I != HS.Buckets.size(); ++I) {
        uint64_t B =
            Before && I < Before->Buckets.size() ? Before->Buckets[I] : 0;
        D.Buckets[I] = HS.Buckets[I] >= B ? HS.Buckets[I] - B : HS.Buckets[I];
      }
    }
    Delta.Histograms[Name] = std::move(D);
  }
  return Delta;
}

void anek::telemetry::absorbMetrics(const MetricsSnapshot &Delta,
                                    const std::string &Prefix) {
  for (const auto &[Name, V] : Delta.Counters)
    counter(Prefix + Name).add(V);
  for (const auto &[Name, V] : Delta.Gauges)
    gauge(Prefix + Name).set(V);
  for (const auto &[Name, HS] : Delta.Histograms)
    histogram(Prefix + Name).absorb(HS.Count, HS.Sum, HS.Min, HS.Max,
                                    HS.Buckets);
}
