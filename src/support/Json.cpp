//===- Json.cpp - Minimal JSON document reader ------------------------------===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

using namespace anek;
using namespace anek::json;

const Value &Value::at(const std::string &Key) const {
  static const Value Missing;
  auto It = Fields.find(Key);
  return It == Fields.end() ? Missing : It->second;
}

namespace {

/// Deep documents are not something our exporters produce; a fixed bound
/// keeps hostile nesting from exhausting the stack.
constexpr unsigned MaxDepth = 64;

class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  bool parse(Value &Out, std::string *Error) {
    Pos = 0;
    if (!value(Out, 0))
      return fail(Error);
    skipWs();
    if (Pos != Text.size()) // No trailing garbage.
      return fail(Error);
    return true;
  }

private:
  const std::string &Text;
  size_t Pos = 0;

  bool fail(std::string *Error) const {
    if (Error)
      *Error = "malformed JSON at byte " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  bool value(Value &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return false;
    skipWs();
    if (Pos >= Text.size())
      return false;
    switch (Text[Pos]) {
    case '{':
      return object(Out, Depth);
    case '[':
      return array(Out, Depth);
    case '"':
      Out.K = Value::String;
      return string(Out.S);
    case 't':
      Out.K = Value::Bool;
      Out.B = true;
      return literal("true");
    case 'f':
      Out.K = Value::Bool;
      Out.B = false;
      return literal("false");
    case 'n':
      Out.K = Value::Null;
      return literal("null");
    default:
      return number(Out);
    }
  }

  bool object(Value &Out, unsigned Depth) {
    Out.K = Value::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      std::string Key;
      if (!string(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return false;
      ++Pos;
      Value Val;
      if (!value(Val, Depth + 1))
        return false;
      Out.Fields.emplace(std::move(Key), std::move(Val));
      skipWs();
      if (Pos >= Text.size())
        return false;
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool array(Value &Out, unsigned Depth) {
    Out.K = Value::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      Value Val;
      if (!value(Val, Depth + 1))
        return false;
      Out.Items.push_back(std::move(Val));
      skipWs();
      if (Pos >= Text.size())
        return false;
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool hex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return false;
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<unsigned>(C - 'A' + 10);
      else
        return false;
    }
    return true;
  }

  void appendUtf8(std::string &Out, unsigned Cp) {
    if (Cp < 0x80) {
      Out += static_cast<char>(Cp);
    } else if (Cp < 0x800) {
      Out += static_cast<char>(0xC0 | (Cp >> 6));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    } else {
      Out += static_cast<char>(0xE0 | (Cp >> 12));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    }
  }

  bool string(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return false;
    ++Pos;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return false;
        char E = Text[Pos++];
        switch (E) {
        case '"':
        case '\\':
        case '/':
          Out += E;
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          // BMP codepoints only: our own emitters never produce
          // surrogate pairs, and a lone surrogate degrades to itself.
          unsigned Cp = 0;
          if (!hex4(Cp))
            return false;
          appendUtf8(Out, Cp);
          break;
        }
        default:
          return false;
        }
        continue;
      }
      Out += C;
      ++Pos;
    }
    return false; // Unterminated.
  }

  bool number(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return false;
    std::string Token = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    Out.K = Value::Number;
    Out.N = std::strtod(Token.c_str(), &End);
    return End && *End == '\0';
  }
};

} // namespace

bool anek::json::parse(const std::string &Text, Value &Out,
                       std::string *Error) {
  Parser P(Text);
  return P.parse(Out, Error);
}
