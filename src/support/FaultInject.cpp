//===- FaultInject.cpp - Fault-injection control points --------------------===//

#include "support/FaultInject.h"

#include "support/StringUtils.h"

#include <cstdlib>
#include <optional>
#include <vector>

using namespace anek;

namespace {

/// One activation: a kind plus an optional site filter (empty = all sites).
struct Activation {
  FaultKind Kind;
  std::string Filter;
};

/// Active faults, scoped and spec-activated alike. Deliberately a plain
/// global: fault injection is a test/debug facility, not a concurrent one.
std::vector<Activation> &activations() {
  static std::vector<Activation> List;
  return List;
}

bool &envArmed() {
  static bool Armed = true;
  return Armed;
}

/// Folds the ANEK_FAULT environment spec into the activation list once.
void consumeEnv() {
  if (!envArmed())
    return;
  envArmed() = false;
  if (const char *Spec = std::getenv("ANEK_FAULT"))
    // A malformed env spec is ignored rather than aborting: fault
    // injection must never make the binary less robust.
    (void)faults::activateSpec(Spec);
}

std::optional<FaultKind> kindByName(const std::string &Name) {
  for (unsigned K = 0; K != NumFaultKinds; ++K)
    if (Name == faultKindName(static_cast<FaultKind>(K)))
      return static_cast<FaultKind>(K);
  return std::nullopt;
}

} // namespace

const char *anek::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::BpNonConvergence:
    return "bp-nonconverge";
  case FaultKind::DeadlineExpiry:
    return "deadline";
  case FaultKind::AllocPerturb:
    return "alloc-perturb";
  case FaultKind::SolveFailure:
    return "solve-fail";
  }
  return "unknown";
}

bool faults::anyActive() {
  consumeEnv();
  return !activations().empty();
}

bool faults::active(FaultKind Kind, const std::string &Label) {
  consumeEnv();
  for (const Activation &A : activations())
    if (A.Kind == Kind && (A.Filter.empty() || A.Filter == Label))
      return true;
  return false;
}

Status faults::injectedError(FaultKind Kind, const std::string &Label) {
  std::string Message = std::string("fault '") + faultKindName(Kind) +
                        "' injected";
  if (!Label.empty())
    Message += " at " + Label;
  return Status::error(ErrorCode::FaultInjected, Message);
}

Status faults::activateSpec(const std::string &Spec) {
  std::vector<Activation> Parsed;
  for (const std::string &Trimmed : splitAndTrim(Spec, ',')) {
    std::string Name = Trimmed, Filter;
    if (size_t Colon = Trimmed.find(':'); Colon != std::string::npos) {
      Name = Trimmed.substr(0, Colon);
      Filter = Trimmed.substr(Colon + 1);
    }
    std::optional<FaultKind> Kind = kindByName(Name);
    if (!Kind)
      return Status::error(ErrorCode::InvalidArgument,
                           "unknown fault '" + Name + "' in spec '" + Spec +
                               "'");
    Parsed.push_back({*Kind, std::move(Filter)});
  }
  auto &List = activations();
  List.insert(List.end(), Parsed.begin(), Parsed.end());
  return Status::ok();
}

void faults::reset() {
  activations().clear();
  envArmed() = true;
}

faults::ScopedFault::ScopedFault(FaultKind Kind, std::string Filter)
    : Kind(Kind), Filter(std::move(Filter)) {
  activations().push_back({this->Kind, this->Filter});
}

faults::ScopedFault::~ScopedFault() {
  auto &List = activations();
  // Remove the most recent matching activation (scopes nest LIFO).
  for (auto It = List.rbegin(); It != List.rend(); ++It)
    if (It->Kind == Kind && It->Filter == Filter) {
      List.erase(std::next(It).base());
      return;
    }
}
