//===- FaultInject.cpp - Fault-injection control points --------------------===//

#include "support/FaultInject.h"

#include "support/StringUtils.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <vector>

using namespace anek;

namespace {

/// One activation: a kind plus an optional site filter (empty = all sites).
struct Activation {
  FaultKind Kind;
  std::string Filter;
};

/// Guards the activation registry. Worker threads in the parallel
/// inference scheduler consult fault state concurrently, so every access
/// to the list goes through this lock; the common no-faults case never
/// takes it (see ActiveCount below).
std::mutex &registryMutex() {
  static std::mutex M;
  return M;
}

/// Active faults, scoped and spec-activated alike. Guarded by
/// registryMutex().
std::vector<Activation> &activations() {
  static std::vector<Activation> List;
  return List;
}

/// Lock-free mirror of activations().size(): anyActive() is on solver hot
/// paths (every Deadline poll), so it must stay one atomic load.
std::atomic<unsigned> ActiveCount{0};

/// True until the one-time ANEK_FAULT environment read happened.
std::atomic<bool> EnvPending{true};

std::optional<FaultKind> kindByName(const std::string &Name) {
  for (unsigned K = 0; K != NumFaultKinds; ++K)
    if (Name == faultKindName(static_cast<FaultKind>(K)))
      return static_cast<FaultKind>(K);
  return std::nullopt;
}

/// Parses \p Spec into activations without touching shared state.
Expected<std::vector<Activation>> parseSpec(const std::string &Spec) {
  std::vector<Activation> Parsed;
  for (const std::string &Trimmed : splitAndTrim(Spec, ',')) {
    std::string Name = Trimmed, Filter;
    if (size_t Colon = Trimmed.find(':'); Colon != std::string::npos) {
      Name = Trimmed.substr(0, Colon);
      Filter = Trimmed.substr(Colon + 1);
    }
    std::optional<FaultKind> Kind = kindByName(Name);
    if (!Kind)
      return Status::error(ErrorCode::InvalidArgument,
                           "unknown fault '" + Name + "' in spec '" + Spec +
                               "'");
    Parsed.push_back({*Kind, std::move(Filter)});
  }
  return Parsed;
}

/// Folds the ANEK_FAULT environment spec into the activation list once.
void consumeEnv() {
  std::vector<Activation> Parsed;
  if (const char *Spec = std::getenv("ANEK_FAULT"))
    // A malformed env spec is ignored rather than aborting: fault
    // injection must never make the binary less robust.
    if (Expected<std::vector<Activation>> P = parseSpec(Spec))
      Parsed = P.take();
  std::unique_lock<std::mutex> Lock(registryMutex());
  if (!EnvPending.load(std::memory_order_relaxed))
    return; // Another thread beat us to it.
  auto &List = activations();
  List.insert(List.end(), Parsed.begin(), Parsed.end());
  ActiveCount.store(static_cast<unsigned>(List.size()),
                    std::memory_order_relaxed);
  EnvPending.store(false, std::memory_order_release);
}

} // namespace

const char *anek::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::BpNonConvergence:
    return "bp-nonconverge";
  case FaultKind::DeadlineExpiry:
    return "deadline";
  case FaultKind::AllocPerturb:
    return "alloc-perturb";
  case FaultKind::SolveFailure:
    return "solve-fail";
  }
  return "unknown";
}

bool faults::anyActive() {
  if (EnvPending.load(std::memory_order_acquire))
    consumeEnv();
  return ActiveCount.load(std::memory_order_relaxed) != 0;
}

bool faults::active(FaultKind Kind, const std::string &Label) {
  if (!anyActive())
    return false;
  std::unique_lock<std::mutex> Lock(registryMutex());
  for (const Activation &A : activations())
    if (A.Kind == Kind && (A.Filter.empty() || A.Filter == Label))
      return true;
  return false;
}

Status faults::injectedError(FaultKind Kind, const std::string &Label) {
  std::string Message = std::string("fault '") + faultKindName(Kind) +
                        "' injected";
  if (!Label.empty())
    Message += " at " + Label;
  return Status::error(ErrorCode::FaultInjected, Message);
}

Status faults::activateSpec(const std::string &Spec) {
  Expected<std::vector<Activation>> Parsed = parseSpec(Spec);
  if (!Parsed)
    return Parsed.status(); // On error nothing is activated.
  std::unique_lock<std::mutex> Lock(registryMutex());
  auto &List = activations();
  List.insert(List.end(), Parsed->begin(), Parsed->end());
  ActiveCount.store(static_cast<unsigned>(List.size()),
                    std::memory_order_relaxed);
  return Status::ok();
}

void faults::reset() {
  std::unique_lock<std::mutex> Lock(registryMutex());
  activations().clear();
  ActiveCount.store(0, std::memory_order_relaxed);
  EnvPending.store(true, std::memory_order_release);
}

faults::ScopedFault::ScopedFault(FaultKind Kind, std::string Filter)
    : Kind(Kind), Filter(std::move(Filter)) {
  std::unique_lock<std::mutex> Lock(registryMutex());
  auto &List = activations();
  List.push_back({this->Kind, this->Filter});
  ActiveCount.store(static_cast<unsigned>(List.size()),
                    std::memory_order_relaxed);
}

faults::ScopedFault::~ScopedFault() {
  std::unique_lock<std::mutex> Lock(registryMutex());
  auto &List = activations();
  // Remove the most recent matching activation (scopes nest LIFO).
  for (auto It = List.rbegin(); It != List.rend(); ++It)
    if (It->Kind == Kind && It->Filter == Filter) {
      List.erase(std::next(It).base());
      break;
    }
  ActiveCount.store(static_cast<unsigned>(List.size()),
                    std::memory_order_relaxed);
}
