//===- FaultInject.cpp - Fault-injection control points --------------------===//

#include "support/FaultInject.h"

#include "support/StringUtils.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <vector>

using namespace anek;

namespace {

/// One activation: a kind, an optional site filter (empty = all sites),
/// and an optional fire budget consumed by faults::consumeFire.
struct Activation {
  FaultKind Kind;
  std::string Filter;
  /// Remaining consuming fires: -1 = unlimited, 0 = exhausted (the
  /// activation no longer matches), > 0 = that many fires left.
  long Remaining = -1;
};

/// Guards the activation registry. Worker threads in the parallel
/// inference scheduler consult fault state concurrently, so every access
/// to the list goes through this lock; the common no-faults case never
/// takes it (see ActiveCount below).
std::mutex &registryMutex() {
  static std::mutex M;
  return M;
}

/// Active faults, scoped and spec-activated alike. Guarded by
/// registryMutex().
std::vector<Activation> &activations() {
  static std::vector<Activation> List;
  return List;
}

/// Lock-free mirror of activations().size(): anyActive() is on solver hot
/// paths (every Deadline poll), so it must stay one atomic load.
std::atomic<unsigned> ActiveCount{0};

/// True until the one-time ANEK_FAULT environment read happened.
std::atomic<bool> EnvPending{true};

/// Name + one-liner per kind, indexed by the enum value. The static_assert
/// is the keep-in-sync contract: adding a FaultKind without describing it
/// here fails the build, so `anek faults` can never go stale.
struct FaultInfo {
  const char *Name;
  const char *Description;
};

constexpr std::array<FaultInfo, NumFaultKinds> FaultTable = {{
    {"bp-nonconverge",
     "belief propagation reports non-convergence (cascade probe)"},
    {"deadline", "every Deadline reports itself expired"},
    {"alloc-perturb",
     "FactorGraph interleaves padding variables, shifting allocation "
     "order/ids (order-dependence probe)"},
    {"solve-fail",
     "a method's SOLVE step fails outright (isolation probe)"},
    {"queue-full",
     "batch admission control behaves as if the request queue were "
     "saturated; the request is shed"},
    {"transient-solve",
     "a batch attempt fails retryably until the *N fire budget is "
     "exhausted (exercises retry/backoff)"},
    {"mem-spike",
     "the resource governor observes a synthetic allocation spike that "
     "blows any memory budget"},
    {"worker-crash",
     "the shard coordinator SIGKILLs a worker right after dispatch "
     "(crash-detection probe; re-dispatch recovers)"},
    {"worker-hang",
     "a dispatched shard worker is SIGSTOPped so its heartbeat goes "
     "silent (hang-detection probe; the deadline kills and respawns it)"},
    {"wire-corrupt",
     "a received shard-result frame has a byte flipped so its checksum "
     "fails (corrupt-frame probe; the worker is recycled)"},
    {"net-refuse",
     "a socket transport's connect attempt is refused before reaching "
     "the daemon (refusal probe; the ladder falls back or retries)"},
    {"net-reset-midframe",
     "a socket transport hard-resets (RST) halfway through writing a "
     "frame (torn-connection probe; costs one attempt)"},
    {"net-stall",
     "a socket transport goes silent mid-read so the heartbeat deadline "
     "trips (stall probe; the session is dropped and re-dispatched)"},
    {"net-handshake-skew",
     "the Init-by-digest handshake is stamped with the wrong protocol "
     "version so the daemon rejects the session (version-mismatch probe)"},
}};
static_assert(FaultTable.size() == NumFaultKinds,
              "every FaultKind needs a name and a one-line description");

std::optional<FaultKind> kindByName(const std::string &Name) {
  for (unsigned K = 0; K != NumFaultKinds; ++K)
    if (Name == faultKindName(static_cast<FaultKind>(K)))
      return static_cast<FaultKind>(K);
  return std::nullopt;
}

/// Parses \p Spec into activations without touching shared state. Token
/// grammar: name[*N][:filter].
Expected<std::vector<Activation>> parseSpec(const std::string &Spec) {
  std::vector<Activation> Parsed;
  for (const std::string &Trimmed : splitAndTrim(Spec, ',')) {
    std::string Name = Trimmed, Filter;
    if (size_t Colon = Trimmed.find(':'); Colon != std::string::npos) {
      Name = Trimmed.substr(0, Colon);
      Filter = Trimmed.substr(Colon + 1);
    }
    long Remaining = -1;
    if (size_t Star = Name.find('*'); Star != std::string::npos) {
      std::string Count = Name.substr(Star + 1);
      Name = Name.substr(0, Star);
      char *End = nullptr;
      long Value = std::strtol(Count.c_str(), &End, 10);
      if (Count.empty() || !End || *End != '\0' || Value < 1)
        return Status::error(ErrorCode::InvalidArgument,
                             "bad fire budget '" + Count + "' in spec '" +
                                 Spec + "' (want *N with N >= 1)");
      Remaining = Value;
    }
    std::optional<FaultKind> Kind = kindByName(Name);
    if (!Kind)
      return Status::error(ErrorCode::InvalidArgument,
                           "unknown fault '" + Name + "' in spec '" + Spec +
                               "'");
    Parsed.push_back({*Kind, std::move(Filter), Remaining});
  }
  return Parsed;
}

/// Folds the ANEK_FAULT environment spec into the activation list once.
void consumeEnv() {
  std::vector<Activation> Parsed;
  if (const char *Spec = std::getenv("ANEK_FAULT"))
    // A malformed env spec is ignored rather than aborting: fault
    // injection must never make the binary less robust.
    if (Expected<std::vector<Activation>> P = parseSpec(Spec))
      Parsed = P.take();
  std::unique_lock<std::mutex> Lock(registryMutex());
  if (!EnvPending.load(std::memory_order_relaxed))
    return; // Another thread beat us to it.
  auto &List = activations();
  List.insert(List.end(), Parsed.begin(), Parsed.end());
  ActiveCount.store(static_cast<unsigned>(List.size()),
                    std::memory_order_relaxed);
  EnvPending.store(false, std::memory_order_release);
}

bool matches(const Activation &A, FaultKind Kind, const std::string &Label) {
  return A.Kind == Kind && A.Remaining != 0 &&
         (A.Filter.empty() || A.Filter == Label);
}

} // namespace

const char *anek::faultKindName(FaultKind Kind) {
  unsigned Index = static_cast<unsigned>(Kind);
  return Index < NumFaultKinds ? FaultTable[Index].Name : "unknown";
}

const char *anek::faultKindDescription(FaultKind Kind) {
  unsigned Index = static_cast<unsigned>(Kind);
  return Index < NumFaultKinds ? FaultTable[Index].Description : "unknown";
}

bool faults::anyActive() {
  if (EnvPending.load(std::memory_order_acquire))
    consumeEnv();
  return ActiveCount.load(std::memory_order_relaxed) != 0;
}

bool faults::active(FaultKind Kind, const std::string &Label) {
  if (!anyActive())
    return false;
  std::unique_lock<std::mutex> Lock(registryMutex());
  for (const Activation &A : activations())
    if (matches(A, Kind, Label))
      return true;
  return false;
}

bool faults::kindActive(FaultKind Kind) {
  if (!anyActive())
    return false;
  std::unique_lock<std::mutex> Lock(registryMutex());
  for (const Activation &A : activations())
    if (A.Kind == Kind && A.Remaining != 0)
      return true;
  return false;
}

bool faults::consumeFire(FaultKind Kind, const std::string &Label) {
  if (!anyActive())
    return false;
  std::unique_lock<std::mutex> Lock(registryMutex());
  for (Activation &A : activations())
    if (matches(A, Kind, Label)) {
      if (A.Remaining > 0)
        --A.Remaining;
      return true;
    }
  return false;
}

Status faults::injectedError(FaultKind Kind, const std::string &Label) {
  std::string Message = std::string("fault '") + faultKindName(Kind) +
                        "' injected";
  if (!Label.empty())
    Message += " at " + Label;
  // Transient kinds map to the retryable classes (see RetryPolicy).
  ErrorCode Code = ErrorCode::FaultInjected;
  if (Kind == FaultKind::TransientSolve)
    Code = ErrorCode::Unavailable;
  else if (Kind == FaultKind::WorkerCrash || Kind == FaultKind::WorkerHang ||
           Kind == FaultKind::WireCorrupt || Kind == FaultKind::NetRefuse ||
           Kind == FaultKind::NetResetMidframe ||
           Kind == FaultKind::NetStall ||
           Kind == FaultKind::NetHandshakeSkew)
    Code = ErrorCode::WorkerLost;
  return Status::error(Code, Message);
}

Status faults::activateSpec(const std::string &Spec) {
  Expected<std::vector<Activation>> Parsed = parseSpec(Spec);
  if (!Parsed)
    return Parsed.status(); // On error nothing is activated.
  std::unique_lock<std::mutex> Lock(registryMutex());
  auto &List = activations();
  List.insert(List.end(), Parsed->begin(), Parsed->end());
  ActiveCount.store(static_cast<unsigned>(List.size()),
                    std::memory_order_relaxed);
  return Status::ok();
}

void faults::reset() {
  std::unique_lock<std::mutex> Lock(registryMutex());
  activations().clear();
  ActiveCount.store(0, std::memory_order_relaxed);
  EnvPending.store(true, std::memory_order_release);
}

faults::ScopedFault::ScopedFault(FaultKind Kind, std::string Filter,
                                 long FireBudget)
    : Kind(Kind), Filter(std::move(Filter)) {
  std::unique_lock<std::mutex> Lock(registryMutex());
  auto &List = activations();
  List.push_back({this->Kind, this->Filter, FireBudget});
  ActiveCount.store(static_cast<unsigned>(List.size()),
                    std::memory_order_relaxed);
}

faults::ScopedFault::~ScopedFault() {
  std::unique_lock<std::mutex> Lock(registryMutex());
  auto &List = activations();
  // Remove the most recent matching activation (scopes nest LIFO).
  for (auto It = List.rbegin(); It != List.rend(); ++It)
    if (It->Kind == Kind && It->Filter == Filter) {
      List.erase(std::next(It).base());
      break;
    }
  ActiveCount.store(static_cast<unsigned>(List.size()),
                    std::memory_order_relaxed);
}
