//===- FaultInject.h - Fault-injection control points ------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Controlled fault injection so the pipeline's degradation paths are
/// actually exercised instead of rotting untested. A fault is a named
/// control point library code consults at the moment the real failure
/// would occur; activating it makes that failure happen deterministically.
///
/// Activation is either programmatic (faults::ScopedFault, for tests) or
/// via the ANEK_FAULT environment variable / `anek --fault`, whose spec is
/// a comma-separated list of fault names, each with an optional `*N` fire
/// budget (the fault fires for the first N consuming checks, then clears)
/// and an optional `:filter` suffix matched against a site label (a
/// method's qualified name, or a batch request id):
///
///   ANEK_FAULT=bp-nonconverge,solve-fail:Row.createColIter anek infer ...
///   anek batch m.txt --fault transient-solve*2:req7
///
/// Run `anek faults` for the live fault vocabulary; the kinds are:
///   bp-nonconverge  belief propagation reports non-convergence
///   deadline        every Deadline reports itself expired
///   alloc-perturb   FactorGraph interleaves padding variables, shifting
///                   every allocation order/id (order-dependence probe)
///   solve-fail      a method's SOLVE step fails outright (isolation probe)
///   queue-full      batch admission control behaves as if the request
///                   queue were saturated (the request is shed)
///   transient-solve a batch attempt fails retryably until the fire
///                   budget is exhausted (exercises retry/backoff)
///   mem-spike       the resource governor observes a synthetic
///                   allocation spike that blows any memory budget
///   worker-crash    the shard coordinator SIGKILLs a worker right after
///                   dispatching a shard to it (crash-detection probe)
///   worker-hang     a dispatched worker is SIGSTOPped so its heartbeat
///                   goes silent (hang-detection probe)
///   wire-corrupt    a received shard-result frame has a byte flipped, so
///                   its checksum fails (corrupt-frame probe)
///   net-refuse      a socket transport's connect attempt is refused
///                   before it reaches the daemon (refusal probe)
///   net-reset-midframe  a socket transport hard-resets (RST) halfway
///                   through writing a frame (torn-connection probe)
///   net-stall       a socket transport goes silent mid-read so the
///                   heartbeat deadline must trip (stall probe)
///   net-handshake-skew  the Init-by-digest handshake is stamped with the
///                   wrong protocol version, so the daemon rejects the
///                   session (version-mismatch probe)
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_FAULTINJECT_H
#define ANEK_SUPPORT_FAULTINJECT_H

#include "support/Status.h"

#include <string>

namespace anek {

/// The injectable faults. Keep in sync with faultKindName/parse and the
/// description table in FaultInject.cpp (a static_assert on NumFaultKinds
/// catches a kind added without a description).
enum class FaultKind : unsigned {
  BpNonConvergence = 0,
  DeadlineExpiry,
  AllocPerturb,
  SolveFailure,
  QueueFull,
  TransientSolve,
  MemSpike,
  WorkerCrash,
  WorkerHang,
  WireCorrupt,
  NetRefuse,
  NetResetMidframe,
  NetStall,
  NetHandshakeSkew,
};
constexpr unsigned NumFaultKinds = 14;

/// Spec name of a fault kind ("bp-nonconverge", ...).
const char *faultKindName(FaultKind Kind);

/// One-line human description of a fault kind (`anek faults` output).
const char *faultKindDescription(FaultKind Kind);

namespace faults {

// All fault queries and (de)activations are thread-safe: the registry is
// mutex-guarded and anyActive() is a single atomic load, so solver worker
// threads may consult fault state while a test arms or disarms it.

/// Fast path: true when any fault source (env or scoped) is active at all.
/// One relaxed atomic load once the environment spec has been consumed.
bool anyActive();

/// True when \p Kind is active with no site filter, or with a filter equal
/// to \p Label. Pass an empty label from sites that have no useful name.
/// Activations whose fire budget is exhausted no longer match.
bool active(FaultKind Kind, const std::string &Label = std::string());

/// True when \p Kind is active under *any* site filter (or none). Unlike
/// active(Kind, ""), which a filtered activation does not match, this
/// answers "could this kind fire anywhere?" — the summary cache uses it to
/// disable caching while an analysis-perturbing fault is armed, since a
/// cache hit would replay results the armed fault should have perturbed.
bool kindActive(FaultKind Kind);

/// Consuming check for budgeted faults: like active(), but decrements the
/// matching activation's fire budget. Returns true while the budget holds
/// (an unbudgeted activation fires forever); once a budget reaches zero
/// the activation is exhausted and stops matching. The `transient-solve`
/// control point uses this so "fails the first N attempts, then succeeds"
/// is one spec: `transient-solve*N:site`.
bool consumeFire(FaultKind Kind, const std::string &Label = std::string());

/// Convenience: an error Status naming the fault, for sites that surface
/// the fault as a Status. Transient kinds map to the retryable classes —
/// transient-solve yields ErrorCode::Unavailable; worker-crash,
/// worker-hang, wire-corrupt and the net-* kinds yield
/// ErrorCode::WorkerLost — all others ErrorCode::FaultInjected.
Status injectedError(FaultKind Kind, const std::string &Label);

/// Activates \p Spec ("name[*N][:filter][,...]") on top of the current
/// state. Returns InvalidArgument naming the bad token on a malformed
/// spec; on error nothing is activated.
Status activateSpec(const std::string &Spec);

/// Drops every activation made by activateSpec/ScopedFault and re-arms
/// the one-time ANEK_FAULT environment read. Tests call this to isolate
/// themselves; the env respec applies on the next query.
void reset();

/// RAII activation of one fault for a test's scope. \p FireBudget < 0
/// means unlimited; >= 1 arms a consumable budget (see consumeFire).
class ScopedFault {
public:
  explicit ScopedFault(FaultKind Kind, std::string Filter = std::string(),
                       long FireBudget = -1);
  ~ScopedFault();

  ScopedFault(const ScopedFault &) = delete;
  ScopedFault &operator=(const ScopedFault &) = delete;

private:
  FaultKind Kind;
  std::string Filter;
};

} // namespace faults
} // namespace anek

#endif // ANEK_SUPPORT_FAULTINJECT_H
