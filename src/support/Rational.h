//===- Rational.h - Exact rational arithmetic --------------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rationals over int64. Fractional permissions (Boyland [7]) and the
/// PLURAL local-inference Gaussian elimination both need exact arithmetic:
/// floating point would make permission accounting unsound.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_RATIONAL_H
#define ANEK_SUPPORT_RATIONAL_H

#include <cstdint>
#include <string>

namespace anek {

/// An always-normalized rational number: gcd(Num, Den) == 1, Den > 0.
///
/// A zero denominator does not abort: it yields the single *invalid* value
/// (isValid() == false), which propagates through arithmetic like a NaN.
/// User-reachable math (the PLURAL Gaussian elimination runs on hostile
/// input) checks validity at the solution boundary instead of trusting
/// every intermediate step.
class Rational {
public:
  Rational() = default;
  Rational(int64_t Value) : Num(Value), Den(1) {} // NOLINT: implicit by design
  Rational(int64_t Num, int64_t Den);

  /// The poison value produced by division by zero (or overflow collapsing
  /// a denominator to zero).
  static Rational invalid() {
    Rational R;
    R.Den = 0;
    return R;
  }

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }

  /// False for the poison value; arithmetic on it stays invalid.
  bool isValid() const { return Den != 0; }

  bool isZero() const { return isValid() && Num == 0; }
  bool isNegative() const { return isValid() && Num < 0; }

  Rational operator+(const Rational &Other) const;
  Rational operator-(const Rational &Other) const;
  Rational operator*(const Rational &Other) const;
  /// Division; a zero (or invalid) divisor yields invalid().
  Rational operator/(const Rational &Other) const;
  Rational operator-() const {
    return isValid() ? Rational(-Num, Den) : invalid();
  }

  Rational &operator+=(const Rational &Other) { return *this = *this + Other; }
  Rational &operator-=(const Rational &Other) { return *this = *this - Other; }
  Rational &operator*=(const Rational &Other) { return *this = *this * Other; }
  Rational &operator/=(const Rational &Other) { return *this = *this / Other; }

  bool operator==(const Rational &Other) const = default;
  bool operator<(const Rational &Other) const;
  bool operator<=(const Rational &Other) const {
    return *this < Other || *this == Other;
  }
  bool operator>(const Rational &Other) const { return Other < *this; }
  bool operator>=(const Rational &Other) const { return Other <= *this; }

  double toDouble() const {
    return static_cast<double>(Num) / static_cast<double>(Den);
  }

  /// Renders as "n" or "n/d".
  std::string str() const;

private:
  int64_t Num = 0;
  int64_t Den = 1;
};

} // namespace anek

#endif // ANEK_SUPPORT_RATIONAL_H
