//===- Timer.h - Wall-clock timing for benchmarks ----------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_TIMER_H
#define ANEK_SUPPORT_TIMER_H

#include <chrono>

namespace anek {

/// Measures elapsed wall-clock time from construction (or the last reset).
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed milliseconds since construction/reset.
  double millis() const { return seconds() * 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace anek

#endif // ANEK_SUPPORT_TIMER_H
