//===- Diagnostics.cpp - Error and warning collection ---------------------===//

#include "support/Diagnostics.h"

using namespace anek;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  return Loc.str() + ": " + kindName(Kind) + ": " + Message;
}

void DiagnosticEngine::error(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  ++NumWarnings;
}

void DiagnosticEngine::note(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
}

std::string DiagnosticEngine::str() const {
  std::string Result;
  for (const Diagnostic &D : Diags) {
    Result += D.str();
    Result += '\n';
  }
  return Result;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
  NumWarnings = 0;
}
