//===- Status.h - Structured error propagation -------------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured errors for the inference pipeline. Library code on
/// user-reachable paths must not abort: it returns a Status (or an
/// Expected<T> when there is a payload) and lets the caller decide whether
/// the failure is fatal, recoverable, or a reason to fall back to a cheaper
/// algorithm. See DESIGN.md, "Failure model and degradation".
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_STATUS_H
#define ANEK_SUPPORT_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace anek {

/// Machine-inspectable failure class. Message strings carry the detail;
/// the code is what callers branch on.
enum class ErrorCode {
  Ok = 0,
  /// A caller handed the library something malformed.
  InvalidArgument,
  /// A size/memory budget was exceeded (e.g. exact enumeration asked to
  /// enumerate more variables than its limit).
  ResourceExhausted,
  /// A wall-clock or iteration Deadline expired before completion.
  DeadlineExceeded,
  /// A constraint system admits no solution.
  Unsatisfiable,
  /// A fault-injection control point fired (tests only).
  FaultInjected,
  /// A transient failure that is expected to clear on retry. The serving
  /// layer's RetryPolicy retries this class; everything else except
  /// WorkerLost is terminal for the attempt.
  Unavailable,
  /// A shard worker process died, hung, or returned an unreadable frame
  /// before delivering its result. Transient by contract: the work was
  /// lost with the peer, not refuted, so re-dispatching it to a fresh
  /// worker is expected to succeed (see src/shard/).
  WorkerLost,
  /// An invariant the library relies on failed; a bug, not bad input.
  Internal,
};

/// Renders the code as a short lowercase tag ("deadline-exceeded").
const char *errorCodeName(ErrorCode Code);

/// A success/failure value with an error code and human-readable message.
class Status {
public:
  /// Default-constructed Status is success.
  Status() = default;

  static Status ok() { return Status(); }
  static Status error(ErrorCode Code, std::string Message) {
    assert(Code != ErrorCode::Ok && "error status needs a non-ok code");
    Status S;
    S.Code = Code;
    S.Message = std::move(Message);
    return S;
  }

  bool isOk() const { return Code == ErrorCode::Ok; }
  explicit operator bool() const { return isOk(); }

  ErrorCode code() const { return Code; }
  const std::string &message() const { return Message; }

  /// Renders as "code: message" (or "ok").
  std::string str() const;

private:
  ErrorCode Code = ErrorCode::Ok;
  std::string Message;
};

/// A value-or-Status. Like llvm::Expected but unchecked: callers test
/// hasValue()/operator bool before dereferencing.
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {} // NOLINT: implicit by design
  Expected(Status Err) : Err(std::move(Err)) {   // NOLINT: implicit by design
    assert(!this->Err.isOk() && "Expected error must carry a non-ok status");
  }

  bool hasValue() const { return Value.has_value(); }
  explicit operator bool() const { return hasValue(); }

  T &operator*() {
    assert(hasValue() && "dereferencing an errored Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(hasValue() && "dereferencing an errored Expected");
    return *Value;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// The failure; ok() when a value is present.
  const Status &status() const { return Err; }

  /// Moves the value out (valid only when hasValue()).
  T take() {
    assert(hasValue() && "taking from an errored Expected");
    return std::move(*Value);
  }

private:
  std::optional<T> Value;
  Status Err;
};

} // namespace anek

#endif // ANEK_SUPPORT_STATUS_H
