//===- ThreadPool.cpp - Work-queue thread pool -----------------------------===//

#include "support/ThreadPool.h"

#include <utility>

using namespace anek;

unsigned ThreadPool::defaultParallelism() {
  unsigned N = std::thread::hardware_concurrency();
  return N > 0 ? N : 1;
}

ThreadPool::ThreadPool(unsigned ThreadCount) {
  if (ThreadCount == 0)
    ThreadCount = defaultParallelism();
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I != ThreadCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    // Graceful shutdown: workers finish everything already queued before
    // exiting their loops.
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::submit(std::function<void()> Job) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Job));
  }
  WorkReady.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Idle.wait(Lock, [this] { return Queue.empty() && Active == 0; });
  if (FirstError) {
    std::exception_ptr Error = std::exchange(FirstError, nullptr);
    Lock.unlock();
    std::rethrow_exception(Error);
  }
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    WorkReady.wait(Lock, [this] { return !Queue.empty() || ShuttingDown; });
    if (Queue.empty()) {
      if (ShuttingDown)
        return;
      continue;
    }
    std::function<void()> Job = std::move(Queue.front());
    Queue.pop_front();
    ++Active;
    Lock.unlock();
    try {
      Job();
    } catch (...) {
      std::unique_lock<std::mutex> ErrorLock(Mutex);
      if (!FirstError)
        FirstError = std::current_exception();
    }
    Lock.lock();
    --Active;
    if (Queue.empty() && Active == 0)
      Idle.notify_all();
  }
}

void anek::parallelFor(ThreadPool *Pool, size_t Count,
                       const std::function<void(size_t)> &Fn) {
  if (!Pool || Pool->threadCount() <= 1) {
    for (size_t I = 0; I != Count; ++I)
      Fn(I);
    return;
  }
  for (size_t I = 0; I != Count; ++I)
    Pool->submit([&Fn, I] { Fn(I); });
  Pool->wait();
}
