//===- ThreadPool.cpp - Work-queue thread pool -----------------------------===//

#include "support/ThreadPool.h"

#include <utility>

using namespace anek;

unsigned ThreadPool::defaultParallelism() {
  unsigned N = std::thread::hardware_concurrency();
  return N > 0 ? N : 1;
}

ThreadPool::ThreadPool(unsigned ThreadCount) {
  if (ThreadCount == 0)
    ThreadCount = defaultParallelism();
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I != ThreadCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    // Graceful shutdown: workers finish everything already queued before
    // exiting their loops.
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::submit(std::function<void()> Job) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Job));
  }
  WorkReady.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Idle.wait(Lock, [this] { return Queue.empty() && Active == 0; });
  if (FirstError) {
    std::exception_ptr Error = std::exchange(FirstError, nullptr);
    Lock.unlock();
    std::rethrow_exception(Error);
  }
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    WorkReady.wait(Lock, [this] { return !Queue.empty() || ShuttingDown; });
    if (Queue.empty()) {
      if (ShuttingDown)
        return;
      continue;
    }
    std::function<void()> Job = std::move(Queue.front());
    Queue.pop_front();
    ++Active;
    Lock.unlock();
    try {
      Job();
    } catch (...) {
      std::unique_lock<std::mutex> ErrorLock(Mutex);
      if (!FirstError)
        FirstError = std::current_exception();
    }
    Lock.lock();
    --Active;
    if (Queue.empty() && Active == 0)
      Idle.notify_all();
  }
}

void anek::parallelFor(ThreadPool *Pool, size_t Count,
                       const std::function<void(size_t)> &Fn) {
  if (!Pool || Pool->threadCount() <= 1 || Count <= 1) {
    for (size_t I = 0; I != Count; ++I)
      Fn(I);
    return;
  }
  // Per-call completion latch rather than Pool->wait(): several
  // parallelFor calls may drive one shared pool concurrently (the batch
  // serving layer runs many inference requests over a single pool), and
  // pool-global wait() would block on — and steal exceptions from —
  // unrelated callers' jobs. Stack references stay valid because this
  // call blocks until its own Remaining hits zero.
  struct Latch {
    std::mutex Mutex;
    std::condition_variable Done;
    size_t Remaining;
    std::exception_ptr First;
  } L;
  L.Remaining = Count;
  for (size_t I = 0; I != Count; ++I)
    Pool->submit([&L, &Fn, I] {
      try {
        Fn(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(L.Mutex);
        if (!L.First)
          L.First = std::current_exception();
      }
      std::lock_guard<std::mutex> Lock(L.Mutex);
      if (--L.Remaining == 0)
        L.Done.notify_all();
    });
  std::unique_lock<std::mutex> Lock(L.Mutex);
  L.Done.wait(Lock, [&L] { return L.Remaining == 0; });
  if (L.First) {
    std::exception_ptr Error = L.First;
    Lock.unlock();
    std::rethrow_exception(Error);
  }
}
