//===- Rational.cpp - Exact rational arithmetic ---------------------------===//

#include "support/Rational.h"

#include <numeric>

using namespace anek;

Rational::Rational(int64_t Num, int64_t Den) : Num(Num), Den(Den) {
  if (Den == 0) {
    // Zero denominator (division by a zero rational, or int64 overflow in
    // a long elimination chain collapsing a product to zero) poisons the
    // value instead of aborting: arithmetic on an invalid Rational stays
    // invalid and callers reject the whole solution. See DESIGN.md,
    // "Failure model and degradation".
    this->Num = 0;
    return;
  }
  if (this->Den < 0) {
    this->Num = -this->Num;
    this->Den = -this->Den;
  }
  int64_t G = std::gcd(this->Num < 0 ? -this->Num : this->Num, this->Den);
  if (G > 1) {
    this->Num /= G;
    this->Den /= G;
  }
}

Rational Rational::operator+(const Rational &Other) const {
  if (!isValid() || !Other.isValid())
    return invalid();
  return Rational(Num * Other.Den + Other.Num * Den, Den * Other.Den);
}

Rational Rational::operator-(const Rational &Other) const {
  if (!isValid() || !Other.isValid())
    return invalid();
  return Rational(Num * Other.Den - Other.Num * Den, Den * Other.Den);
}

Rational Rational::operator*(const Rational &Other) const {
  if (!isValid() || !Other.isValid())
    return invalid();
  return Rational(Num * Other.Num, Den * Other.Den);
}

Rational Rational::operator/(const Rational &Other) const {
  if (!isValid() || !Other.isValid() || Other.isZero())
    return invalid();
  return Rational(Num * Other.Den, Den * Other.Num);
}

bool Rational::operator<(const Rational &Other) const {
  // Denominators are positive by the normalization invariant; an invalid
  // value (Den == 0) compares unordered-as-false on both sides.
  if (!isValid() || !Other.isValid())
    return false;
  return Num * Other.Den < Other.Num * Den;
}

std::string Rational::str() const {
  if (!isValid())
    return "<invalid>";
  if (Den == 1)
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}
