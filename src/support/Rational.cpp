//===- Rational.cpp - Exact rational arithmetic ---------------------------===//

#include "support/Rational.h"

#include <cassert>
#include <numeric>

using namespace anek;

Rational::Rational(int64_t Num, int64_t Den) : Num(Num), Den(Den) {
  assert(Den != 0 && "rational with zero denominator");
  if (this->Den < 0) {
    this->Num = -this->Num;
    this->Den = -this->Den;
  }
  int64_t G = std::gcd(this->Num < 0 ? -this->Num : this->Num, this->Den);
  if (G > 1) {
    this->Num /= G;
    this->Den /= G;
  }
}

Rational Rational::operator+(const Rational &Other) const {
  return Rational(Num * Other.Den + Other.Num * Den, Den * Other.Den);
}

Rational Rational::operator-(const Rational &Other) const {
  return Rational(Num * Other.Den - Other.Num * Den, Den * Other.Den);
}

Rational Rational::operator*(const Rational &Other) const {
  return Rational(Num * Other.Num, Den * Other.Den);
}

Rational Rational::operator/(const Rational &Other) const {
  assert(!Other.isZero() && "division by zero rational");
  return Rational(Num * Other.Den, Den * Other.Num);
}

bool Rational::operator<(const Rational &Other) const {
  // Denominators are positive by the normalization invariant.
  return Num * Other.Den < Other.Num * Den;
}

std::string Rational::str() const {
  if (Den == 1)
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}
