//===- Metrics.h - Named counters, gauges and histograms --------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide metrics registered by name (DESIGN.md, "Telemetry"):
/// monotonic counters, last-value gauges and min/max/sum histograms, all
/// updated with relaxed atomics so they are safe from any thread.
///
/// Instrumentation sites gate recording on telemetry::enabled(...) — the
/// same single-relaxed-load contract the tracer obeys — and cache the
/// registered object in a function-local static so the name lookup
/// happens once:
///
///   if (telemetry::enabled(TraceLevel::Phase)) {
///     static Counter &Solves = counter("solver.bp.solves");
///     Solves.add(1);
///   }
///
/// The exporter renders a schema-versioned flat JSON document
/// (`anek-metrics-v1`) with stable, sorted key order so diffs between
/// runs are meaningful. Registered objects are never deallocated;
/// resetMetricsForTest zeroes values but keeps references valid.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_METRICS_H
#define ANEK_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace anek {
namespace telemetry {

/// Monotonically increasing event count.
class Counter {
public:
  void add(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// Last-written value (e.g. a configuration knob or a final residual).
class Gauge {
public:
  void set(double V) { Value.store(V, std::memory_order_relaxed); }
  double value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> Value{0.0};
};

/// Streaming count/sum/min/max plus log-scale bucket counts over recorded
/// samples. Min/max converge via CAS loops, sum via C++20
/// atomic<double>::fetch_add, buckets via relaxed increments; concurrent
/// recording from solver threads is safe and lock-free.
///
/// Buckets are powers of two spanning [2^-32, 2^31): bucket 0 collects
/// everything <= 2^-32 (zeros and negatives included), bucket b covers
/// [2^(b-32), 2^(b-31)), the last bucket everything above. That gives
/// percentile estimates with at most one-octave error across the whole
/// microsecond-to-hours range the pipeline records, at a fixed 64 x u64
/// footprint per histogram.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 64;

  void record(double Sample);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Min/max of recorded samples; 0 when empty (matching the exporter).
  double min() const;
  double max() const;
  double mean() const;
  /// Estimated value at quantile \p Q in [0,1] from the bucket counts:
  /// the geometric midpoint of the bucket holding the rank, clamped into
  /// [min, max]. 0 when empty. Deterministic for a given sample multiset.
  double percentile(double Q) const;
  uint64_t bucketCount(unsigned I) const;
  /// Folds an externally recorded distribution in (the coordinator
  /// aggregating a worker's shipped histogram delta): adds count/sum and
  /// per-bucket counts, converges min/max. \p Buckets may carry fewer
  /// than NumBuckets entries (the excess is ignored beyond the layout).
  void absorb(uint64_t AddCount, double AddSum, double SeenMin,
              double SeenMax, const std::vector<uint64_t> &AddBuckets);
  void reset();

private:
  std::atomic<uint64_t> Count{0};
  std::atomic<double> Sum{0.0};
  std::atomic<double> Min{std::numeric_limits<double>::infinity()};
  std::atomic<double> Max{-std::numeric_limits<double>::infinity()};
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
};

/// Looks up (registering on first use) the named metric. References stay
/// valid for the process lifetime, across resetMetricsForTest.
Counter &counter(const std::string &Name);
Gauge &gauge(const std::string &Name);
Histogram &histogram(const std::string &Name);

/// Renders every registered metric as the `anek-metrics-v1` JSON
/// document: sorted key order, counters/gauges/histograms in fixed
/// sections.
std::string metricsJson();

/// Writes metricsJson() to \p Path; false (with \p Error filled when
/// non-null) when the file cannot be written.
bool writeMetricsFile(const std::string &Path, std::string *Error = nullptr);

/// Zeroes every registered metric without invalidating references.
void resetMetricsForTest();

//===----------------------------------------------------------------------===//
// Cross-process aggregation (DESIGN.md, "Distributed telemetry")
//===----------------------------------------------------------------------===//

/// Point-in-time value of one histogram (counts are snapshots, not
/// atomics): the portable form a shard worker ships and the coordinator
/// absorbs.
struct HistogramSnapshot {
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  std::vector<uint64_t> Buckets; ///< Up to Histogram::NumBuckets entries.
};

/// A capture of every registered metric by name. Also serves as a
/// *delta*: diffMetrics subtracts two captures so a worker ships only
/// what one task recorded.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, HistogramSnapshot> Histograms;
};

/// Captures every currently registered metric.
MetricsSnapshot captureMetrics();

/// Now minus Base: counters and histogram counts/sums/buckets subtract
/// (names missing from Base count from zero); gauges pass through Now's
/// value; histogram min/max pass through Now's observed extremes (min/max
/// of a difference is not derivable, and absorbing a lifetime min/max
/// repeatedly is idempotent). Entries that changed nothing are dropped,
/// so an idle interval diffs to an empty snapshot.
MetricsSnapshot diffMetrics(const MetricsSnapshot &Base,
                            const MetricsSnapshot &Now);

/// Folds \p Delta into the registry with every name prefixed by
/// \p Prefix: counters add, gauges set, histograms absorb. The
/// coordinator calls this with prefix "shard.worker." so worker-side
/// activity aggregates beside (never into) the coordinator's own series.
void absorbMetrics(const MetricsSnapshot &Delta, const std::string &Prefix);

} // namespace telemetry
} // namespace anek

#endif // ANEK_SUPPORT_METRICS_H
