//===- Metrics.h - Named counters, gauges and histograms --------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide metrics registered by name (DESIGN.md, "Telemetry"):
/// monotonic counters, last-value gauges and min/max/sum histograms, all
/// updated with relaxed atomics so they are safe from any thread.
///
/// Instrumentation sites gate recording on telemetry::enabled(...) — the
/// same single-relaxed-load contract the tracer obeys — and cache the
/// registered object in a function-local static so the name lookup
/// happens once:
///
///   if (telemetry::enabled(TraceLevel::Phase)) {
///     static Counter &Solves = counter("solver.bp.solves");
///     Solves.add(1);
///   }
///
/// The exporter renders a schema-versioned flat JSON document
/// (`anek-metrics-v1`) with stable, sorted key order so diffs between
/// runs are meaningful. Registered objects are never deallocated;
/// resetMetricsForTest zeroes values but keeps references valid.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_METRICS_H
#define ANEK_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>

namespace anek {
namespace telemetry {

/// Monotonically increasing event count.
class Counter {
public:
  void add(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// Last-written value (e.g. a configuration knob or a final residual).
class Gauge {
public:
  void set(double V) { Value.store(V, std::memory_order_relaxed); }
  double value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> Value{0.0};
};

/// Streaming count/sum/min/max over recorded samples. Min/max converge
/// via CAS loops, sum via C++20 atomic<double>::fetch_add; concurrent
/// recording from solver threads is safe and lock-free.
class Histogram {
public:
  void record(double Sample);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Min/max of recorded samples; 0 when empty (matching the exporter).
  double min() const;
  double max() const;
  double mean() const;
  void reset();

private:
  std::atomic<uint64_t> Count{0};
  std::atomic<double> Sum{0.0};
  std::atomic<double> Min{std::numeric_limits<double>::infinity()};
  std::atomic<double> Max{-std::numeric_limits<double>::infinity()};
};

/// Looks up (registering on first use) the named metric. References stay
/// valid for the process lifetime, across resetMetricsForTest.
Counter &counter(const std::string &Name);
Gauge &gauge(const std::string &Name);
Histogram &histogram(const std::string &Name);

/// Renders every registered metric as the `anek-metrics-v1` JSON
/// document: sorted key order, counters/gauges/histograms in fixed
/// sections.
std::string metricsJson();

/// Writes metricsJson() to \p Path; false (with \p Error filled when
/// non-null) when the file cannot be written.
bool writeMetricsFile(const std::string &Path, std::string *Error = nullptr);

/// Zeroes every registered metric without invalidating references.
void resetMetricsForTest();

} // namespace telemetry
} // namespace anek

#endif // ANEK_SUPPORT_METRICS_H
