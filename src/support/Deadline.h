//===- Deadline.h - Wall-clock and iteration budgets -------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A combined wall-clock + iteration budget handed down through the solver
/// stack. Solvers poll expired() at loop boundaries and return a
/// DeadlineExceeded status (or a partial result flagged as such) instead of
/// running unbounded on pathological graphs. A default-constructed
/// Deadline is unlimited, so budget-free callers pay nothing.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_DEADLINE_H
#define ANEK_SUPPORT_DEADLINE_H

#include "support/FaultInject.h"

#include <chrono>
#include <limits>

namespace anek {

/// Wall-clock deadline plus optional iteration cap. Copyable; copies share
/// the same absolute expiry point.
class Deadline {
public:
  /// Unlimited: never expires (except under the 'deadline' fault).
  Deadline() = default;

  /// Expires \p Seconds from now (<= 0 means already expired).
  static Deadline afterSeconds(double Seconds) {
    Deadline D;
    D.HasExpiry = true;
    D.Expiry = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(Seconds));
    return D;
  }

  /// Caps iteration count only (no wall-clock component).
  static Deadline iterations(unsigned MaxIterations) {
    Deadline D;
    D.MaxIterations = MaxIterations;
    return D;
  }

  /// Both a wall-clock and an iteration budget.
  static Deadline of(double Seconds, unsigned MaxIterations) {
    Deadline D = afterSeconds(Seconds);
    D.MaxIterations = MaxIterations;
    return D;
  }

  bool unlimited() const { return !HasExpiry && MaxIterations == 0; }

  /// True once the wall clock passed the expiry, \p IterationsUsed reached
  /// the iteration cap, or the 'deadline' fault is injected.
  bool expired(unsigned IterationsUsed = 0) const {
    // anyActive() first: it is one atomic load, while active() takes the
    // registry lock. expired() sits inside every solver loop.
    if (faults::anyActive() && faults::active(FaultKind::DeadlineExpiry))
      return true;
    if (MaxIterations != 0 && IterationsUsed >= MaxIterations)
      return true;
    return HasExpiry && Clock::now() >= Expiry;
  }

  /// Seconds until the wall-clock expiry; +inf when unlimited, clamped at
  /// zero once expired.
  double remainingSeconds() const {
    if (!HasExpiry)
      return std::numeric_limits<double>::infinity();
    double Left =
        std::chrono::duration<double>(Expiry - Clock::now()).count();
    return Left > 0.0 ? Left : 0.0;
  }

  unsigned iterationBudget() const { return MaxIterations; }

private:
  using Clock = std::chrono::steady_clock;
  bool HasExpiry = false;
  Clock::time_point Expiry{};
  unsigned MaxIterations = 0;
};

} // namespace anek

#endif // ANEK_SUPPORT_DEADLINE_H
