//===- Format.h - printf-style formatting into std::string ------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small formatting helpers so library code never touches <iostream>.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_FORMAT_H
#define ANEK_SUPPORT_FORMAT_H

#include <string>

namespace anek {

/// Formats \p Fmt with printf semantics into a std::string.
std::string formatStr(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Left-pads \p S with spaces to at least \p Width characters.
std::string padLeft(const std::string &S, unsigned Width);

/// Right-pads \p S with spaces to at least \p Width characters.
std::string padRight(const std::string &S, unsigned Width);

} // namespace anek

#endif // ANEK_SUPPORT_FORMAT_H
