//===- Format.cpp - printf-style formatting into std::string -------------===//

#include "support/Format.h"

#include <cassert>
#include <cstdarg>
#include <cstdio>
#include <vector>

using namespace anek;

std::string anek::formatStr(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  assert(Needed >= 0 && "invalid format string");
  std::vector<char> Buf(static_cast<size_t>(Needed) + 1);
  std::vsnprintf(Buf.data(), Buf.size(), Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return std::string(Buf.data(), static_cast<size_t>(Needed));
}

std::string anek::padLeft(const std::string &S, unsigned Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string anek::padRight(const std::string &S, unsigned Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}
