//===- MemTrack.cpp - Per-request allocation tracking ----------------------===//
//
// The global operator new/delete replacements live here so that linking any
// MemCharge/MemScope user (the serving layer, its tests, the soak harness)
// pulls them in, while binaries that never touch memory governance keep the
// default allocator. Within one binary the accounting is therefore always
// consistent: either every allocation goes through the hook or none does.
//
//===----------------------------------------------------------------------===//

#include "support/MemTrack.h"

#include "support/Format.h"

#include <cstdlib>
#include <new>

using namespace anek;
using namespace anek::memtrack;

namespace {

/// The calling thread's enrollment. Plain thread_local pointer: one load
/// per allocation when not enrolled, zero-initialized for threads that
/// never enroll.
thread_local MemCharge *ActiveCharge = nullptr;

} // namespace

void MemCharge::charge(long long Bytes) {
  long long Now = Current.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
  long long P = Peak.load(std::memory_order_relaxed);
  while (Now > P &&
         !Peak.compare_exchange_weak(P, Now, std::memory_order_relaxed)) {
  }
  // Budget enforcement. Blown is exchanged before the cancel message is
  // composed: composing allocates, which re-enters charge(), and the flag
  // is what cuts that recursion after one level.
  if (Budget > 0 && Now > Budget && Token &&
      !Blown.exchange(true, std::memory_order_relaxed))
    Token->cancel(ErrorCode::ResourceExhausted,
                  formatStr("mem-budget: %lld bytes live exceeds budget of "
                            "%lld bytes",
                            Now, Budget));
}

MemScope::MemScope(MemCharge *Charge) : Previous(ActiveCharge) {
  if (Charge)
    ActiveCharge = Charge;
}

MemScope::~MemScope() { ActiveCharge = Previous; }

MemCharge *memtrack::activeCharge() { return ActiveCharge; }

//===----------------------------------------------------------------------===//
// Global allocator replacements
//===----------------------------------------------------------------------===//

namespace {

void *trackedAlloc(std::size_t Size) {
  void *P = std::malloc(Size ? Size : 1);
  if (P && ActiveCharge)
    ActiveCharge->charge(static_cast<long long>(Size));
  return P;
}

void trackedFree(void *P, std::size_t Size) {
  if (P && ActiveCharge)
    ActiveCharge->release(static_cast<long long>(Size));
  std::free(P);
}

} // namespace

// Weak definitions so a test binary that replaces the global allocator
// itself (trace_test's allocation counter) overrides these at link time;
// within one binary the accounting stays all-or-nothing either way.
#define ANEK_MEMTRACK_WEAK __attribute__((weak))

ANEK_MEMTRACK_WEAK void *operator new(std::size_t Size) {
  if (void *P = trackedAlloc(Size))
    return P;
  throw std::bad_alloc();
}

ANEK_MEMTRACK_WEAK void *operator new[](std::size_t Size) {
  if (void *P = trackedAlloc(Size))
    return P;
  throw std::bad_alloc();
}

ANEK_MEMTRACK_WEAK void *operator new(std::size_t Size,
                                      const std::nothrow_t &) noexcept {
  return trackedAlloc(Size);
}

ANEK_MEMTRACK_WEAK void *operator new[](std::size_t Size,
                                        const std::nothrow_t &) noexcept {
  return trackedAlloc(Size);
}

// Unsized deallocation cannot release (the byte count is unknown); the
// charge drifts conservatively upward. Sized deallocation releases.
ANEK_MEMTRACK_WEAK void operator delete(void *P) noexcept { std::free(P); }
ANEK_MEMTRACK_WEAK void operator delete[](void *P) noexcept { std::free(P); }
ANEK_MEMTRACK_WEAK void operator delete(void *P, std::size_t Size) noexcept {
  trackedFree(P, Size);
}
ANEK_MEMTRACK_WEAK void operator delete[](void *P,
                                          std::size_t Size) noexcept {
  trackedFree(P, Size);
}
ANEK_MEMTRACK_WEAK void operator delete(void *P,
                                        const std::nothrow_t &) noexcept {
  std::free(P);
}
ANEK_MEMTRACK_WEAK void operator delete[](void *P,
                                          const std::nothrow_t &) noexcept {
  std::free(P);
}
