//===- StringUtils.cpp - Common string predicates and splitters ----------===//

#include "support/StringUtils.h"

#include <cctype>

using namespace anek;

bool anek::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

bool anek::endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

std::string anek::trim(const std::string &S) {
  size_t Begin = 0, End = S.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

std::vector<std::string> anek::splitAndTrim(const std::string &S, char Sep) {
  std::vector<std::string> Result;
  size_t Start = 0;
  while (Start <= S.size()) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string::npos)
      Pos = S.size();
    std::string Piece = trim(S.substr(Start, Pos - Start));
    if (!Piece.empty())
      Result.push_back(std::move(Piece));
    Start = Pos + 1;
  }
  return Result;
}

std::string anek::join(const std::vector<std::string> &Parts,
                       const std::string &Sep) {
  std::string Result;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

uint64_t anek::stableHash64(const std::string &S) {
  uint64_t Hash = 0xCBF29CE484222325ULL; // FNV offset basis.
  for (unsigned char C : S) {
    Hash ^= C;
    Hash *= 0x100000001B3ULL; // FNV prime.
  }
  return Hash;
}
