//===- WireFormat.h - Bounds-checked binary encoding helpers -----*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level substrate of every ANEK wire format (the summary
/// snapshot/outcome blobs of src/infer/SummaryIO.h and the anek-shard-v1
/// frames of src/shard/Wire.h). Encoding is explicit little-endian fixed
/// width — the same bytes on every host this reproduction targets — and
/// doubles travel as bit-cast u64, so a summary that crosses a process
/// boundary is bit-identical on arrival (the determinism contract's
/// foundation).
///
/// Reading is defensive by design: a Reader never indexes past its
/// buffer; the first short or oversized read latches a sticky failure
/// state that every later read observes, so decoders can run a straight
/// sequence of reads and check ok() once. Hostile or truncated input can
/// make a decode *fail*, never make it read out of bounds.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_WIREFORMAT_H
#define ANEK_SUPPORT_WIREFORMAT_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace anek {
namespace wire {

/// FNV-1a over \p Data — the checksum of every ANEK wire payload. Not
/// cryptographic; it detects the torn writes, truncation and bit flips
/// the shard failure model defends against.
inline uint64_t fnv1a64(std::string_view Data) {
  uint64_t Hash = 1469598103934665603ULL;
  for (unsigned char C : Data) {
    Hash ^= C;
    Hash *= 1099511628211ULL;
  }
  return Hash;
}

/// Append-only little-endian encoder.
class Writer {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u16(uint16_t V) { fixed(&V, sizeof(V)); }
  void u32(uint32_t V) { fixed(&V, sizeof(V)); }
  void u64(uint64_t V) { fixed(&V, sizeof(V)); }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
  /// Length-prefixed (u32) byte string.
  void str(std::string_view V) {
    u32(static_cast<uint32_t>(V.size()));
    Buf.append(V.data(), V.size());
  }

  const std::string &bytes() const { return Buf; }
  std::string take() { return std::move(Buf); }

private:
  void fixed(const void *P, size_t N) {
    // Little-endian hosts only (static_assert would need C++20 endian;
    // the toolchain this repo targets is x86-64/aarch64 LE).
    Buf.append(static_cast<const char *>(P), N);
  }

  std::string Buf;
};

/// Bounds-checked little-endian decoder with a sticky failure flag.
class Reader {
public:
  explicit Reader(std::string_view Data) : Data(Data) {}

  bool u8(uint8_t &V) { return fixed(&V, sizeof(V)); }
  bool u16(uint16_t &V) { return fixed(&V, sizeof(V)); }
  bool u32(uint32_t &V) { return fixed(&V, sizeof(V)); }
  bool u64(uint64_t &V) { return fixed(&V, sizeof(V)); }
  bool f64(double &V) {
    uint64_t Bits = 0;
    if (!u64(Bits))
      return false;
    std::memcpy(&V, &Bits, sizeof(V));
    return true;
  }
  /// Length-prefixed byte string; fails (without allocating) when the
  /// declared length exceeds \p MaxLen or the remaining buffer.
  bool str(std::string &V, size_t MaxLen = DefaultMaxString) {
    uint32_t Len = 0;
    if (!u32(Len))
      return false;
    if (Len > MaxLen || Len > remaining())
      return fail();
    V.assign(Data.data() + Pos, Len);
    Pos += Len;
    return true;
  }

  /// Reads an element count and validates it against the bytes that
  /// could possibly back it (\p MinBytesPer each), so a corrupt count
  /// can never drive a giant allocation.
  bool count(uint32_t &N, size_t MinBytesPer) {
    if (!u32(N))
      return false;
    if (MinBytesPer != 0 && N > remaining() / MinBytesPer)
      return fail();
    return true;
  }

  size_t remaining() const { return Bad ? 0 : Data.size() - Pos; }
  bool ok() const { return !Bad; }
  /// True when every byte was consumed and nothing failed.
  bool done() const { return !Bad && Pos == Data.size(); }

private:
  static constexpr size_t DefaultMaxString = 1u << 24;

  bool fail() {
    Bad = true;
    return false;
  }
  bool fixed(void *P, size_t N) {
    if (Bad || N > Data.size() - Pos)
      return fail();
    std::memcpy(P, Data.data() + Pos, N);
    Pos += N;
    return true;
  }

  std::string_view Data;
  size_t Pos = 0;
  bool Bad = false;
};

} // namespace wire
} // namespace anek

#endif // ANEK_SUPPORT_WIREFORMAT_H
