//===- Subprocess.h - Child processes and EINTR-safe pipe I/O ----*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process and pipe plumbing for the sharded execution tier (DESIGN.md,
/// "Sharded execution and failure model"). Two things live here:
///
///  - EINTR-safe blocking I/O: readFull/writeFull/waitReadable retry
///    interrupted syscalls, so signal delivery (SIGINT during a drain, a
///    profiler's SIGPROF, the soak harness's own chaos signals) can never
///    surface as a spurious short read or a phantom worker failure.
///
///  - ChildProcess: fork/exec with stdin/stdout pipes, non-blocking
///    liveness polls and EINTR-safe reaping. Every exit path (normal,
///    signalled, killed by the coordinator) funnels into one ExitStatus
///    so callers classify worker loss uniformly.
///
/// All functions return Status instead of raising: a dead peer is an
/// expected event in the shard failure model, not an exception.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_SUBPROCESS_H
#define ANEK_SUPPORT_SUBPROCESS_H

#include "support/Status.h"

#include <optional>
#include <string>
#include <sys/types.h>
#include <vector>

namespace anek {
namespace subprocess {

/// Reads exactly \p Size bytes from \p Fd, retrying EINTR and short
/// reads. Errors: WorkerLost on EOF before Size bytes (the peer closed
/// the pipe — in the shard protocol that means the worker died), Internal
/// on any other read failure.
Status readFull(int Fd, void *Buffer, size_t Size);

/// Writes exactly \p Size bytes to \p Fd, retrying EINTR and short
/// writes. Errors: WorkerLost on EPIPE (peer gone; callers must have
/// SIGPIPE ignored — see ignoreSigpipe), Internal otherwise.
Status writeFull(int Fd, const void *Buffer, size_t Size);

/// Blocks until \p Fd is readable or \p TimeoutSeconds elapse, retrying
/// EINTR with the remaining time recomputed so signal storms cannot
/// stretch the wait. Returns ok when readable, DeadlineExceeded on
/// timeout (< 0 never times out), WorkerLost when the peer hung up with
/// no data left, Internal on poll failure.
Status waitReadable(int Fd, double TimeoutSeconds);

/// Ignores SIGPIPE process-wide (idempotent). A coordinator writing to a
/// crashed worker must see EPIPE as a Status, not die by signal.
void ignoreSigpipe();

/// Absolute path of the running executable (/proc/self/exe; falls back to
/// \p Fallback when the link cannot be read). Coordinators use this to
/// re-exec themselves as `--worker` processes.
std::string selfExePath(const std::string &Fallback);

/// How a child ended.
struct ExitStatus {
  bool Exited = false;   ///< True: normal exit, Code below is valid.
  bool Signalled = false;///< True: killed by Signal below.
  int Code = 0;
  int Signal = 0;

  /// "exit 3" / "signal 9" — for worker-loss diagnostics.
  std::string str() const;
};

/// A fork/exec'd child with pipes to its stdin and stdout. Movable, not
/// copyable; the destructor kills (SIGKILL) and reaps anything still
/// running so a coordinator can never leak zombies.
class ChildProcess {
public:
  ChildProcess() = default;
  ~ChildProcess();
  ChildProcess(ChildProcess &&Other) noexcept;
  ChildProcess &operator=(ChildProcess &&Other) noexcept;
  ChildProcess(const ChildProcess &) = delete;
  ChildProcess &operator=(const ChildProcess &) = delete;

  /// Spawns \p Argv (argv[0] = executable path). The child's stdin reads
  /// from writeFd()'s pipe and its stdout feeds readFd(); stderr is
  /// inherited so worker diagnostics land on the coordinator's stderr.
  Status spawn(const std::vector<std::string> &Argv);

  bool running() const { return Pid > 0; }
  pid_t pid() const { return Pid; }
  /// Coordinator-side ends: read worker output / write worker input.
  int readFd() const { return ReadFd; }
  int writeFd() const { return WriteFd; }

  /// Sends \p Signal; no-op when not running.
  void kill(int Signal);

  /// Non-blocking liveness probe: reaps and returns the exit status when
  /// the child has ended, nullopt while it still runs. EINTR-safe.
  std::optional<ExitStatus> poll();

  /// Blocks until the child ends and reaps it (EINTR-safe). Returns the
  /// last known status when already reaped.
  ExitStatus wait();

  /// Closes both pipe ends (signals EOF to a well-behaved child).
  void closePipes();

private:
  void reset();

  pid_t Pid = -1;
  int ReadFd = -1;
  int WriteFd = -1;
  ExitStatus LastExit;
  bool Reaped = false;
};

} // namespace subprocess
} // namespace anek

#endif // ANEK_SUPPORT_SUBPROCESS_H
