//===- MemTrack.h - Per-request allocation tracking --------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tracking-allocation hook for per-request memory governance (DESIGN.md,
/// "Serving model"). A thread enrolls in a MemCharge with a MemScope;
/// while enrolled, every global operator new/delete on that thread charges
/// or releases bytes against the charge, which maintains a live-byte count
/// and a peak watermark. A charge bound to a budget and a CancelToken
/// cancels the token the moment the watermark crosses the budget — the
/// request then fails with a `mem-budget` status at the next cooperative
/// checkpoint instead of the process being OOM-killed.
///
/// Accounting contract (deliberately conservative):
///  - Only threads enrolled via MemScope are charged; unenrolled threads
///    cost exactly one thread-local load per allocation.
///  - Unsized deallocations are not released (the byte count is unknown),
///    so cross-TU frees drift the watermark upward, never downward.
///  - A free of memory allocated before enrollment may push the live count
///    negative; the peak watermark only ever ratchets up.
///
/// The operator new/delete replacements live in MemTrack.cpp; linking any
/// MemCharge/MemScope user pulls them into the binary.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_MEMTRACK_H
#define ANEK_SUPPORT_MEMTRACK_H

#include "support/Cancel.h"

#include <atomic>
#include <cstddef>

namespace anek {
namespace memtrack {

/// Live-byte counter + peak watermark for one request, updated by every
/// enrolled thread. Optionally bound to a budget and a CancelToken.
class MemCharge {
public:
  MemCharge() = default;
  MemCharge(const MemCharge &) = delete;
  MemCharge &operator=(const MemCharge &) = delete;

  /// Arms budget enforcement: once the live count exceeds \p BudgetBytes,
  /// \p Token is cancelled (ResourceExhausted, "mem-budget: ...") exactly
  /// once. \p BudgetBytes == 0 disables enforcement (tracking only).
  /// Must be called before any thread enrolls.
  void bind(long long BudgetBytes, CancelToken *Token) {
    Budget = BudgetBytes;
    this->Token = Token;
  }

  /// Adds \p Bytes to the live count, ratchets the peak, and enforces the
  /// budget. Safe from any thread, including inside operator new.
  void charge(long long Bytes);

  /// Subtracts \p Bytes from the live count (sized deallocation).
  void release(long long Bytes) {
    Current.fetch_sub(Bytes, std::memory_order_relaxed);
  }

  /// A synthetic allocation that is never released: the `mem-spike` fault
  /// uses this to blow a budget deterministically without real memory.
  void spike(long long Bytes) { charge(Bytes); }

  long long current() const {
    return Current.load(std::memory_order_relaxed);
  }
  long long peak() const { return Peak.load(std::memory_order_relaxed); }

  /// True once the budget was crossed (and the token cancelled).
  bool budgetBlown() const {
    return Blown.load(std::memory_order_relaxed);
  }

private:
  std::atomic<long long> Current{0};
  std::atomic<long long> Peak{0};
  std::atomic<bool> Blown{false};
  long long Budget = 0;
  CancelToken *Token = nullptr;
};

/// RAII enrollment of the calling thread into \p Charge (nullptr = no-op).
/// Scopes nest: the previous enrollment is restored on destruction. The
/// constructor/destructor are out-of-line on purpose — referencing them is
/// what links the operator new/delete replacements into a binary.
class MemScope {
public:
  explicit MemScope(MemCharge *Charge);
  ~MemScope();

  MemScope(const MemScope &) = delete;
  MemScope &operator=(const MemScope &) = delete;

private:
  MemCharge *Previous;
};

/// The calling thread's active charge (nullptr when not enrolled).
MemCharge *activeCharge();

} // namespace memtrack
} // namespace anek

#endif // ANEK_SUPPORT_MEMTRACK_H
