//===- ThreadPool.h - Work-queue thread pool ---------------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size work-queue thread pool for the parallel inference
/// scheduler (DESIGN.md, "Concurrency model"). Jobs are submitted with
/// submit(); wait() blocks until every submitted job has finished and
/// rethrows the first exception a worker captured, so a throwing job
/// surfaces in the scheduling thread instead of killing the process.
/// Destruction drains the queue (graceful shutdown): every job submitted
/// before the destructor runs is executed.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_THREADPOOL_H
#define ANEK_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace anek {

/// Fixed-size pool of worker threads draining a FIFO job queue.
class ThreadPool {
public:
  /// Spawns \p ThreadCount workers (0 means defaultParallelism()).
  explicit ThreadPool(unsigned ThreadCount = 0);

  /// Drains the queue, then joins every worker. An unconsumed worker
  /// exception is swallowed here (wait() is the reporting channel).
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Job for execution by any worker.
  void submit(std::function<void()> Job);

  /// Blocks until the queue is empty and no job is in flight, then
  /// rethrows the first exception any worker captured since the last
  /// wait(). The pool stays usable after wait(), including after a
  /// rethrow.
  void wait();

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// What `--jobs` defaults to: hardware_concurrency, with a floor of 1
  /// when the runtime cannot tell.
  static unsigned defaultParallelism();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  mutable std::mutex Mutex;
  std::condition_variable WorkReady; ///< Signals queued work / shutdown.
  std::condition_variable Idle;      ///< Signals queue drained + none active.
  unsigned Active = 0;               ///< Jobs currently executing.
  bool ShuttingDown = false;
  std::exception_ptr FirstError; ///< First worker exception since wait().
};

/// Runs Fn(0), ..., Fn(Count-1). With a null \p Pool (or a single-threaded
/// one) the calls run inline in index order; otherwise they are submitted
/// as pool jobs and this blocks until all complete (the first worker
/// exception rethrows here). Completion is tracked per call, not via
/// ThreadPool::wait, so any number of parallelFor calls may share one
/// pool concurrently — the batch serving layer drives many inference
/// requests over a single pool this way. Callers must make Fn calls
/// independent: the parallel inference scheduler relies on this to run
/// wave jobs against a read-only snapshot. Must not be called from inside
/// a pool job of the same pool (the blocked worker would deadlock a
/// saturated pool).
void parallelFor(ThreadPool *Pool, size_t Count,
                 const std::function<void(size_t)> &Fn);

} // namespace anek

#endif // ANEK_SUPPORT_THREADPOOL_H
