//===- Trace.cpp - Structured tracing for the inference pipeline -----------===//

#include "support/Trace.h"

#include "support/Format.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

using namespace anek;
using namespace anek::telemetry;

std::atomic<int> anek::telemetry::detail::ActiveLevel{0};

namespace {

using Clock = std::chrono::steady_clock;

/// Process-wide trace epoch: timestamps are microseconds since the first
/// telemetry use, so they stay small and positive.
Clock::time_point traceEpoch() {
  static const Clock::time_point Epoch = Clock::now();
  return Epoch;
}

/// One recorded event. Name/Category are string literals (stored by
/// pointer); dynamic detail lives in the preformatted Args body.
struct TraceEvent {
  const char *Name = nullptr;
  const char *Category = nullptr;
  char Phase = 'X'; ///< 'X' complete, 'i' instant, 'C' counter, 's' flow.
  int64_t TsUs = 0;
  int64_t DurUs = 0; ///< Complete events only.
  unsigned Tid = 0;
  unsigned Depth = 0;
  uint64_t FlowId = 0; ///< Flow events only.
  std::string Args; ///< JSON object body without braces; may be empty.
};

/// Per-thread event buffer. Events are appended by the owning thread
/// under Mutex (flush reads from other threads take the same lock);
/// Depth is touched by the owning thread only.
struct ThreadBuffer {
  explicit ThreadBuffer(unsigned Tid) : Tid(Tid) {}
  const unsigned Tid;
  unsigned Depth = 0;
  std::mutex Mutex;
  std::vector<TraceEvent> Events;
};

/// An event merged in from another process (a shard worker), with owned
/// strings and an explicit pid lane.
struct RemoteEvent {
  unsigned Pid = 0;
  EventRecord E;
};

/// Registry owning every thread's buffer. Buffers outlive their threads
/// (a pool worker's events survive pool destruction until flush).
/// RemoteEvents holds what addRemoteEvents injected, under RemoteMutex so
/// coordinator dispatch threads merging worker telemetry do not contend
/// with local recording.
struct TraceRegistry {
  std::mutex Mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers;
  std::mutex RemoteMutex;
  std::vector<RemoteEvent> RemoteEvents;
  std::map<unsigned, std::string> RemoteProcessNames;
};

TraceRegistry &registry() {
  static TraceRegistry *R = new TraceRegistry(); // Never destroyed:
  return *R; // buffers must stay valid through static teardown.
}

ThreadBuffer &localBuffer() {
  thread_local ThreadBuffer *Buf = [] {
    TraceRegistry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    R.Buffers.push_back(std::make_unique<ThreadBuffer>(
        static_cast<unsigned>(R.Buffers.size())));
    return R.Buffers.back().get();
  }();
  return *Buf;
}

void appendEvent(ThreadBuffer &Buf, TraceEvent Event) {
  std::lock_guard<std::mutex> Lock(Buf.Mutex);
  Buf.Events.push_back(std::move(Event));
}

void appendJsonEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatStr("\\u%04x", C);
      else
        Out += C;
    }
  }
}

} // namespace

void anek::telemetry::setTraceLevel(TraceLevel Level) {
  // Touch the epoch so timestamps are relative to enablement, not to an
  // arbitrary later first event.
  traceEpoch();
  detail::ActiveLevel.store(static_cast<int>(Level),
                            std::memory_order_relaxed);
}

TraceLevel anek::telemetry::traceLevel() {
  return static_cast<TraceLevel>(
      detail::ActiveLevel.load(std::memory_order_relaxed));
}

const char *anek::telemetry::traceLevelName(TraceLevel Level) {
  switch (Level) {
  case TraceLevel::Off:
    return "off";
  case TraceLevel::Phase:
    return "phase";
  case TraceLevel::Method:
    return "method";
  case TraceLevel::Solver:
    return "solver";
  }
  return "unknown";
}

bool anek::telemetry::parseTraceLevel(const std::string &Name,
                                      TraceLevel &Out) {
  if (Name == "off")
    Out = TraceLevel::Off;
  else if (Name == "phase")
    Out = TraceLevel::Phase;
  else if (Name == "method")
    Out = TraceLevel::Method;
  else if (Name == "solver")
    Out = TraceLevel::Solver;
  else
    return false;
  return true;
}

int64_t anek::telemetry::nowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               traceEpoch())
      .count();
}

unsigned anek::telemetry::currentThreadId() { return localBuffer().Tid; }

//===----------------------------------------------------------------------===//
// Span
//===----------------------------------------------------------------------===//

void Span::begin() {
  ThreadBuffer &Buf = localBuffer();
  Buffer = &Buf;
  Depth = Buf.Depth++;
  StartUs = nowUs();
}

void Span::end() {
  ThreadBuffer &Buf = *static_cast<ThreadBuffer *>(Buffer);
  TraceEvent Event;
  Event.Name = Name;
  Event.Category = Category;
  Event.Phase = 'X';
  Event.TsUs = StartUs;
  Event.DurUs = nowUs() - StartUs;
  Event.Tid = Buf.Tid;
  Event.Depth = Depth;
  Event.Args = std::move(Args);
  --Buf.Depth;
  appendEvent(Buf, std::move(Event));
}

void Span::arg(const char *Key, const std::string &Value) {
  if (!Buffer)
    return;
  if (!Args.empty())
    Args += ',';
  Args += '"';
  appendJsonEscaped(Args, Key);
  Args += "\":";
  Args += jsonQuote(Value);
}

void Span::arg(const char *Key, const char *Value) {
  arg(Key, std::string(Value));
}

void Span::arg(const char *Key, uint64_t Value) {
  if (!Buffer)
    return;
  if (!Args.empty())
    Args += ',';
  Args += formatStr("\"%s\":%llu", Key,
                    static_cast<unsigned long long>(Value));
}

void Span::arg(const char *Key, int64_t Value) {
  if (!Buffer)
    return;
  if (!Args.empty())
    Args += ',';
  Args += formatStr("\"%s\":%lld", Key, static_cast<long long>(Value));
}

void Span::arg(const char *Key, double Value) {
  if (!Buffer)
    return;
  if (!Args.empty())
    Args += ',';
  Args += '"';
  Args += Key;
  Args += "\":";
  Args += jsonNumber(Value);
}

void Span::argBool(const char *Key, bool Value) {
  if (!Buffer)
    return;
  if (!Args.empty())
    Args += ',';
  Args += formatStr("\"%s\":%s", Key, Value ? "true" : "false");
}

//===----------------------------------------------------------------------===//
// Free-standing events
//===----------------------------------------------------------------------===//

void anek::telemetry::instant(const char *Name, TraceLevel Level,
                              const char *Category, std::string ArgsJson) {
  if (!enabled(Level))
    return;
  ThreadBuffer &Buf = localBuffer();
  TraceEvent Event;
  Event.Name = Name;
  Event.Category = Category;
  Event.Phase = 'i';
  Event.TsUs = nowUs();
  Event.Tid = Buf.Tid;
  Event.Depth = Buf.Depth;
  Event.Args = std::move(ArgsJson);
  appendEvent(Buf, std::move(Event));
}

void anek::telemetry::counterSample(const char *Name, TraceLevel Level,
                                    const char *Category,
                                    const char *SeriesKey, double Value) {
  if (!enabled(Level))
    return;
  ThreadBuffer &Buf = localBuffer();
  TraceEvent Event;
  Event.Name = Name;
  Event.Category = Category;
  Event.Phase = 'C';
  Event.TsUs = nowUs();
  Event.Tid = Buf.Tid;
  Event.Depth = Buf.Depth;
  Event.Args = '"';
  appendJsonEscaped(Event.Args, SeriesKey);
  Event.Args += "\":";
  Event.Args += jsonNumber(Value);
  appendEvent(Buf, std::move(Event));
}

//===----------------------------------------------------------------------===//
// Export
//===----------------------------------------------------------------------===//

std::string anek::telemetry::jsonQuote(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out += '"';
  appendJsonEscaped(Out, S);
  Out += '"';
  return Out;
}

std::string anek::telemetry::jsonNumber(double Value) {
  if (!std::isfinite(Value))
    return "null";
  return formatStr("%.17g", Value);
}

namespace {

/// One event ready to render: a local event (exported under pid 1, the
/// process's own lane group) or a remote-lane event under a worker pid.
struct RenderEvent {
  unsigned Pid = 1;
  const char *Name = nullptr;      ///< Literal (local events)...
  const std::string *NameStr = nullptr; ///< ...or owned (remote events).
  const char *Category = nullptr;
  const std::string *CategoryStr = nullptr;
  char Phase = 'X';
  int64_t TsUs = 0;
  int64_t DurUs = 0;
  unsigned Tid = 0;
  unsigned Depth = 0;
  uint64_t FlowId = 0;
  const std::string *Args = nullptr;
};

} // namespace

std::string anek::telemetry::chromeTraceJson() {
  // Snapshot every buffer under its lock; threads may still be running.
  // Local copies keep the remote store's strings alive for rendering.
  std::vector<TraceEvent> Local;
  std::vector<RemoteEvent> Remote;
  std::map<unsigned, std::string> RemoteNames;
  {
    TraceRegistry &R = registry();
    std::lock_guard<std::mutex> RegistryLock(R.Mutex);
    for (const auto &Buf : R.Buffers) {
      std::lock_guard<std::mutex> BufLock(Buf->Mutex);
      Local.insert(Local.end(), Buf->Events.begin(), Buf->Events.end());
    }
  }
  {
    TraceRegistry &R = registry();
    std::lock_guard<std::mutex> RemoteLock(R.RemoteMutex);
    Remote = R.RemoteEvents;
    RemoteNames = R.RemoteProcessNames;
  }

  std::vector<RenderEvent> Events;
  Events.reserve(Local.size() + Remote.size());
  for (const TraceEvent &E : Local) {
    RenderEvent V;
    V.Pid = 1;
    V.Name = E.Name;
    V.Category = E.Category;
    V.Phase = E.Phase;
    V.TsUs = E.TsUs;
    V.DurUs = E.DurUs;
    V.Tid = E.Tid;
    V.Depth = E.Depth;
    V.FlowId = E.FlowId;
    V.Args = &E.Args;
    Events.push_back(V);
  }
  for (const RemoteEvent &R : Remote) {
    RenderEvent V;
    V.Pid = R.Pid;
    V.NameStr = &R.E.Name;
    V.CategoryStr = &R.E.Category;
    V.Phase = R.E.Phase;
    V.TsUs = R.E.TsUs;
    V.DurUs = R.E.DurUs;
    V.Tid = R.E.Tid;
    V.Depth = R.E.Depth;
    V.FlowId = R.E.FlowId;
    V.Args = &R.E.Args;
    Events.push_back(V);
  }
  std::stable_sort(Events.begin(), Events.end(),
                   [](const RenderEvent &A, const RenderEvent &B) {
                     if (A.TsUs != B.TsUs)
                       return A.TsUs < B.TsUs;
                     if (A.Pid != B.Pid)
                       return A.Pid < B.Pid;
                     return A.Tid < B.Tid;
                   });

  unsigned MaxTid = 0;
  for (const RenderEvent &E : Events)
    if (E.Pid == 1)
      MaxTid = std::max(MaxTid, E.Tid);
  // Remote tids seen per pid, for thread-name metadata.
  std::map<unsigned, unsigned> RemoteMaxTid;
  for (const RenderEvent &E : Events)
    if (E.Pid != 1) {
      unsigned &Max = RemoteMaxTid[E.Pid];
      Max = std::max(Max, E.Tid);
    }

  std::string Out;
  Out += "{\n\"otherData\":{\"schema\":\"anek-trace-v1\",\"traceLevel\":";
  Out += jsonQuote(traceLevelName(traceLevel()));
  Out += "},\n\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
  bool First = true;
  auto Emit = [&](const std::string &Line) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += Line;
  };
  // Process/thread-name metadata so Perfetto labels the lanes. The local
  // process is pid 1; each shard worker gets its own pid group.
  if (!Events.empty()) {
    Emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"anek\"}}");
    for (unsigned Tid = 0; Tid <= MaxTid; ++Tid)
      Emit(formatStr("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                     "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                     Tid, Tid == 0 ? "anek-main" :
                                     formatStr("anek-worker-%u", Tid).c_str()));
    for (const auto &[Pid, Name] : RemoteNames) {
      Emit(formatStr("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                     "\"args\":{\"name\":%s}}",
                     Pid, jsonQuote(Name).c_str()));
      auto It = RemoteMaxTid.find(Pid);
      unsigned Max = It == RemoteMaxTid.end() ? 0 : It->second;
      for (unsigned Tid = 0; Tid <= Max; ++Tid)
        Emit(formatStr("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                       "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                       Pid, Tid,
                       Tid == 0 ? "shard-main"
                                : formatStr("shard-t%u", Tid).c_str()));
    }
  }
  for (const RenderEvent &E : Events) {
    std::string Line = "{\"name\":";
    Line += E.Name ? jsonQuote(E.Name) : jsonQuote(*E.NameStr);
    Line += ",\"cat\":";
    Line += E.Category ? jsonQuote(E.Category) : jsonQuote(*E.CategoryStr);
    Line += formatStr(",\"ph\":\"%c\",\"ts\":%lld", E.Phase,
                      static_cast<long long>(E.TsUs));
    if (E.Phase == 'X')
      Line += formatStr(",\"dur\":%lld", static_cast<long long>(E.DurUs));
    if (E.Phase == 'i')
      Line += ",\"s\":\"t\""; // Thread-scoped instant.
    if (E.Phase == 's' || E.Phase == 'f') {
      Line += formatStr(",\"id\":%llu",
                        static_cast<unsigned long long>(E.FlowId));
      if (E.Phase == 'f')
        Line += ",\"bp\":\"e\""; // Bind the arrow to the enclosing slice.
    }
    Line += formatStr(",\"pid\":%u,\"tid\":%u", E.Pid, E.Tid);
    if (E.Phase == 'C') {
      // Counter events carry the sampled series directly.
      Line += ",\"args\":{" + *E.Args + "}";
    } else {
      Line += ",\"args\":{";
      Line += formatStr("\"depth\":%u", E.Depth);
      if (!E.Args->empty()) {
        Line += ',';
        Line += *E.Args;
      }
      Line += "}";
    }
    Line += "}";
    Emit(Line);
  }
  Out += "\n]}\n";
  return Out;
}

bool anek::telemetry::writeChromeTrace(const std::string &Path,
                                       std::string *Error) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << chromeTraceJson();
  Out.flush();
  if (!Out) {
    if (Error)
      *Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

size_t anek::telemetry::eventCount() {
  TraceRegistry &R = registry();
  size_t Count = 0;
  {
    std::lock_guard<std::mutex> RegistryLock(R.Mutex);
    for (const auto &Buf : R.Buffers) {
      std::lock_guard<std::mutex> BufLock(Buf->Mutex);
      Count += Buf->Events.size();
    }
  }
  {
    std::lock_guard<std::mutex> RemoteLock(R.RemoteMutex);
    Count += R.RemoteEvents.size();
  }
  return Count;
}

void anek::telemetry::resetTrace() {
  TraceRegistry &R = registry();
  {
    std::lock_guard<std::mutex> RegistryLock(R.Mutex);
    for (const auto &Buf : R.Buffers) {
      std::lock_guard<std::mutex> BufLock(Buf->Mutex);
      Buf->Events.clear();
    }
  }
  std::lock_guard<std::mutex> RemoteLock(R.RemoteMutex);
  R.RemoteEvents.clear();
  R.RemoteProcessNames.clear();
}

//===----------------------------------------------------------------------===//
// Cross-process aggregation
//===----------------------------------------------------------------------===//

namespace {

EventRecord recordFromEvent(const TraceEvent &E) {
  EventRecord Out;
  Out.Name = E.Name;
  Out.Category = E.Category;
  Out.Args = E.Args;
  Out.Phase = E.Phase;
  Out.TsUs = E.TsUs;
  Out.DurUs = E.DurUs;
  Out.Tid = E.Tid;
  Out.Depth = E.Depth;
  Out.FlowId = E.FlowId;
  return Out;
}

void sortByTime(std::vector<EventRecord> &Events) {
  std::stable_sort(Events.begin(), Events.end(),
                   [](const EventRecord &A, const EventRecord &B) {
                     if (A.TsUs != B.TsUs)
                       return A.TsUs < B.TsUs;
                     return A.Tid < B.Tid;
                   });
}

} // namespace

std::vector<EventRecord> anek::telemetry::snapshotEvents() {
  std::vector<EventRecord> Out;
  TraceRegistry &R = registry();
  std::lock_guard<std::mutex> RegistryLock(R.Mutex);
  for (const auto &Buf : R.Buffers) {
    std::lock_guard<std::mutex> BufLock(Buf->Mutex);
    for (const TraceEvent &E : Buf->Events)
      Out.push_back(recordFromEvent(E));
  }
  sortByTime(Out);
  return Out;
}

std::vector<EventRecord>
anek::telemetry::collectEventsSince(std::vector<size_t> &Marks) {
  std::vector<EventRecord> Out;
  TraceRegistry &R = registry();
  std::lock_guard<std::mutex> RegistryLock(R.Mutex);
  if (Marks.size() < R.Buffers.size())
    Marks.resize(R.Buffers.size(), 0);
  for (size_t I = 0; I != R.Buffers.size(); ++I) {
    ThreadBuffer &Buf = *R.Buffers[I];
    std::lock_guard<std::mutex> BufLock(Buf.Mutex);
    // A resetTrace between calls shrinks the buffer below the cursor;
    // clamp instead of reading past the end.
    size_t From = std::min(Marks[I], Buf.Events.size());
    for (size_t E = From; E != Buf.Events.size(); ++E)
      Out.push_back(recordFromEvent(Buf.Events[E]));
    Marks[I] = Buf.Events.size();
  }
  sortByTime(Out);
  return Out;
}

void anek::telemetry::addRemoteEvents(unsigned Pid,
                                      const std::string &ProcessName,
                                      const std::vector<EventRecord> &Events,
                                      int64_t ShiftUs) {
  if (!enabled())
    return;
  TraceRegistry &R = registry();
  std::lock_guard<std::mutex> RemoteLock(R.RemoteMutex);
  R.RemoteProcessNames[Pid] = ProcessName;
  R.RemoteEvents.reserve(R.RemoteEvents.size() + Events.size());
  for (const EventRecord &E : Events) {
    RemoteEvent RE;
    RE.Pid = Pid;
    RE.E = E;
    RE.E.TsUs = std::max<int64_t>(0, E.TsUs + ShiftUs);
    R.RemoteEvents.push_back(std::move(RE));
  }
}

uint64_t anek::telemetry::newFlowId() {
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

void anek::telemetry::flowBegin(const char *Name, TraceLevel Level,
                                const char *Category, uint64_t FlowId) {
  if (!enabled(Level))
    return;
  ThreadBuffer &Buf = localBuffer();
  TraceEvent Event;
  Event.Name = Name;
  Event.Category = Category;
  Event.Phase = 's';
  Event.TsUs = nowUs();
  Event.Tid = Buf.Tid;
  Event.Depth = Buf.Depth;
  Event.FlowId = FlowId;
  appendEvent(Buf, std::move(Event));
}
