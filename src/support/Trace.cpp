//===- Trace.cpp - Structured tracing for the inference pipeline -----------===//

#include "support/Trace.h"

#include "support/Format.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

using namespace anek;
using namespace anek::telemetry;

std::atomic<int> anek::telemetry::detail::ActiveLevel{0};

namespace {

using Clock = std::chrono::steady_clock;

/// Process-wide trace epoch: timestamps are microseconds since the first
/// telemetry use, so they stay small and positive.
Clock::time_point traceEpoch() {
  static const Clock::time_point Epoch = Clock::now();
  return Epoch;
}

/// One recorded event. Name/Category are string literals (stored by
/// pointer); dynamic detail lives in the preformatted Args body.
struct TraceEvent {
  const char *Name = nullptr;
  const char *Category = nullptr;
  char Phase = 'X'; ///< 'X' complete, 'i' instant, 'C' counter.
  int64_t TsUs = 0;
  int64_t DurUs = 0; ///< Complete events only.
  unsigned Tid = 0;
  unsigned Depth = 0;
  std::string Args; ///< JSON object body without braces; may be empty.
};

/// Per-thread event buffer. Events are appended by the owning thread
/// under Mutex (flush reads from other threads take the same lock);
/// Depth is touched by the owning thread only.
struct ThreadBuffer {
  explicit ThreadBuffer(unsigned Tid) : Tid(Tid) {}
  const unsigned Tid;
  unsigned Depth = 0;
  std::mutex Mutex;
  std::vector<TraceEvent> Events;
};

/// Registry owning every thread's buffer. Buffers outlive their threads
/// (a pool worker's events survive pool destruction until flush).
struct TraceRegistry {
  std::mutex Mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers;
};

TraceRegistry &registry() {
  static TraceRegistry *R = new TraceRegistry(); // Never destroyed:
  return *R; // buffers must stay valid through static teardown.
}

ThreadBuffer &localBuffer() {
  thread_local ThreadBuffer *Buf = [] {
    TraceRegistry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    R.Buffers.push_back(std::make_unique<ThreadBuffer>(
        static_cast<unsigned>(R.Buffers.size())));
    return R.Buffers.back().get();
  }();
  return *Buf;
}

void appendEvent(ThreadBuffer &Buf, TraceEvent Event) {
  std::lock_guard<std::mutex> Lock(Buf.Mutex);
  Buf.Events.push_back(std::move(Event));
}

void appendJsonEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatStr("\\u%04x", C);
      else
        Out += C;
    }
  }
}

} // namespace

void anek::telemetry::setTraceLevel(TraceLevel Level) {
  // Touch the epoch so timestamps are relative to enablement, not to an
  // arbitrary later first event.
  traceEpoch();
  detail::ActiveLevel.store(static_cast<int>(Level),
                            std::memory_order_relaxed);
}

TraceLevel anek::telemetry::traceLevel() {
  return static_cast<TraceLevel>(
      detail::ActiveLevel.load(std::memory_order_relaxed));
}

const char *anek::telemetry::traceLevelName(TraceLevel Level) {
  switch (Level) {
  case TraceLevel::Off:
    return "off";
  case TraceLevel::Phase:
    return "phase";
  case TraceLevel::Method:
    return "method";
  case TraceLevel::Solver:
    return "solver";
  }
  return "unknown";
}

bool anek::telemetry::parseTraceLevel(const std::string &Name,
                                      TraceLevel &Out) {
  if (Name == "off")
    Out = TraceLevel::Off;
  else if (Name == "phase")
    Out = TraceLevel::Phase;
  else if (Name == "method")
    Out = TraceLevel::Method;
  else if (Name == "solver")
    Out = TraceLevel::Solver;
  else
    return false;
  return true;
}

int64_t anek::telemetry::nowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               traceEpoch())
      .count();
}

unsigned anek::telemetry::currentThreadId() { return localBuffer().Tid; }

//===----------------------------------------------------------------------===//
// Span
//===----------------------------------------------------------------------===//

void Span::begin() {
  ThreadBuffer &Buf = localBuffer();
  Buffer = &Buf;
  Depth = Buf.Depth++;
  StartUs = nowUs();
}

void Span::end() {
  ThreadBuffer &Buf = *static_cast<ThreadBuffer *>(Buffer);
  TraceEvent Event;
  Event.Name = Name;
  Event.Category = Category;
  Event.Phase = 'X';
  Event.TsUs = StartUs;
  Event.DurUs = nowUs() - StartUs;
  Event.Tid = Buf.Tid;
  Event.Depth = Depth;
  Event.Args = std::move(Args);
  --Buf.Depth;
  appendEvent(Buf, std::move(Event));
}

void Span::arg(const char *Key, const std::string &Value) {
  if (!Buffer)
    return;
  if (!Args.empty())
    Args += ',';
  Args += '"';
  appendJsonEscaped(Args, Key);
  Args += "\":";
  Args += jsonQuote(Value);
}

void Span::arg(const char *Key, const char *Value) {
  arg(Key, std::string(Value));
}

void Span::arg(const char *Key, uint64_t Value) {
  if (!Buffer)
    return;
  if (!Args.empty())
    Args += ',';
  Args += formatStr("\"%s\":%llu", Key,
                    static_cast<unsigned long long>(Value));
}

void Span::arg(const char *Key, int64_t Value) {
  if (!Buffer)
    return;
  if (!Args.empty())
    Args += ',';
  Args += formatStr("\"%s\":%lld", Key, static_cast<long long>(Value));
}

void Span::arg(const char *Key, double Value) {
  if (!Buffer)
    return;
  if (!Args.empty())
    Args += ',';
  Args += '"';
  Args += Key;
  Args += "\":";
  Args += jsonNumber(Value);
}

void Span::argBool(const char *Key, bool Value) {
  if (!Buffer)
    return;
  if (!Args.empty())
    Args += ',';
  Args += formatStr("\"%s\":%s", Key, Value ? "true" : "false");
}

//===----------------------------------------------------------------------===//
// Free-standing events
//===----------------------------------------------------------------------===//

void anek::telemetry::instant(const char *Name, TraceLevel Level,
                              const char *Category, std::string ArgsJson) {
  if (!enabled(Level))
    return;
  ThreadBuffer &Buf = localBuffer();
  TraceEvent Event;
  Event.Name = Name;
  Event.Category = Category;
  Event.Phase = 'i';
  Event.TsUs = nowUs();
  Event.Tid = Buf.Tid;
  Event.Depth = Buf.Depth;
  Event.Args = std::move(ArgsJson);
  appendEvent(Buf, std::move(Event));
}

void anek::telemetry::counterSample(const char *Name, TraceLevel Level,
                                    const char *Category,
                                    const char *SeriesKey, double Value) {
  if (!enabled(Level))
    return;
  ThreadBuffer &Buf = localBuffer();
  TraceEvent Event;
  Event.Name = Name;
  Event.Category = Category;
  Event.Phase = 'C';
  Event.TsUs = nowUs();
  Event.Tid = Buf.Tid;
  Event.Depth = Buf.Depth;
  Event.Args = '"';
  appendJsonEscaped(Event.Args, SeriesKey);
  Event.Args += "\":";
  Event.Args += jsonNumber(Value);
  appendEvent(Buf, std::move(Event));
}

//===----------------------------------------------------------------------===//
// Export
//===----------------------------------------------------------------------===//

std::string anek::telemetry::jsonQuote(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out += '"';
  appendJsonEscaped(Out, S);
  Out += '"';
  return Out;
}

std::string anek::telemetry::jsonNumber(double Value) {
  if (!std::isfinite(Value))
    return "null";
  return formatStr("%.17g", Value);
}

std::string anek::telemetry::chromeTraceJson() {
  // Snapshot every buffer under its lock; threads may still be running.
  std::vector<TraceEvent> Events;
  {
    TraceRegistry &R = registry();
    std::lock_guard<std::mutex> RegistryLock(R.Mutex);
    for (const auto &Buf : R.Buffers) {
      std::lock_guard<std::mutex> BufLock(Buf->Mutex);
      Events.insert(Events.end(), Buf->Events.begin(), Buf->Events.end());
    }
  }
  std::stable_sort(Events.begin(), Events.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     if (A.TsUs != B.TsUs)
                       return A.TsUs < B.TsUs;
                     return A.Tid < B.Tid;
                   });

  unsigned MaxTid = 0;
  for (const TraceEvent &E : Events)
    MaxTid = std::max(MaxTid, E.Tid);

  std::string Out;
  Out += "{\n\"otherData\":{\"schema\":\"anek-trace-v1\",\"traceLevel\":";
  Out += jsonQuote(traceLevelName(traceLevel()));
  Out += "},\n\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
  bool First = true;
  auto Emit = [&](const std::string &Line) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += Line;
  };
  // Thread-name metadata so Perfetto labels the tracks.
  if (!Events.empty())
    for (unsigned Tid = 0; Tid <= MaxTid; ++Tid)
      Emit(formatStr("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                     "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                     Tid, Tid == 0 ? "anek-main" :
                                     formatStr("anek-worker-%u", Tid).c_str()));
  for (const TraceEvent &E : Events) {
    std::string Line = "{\"name\":";
    Line += jsonQuote(E.Name);
    Line += ",\"cat\":";
    Line += jsonQuote(E.Category);
    Line += formatStr(",\"ph\":\"%c\",\"ts\":%lld", E.Phase,
                      static_cast<long long>(E.TsUs));
    if (E.Phase == 'X')
      Line += formatStr(",\"dur\":%lld", static_cast<long long>(E.DurUs));
    if (E.Phase == 'i')
      Line += ",\"s\":\"t\""; // Thread-scoped instant.
    Line += formatStr(",\"pid\":1,\"tid\":%u", E.Tid);
    if (E.Phase == 'C') {
      // Counter events carry the sampled series directly.
      Line += ",\"args\":{" + E.Args + "}";
    } else {
      Line += ",\"args\":{";
      Line += formatStr("\"depth\":%u", E.Depth);
      if (!E.Args.empty()) {
        Line += ',';
        Line += E.Args;
      }
      Line += "}";
    }
    Line += "}";
    Emit(Line);
  }
  Out += "\n]}\n";
  return Out;
}

bool anek::telemetry::writeChromeTrace(const std::string &Path,
                                       std::string *Error) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << chromeTraceJson();
  Out.flush();
  if (!Out) {
    if (Error)
      *Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

size_t anek::telemetry::eventCount() {
  TraceRegistry &R = registry();
  std::lock_guard<std::mutex> RegistryLock(R.Mutex);
  size_t Count = 0;
  for (const auto &Buf : R.Buffers) {
    std::lock_guard<std::mutex> BufLock(Buf->Mutex);
    Count += Buf->Events.size();
  }
  return Count;
}

void anek::telemetry::resetTrace() {
  TraceRegistry &R = registry();
  std::lock_guard<std::mutex> RegistryLock(R.Mutex);
  for (const auto &Buf : R.Buffers) {
    std::lock_guard<std::mutex> BufLock(Buf->Mutex);
    Buf->Events.clear();
  }
}
