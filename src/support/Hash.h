//===- Hash.h - Streaming content hashing ------------------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A streaming FNV-1a hasher for building content-addressed cache keys.
/// The incremental summary cache (src/cache/) keys every SOLVE invocation
/// on a digest of its exact inputs — method token streams, applied prior
/// bit patterns, option fingerprints — so the hasher must be stable across
/// platforms and process runs: it hashes explicit little-endian byte
/// encodings, never in-memory object representations.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_HASH_H
#define ANEK_SUPPORT_HASH_H

#include <cstdint>
#include <cstring>
#include <string>

namespace anek {

/// Streaming 64-bit FNV-1a. Same polynomial as wire::fnv1a64 (WireFormat.h)
/// so cache keys and blob checksums share one hash family.
class HashStream {
public:
  void bytes(const void *Data, size_t Len) {
    const auto *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < Len; ++I) {
      H ^= P[I];
      H *= 1099511628211ULL;
    }
  }

  void u8(uint8_t V) { bytes(&V, 1); }

  void u32(uint32_t V) {
    unsigned char B[4] = {static_cast<unsigned char>(V),
                          static_cast<unsigned char>(V >> 8),
                          static_cast<unsigned char>(V >> 16),
                          static_cast<unsigned char>(V >> 24)};
    bytes(B, sizeof B);
  }

  void u64(uint64_t V) {
    u32(static_cast<uint32_t>(V));
    u32(static_cast<uint32_t>(V >> 32));
  }

  /// Hashes the exact IEEE-754 bit pattern, so two doubles collide only
  /// when they are bit-identical — the byte-identity replay contract.
  void f64(double V) {
    uint64_t Bits;
    static_assert(sizeof Bits == sizeof V, "double is not 64-bit");
    std::memcpy(&Bits, &V, sizeof Bits);
    u64(Bits);
  }

  /// Length-prefixed, so adjacent strings cannot alias ("ab","c" != "a","bc").
  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }

  uint64_t digest() const { return H; }

private:
  uint64_t H = 14695981039346656037ULL;
};

} // namespace anek

#endif // ANEK_SUPPORT_HASH_H
