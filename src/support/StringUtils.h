//===- StringUtils.h - Common string predicates and splitters ---*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_STRINGUTILS_H
#define ANEK_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <vector>

namespace anek {

/// Stable 64-bit FNV-1a hash of \p S: identical across runs, processes and
/// platforms (unlike std::hash), so it can seed per-method solvers
/// deterministically.
uint64_t stableHash64(const std::string &S);

/// Returns true if \p S starts with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

/// Returns true if \p S ends with \p Suffix.
bool endsWith(const std::string &S, const std::string &Suffix);

/// Splits \p S on \p Sep, trimming surrounding whitespace from each piece.
/// Empty pieces are dropped.
std::vector<std::string> splitAndTrim(const std::string &S, char Sep);

/// Removes leading and trailing ASCII whitespace.
std::string trim(const std::string &S);

/// Joins \p Parts with \p Sep between elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

} // namespace anek

#endif // ANEK_SUPPORT_STRINGUTILS_H
