//===- Diagnostics.h - Error and warning collection -------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A diagnostic engine shared by the frontend, the inference pipeline, and
/// the PLURAL checker. Diagnostics are collected, never printed, so library
/// code stays stream-free; tools render them.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_DIAGNOSTICS_H
#define ANEK_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace anek {

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One collected diagnostic.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLocation Loc;
  std::string Message;

  /// Renders as "loc: severity: message" in the LLVM style (lowercase
  /// first letter, no trailing period).
  std::string str() const;
};

/// Accumulates diagnostics produced while processing one program.
class DiagnosticEngine {
public:
  void error(SourceLocation Loc, std::string Message);
  void warning(SourceLocation Loc, std::string Message);
  void note(SourceLocation Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }

  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string str() const;

  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

} // namespace anek

#endif // ANEK_SUPPORT_DIAGNOSTICS_H
