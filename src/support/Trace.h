//===- Trace.h - Structured tracing for the inference pipeline --*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-aware, low-overhead structured tracing substrate (DESIGN.md,
/// "Telemetry"). The pipeline is instrumented with RAII spans, instant
/// events and counter samples; events land on per-thread buffers that are
/// merged at flush time, so tracing composes with `-jN` and observes the
/// run without perturbing it — inferred specs are byte-identical with
/// tracing on or off.
///
/// The overhead contract: when tracing is off (the default), every
/// instrumentation site costs exactly one relaxed atomic load (the level
/// check) and performs no allocation. Granularity is selected by
/// TraceLevel: `phase` records pipeline phases and aggregate metrics,
/// `method` adds one span per per-method unit of work (solve, PFG build,
/// IR lowering), `solver` adds per-iteration residual samples and
/// cascade-stage transitions.
///
/// The exporter writes Chrome `trace_event` JSON (schema `anek-trace-v1`)
/// loadable in chrome://tracing or https://ui.perfetto.dev.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_TRACE_H
#define ANEK_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace anek {
namespace telemetry {

/// Granularity of trace collection, coarse to fine. Each level includes
/// everything the previous one records.
enum class TraceLevel : int {
  Off = 0,    ///< No collection; instrumentation costs one relaxed load.
  Phase = 1,  ///< Pipeline phases + aggregate counters/histograms.
  Method = 2, ///< Plus one span per per-method unit of work.
  Solver = 3, ///< Plus per-iteration residuals and cascade transitions.
};

namespace detail {
/// The active level, read on every instrumentation site. Relaxed is
/// correct: the level only transitions while the pipeline is quiescent
/// (driver startup, test fixtures), and a stale read merely records or
/// skips one event.
extern std::atomic<int> ActiveLevel;
} // namespace detail

/// One relaxed atomic load: the whole cost of a disabled site.
inline bool enabled(TraceLevel Level) {
  return detail::ActiveLevel.load(std::memory_order_relaxed) >=
         static_cast<int>(Level);
}

/// True when any collection at all is active.
inline bool enabled() {
  return detail::ActiveLevel.load(std::memory_order_relaxed) != 0;
}

void setTraceLevel(TraceLevel Level);
TraceLevel traceLevel();

/// Renders "off"/"phase"/"method"/"solver".
const char *traceLevelName(TraceLevel Level);

/// Parses a trace level name; false on unknown input.
bool parseTraceLevel(const std::string &Name, TraceLevel &Out);

/// Microseconds since the process trace epoch (first telemetry use).
int64_t nowUs();

/// Stable small id of the calling thread: 0, 1, 2, ... in order of first
/// telemetry activity. The scheduling thread of a run traces first, so it
/// is 0 in practice; pool workers get ids as they record their first
/// event.
unsigned currentThreadId();

/// RAII span: records a Chrome complete event ("ph":"X") covering its
/// lifetime on the calling thread's buffer. Construction with an
/// insufficient level is inert — one relaxed load, no allocation, and
/// every other member call is a cheap no-op.
///
/// \p Name must be a string literal (it is stored by pointer). Dynamic
/// detail goes into args, guarded by active() so the argument expression
/// itself is not evaluated when tracing is off:
///
///   telemetry::Span S("infer.method", telemetry::TraceLevel::Method,
///                     "infer");
///   if (S.active())
///     S.arg("method", M->qualifiedName());
class Span {
public:
  Span(const char *Name, TraceLevel Level, const char *Category = "anek")
      : Name(Name), Category(Category) {
    if (enabled(Level))
      begin();
  }
  ~Span() {
    if (Buffer)
      end();
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// True when this span is actually recording.
  bool active() const { return Buffer != nullptr; }

  /// Records the event now instead of at destruction; for phases whose
  /// end does not coincide with a scope. No-op when inactive or closed.
  void close() {
    if (Buffer) {
      end();
      Buffer = nullptr;
    }
  }

  /// Attach a key/value argument (no-ops when inactive).
  void arg(const char *Key, const std::string &Value);
  void arg(const char *Key, const char *Value);
  void arg(const char *Key, uint64_t Value);
  void arg(const char *Key, int64_t Value);
  void arg(const char *Key, unsigned Value) {
    arg(Key, static_cast<uint64_t>(Value));
  }
  void arg(const char *Key, int Value) {
    arg(Key, static_cast<int64_t>(Value));
  }
  void arg(const char *Key, double Value);
  void argBool(const char *Key, bool Value);

private:
  void begin();
  void end();

  const char *Name;
  const char *Category;
  void *Buffer = nullptr; ///< Owning ThreadBuffer when active.
  int64_t StartUs = 0;
  unsigned Depth = 0;
  std::string Args; ///< Preformatted JSON object body (no braces).
};

/// Records an instant event ("ph":"i") when \p Level is enabled.
/// \p ArgsJson, when non-empty, is a preformatted JSON object body such
/// as "\"stage\":\"gibbs\"" — use jsonQuote for string values.
void instant(const char *Name, TraceLevel Level, const char *Category,
             std::string ArgsJson = std::string());

/// Records a counter sample ("ph":"C"): one named series point, e.g. the
/// BP residual at an iteration. \p SeriesKey names the sampled series.
void counterSample(const char *Name, TraceLevel Level, const char *Category,
                   const char *SeriesKey, double Value);

/// JSON-escapes and double-quotes \p S (shared with the exporters).
std::string jsonQuote(const std::string &S);

/// Formats a double as a JSON number; non-finite values become null.
std::string jsonNumber(double Value);

/// Renders every event recorded so far, merged across threads and sorted
/// by timestamp, as a Chrome trace_event JSON document.
std::string chromeTraceJson();

/// Writes chromeTraceJson() to \p Path; false (with \p Error filled when
/// non-null) when the file cannot be written.
bool writeChromeTrace(const std::string &Path, std::string *Error = nullptr);

/// Number of events currently buffered across all threads (tests),
/// remote-lane events included.
size_t eventCount();

/// Drops all buffered events — remote lanes included — and resets span
/// depths. The trace level is left untouched. Only safe while no spans
/// are live; for tests and long-running embedders that flush
/// periodically.
void resetTrace();

//===----------------------------------------------------------------------===//
// Cross-process aggregation (DESIGN.md, "Distributed telemetry")
//===----------------------------------------------------------------------===//

/// One buffered event with owned strings: the portable form a shard
/// worker ships over the wire and the coordinator re-injects under the
/// worker's pid lane. Pid is informational on local snapshots (always 0 =
/// this process); remote lanes carry the worker's real pid.
struct EventRecord {
  std::string Name;
  std::string Category;
  std::string Args;  ///< Preformatted JSON object body, no braces.
  char Phase = 'X';  ///< 'X' complete, 'i' instant, 'C' counter,
                     ///< 's'/'f' flow begin/end.
  int64_t TsUs = 0;
  int64_t DurUs = 0;
  unsigned Tid = 0;
  unsigned Depth = 0;
  uint64_t FlowId = 0; ///< Non-zero on flow ('s'/'f') events only.
};

/// Copies every locally buffered event (remote lanes excluded), sorted by
/// timestamp. Non-destructive and safe while other threads keep
/// recording; the serve layer's slow-request log filters this by thread
/// and time window.
std::vector<EventRecord> snapshotEvents();

/// Drains the local events appended since the cursors in \p Marks (one
/// cursor per internal thread buffer; pass the same vector across calls,
/// starting empty) and advances the cursors. The returned batch is sorted
/// by timestamp. This is the worker side of telemetry shipping: each Task
/// ships exactly the events it produced, and the local buffers keep
/// everything for the worker's own --trace artifact.
std::vector<EventRecord> collectEventsSince(std::vector<size_t> &Marks);

/// Injects externally collected events under process lane \p Pid with
/// display name \p ProcessName, shifting every timestamp by \p ShiftUs
/// (coordinator dispatch time minus worker task-start time aligns the
/// clocks; results clamp at 0). Re-injecting the same pid extends its
/// lane; a respawned worker has a fresh pid and therefore a fresh lane.
/// No-op when collection is off.
void addRemoteEvents(unsigned Pid, const std::string &ProcessName,
                     const std::vector<EventRecord> &Events, int64_t ShiftUs);

/// Allocates a process-unique flow id (Chrome flow-event binding).
uint64_t newFlowId();

/// Records a flow-begin event ("ph":"s") on the calling thread. The
/// matching flow-end ("ph":"f", same name/category/id) is typically a
/// remote EventRecord the coordinator injects at the worker's task-start
/// timestamp, drawing the dispatch arrow across pid lanes.
void flowBegin(const char *Name, TraceLevel Level, const char *Category,
               uint64_t FlowId);

} // namespace telemetry
} // namespace anek

#endif // ANEK_SUPPORT_TRACE_H
