//===- Socket.h - Stream sockets for the shard transport ---------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The socket substrate of the networked shard tier (DESIGN.md, "Sharded
/// execution and failure model"). It lives beside Subprocess because the
/// two are the same abstraction at different distances: a connected
/// stream socket is a pipe whose peer can also refuse, reset, and stall,
/// and the framed protocol above (shard/Wire.h) reads both through the
/// same EINTR-safe readFull/writeFull/waitReadable calls.
///
/// Address grammar, shared by `anek workerd --listen` and `--workers`:
///
///   host:port       TCP (numeric host or name; port 0 = kernel-assigned,
///                   the bound address reports the real port)
///   unix:/some/path Unix-domain stream socket at that path
///   /some/path      shorthand for the same (a '/' anywhere marks a path)
///
/// Everything returns Status/Expected, never throws, and maps the
/// connection-level failure modes onto the shard tier's vocabulary:
/// refusal and reset are ErrorCode::WorkerLost (transient — the peer may
/// come back), a connect that outlives its timeout is DeadlineExceeded.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_SOCKET_H
#define ANEK_SUPPORT_SOCKET_H

#include "support/Status.h"

#include <string>

namespace anek {
namespace sock {

/// True when \p Address names a Unix-domain socket (a "unix:" prefix or
/// any '/'); false means host:port TCP.
bool isUnixAddress(const std::string &Address);

/// The filesystem path of a Unix-domain address ("unix:" stripped).
std::string unixPath(const std::string &Address);

/// A listening socket bound to \p Address. Owns the fd and (for
/// Unix-domain sockets) the filesystem entry, both released on close /
/// destruction. Movable, not copyable.
class ListenSocket {
public:
  ListenSocket() = default;
  ~ListenSocket();
  ListenSocket(ListenSocket &&Other) noexcept;
  ListenSocket &operator=(ListenSocket &&Other) noexcept;
  ListenSocket(const ListenSocket &) = delete;
  ListenSocket &operator=(const ListenSocket &) = delete;

  /// Binds and listens on \p Address. A stale Unix-socket path from a
  /// crashed previous daemon is unlinked first; TCP sockets take
  /// SO_REUSEADDR for the same reason. Errors: InvalidArgument for an
  /// unparseable address, Internal for every syscall failure.
  Status listen(const std::string &Address);

  bool listening() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// The actual bound address: for TCP this resolves a requested port 0
  /// to the kernel-assigned one, so tests and the soak can listen on
  /// "127.0.0.1:0" and tell coordinators the real endpoint.
  const std::string &boundAddress() const { return Bound; }

  /// Accepts one connection, waiting at most \p TimeoutSeconds (< 0 =
  /// forever). EINTR-safe. Returns the connected fd; DeadlineExceeded on
  /// timeout, Internal on accept failure, WorkerLost when the listening
  /// socket was shut down under us (the daemon's stop path).
  Expected<int> accept(double TimeoutSeconds);

  /// Stops accepting: shuts the socket down so a blocked accept returns,
  /// then closes and (for Unix sockets) unlinks. Idempotent.
  void close();

private:
  int Fd = -1;
  std::string Bound;
  std::string UnlinkPath; ///< Non-empty for Unix sockets we bound.
};

/// Connects a stream socket to \p Address, waiting at most
/// \p TimeoutSeconds for the connect to complete (< 0 = the system
/// default). The returned fd is blocking, close-on-exec, and (TCP)
/// TCP_NODELAY — frames are latency-bound, not bandwidth-bound. Errors:
/// WorkerLost for refusal/reset/unreachable (the transient class — the
/// daemon may be restarting), DeadlineExceeded for a connect timeout,
/// InvalidArgument for an unparseable address.
Expected<int> connectTo(const std::string &Address, double TimeoutSeconds);

/// Hard-closes a connected socket so the peer sees RST instead of an
/// orderly FIN (SO_LINGER with a zero timeout, then close). The
/// mid-frame-reset fault uses this to produce a real kernel reset, not a
/// simulated one. No-op for fds that are not sockets.
void resetClose(int Fd);

} // namespace sock
} // namespace anek

#endif // ANEK_SUPPORT_SOCKET_H
