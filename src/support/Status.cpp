//===- Status.cpp - Structured error propagation ---------------------------===//

#include "support/Status.h"

using namespace anek;

const char *anek::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::InvalidArgument:
    return "invalid-argument";
  case ErrorCode::ResourceExhausted:
    return "resource-exhausted";
  case ErrorCode::DeadlineExceeded:
    return "deadline-exceeded";
  case ErrorCode::Unsatisfiable:
    return "unsatisfiable";
  case ErrorCode::FaultInjected:
    return "fault-injected";
  case ErrorCode::Unavailable:
    return "unavailable";
  case ErrorCode::WorkerLost:
    return "worker-lost";
  case ErrorCode::Internal:
    return "internal";
  }
  return "unknown";
}

std::string Status::str() const {
  if (isOk())
    return "ok";
  std::string Out = errorCodeName(Code);
  if (!Message.empty()) {
    Out += ": ";
    Out += Message;
  }
  return Out;
}
