//===- Casting.h - LLVM-style isa/cast/dyn_cast helpers ----------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal hand-rolled RTTI in the LLVM style. A class hierarchy opts in by
/// providing `static bool classof(const Base *)` on each derived class.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_SUPPORT_CASTING_H
#define ANEK_SUPPORT_CASTING_H

#include <cassert>

namespace anek {

/// True if \p Val is an instance of To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts on kind mismatch.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast (const); asserts on kind mismatch.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<const To *>(Val);
}

/// Downcast returning null on kind mismatch.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Downcast returning null on kind mismatch (const).
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace anek

#endif // ANEK_SUPPORT_CASTING_H
