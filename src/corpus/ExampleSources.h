//===- ExampleSources.h - The paper's figure programs ------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniJava renditions of the paper's running examples: the annotated
/// iterator API (Figure 2), the spreadsheet client (Figures 3 and 5), the
/// field-access program (Figure 7), and a classic file-protocol API used
/// by the examples as a second domain.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_CORPUS_EXAMPLESOURCES_H
#define ANEK_CORPUS_EXAMPLESOURCES_H

#include <string>

namespace anek {

/// Figure 2: Iterator and Collection interfaces with access-permission
/// specifications.
std::string iteratorApiSource();

/// Figures 3/5: the spreadsheet application (Row, copy, testParseCSV),
/// including the bug pattern in testParseCSV. Concatenate after
/// iteratorApiSource().
std::string spreadsheetSource();

/// Figure 7: the field-access program `accessFields`.
std::string fieldExampleSource();

/// A file open/read/close typestate API with annotated protocol plus
/// client code with one conforming and one violating method.
std::string fileProtocolSource();

} // namespace anek

#endif // ANEK_CORPUS_EXAMPLESOURCES_H
