//===- PmdGenerator.h - Synthetic PMD-scale corpus ---------------*- C++ -*-===//
//
// Part of the ANEK reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's main experiment (Section 4.2) runs ANEK on PMD: ~38K lines,
/// 463 classes, 3,120 methods, 170 calls to Iterator.next(), previously
/// hand-annotated by Bierhoff (26 annotations; PLURAL then reports 3 false
/// positives, all next()-without-hasNext() sites guaranteed safe by other
/// invariants). PMD itself is not available here, so this generator emits
/// a synthetic MiniJava corpus matched to those statistics and to the
/// idiom mix the paper describes:
///
///  - direct iterator loops (verify with no client annotations),
///  - iterator-returning wrapper methods plus consumers (the reason client
///    annotations are needed at all),
///  - helper methods taking iterators as parameters,
///  - three "bug" sites calling next() without hasNext(),
///  - one helper called only under a caller-side hasNext() guard — the
///    branch-insensitivity pattern behind ANEK's fourth PMD warning,
///  - dynamic-state-test helpers ANEK cannot infer (Table 4 "removed"),
///  - setter/factory/constraining patterns for the remaining Table 4 rows.
///
/// Ground-truth hand annotations (the "Bierhoff" configuration) are
/// recorded alongside the source so Tables 2 and 4 are computable.
///
//===----------------------------------------------------------------------===//

#ifndef ANEK_CORPUS_PMDGENERATOR_H
#define ANEK_CORPUS_PMDGENERATOR_H

#include "lang/Ast.h"
#include "perm/Spec.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace anek {

/// Generator knobs; the defaults match Table 1.
struct PmdConfig {
  uint64_t Seed = 1993524;
  /// Total classes (Table 1: 463).
  unsigned Classes = 463;
  /// Total methods (Table 1: 3,120).
  unsigned Methods = 3120;
  /// Direct iterator loops (verify without client annotations).
  unsigned DirectSites = 125;
  /// Guarded consumers of wrapper-produced iterators.
  unsigned WrapperConsumerSites = 39;
  /// next()-without-hasNext() bug sites.
  unsigned BuggySites = 3;
  /// Iterator-returning wrapper methods with hand specs.
  unsigned Wrappers = 18;
  /// Of the wrappers, how many Bierhoff annotated as full(result) (ANEK
  /// infers the stronger unique: Table 4 "more restrictive").
  unsigned FullSpecWrappers = 6;
  /// Dynamic-state-test helpers (hand @TrueIndicates; ANEK removes).
  unsigned StateTestHelpers = 3;
  /// Setter methods left for ANEK to annotate (Table 4 "added helpful").
  unsigned UnannotatedSetters = 5;
};

/// One ground-truth hand annotation.
struct HandSpec {
  std::string ClassName;
  std::string MethodName;
  std::string Requires;
  std::string Ensures;
  std::string TrueIndicates;
  std::string FalseIndicates;
};

/// A generated corpus.
struct PmdCorpus {
  PmdConfig Config;
  std::string Source;
  /// Physical source lines (Table 1 row 1).
  unsigned LineCount = 0;
  unsigned ClassCount = 0;
  unsigned MethodCount = 0;
  /// Calls to Iterator.next() (Table 1 row 4).
  unsigned NextCallCount = 0;
  std::vector<HandSpec> HandSpecs;
};

/// Generates the corpus deterministically from \p Config.
PmdCorpus generatePmdCorpus(const PmdConfig &Config = {});

/// Resolves the recorded hand specs against a parsed+analyzed program.
/// Returns the per-method spec map for the "Bierhoff" configuration.
/// Specs that fail to resolve are skipped (and counted in \p Unresolved
/// when non-null).
MethodDeclMap<MethodSpec> resolveHandSpecs(const Program &Prog,
                                           const PmdCorpus &Corpus,
                                           unsigned *Unresolved = nullptr);

} // namespace anek

#endif // ANEK_CORPUS_PMDGENERATOR_H
